// Benchmarks regenerating the paper's evaluation (one per figure; the
// experiment ids refer to DESIGN.md §4). Each benchmark iteration runs a
// complete deterministic simulation; the interesting output is the
// reported custom metric (MB/s or GFLOP/s), which reproduces the paper's
// axes, not the wall-clock ns/op.
//
//	go test -bench=. -benchmem
package vscc_test

import (
	"fmt"
	"testing"

	"vscc/internal/harness"
	"vscc/internal/ircce"
	"vscc/internal/npb"
	"vscc/internal/rcce"
	"vscc/internal/vscc"
)

// benchSizes is a representative subset of the Fig. 6 sweep (full sweep
// via cmd/pingpong).
var benchSizes = []int{1024, 8192, 65536}

// BenchmarkFig6aOnChipPingPong measures E1: on-chip point-to-point
// throughput under RCCE's blocking protocol and iRCCE's pipelined one.
func BenchmarkFig6aOnChipPingPong(b *testing.B) {
	protos := []struct {
		name string
		mk   func() rcce.Protocol
	}{
		{"rcce-blocking", nil},
		{"ircce-pipelined", func() rcce.Protocol { return &ircce.PipelinedProtocol{} }},
	}
	for _, p := range protos {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%s/%dB", p.name, size), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					pts, err := harness.OnChipPingPong(p.mk, 0, 1, []int{size}, 3)
					if err != nil {
						b.Fatal(err)
					}
					last = pts[0].MBps
				}
				b.ReportMetric(last, "MB/s")
			})
		}
	}
}

// BenchmarkFig6bInterDevice measures E2: cross-device throughput for
// every vSCC scheme, including the bounds.
func BenchmarkFig6bInterDevice(b *testing.B) {
	schemes := []vscc.Scheme{
		vscc.SchemeRouting, vscc.SchemeHostRouted, vscc.SchemeCachedGet,
		vscc.SchemeRemotePut, vscc.SchemeVDMA, vscc.SchemeHWAccel,
	}
	for _, scheme := range schemes {
		for _, size := range benchSizes {
			name := fmt.Sprintf("%s/%dB", schemeSlug(scheme), size)
			b.Run(name, func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					pts, err := harness.InterDevicePingPong(scheme, []int{size}, 3)
					if err != nil {
						b.Fatal(err)
					}
					last = pts[0].MBps
				}
				b.ReportMetric(last, "MB/s")
			})
		}
	}
}

func schemeSlug(s vscc.Scheme) string {
	switch s {
	case vscc.SchemeRouting:
		return "routing"
	case vscc.SchemeHostRouted:
		return "lower-bound"
	case vscc.SchemeCachedGet:
		return "cached-get"
	case vscc.SchemeRemotePut:
		return "remote-put"
	case vscc.SchemeVDMA:
		return "vdma"
	case vscc.SchemeHWAccel:
		return "upper-bound"
	}
	return "unknown"
}

// BenchmarkFig7NPBBT measures E3: BT class C scalability in the optimal
// (vDMA) configuration for a subset of the square process counts, plus
// the worst-case routing configuration at one cross-device count. The
// full 14-point sweep is cmd/npbbt.
func BenchmarkFig7NPBBT(b *testing.B) {
	for _, ranks := range []int{16, 49, 100} {
		b.Run(fmt.Sprintf("vdma/%dranks", ranks), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				pt, err := harness.BTRun(harness.BTSweepConfig{
					Class: npb.ClassC, Iterations: 1, Scheme: vscc.SchemeVDMA, Devices: 5,
				}, ranks)
				if err != nil {
					b.Fatal(err)
				}
				last = pt.GFlops
			}
			b.ReportMetric(last, "GFLOP/s")
		})
	}
	b.Run("routing/64ranks", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			pt, err := harness.BTRun(harness.BTSweepConfig{
				Class: npb.ClassC, Iterations: 1, Scheme: vscc.SchemeRouting, Devices: 5,
			}, 64)
			if err != nil {
				b.Fatal(err)
			}
			last = pt.GFlops
		}
		b.ReportMetric(last, "GFLOP/s")
	})
}

// BenchmarkFig8TrafficMatrix measures E4: the 64-rank class C traffic
// capture, reporting the heaviest pair volume scaled to the paper's 200
// iterations (~186 MB).
func BenchmarkFig8TrafficMatrix(b *testing.B) {
	var maxMB float64
	for i := 0; i < b.N; i++ {
		m, err := harness.CaptureTraffic(harness.TrafficConfig{
			Class: npb.ClassC, Ranks: 64, Iterations: 1, ScaleTo: 200,
			Scheme: vscc.SchemeVDMA,
		})
		if err != nil {
			b.Fatal(err)
		}
		_, _, bytes := m.MaxPair()
		maxMB = float64(bytes) / 1e6
	}
	b.ReportMetric(maxMB, "maxpairMB")
}

// BenchmarkSweepParallel measures the wall-clock of whole figure sweeps
// — a Fig. 6a-shaped message-size sweep and a Fig. 7-shaped rank-count
// sweep — serial against the bounded worker pool. Every sweep point is
// an independent simulation, so on an N-core host the pool approaches
// an N-fold wall-clock cut with byte-identical output (asserted by
// TestParallelPingPongSweepMatchesSerial).
func BenchmarkSweepParallel(b *testing.B) {
	sizes := []int{1024, 4096, 16384, 65536}
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("fig6a-pingpong/parallel-%d", par), func(b *testing.B) {
			harness.SetParallelism(par)
			defer harness.SetParallelism(0)
			for i := 0; i < b.N; i++ {
				if _, err := harness.OnChipPingPong(nil, 0, 1, sizes, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	counts := []int{4, 9, 16, 25, 36, 49}
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("fig7-bt/parallel-%d", par), func(b *testing.B) {
			harness.SetParallelism(par)
			defer harness.SetParallelism(0)
			for i := 0; i < b.N; i++ {
				_, err := harness.BTSweep(harness.BTSweepConfig{
					Class: npb.ClassW, Iterations: 1, Scheme: vscc.SchemeVDMA, Devices: 2,
				}, counts)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPDESBT measures E13: wall-clock of one cross-device BT run
// on the domain-decomposed engine (one kernel per device plus the host
// kernel) at 1, 2 and 4 workers, against the classic single-kernel
// engine on the same point. Output is byte-identical at every worker
// count (TestPDESSerialParallelIdentity), so the only thing that moves
// is ns/op; on a 1-CPU host the counts are roughly neutral and the
// scaling shows on multi-core hosts. Recorded in BENCH_kernel.json
// under "pdes".
func BenchmarkPDESBT(b *testing.B) {
	cfg := harness.BTSweepConfig{
		Class: npb.ClassW, Iterations: 1, Scheme: vscc.SchemeVDMA, Devices: 2,
	}
	const ranks = 64
	b.Run("classic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := harness.BTRun(cfg, ranks); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			harness.SetPDES(workers)
			defer harness.SetPDES(0)
			for i := 0; i < b.N; i++ {
				if _, err := harness.BTRun(cfg, ranks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7OnChipPeak tracks the 150 MB/s on-chip calibration point.
func BenchmarkE7OnChipPeak(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.OnChipPingPong(func() rcce.Protocol { return &ircce.PipelinedProtocol{} }, 0, 1, []int{262144}, 3)
		if err != nil {
			b.Fatal(err)
		}
		peak = pts[0].MBps
	}
	b.ReportMetric(peak, "MB/s")
}
