package vscc_test

import (
	"bytes"
	"errors"
	"regexp"
	"strings"
	"testing"

	"vscc/internal/fault"
	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/taskrt"
	"vscc/internal/vscc"
)

// These tests drive the deterministic fault layer (Config.Faults, the
// -fault flag of cmd/pingpong and cmd/ablate) through a full vSCC
// system, the way mpbcheck_test.go drives the consistency checker: a
// crash of the host communication task must be survived through the
// watchdog, a persistently faulty device must push the protocol off its
// fast path, an unrecoverable loss must fail with a cycle-stamped error
// that reruns reproduce byte for byte, and an armed-but-idle schedule
// must change nothing at all.

// runFaultScenario plays reps cross-device ping-pong rounds of size
// bytes under scheme and faults, returning the delivered payload check,
// the system (for stats), and the run error.
func runFaultScenario(scheme vscc.Scheme, faults *fault.Config, size, reps int) (ok bool, sys *vscc.System, err error) {
	k := sim.NewKernel()
	sys, err = vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: scheme, Faults: faults})
	if err != nil {
		return false, nil, err
	}
	session, err := sys.NewSessionAt([]rcce.Place{{Dev: 0, Core: 0}, {Dev: 1, Core: 0}})
	if err != nil {
		return false, nil, err
	}
	ok = true
	err = session.Run(func(r *rcce.Rank) {
		buf := make([]byte, size)
		for rep := 0; rep < reps; rep++ {
			want := make([]byte, size)
			for i := range want {
				want[i] = byte(i+rep) ^ 0x5C
			}
			if r.ID() == 0 {
				if err := r.Send(1, want); err != nil {
					panic(err)
				}
				if err := r.Recv(1, buf); err != nil {
					panic(err)
				}
			} else {
				if err := r.Recv(0, buf); err != nil {
					panic(err)
				}
				if err := r.Send(0, want); err != nil {
					panic(err)
				}
			}
			if !bytes.Equal(buf, want) {
				ok = false
			}
		}
	})
	return ok, sys, err
}

// TestFaultToleranceCrashRestart crashes the host task mid-transfer:
// the watchdog must restart it with caches invalidated and the
// engaged transfers must still deliver intact payloads.
func TestFaultToleranceCrashRestart(t *testing.T) {
	cfg := &fault.Config{
		Seed:     3,
		CrashAt:  []sim.Cycles{80_000},
		Recovery: fault.Recovery{WatchdogCycles: 40_000},
	}
	ok, sys, err := runFaultScenario(vscc.SchemeCachedGet, cfg, 4096, 10)
	if err != nil {
		t.Fatalf("run did not survive the crash: %v", err)
	}
	if !ok {
		t.Fatal("payload corrupted across the crash")
	}
	if got := sys.Task.Stats().HostRestarts; got != 1 {
		t.Errorf("HostRestarts = %d, want 1", got)
	}
	if sys.Injector.Stat("recover.watchdog-restart") == 0 {
		t.Error("no watchdog-restart recovery was traced")
	}
}

// TestFaultToleranceDegradation keeps dropping packets for one device
// until its recovery count crosses DegradeAfter: the protocol must
// abandon the vDMA fast path (traced as degraded sends) and still
// deliver every payload through the transparent flag protocol.
func TestFaultToleranceDegradation(t *testing.T) {
	cfg := &fault.Config{
		Seed:       5,
		DropPer10k: 600,
		Recovery:   fault.Recovery{DegradeAfter: 3},
	}
	ok, sys, err := runFaultScenario(vscc.SchemeVDMA, cfg, 4096, 12)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !ok {
		t.Fatal("payload corrupted after degradation")
	}
	if sys.Injector.Stat("recover.retx") == 0 {
		t.Error("no retransmission recovery was traced")
	}
	if sys.Injector.Stat("recover.degraded-send") == 0 {
		t.Error("the protocol never degraded despite the fault threshold")
	}
}

// TestFaultToleranceLostCompletionError disables the flag write-verify
// recovery while losing every host flag store: the engaged wait must
// exhaust its retry ladder and fail with a clear, cycle-stamped error —
// and a rerun must reproduce it byte for byte.
func TestFaultToleranceLostCompletionError(t *testing.T) {
	run := func() error {
		cfg := &fault.Config{
			Seed:           9,
			FlagLossPer10k: 10_000,
			Recovery: fault.Recovery{
				VerifyRetries:  -1,
				WaitBudget:     50_000,
				MaxWaitRetries: 3,
			},
		}
		_, _, err := runFaultScenario(vscc.SchemeRemotePut, cfg, 4096, 2)
		return err
	}
	err := run()
	if err == nil {
		t.Fatal("losing every flag write with verify disabled still completed")
	}
	msg := err.Error()
	if !strings.Contains(msg, "lost completion after") {
		t.Errorf("error does not name the exhausted retry ladder:\n%s", msg)
	}
	if regexp.MustCompile(`at cycle (\d+)`).FindStringSubmatch(msg) == nil {
		t.Errorf("error does not report the cycle:\n%s", msg)
	}
	err2 := run()
	if err2 == nil || err2.Error() != msg {
		t.Errorf("rerun reported a different failure:\nfirst: %s\nrerun: %v", msg, err2)
	}
}

// TestFaultToleranceDeviceLostError crashes a whole device mid-run with
// transparent retry off: the peer's engaged wait must fail with an
// error matching rcce.ErrDeviceLost (errors.Is), naming the lost device
// and the cycle — and a rerun must reproduce it byte for byte.
func TestFaultToleranceDeviceLostError(t *testing.T) {
	run := func() error {
		cfg := &fault.Config{
			Seed: 11,
			// Down far longer than the whole retry ladder, so the wait
			// cannot simply outlast the outage.
			DevCrashAt: []fault.DeviceFault{{At: 80_000, Dev: 1, Down: 10_000_000}},
			Recovery: fault.Recovery{
				WaitBudget:     50_000,
				MaxWaitRetries: 3,
			},
		}
		_, _, err := runFaultScenario(vscc.SchemeCachedGet, cfg, 4096, 8)
		return err
	}
	err := run()
	if err == nil {
		t.Fatal("a crashed peer device with devretry off still completed")
	}
	if !errors.Is(err, rcce.ErrDeviceLost) {
		t.Errorf("error does not match rcce.ErrDeviceLost: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "device 1 lost") {
		t.Errorf("error does not name the lost device:\n%s", msg)
	}
	if regexp.MustCompile(`at cycle (\d+)`).FindStringSubmatch(msg) == nil {
		t.Errorf("error does not report the cycle:\n%s", msg)
	}
	err2 := run()
	if err2 == nil || err2.Error() != msg {
		t.Errorf("rerun reported a different failure:\nfirst: %s\nrerun: %v", msg, err2)
	}
}

// TestFaultToleranceDeviceCrashRetry crashes a device mid-run with
// transparent retry on: blocked waits must park until the rejoin, the
// checkpoint image plus journal must rebuild the device's MPB, the held
// PCIe frames must replay in the new epoch, and every payload must
// arrive intact — on two different schemes, reproducibly.
func TestFaultToleranceDeviceCrashRetry(t *testing.T) {
	// SchemeHWAccel regresses the replay-during-park race: replaying one
	// journaled frame parks the replay process on the wire, and arrivals
	// landing meanwhile may drain later journal entries first.
	for _, scheme := range []vscc.Scheme{vscc.SchemeCachedGet, vscc.SchemeVDMA, vscc.SchemeHWAccel} {
		run := func() (bool, *vscc.System, error) {
			cfg := &fault.Config{
				Seed:       13,
				DevCrashAt: []fault.DeviceFault{{At: 150_000, Dev: 1}},
				Recovery:   fault.Recovery{DeviceRetry: true},
			}
			return runFaultScenario(scheme, cfg, 4096, 12)
		}
		ok, sys, err := run()
		if err != nil {
			t.Fatalf("%v: run did not survive the device crash: %v", scheme, err)
		}
		if !ok {
			t.Fatalf("%v: payload corrupted across the device crash", scheme)
		}
		if got := sys.Injector.Stat("inject.devcrash"); got != 1 {
			t.Errorf("%v: inject.devcrash = %d, want 1", scheme, got)
		}
		if got := sys.Injector.Stat("recover.rejoin"); got != 1 {
			t.Errorf("%v: recover.rejoin = %d, want 1", scheme, got)
		}
		if st := sys.Membership.State(1); st != vscc.DevUp {
			t.Errorf("%v: device 1 finished in state %v, want up", scheme, st)
		}
		if ep := sys.Membership.Epoch(1); ep != 1 {
			t.Errorf("%v: device 1 epoch = %d, want 1", scheme, ep)
		}
		end := sys.Kernel.Now()
		sum := sys.Injector.Summary()
		_, sys2, err2 := run()
		if err2 != nil {
			t.Fatalf("%v: rerun failed: %v", scheme, err2)
		}
		if end2 := sys2.Kernel.Now(); end2 != end {
			t.Errorf("%v: rerun finished at cycle %d, first run at %d", scheme, end2, end)
		}
		if sum2 := sys2.Injector.Summary(); sum2 != sum {
			t.Errorf("%v: rerun event summary differs:\nfirst:\n%s\nrerun:\n%s", scheme, sum, sum2)
		}
	}
}

// TestFaultToleranceLinkDownRetry severs a device's PCIe link (memory
// survives, cores keep computing): held frames must replay after the
// link returns and the run must complete intact without any MPB wipe.
func TestFaultToleranceLinkDownRetry(t *testing.T) {
	cfg := &fault.Config{
		Seed:          17,
		DevLinkDownAt: []fault.DeviceFault{{At: 150_000, Dev: 1}},
		Recovery:      fault.Recovery{DeviceRetry: true},
	}
	ok, sys, err := runFaultScenario(vscc.SchemeRemotePut, cfg, 4096, 12)
	if err != nil {
		t.Fatalf("run did not survive the link outage: %v", err)
	}
	if !ok {
		t.Fatal("payload corrupted across the link outage")
	}
	if got := sys.Injector.Stat("inject.devlinkdown"); got != 1 {
		t.Errorf("inject.devlinkdown = %d, want 1", got)
	}
	if got := sys.Injector.Stat("recover.rejoin"); got != 1 {
		t.Errorf("recover.rejoin = %d, want 1", got)
	}
	if ep := sys.Membership.Epoch(1); ep != 1 {
		t.Errorf("device 1 epoch = %d, want 1", ep)
	}
}

// TestFaultToleranceArmedButIdle proves arming the machinery is free: a
// zero-rate schedule must finish at the exact cycle of a Faults=nil run
// on every scheme, with an empty event log.
func TestFaultToleranceArmedButIdle(t *testing.T) {
	for _, scheme := range []vscc.Scheme{vscc.SchemeHostRouted, vscc.SchemeCachedGet, vscc.SchemeRemotePut, vscc.SchemeVDMA} {
		run := func(faults *fault.Config) (sim.Cycles, *vscc.System) {
			k := sim.NewKernel()
			sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: scheme, Faults: faults})
			if err != nil {
				t.Fatal(err)
			}
			session, err := sys.NewSessionAt([]rcce.Place{{Dev: 0, Core: 0}, {Dev: 1, Core: 0}})
			if err != nil {
				t.Fatal(err)
			}
			err = session.Run(func(r *rcce.Rank) {
				buf := make([]byte, 2048)
				if r.ID() == 0 {
					if err := r.Send(1, buf); err != nil {
						panic(err)
					}
				} else if err := r.Recv(0, buf); err != nil {
					panic(err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			return k.Now(), sys
		}
		armed, sys := run(&fault.Config{Seed: 1})
		bare, _ := run(nil)
		if armed != bare {
			t.Errorf("%v: armed-but-idle run finished at cycle %d, fault-free at %d", scheme, armed, bare)
		}
		if n := len(sys.Injector.Events()); n != 0 {
			t.Errorf("%v: idle schedule recorded %d events", scheme, n)
		}
	}
}

// TestFaultToleranceTaskrtDevCrash points the fault layer at the task
// runtime's irregular traffic: the Cholesky workload — dependence-driven
// steals and region movement rather than a fixed SPMD exchange — must
// survive a mid-run device crash with transparent retry, finish with
// regions byte-identical to the pure-Go serial reference, and rerun to
// the identical cycle and event ledger.
func TestFaultToleranceTaskrtDevCrash(t *testing.T) {
	ref := taskrt.New(taskrt.Config{})
	if err := taskrt.Build(ref, "cholesky", 3, 0, 4); err != nil {
		t.Fatalf("Build(ref): %v", err)
	}
	if err := ref.RunSerial(4); err != nil {
		t.Fatalf("RunSerial: %v", err)
	}
	run := func() (*taskrt.Runtime, *vscc.System, sim.Cycles) {
		cfg := &fault.Config{
			Seed:         21,
			DevCrashAt:   []fault.DeviceFault{{At: 120_000, Dev: 1, Down: 180_000}},
			CkptInterval: 40_000,
			Recovery:     fault.Recovery{DeviceRetry: true},
		}
		k := sim.NewKernel()
		sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: vscc.SchemeVDMA, Faults: cfg})
		if err != nil {
			t.Fatal(err)
		}
		session, err := sys.NewSessionAt([]rcce.Place{
			{Dev: 0, Core: 0}, {Dev: 1, Core: 0}, {Dev: 0, Core: 1}, {Dev: 1, Core: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		rt := taskrt.New(taskrt.Config{Scheme: vscc.SchemeVDMA})
		if err := taskrt.Build(rt, "cholesky", 3, 0, 4); err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(session); err != nil {
			t.Fatalf("taskrt run did not survive the device crash: %v", err)
		}
		return rt, sys, k.Now()
	}
	rt, sys, end := run()
	if got := rt.StateHash(); got != ref.StateHash() {
		t.Error("cholesky under devcrash diverged from the serial reference")
	}
	if got := sys.Injector.Stat("inject.devcrash"); got != 1 {
		t.Errorf("inject.devcrash = %d, want 1", got)
	}
	if got := sys.Injector.Stat("recover.rejoin"); got != 1 {
		t.Errorf("recover.rejoin = %d, want 1", got)
	}
	sum := sys.Injector.Summary()
	rt2, sys2, end2 := run()
	if end2 != end {
		t.Errorf("rerun finished at cycle %d, first run at %d", end2, end)
	}
	if sum2 := sys2.Injector.Summary(); sum2 != sum {
		t.Errorf("rerun event summary differs:\nfirst:\n%s\nrerun:\n%s", sum, sum2)
	}
	if rt2.StateHash() != rt.StateHash() {
		t.Error("rerun region state differs")
	}
}
