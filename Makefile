# Build/test entry points for the vSCC reproduction. `make check` is the
# tier-1 gate: gofmt + build + vet + lint + the fault-injection gate +
# race-enabled tests + a -benchtime=1x pass over every benchmark so
# bitrotted benchmark code fails fast.

GO ?= go

.PHONY: all fmt build vet lint test race bench bench-kernel fault soak check

all: check

# Fail listing any file gofmt would rewrite.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific analyzers (kernelclock, detorder, goryorder,
# flagdiscipline, tracealloc, simapi), interprocedural over the module
# call graph — see `go run ./cmd/vsccvet -rules` and DESIGN.md. CI runs
# the same suite with -json and archives the report.
lint:
	$(GO) run ./cmd/vsccvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches compile/runtime bitrot in
# benchmark-only code without paying for a real measurement.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Real kernel-throughput measurement (see BENCH_kernel.json), including
# the PDES engine's cross-kernel rate, BT wall-clock and the task
# runtime's workload wall-clock.
bench-kernel:
	$(GO) test ./internal/sim -run='^$$' -bench='KernelEventThroughput|PDESThroughput' -benchmem
	$(GO) test -run='^$$' -bench=PDESBT -benchtime=2x .
	$(GO) test ./internal/taskrt -run='^$$' -bench=TaskrtWorkloads -benchmem
	$(GO) run ./cmd/simbench

# Fault-injection gate: injector unit tests, the fault matrix, the
# recovery tests and the soak's 1x short schedule, all under the race
# detector, a short 16-point chaos campaign over both recovery
# harnesses, plus coverage floors on the injector, the PCIe packet layer
# and the multi-tenant scheduler (the packages carrying the
# fault/recovery and admission machinery). The sched profile merges the
# package tests with the root multi-tenant integration test.
fault:
	$(GO) test -race -short ./internal/fault
	$(GO) test -race -short -run Fault ./internal/harness .
	@$(GO) test -coverprofile=cover-fault.out -coverpkg=./internal/fault ./internal/fault >/dev/null; \
	pct=$$($(GO) tool cover -func=cover-fault.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	rm -f cover-fault.out; \
	echo "internal/fault coverage: $$pct%"; \
	awk -v p="$$pct" 'BEGIN { exit (p+0 < 80.0) ? 1 : 0 }' || \
		{ echo "internal/fault coverage below the 80% floor"; exit 1; }
	@$(GO) test -coverprofile=cover-pcie.out ./internal/pcie >/dev/null; \
	pct=$$($(GO) tool cover -func=cover-pcie.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	rm -f cover-pcie.out; \
	echo "internal/pcie coverage: $$pct%"; \
	awk -v p="$$pct" 'BEGIN { exit (p+0 < 80.0) ? 1 : 0 }' || \
		{ echo "internal/pcie coverage below the 80% floor"; exit 1; }
	@$(GO) test -coverprofile=cover-sched.out -coverpkg=./internal/sched ./internal/sched . >/dev/null; \
	pct=$$($(GO) tool cover -func=cover-sched.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	rm -f cover-sched.out; \
	echo "internal/sched coverage: $$pct%"; \
	awk -v p="$$pct" 'BEGIN { exit (p+0 < 80.0) ? 1 : 0 }' || \
		{ echo "internal/sched coverage below the 80% floor"; exit 1; }
	@$(GO) test -coverprofile=cover-lint.out ./internal/lint >/dev/null; \
	pct=$$($(GO) tool cover -func=cover-lint.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	rm -f cover-lint.out; \
	echo "internal/lint coverage: $$pct%"; \
	awk -v p="$$pct" 'BEGIN { exit (p+0 < 80.0) ? 1 : 0 }' || \
		{ echo "internal/lint coverage below the 80% floor"; exit 1; }
	@$(GO) test -coverprofile=cover-taskrt.out ./internal/taskrt >/dev/null; \
	pct=$$($(GO) tool cover -func=cover-taskrt.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	rm -f cover-taskrt.out; \
	echo "internal/taskrt coverage: $$pct%"; \
	awk -v p="$$pct" 'BEGIN { exit (p+0 < 80.0) ? 1 : 0 }' || \
		{ echo "internal/taskrt coverage below the 80% floor"; exit 1; }
	$(GO) run ./cmd/chaos -seed 1 -n 16
	@$(GO) test -short -coverprofile=cover-chaos.out ./internal/chaos >/dev/null; \
	pct=$$($(GO) tool cover -func=cover-chaos.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	rm -f cover-chaos.out; \
	echo "internal/chaos coverage: $$pct%"; \
	awk -v p="$$pct" 'BEGIN { exit (p+0 < 80.0) ? 1 : 0 }' || \
		{ echo "internal/chaos coverage below the 80% floor"; exit 1; }

# Full 10k-transfer fault soak (the short 1x schedule runs in `fault`).
soak:
	$(GO) test -run FaultSoak -v ./internal/harness

check: fmt build vet lint fault race bench
