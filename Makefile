# Build/test entry points for the vSCC reproduction. `make check` is the
# tier-1 gate: gofmt + build + vet + lint + race-enabled tests + a
# -benchtime=1x pass over every benchmark so bitrotted benchmark code
# fails fast.

GO ?= go

.PHONY: all fmt build vet lint test race bench bench-kernel check

all: check

# Fail listing any file gofmt would rewrite.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific analyzers (kernelclock, goryorder, flagdiscipline,
# tracealloc, simapi) — see `go run ./cmd/vsccvet -rules` and DESIGN.md.
lint:
	$(GO) run ./cmd/vsccvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches compile/runtime bitrot in
# benchmark-only code without paying for a real measurement.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Real kernel-throughput measurement (see BENCH_kernel.json).
bench-kernel:
	$(GO) test ./internal/sim -run='^$$' -bench=KernelEventThroughput -benchmem
	$(GO) run ./cmd/simbench

check: fmt build vet lint race bench
