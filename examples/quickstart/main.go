// Quickstart: assemble a two-device vSCC (96 cores), run an RCCE
// session across it, and exercise the basics — point-to-point messages
// over the device boundary, a global barrier, and an allreduce.
package main

import (
	"fmt"
	"log"

	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/vscc"
)

func main() {
	// The simulation kernel drives everything; one per experiment.
	k := sim.NewKernel()

	// A vSCC of two SCC devices coupled through the host communication
	// task, using the paper's best scheme (local put / local get through
	// the virtual DMA controller) for inter-device pairs.
	sys, err := vscc.NewSystem(k, vscc.Config{
		Devices: 2,
		Scheme:  vscc.SchemeVDMA,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 96 ranks, mapped linearly: ranks 0-47 on device 0, 48-95 on device 1.
	session, err := sys.NewSession(96)
	if err != nil {
		log.Fatal(err)
	}

	// The SPMD program every rank runs. Rank 0 sends a greeting across
	// the device boundary to rank 48; everyone joins a barrier and an
	// allreduce.
	const greeting = "hello from device 0 across the PCIe fabric"
	err = session.Run(func(r *rcce.Rank) {
		switch r.ID() {
		case 0:
			// A small message takes the direct path; a bulk payload goes
			// through the virtual DMA controller.
			if err := r.Send(48, []byte(greeting)); err != nil {
				panic(err)
			}
			bulk := make([]byte, 64*1024)
			for i := range bulk {
				bulk[i] = byte(i)
			}
			if err := r.Send(48, bulk); err != nil {
				panic(err)
			}
		case 48:
			buf := make([]byte, len(greeting))
			if err := r.Recv(0, buf); err != nil {
				panic(err)
			}
			x, y, z := vscc.Coord(r.Session().PlaceOf(r.ID()))
			fmt.Printf("rank 48 at (x=%d, y=%d, z=%d) received: %q\n", x, y, z, buf)
			bulk := make([]byte, 64*1024)
			if err := r.Recv(0, bulk); err != nil {
				panic(err)
			}
			fmt.Printf("rank 48 received a %d KB bulk payload through the vDMA controller\n", len(bulk)/1024)
		}

		r.Barrier()

		// Global sum of rank ids: 96*95/2 = 4560.
		v := []float64{float64(r.ID())}
		if err := r.Allreduce(rcce.OpSum, v); err != nil {
			panic(err)
		}
		if r.ID() == 0 {
			fmt.Printf("allreduce over 96 ranks: sum of ids = %.0f (want 4560)\n", v[0])
			fmt.Printf("simulated time: %.2f ms of 533 MHz core time\n",
				float64(r.Now())/533e3)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	st := sys.Task.Stats()
	fmt.Printf("communication task: %d vDMA copies, %d posted writes, %d SIF hits\n",
		st.VDMACopies, st.PostedWrites, st.SIFHits)
}
