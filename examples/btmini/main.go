// BTmini: the NPB BT pseudo-application with real arithmetic at class S,
// verified across decompositions and across the vSCC device boundary —
// the solution computed by 9 ranks spread over two devices matches the
// single-rank solution bit-for-bit up to reduction order.
package main

import (
	"fmt"
	"log"
	"math"

	"vscc/internal/npb"
	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/vscc"
)

const iterations = 3

// singleChip runs class S on one simulated SCC with the given rank count.
func singleChip(ranks int) npb.Result {
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, err := rcce.LinearPlaces([]*scc.Chip{chip}, ranks)
	if err != nil {
		log.Fatal(err)
	}
	session, err := rcce.NewSession(k, []*scc.Chip{chip}, places)
	if err != nil {
		log.Fatal(err)
	}
	d, err := npb.NewDecomp(npb.ClassS.N, ranks)
	if err != nil {
		log.Fatal(err)
	}
	res, err := npb.RunOn(session, d, npb.Config{Class: npb.ClassS, Iterations: iterations})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// crossDevice runs class S with 9 ranks spread over two devices.
func crossDevice(scheme vscc.Scheme) npb.Result {
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: scheme})
	if err != nil {
		log.Fatal(err)
	}
	places := make([]rcce.Place, 9)
	for i := range places {
		places[i] = rcce.Place{Dev: i % 2, Core: i / 2}
	}
	session, err := sys.NewSessionAt(places)
	if err != nil {
		log.Fatal(err)
	}
	d, err := npb.NewDecomp(npb.ClassS.N, 9)
	if err != nil {
		log.Fatal(err)
	}
	res, err := npb.RunOn(session, d, npb.Config{Class: npb.ClassS, Iterations: iterations})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Printf("NPB BT class S (%d^3), %d iterations, real arithmetic\n\n", npb.ClassS.N, iterations)
	serial := singleChip(1)
	fmt.Printf("  serial (1 rank):      checksum[0] = %.12f\n", serial.Checksum[0])

	par := singleChip(9)
	fmt.Printf("  9 ranks, one chip:    checksum[0] = %.12f  (%.3f GFLOP/s modelled)\n",
		par.Checksum[0], par.GFlops)

	cross := crossDevice(vscc.SchemeVDMA)
	fmt.Printf("  9 ranks, two devices: checksum[0] = %.12f  (%.3f GFLOP/s modelled)\n",
		cross.Checksum[0], cross.GFlops)

	worst := 0.0
	for m := 0; m < 5; m++ {
		rel := math.Abs(cross.Checksum[m]-serial.Checksum[m]) / math.Abs(serial.Checksum[m])
		if rel > worst {
			worst = rel
		}
	}
	fmt.Printf("\n  max relative deviation across devices: %.2e (reduction-order roundoff)\n", worst)
	if worst > 1e-9 {
		log.Fatal("verification FAILED")
	}
	fmt.Println("  verification PASSED")
}
