// Stencil: a 2D Jacobi heat-diffusion solver on a single SCC, the kind
// of neighbourhood-communication workload the paper's conclusion calls
// out as scaling excellently. Halo exchanges use iRCCE non-blocking
// requests so both directions of each boundary proceed concurrently,
// and convergence is checked with an allreduce.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"vscc/internal/ircce"
	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
)

const (
	ranks   = 16 // 4x4 process grid
	npx     = 4  // process grid width
	local   = 24 // local sub-domain edge (interior)
	maxIter = 200
	epsilon = 1e-4
)

func main() {
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, err := rcce.LinearPlaces([]*scc.Chip{chip}, ranks)
	if err != nil {
		log.Fatal(err)
	}
	session, err := rcce.NewSession(k, []*scc.Chip{chip}, places)
	if err != nil {
		log.Fatal(err)
	}

	err = session.Run(func(r *rcce.Rank) {
		me := r.ID()
		px, py := me%npx, me/npx
		eng := ircce.New(r)

		// Grid with a one-cell halo; hot west edge of the global domain.
		cur := make([][]float64, local+2)
		next := make([][]float64, local+2)
		for i := range cur {
			cur[i] = make([]float64, local+2)
			next[i] = make([]float64, local+2)
		}
		if px == 0 {
			for j := 0; j < local+2; j++ {
				cur[j][0], next[j][0] = 100, 100
			}
		}

		neighbor := func(dx, dy int) int {
			nx, ny := px+dx, py+dy
			if nx < 0 || nx >= npx || ny < 0 || ny >= ranks/npx {
				return -1
			}
			return ny*npx + nx
		}
		west, east := neighbor(-1, 0), neighbor(+1, 0)
		north, south := neighbor(0, -1), neighbor(0, +1)

		colBuf := func(col int) []byte {
			b := make([]byte, 8*local)
			for j := 0; j < local; j++ {
				binary.LittleEndian.PutUint64(b[8*j:], math.Float64bits(cur[j+1][col]))
			}
			return b
		}
		rowBuf := func(row int) []byte {
			b := make([]byte, 8*local)
			for i := 0; i < local; i++ {
				binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(cur[row][i+1]))
			}
			return b
		}
		setCol := func(col int, b []byte) {
			for j := 0; j < local; j++ {
				cur[j+1][col] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*j:]))
			}
		}
		setRow := func(row int, b []byte) {
			for i := 0; i < local; i++ {
				cur[row][i+1] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
			}
		}

		iter := 0
		for ; iter < maxIter; iter++ {
			// Halo exchange: post all four directions as non-blocking
			// requests, then wait — no parity choreography needed.
			var reqs []*ircce.Request
			recvW := make([]byte, 8*local)
			recvE := make([]byte, 8*local)
			recvN := make([]byte, 8*local)
			recvS := make([]byte, 8*local)
			post := func(peer int, out []byte, in []byte) {
				if peer < 0 {
					return
				}
				sq, err := eng.Isend(peer, out)
				if err != nil {
					panic(err)
				}
				rq, err := eng.Irecv(peer, in)
				if err != nil {
					panic(err)
				}
				reqs = append(reqs, sq, rq)
			}
			post(west, colBuf(1), recvW)
			post(east, colBuf(local), recvE)
			post(north, rowBuf(1), recvN)
			post(south, rowBuf(local), recvS)
			eng.WaitAll(reqs...)
			if west >= 0 {
				setCol(0, recvW)
			}
			if east >= 0 {
				setCol(local+1, recvE)
			}
			if north >= 0 {
				setRow(0, recvN)
			}
			if south >= 0 {
				setRow(local+1, recvS)
			}

			// Jacobi update; charge the FP work to the core.
			var diff float64
			for j := 1; j <= local; j++ {
				for i := 1; i <= local; i++ {
					v := 0.25 * (cur[j][i-1] + cur[j][i+1] + cur[j-1][i] + cur[j+1][i])
					d := v - cur[j][i]
					if d < 0 {
						d = -d
					}
					if d > diff {
						diff = d
					}
					next[j][i] = v
				}
			}
			r.ComputeFlops(float64(local * local * 6))
			cur, next = next, cur

			// Convergence check every 10 iterations.
			if iter%10 == 9 {
				v := []float64{diff}
				if err := r.Allreduce(rcce.OpMax, v); err != nil {
					panic(err)
				}
				if v[0] < epsilon {
					break
				}
			}
		}

		// Report the global mean temperature.
		var sum float64
		for j := 1; j <= local; j++ {
			for i := 1; i <= local; i++ {
				sum += cur[j][i]
			}
		}
		v := []float64{sum}
		if err := r.Allreduce(rcce.OpSum, v); err != nil {
			panic(err)
		}
		if me == 0 {
			n := float64(ranks * local * local)
			fmt.Printf("converged after %d iterations; mean temperature %.3f\n", iter+1, v[0]/n)
			fmt.Printf("simulated time: %.2f ms\n", float64(r.Now())/533e3)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
