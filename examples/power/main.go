// Power: the SCC's frequency/voltage islands through the RCCE 2.0 power
// API. A bulk-synchronous computation with imbalanced work lets the
// lightly loaded ranks clock their tiles down while waiting at the
// barrier — same completion time, lower power — and clock back up for
// the communication phase.
package main

import (
	"fmt"
	"log"

	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
)

const (
	ranks     = 8
	heavyWork = 4_000_000 // flops on the bottleneck rank
	lightWork = 1_000_000
)

func run(scaleDown bool) (finish sim.Cycles, avgMHz, joules float64) {
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, err := rcce.LinearPlaces([]*scc.Chip{chip}, ranks)
	if err != nil {
		log.Fatal(err)
	}
	session, err := rcce.NewSession(k, []*scc.Chip{chip}, places)
	if err != nil {
		log.Fatal(err)
	}
	var mhzSum float64
	var done sim.Cycles
	chipRef := chip
	err = session.Run(func(r *rcce.Rank) {
		work := float64(lightWork)
		if r.ID() == 0 {
			work = heavyWork
		}
		if scaleDown && r.ID() != 0 {
			// Light ranks: a quarter of the work — halve the clock
			// (divider 6 -> 266 MHz) and still arrive before the
			// bottleneck rank. Frequency-only changes are instant; the
			// island stays at 0.9 V, which supports divider >= 3.
			if err := r.SetFrequencyDivider(6); err != nil {
				panic(err)
			}
		}
		mhzSum += float64(r.FrequencyMHz())
		r.ComputeFlops(work)
		if scaleDown && r.ID() != 0 {
			if err := r.SetFrequencyDivider(3); err != nil { // back to 533 MHz
				panic(err)
			}
		}
		r.Barrier()
		// Communication phase at full clock: ring shift of results.
		buf := make([]byte, 1024)
		next := (r.ID() + 1) % r.N()
		prev := (r.ID() + r.N() - 1) % r.N()
		if r.ID()%2 == 0 {
			r.Send(next, buf)
			r.Recv(prev, buf)
		} else {
			r.Recv(prev, buf)
			r.Send(next, buf)
		}
		if r.ID() == 0 {
			done = r.Now()
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	// Energy of the four tiles running the ranks, over the whole run.
	for tile := 0; tile < ranks/2; tile++ {
		joules += chipRef.TileEnergyJoules(tile, done)
	}
	return done, mhzSum / ranks, joules
}

func main() {
	full, fullMHz, fullJ := run(false)
	scaled, scaledMHz, scaledJ := run(true)
	fmt.Println("imbalanced BSP phase on 8 cores (rank 0 does 4x the work):")
	fmt.Printf("  all tiles at 533 MHz:           finish at %8.2f ms, mean clock %3.0f MHz, %6.1f mJ\n",
		float64(full)/533e3, fullMHz, 1000*fullJ)
	fmt.Printf("  light ranks scaled to 266 MHz:  finish at %8.2f ms, mean clock %3.0f MHz, %6.1f mJ\n",
		float64(scaled)/533e3, scaledMHz, 1000*scaledJ)
	slowdown := float64(scaled)/float64(full) - 1
	saved := 1 - scaledJ/fullJ
	fmt.Printf("\ncompletion time cost of the scaling: %.1f %% — energy saved: %.1f %%\n", 100*slowdown, 100*saved)
	fmt.Println("(the barrier hides the slow tiles; P ~ V^2*f, so halving idle-wait clocks is free performance-wise)")
	fmt.Println("frequency changes are instant; voltage transitions (ISetPower) cost ~1 ms per island.")
}
