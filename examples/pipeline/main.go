// Pipeline: a bulk-transfer scenario contrasting the wire protocols the
// paper builds on — RCCE's blocking local-put/remote-get, iRCCE's
// pipelined double-buffering on-chip, and the vSCC vDMA scheme across
// the device boundary — for a 1 MB payload, the bandwidth-oriented
// pattern of the evaluation's Fig. 6.
package main

import (
	"bytes"
	"fmt"
	"log"

	"vscc/internal/ircce"
	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/vscc"
)

const payload = 1 << 20 // 1 MB

func fill(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 2654435761)
	}
	return b
}

// onChip transfers the payload between two cores of one SCC under the
// given protocol and returns MB/s.
func onChip(proto rcce.Protocol) float64 {
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, err := rcce.LinearPlaces([]*scc.Chip{chip}, 2)
	if err != nil {
		log.Fatal(err)
	}
	var opts []rcce.Option
	if proto != nil {
		opts = append(opts, rcce.WithProtocol(proto))
	}
	session, err := rcce.NewSession(k, []*scc.Chip{chip}, places, opts...)
	if err != nil {
		log.Fatal(err)
	}
	return transfer(session, 1)
}

// interDevice transfers the payload across the device boundary under a
// vSCC scheme.
func interDevice(scheme vscc.Scheme) float64 {
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: scheme})
	if err != nil {
		log.Fatal(err)
	}
	session, err := sys.NewSession(96)
	if err != nil {
		log.Fatal(err)
	}
	return transfer(session, 48)
}

// transfer sends the payload from rank 0 to rank dest and returns the
// achieved MB/s, verifying integrity end to end.
func transfer(session *rcce.Session, dest int) float64 {
	msg := fill(payload)
	got := make([]byte, payload)
	var start, end sim.Cycles
	err := session.Run(func(r *rcce.Rank) {
		switch r.ID() {
		case 0:
			start = r.Now()
			if err := r.Send(dest, msg); err != nil {
				panic(err)
			}
		case dest:
			if err := r.Recv(0, got); err != nil {
				panic(err)
			}
			end = r.Now()
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		log.Fatal("payload corrupted in flight")
	}
	return session.Chip(0).Params.MBPerSecond(payload, end-start)
}

func main() {
	fmt.Printf("bulk transfer of %d KB:\n\n", payload/1024)
	fmt.Printf("  %-46s %8.2f MB/s\n", "on-chip, RCCE blocking (local put/remote get):", onChip(nil))
	fmt.Printf("  %-46s %8.2f MB/s\n", "on-chip, iRCCE pipelined:", onChip(&ircce.PipelinedProtocol{}))
	fmt.Println()
	for _, scheme := range []vscc.Scheme{vscc.SchemeRouting, vscc.SchemeCachedGet, vscc.SchemeRemotePut, vscc.SchemeVDMA} {
		fmt.Printf("  inter-device, %-32s %8.2f MB/s\n", scheme.String()+":", interDevice(scheme))
	}
	fmt.Println("\nevery byte is verified end to end through the simulated memory system.")
}
