// Ablation benchmarks for the design choices of the communication task
// (DESIGN.md §5): SIF prefetch streaming, write-combining flush
// granularity, vDMA burst and slot sizes, and the small-message direct
// threshold. Each reports the resulting throughput (or latency) as a
// custom metric.
package vscc_test

import (
	"fmt"
	"testing"

	"vscc/internal/harness"
	"vscc/internal/npb"
	"vscc/internal/vscc"
)

// BenchmarkAblationSIFStreaming isolates the prefetch-to-device stream
// behind the cached local-put/remote-get scheme.
func BenchmarkAblationSIFStreaming(b *testing.B) {
	for _, mode := range []string{"streaming", "no-streaming"} {
		b.Run(mode, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				on, off, err := harness.AblateSIFStreaming(65536, 2)
				if err != nil {
					b.Fatal(err)
				}
				if mode == "streaming" {
					mbps = on
				} else {
					mbps = off
				}
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// BenchmarkAblationWCBFlush sweeps the host write-combining flush
// threshold under the remote-put scheme.
func BenchmarkAblationWCBFlush(b *testing.B) {
	for _, fb := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("%dB", fb), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				res, err := harness.AblateWCBFlush(65536, 2, []int{fb})
				if err != nil {
					b.Fatal(err)
				}
				mbps = res[fb]
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// BenchmarkAblationDMABurst sweeps the host DMA burst size under the
// vDMA scheme.
func BenchmarkAblationDMABurst(b *testing.B) {
	for _, burst := range []int{256, 1024, 3424} {
		b.Run(fmt.Sprintf("%dB", burst), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				res, err := harness.AblateDMABurst(65536, 2, []int{burst})
				if err != nil {
					b.Fatal(err)
				}
				mbps = res[burst]
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// BenchmarkAblationVDMASlot sweeps the vDMA double-buffer slot size —
// the pipelining choice that removes the 8 kB slope.
func BenchmarkAblationVDMASlot(b *testing.B) {
	for _, slot := range []int{512, 1024, 2048, 3424} {
		b.Run(fmt.Sprintf("%dB", slot), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				res, err := harness.AblateVDMASlot(65536, 2, []int{slot})
				if err != nil {
					b.Fatal(err)
				}
				mbps = res[slot]
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// BenchmarkAblationDirectThreshold compares small-message latency with
// and without the direct-transfer path (§3.3).
func BenchmarkAblationDirectThreshold(b *testing.B) {
	for _, mode := range []string{"direct", "host-engaged"} {
		b.Run(mode, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				direct, engaged, err := harness.AblateDirectThreshold(vscc.SchemeVDMA, 64, 4)
				if err != nil {
					b.Fatal(err)
				}
				if mode == "direct" {
					cycles = float64(direct)
				} else {
					cycles = float64(engaged)
				}
			}
			b.ReportMetric(cycles, "cycles/msg")
		})
	}
}

// BenchmarkLUSchemeSensitivity contrasts the latency-bound LU workload
// (extension) under the optimal and worst inter-device schemes — LU's
// per-plane pencil messages amplify the latency gap far beyond BT's.
func BenchmarkLUSchemeSensitivity(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		scheme vscc.Scheme
	}{{"vdma", vscc.SchemeVDMA}, {"routing", vscc.SchemeRouting}} {
		b.Run(cfg.name, func(b *testing.B) {
			var gf float64
			for i := 0; i < b.N; i++ {
				pt, err := harness.LURun(harness.BTSweepConfig{
					Class: npb.ClassA, Iterations: 1, Scheme: cfg.scheme, Devices: 2,
				}, 64)
				if err != nil {
					b.Fatal(err)
				}
				gf = pt.GFlops
			}
			b.ReportMetric(gf, "GFLOP/s")
		})
	}
}
