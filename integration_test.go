// Integration tests across the full stack: the 240-core flagship
// configuration, protocol timelines, end-to-end determinism, failure
// injection, and application-level data integrity through every layer.
package vscc_test

import (
	"bytes"
	"math"
	"testing"

	"vscc/internal/ircce"
	"vscc/internal/npb"
	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

func TestFlagship240CoreAllReduce(t *testing.T) {
	// The paper's headline system: five devices, 240 cores, one session.
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 5, Scheme: vscc.SchemeVDMA})
	if err != nil {
		t.Fatal(err)
	}
	session, err := sys.NewSession(240)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	err = session.Run(func(r *rcce.Rank) {
		v := []float64{float64(r.ID() + 1)}
		if err := r.Allreduce(rcce.OpSum, v); err != nil {
			panic(err)
		}
		if r.ID() == 0 {
			sum = v[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(240 * 241 / 2); sum != want {
		t.Errorf("allreduce over 240 cores = %v, want %v", sum, want)
	}
}

func TestVDMATimelineOverlapsPutAndGet(t *testing.T) {
	// The mechanism behind the removed 8 kB slope: with double-buffered
	// slots, the sender's put of chunk k+1 overlaps the receiver's local
	// get of chunk k.
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: vscc.SchemeVDMA})
	if err != nil {
		t.Fatal(err)
	}
	tl := sim.NewTimeline(k)
	session, err := sys.NewSession(96, rcce.WithTimeline(tl))
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 64*1024)
	err = session.Run(func(r *rcce.Rank) {
		if r.ID() == 0 {
			r.Send(48, msg)
		} else if r.ID() == 48 {
			r.Recv(0, make([]byte, len(msg)))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tl.Overlap("put", "localget") {
		t.Error("vDMA pipeline did not overlap sender put with receiver get")
	}
}

func TestEndToEndDeterminism(t *testing.T) {
	// A full mixed workload — BT timing run over three devices — ends at
	// the identical simulated cycle on every rerun.
	run := func() sim.Cycles {
		k := sim.NewKernel()
		sys, err := vscc.NewSystem(k, vscc.Config{Devices: 3, Scheme: vscc.SchemeVDMA})
		if err != nil {
			t.Fatal(err)
		}
		session, err := sys.NewSession(64)
		if err != nil {
			t.Fatal(err)
		}
		d, err := npb.NewDecomp(64, 64)
		if err != nil {
			t.Fatal(err)
		}
		res, err := npb.RunOn(session, d, npb.Config{Class: npb.ClassA, Iterations: 1, Timing: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	first := run()
	second := run()
	if first != second {
		t.Fatalf("nondeterministic full-stack run: %d vs %d", first, second)
	}
}

func TestDegradedSystemStillComputesCorrectly(t *testing.T) {
	// Silent core failures (paper §4): a 2-device system boots with
	// failed cores; the session maps around them and BT still verifies
	// against the healthy run.
	healthy := runBTChecksum(t, nil)
	degraded := runBTChecksum(t, map[int][]int{0: {3, 17}, 1: {0, 40, 41}})
	for m := 0; m < 5; m++ {
		rel := math.Abs(degraded[m]-healthy[m]) / math.Abs(healthy[m])
		if rel > 1e-9 {
			t.Errorf("degraded checksum[%d] differs by %.2e", m, rel)
		}
	}
}

func runBTChecksum(t *testing.T, failed map[int][]int) npb.Vec5 {
	t.Helper()
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: vscc.SchemeVDMA, FailedCores: failed})
	if err != nil {
		t.Fatal(err)
	}
	session, err := sys.NewSession(9)
	if err != nil {
		t.Fatal(err)
	}
	d, err := npb.NewDecomp(npb.ClassS.N, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := npb.RunOn(session, d, npb.Config{Class: npb.ClassS, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res.Checksum
}

func TestMixedProtocolsOneSession(t *testing.T) {
	// Blocking RCCE, the iRCCE engine (on-chip) and the async vDMA
	// engine (cross-device) interoperate within one session.
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: vscc.SchemeVDMA})
	if err != nil {
		t.Fatal(err)
	}
	session, err := sys.NewSession(96)
	if err != nil {
		t.Fatal(err)
	}
	const size = 9000
	mk := func(seed byte) []byte {
		b := make([]byte, size)
		for i := range b {
			b[i] = byte(i)*3 + seed
		}
		return b
	}
	got1 := make([]byte, size) // on-chip via iRCCE engine
	got2 := make([]byte, size) // cross-device via async engine
	got3 := make([]byte, size) // cross-device blocking
	err = session.Run(func(r *rcce.Rank) {
		switch r.ID() {
		case 0:
			eng := ircce.New(r)
			q, err := eng.Isend(1, mk(1))
			if err != nil {
				panic(err)
			}
			eng.Wait(q)
			ae, err := vscc.NewAsyncEngine(r)
			if err != nil {
				panic(err)
			}
			aq, err := ae.Isend(48, mk(2))
			if err != nil {
				panic(err)
			}
			ae.Wait(aq)
			r.Send(49, mk(3))
		case 1:
			eng := ircce.New(r)
			q, err := eng.Irecv(0, got1)
			if err != nil {
				panic(err)
			}
			eng.Wait(q)
		case 48:
			ae, err := vscc.NewAsyncEngine(r)
			if err != nil {
				panic(err)
			}
			aq, err := ae.Irecv(0, got2)
			if err != nil {
				panic(err)
			}
			ae.Wait(aq)
		case 49:
			r.Recv(0, got3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, mk(1)) || !bytes.Equal(got2, mk(2)) || !bytes.Equal(got3, mk(3)) {
		t.Error("mixed-protocol session corrupted data")
	}
}

func TestTrafficObserverSeesAsyncTransfers(t *testing.T) {
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: vscc.SchemeVDMA})
	if err != nil {
		t.Fatal(err)
	}
	m := trace.NewMatrix(96, 48)
	session, err := sys.NewSession(96, rcce.WithTrafficObserver(m.Record))
	if err != nil {
		t.Fatal(err)
	}
	err = session.Run(func(r *rcce.Rank) {
		switch r.ID() {
		case 0:
			ae, _ := vscc.NewAsyncEngine(r)
			q, _ := ae.Isend(48, make([]byte, 5000))
			ae.Wait(q)
		case 48:
			ae, _ := vscc.NewAsyncEngine(r)
			q, _ := ae.Irecv(0, make([]byte, 5000))
			ae.Wait(q)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Bytes(0, 48) != 5000 {
		t.Errorf("traffic(0,48) = %d, want 5000", m.Bytes(0, 48))
	}
	if m.InterDeviceBytes() != 5000 {
		t.Errorf("inter-device bytes = %d", m.InterDeviceBytes())
	}
}

func TestPowerScalingUnderBT(t *testing.T) {
	// Application-level frequency scaling: BT on a half-clocked chip
	// takes proportionally longer but stays correct.
	run := func(divider int) (npb.Vec5, sim.Cycles) {
		k := sim.NewKernel()
		chip := scc.NewChip(k, 0, scc.DefaultParams())
		if divider != scc.DefaultDivider {
			for tile := 0; tile < scc.NumTiles; tile++ {
				if err := chip.SetTileDivider(tile, divider); err != nil {
					t.Fatal(err)
				}
			}
		}
		places, err := rcce.LinearPlaces([]*scc.Chip{chip}, 4)
		if err != nil {
			t.Fatal(err)
		}
		session, err := rcce.NewSession(k, []*scc.Chip{chip}, places)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := npb.NewDecomp(npb.ClassS.N, 4)
		res, err := npb.RunOn(session, d, npb.Config{Class: npb.ClassS, Iterations: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.Checksum, res.Cycles
	}
	fastSum, fastCycles := run(scc.DefaultDivider)
	slowSum, slowCycles := run(6)
	if fastSum != slowSum {
		t.Error("frequency scaling changed the numerical result")
	}
	ratio := float64(slowCycles) / float64(fastCycles)
	if ratio < 1.5 || ratio > 2.1 {
		t.Errorf("half clock slowed BT by %.2fx, want ~2x (compute dominated)", ratio)
	}
}
