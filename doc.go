// Package vscc is the root of a Go reproduction of "Effective
// Communication for a System of Cluster-on-a-Chip Processors" (Reble,
// Fischer, Lankes, Müller — PMAM/PPoPP 2015): a functional simulator of
// the Intel SCC research processor, the RCCE/iRCCE communication
// libraries, and the vSCC multi-device system with its host-accelerated
// inter-device communication schemes.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation section.
package vscc
