// Command simbench measures the simulation engine's raw event
// throughput — the number this repository's equivalent of a training
// step time, since every reproduced figure is millions of kernel
// events. It runs each workload several times and reports order
// statistics (min/median/p99/max via stats.Summarize) instead of a
// single hot number; -json writes the same data for BENCH_kernel.json.
//
// Workloads mirror BenchmarkKernelEventThroughput in internal/sim:
//
//	callback-chain    timed callbacks, queue depth 1 (pure heap cost)
//	same-cycle-chain  current-instant cascades (bucket fast path)
//	deep-queue-1024   heap behaviour at depth 1024
//	process-delay     goroutine yield/resume handshake
//	cond-pingpong     two processes alternating through conditions
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"vscc/internal/sim"
	"vscc/internal/stats"
)

type workload struct {
	name string
	run  func(events int) // executes exactly `events` kernel events
}

func workloads() []workload {
	return []workload{
		{"callback-chain", func(events int) {
			k := sim.NewKernel()
			n := 0
			var step func()
			step = func() {
				n++
				if n < events {
					k.After(1, step)
				}
			}
			k.After(1, step)
			must(k.Run())
		}},
		{"same-cycle-chain", func(events int) {
			k := sim.NewKernel()
			n := 0
			var step func()
			step = func() {
				n++
				if n < events {
					k.After(0, step)
				}
			}
			k.After(1, step)
			must(k.Run())
		}},
		{"deep-queue-1024", func(events int) {
			const depth = 1024
			k := sim.NewKernel()
			n := 0
			var refill func()
			refill = func() {
				n++
				if n < events {
					k.After(sim.Cycles(1+n%depth), refill)
				}
			}
			for i := 0; i < depth && i < events; i++ {
				k.After(sim.Cycles(1+i), refill)
				n++
			}
			must(k.Run())
		}},
		{"process-delay", func(events int) {
			k := sim.NewKernel()
			k.Spawn("p", func(p *sim.Proc) {
				for i := 0; i < events; i++ {
					p.Delay(1)
				}
			})
			must(k.Run())
		}},
		{"cond-pingpong", func(events int) {
			k := sim.NewKernel()
			ping := sim.NewCond(k, "ping")
			pong := sim.NewCond(k, "pong")
			turn := 0
			k.Spawn("a", func(p *sim.Proc) {
				for i := 0; i < events; i++ {
					for turn != 0 {
						ping.Wait(p)
					}
					turn = 1
					pong.Signal()
				}
			})
			k.Spawn("b", func(p *sim.Proc) {
				for i := 0; i < events; i++ {
					for turn != 1 {
						pong.Wait(p)
					}
					turn = 0
					ping.Signal()
				}
			})
			must(k.Run())
		}},
	}
}

// result is the JSON record for one workload.
type result struct {
	Workload    string  `json:"workload"`
	EventsPerOp int     `json:"events_per_rep"`
	Reps        int     `json:"reps"`
	NsPerEvent  summary `json:"ns_per_event"`
	EventsPerS  summary `json:"events_per_sec"`
}

// summary mirrors stats.Summary with JSON tags and only the order
// statistics benchmark comparisons need.
type summary struct {
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	P99    float64 `json:"p99"`
	Max    float64 `json:"max"`
}

func toSummary(s stats.Summary) summary {
	return summary{Min: s.Min, Median: s.Median, P99: s.P99, Max: s.Max}
}

func main() {
	events := flag.Int("events", 1_000_000, "kernel events per repetition")
	reps := flag.Int("reps", 7, "repetitions per workload (summarized)")
	jsonPath := flag.String("json", "", "write results as JSON to this file")
	flag.Parse()

	var out []result
	rows := [][]string{{"workload", "ns/event (median)", "p99", "events/s (median)"}}
	for _, w := range workloads() {
		nsPer := make([]float64, 0, *reps)
		evPerS := make([]float64, 0, *reps)
		for r := 0; r < *reps; r++ {
			start := time.Now()
			w.run(*events)
			el := time.Since(start)
			nsPer = append(nsPer, float64(el.Nanoseconds())/float64(*events))
			evPerS = append(evPerS, float64(*events)/el.Seconds())
		}
		ns, ev := stats.Summarize(nsPer), stats.Summarize(evPerS)
		out = append(out, result{
			Workload: w.name, EventsPerOp: *events, Reps: *reps,
			NsPerEvent: toSummary(ns), EventsPerS: toSummary(ev),
		})
		rows = append(rows, []string{
			w.name,
			fmt.Sprintf("%.1f", ns.Median),
			fmt.Sprintf("%.1f", ns.P99),
			fmt.Sprintf("%.0f", ev.Median),
		})
	}
	fmt.Print(stats.Table(rows))

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(map[string]interface{}{
			"benchmark": "simbench kernel event throughput",
			"results":   out,
		}, "", "  ")
		must(err)
		must(os.WriteFile(*jsonPath, append(blob, '\n'), 0o644))
		fmt.Println("wrote", *jsonPath)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
}
