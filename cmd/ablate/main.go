// Command ablate runs the ablation studies for the communication task's
// design choices (DESIGN.md §4b/4c): SIF prefetch streaming, the
// write-combining flush granularity, the vDMA burst and slot sizes, the
// small-message direct-transfer threshold, and topology-aware placement.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"vscc/internal/harness"
	"vscc/internal/stats"
	"vscc/internal/vscc"
)

func main() {
	size := flag.Int("size", 65536, "message size for throughput ablations [B]")
	reps := flag.Int("reps", 3, "round trips per measurement")
	parallel := flag.Int("parallel", 0, "sweep points run concurrently (0 = GOMAXPROCS, 1 = serial)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of the ping-pong ablations")
	metrics := flag.Bool("metrics", false, "print a cycle-accurate metrics report per ablation point")
	checkMode := flag.Bool("check", false, "run with the MPB consistency checker (panics on stale-line reads)")
	faultSpec := flag.String("fault", "", "deterministic fault schedule, e.g. \"seed=7,drop=20,stall=1000000:200000\" (see internal/fault)")
	flag.Parse()
	harness.SetParallelism(*parallel)
	harness.SetConsistencyCheck(*checkMode)
	check(harness.SetFaultSpec(*faultSpec))
	obs := harness.EnableObservability(*traceOut, *metrics)

	fmt.Println("== ablation: SIF prefetch streaming (LP/RG + cache) ==")
	on, off, err := harness.AblateSIFStreaming(*size, *reps)
	check(err)
	fmt.Print(stats.Table([][]string{
		{"configuration", "MB/s"},
		{"streaming (prefetch to the reader's SIF)", fmt.Sprintf("%.2f", on)},
		{"no streaming (every read round-trips)", fmt.Sprintf("%.2f", off)},
	}))
	fmt.Printf("-> the stream is worth %.1fx\n\n", on/off)

	fmt.Println("== ablation: write-combining flush granularity (RP + WCB) ==")
	flushes := []int{64, 256, 1024, 4096}
	res, err := harness.AblateWCBFlush(*size, *reps, flushes)
	check(err)
	printSweep("flush threshold [B]", flushes, res)

	fmt.Println("== ablation: host DMA burst size (LP/LG + vDMA) ==")
	bursts := []int{128, 256, 1024, 3424}
	res, err = harness.AblateDMABurst(*size, *reps, bursts)
	check(err)
	printSweep("burst [B]", bursts, res)

	fmt.Println("== ablation: vDMA double-buffer slot size ==")
	slots := []int{512, 1024, 2048, 3424}
	res, err = harness.AblateVDMASlot(*size, *reps, slots)
	check(err)
	printSweep("slot [B]", slots, res)

	fmt.Println("== ablation: small-message direct threshold (64 B, vDMA scheme) ==")
	direct, engaged, err := harness.AblateDirectThreshold(vscc.SchemeVDMA, 64, *reps)
	check(err)
	fmt.Print(stats.Table([][]string{
		{"path", "cycles/message"},
		{"direct transfer (below threshold)", fmt.Sprint(direct)},
		{"vDMA engaged", fmt.Sprint(engaged)},
	}))
	fmt.Printf("-> the threshold saves %.1f%% latency on 64 B messages (paper §3.3: 32-128 B)\n\n",
		100*(1-float64(direct)/float64(engaged)))

	fmt.Println("== ablation: BT 100 ranks under every scheme (1 iteration, class C) ==")
	schemes := []vscc.Scheme{vscc.SchemeRouting, vscc.SchemeCachedGet, vscc.SchemeRemotePut, vscc.SchemeVDMA}
	bt, err := harness.AblateBTScheme(100, 1, schemes)
	check(err)
	rows := [][]string{{"scheme", "GFLOP/s"}}
	for _, s := range schemes {
		rows = append(rows, []string{s.String(), fmt.Sprintf("%.3f", bt[s])})
	}
	fmt.Print(stats.Table(rows))
	check(obs.Finish(os.Stdout))
}

func printSweep(label string, keys []int, res map[int]float64) {
	sort.Ints(keys)
	rows := [][]string{{label, "MB/s"}}
	for _, k := range keys {
		rows = append(rows, []string{fmt.Sprint(k), fmt.Sprintf("%.2f", res[k])})
	}
	fmt.Print(stats.Table(rows))
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
}
