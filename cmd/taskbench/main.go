// Command taskbench runs the task-dataflow runtime's workloads
// (internal/taskrt) across the communication schemes: blocked Cholesky,
// a Jacobi stencil with halo exchange, and a key-value request/response
// service, each as a sweep of independent replicas. The output — one
// deterministic line per replica, with scheduler totals, per-class
// argument-movement counts, the end cycle and the region-state hash —
// byte-compares across reruns and -parallel settings; the CI
// taskrt-identity job holds that bar, with and without a scheduled
// device crash.
//
// With -graph FILE the workload is a task-spec document instead (see
// the grammar in internal/taskrt/spec.go).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vscc/internal/harness"
	"vscc/internal/taskrt"
	"vscc/internal/vscc"
)

func main() {
	workload := flag.String("workload", "all", "workload: cholesky, stencil, kv, or all")
	schemes := flag.String("schemes", "all", "comma-separated scheme keys (host-routed, cached-get, remote-put, vdma, ...) or all")
	devices := flag.Int("devices", 2, "SCC devices")
	ranks := flag.Int("ranks", 4, "worker ranks, spread round-robin across devices")
	size := flag.Int("size", 4, "decomposition: Cholesky tile grid, stencil strips, kv shards")
	iters := flag.Int("iters", 8, "stencil sweeps / kv requests")
	replicas := flag.Int("replicas", 1, "independent replicas per (workload, scheme) point")
	parallel := flag.Int("parallel", 0, "replicas run concurrently (0 = GOMAXPROCS, 1 = serial)")
	faultSpec := flag.String("fault", "", "deterministic fault schedule, e.g. \"seed=1,devcrash=150000:1:200000,ckpt=50000,devretry=1\" (see internal/fault)")
	checkMPB := flag.Bool("check", false, "enable the MPB consistency checker")
	graph := flag.String("graph", "", "run a task-spec file instead of a named workload")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of every replica")
	metrics := flag.Bool("metrics", false, "print a cycle-accurate metrics report per replica")
	flag.Parse()

	harness.SetParallelism(*parallel)
	harness.SetConsistencyCheck(*checkMPB)
	check(harness.SetFaultSpec(*faultSpec))
	obs := harness.EnableObservability(*traceOut, *metrics)

	if *graph != "" {
		check(runGraph(*graph, *ranks))
		check(obs.Finish(os.Stdout))
		return
	}

	workloads := taskrt.Workloads()
	if *workload != "all" {
		workloads = []string{*workload}
	}
	var schemeList []vscc.Scheme
	if *schemes == "all" {
		schemeList = []vscc.Scheme{
			vscc.SchemeHostRouted, vscc.SchemeHWAccel, vscc.SchemeCachedGet,
			vscc.SchemeRemotePut, vscc.SchemeVDMA,
		}
	} else {
		for _, key := range strings.Split(*schemes, ",") {
			s, ok := vscc.SchemeByKey(strings.TrimSpace(key))
			if !ok {
				check(fmt.Errorf("unknown scheme %q", key))
			}
			schemeList = append(schemeList, s)
		}
	}

	for _, wl := range workloads {
		for _, scheme := range schemeList {
			dev := *devices
			if scheme == vscc.SchemeHWAccel && dev > 2 {
				dev = 2 // the FPGA scheme is unstable beyond 2 devices (§2.3)
			}
			pts, err := harness.TaskrtSweep(harness.TaskrtConfig{
				Workload: wl, Scheme: scheme, Devices: dev, Ranks: *ranks,
				Size: *size, Iters: *iters, Replicas: *replicas,
			})
			check(err)
			for _, pt := range pts {
				fmt.Println(pt)
			}
		}
	}
	check(obs.Finish(os.Stdout))
}

// runGraph executes one task-spec file serially (the reference) and on
// a simulated system per scheme given on -schemes... keeping it simple:
// the spec runs on the vDMA scheme and prints the same point format.
func runGraph(path string, ranks int) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sp, err := taskrt.ParseSpec(string(src))
	if err != nil {
		return err
	}
	ref := taskrt.New(taskrt.Config{})
	if err := sp.Build(ref, ranks); err != nil {
		return err
	}
	if err := ref.RunSerial(ranks); err != nil {
		return err
	}
	fmt.Printf("graph %s: %d regions, %d tasks, serial hash=%s\n",
		path, ref.NumRegions(), ref.NumTasks(), ref.StateHash())
	return nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "taskbench:", err)
		os.Exit(1)
	}
}
