// Command pingpong regenerates the paper's Figure 6: point-to-point
// ping-pong throughput on-chip (RCCE vs iRCCE pipelined, Fig. 6a) and
// across devices under every vSCC communication scheme (Fig. 6b), plus
// the headline claims table and the Fig. 2 protocol timelines.
//
// Usage:
//
//	pingpong -onchip          # Fig. 6a series
//	pingpong -interdevice     # Fig. 6b series
//	pingpong -claims          # paper-vs-measured claims (E5-E9)
//	pingpong -timeline        # Fig. 2 blocking vs pipelined timelines
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"vscc/internal/harness"
	"vscc/internal/ircce"
	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/stats"
	"vscc/internal/vscc"
)

func main() {
	log.SetFlags(0)
	onchip := flag.Bool("onchip", false, "measure Fig. 6a (on-chip RCCE vs iRCCE)")
	inter := flag.Bool("interdevice", false, "measure Fig. 6b (inter-device schemes)")
	claims := flag.Bool("claims", false, "print the paper-vs-measured claims table")
	timeline := flag.Bool("timeline", false, "render Fig. 2 style protocol timelines")
	reps := flag.Int("reps", 3, "round trips per measurement")
	parallel := flag.Int("parallel", 0, "sweep points run concurrently (0 = GOMAXPROCS, 1 = serial)")
	sizesFlag := flag.String("sizes", "", "comma-separated message sizes [B] (default: the Fig. 6 sweep)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of every measured point")
	metrics := flag.Bool("metrics", false, "print a cycle-accurate metrics report per measured point")
	checkMode := flag.Bool("check", false, "run with the MPB consistency checker (panics on stale-line reads)")
	faultSpec := flag.String("fault", "", "deterministic fault schedule, e.g. \"seed=7,drop=20,stall=1000000:200000\" (see internal/fault)")
	flag.Parse()
	harness.SetParallelism(*parallel)
	harness.SetConsistencyCheck(*checkMode)
	check(harness.SetFaultSpec(*faultSpec))
	obs := harness.EnableObservability(*traceOut, *metrics)
	if !*onchip && !*inter && !*claims && !*timeline {
		*onchip, *inter = true, true
	}
	sizes := harness.Sizes6()
	if *sizesFlag != "" {
		sizes = nil
		for _, s := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			check(err)
			sizes = append(sizes, n)
		}
	}

	if *onchip {
		rccePts, err := harness.OnChipPingPong(nil, 0, 1, sizes, *reps)
		check(err)
		irccePts, err := harness.OnChipPingPong(func() rcce.Protocol { return &ircce.PipelinedProtocol{} }, 0, 1, sizes, *reps)
		check(err)
		fmt.Println("== Fig. 6a: on-chip ping-pong throughput ==")
		rows := [][]string{{"size [B]", "RCCE [MB/s]", "iRCCE pipelined [MB/s]"}}
		for i := range rccePts {
			rows = append(rows, []string{
				fmt.Sprint(rccePts[i].Size),
				fmt.Sprintf("%.2f", rccePts[i].MBps),
				fmt.Sprintf("%.2f", irccePts[i].MBps),
			})
		}
		fmt.Print(stats.Table(rows))
		fmt.Println()
		fmt.Print(stats.RenderSeries("on-chip throughput", "message size [B]", "MB/s",
			[]stats.Series{harness.ToSeries("RCCE", rccePts), harness.ToSeries("iRCCE pipelined", irccePts)}, 64, 14))
		fmt.Println()
	}

	if *inter {
		fmt.Println("== Fig. 6b: inter-device ping-pong throughput ==")
		schemes := []vscc.Scheme{
			vscc.SchemeRouting, vscc.SchemeHostRouted, vscc.SchemeCachedGet,
			vscc.SchemeRemotePut, vscc.SchemeVDMA, vscc.SchemeHWAccel,
		}
		var series []stats.Series
		rows := [][]string{{"size [B]"}}
		for _, s := range schemes {
			rows[0] = append(rows[0], s.String())
		}
		all := make(map[vscc.Scheme][]harness.PingPongPoint)
		for _, s := range schemes {
			pts, err := harness.InterDevicePingPong(s, sizes, *reps)
			check(err)
			all[s] = pts
			series = append(series, harness.ToSeries(s.String(), pts))
		}
		for i, size := range sizes {
			row := []string{fmt.Sprint(size)}
			for _, s := range schemes {
				row = append(row, fmt.Sprintf("%.2f", all[s][i].MBps))
			}
			rows = append(rows, row)
		}
		fmt.Print(stats.Table(rows))
		fmt.Println()
		fmt.Print(stats.RenderSeries("inter-device throughput", "message size [B]", "MB/s", series, 64, 14))
		fmt.Println()
	}

	if *claims {
		c, err := harness.MeasureClaims(*reps)
		check(err)
		fmt.Println("== headline claims (DESIGN.md E5-E9) ==")
		fmt.Print(c.Report())
		fmt.Println()
	}

	if *timeline {
		fmt.Println("== Fig. 2: blocking vs pipelined protocol timelines (64 kB on-chip transfer) ==")
		fmt.Println("-- RCCE blocking (local put / remote get):")
		fmt.Print(renderTimeline(nil))
		fmt.Println("-- iRCCE pipelined:")
		fmt.Print(renderTimeline(&ircce.PipelinedProtocol{}))
	}

	check(obs.Finish(os.Stdout))
}

// renderTimeline runs one 64 kB transfer and renders the recorded spans.
func renderTimeline(proto rcce.Protocol) string {
	k := sim.NewKernel()
	chip := harness.ApplyCheck(scc.NewChip(k, 0, scc.DefaultParams()))
	places, err := rcce.LinearPlaces([]*scc.Chip{chip}, 2)
	check(err)
	tl := sim.NewTimeline(k)
	opts := []rcce.Option{rcce.WithTimeline(tl)}
	if proto != nil {
		opts = append(opts, rcce.WithProtocol(proto))
	}
	session, err := rcce.NewSession(k, []*scc.Chip{chip}, places, opts...)
	check(err)
	msg := make([]byte, 64*1024)
	err = session.Run(func(r *rcce.Rank) {
		if r.ID() == 0 {
			r.Send(1, msg)
		} else {
			r.Recv(0, make([]byte, len(msg)))
		}
	})
	check(err)
	return tl.Render(96)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pingpong:", err)
		os.Exit(1)
	}
}
