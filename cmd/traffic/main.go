// Command traffic regenerates the paper's Figure 8: the NPB BT
// communication traffic matrix for a 64-rank class C session, with
// inter-device blocks marked and the heaviest pair reported (the paper:
// "the maximum communication traffic between two ranks is about 186 MB").
package main

import (
	"flag"
	"fmt"
	"os"

	"vscc/internal/harness"
	"vscc/internal/npb"
	"vscc/internal/vscc"
)

func main() {
	className := flag.String("class", "C", "NPB class")
	ranks := flag.Int("ranks", 64, "session size (square number)")
	iters := flag.Int("iters", 1, "simulated iterations (volumes scale to -scaleto)")
	scaleTo := flag.Int("scaleto", 0, "report volumes as if this many iterations ran (default: class iterations)")
	csv := flag.Bool("csv", false, "emit the matrix as CSV instead of the shaded rendering")
	flag.Parse()

	class, err := npb.ClassByName(*className)
	check(err)
	m, err := harness.CaptureTraffic(harness.TrafficConfig{
		Class: class, Ranks: *ranks, Iterations: *iters, ScaleTo: *scaleTo,
		Scheme: vscc.SchemeVDMA,
	})
	check(err)

	if *csv {
		fmt.Print(m.CSV())
		return
	}
	fmt.Printf("== Fig. 8: NPB BT class %s traffic, %d ranks ==\n", class.Name, *ranks)
	fmt.Print(m.Render())
	src, dest, bytes := m.MaxPair()
	fmt.Printf("\nmax pair: rank %d -> rank %d, %.1f MB (paper: ~186 MB for 64 ranks / class C / 200 iters)\n",
		src, dest, float64(bytes)/1e6)
	fmt.Printf("traffic within rank distance 9: %.1f %% (neighbour/ring pattern)\n", 100*m.NeighborFraction(9))
	fmt.Printf("inter-device share: %.1f %%\n", 100*float64(m.InterDeviceBytes())/float64(m.Total()))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "traffic:", err)
		os.Exit(1)
	}
}
