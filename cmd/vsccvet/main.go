// vsccvet is the project-specific static analyzer for this repository.
// It loads the module with the stdlib-only driver in internal/lint and
// runs the rule suite that machine-checks the paper's non-coherent-MPB
// programming discipline and the simulator's own invariants:
//
//	kernelclock     model packages take time/concurrency from internal/sim only,
//	                checked transitively over the module call graph
//	detorder        no map iteration whose randomized order can reach
//	                kernel-clock-visible state or pick a winner
//	goryorder       flush before signalling, invalidate after waiting
//	                (paper §3.1), checked across call boundaries
//	flagdiscipline  raw flag-byte addressing only in protocol extensions
//	tracealloc      no dynamic trace-label building at unguarded call sites
//	simapi          no scheduling delays from subtractions that can wrap
//
// Usage:
//
//	vsccvet [-rules] [-json] [packages]
//
// Package patterns are module-relative ("./...", "./internal/scc",
// "internal/..."); with no pattern the whole module is vetted. -json
// replaces the line-oriented output with a machine-readable report
// (module, rule suite, findings with call chains, per-rule counts) whose
// bytes are identical across runs on an unchanged tree. Under GitHub
// Actions (GITHUB_ACTIONS=true) findings are additionally emitted as
// ::error workflow annotations. Exit status: 0 clean, 1 findings, 2 load
// or usage error. Findings are suppressed per line with //lint:ignore
// <rule> <reason>; a suppression that covers nothing is itself a
// finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"vscc/internal/lint"
)

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsccvet:", err)
		os.Exit(2)
	}
	os.Exit(run(cwd, os.Args[1:], os.Stdout, os.Stderr))
}

func run(cwd string, args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("vsccvet", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: vsccvet [-rules] [-json] [packages]")
		fs.PrintDefaults()
	}
	listRules := fs.Bool("rules", false, "list the rule suite and exit")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON report instead of lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.DefaultAnalyzers()
	if *listRules {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	pr, err := lint.LoadModule(cwd)
	if err != nil {
		fmt.Fprintln(errw, "vsccvet:", err)
		return 2
	}
	pkgs, err := selectPackages(pr, cwd, fs.Args())
	if err != nil {
		fmt.Fprintln(errw, "vsccvet:", err)
		return 2
	}
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, lint.RunPackage(pr, pkg, analyzers)...)
	}
	annotate := os.Getenv("GITHUB_ACTIONS") == "true"
	if *jsonOut {
		if err := writeJSON(out, pr, analyzers, diags); err != nil {
			fmt.Fprintln(errw, "vsccvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if annotate {
		for _, d := range diags {
			fmt.Fprintln(errw, annotation(pr, d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(errw, "vsccvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonReport is the -json output. Field order, module-relative slash
// paths, sorted findings (the driver's order) and map-key-sorted counts
// make the marshaled bytes identical across runs on an unchanged tree —
// CI diffs the artifact directly.
type jsonReport struct {
	Module   string         `json:"module"`
	Rules    []jsonRule     `json:"rules"`
	Findings []jsonFinding  `json:"findings"`
	Counts   map[string]int `json:"counts"`
}

type jsonRule struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

type jsonFinding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Chain is the call path of an interprocedural finding, outermost
	// function first.
	Chain []string `json:"chain,omitempty"`
}

func writeJSON(out io.Writer, pr *lint.Program, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	rep := jsonReport{
		Module:   pr.ModulePath,
		Rules:    make([]jsonRule, 0, len(analyzers)),
		Findings: make([]jsonFinding, 0, len(diags)),
		Counts:   map[string]int{},
	}
	for _, a := range analyzers {
		rep.Rules = append(rep.Rules, jsonRule{Name: a.Name, Doc: a.Doc})
	}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, jsonFinding{
			Rule:    d.Rule,
			File:    relPath(pr, d.Position.Filename),
			Line:    d.Position.Line,
			Col:     d.Position.Column,
			Message: d.Message,
			Chain:   d.Chain,
		})
		rep.Counts[d.Rule]++
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}

// annotation renders one finding as a GitHub Actions workflow command,
// which the runner turns into an inline PR annotation.
func annotation(pr *lint.Program, d lint.Diagnostic) string {
	msg := d.Message
	if len(d.Chain) > 0 {
		msg += " [" + lint.FormatChain(d.Chain) + "]"
	}
	// Workflow-command data is %-, CR- and LF-escaped.
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=vsccvet/%s::%s",
		relPath(pr, d.Position.Filename), d.Position.Line, d.Position.Column, d.Rule, esc.Replace(msg))
}

// relPath rewrites an absolute diagnostic path module-relative with
// forward slashes, so reports do not leak the checkout directory and
// stay byte-identical across machines.
func relPath(pr *lint.Program, file string) string {
	if rel, err := filepath.Rel(pr.ModuleRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// selectPackages resolves go-style package patterns relative to cwd
// against the loaded module. Supported shapes: ".", "./...", "./x",
// "x/..." and plain module-relative paths.
func selectPackages(pr *lint.Program, cwd string, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rel, err := filepath.Rel(pr.ModuleRoot, cwd)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("working directory %s is outside module %s", cwd, pr.ModuleRoot)
	}
	base := pr.ModulePath
	if rel != "." {
		base = pr.ModulePath + "/" + filepath.ToSlash(rel)
	}
	join := func(p string) string {
		if p == "" || p == "." {
			return base
		}
		return base + "/" + p
	}
	seen := map[string]bool{}
	var out []*lint.Package
	for _, pat := range patterns {
		p := strings.TrimPrefix(filepath.ToSlash(pat), "./")
		recursive := false
		if p == "..." {
			p, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(p, "/..."); ok {
			p, recursive = rest, true
		}
		root := join(p)
		matched := false
		for _, pkg := range pr.Packages() {
			ok := pkg.Path == root || (recursive && strings.HasPrefix(pkg.Path, root+"/"))
			if !ok || seen[pkg.Path] {
				matched = matched || ok
				continue
			}
			seen[pkg.Path] = true
			matched = true
			out = append(out, pkg)
		}
		if !matched {
			return nil, fmt.Errorf("no packages match %q", pat)
		}
	}
	return out, nil
}
