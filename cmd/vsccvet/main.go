// vsccvet is the project-specific static analyzer for this repository.
// It loads the module with the stdlib-only driver in internal/lint and
// runs the rule suite that machine-checks the paper's non-coherent-MPB
// programming discipline and the simulator's own invariants:
//
//	kernelclock     model packages take time/concurrency from internal/sim only
//	goryorder       flush before signalling, invalidate after waiting (paper §3.1)
//	flagdiscipline  raw flag-byte addressing only in protocol extensions
//	tracealloc      no dynamic trace-label building at unguarded call sites
//	simapi          no scheduling delays from subtractions that can wrap
//
// Usage:
//
//	vsccvet [-rules] [packages]
//
// Package patterns are module-relative ("./...", "./internal/scc",
// "internal/..."); with no pattern the whole module is vetted. Exit
// status: 0 clean, 1 findings, 2 load or usage error. Findings are
// suppressed per line with //lint:ignore <rule> <reason>.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"vscc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("vsccvet", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: vsccvet [-rules] [packages]")
		fs.PrintDefaults()
	}
	listRules := fs.Bool("rules", false, "list the rule suite and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.DefaultAnalyzers()
	if *listRules {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errw, "vsccvet:", err)
		return 2
	}
	pr, err := lint.LoadModule(cwd)
	if err != nil {
		fmt.Fprintln(errw, "vsccvet:", err)
		return 2
	}
	pkgs, err := selectPackages(pr, cwd, fs.Args())
	if err != nil {
		fmt.Fprintln(errw, "vsccvet:", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, d := range lint.RunPackage(pr, pkg, analyzers) {
			fmt.Fprintln(out, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(errw, "vsccvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// selectPackages resolves go-style package patterns relative to cwd
// against the loaded module. Supported shapes: ".", "./...", "./x",
// "x/..." and plain module-relative paths.
func selectPackages(pr *lint.Program, cwd string, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rel, err := filepath.Rel(pr.ModuleRoot, cwd)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("working directory %s is outside module %s", cwd, pr.ModuleRoot)
	}
	base := pr.ModulePath
	if rel != "." {
		base = pr.ModulePath + "/" + filepath.ToSlash(rel)
	}
	join := func(p string) string {
		if p == "" || p == "." {
			return base
		}
		return base + "/" + p
	}
	seen := map[string]bool{}
	var out []*lint.Package
	for _, pat := range patterns {
		p := strings.TrimPrefix(filepath.ToSlash(pat), "./")
		recursive := false
		if p == "..." {
			p, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(p, "/..."); ok {
			p, recursive = rest, true
		}
		root := join(p)
		matched := false
		for _, pkg := range pr.Packages() {
			ok := pkg.Path == root || (recursive && strings.HasPrefix(pkg.Path, root+"/"))
			if !ok || seen[pkg.Path] {
				matched = matched || ok
				continue
			}
			seen[pkg.Path] = true
			matched = true
			out = append(out, pkg)
		}
		if !matched {
			return nil, fmt.Errorf("no packages match %q", pat)
		}
	}
	return out, nil
}
