package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module on disk and returns its root.
// vsccvet parses source directly (no go toolchain), so a go.mod plus Go
// files is a complete fixture.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// dirtyModule has two kernelclock findings in a model package (the time
// import and the time.Sleep selector).
func dirtyModule(t *testing.T) string {
	t.Helper()
	return writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/noc/bad.go": `package noc

import "time"

func bad() { time.Sleep(1) }
`,
	})
}

func cleanModule(t *testing.T) string {
	t.Helper()
	return writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/noc/ok.go": `package noc

func ok(a, b int) int { return a + b }
`,
	})
}

// TestJSONByteIdentical pins the -json determinism contract: two runs
// over the same tree produce byte-identical reports, and the report
// carries module-relative paths and per-rule counts.
func TestJSONByteIdentical(t *testing.T) {
	root := dirtyModule(t)
	var first, second bytes.Buffer
	if code := run(root, []string{"-json", "./..."}, &first, &bytes.Buffer{}); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if code := run(root, []string{"-json", "./..."}, &second, &bytes.Buffer{}); code != 1 {
		t.Fatalf("second exit code = %d, want 1", code)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("reports differ between runs:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(first.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Module != "tmpmod" {
		t.Errorf("module = %q, want tmpmod", rep.Module)
	}
	if len(rep.Findings) != 2 || rep.Counts["kernelclock"] != 2 {
		t.Fatalf("findings = %+v, counts = %v, want 2 kernelclock findings", rep.Findings, rep.Counts)
	}
	for _, f := range rep.Findings {
		if f.File != "internal/noc/bad.go" {
			t.Errorf("finding path = %q, want module-relative internal/noc/bad.go", f.File)
		}
	}
	if len(rep.Rules) == 0 {
		t.Error("report lists no rules")
	}
}

// TestExitCodes pins the exit-status policy: 0 clean, 1 findings, 2
// usage/load errors.
func TestExitCodes(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(cleanModule(t), nil, &out, &errw); code != 0 {
		t.Errorf("clean module: exit %d, want 0 (stderr: %s)", code, errw.String())
	}
	if code := run(dirtyModule(t), nil, &out, &errw); code != 1 {
		t.Errorf("dirty module: exit %d, want 1", code)
	}
	if code := run(cleanModule(t), []string{"./nonexistent/..."}, &out, &errw); code != 2 {
		t.Errorf("bad pattern: exit %d, want 2", code)
	}
	if code := run(t.TempDir(), nil, &out, &errw); code != 2 {
		t.Errorf("no go.mod: exit %d, want 2", code)
	}
}

// TestGitHubAnnotations pins the ::error workflow-command emission under
// GITHUB_ACTIONS, and its absence outside CI.
func TestGitHubAnnotations(t *testing.T) {
	root := dirtyModule(t)
	t.Setenv("GITHUB_ACTIONS", "true")
	var out, errw bytes.Buffer
	if code := run(root, nil, &out, &errw); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "::error file=internal/noc/bad.go,line=3,col=8,title=vsccvet/kernelclock::") {
		t.Errorf("no ::error annotation in stderr:\n%s", errw.String())
	}

	t.Setenv("GITHUB_ACTIONS", "")
	errw.Reset()
	if code := run(root, nil, &out, &errw); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if strings.Contains(errw.String(), "::error") {
		t.Errorf("annotation emitted outside CI:\n%s", errw.String())
	}
}

// TestRulesFlag keeps -rules listing every analyzer of the suite.
func TestRulesFlag(t *testing.T) {
	var out bytes.Buffer
	if code := run(cleanModule(t), []string{"-rules"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, rule := range []string{"kernelclock", "detorder", "goryorder", "flagdiscipline", "tracealloc", "simapi"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-rules output misses %s:\n%s", rule, out.String())
		}
	}
}
