// Command chaos runs the deterministic fault-campaign engine: a seeded
// walk over fault site x device x cycle-window, each point executed
// through a recovery harness (the devretry scheduler and the
// re-executing task runtime) and checked against its invariants plus
// rerun byte-identity. On a violation it shrinks the schedule to a
// minimal reproducer spec, prints it verbatim, optionally writes it to
// a file (for CI artifact upload), and exits nonzero.
//
// Usage:
//
//	chaos [-seed N] [-n POINTS] [-target all|sched|taskrt] [-maxfaults N] [-out FILE] [-v]
//	chaos -repro SPEC -target sched|taskrt
//
// The -repro form re-checks one spec (e.g. a minimized reproducer from
// an earlier campaign) against a single target and reports pass/fail.
package main

import (
	"flag"
	"fmt"
	"os"

	"vscc/internal/chaos"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign seed: the walk is a pure function of it")
	n := flag.Int("n", 200, "points to walk")
	targetName := flag.String("target", "all", "harness to drive: all, sched or taskrt")
	maxFaults := flag.Int("maxfaults", 4, "most faults per schedule")
	out := flag.String("out", "", "write the minimized reproducer report to this file on violation")
	repro := flag.String("repro", "", "re-check one spec instead of walking a campaign")
	verbose := flag.Bool("v", false, "log every point")
	flag.Parse()

	var targets []chaos.Target
	switch *targetName {
	case "all":
		targets = chaos.DefaultTargets()
	case "sched":
		targets = []chaos.Target{chaos.SchedTarget()}
	case "taskrt":
		targets = []chaos.Target{chaos.TaskrtTarget()}
	default:
		fmt.Fprintf(os.Stderr, "chaos: unknown target %q (want all, sched or taskrt)\n", *targetName)
		os.Exit(2)
	}

	if *repro != "" {
		if *targetName == "all" {
			fmt.Fprintln(os.Stderr, "chaos: -repro needs -target sched or -target taskrt")
			os.Exit(2)
		}
		t := targets[0]
		if _, problems := t.Run(*repro); len(problems) > 0 {
			fmt.Printf("chaos: target %s still violates invariants under %s\n", t.Name, *repro)
			for _, p := range problems {
				fmt.Printf("  - %s\n", p)
			}
			os.Exit(1)
		}
		fmt.Printf("chaos: target %s passes under %s\n", t.Name, *repro)
		return
	}

	c := &chaos.Campaign{Seed: *seed, N: *n, MaxFaults: *maxFaults, Targets: targets}
	if *verbose {
		c.Log = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	points, v := c.Run()
	if v != nil {
		report := v.Error()
		fmt.Print(report)
		if *out != "" {
			if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: writing %s: %v\n", *out, err)
			}
		}
		os.Exit(1)
	}
	fmt.Printf("chaos: seed=%d points=%d target=%s maxfaults=%d: all invariants held\n",
		*seed, points, *targetName, *maxFaults)
}
