// Command vsccinfo inspects a vSCC configuration: the (x, y, z) topology
// of Fig. 3, the latency landscape (on-chip vs inter-device, the ~120x
// factor of §5), and the stability rules of §2.3.
package main

import (
	"flag"
	"fmt"
	"os"

	"vscc/internal/noc"
	"vscc/internal/pcie"
	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/stats"
	"vscc/internal/vscc"
)

func main() {
	devices := flag.Int("devices", 5, "number of SCC devices")
	flag.Parse()

	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: *devices, Scheme: vscc.SchemeVDMA})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsccinfo:", err)
		os.Exit(1)
	}

	fmt.Printf("== vSCC: %d devices, %d cores ==\n\n", *devices, sys.TotalCores())
	fmt.Println("topology (Fig. 3): (x, y) = tile mesh position, z = device; the")
	fmt.Println("single physical off-chip link sits at tile (3,0) of every device.")
	fmt.Println()

	places, err := rcce.LinearPlaces(sys.Chips, sys.TotalCores())
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsccinfo:", err)
		os.Exit(1)
	}
	rows := [][]string{{"rank", "device (z)", "core", "tile (x,y)"}}
	for _, rank := range []int{0, 1, 47, 48, 95, 96, 144, 192, 239} {
		if rank >= len(places) {
			continue
		}
		pl := places[rank]
		x, y, z := vscc.Coord(pl)
		rows = append(rows, []string{
			fmt.Sprint(rank), fmt.Sprint(z), fmt.Sprint(pl.Core), fmt.Sprintf("(%d,%d)", x, y),
		})
	}
	fmt.Print(stats.Table(rows))
	fmt.Println()

	mesh := sys.MeshOf(0)
	onChipNear := mesh.TransferLatency(noc.Coord{X: 0, Y: 0}, noc.Coord{X: 1, Y: 0}, 32)
	onChipFar := mesh.TransferLatency(noc.Coord{X: 0, Y: 0}, noc.Coord{X: 5, Y: 3}, 32)
	rt := sys.Fabric.RoundTrip()
	fmt.Println("latency landscape (core cycles @ 533 MHz):")
	lat := [][]string{
		{"path", "cycles", "class"},
		{"on-chip, 1 hop (32 B)", fmt.Sprint(onChipNear), "~10^2 (paper §3)"},
		{"on-chip, cross mesh (32 B)", fmt.Sprint(onChipFar), "~10^2"},
		{"inter-device round trip", fmt.Sprint(rt), "~10^4 (paper §3)"},
		{"virtual-extension factor", fmt.Sprintf("%.0fx", float64(rt)/100), "paper §5: ~120x"},
	}
	fmt.Print(stats.Table(lat))
	fmt.Println()

	fmt.Println("stability rules (§2.3):")
	for _, n := range []int{2, 3, 5} {
		_, err := pcie.New(n, pcie.DefaultParams(), pcie.AckFPGA)
		status := "OK"
		if err != nil {
			status = "rejected: " + err.Error()
		}
		fmt.Printf("  %d devices with FPGA fast write-acks: %s\n", n, status)
	}
	fmt.Println()
	fmt.Println("communication schemes and their small-message thresholds (§3.3):")
	for _, s := range []vscc.Scheme{vscc.SchemeRouting, vscc.SchemeHostRouted, vscc.SchemeCachedGet, vscc.SchemeRemotePut, vscc.SchemeVDMA, vscc.SchemeHWAccel} {
		fmt.Printf("  %-34s direct-transfer threshold: %3d B\n", s, s.DirectThreshold())
	}
	_ = scc.SIFCoord
}
