// Command npbbt regenerates the paper's Figure 7: NPB BT scalability on
// the vSCC, comparing the optimal (local put/local get + vDMA) and worst
// (transparent routing) inter-device configurations over square process
// counts up to 225 on five devices.
//
// Absolute runs of class C use the solver's timing mode (real message
// sizes and pattern, modelled arithmetic); small classes run with real
// numerics — see DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vscc/internal/harness"
	"vscc/internal/npb"
	"vscc/internal/stats"
	"vscc/internal/vscc"
)

func main() {
	app := flag.String("app", "bt", "pseudo-application: bt (paper's Fig. 7) or lu (extension)")
	className := flag.String("class", "C", "NPB class (S, W, A, B, C)")
	iters := flag.Int("iters", 2, "timesteps per run (per-iteration rate is steady)")
	maxRanks := flag.Int("maxranks", 225, "largest square process count")
	countsFlag := flag.String("counts", "", "comma-separated rank counts (default: all squares up to -maxranks)")
	best := flag.Bool("best", true, "run the optimal configuration (vDMA)")
	worst := flag.Bool("worst", true, "run the worst configuration (transparent routing)")
	parallel := flag.Int("parallel", 0, "rank counts run concurrently (0 = GOMAXPROCS, 1 = serial)")
	pdes := flag.Int("pdes", 0, "run each point on the domain-decomposed engine with N workers (0 = classic single kernel; 1 = serial PDES identity reference)")
	faultSpec := flag.String("fault", "", "deterministic fault schedule, e.g. \"seed=1,devcrash=400000:1:500000\" (see internal/fault; PDES supports device crashes only)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of every run")
	metrics := flag.Bool("metrics", false, "print a cycle-accurate metrics report per run")
	flag.Parse()
	harness.SetParallelism(*parallel)
	harness.SetPDES(*pdes)
	check(harness.SetFaultSpec(*faultSpec))
	obs := harness.EnableObservability(*traceOut, *metrics)

	class, err := npb.ClassByName(*className)
	check(err)
	runSweep := harness.BTSweep
	if *app == "lu" {
		runSweep = harness.LUSweep
	} else if *app != "bt" {
		check(fmt.Errorf("unknown app %q", *app))
	}
	var counts []int
	if *countsFlag != "" {
		for _, s := range strings.Split(*countsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			check(err)
			counts = append(counts, n)
		}
	} else {
		counts = npb.SquareCounts(*maxRanks)
	}

	fmt.Printf("== Fig. 7: NPB %s class %s (%d^3), %d iterations per run ==\n",
		strings.ToUpper(*app), class.Name, class.N, *iters)
	fmt.Printf("theoretical peak: %.1f GFLOP/s at 225 cores x 533 MFLOP/s\n\n", 225*0.533)

	var series []stats.Series
	rows := [][]string{{"ranks"}}
	type sweep struct {
		name   string
		scheme vscc.Scheme
		pts    []harness.BTPoint
	}
	var sweeps []*sweep
	if *best {
		sweeps = append(sweeps, &sweep{name: "optimal (LP/LG vDMA)", scheme: vscc.SchemeVDMA})
	}
	if *worst {
		sweeps = append(sweeps, &sweep{name: "worst (transparent routing)", scheme: vscc.SchemeRouting})
	}
	for _, sw := range sweeps {
		rows[0] = append(rows[0], sw.name+" [GFLOP/s]")
		pts, err := runSweep(harness.BTSweepConfig{
			Class: class, Iterations: *iters, Scheme: sw.scheme, Devices: 5,
		}, counts)
		check(err)
		sw.pts = pts
		for _, pt := range pts {
			fmt.Printf("  %-28s ranks=%3d  %7.3f GFLOP/s\n", sw.name, pt.Ranks, pt.GFlops)
		}
		s := stats.Series{Name: sw.name}
		for _, p := range sw.pts {
			s.Add(float64(p.Ranks), p.GFlops)
		}
		series = append(series, s)
	}
	fmt.Println()
	for i, ranks := range counts {
		row := []string{fmt.Sprint(ranks)}
		for _, sw := range sweeps {
			row = append(row, fmt.Sprintf("%.3f", sw.pts[i].GFlops))
		}
		rows = append(rows, row)
	}
	fmt.Print(stats.Table(rows))
	fmt.Println()
	fmt.Print(stats.RenderSeries("NPB "+strings.ToUpper(*app)+" scalability", "processes", "GFLOP/s", series, 64, 14))
	check(obs.Finish(os.Stdout))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "npbbt:", err)
		os.Exit(1)
	}
}
