// Command benchdiff compares a `go test -bench` output against the
// checked-in baseline (BENCH_kernel.json) and reports per-case deltas.
// It exits non-zero when any case regresses beyond the tolerance, so CI
// can surface performance drift; the workflow runs it as a non-blocking
// warning step because shared runners are noisy.
//
// It knows the baselined benchmarks:
//
//   - BenchmarkKernelEventThroughput/<case> against
//     kernel_event_throughput.fastpath[<case>].ns_per_event
//   - BenchmarkSweepParallel/<sweep>/parallel-<N> against
//     sweep_parallel_wall_clock[<sweep>]["parallel-<N>"]
//   - BenchmarkPDESThroughput/workers-<N> against
//     pdes.throughput["workers-<N>"]
//   - BenchmarkPDESBT/<case> against pdes.bt_wall_clock[<case>]
//
// Usage:
//
//	go test ./internal/sim -bench=KernelEventThroughput -benchtime=1x | benchdiff
//	benchdiff -baseline BENCH_kernel.json -tolerance 0.20 bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// baseline mirrors the parts of BENCH_kernel.json benchdiff consumes.
type baseline struct {
	KernelEventThroughput struct {
		Fastpath map[string]struct {
			NsPerEvent float64 `json:"ns_per_event"`
		} `json:"fastpath"`
	} `json:"kernel_event_throughput"`
	// The sweep section mixes float maps with descriptive strings, so
	// entries are decoded individually and non-maps skipped.
	SweepParallelWallClock map[string]json.RawMessage `json:"sweep_parallel_wall_clock"`
	// The pdes section has the same mixed shape; its two float maps map
	// onto BenchmarkPDESThroughput and BenchmarkPDESBT cases.
	PDES map[string]json.RawMessage `json:"pdes"`
	// The taskrt section's wall_clock map maps onto
	// BenchmarkTaskrtWorkloads cases.
	Taskrt map[string]json.RawMessage `json:"taskrt"`
}

// result is one parsed benchmark line.
type result struct {
	name string
	nsOp float64
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the whole program behind the process boundary: 0 = all
// compared cases within tolerance, 1 = at least one regression, 2 =
// usage or input error. Split from main so the exit policy is testable.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_kernel.json", "baseline file")
	tolerance := fs.Float64("tolerance", 0.20, "relative regression allowed before failing (0.20 = +20%)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		defer f.Close()
		in = f
	} else if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "usage: benchdiff [-baseline file] [-tolerance frac] [bench-output.txt]")
		return 2
	}

	want, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	results := parseBench(in)
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark lines found in input")
		return 2
	}

	regressions := 0
	compared := 0
	fmt.Fprintf(stdout, "%-52s %14s %14s %8s\n", "benchmark", "baseline ns/op", "measured ns/op", "delta")
	for _, r := range results {
		b, ok := want[r.name]
		if !ok {
			// On multi-proc hosts go test appends "-<GOMAXPROCS>"; on a
			// 1-proc host it does not, and stripping eagerly would eat
			// real numeric suffixes like deep-queue-1024.
			b, ok = want[stripProcs(r.name)]
			if !ok {
				continue
			}
		}
		compared++
		delta := r.nsOp/b - 1
		mark := ""
		if delta > *tolerance {
			mark = "  REGRESSION"
			regressions++
		} else if delta < -*tolerance {
			mark = "  improved"
		}
		fmt.Fprintf(stdout, "%-52s %14.2f %14.2f %+7.1f%%%s\n", r.name, b, r.nsOp, 100*delta, mark)
	}
	if compared == 0 {
		fmt.Fprintln(stderr, "benchdiff: input contained no baselined benchmarks")
		return 2
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "\n%d case(s) regressed beyond %.0f%% of %s\n", regressions, 100**tolerance, *baselinePath)
		return 1
	}
	fmt.Fprintf(stdout, "\nall %d compared case(s) within %.0f%% of %s\n", compared, 100**tolerance, *baselinePath)
	return 0
}

// loadBaseline flattens the baseline file into benchmark-name → ns/op.
func loadBaseline(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, err
	}
	want := map[string]float64{}
	for c, v := range base.KernelEventThroughput.Fastpath {
		want["KernelEventThroughput/"+c] = v.NsPerEvent
	}
	for sweep, rawEntry := range base.SweepParallelWallClock {
		var m map[string]float64
		if json.Unmarshal(rawEntry, &m) != nil {
			continue // "benchmark", "units", "note" strings
		}
		for par, ns := range m {
			want["SweepParallel/"+sweep+"/"+par] = ns
		}
	}
	pdesPrefix := map[string]string{
		"throughput":    "PDESThroughput/",
		"bt_wall_clock": "PDESBT/",
	}
	for section, rawEntry := range base.PDES {
		prefix, ok := pdesPrefix[section]
		if !ok {
			continue // "benchmark", "units", "note" strings
		}
		var m map[string]float64
		if json.Unmarshal(rawEntry, &m) != nil {
			continue
		}
		for c, ns := range m {
			want[prefix+c] = ns
		}
	}
	if rawEntry, ok := base.Taskrt["wall_clock"]; ok {
		var m map[string]float64
		if json.Unmarshal(rawEntry, &m) == nil {
			for c, ns := range m {
				want["TaskrtWorkloads/"+c] = ns
			}
		}
	}
	return want, nil
}

// stripProcs removes a trailing "-<number>" (the GOMAXPROCS suffix).
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseBench extracts (name, ns/op) pairs from `go test -bench` output;
// names lose their "Benchmark" prefix so they match the baseline keys.
func parseBench(in io.Reader) []result {
	var out []result
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		nsOp := -1.0
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				if v, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
					nsOp = v
				}
				break
			}
		}
		if nsOp < 0 {
			continue
		}
		out = append(out, result{name: name, nsOp: nsOp})
	}
	return out
}
