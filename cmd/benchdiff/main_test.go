package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testBaseline = `{
  "kernel_event_throughput": {
    "fastpath": {
      "uniform": {"ns_per_event": 100.0},
      "deep-queue-1024": {"ns_per_event": 200.0}
    }
  },
  "sweep_parallel_wall_clock": {
    "benchmark": "BenchmarkSweepParallel",
    "fig6a": {"parallel-1": 1000.0, "parallel-8": 300.0}
  },
  "pdes": {
    "benchmark": "BenchmarkPDESThroughput and BenchmarkPDESBT",
    "throughput": {"workers-1": 5000.0, "workers-4": 6000.0},
    "bt_wall_clock": {"classic": 400000.0, "workers-4": 540000.0}
  }
}`

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(testBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runDiff feeds bench output through run() and returns (exit, stdout, stderr).
func runDiff(t *testing.T, bench string, extra ...string) (int, string, string) {
	t.Helper()
	args := append([]string{"-baseline", writeBaseline(t)}, extra...)
	var out, errw bytes.Buffer
	code := run(args, strings.NewReader(bench), &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunWithinTolerance(t *testing.T) {
	code, out, _ := runDiff(t, `
goos: linux
BenchmarkKernelEventThroughput/uniform-8      	 1000000	       105.0 ns/op
BenchmarkSweepParallel/fig6a/parallel-8-8     	       1	       310.0 ns/op
PASS
`)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "all 2 compared case(s) within 20%") {
		t.Errorf("missing summary line:\n%s", out)
	}
}

func TestRunFlagsRegression(t *testing.T) {
	code, out, _ := runDiff(t, `
BenchmarkKernelEventThroughput/uniform-8   1000000   150.0 ns/op
`)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on a +50%% regression\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("regression not marked:\n%s", out)
	}
}

func TestRunHonoursTolerance(t *testing.T) {
	code, out, _ := runDiff(t, `
BenchmarkKernelEventThroughput/uniform-8   1000000   150.0 ns/op
`, "-tolerance", "0.60")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 at 60%% tolerance\n%s", code, out)
	}
}

func TestRunKeepsRealNumericSuffixes(t *testing.T) {
	// deep-queue-1024 is a case name, not a GOMAXPROCS suffix: stripping
	// must only happen when the full name misses.
	code, out, _ := runDiff(t, `
BenchmarkKernelEventThroughput/deep-queue-1024   1000	 190.0 ns/op
`)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "deep-queue-1024") {
		t.Errorf("case not compared:\n%s", out)
	}
}

func TestRunComparesPDESSection(t *testing.T) {
	code, out, _ := runDiff(t, `
BenchmarkPDESThroughput/workers-1      	  200000	      5100.0 ns/op	   7000000 events/s
BenchmarkPDESBT/classic      	       2	 410000.0 ns/op
BenchmarkPDESBT/workers-4-8  	       2	 550000.0 ns/op
`)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "all 3 compared case(s) within 20%") {
		t.Errorf("pdes cases not all compared:\n%s", out)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	code, _, errw := runDiff(t, "no benchmarks here\n")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 on empty input", code)
	}
	if !strings.Contains(errw, "no benchmark lines") {
		t.Errorf("stderr = %q", errw)
	}
}

func TestRunRejectsUnknownBenchmarks(t *testing.T) {
	code, _, errw := runDiff(t, `
BenchmarkSomethingElse-8   1000   1.0 ns/op
`)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 when nothing matches the baseline", code)
	}
	if !strings.Contains(errw, "no baselined benchmarks") {
		t.Errorf("stderr = %q", errw)
	}
}

func TestRunRejectsMissingBaseline(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-baseline", filepath.Join(t.TempDir(), "absent.json")},
		strings.NewReader("BenchmarkKernelEventThroughput/uniform 1 1.0 ns/op\n"), &out, &errw)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 on a missing baseline file", code)
	}
}

func TestRunReadsFileArgument(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(benchPath, []byte("BenchmarkKernelEventThroughput/uniform-8 1000 99.0 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	code := run([]string{"-baseline", writeBaseline(t), benchPath}, strings.NewReader(""), &out, &errw)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s%s", code, out.String(), errw.String())
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"KernelEventThroughput/uniform-8": "KernelEventThroughput/uniform",
		"SweepParallel/fig6a/parallel-1":  "SweepParallel/fig6a/parallel",
		"plain":                           "plain",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
