// Command vscctrace inspects a Chrome trace-event JSON file written by
// the -trace flag of cmd/pingpong, cmd/npbbt or cmd/ablate — a
// terminal-side answer to "what is in this trace" without loading
// about://tracing or Perfetto.
//
// For every process (one per capture/subsystem pair) it prints the
// thread rows with their span counts and busy cycles, the top span
// names by total duration, and the final counter values.
//
// With -recovery it instead tabulates the device fault/recovery ledger:
// per device, the injected device faults, rejoins, epoch advances,
// checkpoints, journal-replay and PCIe-replay volumes, the job-level
// recovery work (devretry requeues and exhausted budgets from the
// scheduler, task re-executions from the task runtime), plus the other
// per-device recovery actions — the terminal-side summary of a
// crash-recovery run (fault spec devcrash=.../devlinkdown=...). The
// ledger is tallied per source file first and identical per-device
// ledgers are counted once across files, so handing vscctrace a merged
// export alongside one of its sources does not double-count.
//
// With -tenant N the event stream is restricted to tenant N of a
// multi-tenant run (cmd/vsccd): tracks whose thread carries the
// tenant's tag and the tenant's ".tNNN" counters, with process names
// kept for orientation. The filter composes with the span view and
// -merge (exporting one tenant's trace).
//
// Several trace files — e.g. the per-kernel captures of a PDES run —
// may be given together: their events are merged into one canonically
// ordered stream (stable sort by cycle, then kernel id parsed from the
// capture label's /k<N> component, then span sequence within each
// file), so the analysis and the -merge export are deterministic
// functions of the input set. -recovery sums the ledger across files.
//
// Usage:
//
//	vscctrace trace.json
//	vscctrace -top 5 trace.json
//	vscctrace -recovery trace.json
//	vscctrace -tenant 3 trace.json
//	vscctrace -merge merged.json k0.json k1.json khost.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"

	"vscc/internal/trace"
)

// event is the subset of the Chrome trace-event fields the exporter
// emits (chrome.go): metadata (M), complete spans (X), instants (i) and
// counters (C).
type event struct {
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Ts   uint64 `json:"ts"`
	Dur  uint64 `json:"dur"`
	S    string `json:"s"`
	Name string `json:"name"`
	Args struct {
		Name  string `json:"name"`
		Value int64  `json:"value"`
	} `json:"args"`
}

type document struct {
	TraceEvents []event `json:"traceEvents"`
}

// kernelLabel extracts the kernel id from a capture label: /k<N>/ maps
// to N, /khost to a sentinel sorting after every device kernel.
var kernelLabel = regexp.MustCompile(`/k(\d+|host)(/|$)`)

const hostKernel = 1 << 30

// taggedEvent carries the canonical merge keys alongside one event:
// the source file index, the kernel id of its process (from the
// capture label) and its span sequence number (emission order within
// its source file).
type taggedEvent struct {
	event
	file   int
	kernel int
	seq    int
}

// loadMerged reads every file and returns one canonically ordered
// event stream: a stable sort by cycle, then kernel id, then source
// file, then per-file span sequence. Pids are remapped to be globally
// unique, numbered by first appearance in the canonical order — so
// analysing the merged stream (or a -merge output re-read later) is
// idempotent, independent of how events were split across input files.
func loadMerged(paths []string) []taggedEvent {
	var merged []taggedEvent
	for fi, path := range paths {
		f, err := os.Open(path)
		check(err)
		var doc document
		check(json.NewDecoder(f).Decode(&doc))
		f.Close()
		// The kernel id of each original pid comes from its
		// process_name metadata record.
		kern := map[int]int{}
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "M" && ev.Name == "process_name" {
				if m := kernelLabel.FindStringSubmatch(ev.Args.Name); m != nil {
					if m[1] == "host" {
						kern[ev.Pid] = hostKernel
					} else {
						n, _ := strconv.Atoi(m[1])
						kern[ev.Pid] = n
					}
				}
			}
		}
		for i, ev := range doc.TraceEvents {
			kid, ok := kern[ev.Pid]
			if !ok {
				// No kernel label (classic single-kernel capture):
				// order by original pid, after labelled kernels of the
				// same cycle for stability across mixed inputs.
				kid = hostKernel + 1 + ev.Pid
			}
			merged = append(merged, taggedEvent{event: ev, file: fi, kernel: kid, seq: i})
		}
	}
	sort.SliceStable(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.kernel != b.kernel {
			return a.kernel < b.kernel
		}
		if a.file != b.file {
			return a.file < b.file
		}
		return a.seq < b.seq
	})
	// Renumber pids by first appearance in canonical order.
	type srcPid struct{ file, pid int }
	remap := map[srcPid]int{}
	for i := range merged {
		key := srcPid{merged[i].file, merged[i].event.Pid}
		np, ok := remap[key]
		if !ok {
			np = len(remap)
			remap[key] = np
		}
		merged[i].event.Pid = np
	}
	return merged
}

// writeMerged exports the canonical stream in the exporter's own
// Chrome trace-event dialect (chrome.go), so a merged file round-trips
// through vscctrace and the browser tools alike.
func writeMerged(path string, events []taggedEvent) {
	f, err := os.Create(path)
	check(err)
	bw := bufio.NewWriter(f)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\n")
	bw.WriteString("\"otherData\":{\"clock\":\"simulated core cycles (1 us = 1 cycle at 533 MHz)\"},\n")
	bw.WriteString("\"traceEvents\":[\n")
	for i, te := range events {
		if i > 0 {
			bw.WriteString(",\n")
		}
		ev := te.event
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				fmt.Fprintf(bw, "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":%s}}",
					ev.Pid, quoteJSON(ev.Args.Name))
			} else {
				fmt.Fprintf(bw, "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":%s,\"args\":{\"name\":%s}}",
					ev.Pid, ev.Tid, quoteJSON(ev.Name), quoteJSON(ev.Args.Name))
			}
		case "X":
			fmt.Fprintf(bw, "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":%s}",
				ev.Pid, ev.Tid, ev.Ts, ev.Dur, quoteJSON(ev.Name))
		case "i":
			fmt.Fprintf(bw, "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"s\":\"t\",\"name\":%s}",
				ev.Pid, ev.Tid, ev.Ts, quoteJSON(ev.Name))
		case "C":
			fmt.Fprintf(bw, "{\"ph\":\"C\",\"pid\":%d,\"ts\":%d,\"name\":%s,\"args\":{\"value\":%d}}",
				ev.Pid, ev.Ts, quoteJSON(ev.Name), ev.Args.Value)
		}
	}
	bw.WriteString("\n]}\n")
	check(bw.Flush())
	check(f.Close())
}

// quoteJSON mirrors the exporter's string quoting (trace/chrome.go).
func quoteJSON(s string) string {
	buf := make([]byte, 0, len(s)+2)
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			buf = append(buf, fmt.Sprintf("\\u%04x", c)...)
		default:
			buf = append(buf, c)
		}
	}
	return string(append(buf, '"'))
}

// thread aggregates one tid's rows.
type thread struct {
	name     string
	spans    int
	busy     uint64
	instants int
}

// process aggregates one pid.
type process struct {
	pid      int
	name     string
	threads  map[int]*thread
	spanDur  map[string]uint64 // total duration by span name
	spanCnt  map[string]int
	counters map[string]int64 // final value by counter name
	order    []string         // counter first-appearance order
}

func main() {
	top := flag.Int("top", 10, "span names to list per process, by total duration")
	recovery := flag.Bool("recovery", false, "print the per-device fault/recovery ledger instead of the span view")
	tenant := flag.Int("tenant", -1, "restrict the stream to this tenant's tracks and counters (-1 off)")
	mergeOut := flag.String("merge", "", "write the merged, canonically ordered trace to FILE")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: vscctrace [-top N] [-recovery] [-tenant N] [-merge out.json] trace.json [more.json ...]")
		os.Exit(2)
	}
	events := loadMerged(flag.Args())
	if *tenant >= 0 {
		events = filterTenant(events, *tenant)
	}
	if *mergeOut != "" {
		writeMerged(*mergeOut, events)
	}

	procs := map[int]*process{}
	get := func(pid int) *process {
		p, ok := procs[pid]
		if !ok {
			p = &process{
				pid: pid, threads: map[int]*thread{},
				spanDur: map[string]uint64{}, spanCnt: map[string]int{},
				counters: map[string]int64{},
			}
			procs[pid] = p
		}
		return p
	}
	getThread := func(p *process, tid int) *thread {
		t, ok := p.threads[tid]
		if !ok {
			t = &thread{}
			p.threads[tid] = t
		}
		return t
	}
	for _, te := range events {
		ev := te.event
		p := get(ev.Pid)
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				p.name = ev.Args.Name
			case "thread_name":
				getThread(p, ev.Tid).name = ev.Args.Name
			}
		case "X":
			t := getThread(p, ev.Tid)
			t.spans++
			t.busy += ev.Dur
			p.spanCnt[ev.Name]++
			p.spanDur[ev.Name] += ev.Dur
		case "i":
			getThread(p, ev.Tid).instants++
		case "C":
			if _, ok := p.counters[ev.Name]; !ok {
				p.order = append(p.order, ev.Name)
			}
			// Events are time-ordered per counter, so the last sample
			// wins — the final value.
			p.counters[ev.Name] = ev.Args.Value
		}
	}

	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	if *recovery {
		printRecovery(recoveryLedgers(events))
		return
	}
	source := flag.Arg(0)
	if flag.NArg() > 1 {
		source = fmt.Sprintf("%d files", flag.NArg())
	}
	fmt.Printf("%s: %d events, %d processes\n", source, len(events), len(pids))
	for _, pid := range pids {
		p := procs[pid]
		fmt.Printf("\npid %d: %s\n", pid, p.name)
		tids := make([]int, 0, len(p.threads))
		for tid := range p.threads {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			t := p.threads[tid]
			if t.spans == 0 && t.instants == 0 && t.name == "" {
				continue
			}
			fmt.Printf("  tid %-3d %-24s spans=%-7d busy=%-12d", tid, t.name, t.spans, t.busy)
			if t.instants > 0 {
				fmt.Printf(" instants=%d", t.instants)
			}
			fmt.Println()
		}
		if len(p.spanDur) > 0 {
			names := make([]string, 0, len(p.spanDur))
			for n := range p.spanDur {
				names = append(names, n)
			}
			sort.Slice(names, func(i, j int) bool {
				if p.spanDur[names[i]] != p.spanDur[names[j]] {
					return p.spanDur[names[i]] > p.spanDur[names[j]]
				}
				return names[i] < names[j]
			})
			if len(names) > *top {
				names = names[:*top]
			}
			fmt.Println("  top spans by total duration:")
			for _, n := range names {
				fmt.Printf("    %-32s n=%-7d total=%d cycles\n", n, p.spanCnt[n], p.spanDur[n])
			}
		}
		if len(p.order) > 0 {
			names := append([]string(nil), p.order...)
			sort.Strings(names)
			fmt.Println("  final counters:")
			for _, n := range names {
				fmt.Printf("    %-36s %12d\n", n, p.counters[n])
			}
		}
	}
}

// devCounter matches the per-device mirror counters the injector and the
// membership manager emit ("fault.recover.rejoin.d1", "ckpt.take.d0",
// "replay.frames.d2", ...).
var devCounter = regexp.MustCompile(`^(.+)\.d(\d+)$`)

// devLedger is one device's recovery tally across every process of the
// trace.
type devLedger struct {
	crashes   int64 // fault.inject.devcrash
	linkdowns int64 // fault.inject.devlinkdown
	rejoins   int64 // fault.recover.rejoin
	epochs    int64 // epoch.advance
	ckpts     int64 // ckpt.take
	jrnWrites int64 // replay.writes  (checkpoint journal, restore)
	jrnBytes  int64 // replay.bytes
	pcieFr    int64 // replay.frames  (held SIF frames, re-driven)
	pcieBytes int64 // replay.frame_bytes
	requeued  int64 // sched.requeued      (devretry jobs readmitted off this device)
	exhausted int64 // sched.retry_exhausted (devretry budgets spent on this device)
	reexecs   int64 // taskrt.reexec       (tasks re-issued off this device)
	injected  int64 // all fault.inject.* for this device
	recovered int64 // all fault.recover.* for this device
}

// add folds one final counter value into the ledger, keyed by the
// counter's base name (the part before the ".dN" device suffix).
func (l *devLedger) add(base string, v int64) {
	switch base {
	case "fault.inject.devcrash":
		l.crashes += v
	case "fault.inject.devlinkdown":
		l.linkdowns += v
	case "fault.recover.rejoin":
		l.rejoins += v
	case "epoch.advance":
		l.epochs += v
	case "ckpt.take":
		l.ckpts += v
	case "replay.writes":
		l.jrnWrites += v
	case "replay.bytes":
		l.jrnBytes += v
	case "replay.frames":
		l.pcieFr += v
	case "replay.frame_bytes":
		l.pcieBytes += v
	case "sched.requeued":
		l.requeued += v
	case "sched.retry_exhausted":
		l.exhausted += v
	case "taskrt.reexec":
		l.reexecs += v
	}
	if len(base) > 13 && base[:13] == "fault.inject." {
		l.injected += v
	}
	if len(base) > 14 && base[:14] == "fault.recover." {
		l.recovered += v
	}
}

// merge sums another ledger into this one.
func (l *devLedger) merge(o devLedger) {
	l.crashes += o.crashes
	l.linkdowns += o.linkdowns
	l.rejoins += o.rejoins
	l.epochs += o.epochs
	l.ckpts += o.ckpts
	l.jrnWrites += o.jrnWrites
	l.jrnBytes += o.jrnBytes
	l.pcieFr += o.pcieFr
	l.pcieBytes += o.pcieBytes
	l.requeued += o.requeued
	l.exhausted += o.exhausted
	l.reexecs += o.reexecs
	l.injected += o.injected
	l.recovered += o.recovered
}

// recoveryLedgers tallies the per-device fault/recovery counters from
// the merged stream. Values are aggregated per source file first (last
// sample of each counter within a file wins, processes summed), and
// only then combined across files — a file whose ledger for a device is
// identical to one already counted is skipped. Without that step the
// same device ledger appearing in two merged inputs (a merged export
// handed in next to one of its source captures, or the same capture
// listed twice) doubled every checkpoint and replay figure.
func recoveryLedgers(events []taggedEvent) map[int]*devLedger {
	type counterKey struct {
		file, pid int
		name      string
	}
	final := map[counterKey]int64{}
	var order []counterKey
	for _, te := range events {
		if te.Ph != "C" {
			continue
		}
		k := counterKey{te.file, te.event.Pid, te.Name}
		if _, ok := final[k]; !ok {
			order = append(order, k)
		}
		final[k] = te.Args.Value
	}
	perFile := map[int]map[int]*devLedger{}
	for _, k := range order {
		m := devCounter.FindStringSubmatch(k.name)
		if m == nil {
			continue
		}
		dev, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		fl := perFile[k.file]
		if fl == nil {
			fl = map[int]*devLedger{}
			perFile[k.file] = fl
		}
		l := fl[dev]
		if l == nil {
			l = &devLedger{}
			fl[dev] = l
		}
		l.add(m[1], final[k])
	}
	files := make([]int, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Ints(files)
	out := map[int]*devLedger{}
	seen := map[int]map[devLedger]bool{}
	for _, f := range files {
		devs := make([]int, 0, len(perFile[f]))
		for d := range perFile[f] {
			devs = append(devs, d)
		}
		sort.Ints(devs)
		for _, d := range devs {
			l := *perFile[f][d]
			if seen[d] == nil {
				seen[d] = map[devLedger]bool{}
			}
			if seen[d][l] {
				continue
			}
			seen[d][l] = true
			o := out[d]
			if o == nil {
				o = &devLedger{}
				out[d] = o
			}
			o.merge(l)
		}
	}
	return out
}

// filterTenant restricts the stream to one tenant: spans and instants
// on tracks whose thread name carries the tenant tag, counters with the
// tenant's ".tNNN" component, thread metadata of the kept tracks, and
// every process_name record (so the remaining events stay attributable).
func filterTenant(events []taggedEvent, id int) []taggedEvent {
	type track struct{ pid, tid int }
	keep := map[track]bool{}
	for _, te := range events {
		if te.Ph == "M" && te.Name == "thread_name" && trace.HasTenantTag(te.Args.Name, id) {
			keep[track{te.event.Pid, te.Tid}] = true
		}
	}
	var out []taggedEvent
	for _, te := range events {
		switch te.Ph {
		case "M":
			if te.Name == "process_name" || keep[track{te.event.Pid, te.Tid}] {
				out = append(out, te)
			}
		case "X", "i":
			if keep[track{te.event.Pid, te.Tid}] {
				out = append(out, te)
			}
		case "C":
			if trace.HasTenantTag(te.Name, id) {
				out = append(out, te)
			}
		}
	}
	return out
}

// printRecovery renders the per-device fault/recovery table.
func printRecovery(ledgers map[int]*devLedger) {
	if len(ledgers) == 0 {
		fmt.Println("no per-device fault/recovery counters in this trace (run with -trace and a -fault schedule)")
		return
	}
	devs := make([]int, 0, len(ledgers))
	for d := range ledgers {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	fmt.Printf("%-4s %7s %7s %7s %7s %7s %10s %12s %10s %12s %8s %7s %7s %9s %9s\n",
		"dev", "crash", "linkdn", "rejoin", "epoch", "ckpt",
		"jrn.wr", "jrn.bytes", "pcie.fr", "pcie.bytes", "requeued", "exhaust", "reexec", "injected", "recovered")
	for _, d := range devs {
		l := ledgers[d]
		fmt.Printf("d%-3d %7d %7d %7d %7d %7d %10d %12d %10d %12d %8d %7d %7d %9d %9d\n",
			d, l.crashes, l.linkdowns, l.rejoins, l.epochs, l.ckpts,
			l.jrnWrites, l.jrnBytes, l.pcieFr, l.pcieBytes, l.requeued, l.exhausted, l.reexecs, l.injected, l.recovered)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vscctrace:", err)
		os.Exit(1)
	}
}
