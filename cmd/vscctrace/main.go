// Command vscctrace inspects a Chrome trace-event JSON file written by
// the -trace flag of cmd/pingpong, cmd/npbbt or cmd/ablate — a
// terminal-side answer to "what is in this trace" without loading
// about://tracing or Perfetto.
//
// For every process (one per capture/subsystem pair) it prints the
// thread rows with their span counts and busy cycles, the top span
// names by total duration, and the final counter values.
//
// With -recovery it instead tabulates the device fault/recovery ledger:
// per device, the injected device faults, rejoins, epoch advances,
// checkpoints, journal-replay and PCIe-replay volumes, plus the other
// per-device recovery actions — the terminal-side summary of a
// crash-recovery run (fault spec devcrash=.../devlinkdown=...).
//
// Usage:
//
//	vscctrace trace.json
//	vscctrace -top 5 trace.json
//	vscctrace -recovery trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// event is the subset of the Chrome trace-event fields the exporter
// emits (chrome.go): metadata (M), complete spans (X), instants (i) and
// counters (C).
type event struct {
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Ts   uint64 `json:"ts"`
	Dur  uint64 `json:"dur"`
	Name string `json:"name"`
	Args struct {
		Name  string `json:"name"`
		Value int64  `json:"value"`
	} `json:"args"`
}

type document struct {
	TraceEvents []event `json:"traceEvents"`
}

// thread aggregates one tid's rows.
type thread struct {
	name     string
	spans    int
	busy     uint64
	instants int
}

// process aggregates one pid.
type process struct {
	pid      int
	name     string
	threads  map[int]*thread
	spanDur  map[string]uint64 // total duration by span name
	spanCnt  map[string]int
	counters map[string]int64 // final value by counter name
	order    []string         // counter first-appearance order
}

func main() {
	top := flag.Int("top", 10, "span names to list per process, by total duration")
	recovery := flag.Bool("recovery", false, "print the per-device fault/recovery ledger instead of the span view")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vscctrace [-top N] [-recovery] trace.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	check(err)
	defer f.Close()
	var doc document
	check(json.NewDecoder(f).Decode(&doc))

	procs := map[int]*process{}
	get := func(pid int) *process {
		p, ok := procs[pid]
		if !ok {
			p = &process{
				pid: pid, threads: map[int]*thread{},
				spanDur: map[string]uint64{}, spanCnt: map[string]int{},
				counters: map[string]int64{},
			}
			procs[pid] = p
		}
		return p
	}
	getThread := func(p *process, tid int) *thread {
		t, ok := p.threads[tid]
		if !ok {
			t = &thread{}
			p.threads[tid] = t
		}
		return t
	}
	for _, ev := range doc.TraceEvents {
		p := get(ev.Pid)
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				p.name = ev.Args.Name
			case "thread_name":
				getThread(p, ev.Tid).name = ev.Args.Name
			}
		case "X":
			t := getThread(p, ev.Tid)
			t.spans++
			t.busy += ev.Dur
			p.spanCnt[ev.Name]++
			p.spanDur[ev.Name] += ev.Dur
		case "i":
			getThread(p, ev.Tid).instants++
		case "C":
			if _, ok := p.counters[ev.Name]; !ok {
				p.order = append(p.order, ev.Name)
			}
			// Events are time-ordered per counter, so the last sample
			// wins — the final value.
			p.counters[ev.Name] = ev.Args.Value
		}
	}

	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	if *recovery {
		printRecovery(procs, pids)
		return
	}
	fmt.Printf("%s: %d events, %d processes\n", flag.Arg(0), len(doc.TraceEvents), len(pids))
	for _, pid := range pids {
		p := procs[pid]
		fmt.Printf("\npid %d: %s\n", pid, p.name)
		tids := make([]int, 0, len(p.threads))
		for tid := range p.threads {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			t := p.threads[tid]
			if t.spans == 0 && t.instants == 0 && t.name == "" {
				continue
			}
			fmt.Printf("  tid %-3d %-24s spans=%-7d busy=%-12d", tid, t.name, t.spans, t.busy)
			if t.instants > 0 {
				fmt.Printf(" instants=%d", t.instants)
			}
			fmt.Println()
		}
		if len(p.spanDur) > 0 {
			names := make([]string, 0, len(p.spanDur))
			for n := range p.spanDur {
				names = append(names, n)
			}
			sort.Slice(names, func(i, j int) bool {
				if p.spanDur[names[i]] != p.spanDur[names[j]] {
					return p.spanDur[names[i]] > p.spanDur[names[j]]
				}
				return names[i] < names[j]
			})
			if len(names) > *top {
				names = names[:*top]
			}
			fmt.Println("  top spans by total duration:")
			for _, n := range names {
				fmt.Printf("    %-32s n=%-7d total=%d cycles\n", n, p.spanCnt[n], p.spanDur[n])
			}
		}
		if len(p.order) > 0 {
			names := append([]string(nil), p.order...)
			sort.Strings(names)
			fmt.Println("  final counters:")
			for _, n := range names {
				fmt.Printf("    %-36s %12d\n", n, p.counters[n])
			}
		}
	}
}

// devCounter matches the per-device mirror counters the injector and the
// membership manager emit ("fault.recover.rejoin.d1", "ckpt.take.d0",
// "replay.frames.d2", ...).
var devCounter = regexp.MustCompile(`^(.+)\.d(\d+)$`)

// devLedger is one device's recovery tally across every process of the
// trace.
type devLedger struct {
	crashes   int64 // fault.inject.devcrash
	linkdowns int64 // fault.inject.devlinkdown
	rejoins   int64 // fault.recover.rejoin
	epochs    int64 // epoch.advance
	ckpts     int64 // ckpt.take
	jrnWrites int64 // replay.writes  (checkpoint journal, restore)
	jrnBytes  int64 // replay.bytes
	pcieFr    int64 // replay.frames  (held SIF frames, re-driven)
	pcieBytes int64 // replay.frame_bytes
	injected  int64 // all fault.inject.* for this device
	recovered int64 // all fault.recover.* for this device
}

// printRecovery renders the per-device fault/recovery table from the
// counter mirrors, summed over every process in the trace.
func printRecovery(procs map[int]*process, pids []int) {
	ledgers := map[int]*devLedger{}
	for _, pid := range pids {
		for name, v := range procs[pid].counters {
			m := devCounter.FindStringSubmatch(name)
			if m == nil {
				continue
			}
			dev, err := strconv.Atoi(m[2])
			if err != nil {
				continue
			}
			l, ok := ledgers[dev]
			if !ok {
				l = &devLedger{}
				ledgers[dev] = l
			}
			switch base := m[1]; base {
			case "fault.inject.devcrash":
				l.crashes += v
			case "fault.inject.devlinkdown":
				l.linkdowns += v
			case "fault.recover.rejoin":
				l.rejoins += v
			case "epoch.advance":
				l.epochs += v
			case "ckpt.take":
				l.ckpts += v
			case "replay.writes":
				l.jrnWrites += v
			case "replay.bytes":
				l.jrnBytes += v
			case "replay.frames":
				l.pcieFr += v
			case "replay.frame_bytes":
				l.pcieBytes += v
			}
			if len(m[1]) > 13 && m[1][:13] == "fault.inject." {
				l.injected += v
			}
			if len(m[1]) > 14 && m[1][:14] == "fault.recover." {
				l.recovered += v
			}
		}
	}
	if len(ledgers) == 0 {
		fmt.Println("no per-device fault/recovery counters in this trace (run with -trace and a -fault schedule)")
		return
	}
	devs := make([]int, 0, len(ledgers))
	for d := range ledgers {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	fmt.Printf("%-4s %7s %7s %7s %7s %7s %10s %12s %10s %12s %9s %9s\n",
		"dev", "crash", "linkdn", "rejoin", "epoch", "ckpt",
		"jrn.wr", "jrn.bytes", "pcie.fr", "pcie.bytes", "injected", "recovered")
	for _, d := range devs {
		l := ledgers[d]
		fmt.Printf("d%-3d %7d %7d %7d %7d %7d %10d %12d %10d %12d %9d %9d\n",
			d, l.crashes, l.linkdowns, l.rejoins, l.epochs, l.ckpts,
			l.jrnWrites, l.jrnBytes, l.pcieFr, l.pcieBytes, l.injected, l.recovered)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vscctrace:", err)
		os.Exit(1)
	}
}
