// Command vscctrace inspects a Chrome trace-event JSON file written by
// the -trace flag of cmd/pingpong, cmd/npbbt or cmd/ablate — a
// terminal-side answer to "what is in this trace" without loading
// about://tracing or Perfetto.
//
// For every process (one per capture/subsystem pair) it prints the
// thread rows with their span counts and busy cycles, the top span
// names by total duration, and the final counter values.
//
// Usage:
//
//	vscctrace trace.json
//	vscctrace -top 5 trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// event is the subset of the Chrome trace-event fields the exporter
// emits (chrome.go): metadata (M), complete spans (X), instants (i) and
// counters (C).
type event struct {
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Ts   uint64 `json:"ts"`
	Dur  uint64 `json:"dur"`
	Name string `json:"name"`
	Args struct {
		Name  string `json:"name"`
		Value int64  `json:"value"`
	} `json:"args"`
}

type document struct {
	TraceEvents []event `json:"traceEvents"`
}

// thread aggregates one tid's rows.
type thread struct {
	name     string
	spans    int
	busy     uint64
	instants int
}

// process aggregates one pid.
type process struct {
	pid      int
	name     string
	threads  map[int]*thread
	spanDur  map[string]uint64 // total duration by span name
	spanCnt  map[string]int
	counters map[string]int64 // final value by counter name
	order    []string         // counter first-appearance order
}

func main() {
	top := flag.Int("top", 10, "span names to list per process, by total duration")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vscctrace [-top N] trace.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	check(err)
	defer f.Close()
	var doc document
	check(json.NewDecoder(f).Decode(&doc))

	procs := map[int]*process{}
	get := func(pid int) *process {
		p, ok := procs[pid]
		if !ok {
			p = &process{
				pid: pid, threads: map[int]*thread{},
				spanDur: map[string]uint64{}, spanCnt: map[string]int{},
				counters: map[string]int64{},
			}
			procs[pid] = p
		}
		return p
	}
	getThread := func(p *process, tid int) *thread {
		t, ok := p.threads[tid]
		if !ok {
			t = &thread{}
			p.threads[tid] = t
		}
		return t
	}
	for _, ev := range doc.TraceEvents {
		p := get(ev.Pid)
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				p.name = ev.Args.Name
			case "thread_name":
				getThread(p, ev.Tid).name = ev.Args.Name
			}
		case "X":
			t := getThread(p, ev.Tid)
			t.spans++
			t.busy += ev.Dur
			p.spanCnt[ev.Name]++
			p.spanDur[ev.Name] += ev.Dur
		case "i":
			getThread(p, ev.Tid).instants++
		case "C":
			if _, ok := p.counters[ev.Name]; !ok {
				p.order = append(p.order, ev.Name)
			}
			// Events are time-ordered per counter, so the last sample
			// wins — the final value.
			p.counters[ev.Name] = ev.Args.Value
		}
	}

	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	fmt.Printf("%s: %d events, %d processes\n", flag.Arg(0), len(doc.TraceEvents), len(pids))
	for _, pid := range pids {
		p := procs[pid]
		fmt.Printf("\npid %d: %s\n", pid, p.name)
		tids := make([]int, 0, len(p.threads))
		for tid := range p.threads {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			t := p.threads[tid]
			if t.spans == 0 && t.instants == 0 && t.name == "" {
				continue
			}
			fmt.Printf("  tid %-3d %-24s spans=%-7d busy=%-12d", tid, t.name, t.spans, t.busy)
			if t.instants > 0 {
				fmt.Printf(" instants=%d", t.instants)
			}
			fmt.Println()
		}
		if len(p.spanDur) > 0 {
			names := make([]string, 0, len(p.spanDur))
			for n := range p.spanDur {
				names = append(names, n)
			}
			sort.Slice(names, func(i, j int) bool {
				if p.spanDur[names[i]] != p.spanDur[names[j]] {
					return p.spanDur[names[i]] > p.spanDur[names[j]]
				}
				return names[i] < names[j]
			})
			if len(names) > *top {
				names = names[:*top]
			}
			fmt.Println("  top spans by total duration:")
			for _, n := range names {
				fmt.Printf("    %-32s n=%-7d total=%d cycles\n", n, p.spanCnt[n], p.spanDur[n])
			}
		}
		if len(p.order) > 0 {
			names := append([]string(nil), p.order...)
			sort.Strings(names)
			fmt.Println("  final counters:")
			for _, n := range names {
				fmt.Printf("    %-36s %12d\n", n, p.counters[n])
			}
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vscctrace:", err)
		os.Exit(1)
	}
}
