package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTrace drops a minimal Chrome trace-event file and returns its path.
func writeTrace(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const ledgerA = `{"traceEvents":[
{"ph":"M","pid":1,"name":"process_name","args":{"name":"run/metrics"}},
{"ph":"C","pid":1,"ts":10,"name":"fault.inject.devcrash.d1","args":{"value":1}},
{"ph":"C","pid":1,"ts":20,"name":"ckpt.take.d1","args":{"value":1}},
{"ph":"C","pid":1,"ts":90,"name":"ckpt.take.d1","args":{"value":3}},
{"ph":"C","pid":1,"ts":95,"name":"replay.writes.d1","args":{"value":10}},
{"ph":"C","pid":1,"ts":95,"name":"replay.bytes.d1","args":{"value":640}},
{"ph":"C","pid":1,"ts":99,"name":"fault.recover.rejoin.d1","args":{"value":1}},
{"ph":"C","pid":1,"ts":99,"name":"sched.requeued.d1","args":{"value":2}},
{"ph":"C","pid":1,"ts":99,"name":"sched.retry_exhausted.d1","args":{"value":1}},
{"ph":"C","pid":1,"ts":99,"name":"taskrt.reexec.d1","args":{"value":4}}
]}`

const ledgerB = `{"traceEvents":[
{"ph":"M","pid":7,"name":"process_name","args":{"name":"other/metrics"}},
{"ph":"C","pid":7,"ts":40,"name":"ckpt.take.d1","args":{"value":2}},
{"ph":"C","pid":7,"ts":50,"name":"ckpt.take.d2","args":{"value":5}}
]}`

// The same device ledger arriving through two merged files — the same
// capture listed twice, or a merged export next to one of its sources —
// must be counted once, not summed.
func TestRecoveryLedgerDedupesAcrossFiles(t *testing.T) {
	a := writeTrace(t, "a.json", ledgerA)

	once := recoveryLedgers(loadMerged([]string{a}))
	l1 := once[1]
	if l1 == nil {
		t.Fatal("no ledger for device 1")
	}
	// Last counter sample wins within a file: ckpt.take.d1 ends at 3.
	if l1.ckpts != 3 || l1.crashes != 1 || l1.jrnWrites != 10 || l1.jrnBytes != 640 {
		t.Fatalf("single-file ledger wrong: %+v", *l1)
	}
	if l1.injected != 1 || l1.recovered != 1 {
		t.Fatalf("inject/recover rollup wrong: %+v", *l1)
	}
	if l1.requeued != 2 || l1.exhausted != 1 || l1.reexecs != 4 {
		t.Fatalf("job-recovery columns wrong: %+v", *l1)
	}

	twice := recoveryLedgers(loadMerged([]string{a, a}))
	if got := twice[1]; *got != *l1 {
		t.Fatalf("duplicate file double-counted: %+v vs %+v", *got, *l1)
	}
}

// Distinct ledgers for the same device (different captures of one run)
// still sum, and devices only present in one file keep their tally.
func TestRecoveryLedgerSumsDistinctFiles(t *testing.T) {
	a := writeTrace(t, "a.json", ledgerA)
	b := writeTrace(t, "b.json", ledgerB)

	got := recoveryLedgers(loadMerged([]string{a, b}))
	if got[1].ckpts != 3+2 {
		t.Fatalf("device 1 checkpoints = %d, want 5", got[1].ckpts)
	}
	if got[2].ckpts != 5 {
		t.Fatalf("device 2 checkpoints = %d, want 5", got[2].ckpts)
	}
	if got[1].requeued != 2 || got[1].exhausted != 1 || got[1].reexecs != 4 {
		t.Fatalf("job-recovery columns lost in the sum: %+v", *got[1])
	}
}

const tenantTrace = `{"traceEvents":[
{"ph":"M","pid":0,"name":"process_name","args":{"name":"vsccd/sched"}},
{"ph":"M","pid":0,"tid":1,"name":"thread_name","args":{"name":"t002"}},
{"ph":"M","pid":0,"tid":2,"name":"thread_name","args":{"name":"t013"}},
{"ph":"X","pid":0,"tid":1,"ts":100,"dur":50,"name":"job pp-a"},
{"ph":"X","pid":0,"tid":2,"ts":120,"dur":30,"name":"job pp-b"},
{"ph":"i","pid":0,"tid":1,"ts":160,"s":"t","name":"admit"},
{"ph":"C","pid":0,"ts":200,"name":"qos.bytes.t002","args":{"value":4096}},
{"ph":"C","pid":0,"ts":200,"name":"qos.bytes.t013","args":{"value":512}},
{"ph":"C","pid":0,"ts":200,"name":"sched.admitted","args":{"value":2}}
]}`

func TestFilterTenant(t *testing.T) {
	path := writeTrace(t, "mt.json", tenantTrace)
	events := filterTenant(loadMerged([]string{path}), 2)

	var spans, instants, counters, threads, processes int
	for _, te := range events {
		switch te.Ph {
		case "X":
			spans++
			if te.Tid != 1 {
				t.Fatalf("span on foreign track tid=%d kept", te.Tid)
			}
		case "i":
			instants++
		case "C":
			counters++
			if te.Name != "qos.bytes.t002" {
				t.Fatalf("foreign counter %q kept", te.Name)
			}
		case "M":
			if te.Name == "process_name" {
				processes++
			} else {
				threads++
				// t013 must not match tenant 2's tag as a prefix.
				if te.Args.Name != "t002" {
					t.Fatalf("foreign thread %q kept", te.Args.Name)
				}
			}
		}
	}
	if spans != 1 || instants != 1 || counters != 1 || threads != 1 || processes != 1 {
		t.Fatalf("filter kept spans=%d instants=%d counters=%d threads=%d processes=%d",
			spans, instants, counters, threads, processes)
	}
}
