// Command vsccd is the multi-tenant vSCC scheduler daemon: it admits a
// workload file of many jobs from several tenants onto one simulated
// five-device fabric, enforcing per-tenant QoS (PCIe token-bucket
// bandwidth caps, deficit-round-robin fair queueing in the host
// communication task, host software-cache partitions) and space-sharing
// capacity partitions (cores/MPB, LUT slots).
//
// The run is kernel-clock deterministic: -replicas N executes the whole
// schedule N times (optionally in parallel OS threads with -parallel)
// and byte-compares the full output — result table, per-tenant metrics,
// Chrome trace — across replicas before printing it. With a -fault
// schedule the same determinism holds, and -assert-isolation verifies
// the fault domain: jobs that never touch the crashed device must
// complete, failures must match rcce.ErrDeviceLost on that device, and
// a devretry tenant's job counts as lost-then-recovered when its
// requeue record names the device.
//
// Usage:
//
//	vsccd -workload workloads/mixed50.jobs
//	vsccd -workload w.jobs -replicas 3 -parallel 3 -trace out.trace
//	vsccd -workload w.jobs -fault "seed=7,devcrash=400000:4:20000000,budget=50000,waitretries=3" -assert-isolation 4
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"vscc/internal/fault"
	"vscc/internal/harness"
	"vscc/internal/sched"
	"vscc/internal/sim"
	"vscc/internal/stats"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

func main() {
	log.SetFlags(0)
	workload := flag.String("workload", "", "workload file (required; see internal/sched.ParseWorkload)")
	devices := flag.Int("devices", 5, "coupled SCC devices")
	schemeKey := flag.String("fabric", "vdma", "fabric base scheme (fixes the PCIe ack mode jobs must share)")
	faultSpec := flag.String("fault", "", "deterministic fault schedule (see internal/fault)")
	replicas := flag.Int("replicas", 2, "independent reruns to byte-compare (>=1)")
	parallel := flag.Int("parallel", 0, "replicas run concurrently (0 = GOMAXPROCS, 1 = serial)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file")
	metrics := flag.Bool("metrics", false, "append the full metrics report")
	quantum := flag.Int("quantum", 0, "DRR quantum bytes (0 = host default)")
	cacheLines := flag.Int("cachelines", 0, "host software-cache pool partitioned among tenants (0 = default)")
	lutSlots := flag.Int("lutslots", 0, "LUT slots per device for inter-device jobs (0 = default, <0 none)")
	assertIsolation := flag.Int("assert-isolation", -1, "verify fault isolation for this crashed device (-1 off)")
	flag.Parse()
	if *workload == "" {
		fail(fmt.Errorf("missing -workload"))
	}
	f, err := os.Open(*workload)
	check(err)
	w, err := sched.ParseWorkload(f)
	f.Close()
	check(err)
	fcfg, err := fault.ParseSpec(*faultSpec)
	check(err)
	if *replicas < 1 {
		*replicas = 1
	}
	harness.SetParallelism(*parallel)

	run := runConfig{
		w:         w,
		devices:   *devices,
		fcfg:      fcfg,
		metrics:   *metrics,
		withTrace: *traceOut != "",
		opts: sched.Options{
			DRRQuantum:        *quantum,
			CacheLines:        *cacheLines,
			LUTSlotsPerDevice: *lutSlots,
		},
	}
	var ok bool
	if run.scheme, ok = vscc.SchemeByKey(*schemeKey); !ok {
		fail(fmt.Errorf("unknown fabric scheme %q", *schemeKey))
	}

	outs := make([]*replicaOutput, *replicas)
	check(harness.ForEachPoint(*replicas, func(i int) error {
		out, err := run.execute()
		if err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
		outs[i] = out
		return nil
	}))
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(outs[0].all(), outs[i].all()) {
			fail(fmt.Errorf("determinism violated: replica %d output differs from replica 0 (%d vs %d bytes)",
				i, len(outs[i].all()), len(outs[0].all())))
		}
	}
	canon := outs[0]
	os.Stdout.Write(canon.report.Bytes())
	fmt.Printf("identity: %d replica(s) byte-identical\n", len(outs))
	if *metrics {
		os.Stdout.Write(canon.metrics.Bytes())
	}
	if *traceOut != "" {
		check(os.WriteFile(*traceOut, canon.chrome.Bytes(), 0o644))
	}
	if *assertIsolation >= 0 {
		check(checkIsolation(canon.results, *assertIsolation))
		fmt.Printf("isolation: device %d fault domain contained\n", *assertIsolation)
	}
}

type runConfig struct {
	w         *sched.Workload
	devices   int
	scheme    vscc.Scheme
	fcfg      *fault.Config
	opts      sched.Options
	metrics   bool
	withTrace bool
}

type replicaOutput struct {
	report  bytes.Buffer
	metrics bytes.Buffer
	chrome  bytes.Buffer
	results []sched.Result
}

// all concatenates every byte the replica produced, for the identity
// comparison (the report embeds the result table and tenant metrics;
// chrome embeds every span and counter sample).
func (o *replicaOutput) all() []byte {
	return append(append(append([]byte(nil), o.report.Bytes()...), o.metrics.Bytes()...), o.chrome.Bytes()...)
}

// execute runs the whole schedule once on a fresh kernel and fabric.
func (rc *runConfig) execute() (*replicaOutput, error) {
	k := sim.NewKernel()
	cfg := vscc.Config{Devices: rc.devices, Scheme: rc.scheme}
	if rc.fcfg != nil {
		fc := *rc.fcfg
		cfg.Faults = &fc
	}
	sys, err := vscc.NewSystem(k, cfg)
	if err != nil {
		return nil, err
	}
	var col trace.Collector
	sink := col.New("vsccd", k)
	sys.Instrument(sink)
	s := sched.New(sys, sink, rc.opts)
	for _, ts := range rc.w.Tenants {
		if err := s.AddTenant(ts); err != nil {
			return nil, err
		}
	}
	if err := s.Submit(rc.w.Jobs); err != nil {
		return nil, err
	}
	engineErr := k.Run()
	if engineErr != nil && !s.AllTerminal() {
		return nil, fmt.Errorf("engine failed with jobs outstanding: %w", engineErr)
	}
	out := &replicaOutput{results: s.Results()}
	rc.render(out, s, sink, k, engineErr != nil)
	if rc.metrics {
		fmt.Fprint(&out.metrics, sink.MetricsReport())
	}
	if rc.withTrace {
		if err := trace.WriteChrome(&out.chrome, col.Captures()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// render prints the deterministic run report: workload header, job
// results in arrival order, the per-tenant QoS/metric table, and the
// summary counts.
func (rc *runConfig) render(out *replicaOutput, s *sched.Scheduler, sink *trace.Sink, k *sim.Kernel, stranded bool) {
	w := &out.report
	fmt.Fprintf(w, "== vsccd: %d jobs, %d tenants, %d devices, fabric %s ==\n",
		len(rc.w.Jobs), len(rc.w.Tenants), rc.devices, rc.scheme.Key())
	rows := [][]string{{"job", "tenant", "kind", "ranks", "scheme", "devs", "submit", "admit", "done", "status", "retries"}}
	counts := map[sched.Status]int{}
	requeued := 0
	for _, r := range out.results {
		counts[r.Status]++
		requeued += r.Retries
		rows = append(rows, []string{
			r.Spec.Name,
			fmt.Sprint(r.Spec.Tenant),
			string(r.Spec.Kind),
			fmt.Sprint(r.Spec.Ranks),
			r.Spec.Scheme.Key(),
			devList(r),
			cyc(r.Submit),
			cyc(r.Admit),
			cyc(r.Done),
			r.Status.String(),
			fmt.Sprint(r.Retries),
		})
	}
	fmt.Fprint(w, stats.Table(rows))
	trows := [][]string{{"tenant", "jobs done", "requeued", "pcie bytes", "bw-throttled [cyc]", "cache evicts"}}
	for _, id := range s.Tenants() {
		tag := trace.TenantTag(id)
		trows = append(trows, []string{
			tag,
			fmt.Sprint(sink.CounterValue("sched.done." + tag)),
			fmt.Sprint(sink.CounterValue("sched.requeued." + tag)),
			fmt.Sprint(sink.CounterValue("qos.bytes." + tag)),
			fmt.Sprint(sink.CounterValue("qos.bw_wait." + tag)),
			fmt.Sprint(sink.CounterValue("host.cache_evict." + tag)),
		})
	}
	fmt.Fprint(w, stats.Table(trows))
	fmt.Fprintf(w, "summary: jobs=%d ok=%d rejected=%d device-lost=%d failed=%d requeued=%d end_cycle=%d\n",
		len(out.results), counts[sched.StatusOK], counts[sched.StatusRejected],
		counts[sched.StatusDeviceLost], counts[sched.StatusFailed], requeued, k.Now())
	if stranded {
		fmt.Fprintln(w, "engine: stranded ranks parked after device loss (expected)")
	} else {
		fmt.Fprintln(w, "engine: ok")
	}
}

func cyc(c sim.Cycles) string {
	if c == sched.NoCycle {
		return "-"
	}
	return fmt.Sprint(c)
}

func devList(r sched.Result) string {
	devs := r.Devices()
	if len(devs) == 0 {
		return "-"
	}
	s := ""
	for i, d := range devs {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(d)
	}
	return s
}

// checkIsolation verifies the fault domain of a crashed device: every
// failure must involve the device and match rcce.ErrDeviceLost (via its
// status), at least one job must have been lost to — or recovered from —
// it, and every job that never touched the device must have completed
// (or been rejected for capacity, which is independent of the fault).
// A devretry job that finished ok after a requeue counts against the
// device its LostDevs record names, not its final placement: recovery
// relocates the job, but the fault domain it survived does not move.
func checkIsolation(results []sched.Result, dev int) error {
	lost, recovered := 0, 0
	for _, r := range results {
		touches := false
		for _, d := range r.Devices() {
			if d == dev {
				touches = true
			}
		}
		lostTo := false
		for _, d := range r.LostDevs {
			if d == dev {
				lostTo = true
			}
		}
		switch r.Status {
		case sched.StatusDeviceLost:
			if !touches && !lostTo {
				return fmt.Errorf("isolation violated: job %q lost to the device fault without touching device %d", r.Spec.Name, dev)
			}
			lost++
		case sched.StatusFailed:
			return fmt.Errorf("isolation violated: job %q failed with a non-device error: %v", r.Spec.Name, r.Err)
		case sched.StatusOK:
			if lostTo {
				recovered++
			} else if r.Retries > 0 {
				return fmt.Errorf("isolation violated: job %q was requeued by devices %v, not device %d", r.Spec.Name, r.LostDevs, dev)
			}
		case sched.StatusRejected:
		default:
			return fmt.Errorf("job %q finished in non-terminal state %v", r.Spec.Name, r.Status)
		}
	}
	if lost+recovered == 0 {
		return fmt.Errorf("isolation assertion vacuous: no job was lost to or recovered from device %d", dev)
	}
	return nil
}

func check(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vsccd:", err)
	os.Exit(1)
}
