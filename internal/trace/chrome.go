// chrome.go exports recorded sinks in the Chrome trace-event JSON format
// (the "trace event format" consumed by about://tracing and Perfetto).
// Timestamps are simulated core cycles written as integer microseconds —
// one displayed microsecond is one 533 MHz core cycle — which keeps the
// encoder float-free and the output byte-reproducible.
package trace

import (
	"bufio"
	"fmt"
	"io"
)

// WriteChrome writes the captures as one Chrome trace-event JSON
// document. Each capture becomes a group of processes: one pid per
// distinct track process name plus, when counters were recorded, one
// "metrics" pid carrying the counter time series. Output is a pure
// function of the recorded events, so two deterministic runs export
// byte-identical documents.
func WriteChrome(w io.Writer, caps []Capture) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\n")
	bw.WriteString("\"otherData\":{\"clock\":\"simulated core cycles (1 us = 1 cycle at 533 MHz)\"},\n")
	bw.WriteString("\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	nextPid := 0
	for _, cap := range caps {
		s := cap.Sink
		if s == nil {
			continue
		}
		// One pid per distinct process name, in track-registration order.
		pidOf := make([]int, len(s.tracks))
		procPid := map[string]int{}
		tidOf := make([]int, len(s.tracks))
		procTids := map[string]int{}
		for i, tr := range s.tracks {
			pid, ok := procPid[tr.process]
			if !ok {
				pid = nextPid
				nextPid++
				procPid[tr.process] = pid
				name := tr.process
				if cap.Name != "" {
					name = cap.Name + "/" + tr.process
				}
				emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":%s}}",
					pid, quoteJSON(name)))
			}
			pidOf[i] = pid
			tidOf[i] = procTids[tr.process]
			procTids[tr.process]++
			emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}",
				pid, tidOf[i], quoteJSON(tr.thread)))
		}
		for _, sp := range s.spans {
			pid, tid := pidOf[sp.track], tidOf[sp.track]
			if sp.instant {
				emit(fmt.Sprintf("{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"s\":\"t\",\"name\":%s}",
					pid, tid, uint64(sp.from), quoteJSON(sp.name)))
				continue
			}
			emit(fmt.Sprintf("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":%s}",
				pid, tid, uint64(sp.from), uint64(sp.to-sp.from), quoteJSON(sp.name)))
		}
		if len(s.samples) > 0 {
			pid := nextPid
			nextPid++
			name := "metrics"
			if cap.Name != "" {
				name = cap.Name + "/metrics"
			}
			emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":%s}}",
				pid, quoteJSON(name)))
			for _, cs := range s.samples {
				emit(fmt.Sprintf("{\"ph\":\"C\",\"pid\":%d,\"ts\":%d,\"name\":%s,\"args\":{\"value\":%d}}",
					pid, uint64(cs.at), quoteJSON(cs.name), cs.value))
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// quoteJSON returns s as a quoted JSON string. Track and event names are
// plain ASCII identifiers in practice; quotes, backslashes and control
// characters are escaped for safety.
func quoteJSON(s string) string {
	buf := make([]byte, 0, len(s)+2)
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			buf = append(buf, fmt.Sprintf("\\u%04x", c)...)
		default:
			buf = append(buf, c)
		}
	}
	return string(append(buf, '"'))
}
