// report.go renders a sink's counters, histograms and track occupancy as
// a plain-text metrics report — the quick-look companion to the Chrome
// export, answering "where did the cycles go" without a browser.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"vscc/internal/stats"
)

// MetricsReport renders one sink's recorded state. The report is a pure
// function of the deterministic event record, so it is byte-identical
// across reruns.
func (s *Sink) MetricsReport() string {
	if s == nil {
		return "(tracing disabled)\n"
	}
	var b strings.Builder
	end := s.k.Now()
	fmt.Fprintf(&b, "simulated time: %d cycles, kernel events: %d\n", uint64(end), s.k.Events())

	if len(s.counterNames) > 0 {
		b.WriteString("counters:\n")
		names := append([]string(nil), s.counterNames...)
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  %-36s %12d\n", n, s.counters[n])
		}
	}

	if len(s.histNames) > 0 {
		b.WriteString("histograms:\n")
		names := append([]string(nil), s.histNames...)
		sort.Strings(names)
		for _, n := range names {
			sm := stats.Summarize(s.hists[n])
			fmt.Fprintf(&b, "  %-36s n=%-6d min=%-10.0f p50=%-10.0f p99=%-10.0f max=%-10.0f mean=%.1f\n",
				n, sm.N, sm.Min, sm.Median, sm.P99, sm.Max, sm.Mean)
		}
	}

	if len(s.tracks) > 0 {
		b.WriteString("tracks: (busy = sum of span durations; util = busy / simulated time)\n")
		type occ struct {
			spans    int
			busy     uint64
			instants int
		}
		occs := make([]occ, len(s.tracks))
		for _, sp := range s.spans {
			o := &occs[sp.track]
			if sp.instant {
				o.instants++
				continue
			}
			o.spans++
			o.busy += uint64(sp.to - sp.from)
		}
		for i, tr := range s.tracks {
			o := occs[i]
			util := 0.0
			if end > 0 {
				util = 100 * float64(o.busy) / float64(end)
			}
			fmt.Fprintf(&b, "  %-36s spans=%-7d busy=%-12d util=%5.1f%%",
				tr.process+"/"+tr.thread, o.spans, o.busy, util)
			if o.instants > 0 {
				fmt.Fprintf(&b, " instants=%d", o.instants)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Report concatenates the metrics reports of every capture, each under a
// header naming the simulation it observed.
func Report(caps []Capture) string {
	var b strings.Builder
	for _, c := range caps {
		name := c.Name
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Fprintf(&b, "== metrics: %s ==\n", name)
		b.WriteString(c.Sink.MetricsReport())
	}
	return b.String()
}
