// sink.go implements the cycle-accurate event sink behind the simulator's
// observability layer: named tracks carrying spans (intervals of simulated
// time), monotonic counters, gauges and histograms, all timestamped by the
// deterministic kernel clock. Because every record call happens under the
// kernel's run-to-completion discipline, the event order — and therefore
// every export — is byte-reproducible across runs.
//
// A nil *Sink is the disabled state: every method is a nil-receiver no-op,
// so instrumented model code calls the sink unconditionally and pays one
// predictable-branch nil check and zero allocations when tracing is off.
package trace

import (
	"sort"
	"sync"

	"vscc/internal/sim"
)

// Track identifies one row of the trace: a (process, thread) pair in
// Chrome-trace terms — for example ("pcie", "pcie.d0.d2h") or
// ("commtask", "d1"). NoTrack is returned by a disabled sink.
type Track int32

// NoTrack is the track id handed out by a nil (disabled) sink. Recording
// against it is a no-op.
const NoTrack Track = -1

// trackInfo names a track.
type trackInfo struct {
	process string
	thread  string
}

// spanEvent is one recorded interval (or instant, when From == To and
// instant is set).
type spanEvent struct {
	track   Track
	name    string
	from    sim.Cycles
	to      sim.Cycles
	instant bool
}

// counterSample is one point of a counter/gauge time series.
type counterSample struct {
	name  string
	at    sim.Cycles
	value int64
}

// Sink accumulates observability events for one simulation kernel. It is
// not safe for concurrent use from multiple kernels; every kernel in a
// parallel sweep gets its own sink (see Collector).
type Sink struct {
	k *sim.Kernel

	trackIDs map[string]Track
	tracks   []trackInfo

	spans   []spanEvent
	samples []counterSample

	counters     map[string]int64
	counterNames []string // deterministic first-use order

	hists     map[string][]float64
	histNames []string
}

// NewSink returns an enabled sink timestamped by k's clock.
func NewSink(k *sim.Kernel) *Sink {
	return &Sink{
		k:        k,
		trackIDs: make(map[string]Track),
		counters: make(map[string]int64),
		hists:    make(map[string][]float64),
	}
}

// Enabled reports whether the sink records anything. It is the idiom for
// guarding instrumentation that needs to build labels:
//
//	if sink.Enabled() { sink.Span(tr, fmt.Sprintf(...), from, to) }
func (s *Sink) Enabled() bool { return s != nil }

// Now returns the current simulated time, or zero when disabled.
func (s *Sink) Now() sim.Cycles {
	if s == nil {
		return 0
	}
	return s.k.Now()
}

// Track registers (or looks up) a named track and returns its id. Ids are
// assigned in first-registration order, so a deterministic simulation
// yields deterministic ids.
func (s *Sink) Track(process, thread string) Track {
	if s == nil {
		return NoTrack
	}
	key := process + "\x00" + thread
	if id, ok := s.trackIDs[key]; ok {
		return id
	}
	id := Track(len(s.tracks))
	s.trackIDs[key] = id
	s.tracks = append(s.tracks, trackInfo{process: process, thread: thread})
	return id
}

// Span records a completed interval [from, to] on a track.
func (s *Sink) Span(t Track, name string, from, to sim.Cycles) {
	if s == nil || t == NoTrack {
		return
	}
	s.spans = append(s.spans, spanEvent{track: t, name: name, from: from, to: to})
}

// Instant records a zero-duration marker at the current time.
func (s *Sink) Instant(t Track, name string) {
	if s == nil || t == NoTrack {
		return
	}
	now := s.k.Now()
	s.spans = append(s.spans, spanEvent{track: t, name: name, from: now, to: now, instant: true})
}

// Add bumps a monotonic counter and records the new value as a
// time-series sample (a Chrome "C" event).
func (s *Sink) Add(name string, delta int64) {
	if s == nil {
		return
	}
	v, ok := s.counters[name]
	if !ok {
		s.counterNames = append(s.counterNames, name)
	}
	v += delta
	s.counters[name] = v
	s.samples = append(s.samples, counterSample{name: name, at: s.k.Now(), value: v})
}

// Gauge records the absolute current value of a quantity (queue depth,
// in-flight transactions). The final value is reported alongside the
// counters.
func (s *Sink) Gauge(name string, value int64) {
	if s == nil {
		return
	}
	if _, ok := s.counters[name]; !ok {
		s.counterNames = append(s.counterNames, name)
	}
	s.counters[name] = value
	s.samples = append(s.samples, counterSample{name: name, at: s.k.Now(), value: value})
}

// Observe adds a sample to a named histogram (message sizes, flush burst
// sizes, queueing delays). Histograms appear only in the metrics report,
// not in the Chrome export.
func (s *Sink) Observe(name string, v float64) {
	if s == nil {
		return
	}
	if _, ok := s.hists[name]; !ok {
		s.histNames = append(s.histNames, name)
	}
	s.hists[name] = append(s.hists[name], v)
}

// CounterValue returns the current value of a counter or gauge.
func (s *Sink) CounterValue(name string) int64 {
	if s == nil {
		return 0
	}
	return s.counters[name]
}

// HistogramSamples returns a copy of a histogram's samples.
func (s *Sink) HistogramSamples(name string) []float64 {
	if s == nil {
		return nil
	}
	return append([]float64(nil), s.hists[name]...)
}

// SpanCount returns the number of recorded spans and instants.
func (s *Sink) SpanCount() int {
	if s == nil {
		return 0
	}
	return len(s.spans)
}

// Capture pairs a sink with the label of the simulation it observed; a
// multi-point sweep produces one capture per point.
type Capture struct {
	Name string
	Sink *Sink
}

// Collector gathers per-point sinks from a (possibly parallel) sweep.
// Registration is mutex-protected; Captures returns them sorted by name,
// so the merged export does not depend on sweep completion order.
type Collector struct {
	mu   sync.Mutex
	caps []Capture
}

// New creates, registers and returns a sink for one labelled simulation.
// It is shaped to plug into harness.SetObserver.
func (c *Collector) New(name string, k *sim.Kernel) *Sink {
	s := NewSink(k)
	c.mu.Lock()
	c.caps = append(c.caps, Capture{Name: name, Sink: s})
	c.mu.Unlock()
	return s
}

// Captures returns the registered captures sorted by name.
func (c *Collector) Captures() []Capture {
	c.mu.Lock()
	out := append([]Capture(nil), c.caps...)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
