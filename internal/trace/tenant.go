package trace

import (
	"strconv"
	"strings"
)

// TenantTag is the canonical tenant label used across the multi-tenant
// stack: scheduler tracks, host QoS counters and the vscctrace -tenant
// filter all agree on this zero-padded form, so per-tenant metrics from
// different subsystems collate under one name.
func TenantTag(id int) string {
	s := strconv.Itoa(id)
	for len(s) < 3 {
		s = "0" + s
	}
	return "t" + s
}

// HasTenantTag reports whether a track or counter name carries the
// given tenant's tag — either as a whole name (a tenant-owned track)
// or as a ".tNNN" suffix component of a counter name.
func HasTenantTag(name string, id int) bool {
	tag := TenantTag(id)
	if name == tag {
		return true
	}
	return strings.HasSuffix(name, "."+tag) || strings.Contains(name, "."+tag+".")
}
