package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMatrixRecordAndTotals(t *testing.T) {
	m := NewMatrix(4, 0)
	m.Record(0, 1, 100)
	m.Record(0, 1, 50)
	m.Record(2, 3, 200)
	if m.Bytes(0, 1) != 150 {
		t.Errorf("bytes(0,1) = %d", m.Bytes(0, 1))
	}
	if m.Total() != 350 {
		t.Errorf("total = %d", m.Total())
	}
	src, dest, v := m.MaxPair()
	if src != 2 || dest != 3 || v != 200 {
		t.Errorf("max pair = %d->%d %d", src, dest, v)
	}
}

func TestMatrixIgnoresOutOfRange(t *testing.T) {
	m := NewMatrix(2, 0)
	m.Record(-1, 0, 10)
	m.Record(0, 5, 10)
	if m.Total() != 0 {
		t.Error("out-of-range records counted")
	}
}

func TestInterDeviceBytes(t *testing.T) {
	m := NewMatrix(96, 48)
	m.Record(0, 1, 100)   // same device
	m.Record(0, 48, 200)  // crosses
	m.Record(95, 47, 300) // crosses
	if got := m.InterDeviceBytes(); got != 500 {
		t.Errorf("inter-device = %d, want 500", got)
	}
	if m.Total() != 600 {
		t.Errorf("total = %d", m.Total())
	}
}

func TestNeighborFraction(t *testing.T) {
	m := NewMatrix(8, 0)
	m.Record(0, 1, 100)
	m.Record(7, 0, 100) // ring wrap: distance 1
	m.Record(0, 4, 100) // distance 4
	frac := m.NeighborFraction(1)
	if frac < 0.66 || frac > 0.67 {
		t.Errorf("fraction = %v, want 2/3", frac)
	}
	if m.NeighborFraction(4) != 1 {
		t.Error("all traffic within distance 4")
	}
}

func TestRenderContainsStructure(t *testing.T) {
	m := NewMatrix(8, 4)
	m.Record(0, 1, 1000)
	m.Record(4, 5, 250)
	out := m.Render()
	if !strings.Contains(out, "#") {
		t.Error("render missing max-intensity glyph")
	}
	if !strings.Contains(out, "|") {
		t.Error("render missing device boundary")
	}
	if !strings.Contains(out, "traffic matrix: 8 ranks") {
		t.Errorf("render header wrong:\n%s", out)
	}
}

func TestCSVStableOutput(t *testing.T) {
	m := NewMatrix(4, 0)
	m.Record(3, 0, 5)
	m.Record(1, 2, 7)
	csv := m.CSV()
	want := "src,dest,bytes\n1,2,7\n3,0,5\n"
	if csv != want {
		t.Errorf("csv = %q, want %q", csv, want)
	}
}

// Property: total equals the sum over all cells regardless of record
// order, and MaxPair is an upper bound for every cell.
func TestPropertyMatrixConsistency(t *testing.T) {
	f := func(events []struct {
		S, D uint8
		N    uint16
	}) bool {
		m := NewMatrix(16, 4)
		var want uint64
		for _, e := range events {
			s, d := int(e.S)%16, int(e.D)%16
			m.Record(s, d, int(e.N))
			want += uint64(e.N)
		}
		if m.Total() != want {
			return false
		}
		_, _, max := m.MaxPair()
		for i := 0; i < 16; i++ {
			for j := 0; j < 16; j++ {
				if m.Bytes(i, j) > max {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// A matrix with zero-traffic ranks (or no traffic at all) must render
// and summarize without dividing by zero.
func TestMatrixZeroTraffic(t *testing.T) {
	m := NewMatrix(8, 4)
	if m.Total() != 0 || m.InterDeviceBytes() != 0 {
		t.Error("fresh matrix carries traffic")
	}
	if _, _, max := m.MaxPair(); max != 0 {
		t.Errorf("max pair of empty matrix = %d", max)
	}
	if f := m.NeighborFraction(1); f != 0 {
		t.Errorf("neighbor fraction of empty matrix = %v, want 0", f)
	}
	out := m.Render()
	if !strings.Contains(out, "traffic matrix: 8 ranks, total 0.0 MB") {
		t.Errorf("empty render header wrong:\n%s", out)
	}
	// Skip the two header lines; the grid itself must be all blank.
	grid := strings.SplitN(out, "\n", 3)[2]
	if strings.ContainsAny(grid, ".:+#") {
		t.Errorf("empty matrix rendered non-blank cells:\n%s", out)
	}
	if got := m.CSV(); got != "src,dest,bytes\n" {
		t.Errorf("empty csv = %q", got)
	}
	// One active pair among otherwise idle ranks: only that cell shades.
	m.Record(2, 6, 512)
	if got := strings.Count(m.Render(), "#"); got != 1 {
		t.Errorf("single-pair render has %d max-intensity cells, want 1", got)
	}
}

// Self-traffic (rank sending to itself) sits on the diagonal: counted
// in totals, never inter-device, always within neighbour distance 0.
func TestMatrixSelfTraffic(t *testing.T) {
	m := NewMatrix(96, 48)
	m.Record(5, 5, 1000)
	m.Record(50, 50, 200)
	if m.Bytes(5, 5) != 1000 || m.Total() != 1200 {
		t.Errorf("self-traffic totals wrong: %d, %d", m.Bytes(5, 5), m.Total())
	}
	if m.InterDeviceBytes() != 0 {
		t.Errorf("self-traffic counted as inter-device: %d", m.InterDeviceBytes())
	}
	if f := m.NeighborFraction(0); f != 1 {
		t.Errorf("self-traffic neighbour fraction = %v, want 1", f)
	}
	src, dest, max := m.MaxPair()
	if src != 5 || dest != 5 || max != 1000 {
		t.Errorf("max pair = %d->%d %d, want diagonal 5->5 1000", src, dest, max)
	}
}
