// Package trace records communication traffic between RCCE ranks and
// renders the paper's Fig. 8 style traffic matrix: each cell (x, y) is
// the volume sent from rank x to rank y, with inter-device blocks
// visually separated.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Matrix accumulates pairwise traffic volumes.
type Matrix struct {
	n     int
	bytes [][]uint64
	// ranksPerDevice delimits the device blocks for rendering (48 on a
	// full SCC).
	ranksPerDevice int
}

// NewMatrix creates an n-rank matrix; ranksPerDevice controls the
// inter-device block boundaries in reports (pass 0 to disable).
func NewMatrix(n, ranksPerDevice int) *Matrix {
	m := &Matrix{n: n, ranksPerDevice: ranksPerDevice}
	m.bytes = make([][]uint64, n)
	for i := range m.bytes {
		m.bytes[i] = make([]uint64, n)
	}
	return m
}

// Record adds one message. It is shaped to plug into
// rcce.WithTrafficObserver.
func (m *Matrix) Record(src, dest, bytes int) {
	if src < 0 || src >= m.n || dest < 0 || dest >= m.n {
		return
	}
	m.bytes[src][dest] += uint64(bytes)
}

// N returns the rank count.
func (m *Matrix) N() int { return m.n }

// Bytes returns the volume sent from src to dest.
func (m *Matrix) Bytes(src, dest int) uint64 { return m.bytes[src][dest] }

// Total returns the overall volume.
func (m *Matrix) Total() uint64 {
	var t uint64
	for _, row := range m.bytes {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// MaxPair returns the heaviest (src, dest) pair and its volume — the
// paper reports ~186 MB for the 64-rank BT class C run.
func (m *Matrix) MaxPair() (src, dest int, bytes uint64) {
	for i, row := range m.bytes {
		for j, v := range row {
			if v > bytes {
				src, dest, bytes = i, j, v
			}
		}
	}
	return
}

// sameDevice reports whether two ranks share a device.
func (m *Matrix) sameDevice(a, b int) bool {
	if m.ranksPerDevice <= 0 {
		return true
	}
	return a/m.ranksPerDevice == b/m.ranksPerDevice
}

// InterDeviceBytes returns the volume crossing device boundaries — the
// bottleneck path of §4.2.
func (m *Matrix) InterDeviceBytes() uint64 {
	var t uint64
	for i, row := range m.bytes {
		for j, v := range row {
			if !m.sameDevice(i, j) {
				t += v
			}
		}
	}
	return t
}

// NeighborFraction returns the fraction of traffic between ranks within
// the given rank distance — BT's pattern is strongly neighbour-based
// ("the majority of data points are located close to the diagonal").
func (m *Matrix) NeighborFraction(maxDist int) float64 {
	total := m.Total()
	if total == 0 {
		return 0
	}
	var near uint64
	for i, row := range m.bytes {
		for j, v := range row {
			d := i - j
			if d < 0 {
				d = -d
			}
			// The ring wraps: distance n-1 is a neighbour too.
			if wrap := m.n - d; wrap < d {
				d = wrap
			}
			if d <= maxDist {
				near += v
			}
		}
	}
	return float64(near) / float64(total)
}

// Render draws the matrix with one character per cell: ' ' none, then
// '.', ':', '+', '#' by volume relative to the maximum (dark = high,
// matching Fig. 8's shading). Device boundaries are drawn as grid lines.
func (m *Matrix) Render() string {
	_, _, max := m.MaxPair()
	var b strings.Builder
	fmt.Fprintf(&b, "traffic matrix: %d ranks, total %.1f MB, inter-device %.1f MB\n",
		m.n, float64(m.Total())/1e6, float64(m.InterDeviceBytes())/1e6)
	glyph := func(v uint64) byte {
		if v == 0 {
			return ' '
		}
		switch f := float64(v) / float64(max); {
		case f > 0.75:
			return '#'
		case f > 0.5:
			return '+'
		case f > 0.25:
			return ':'
		default:
			return '.'
		}
	}
	boundary := func(i int) bool {
		return m.ranksPerDevice > 0 && i > 0 && i%m.ranksPerDevice == 0
	}
	// Header: x is the sender, y the receiver (per the paper's Fig. 8).
	b.WriteString("     x = sender, y = receiver; cell shade = volume\n")
	for y := 0; y < m.n; y++ {
		if boundary(y) {
			fmt.Fprintf(&b, "     %s\n", strings.Repeat("-", m.n+m.n/maxInt(1, m.ranksPerDevice)))
		}
		fmt.Fprintf(&b, "%4d ", y)
		for x := 0; x < m.n; x++ {
			if boundary(x) {
				b.WriteByte('|')
			}
			b.WriteByte(glyph(m.bytes[x][y]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CSV emits the matrix as src,dest,bytes rows (non-zero cells only),
// sorted for stable output.
func (m *Matrix) CSV() string {
	var b strings.Builder
	b.WriteString("src,dest,bytes\n")
	type cell struct{ s, d int }
	var cells []cell
	for i, row := range m.bytes {
		for j, v := range row {
			if v > 0 {
				cells = append(cells, cell{i, j})
			}
			_ = j
		}
	}
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].s != cells[b].s {
			return cells[a].s < cells[b].s
		}
		return cells[a].d < cells[b].d
	})
	for _, c := range cells {
		fmt.Fprintf(&b, "%d,%d,%d\n", c.s, c.d, m.bytes[c.s][c.d])
	}
	return b.String()
}
