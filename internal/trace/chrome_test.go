package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vscc/internal/sim"
)

// buildTestCapture records a small but representative sink: two
// processes, spans, an instant, counters and an awkward event name.
func buildTestCapture(t *testing.T) Capture {
	t.Helper()
	s := NewSink(sim.NewKernel())
	l0 := s.Track("noc", "link0")
	l1 := s.Track("noc", "link1")
	ct := s.Track("commtask", "d0")
	s.Span(l0, `xfer 64B "fast"`, 0, 40)
	s.Span(l1, "xfer 32B", 10, 30)
	s.Span(ct, "deliver", 5, 12)
	s.Instant(l0, `drop\retry`)
	s.Add("bytes", 96)
	s.Add("bytes", 64)
	s.Gauge("depth", 2)
	return Capture{Name: "test/size=0000064", Sink: s}
}

// The export must be valid JSON with the documented structure: metadata
// names every process and thread, spans become X events, instants i
// events, counters C events.
func TestWriteChromeProducesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, []Capture{buildTestCapture(t)}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph]++
	}
	// 2 track process_name + 3 thread_name + the metrics process_name.
	if counts["M"] != 6 {
		t.Errorf("metadata events = %d, want 6", counts["M"])
	}
	if counts["X"] != 3 || counts["i"] != 1 {
		t.Errorf("spans/instants = %d/%d, want 3/1", counts["X"], counts["i"])
	}
	// bytes sampled twice, depth once.
	if counts["C"] != 3 {
		t.Errorf("counter events = %d, want 3", counts["C"])
	}
	// The quote and backslash in event names survived the round trip.
	var names []string
	for _, ev := range doc.TraceEvents {
		names = append(names, ev.Name)
	}
	joined := strings.Join(names, "\n")
	if !strings.Contains(joined, `xfer 64B "fast"`) || !strings.Contains(joined, `drop\retry`) {
		t.Errorf("escaped names did not round-trip:\n%s", joined)
	}
}

// Two encodes of the same captures must be byte-identical — the
// property the CI determinism gate builds on.
func TestWriteChromeDeterministic(t *testing.T) {
	caps := []Capture{buildTestCapture(t)}
	var a, b bytes.Buffer
	if err := WriteChrome(&a, caps); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, caps); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two encodes of the same captures differ")
	}
}

// Nil sinks (disabled points) and empty captures must not corrupt the
// document.
func TestWriteChromeSkipsNilSinks(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChrome(&buf, []Capture{
		{Name: "disabled", Sink: nil},
		{Name: "empty", Sink: NewSink(sim.NewKernel())},
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export with nil sinks is not valid JSON: %v", err)
	}
}

func TestQuoteJSONEscapes(t *testing.T) {
	for in, want := range map[string]string{
		"plain":      `"plain"`,
		`a"b`:        `"a\"b"`,
		`a\b`:        `"a\\b"`,
		"tab\there":  "\"tab\\u0009here\"",
		"nl\nthere":  "\"nl\\u000athere\"",
		"bell\x07up": "\"bell\\u0007up\"",
	} {
		if got := quoteJSON(in); got != want {
			t.Errorf("quoteJSON(%q) = %s, want %s", in, got, want)
		}
		var back string
		if err := json.Unmarshal([]byte(quoteJSON(in)), &back); err != nil || back != in {
			t.Errorf("quoteJSON(%q) does not round-trip: %v, %q", in, err, back)
		}
	}
}
