package trace

import (
	"strings"
	"testing"

	"vscc/internal/sim"
)

// The disabled path must be free: a nil *Sink accepts every call as a
// no-op without allocating, so instrumented model code runs untouched
// when tracing is off.
func TestNilSinkIsFreeNoOp(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	tr := s.Track("noc", "link0")
	if tr != NoTrack {
		t.Fatalf("nil sink track = %d, want NoTrack", tr)
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Span(tr, "xfer", 0, 10)
		s.Instant(tr, "mark")
		s.Add("bytes", 64)
		s.Gauge("depth", 3)
		s.Observe("size", 64)
		_ = s.Now()
		_ = s.CounterValue("bytes")
		_ = s.SpanCount()
	})
	if allocs != 0 {
		t.Errorf("disabled sink allocates %.1f per call batch, want 0", allocs)
	}
	if s.CounterValue("bytes") != 0 || s.SpanCount() != 0 || s.HistogramSamples("size") != nil {
		t.Error("nil sink retained state")
	}
}

// Recording against NoTrack (handed out by a disabled sink) must be a
// no-op even on an enabled sink, so mixed instrumented/uninstrumented
// components compose.
func TestSpanOnNoTrackIgnored(t *testing.T) {
	s := NewSink(sim.NewKernel())
	s.Span(NoTrack, "xfer", 0, 10)
	s.Instant(NoTrack, "mark")
	if s.SpanCount() != 0 {
		t.Errorf("spans on NoTrack recorded: %d", s.SpanCount())
	}
}

func TestSinkRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	s := NewSink(k)
	if !s.Enabled() {
		t.Fatal("fresh sink not enabled")
	}

	// Track registration deduplicates on (process, thread) and hands out
	// ids in first-registration order.
	a := s.Track("noc", "link0")
	b := s.Track("noc", "link1")
	if a2 := s.Track("noc", "link0"); a2 != a {
		t.Errorf("re-registration returned %d, want %d", a2, a)
	}
	if a == b {
		t.Error("distinct threads share a track id")
	}

	s.Span(a, "xfer", 10, 25)
	s.Instant(b, "drop")
	if s.SpanCount() != 2 {
		t.Errorf("span count = %d, want 2", s.SpanCount())
	}

	s.Add("bytes", 64)
	s.Add("bytes", 32)
	if v := s.CounterValue("bytes"); v != 96 {
		t.Errorf("counter = %d, want 96", v)
	}
	s.Gauge("depth", 7)
	s.Gauge("depth", 3)
	if v := s.CounterValue("depth"); v != 3 {
		t.Errorf("gauge = %d, want last-write 3", v)
	}

	s.Observe("size", 64)
	s.Observe("size", 4096)
	if got := s.HistogramSamples("size"); len(got) != 2 || got[0] != 64 || got[1] != 4096 {
		t.Errorf("histogram = %v", got)
	}

	rep := s.MetricsReport()
	for _, want := range []string{"bytes", "depth", "size", "noc/link0", "noc/link1"} {
		if !strings.Contains(rep, want) {
			t.Errorf("metrics report missing %q:\n%s", want, rep)
		}
	}
}

// Timestamps come from the kernel clock, so events recorded during a
// run carry simulated time.
func TestSinkTimestampsFollowKernelClock(t *testing.T) {
	k := sim.NewKernel()
	s := NewSink(k)
	tr := s.Track("test", "proc")
	k.After(5, func() { s.Add("ticks", 1) })
	k.After(9, func() { s.Instant(tr, "late") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 9 {
		t.Errorf("sink now = %d, want 9", s.Now())
	}
	if len(s.samples) != 1 || s.samples[0].at != 5 {
		t.Errorf("counter sample at %v, want cycle 5", s.samples)
	}
	if len(s.spans) != 1 || s.spans[0].from != 9 || !s.spans[0].instant {
		t.Errorf("instant recorded as %+v, want instant at 9", s.spans)
	}
}

// Captures come back sorted by name regardless of registration order —
// the property that makes parallel-sweep exports order-independent.
func TestCollectorSortsCaptures(t *testing.T) {
	var c Collector
	k := sim.NewKernel()
	c.New("sweep/size=0002048", k)
	c.New("sweep/size=0000032", k)
	c.New("sweep/size=0001024", k)
	caps := c.Captures()
	if len(caps) != 3 {
		t.Fatalf("captures = %d, want 3", len(caps))
	}
	want := []string{"sweep/size=0000032", "sweep/size=0001024", "sweep/size=0002048"}
	for i, w := range want {
		if caps[i].Name != w {
			t.Errorf("capture[%d] = %q, want %q", i, caps[i].Name, w)
		}
		if caps[i].Sink == nil {
			t.Errorf("capture[%d] has nil sink", i)
		}
	}
}
