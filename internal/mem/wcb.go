package mem

// WCB models the SCC's write-combine buffer: a single 32-byte line buffer
// between a core and the mesh that merges consecutive stores to the same
// line into one mesh transaction. It drains when the core writes a
// different line or flushes explicitly. The paper exploits this to fuse
// the three vDMA control registers (address, count, control), allocated
// contiguously with 32 B alignment, into a single remote write.
type WCB struct {
	valid bool
	key   uint64
	buf   [LineSize]byte
	mask  uint32 // bit i set = byte i written

	merges  uint64
	drains  uint64
	partial uint64
}

// Pending describes a drained WCB line to be written to memory.
type Pending struct {
	Key  uint64
	Data [LineSize]byte
	Mask uint32 // which bytes are valid
}

// Full reports whether every byte of the pending line was written.
func (p Pending) Full() bool { return p.Mask == 0xFFFFFFFF }

// Bytes returns the number of valid bytes in the pending line.
func (p Pending) Bytes() int {
	n := 0
	for m := p.Mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Write merges a store of data at byte offset off into the line keyed by
// key. If the WCB currently holds a different line, that line drains and
// is returned; otherwise drained is nil. len(data) must fit in the line.
func (w *WCB) Write(key uint64, off int, data []byte) (drained *Pending) {
	if off < 0 || off+len(data) > LineSize {
		panic("mem: WCB write outside line")
	}
	if w.valid && w.key != key {
		d := w.take()
		drained = &d
	}
	if !w.valid {
		w.valid = true
		w.key = key
		w.mask = 0
	} else {
		w.merges++
	}
	copy(w.buf[off:], data)
	for i := 0; i < len(data); i++ {
		w.mask |= 1 << uint(off+i)
	}
	return drained
}

// Flush drains the buffered line, if any.
func (w *WCB) Flush() *Pending {
	if !w.valid {
		return nil
	}
	d := w.take()
	return &d
}

// Dirty reports whether a line is buffered.
func (w *WCB) Dirty() bool { return w.valid }

// PendingKey returns the key of the buffered line, if any — consumed by
// the scc consistency checker to flag reads overlapping combined stores.
func (w *WCB) PendingKey() (key uint64, ok bool) { return w.key, w.valid }

func (w *WCB) take() Pending {
	p := Pending{Key: w.key, Data: w.buf, Mask: w.mask}
	w.valid = false
	w.drains++
	if !p.Full() {
		w.partial++
	}
	return p
}

// WCBStats is a snapshot of write-combine counters.
type WCBStats struct {
	Merges, Drains, PartialDrains uint64
}

// Stats returns counters accumulated since creation.
func (w *WCB) Stats() WCBStats {
	return WCBStats{Merges: w.merges, Drains: w.drains, PartialDrains: w.partial}
}
