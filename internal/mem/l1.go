package mem

// L1 models the first-level cache behaviour of the SCC's MPBT memory
// type. MPBT data in write-through configuration is cached only in L1;
// all deeper caches are bypassed. There is no hardware coherence: a line
// cached here goes stale the moment another core writes the underlying
// MPB, until the owning core executes CL1INVMB (modelled by
// InvalidateAll), which invalidates every MPBT-tagged line in one
// instruction.
//
// The cache stores real line contents so that a missing invalidation
// produces genuinely stale reads, reproducing the SCC programming model.
type L1 struct {
	lines    map[uint64]*[LineSize]byte
	order    []uint64 // FIFO eviction order
	maxLines int

	hits      uint64
	misses    uint64
	evictions uint64
	flushes   uint64
}

// NewL1 returns a cache holding at most maxLines MPBT lines. The SCC's
// 16 KB L1 data cache holds 512 lines; MPBT data shares it with private
// data, so smaller budgets are realistic too.
func NewL1(maxLines int) *L1 {
	if maxLines <= 0 {
		panic("mem: L1 with non-positive capacity")
	}
	return &L1{lines: make(map[uint64]*[LineSize]byte), maxLines: maxLines}
}

// Lookup returns the cached copy of the line keyed by key, if present.
// The returned slice aliases cache storage; callers must not modify it.
func (c *L1) Lookup(key uint64) ([]byte, bool) {
	if ln, ok := c.lines[key]; ok {
		c.hits++
		return ln[:], true
	}
	c.misses++
	return nil, false
}

// Contains reports whether the line is cached, without touching hit/miss
// counters.
func (c *L1) Contains(key uint64) bool {
	_, ok := c.lines[key]
	return ok
}

// Fill inserts a line fetched from memory, evicting the oldest line if
// the cache is full.
func (c *L1) Fill(key uint64, data [LineSize]byte) {
	if _, ok := c.lines[key]; !ok {
		if len(c.order) >= c.maxLines {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.lines, oldest)
			c.evictions++
		}
		c.order = append(c.order, key)
	}
	d := data
	c.lines[key] = &d
}

// UpdateIfPresent applies a write-through store to the cached copy, if
// the line is resident. off is the byte offset within the line.
func (c *L1) UpdateIfPresent(key uint64, off int, data []byte) {
	ln, ok := c.lines[key]
	if !ok {
		return
	}
	copy(ln[off:], data)
}

// InvalidateAll models CL1INVMB: every MPBT line is dropped in a single
// instruction.
func (c *L1) InvalidateAll() {
	c.lines = make(map[uint64]*[LineSize]byte)
	c.order = c.order[:0]
	c.flushes++
}

// Len reports the number of resident lines.
func (c *L1) Len() int { return len(c.lines) }

// L1Stats is a snapshot of cache counters.
type L1Stats struct {
	Hits, Misses, Evictions, Flushes uint64
}

// Stats returns counters accumulated since creation.
func (c *L1) Stats() L1Stats {
	return L1Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Flushes: c.flushes}
}
