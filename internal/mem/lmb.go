// Package mem models the Intel SCC's software-controlled on-chip memory
// system: the per-tile local memory buffer (LMB) that holds the message
// passing buffer (MPB) and the synchronization-flag (SF) region, the L1
// cache behaviour of the MPBT memory type (write-through, bulk-invalidate
// via CL1INVMB), the write-combine buffer (WCB) that fuses consecutive
// stores to one cache line, and the per-core test-and-set registers.
//
// The models are functional: they store real bytes, so forgetting an
// invalidation yields genuinely stale data — exactly the programming
// hazard the SCC's non-coherent memory exposes and that the RCCE
// protocols are built to control.
package mem

import "fmt"

// LineSize is the cache-line granularity (bytes) of the SCC memory
// system; the MPB, L1 and WCB all operate on 32-byte lines.
const LineSize = 32

// LMBSize is the size in bytes of one tile's local memory buffer (16 KB,
// shared by the tile's two cores: 8 KB each for MPB plus flags).
const LMBSize = 16 * 1024

// CoreLMBSize is the per-core share of the tile's LMB (8 KB). The paper's
// §4.1 footnote: "The Local Memory Buffer of 8 kB holds the MPB and flags
// for synchronization" — the 8 KB threshold visible in Fig. 6b.
const CoreLMBSize = LMBSize / 2

// LMB is one tile's local memory buffer: a plain on-chip SRAM holding
// real bytes.
type LMB struct {
	data []byte
}

// NewLMB returns a zeroed LMB of the given size (use LMBSize for an SCC
// tile).
func NewLMB(size int) *LMB {
	if size <= 0 || size%LineSize != 0 {
		panic(fmt.Sprintf("mem: LMB size %d not a positive multiple of %d", size, LineSize))
	}
	return &LMB{data: make([]byte, size)}
}

// Size returns the buffer capacity in bytes.
func (l *LMB) Size() int { return len(l.data) }

// Read copies len(buf) bytes starting at off into buf.
func (l *LMB) Read(off int, buf []byte) {
	l.check(off, len(buf))
	copy(buf, l.data[off:])
}

// Write copies data into the buffer at off.
func (l *LMB) Write(off int, data []byte) {
	l.check(off, len(data))
	copy(l.data[off:], data)
}

// Line returns a copy of the 32-byte line containing off.
func (l *LMB) Line(off int) [LineSize]byte {
	base := off &^ (LineSize - 1)
	l.check(base, LineSize)
	var line [LineSize]byte
	copy(line[:], l.data[base:])
	return line
}

func (l *LMB) check(off, n int) {
	if off < 0 || n < 0 || off+n > len(l.data) {
		panic(fmt.Sprintf("mem: LMB access [%d,%d) outside %d-byte buffer", off, off+n, len(l.data)))
	}
}

// TestAndSet models the SCC's per-core test-and-set register, the chip's
// only atomic primitive. Set returns the previous value and leaves the
// register set; Clear resets it.
type TestAndSet struct {
	set bool
}

// Set atomically reads and sets the register; it returns true if the
// caller acquired it (register was clear).
func (t *TestAndSet) Set() bool {
	was := t.set
	t.set = true
	return !was
}

// Clear releases the register.
func (t *TestAndSet) Clear() { t.set = false }

// IsSet reports the current value without modifying it.
func (t *TestAndSet) IsSet() bool { return t.set }
