package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLMBReadWriteRoundTrip(t *testing.T) {
	l := NewLMB(LMBSize)
	data := []byte("hello, message passing buffer")
	l.Write(128, data)
	got := make([]byte, len(data))
	l.Read(128, got)
	if !bytes.Equal(got, data) {
		t.Errorf("read back %q, want %q", got, data)
	}
}

func TestLMBZeroInitialized(t *testing.T) {
	l := NewLMB(LMBSize)
	buf := make([]byte, 64)
	l.Read(0, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestLMBLine(t *testing.T) {
	l := NewLMB(LMBSize)
	l.Write(64, []byte{1, 2, 3, 4})
	line := l.Line(65) // inside the same 32B line
	if line[0] != 1 || line[3] != 4 {
		t.Errorf("line = %v, want prefix 1,2,3,4", line[:4])
	}
}

func TestLMBOutOfBoundsPanics(t *testing.T) {
	l := NewLMB(LMBSize)
	for _, c := range []struct {
		off, n int
	}{{LMBSize - 1, 2}, {-1, 1}, {0, LMBSize + 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("access at off=%d n=%d did not panic", c.off, c.n)
				}
			}()
			l.Read(c.off, make([]byte, c.n))
		}()
	}
}

func TestLMBBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLMB(33) did not panic")
		}
	}()
	NewLMB(33)
}

func TestCoreLMBSizeIs8KB(t *testing.T) {
	if CoreLMBSize != 8192 {
		t.Errorf("CoreLMBSize = %d, want 8192 (paper §4.1 footnote)", CoreLMBSize)
	}
}

func TestTestAndSetSemantics(t *testing.T) {
	var ts TestAndSet
	if !ts.Set() {
		t.Fatal("first Set should acquire")
	}
	if ts.Set() {
		t.Fatal("second Set should fail")
	}
	if !ts.IsSet() {
		t.Fatal("register should read set")
	}
	ts.Clear()
	if ts.IsSet() {
		t.Fatal("register should read clear")
	}
	if !ts.Set() {
		t.Fatal("Set after Clear should acquire")
	}
}

func TestL1MissThenHit(t *testing.T) {
	c := NewL1(8)
	if _, ok := c.Lookup(42); ok {
		t.Fatal("lookup on empty cache hit")
	}
	var line [LineSize]byte
	line[0] = 0xAB
	c.Fill(42, line)
	got, ok := c.Lookup(42)
	if !ok || got[0] != 0xAB {
		t.Fatalf("lookup after fill = %v,%v", got, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 miss", s)
	}
}

func TestL1StaleDataWithoutInvalidation(t *testing.T) {
	// The core semantics of non-coherent memory: a cached line does NOT
	// see memory updates until invalidated.
	c := NewL1(8)
	var old [LineSize]byte
	old[0] = 1
	c.Fill(7, old)
	// Memory changes behind the cache's back; the cache still returns 1.
	got, ok := c.Lookup(7)
	if !ok || got[0] != 1 {
		t.Fatal("expected stale hit")
	}
	c.InvalidateAll()
	if _, ok := c.Lookup(7); ok {
		t.Fatal("lookup after InvalidateAll hit")
	}
}

func TestL1UpdateIfPresent(t *testing.T) {
	c := NewL1(8)
	var line [LineSize]byte
	c.Fill(1, line)
	c.UpdateIfPresent(1, 4, []byte{9, 9})
	got, _ := c.Lookup(1)
	if got[4] != 9 || got[5] != 9 {
		t.Errorf("update not applied: %v", got[:8])
	}
	c.UpdateIfPresent(2, 0, []byte{1}) // absent line: no-op, no panic
}

func TestL1FIFOEviction(t *testing.T) {
	c := NewL1(2)
	var line [LineSize]byte
	c.Fill(1, line)
	c.Fill(2, line)
	c.Fill(3, line) // evicts 1
	if c.Contains(1) {
		t.Error("line 1 should have been evicted")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Error("lines 2,3 should be resident")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestL1RefillSameKeyNoEvict(t *testing.T) {
	c := NewL1(2)
	var a, b [LineSize]byte
	a[0] = 1
	b[0] = 2
	c.Fill(5, a)
	c.Fill(5, b) // refill same key must not grow occupancy
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
	got, _ := c.Lookup(5)
	if got[0] != 2 {
		t.Error("refill did not replace data")
	}
}

func TestWCBMergesSameLine(t *testing.T) {
	var w WCB
	if d := w.Write(10, 0, []byte{1, 2, 3, 4}); d != nil {
		t.Fatal("first write drained")
	}
	if d := w.Write(10, 4, []byte{5, 6, 7, 8}); d != nil {
		t.Fatal("same-line write drained")
	}
	p := w.Flush()
	if p == nil {
		t.Fatal("flush returned nil")
	}
	if p.Key != 10 || p.Bytes() != 8 {
		t.Errorf("pending = key %d, %d bytes; want 10, 8", p.Key, p.Bytes())
	}
	if p.Data[0] != 1 || p.Data[7] != 8 {
		t.Errorf("pending data wrong: %v", p.Data[:8])
	}
}

func TestWCBDrainsOnLineSwitch(t *testing.T) {
	var w WCB
	w.Write(1, 0, []byte{0xAA})
	d := w.Write(2, 0, []byte{0xBB})
	if d == nil || d.Key != 1 || d.Data[0] != 0xAA {
		t.Fatalf("line switch did not drain line 1: %+v", d)
	}
	if !w.Dirty() {
		t.Error("WCB should hold line 2")
	}
}

func TestWCBVDMARegisterFusion(t *testing.T) {
	// The paper's vDMA programming: three 8-byte registers (address,
	// count, control) contiguous within one 32 B line fuse into a single
	// remote write.
	var w WCB
	if d := w.Write(0, 0, []byte{1, 0, 0, 0, 0, 0, 0, 0}); d != nil { // address
		t.Fatal("unexpected drain")
	}
	if d := w.Write(0, 8, []byte{2, 0, 0, 0, 0, 0, 0, 0}); d != nil { // count
		t.Fatal("unexpected drain")
	}
	if d := w.Write(0, 16, []byte{3, 0, 0, 0, 0, 0, 0, 0}); d != nil { // control
		t.Fatal("unexpected drain")
	}
	p := w.Flush()
	if p == nil || p.Bytes() != 24 {
		t.Fatalf("fusion produced %v, want one 24-byte pending line", p)
	}
	if s := w.Stats(); s.Drains != 1 || s.Merges != 2 {
		t.Errorf("stats = %+v, want 1 drain, 2 merges", s)
	}
}

func TestWCBFullLine(t *testing.T) {
	var w WCB
	full := make([]byte, LineSize)
	w.Write(3, 0, full)
	p := w.Flush()
	if p == nil || !p.Full() {
		t.Errorf("full-line write not reported Full: %+v", p)
	}
}

func TestWCBFlushEmpty(t *testing.T) {
	var w WCB
	if p := w.Flush(); p != nil {
		t.Errorf("flush of clean WCB = %+v, want nil", p)
	}
}

func TestWCBWriteOutsideLinePanics(t *testing.T) {
	var w WCB
	defer func() {
		if recover() == nil {
			t.Error("oversized WCB write did not panic")
		}
	}()
	w.Write(0, 30, []byte{1, 2, 3})
}

// Property: LMB writes at arbitrary aligned offsets always read back
// identically and never disturb neighbouring bytes.
func TestPropertyLMBIsolation(t *testing.T) {
	f := func(off uint16, val byte) bool {
		l := NewLMB(LMBSize)
		o := int(off) % (LMBSize - 1)
		l.Write(o, []byte{val})
		got := make([]byte, 1)
		l.Read(o, got)
		if got[0] != val {
			return false
		}
		// All other bytes stay zero.
		buf := make([]byte, LMBSize)
		l.Read(0, buf)
		for i, b := range buf {
			if i != o && b != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: any sequence of WCB writes preserves every byte in either the
// buffer or exactly one drained line (no loss, no duplication of keys in
// flight).
func TestPropertyWCBNoByteLoss(t *testing.T) {
	f := func(ops []struct {
		Key uint8
		Off uint8
		Val byte
	}) bool {
		var w WCB
		want := map[uint64][LineSize]byte{}
		mask := map[uint64]uint32{}
		apply := func(p *Pending) {
			if p == nil {
				return
			}
			line := want[p.Key]
			for i := 0; i < LineSize; i++ {
				if p.Mask&(1<<uint(i)) != 0 {
					line[i] = p.Data[i]
				}
			}
			want[p.Key] = line
			mask[p.Key] |= p.Mask
		}
		shadow := map[uint64][LineSize]byte{}
		shadowMask := map[uint64]uint32{}
		for _, op := range ops {
			key := uint64(op.Key % 4)
			off := int(op.Off) % LineSize
			apply(w.Write(key, off, []byte{op.Val}))
			line := shadow[key]
			line[off] = op.Val
			shadow[key] = line
			shadowMask[key] |= 1 << uint(off)
		}
		apply(w.Flush())
		for key, m := range shadowMask {
			if mask[key] != m {
				return false
			}
			wantLine, gotLine := shadow[key], want[key]
			for i := 0; i < LineSize; i++ {
				if m&(1<<uint(i)) != 0 && wantLine[i] != gotLine[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
