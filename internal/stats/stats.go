// Package stats provides the small statistics helpers the benchmark
// harness uses: throughput series, summary statistics and fixed-width
// table rendering for terminal output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a measurement series, e.g. (message
// size, MB/s).
type Point struct {
	X float64
	Y float64
}

// Series is a named measurement curve.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Max returns the maximum Y value (0 for an empty series).
func (s *Series) Max() float64 {
	max := 0.0
	for _, p := range s.Points {
		if p.Y > max {
			max = p.Y
		}
	}
	return max
}

// At returns the Y value at the given X, or false if absent.
func (s *Series) At(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Summary holds order statistics of a sample set — the shape benchmark
// reporting needs (min/median/p99/max) without ad-hoc math at the call
// sites.
type Summary struct {
	N              int
	Min, Max, Mean float64
	Median         float64
	P99            float64
	StdDev         float64
}

// Summarize computes summary statistics.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	varSum := 0.0
	for _, x := range sorted {
		d := x - mean
		varSum += d * d
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Median: quantileSorted(sorted, 0.5),
		P99:    quantileSorted(sorted, 0.99),
		StdDev: math.Sqrt(varSum / float64(len(sorted))),
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the samples,
// linearly interpolating between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted computes an interpolated quantile over an already
// sorted sample set.
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Table renders aligned columns for terminal output. The first row is
// the header.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// RenderSeries draws one or more curves as an ASCII chart with a
// logarithmic X axis — the shape of the paper's Fig. 6 plots.
func RenderSeries(title, xlabel, ylabel string, series []Series, width, height int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxY := 0.0
	for _, s := range series {
		if m := s.Max(); m > maxY {
			maxY = m
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	minX, maxX := math.Inf(1), 0.0
	for _, s := range series {
		for _, p := range s.Points {
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
		}
	}
	if minX <= 0 || math.IsInf(minX, 1) {
		minX = 1
	}
	if maxX <= minX {
		maxX = minX * 2
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	lx := func(x float64) int {
		f := (math.Log2(x) - math.Log2(minX)) / (math.Log2(maxX) - math.Log2(minX))
		c := int(f * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	for si, s := range series {
		glyph := byte('a' + si)
		for _, p := range s.Points {
			row := height - 1 - int(p.Y/maxY*float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][lx(p.X)] = glyph
		}
	}
	fmt.Fprintf(&b, "%8.1f +%s\n", maxY, strings.Repeat("-", width))
	for _, row := range grid {
		fmt.Fprintf(&b, "%8s |%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%8.1f +%s\n", 0.0, strings.Repeat("-", width))
	fmt.Fprintf(&b, "          %s (log) -> ; y: %s\n", xlabel, ylabel)
	for si, s := range series {
		fmt.Fprintf(&b, "          %c = %s\n", byte('a'+si), s.Name)
	}
	return b.String()
}
