package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAddMaxAt(t *testing.T) {
	var s Series
	s.Add(32, 10)
	s.Add(64, 25)
	s.Add(128, 15)
	if s.Max() != 25 {
		t.Errorf("max = %v", s.Max())
	}
	if v, ok := s.At(64); !ok || v != 25 {
		t.Errorf("At(64) = %v,%v", v, ok)
	}
	if _, ok := s.At(999); ok {
		t.Error("At on missing x succeeded")
	}
	var empty Series
	if empty.Max() != 0 {
		t.Error("empty max != 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 2.5 || s.Median != 2.5 {
		t.Errorf("mean/median = %v/%v", s.Mean, s.Median)
	}
	if math.Abs(s.StdDev-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %v", odd.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary not zero")
	}
}

func TestQuantile(t *testing.T) {
	// 1..100: quantiles interpolate over the order statistics.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.99, 99.01}, {-1, 1}, {2, 100},
	} {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(1..100, %v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile != 0")
	}
	if Quantile([]float64{7}, 0.99) != 7 {
		t.Error("single-sample quantile != the sample")
	}
	s := Summarize(xs)
	if s.P99 != Quantile(xs, 0.99) {
		t.Errorf("Summary.P99 = %v, want %v", s.P99, Quantile(xs, 0.99))
	}
	if s.Min > s.Median || s.Median > s.P99 || s.P99 > s.Max {
		t.Errorf("order statistics out of order: %+v", s)
	}
}

func TestTable(t *testing.T) {
	out := Table([][]string{{"size", "MB/s"}, {"32", "1.5"}, {"65536", "27.0"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Error("missing header rule")
	}
	if !strings.Contains(lines[3], "65536") || !strings.Contains(lines[3], "27.0") {
		t.Error("row content missing")
	}
	if Table(nil) != "" {
		t.Error("empty table should render empty")
	}
}

func TestRenderSeries(t *testing.T) {
	a := Series{Name: "rcce"}
	b := Series{Name: "ircce"}
	for x := 32.0; x <= 1024; x *= 2 {
		a.Add(x, x/10)
		b.Add(x, x/5)
	}
	out := RenderSeries("Fig 6a", "message size [B]", "MB/s", []Series{a, b}, 40, 10)
	if !strings.Contains(out, "a = rcce") || !strings.Contains(out, "b = ircce") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "Fig 6a") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Error("glyphs missing")
	}
}

// Property: Summarize bounds hold: min <= median <= max and min <= mean
// <= max.
func TestPropertySummaryBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
