package sim

import (
	"errors"
	"testing"
)

// TestKillWakesParkedProcess: a process parked forever unwinds with the
// kill error at the kill cycle, and the run completes without treating
// the unwound body as a kernel panic.
func TestKillWakesParkedProcess(t *testing.T) {
	k := NewKernel()
	errKill := errors.New("abort")
	var got error
	var at Cycles
	p := k.Spawn("victim", func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				got = r.(error)
				at = p.Now()
			}
		}()
		p.Park("forever")
		t.Error("victim resumed past its park")
	})
	k.At(100, func() { p.Kill(errKill) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != errKill {
		t.Fatalf("recovered %v, want %v", got, errKill)
	}
	if at != 100 {
		t.Errorf("killed at cycle %d, want 100", at)
	}
}

// TestKillWithoutRecoverIsNotAKernelPanic: a body with no recover of its
// own unwinds cleanly; Run reports neither a panic nor a deadlock.
func TestKillWithoutRecoverIsNotAKernelPanic(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("victim", func(p *Proc) {
		p.Park("forever")
	})
	k.At(10, func() { p.Kill(errors.New("abort")) })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestKillDelayedProcess: a pending kill is delivered when a Delay
// expires, including across the inline continuation fast path.
func TestKillDelayedProcess(t *testing.T) {
	k := NewKernel()
	errKill := errors.New("abort")
	var got error
	p := k.Spawn("victim", func(p *Proc) {
		defer func() { got, _ = recover().(error) }()
		for {
			p.Delay(7)
		}
	})
	k.At(100, func() { p.Kill(errKill) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != errKill {
		t.Fatalf("recovered %v, want %v", got, errKill)
	}
}

// TestKillCondWaiterLeavesStaleSlotSafe: killing a process parked on a
// Cond leaves its waiter slot behind; later Signal and Broadcast calls
// must skip the stale slot (not unpark a non-blocked process) and still
// deliver the wakeup to a live waiter.
func TestKillCondWaiterLeavesStaleSlotSafe(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "c")
	var lateWoken bool
	k.Spawn("victim", func(p *Proc) {
		c.Wait(p)
		t.Error("victim woke instead of dying")
	})
	k.Spawn("late", func(p *Proc) {
		p.Delay(50) // parks on c after the kill below
		c.Wait(p)
		lateWoken = true
	})
	k.Spawn("killer", func(p *Proc) {
		p.Delay(10)
		for _, q := range k.procs {
			if q.name == "victim" {
				q.Kill(errors.New("abort"))
			}
		}
		p.Delay(100)
		c.Signal() // must skip the victim's stale slot
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !lateWoken {
		t.Error("late waiter never received the signal")
	}
}

// TestKillCondWaiterTimeoutSkipsStaleSlot: an armed Timeout whose waiter
// was killed before the deadline must not unpark the dead process.
func TestKillCondWaiterTimeoutSkipsStaleSlot(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "c")
	var p *Proc
	p = k.Spawn("victim", func(p *Proc) {
		to := c.ArmTimeout(1000)
		defer to.Cancel()
		c.WaitOrTimeout(p, to)
		t.Error("victim woke instead of dying")
	})
	k.At(10, func() { p.Kill(errors.New("abort")) })
	if err := k.RunFor(5000); err != nil {
		t.Fatal(err)
	}
}

// TestKillBeforeFirstDispatch: killing a spawned-but-not-started process
// aborts it without running its body.
func TestKillBeforeFirstDispatch(t *testing.T) {
	k := NewKernel()
	ran := false
	p := k.SpawnAt(100, "victim", func(p *Proc) { ran = true })
	k.At(0, func() { p.Kill(errors.New("abort")) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("killed process body ran")
	}
}

// TestKillFinishedProcessIsNoop and double-kill keeps the first error.
func TestKillIdempotence(t *testing.T) {
	k := NewKernel()
	err1, err2 := errors.New("first"), errors.New("second")
	var got error
	p := k.Spawn("victim", func(p *Proc) {
		defer func() { got, _ = recover().(error) }()
		p.Park("forever")
	})
	k.At(10, func() { p.Kill(err1); p.Kill(err2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != err1 {
		t.Fatalf("recovered %v, want the first kill error", got)
	}
	p.Kill(err2) // after procDone: must be a no-op
}
