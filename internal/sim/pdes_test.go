package sim

import (
	"fmt"
	"strings"
	"testing"
)

// pdesTrace records one kernel's observable history: every message
// receipt with its timestamp and payload, in dispatch order. Two runs
// are considered identical when every kernel's trace matches.
type pdesTrace struct {
	lines []string
}

func (t *pdesTrace) log(format string, args ...any) {
	t.lines = append(t.lines, fmt.Sprintf(format, args...))
}

// runPDESMesh builds nk kernels with one process each. Every process
// performs rounds of local delays and posts messages to a peer chosen
// by a deterministic LCG, with arrival exactly at the lookahead bound
// (the tightest legal schedule). It returns the per-kernel traces and
// final clocks.
func runPDESMesh(t *testing.T, nk, workers, rounds int, la Cycles) ([]pdesTrace, []Cycles) {
	t.Helper()
	pd := NewPDES(nk, la)
	traces := make([]pdesTrace, nk)
	for i := 0; i < nk; i++ {
		i := i
		k := pd.Kernel(i)
		k.Spawn(fmt.Sprintf("node%d", i), func(p *Proc) {
			rng := uint64(i)*2654435761 + 12345
			for r := 0; r < rounds; r++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				p.Delay(Cycles(rng%97) + 1)
				dst := int(rng>>33) % nk
				at := p.Now() + la + Cycles(rng%13)
				r, rng := r, rng
				pd.Post(i, at, dst, func() {
					traces[dst].log("recv at=%d from=%d round=%d tag=%x", pd.Kernel(dst).Now(), i, r, rng&0xffff)
				})
			}
		})
	}
	if err := pd.Run(workers); err != nil {
		t.Fatalf("pdes run (workers=%d): %v", workers, err)
	}
	clocks := make([]Cycles, nk)
	for i := range clocks {
		clocks[i] = pd.Kernel(i).Now()
	}
	return traces, clocks
}

// TestPDESWorkerCountInvariance is the engine-level identity gate: the
// observable history of every kernel must be byte-identical no matter
// how many workers drive the windows.
func TestPDESWorkerCountInvariance(t *testing.T) {
	const nk, rounds = 6, 200
	ref, refClocks := runPDESMesh(t, nk, 1, rounds, 50)
	for _, workers := range []int{2, 4, 8} {
		got, clocks := runPDESMesh(t, nk, workers, rounds, 50)
		for i := range ref {
			a := strings.Join(ref[i].lines, "\n")
			b := strings.Join(got[i].lines, "\n")
			if a != b {
				t.Fatalf("workers=%d kernel %d trace diverged from serial:\nserial:\n%s\nparallel:\n%s", workers, i, a, b)
			}
		}
		for i := range refClocks {
			if clocks[i] != refClocks[i] {
				t.Fatalf("workers=%d kernel %d clock %d != serial %d", workers, i, clocks[i], refClocks[i])
			}
		}
	}
}

// TestPDESLookaheadViolationPanics checks the conservative guarantee is
// enforced, not assumed.
func TestPDESLookaheadViolationPanics(t *testing.T) {
	pd := NewPDES(2, 100)
	pd.Kernel(0).Spawn("violator", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Post below the lookahead bound did not panic")
			}
		}()
		pd.Post(0, p.Now()+99, 1, func() {})
	})
	if err := pd.Run(1); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestPDESIdleKernelJumps: a kernel with no events must not stall the
// window progression — its clock follows the barrier.
func TestPDESIdleKernelJumps(t *testing.T) {
	pd := NewPDES(3, 10)
	done := Cycles(0)
	pd.Kernel(0).Spawn("worker", func(p *Proc) {
		p.Delay(1234)
		done = p.Now()
	})
	if err := pd.Run(2); err != nil {
		t.Fatalf("run: %v", err)
	}
	if done != 1234 {
		t.Fatalf("worker finished at %d, want 1234", done)
	}
	// Idle kernels were dragged along by the barriers.
	for i := 1; i < 3; i++ {
		if pd.Kernel(i).Now() == 0 {
			t.Fatalf("idle kernel %d never advanced", i)
		}
	}
}

// TestPDESCrossKernelOrderIsCanonical: two senders posting to the same
// destination at the same arrival cycle must deliver in kernel-id
// order regardless of which worker ran first.
func TestPDESCrossKernelOrderIsCanonical(t *testing.T) {
	for _, workers := range []int{1, 3} {
		pd := NewPDES(3, 10)
		var got []int
		for src := range []int{0, 1} {
			src := src
			pd.Kernel(src).Spawn("sender", func(p *Proc) {
				pd.Post(src, p.Now()+10, 2, func() { got = append(got, src) })
				pd.Post(src, p.Now()+10, 2, func() { got = append(got, 10+src) })
			})
		}
		if err := pd.Run(workers); err != nil {
			t.Fatalf("run: %v", err)
		}
		want := fmt.Sprint([]int{0, 10, 1, 11})
		if fmt.Sprint(got) != want {
			t.Fatalf("workers=%d delivery order %v, want %s", workers, got, want)
		}
	}
}

// TestPDESDeadlockAggregation: a blocked process on any kernel turns
// into an aggregated deadlock report naming its kernel.
func TestPDESDeadlockAggregation(t *testing.T) {
	pd := NewPDES(2, 10)
	c := NewCond(pd.Kernel(1), "never")
	pd.Kernel(1).Spawn("stuck", func(p *Proc) { c.Wait(p) })
	err := pd.Run(2)
	if err == nil {
		t.Fatal("expected a deadlock error")
	}
	if !strings.Contains(err.Error(), "kernel 1") || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("deadlock report %q does not name the kernel and process", err)
	}
}

// TestPDESDaemonsDoNotDeadlock mirrors the single-kernel daemon
// semantics: blocked daemons never hold the run open.
func TestPDESDaemonsDoNotDeadlock(t *testing.T) {
	pd := NewPDES(2, 10)
	c := NewCond(pd.Kernel(0), "svc")
	pd.Kernel(0).SpawnDaemon("svc", func(p *Proc) { c.Wait(p) })
	pd.Kernel(1).Spawn("work", func(p *Proc) { p.Delay(5) })
	if err := pd.Run(2); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// BenchmarkPDESThroughput measures cross-kernel event throughput of the
// barrier-window engine at 1/2/4 workers over 4 kernels. On a 1-CPU
// host the worker counts should be neutral (the harness serializes);
// scaling shows on multi-core hosts. Recorded in BENCH_kernel.json
// under "pdes".
func BenchmarkPDESThroughput(b *testing.B) {
	const nk = 4
	const la = Cycles(100)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			pd := NewPDES(nk, la)
			for i := 0; i < nk; i++ {
				i := i
				pd.Kernel(i).Spawn(fmt.Sprintf("node%d", i), func(p *Proc) {
					for r := 0; r < b.N; r++ {
						// Local work between barriers, then one cross post —
						// the fabric-dominated mix PDES is built for.
						for j := 0; j < 8; j++ {
							p.Delay(10)
						}
						pd.Post(i, p.Now()+la, (i+1)%nk, func() {})
					}
				})
			}
			b.ResetTimer()
			if err := pd.Run(workers); err != nil {
				b.Fatal(err)
			}
			events := float64(pd.Events())
			b.ReportMetric(events/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(pd.Windows()), "windows")
		})
	}
}
