package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Span is one labelled interval on a Timeline, attributed to an actor
// (for example "sender", "receiver", "commtask").
type Span struct {
	Actor string
	Label string
	From  Cycles
	To    Cycles
}

// Timeline records labelled spans of simulated time. The vSCC harness uses
// it to regenerate the paper's Figure 2 style protocol diagrams and the
// tests use it to assert protocol ordering (for example, that a pipelined
// transfer interleaves put and get phases).
type Timeline struct {
	k     *Kernel
	spans []Span
}

// NewTimeline returns an empty timeline bound to kernel k.
func NewTimeline(k *Kernel) *Timeline { return &Timeline{k: k} }

// Record adds a completed span.
func (t *Timeline) Record(actor, label string, from, to Cycles) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Actor: actor, Label: label, From: from, To: to})
}

// Mark adds a zero-length span at the current time.
func (t *Timeline) Mark(actor, label string) {
	if t == nil {
		return
	}
	now := t.k.Now()
	t.spans = append(t.spans, Span{Actor: actor, Label: label, From: now, To: now})
}

// Spans returns all recorded spans ordered by start time, then actor.
func (t *Timeline) Spans() []Span {
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Actor < out[j].Actor
	})
	return out
}

// Overlap reports whether any span with label a overlaps in time with any
// span with label b — used to verify pipelining (interleaved put/get).
func (t *Timeline) Overlap(a, b string) bool {
	for _, x := range t.spans {
		if x.Label != a {
			continue
		}
		for _, y := range t.spans {
			if y.Label != b {
				continue
			}
			if x.From < y.To && y.From < x.To {
				return true
			}
		}
	}
	return false
}

// Render draws the timeline as fixed-width text, one row per actor, with
// time flowing left to right — an ASCII rendition of the paper's Fig. 2.
func (t *Timeline) Render(width int) string {
	spans := t.Spans()
	if len(spans) == 0 {
		return "(empty timeline)\n"
	}
	var min, max Cycles = spans[0].From, 0
	actors := []string{}
	seen := map[string]bool{}
	for _, s := range spans {
		if s.From < min {
			min = s.From
		}
		if s.To > max {
			max = s.To
		}
		if !seen[s.Actor] {
			seen[s.Actor] = true
			actors = append(actors, s.Actor)
		}
	}
	if max == min {
		max = min + 1
	}
	scale := float64(width) / float64(max-min)
	var b strings.Builder
	fmt.Fprintf(&b, "timeline %d..%d cycles (1 col = %.0f cycles)\n", min, max, 1/scale)
	for _, actor := range actors {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, s := range spans {
			if s.Actor != actor {
				continue
			}
			from := int(float64(s.From-min) * scale)
			to := int(float64(s.To-min) * scale)
			if to >= width {
				to = width - 1
			}
			ch := byte('=')
			if len(s.Label) > 0 {
				ch = s.Label[0]
			}
			if from == to {
				row[from] = '|'
				continue
			}
			for i := from; i <= to; i++ {
				row[i] = ch
			}
		}
		fmt.Fprintf(&b, "%-10s |%s|\n", actor, string(row))
	}
	b.WriteString("legend: first letter of span label; '|' = instant event\n")
	return b.String()
}
