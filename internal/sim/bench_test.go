package sim

import (
	"testing"
)

// BenchmarkKernelEventThroughput measures the kernel's raw event
// dispatch rate — the equivalent of a training-step time for this
// repository, since every figure is millions of these events. ns/op is
// the cost of one event; allocs/op is the per-event allocation count
// the hot path pays.
//
//	go test ./internal/sim -bench=KernelEventThroughput -benchmem
func BenchmarkKernelEventThroughput(b *testing.B) {
	// callback-chain: each callback schedules the next one cycle later.
	// Exercises one heap push + one heap pop per event with a queue depth
	// of one — the pure queue-machinery cost.
	b.Run("callback-chain", func(b *testing.B) {
		k := NewKernel()
		n := 0
		var step func()
		step = func() {
			n++
			if n < b.N {
				k.After(1, step)
			}
		}
		k.After(1, step)
		b.ReportAllocs()
		b.ResetTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		reportEventsPerSec(b)
	})

	// same-cycle-chain: each callback schedules the next at the *current*
	// cycle. This is the pattern condition-variable wakeup cascades and
	// zero-latency forwarding hops produce; a same-cycle fast path can
	// dispatch it without touching the heap at all.
	b.Run("same-cycle-chain", func(b *testing.B) {
		k := NewKernel()
		n := 0
		var step func()
		step = func() {
			n++
			if n < b.N {
				k.After(0, step)
			}
		}
		k.After(1, step)
		b.ReportAllocs()
		b.ResetTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		reportEventsPerSec(b)
	})

	// deep-queue: N pre-scheduled callbacks at distinct times, then one
	// drain. Exercises heap behaviour at realistic queue depths (sift
	// costs are logarithmic in this depth).
	b.Run("deep-queue-1024", func(b *testing.B) {
		const depth = 1024
		k := NewKernel()
		n := 0
		var refill func()
		refill = func() {
			n++
			if n < b.N {
				k.After(Cycles(1+n%depth), refill)
			}
		}
		for i := 0; i < depth && i < b.N; i++ {
			k.After(Cycles(1+i), refill)
			n++
		}
		b.ReportAllocs()
		b.ResetTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		reportEventsPerSec(b)
	})

	// process-delay: a single process advancing the clock b.N times.
	// Exercises the yield/resume goroutine handshake plus the queue.
	b.Run("process-delay", func(b *testing.B) {
		k := NewKernel()
		k.Spawn("p", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Delay(1)
			}
		})
		b.ReportAllocs()
		b.ResetTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		reportEventsPerSec(b)
	})

	// cond-pingpong: two processes alternating through condition
	// variables — the shape of every blocking protocol in the model.
	b.Run("cond-pingpong", func(b *testing.B) {
		k := NewKernel()
		ping := NewCond(k, "ping")
		pong := NewCond(k, "pong")
		turn := 0
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				for turn != 0 {
					ping.Wait(p)
				}
				turn = 1
				pong.Signal()
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				for turn != 1 {
					pong.Wait(p)
				}
				turn = 0
				ping.Signal()
			}
		})
		b.ReportAllocs()
		b.ResetTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		reportEventsPerSec(b)
	})
}

func reportEventsPerSec(b *testing.B) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "events/s")
	}
}
