package sim

import (
	"strings"
	"testing"
)

func TestDaemonDoesNotDeadlockRun(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "work")
	served := 0
	k.SpawnDaemon("server", func(p *Proc) {
		for {
			q.Pop(p)
			served++
		}
	})
	k.Spawn("client", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Delay(10)
			q.Push(i)
		}
		p.Delay(10)
	})
	// The daemon stays blocked on the empty queue at the end; Run must
	// still return cleanly.
	if err := k.Run(); err != nil {
		t.Fatalf("daemon counted as deadlock: %v", err)
	}
	if served != 5 {
		t.Errorf("served = %d, want 5", served)
	}
}

func TestDaemonDoesNotMaskRealDeadlock(t *testing.T) {
	k := NewKernel()
	k.SpawnDaemon("idle", func(p *Proc) {
		NewCond(k, "never").Wait(p)
	})
	c := NewCond(k, "stuck")
	k.Spawn("victim", func(p *Proc) { c.Wait(p) })
	err := k.Run()
	if err == nil {
		t.Fatal("real deadlock not reported")
	}
	if !strings.Contains(err.Error(), "victim") {
		t.Errorf("report %q does not name the victim", err)
	}
	if strings.Contains(err.Error(), "idle") {
		t.Errorf("report %q names the daemon", err)
	}
}

func TestDaemonTerminationIsClean(t *testing.T) {
	k := NewKernel()
	ran := false
	k.SpawnDaemon("oneshot", func(p *Proc) {
		p.Delay(5)
		ran = true
	})
	k.Spawn("main", func(p *Proc) { p.Delay(100) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("daemon body never ran")
	}
}

func TestSemaphoreZeroInitial(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore(k, "s", 0)
	var acquired bool
	k.Spawn("waiter", func(p *Proc) {
		s.Acquire(p)
		acquired = true
	})
	k.Spawn("releaser", func(p *Proc) {
		p.Delay(100)
		s.Release()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !acquired {
		t.Error("acquire after release failed")
	}
}

func TestRunForAdvancesIdleTime(t *testing.T) {
	k := NewKernel()
	if err := k.RunFor(500); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 500 {
		t.Errorf("idle RunFor left clock at %d, want 500", k.Now())
	}
}
