package sim

import "testing"

// Events counts every dispatch — callbacks, same-cycle chains and
// process resumptions — so the observability layer can report kernel
// work alongside simulated time.
func TestKernelEventsCounter(t *testing.T) {
	k := NewKernel()
	if k.Events() != 0 {
		t.Fatalf("fresh kernel events = %d", k.Events())
	}
	for i := 0; i < 3; i++ {
		k.After(Cycles(i+1), func() {})
	}
	// A same-cycle event exercises the bucket fast path.
	k.After(1, func() { k.After(0, func() {}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := k.Events(); got != 5 {
		t.Errorf("events = %d, want 5 (4 timed + 1 same-cycle)", got)
	}

	// Process delays dispatch through the same path.
	k2 := NewKernel()
	k2.Spawn("p", func(p *Proc) {
		p.Delay(1)
		p.Delay(1)
	})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if k2.Events() == 0 {
		t.Error("process dispatches not counted")
	}
}
