package sim

import "testing"

func TestWaitOrTimeoutExpires(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "flag")
	var ok bool
	var woke Cycles
	k.Spawn("waiter", func(p *Proc) {
		to := c.ArmTimeout(100)
		ok = c.WaitOrTimeout(p, to)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("wait reported success, want timeout")
	}
	if woke != 100 {
		t.Errorf("woke at cycle %d, want 100", woke)
	}
}

func TestWaitOrTimeoutSignalledInTime(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "flag")
	var ok bool
	var woke Cycles
	k.Spawn("waiter", func(p *Proc) {
		to := c.ArmTimeout(100)
		ok = c.WaitOrTimeout(p, to)
		to.Cancel()
		woke = p.Now()
	})
	k.After(40, c.Signal)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("wait reported timeout, want success")
	}
	if woke != 40 {
		t.Errorf("woke at cycle %d, want 40", woke)
	}
}

// One token spans a whole engaged-wait session: intermediate signalled
// waits succeed, and only the final park times out when the deadline
// passes.
func TestTimeoutSpansMultipleWaits(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "flag")
	var results []bool
	k.Spawn("waiter", func(p *Proc) {
		to := c.ArmTimeout(100)
		for i := 0; i < 3; i++ {
			results = append(results, c.WaitOrTimeout(p, to))
		}
	})
	k.After(10, c.Signal)
	k.After(20, c.Signal)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false}
	if len(results) != len(want) {
		t.Fatalf("got %d waits, want %d", len(results), len(want))
	}
	for i := range want {
		if results[i] != want[i] {
			t.Errorf("wait %d = %v, want %v", i, results[i], want[i])
		}
	}
}

// A cancelled token never fires, even though its kernel event still
// dispatches, and an expired token refuses to park at all.
func TestTimeoutCancelAndReuseAfterFire(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "flag")
	var cancelledFired, expiredWaited bool
	var wokeAt Cycles
	k.Spawn("waiter", func(p *Proc) {
		to := c.ArmTimeout(10)
		to.Cancel()
		p.Delay(50)
		cancelledFired = to.Fired()

		exp := c.ArmTimeout(5)
		p.Delay(20) // expire while runnable
		expiredWaited = c.WaitOrTimeout(p, exp)
		wokeAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if cancelledFired {
		t.Error("cancelled timeout reports fired")
	}
	if expiredWaited {
		t.Error("expired token parked and reported success")
	}
	if wokeAt != 70 {
		t.Errorf("expired-token wait returned at cycle %d, want 70 (no park)", wokeAt)
	}
}

// A timeout pulls its waiter out of the middle of the FIFO without
// disturbing its neighbours: Signal skips the vacated slot.
func TestTimeoutRemovesMidQueueWaiter(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "flag")
	var order []string
	wait := func(name string, to *Timeout) func(*Proc) {
		return func(p *Proc) {
			c.WaitOrTimeout(p, to)
			order = append(order, name)
		}
	}
	k.Spawn("a", wait("a", nil))
	k.Spawn("b", func(p *Proc) {
		to := c.ArmTimeout(10)
		c.WaitOrTimeout(p, to)
		order = append(order, "b")
	})
	k.Spawn("c", wait("c", nil))
	k.After(50, c.Signal) // wakes a (b already gone)
	k.After(60, c.Signal) // wakes c
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "b a c"
	got := ""
	for i, s := range order {
		if i > 0 {
			got += " "
		}
		got += s
	}
	if got != want {
		t.Errorf("wake order %q, want %q", got, want)
	}
}

// A signal and the deadline landing on the same cycle must wake the
// waiter exactly once, deterministically — in either scheduling order.
// The contract (see WaitOrTimeout) is that the return value may be
// false even though the signal arrived, so callers re-check their
// predicate; what may never happen is a double wakeup or a
// scheduling-order-dependent outcome.
func TestWaitOrTimeoutSameCycleSignalVsTimeout(t *testing.T) {
	run := func(signalFirst bool) (wakeups int, ok bool, woke Cycles) {
		k := NewKernel()
		c := NewCond(k, "flag")
		if signalFirst {
			k.After(100, c.Broadcast)
		}
		k.Spawn("waiter", func(p *Proc) {
			to := c.ArmTimeout(100)
			ok = c.WaitOrTimeout(p, to)
			wakeups++
			woke = p.Now()
		})
		if !signalFirst {
			k.After(100, c.Broadcast)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return wakeups, ok, woke
	}
	for _, signalFirst := range []bool{true, false} {
		wakeups, ok, woke := run(signalFirst)
		if wakeups != 1 {
			t.Errorf("signalFirst=%v: %d wakeups, want exactly 1", signalFirst, wakeups)
		}
		if ok {
			t.Errorf("signalFirst=%v: same-cycle race reported success, want deterministic timeout", signalFirst)
		}
		if woke != 100 {
			t.Errorf("signalFirst=%v: woke at cycle %d, want 100", signalFirst, woke)
		}
	}
}

// A same-cycle timeout expiry must not eat a Signal meant for a
// tokenless neighbour: the vacated slot is skipped and the neighbour
// still wakes.
func TestTimeoutSameCycleDoesNotStealSignal(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "flag")
	var timedOut, neighbourOK bool
	var neighbourAt Cycles
	k.Spawn("timed", func(p *Proc) {
		to := c.ArmTimeout(100)
		timedOut = !c.WaitOrTimeout(p, to)
	})
	k.Spawn("plain", func(p *Proc) {
		c.Wait(p)
		neighbourOK = true
		neighbourAt = p.Now()
	})
	// Spawned after "timed", so this signal is scheduled behind the
	// timeout event and lands on the same cycle, just after the expiry
	// has vacated the tokened waiter's slot.
	k.Spawn("signaller", func(p *Proc) {
		p.Delay(100)
		c.Signal()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Error("tokened waiter did not time out")
	}
	if !neighbourOK {
		t.Fatal("signal was lost to the expiring timeout's vacated slot")
	}
	if neighbourAt != 100 {
		t.Errorf("neighbour woke at cycle %d, want 100", neighbourAt)
	}
}

// Cancelling an event that already fired is a no-op: the callback ran
// exactly once, repeated cancels stay harmless, and no stale
// cancellation mark lingers to tax the dispatch fast path.
func TestAfterCancelOfFiredEvent(t *testing.T) {
	k := NewKernel()
	fires := 0
	cancel := k.AfterCancel(10, func() { fires++ })
	done := false
	k.Spawn("driver", func(p *Proc) {
		p.Delay(50) // the event fires at cycle 10
		cancel()
		cancel() // idempotent
		p.Delay(50)
		done = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Errorf("callback ran %d times, want 1", fires)
	}
	if !done {
		t.Error("driver did not complete")
	}
	if k.nCancelled != 0 {
		t.Errorf("cancel of a fired event left %d stale cancellation mark(s)", k.nCancelled)
	}
	// A cancel before the deadline still suppresses the event entirely.
	fires2 := 0
	cancel2 := k.AfterCancel(10, func() { fires2++ })
	cancel2()
	k.Spawn("driver2", func(p *Proc) { p.Delay(100) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fires2 != 0 {
		t.Errorf("cancelled event fired %d times, want 0", fires2)
	}
	if k.nCancelled != 0 {
		t.Errorf("consumed cancellation left %d mark(s)", k.nCancelled)
	}
}

func TestNilTimeoutHelpers(t *testing.T) {
	var to *Timeout
	if to.Fired() {
		t.Error("nil timeout reports fired")
	}
	to.Cancel() // must not panic
}
