package sim

import "testing"

func TestWaitOrTimeoutExpires(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "flag")
	var ok bool
	var woke Cycles
	k.Spawn("waiter", func(p *Proc) {
		to := c.ArmTimeout(100)
		ok = c.WaitOrTimeout(p, to)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("wait reported success, want timeout")
	}
	if woke != 100 {
		t.Errorf("woke at cycle %d, want 100", woke)
	}
}

func TestWaitOrTimeoutSignalledInTime(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "flag")
	var ok bool
	var woke Cycles
	k.Spawn("waiter", func(p *Proc) {
		to := c.ArmTimeout(100)
		ok = c.WaitOrTimeout(p, to)
		to.Cancel()
		woke = p.Now()
	})
	k.After(40, c.Signal)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("wait reported timeout, want success")
	}
	if woke != 40 {
		t.Errorf("woke at cycle %d, want 40", woke)
	}
}

// One token spans a whole engaged-wait session: intermediate signalled
// waits succeed, and only the final park times out when the deadline
// passes.
func TestTimeoutSpansMultipleWaits(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "flag")
	var results []bool
	k.Spawn("waiter", func(p *Proc) {
		to := c.ArmTimeout(100)
		for i := 0; i < 3; i++ {
			results = append(results, c.WaitOrTimeout(p, to))
		}
	})
	k.After(10, c.Signal)
	k.After(20, c.Signal)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false}
	if len(results) != len(want) {
		t.Fatalf("got %d waits, want %d", len(results), len(want))
	}
	for i := range want {
		if results[i] != want[i] {
			t.Errorf("wait %d = %v, want %v", i, results[i], want[i])
		}
	}
}

// A cancelled token never fires, even though its kernel event still
// dispatches, and an expired token refuses to park at all.
func TestTimeoutCancelAndReuseAfterFire(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "flag")
	var cancelledFired, expiredWaited bool
	var wokeAt Cycles
	k.Spawn("waiter", func(p *Proc) {
		to := c.ArmTimeout(10)
		to.Cancel()
		p.Delay(50)
		cancelledFired = to.Fired()

		exp := c.ArmTimeout(5)
		p.Delay(20) // expire while runnable
		expiredWaited = c.WaitOrTimeout(p, exp)
		wokeAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if cancelledFired {
		t.Error("cancelled timeout reports fired")
	}
	if expiredWaited {
		t.Error("expired token parked and reported success")
	}
	if wokeAt != 70 {
		t.Errorf("expired-token wait returned at cycle %d, want 70 (no park)", wokeAt)
	}
}

// A timeout pulls its waiter out of the middle of the FIFO without
// disturbing its neighbours: Signal skips the vacated slot.
func TestTimeoutRemovesMidQueueWaiter(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "flag")
	var order []string
	wait := func(name string, to *Timeout) func(*Proc) {
		return func(p *Proc) {
			c.WaitOrTimeout(p, to)
			order = append(order, name)
		}
	}
	k.Spawn("a", wait("a", nil))
	k.Spawn("b", func(p *Proc) {
		to := c.ArmTimeout(10)
		c.WaitOrTimeout(p, to)
		order = append(order, "b")
	})
	k.Spawn("c", wait("c", nil))
	k.After(50, c.Signal) // wakes a (b already gone)
	k.After(60, c.Signal) // wakes c
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "b a c"
	got := ""
	for i, s := range order {
		if i > 0 {
			got += " "
		}
		got += s
	}
	if got != want {
		t.Errorf("wake order %q, want %q", got, want)
	}
}

func TestNilTimeoutHelpers(t *testing.T) {
	var to *Timeout
	if to.Fired() {
		t.Error("nil timeout reports fired")
	}
	to.Cancel() // must not panic
}
