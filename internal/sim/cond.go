package sim

// Cond is a condition variable in simulated time. Processes block on it
// with Wait; other processes or callbacks wake them with Signal or
// Broadcast. Wakeups take effect at the current simulated instant and are
// delivered in FIFO order, preserving determinism.
type Cond struct {
	k      *Kernel
	name   string
	reason string // "cond <name>", built once — Wait is a hot path

	// waiters[head:] are the blocked processes in FIFO order. Dequeuing
	// advances head instead of reslicing from the front, so the backing
	// array is reused once drained rather than reallocated every
	// wait/signal cycle. A slot with a nil proc was consumed out of FIFO
	// order by an expiring Timeout and is skipped.
	waiters []condWaiter
	head    int
}

// condWaiter is one parked process, plus the timeout token (if any) that
// may cancel the wait.
type condWaiter struct {
	p  *Proc
	to *Timeout
}

// NewCond returns a condition variable owned by kernel k. The name is used
// in deadlock reports.
func NewCond(k *Kernel, name string) *Cond {
	return &Cond{k: k, name: name, reason: "cond " + name}
}

// Wait blocks the calling process until the condition is signalled.
func (c *Cond) Wait(p *Proc) {
	if c.head == len(c.waiters) {
		c.waiters = c.waiters[:0]
		c.head = 0
	}
	c.waiters = append(c.waiters, condWaiter{p: p})
	p.park(c.reason)
}

// Timeout is an armed deadline bound to one condition variable. It is a
// single kernel event shared across any number of WaitOrTimeout calls,
// so one token bounds a whole engaged-wait session (poll, wait, poll,
// wait, ...) rather than a single park. All methods are nil-safe on a
// nil receiver, which stands for "no deadline".
type Timeout struct {
	c      *Cond
	fired  bool
	done   bool
	cancel func()
}

// ArmTimeout schedules a deadline d cycles from now. If the deadline
// expires while a process is parked on c under this token, that process
// is woken out of FIFO order; WaitOrTimeout then reports false.
func (c *Cond) ArmTimeout(d Cycles) *Timeout {
	t := &Timeout{c: c}
	t.cancel = c.k.AfterCancel(d, func() {
		if t.done || t.fired {
			return
		}
		t.fired = true
		for i := c.head; i < len(c.waiters); i++ {
			w := c.waiters[i]
			if w.to == t && w.p != nil && w.p.state == procBlocked {
				c.waiters[i] = condWaiter{}
				w.p.unpark()
				return
			}
		}
	})
	return t
}

// Fired reports whether the deadline has expired.
func (t *Timeout) Fired() bool { return t != nil && t.fired }

// Cancel disarms the deadline. The underlying kernel event is discarded
// without ever dispatching, so a cancelled timeout leaves no trace on
// the simulated timeline (see Kernel.AfterCancel).
func (t *Timeout) Cancel() {
	if t != nil {
		t.done = true
		t.cancel()
	}
}

// WaitOrTimeout blocks like Wait but gives up when the token's deadline
// expires, reporting false. A nil token waits unconditionally. An
// already-expired token returns false without yielding; callers must
// re-check their predicate either way, since a wakeup by Signal and the
// deadline can land on the same cycle.
func (c *Cond) WaitOrTimeout(p *Proc, t *Timeout) bool {
	if t == nil {
		c.Wait(p)
		return true
	}
	if t.fired {
		return false
	}
	if c.head == len(c.waiters) {
		c.waiters = c.waiters[:0]
		c.head = 0
	}
	c.waiters = append(c.waiters, condWaiter{p: p, to: t})
	p.park(c.reason)
	return !t.fired
}

// WaitFor blocks the calling process until pred() is true, re-checking
// after every wakeup. pred is evaluated immediately first, so WaitFor on a
// satisfied predicate does not yield.
func (c *Cond) WaitFor(p *Proc, pred func() bool) {
	for !pred() {
		c.Wait(p)
	}
}

// Signal wakes the longest-waiting process, if any. Slots emptied by an
// expired Timeout are skipped, as are stale slots whose process was
// woken out from under the wait by Proc.Kill (the slot stays behind;
// the process is no longer blocked).
func (c *Cond) Signal() {
	for c.head < len(c.waiters) {
		w := c.waiters[c.head]
		c.waiters[c.head] = condWaiter{} // release for the GC
		c.head++
		if w.p != nil && w.p.state == procBlocked {
			w.p.unpark()
			return
		}
	}
}

// Broadcast wakes all waiting processes in FIFO order.
func (c *Cond) Broadcast() {
	ws := c.waiters[c.head:]
	c.waiters = c.waiters[:0]
	c.head = 0
	for i, w := range ws {
		ws[i] = condWaiter{}
		if w.p != nil && w.p.state == procBlocked {
			w.p.unpark()
		}
	}
}

// Waiting reports the number of processes blocked on the condition.
func (c *Cond) Waiting() int {
	n := 0
	for _, w := range c.waiters[c.head:] {
		if w.p != nil {
			n++
		}
	}
	return n
}

// Gate is a boolean level-triggered synchronization primitive: processes
// wait until it is open. Unlike Cond, a Gate that is already open never
// blocks, which models a flag a core would read without spinning.
type Gate struct {
	cond *Cond
	open bool
}

// NewGate returns a closed gate.
func NewGate(k *Kernel, name string) *Gate {
	return &Gate{cond: NewCond(k, name)}
}

// Open opens the gate, waking all waiters.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	g.cond.Broadcast()
}

// Close closes the gate; subsequent Wait calls block.
func (g *Gate) Close() { g.open = false }

// IsOpen reports whether the gate is open.
func (g *Gate) IsOpen() bool { return g.open }

// Wait blocks until the gate is open.
func (g *Gate) Wait(p *Proc) {
	for !g.open {
		g.cond.Wait(p)
	}
}

// Semaphore is a counting semaphore in simulated time.
type Semaphore struct {
	cond  *Cond
	count int
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(k *Kernel, name string, initial int) *Semaphore {
	return &Semaphore{cond: NewCond(k, name), count: initial}
}

// Acquire takes one unit, blocking while the count is zero.
func (s *Semaphore) Acquire(p *Proc) {
	for s.count == 0 {
		s.cond.Wait(p)
	}
	s.count--
}

// TryAcquire takes one unit if available and reports whether it did.
func (s *Semaphore) TryAcquire() bool {
	if s.count == 0 {
		return false
	}
	s.count--
	return true
}

// Release returns one unit and wakes a waiter.
func (s *Semaphore) Release() {
	s.count++
	s.cond.Signal()
}

// Count returns the currently available units.
func (s *Semaphore) Count() int { return s.count }

// Queue is an unbounded FIFO of items exchanged between processes in
// simulated time — the simulation analogue of a Go channel.
type Queue[T any] struct {
	cond *Cond

	// items[head:] are the queued values; dequeuing advances head so a
	// drained queue reuses its backing array (see Cond.waiters).
	items []T
	head  int
}

// NewQueue returns an empty queue.
func NewQueue[T any](k *Kernel, name string) *Queue[T] {
	return &Queue[T]{cond: NewCond(k, name)}
}

// Push appends an item and wakes one waiting consumer.
func (q *Queue[T]) Push(v T) {
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.items = append(q.items, v)
	q.cond.Signal()
}

// Pop removes and returns the oldest item, blocking while the queue is
// empty.
func (q *Queue[T]) Pop(p *Proc) T {
	for q.head == len(q.items) {
		q.cond.Wait(p)
	}
	var zero T
	v := q.items[q.head]
	q.items[q.head] = zero // release for the GC
	q.head++
	return v
}

// TryPop removes the oldest item if one is present.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if q.head == len(q.items) {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head++
	return v, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }
