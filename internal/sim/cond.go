package sim

// Cond is a condition variable in simulated time. Processes block on it
// with Wait; other processes or callbacks wake them with Signal or
// Broadcast. Wakeups take effect at the current simulated instant and are
// delivered in FIFO order, preserving determinism.
type Cond struct {
	k      *Kernel
	name   string
	reason string // "cond <name>", built once — Wait is a hot path

	// waiters[head:] are the blocked processes in FIFO order. Dequeuing
	// advances head instead of reslicing from the front, so the backing
	// array is reused once drained rather than reallocated every
	// wait/signal cycle.
	waiters []*Proc
	head    int
}

// NewCond returns a condition variable owned by kernel k. The name is used
// in deadlock reports.
func NewCond(k *Kernel, name string) *Cond {
	return &Cond{k: k, name: name, reason: "cond " + name}
}

// Wait blocks the calling process until the condition is signalled.
func (c *Cond) Wait(p *Proc) {
	if c.head == len(c.waiters) {
		c.waiters = c.waiters[:0]
		c.head = 0
	}
	c.waiters = append(c.waiters, p)
	p.park(c.reason)
}

// WaitFor blocks the calling process until pred() is true, re-checking
// after every wakeup. pred is evaluated immediately first, so WaitFor on a
// satisfied predicate does not yield.
func (c *Cond) WaitFor(p *Proc, pred func() bool) {
	for !pred() {
		c.Wait(p)
	}
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if c.head == len(c.waiters) {
		return
	}
	w := c.waiters[c.head]
	c.waiters[c.head] = nil // release for the GC
	c.head++
	w.unpark()
}

// Broadcast wakes all waiting processes in FIFO order.
func (c *Cond) Broadcast() {
	ws := c.waiters[c.head:]
	c.waiters = c.waiters[:0]
	c.head = 0
	for i, w := range ws {
		ws[i] = nil
		w.unpark()
	}
}

// Waiting reports the number of processes blocked on the condition.
func (c *Cond) Waiting() int { return len(c.waiters) - c.head }

// Gate is a boolean level-triggered synchronization primitive: processes
// wait until it is open. Unlike Cond, a Gate that is already open never
// blocks, which models a flag a core would read without spinning.
type Gate struct {
	cond *Cond
	open bool
}

// NewGate returns a closed gate.
func NewGate(k *Kernel, name string) *Gate {
	return &Gate{cond: NewCond(k, name)}
}

// Open opens the gate, waking all waiters.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	g.cond.Broadcast()
}

// Close closes the gate; subsequent Wait calls block.
func (g *Gate) Close() { g.open = false }

// IsOpen reports whether the gate is open.
func (g *Gate) IsOpen() bool { return g.open }

// Wait blocks until the gate is open.
func (g *Gate) Wait(p *Proc) {
	for !g.open {
		g.cond.Wait(p)
	}
}

// Semaphore is a counting semaphore in simulated time.
type Semaphore struct {
	cond  *Cond
	count int
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(k *Kernel, name string, initial int) *Semaphore {
	return &Semaphore{cond: NewCond(k, name), count: initial}
}

// Acquire takes one unit, blocking while the count is zero.
func (s *Semaphore) Acquire(p *Proc) {
	for s.count == 0 {
		s.cond.Wait(p)
	}
	s.count--
}

// TryAcquire takes one unit if available and reports whether it did.
func (s *Semaphore) TryAcquire() bool {
	if s.count == 0 {
		return false
	}
	s.count--
	return true
}

// Release returns one unit and wakes a waiter.
func (s *Semaphore) Release() {
	s.count++
	s.cond.Signal()
}

// Count returns the currently available units.
func (s *Semaphore) Count() int { return s.count }

// Queue is an unbounded FIFO of items exchanged between processes in
// simulated time — the simulation analogue of a Go channel.
type Queue[T any] struct {
	cond *Cond

	// items[head:] are the queued values; dequeuing advances head so a
	// drained queue reuses its backing array (see Cond.waiters).
	items []T
	head  int
}

// NewQueue returns an empty queue.
func NewQueue[T any](k *Kernel, name string) *Queue[T] {
	return &Queue[T]{cond: NewCond(k, name)}
}

// Push appends an item and wakes one waiting consumer.
func (q *Queue[T]) Push(v T) {
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.items = append(q.items, v)
	q.cond.Signal()
}

// Pop removes and returns the oldest item, blocking while the queue is
// empty.
func (q *Queue[T]) Pop(p *Proc) T {
	for q.head == len(q.items) {
		q.cond.Wait(p)
	}
	var zero T
	v := q.items[q.head]
	q.items[q.head] = zero // release for the GC
	q.head++
	return v
}

// TryPop removes the oldest item if one is present.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if q.head == len(q.items) {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head++
	return v, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }
