package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSingleProcessDelayAdvancesClock(t *testing.T) {
	k := NewKernel()
	var end Cycles
	k.Spawn("p", func(p *Proc) {
		p.Delay(10)
		p.Delay(5)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 15 {
		t.Errorf("process ended at %d, want 15", end)
	}
	if k.Now() != 15 {
		t.Errorf("kernel at %d, want 15", k.Now())
	}
}

func TestZeroDelayYields(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Delay(0)
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a1 b1 a2"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}

func TestSameCycleEventsRunInScheduleOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(100, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, v, i, order)
		}
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var order []string
		for _, name := range []string{"x", "y", "z"} {
			name := name
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					order = append(order, name)
					p.Delay(7)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for i := 0; i < 20; i++ {
		if got := run(); strings.Join(got, "") != strings.Join(first, "") {
			t.Fatalf("run %d differed: %v vs %v", i, got, first)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "never")
	k.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	err := k.Run()
	if err == nil {
		t.Fatal("want deadlock error, got nil")
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Errorf("deadlock report %q does not name the blocked process", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Spawn("boom", func(p *Proc) { panic("kaboom") })
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("want panic error, got %v", err)
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "c")
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	k.Spawn("waker", func(p *Proc) {
		p.Delay(10)
		c.Signal()
		p.Delay(10)
		c.Signal()
		p.Delay(10)
		c.Signal()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, " "); got != "first second third" {
		t.Errorf("wake order = %q, want FIFO", got)
	}
}

func TestCondBroadcast(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "c")
	woken := 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	k.Spawn("b", func(p *Proc) {
		p.Delay(1)
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Errorf("woken = %d, want 5", woken)
	}
}

func TestWaitForChecksPredicateFirst(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "c")
	done := false
	k.Spawn("p", func(p *Proc) {
		c.WaitFor(p, func() bool { return true }) // must not block
		done = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("WaitFor on satisfied predicate blocked")
	}
}

func TestGateOpenBeforeWaitDoesNotBlock(t *testing.T) {
	k := NewKernel()
	g := NewGate(k, "g")
	g.Open()
	reached := false
	k.Spawn("p", func(p *Proc) {
		g.Wait(p)
		reached = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !reached {
		t.Error("wait on open gate blocked")
	}
}

func TestGateCloseReopens(t *testing.T) {
	k := NewKernel()
	g := NewGate(k, "g")
	var at Cycles
	k.Spawn("waiter", func(p *Proc) {
		g.Wait(p)
		at = p.Now()
	})
	k.Spawn("ctl", func(p *Proc) {
		p.Delay(50)
		g.Open()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 50 {
		t.Errorf("waiter released at %d, want 50", at)
	}
	if !g.IsOpen() {
		t.Error("gate should be open")
	}
	g.Close()
	if g.IsOpen() {
		t.Error("gate should be closed")
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore(k, "s", 2)
	inside, maxInside := 0, 0
	for i := 0; i < 6; i++ {
		k.Spawn("worker", func(p *Proc) {
			s.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Delay(10)
			inside--
			s.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 2 {
		t.Errorf("max concurrent holders = %d, want 2", maxInside)
	}
	if s.Count() != 2 {
		t.Errorf("final count = %d, want 2", s.Count())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore(k, "s", 1)
	if !s.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire succeeded on empty semaphore")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

func TestQueueFIFOAcrossProcesses(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q")
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Pop(p))
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Delay(3)
			q.Push(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestQueueTryPop(t *testing.T) {
	k := NewKernel()
	q := NewQueue[string](k, "q")
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
	q.Push("a")
	q.Push("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	v, ok := q.TryPop()
	if !ok || v != "a" {
		t.Fatalf("TryPop = %q,%v, want a,true", v, ok)
	}
}

func TestRunUntilStopsAtTime(t *testing.T) {
	k := NewKernel()
	ticks := 0
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Delay(10)
			ticks++
		}
	})
	if err := k.RunUntil(55); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Errorf("ticks = %d at t=55, want 5", ticks)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 100 {
		t.Errorf("ticks = %d after Run, want 100", ticks)
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel()
	count := 0
	k.Spawn("loop", func(p *Proc) {
		for {
			p.Delay(1)
			count++
			if count == 10 {
				k.Stop()
				// The process keeps its body but the kernel will not
				// schedule it again after Stop; yield so Run can return.
				p.Delay(1)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel()
	var childRan bool
	var childTime Cycles
	k.Spawn("parent", func(p *Proc) {
		p.Delay(42)
		k.Spawn("child", func(c *Proc) {
			childRan = true
			childTime = c.Now()
		})
		p.Delay(1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
	if childTime != 42 {
		t.Errorf("child started at %d, want 42", childTime)
	}
}

func TestCallbackOrderingWithProcesses(t *testing.T) {
	k := NewKernel()
	var order []string
	k.At(5, func() { order = append(order, "cb5") })
	k.Spawn("p", func(p *Proc) {
		p.Delay(5)
		order = append(order, "p5")
	})
	k.At(3, func() { order = append(order, "cb3") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "cb3 cb5 p5"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}

// Property: for any sequence of positive delays, a single process ends at
// exactly the sum of its delays.
func TestPropertyDelaysSum(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		var sum, end Cycles
		k.Spawn("p", func(p *Proc) {
			for _, d := range delays {
				p.Delay(Cycles(d))
				sum += Cycles(d)
			}
			end = p.Now()
		})
		if err := k.Run(); err != nil {
			return false
		}
		return end == sum && k.Now() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: N producer/consumer pairs always drain cleanly and values
// arrive in FIFO order per queue.
func TestPropertyQueuesDrainFIFO(t *testing.T) {
	f := func(nPairs uint8, nItems uint8) bool {
		pairs := int(nPairs%8) + 1
		items := int(nItems%32) + 1
		k := NewKernel()
		ok := true
		for q := 0; q < pairs; q++ {
			qu := NewQueue[int](k, "q")
			k.Spawn("prod", func(p *Proc) {
				for i := 0; i < items; i++ {
					p.Delay(Cycles(q + 1))
					qu.Push(i)
				}
			})
			k.Spawn("cons", func(p *Proc) {
				for i := 0; i < items; i++ {
					if qu.Pop(p) != i {
						ok = false
					}
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSpawnAtPastPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) { p.Delay(100) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("SpawnAt in the past did not panic")
		}
	}()
	k.SpawnAt(5, "late", func(p *Proc) {})
}
