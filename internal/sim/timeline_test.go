package sim

import (
	"strings"
	"testing"
)

func TestTimelineSpansSorted(t *testing.T) {
	k := NewKernel()
	tl := NewTimeline(k)
	tl.Record("b", "put", 10, 20)
	tl.Record("a", "get", 5, 15)
	tl.Record("a", "put", 10, 12)
	spans := tl.Spans()
	if len(spans) != 3 {
		t.Fatalf("len = %d, want 3", len(spans))
	}
	if spans[0].From != 5 {
		t.Errorf("first span starts at %d, want 5", spans[0].From)
	}
	if spans[1].Actor != "a" || spans[2].Actor != "b" {
		t.Errorf("same-time spans not ordered by actor: %v", spans)
	}
}

func TestTimelineOverlap(t *testing.T) {
	k := NewKernel()
	tl := NewTimeline(k)
	tl.Record("s", "put", 0, 100)
	tl.Record("r", "get", 50, 150)
	tl.Record("r", "wait", 200, 300)
	if !tl.Overlap("put", "get") {
		t.Error("put/get should overlap")
	}
	if tl.Overlap("put", "wait") {
		t.Error("put/wait should not overlap")
	}
}

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.Record("a", "x", 0, 1) // must not panic
	tl.Mark("a", "y")
}

func TestTimelineMarkUsesNow(t *testing.T) {
	k := NewKernel()
	tl := NewTimeline(k)
	k.Spawn("p", func(p *Proc) {
		p.Delay(77)
		tl.Mark("p", "event")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	spans := tl.Spans()
	if len(spans) != 1 || spans[0].From != 77 || spans[0].To != 77 {
		t.Errorf("mark span = %+v, want instant at 77", spans)
	}
}

func TestTimelineRender(t *testing.T) {
	k := NewKernel()
	tl := NewTimeline(k)
	tl.Record("sender", "put", 0, 50)
	tl.Record("receiver", "get", 50, 100)
	out := tl.Render(40)
	if !strings.Contains(out, "sender") || !strings.Contains(out, "receiver") {
		t.Errorf("render missing actors:\n%s", out)
	}
	if !strings.Contains(out, "p") || !strings.Contains(out, "g") {
		t.Errorf("render missing span glyphs:\n%s", out)
	}
}

func TestTimelineRenderEmpty(t *testing.T) {
	k := NewKernel()
	tl := NewTimeline(k)
	if out := tl.Render(40); !strings.Contains(out, "empty") {
		t.Errorf("empty render = %q", out)
	}
}
