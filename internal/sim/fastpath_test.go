package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// Tests for the engine fast paths introduced with the monomorphic event
// queue: the same-cycle bucket, the resettable Stop, and the ordering
// guarantees the heap must keep without container/heap.

// TestHeapOrderingRandomized is the ordering contract of the hand-rolled
// heap: whatever order events are scheduled in, they fire in (time,
// sequence) order.
func TestHeapOrderingRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		k := NewKernel()
		const n = 200
		type stamp struct {
			at  Cycles
			ord int // schedule order, the within-cycle tiebreak
		}
		want := make([]stamp, 0, n)
		var got []stamp
		for i := 0; i < n; i++ {
			at := Cycles(rng.Intn(20)) // many collisions
			s := stamp{at: at, ord: i}
			want = append(want, s)
			k.At(at, func() { got = append(got, s) })
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("trial %d: dispatched %d events, want %d", trial, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: event %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSameCycleCascade exercises the bucket fast path: a long chain of
// events each scheduling the next at the same instant must run in order
// without the clock moving.
func TestSameCycleCascade(t *testing.T) {
	k := NewKernel()
	n := 0
	var step func()
	step = func() {
		n++
		if n < 10000 {
			k.After(0, step)
		}
	}
	k.At(7, step)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 10000 {
		t.Errorf("cascade ran %d steps, want 10000", n)
	}
	if k.Now() != 7 {
		t.Errorf("clock moved to %d during a same-cycle cascade, want 7", k.Now())
	}
}

// TestStopThenRunResumes is the resettable-Stop contract: events pending
// when Stop fires are dispatched by the next run, not dropped.
func TestStopThenRunResumes(t *testing.T) {
	k := NewKernel()
	var fired []int
	for i := 0; i < 5; i++ {
		i := i
		k.At(Cycles(10*(i+1)), func() {
			fired = append(fired, i)
			if i == 1 {
				k.Stop()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !k.Stopped() {
		t.Error("Stopped() = false right after a stopped run")
	}
	if len(fired) != 2 {
		t.Fatalf("first run fired %v, want the first two events", fired)
	}
	if k.Pending() != 3 {
		t.Errorf("Pending() = %d after stop, want 3", k.Pending())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stopped() {
		t.Error("Stopped() = true after a clean rerun")
	}
	if len(fired) != 5 {
		t.Errorf("resumed run ended with %v, want all five events", fired)
	}
}

// TestStopInRunForLoopDoesNotDropWork models the RunFor polling loop the
// host daemon uses: Stop pauses the loop; the following RunFor picks the
// remaining work back up.
func TestStopInRunForLoopDoesNotDropWork(t *testing.T) {
	k := NewKernel()
	ticks := 0
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Delay(10)
			ticks++
			if ticks == 3 {
				k.Stop()
			}
		}
	})
	if err := k.RunFor(1000); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 {
		t.Fatalf("stopped RunFor ticked %d times, want 3", ticks)
	}
	if got := k.Now(); got != 30 {
		t.Fatalf("stopped RunFor left clock at %d, want 30 (no silent idle advance)", got)
	}
	// The next bounded run clears the stop and finishes the work.
	if err := k.RunFor(1000); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Errorf("resumed RunFor ticked to %d, want 10", ticks)
	}
}

func TestResetClearsStop(t *testing.T) {
	k := NewKernel()
	k.Stop()
	if !k.Stopped() {
		t.Fatal("Stop did not set Stopped")
	}
	k.Reset()
	if k.Stopped() {
		t.Error("Reset did not clear Stopped")
	}
}

// TestRunUntilBackwardsGuardPanics checks that the bounded run carries
// the same queue-went-backwards internal consistency guard as Run
// (white box: the public API cannot schedule into the past).
func TestRunUntilBackwardsGuardPanics(t *testing.T) {
	k := NewKernel()
	k.queue.push(event{at: 5, seq: 1, fn: func() {}})
	k.now = 10
	defer func() {
		if recover() == nil {
			t.Error("RunUntil dispatched an event behind the clock without panicking")
		}
	}()
	_ = k.RunUntil(20)
}

// TestRunUntilPastBoundIsNoOp: a bound behind the clock must neither
// dispatch current-cycle work nor rewind anything.
func TestRunUntilPastBoundIsNoOp(t *testing.T) {
	k := NewKernel()
	if err := k.RunFor(100); err != nil {
		t.Fatal(err)
	}
	ran := false
	k.At(100, func() { ran = true }) // due now, but outside the bound below
	if err := k.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("RunUntil(50) dispatched an event due at 100")
	}
	if k.Now() != 100 {
		t.Errorf("clock = %d, want 100", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("event lost after past-bound RunUntil")
	}
}

// TestPendingCountsBucketAndHeap covers Pending across both queue
// structures.
func TestPendingCountsBucketAndHeap(t *testing.T) {
	k := NewKernel()
	k.At(0, func() {})  // bucket (due at the current cycle)
	k.At(10, func() {}) // heap
	k.At(20, func() {})
	if got := k.Pending(); got != 3 {
		t.Errorf("Pending() = %d, want 3", got)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := k.Pending(); got != 0 {
		t.Errorf("Pending() = %d after Run, want 0", got)
	}
}

// TestCondWaitingAfterChurn guards the head-indexed waiter list: Waiting
// must stay correct through interleaved waits and wakes.
func TestCondWaitingAfterChurn(t *testing.T) {
	k := NewKernel()
	c := NewCond(k, "churn")
	woken := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *Proc) {
			c.Wait(p)
			woken++
			c.Wait(p)
			woken++
		})
	}
	k.Spawn("ctl", func(p *Proc) {
		p.Delay(1)
		if c.Waiting() != 4 {
			panic("want 4 first-round waiters")
		}
		c.Signal()
		c.Signal()
		p.Delay(1) // the two woken processes re-wait
		if c.Waiting() != 4 {
			panic("want 2 fresh + 2 re-waiters")
		}
		c.Broadcast()
		p.Delay(1)
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 8 {
		t.Errorf("woken = %d, want 8", woken)
	}
}
