package sim

// Conservative parallel discrete-event simulation (PDES) over a set of
// kernels, synchronized with barrier windows (DESIGN.md §9).
//
// The model is classic conservative PDES specialized to the vSCC
// topology: every cross-kernel interaction crosses the PCIe fabric,
// whose link latency L is a hard lower bound on how far in the future a
// kernel can affect any other. That bound is the lookahead. Time is cut
// into windows [T, T+L-1] where T is the earliest pending event on any
// kernel; within a window every kernel runs independently (in parallel,
// on its own goroutine) because no message sent inside the window can
// arrive inside it. At the window barrier the engine collects every
// posted cross-kernel message, delivers the batch in a canonical order
// — (arrival time, sender kernel, per-sender sequence) — and opens the
// next window.
//
// Barrier windows were chosen over null messages deliberately: null
// messages optimize for sparse topologies where lookahead varies per
// link, but here every pair of kernels is coupled through the same
// fabric with the same L, so per-link null messages degenerate into an
// all-pairs broadcast that a single barrier replaces outright — and the
// barrier makes determinism trivial to prove: delivery order depends
// only on message content, never on worker scheduling.
//
// Determinism: each kernel is internally deterministic (one goroutine
// at a time, FIFO same-cycle order). Outboxes are per-sender and
// single-writer; the merge sort key is independent of wall-clock
// interleaving. Therefore a run with W workers is byte-identical to a
// run with 1 worker, for any W.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// xmsg is one cross-kernel message: fn runs on the destination kernel
// at cycle at. src/seq make the barrier merge order canonical.
type xmsg struct {
	at  Cycles
	src int
	dst int
	seq uint64
	fn  func()
}

// PDES couples n kernels under barrier-window conservative
// synchronization with a fixed lookahead. Construct with NewPDES, pin
// model entities to kernels via Kernel(i), exchange cross-kernel events
// only through Post, and drive everything with Run.
type PDES struct {
	kernels []*Kernel
	la      Cycles
	outbox  [][]xmsg
	seqs    []uint64
	windows uint64
}

// NewPDES creates n kernels coupled with the given lookahead: a
// cross-kernel message posted while the sender is at cycle t may not
// arrive before t+lookahead. The lookahead must be positive — it is the
// window width that lets kernels run concurrently at all.
func NewPDES(n int, lookahead Cycles) *PDES {
	if n <= 0 {
		panic("sim: NewPDES needs at least one kernel")
	}
	if lookahead == 0 {
		panic("sim: PDES requires a positive lookahead")
	}
	pd := &PDES{
		la:     lookahead,
		outbox: make([][]xmsg, n),
		seqs:   make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		pd.kernels = append(pd.kernels, NewKernel())
	}
	return pd
}

// Kernel returns sub-kernel i.
func (pd *PDES) Kernel(i int) *Kernel { return pd.kernels[i] }

// N returns the number of sub-kernels.
func (pd *PDES) N() int { return len(pd.kernels) }

// Lookahead returns the configured lookahead.
func (pd *PDES) Lookahead() Cycles { return pd.la }

// Windows returns the number of synchronization windows executed so
// far — the PDES-level work metric (barrier crossings).
func (pd *PDES) Windows() uint64 { return pd.windows }

// Events sums the dispatched-event counters of all sub-kernels.
func (pd *PDES) Events() uint64 {
	var n uint64
	for _, k := range pd.kernels {
		n += k.Events()
	}
	return n
}

// Post sends a cross-kernel message: fn will run on kernel dst at cycle
// at. It must be called from kernel src's own context (a process body
// or callback running on that kernel) and at must respect the
// lookahead — at >= src.Now()+lookahead — or Post panics: such a
// message could land inside the current window on a kernel that has
// already simulated past it. Messages are buffered per sender and
// delivered at the next window barrier, sorted by (at, src, seq).
func (pd *PDES) Post(src int, at Cycles, dst int, fn func()) {
	k := pd.kernels[src]
	if at < k.now+pd.la {
		panic(fmt.Sprintf("sim: PDES.Post at cycle %d violates the lookahead: kernel %d is at cycle %d, lookahead %d",
			at, src, k.now, pd.la))
	}
	pd.seqs[src]++
	pd.outbox[src] = append(pd.outbox[src], xmsg{at: at, src: src, dst: dst, seq: pd.seqs[src], fn: fn})
}

// Run drives all kernels to completion with the given number of worker
// goroutines (clamped to [1, n]). Within each window the workers pull
// kernels off a shared counter; since kernels share no state inside a
// window and the barrier orders all cross-kernel delivery, the worker
// count affects wall-clock time only, never results. Run returns the
// first error (by kernel index) from any kernel, or an aggregated
// deadlock report if live processes remain anywhere once every event
// queue drains.
func (pd *PDES) Run(workers int) error {
	n := len(pd.kernels)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var merged []xmsg
	for {
		// Barrier: deliver every message posted during the last window.
		// The merge order is canonical — (arrival cycle, sender kernel,
		// per-sender sequence) — so delivery, and with it each receiving
		// kernel's seq assignment, is independent of worker scheduling.
		merged = merged[:0]
		for src := range pd.outbox {
			merged = append(merged, pd.outbox[src]...)
			pd.outbox[src] = pd.outbox[src][:0]
		}
		sort.Slice(merged, func(i, j int) bool {
			a, b := &merged[i], &merged[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
		for i := range merged {
			m := &merged[i]
			pd.kernels[m.dst].At(m.at, m.fn)
		}

		// The next window starts at the globally earliest pending event.
		var base Cycles
		have := false
		for _, k := range pd.kernels {
			if at, ok := k.NextEventAt(); ok && (!have || at < base) {
				base, have = at, true
			}
		}
		if !have {
			break // no events anywhere: the simulation has drained
		}
		end := base + pd.la - 1
		pd.windows++

		// Run the window. Every kernel advances to exactly `end` (an
		// event-less kernel just jumps its clock), so all clocks agree at
		// every barrier and the lookahead proof holds from a common base:
		// a message posted inside this window carries at >= now+la >
		// end, i.e. it lands strictly in a later window.
		if workers == 1 {
			for i, k := range pd.kernels {
				if err := k.RunUntil(end); err != nil && errs[i] == nil {
					errs[i] = err
				}
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= n {
							return
						}
						if err := pd.kernels[i].RunUntil(end); err != nil && errs[i] == nil {
							errs[i] = err
						}
					}
				}()
			}
			wg.Wait()
		}
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("sim: pdes kernel %d: %w", i, err)
			}
		}
	}

	// Global termination with live processes somewhere is a deadlock;
	// aggregate the per-kernel reports so the diagnosis names every
	// blocked process, not just the first kernel's.
	var dead []string
	for i, k := range pd.kernels {
		if err := k.DeadlockError(); err != nil {
			dead = append(dead, fmt.Sprintf("kernel %d: %v", i, err))
		}
	}
	if len(dead) > 0 {
		return fmt.Errorf("sim: pdes deadlock across %d kernel(s): %s", len(dead), strings.Join(dead, "; "))
	}
	return nil
}
