// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a set of processes — goroutines that model simulated
// agents such as processor cores, host daemon threads or DMA engines.
// Exactly one process executes at any instant; a process runs until it
// yields by advancing the simulated clock (Delay), blocking on a Cond, or
// finishing. Events scheduled for the same cycle are executed in the order
// they were scheduled, so a simulation run is fully deterministic and
// repeatable regardless of Go scheduler behaviour.
//
// Time is measured in Cycles. The interpretation of a cycle is up to the
// user; the vSCC model uses core clock cycles of the 533 MHz P54C cores.
//
// # Engine internals
//
// The event queue is a hand-rolled monomorphic binary min-heap over the
// concrete event struct, ordered by (time, sequence). Compared to
// container/heap over interface{} this removes the per-push boxing
// allocation and the dynamic dispatch on every comparison — the hot path
// of the whole simulator, since every Delay, wakeup and timed callback is
// one push and one pop.
//
// Same-cycle events take a second fast path: events scheduled for the
// current instant (condition-variable wakeups, zero-latency forwarding
// hops, Delay(0) yields) are appended to a FIFO bucket and dispatched
// without touchinging the heap at all. Sequence numbers are assigned
// monotonically, so plain FIFO order over the bucket is exactly
// (time, sequence) order and determinism is preserved bit-for-bit.
package sim

import (
	"fmt"
	"sort"
)

// Cycles is a point in, or a span of, simulated time.
type Cycles uint64

// event is a single entry in the kernel's event queue. Exactly one of p or
// fn is non-nil: p resumes a blocked process, fn runs a callback inline.
// The struct is copied on every heap and bucket operation — the hottest
// path in the simulator — so cancellation state (see AfterCancel) lives
// in a kernel-side seq set rather than widening every event.
type event struct {
	at  Cycles
	seq uint64
	p   *Proc
	fn  func()
}

// before reports whether e is ordered ahead of o: earlier time first,
// schedule order within a cycle.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a monomorphic binary min-heap of events. It replaces
// container/heap to keep pushes allocation-free: values move through
// concrete-typed slice slots, never through interface{}.
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	// Sift up.
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].before(&q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The caller must ensure the
// heap is non-empty.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the fn/p references for the GC
	q = q[:n]
	*h = q
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q[r].before(&q[l]) {
			min = r
		}
		if !q[min].before(&q[i]) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procNew procState = iota
	procRunnable
	procRunning
	procBlocked
	procDone
)

func (s procState) String() string {
	switch s {
	case procNew:
		return "new"
	case procRunnable:
		return "runnable"
	case procRunning:
		return "running"
	case procBlocked:
		return "blocked"
	case procDone:
		return "done"
	}
	return "invalid"
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; create one with NewKernel.
type Kernel struct {
	now        Cycles
	seq        uint64
	dispatched uint64
	queue      eventHeap

	// bucket holds the events due at exactly the current time, in
	// (time, seq) order; head indexes the next one to dispatch. Events
	// scheduled for the current instant go straight here, skipping the
	// heap entirely — the same-cycle fast path.
	bucket []event
	head   int

	procs  []*Proc
	live   int // processes not yet done
	panics []error

	// stopped is set by Stop; the run loop drains no further events once
	// set. It is cleared on the next Run/RunFor/RunUntil call, so a
	// stopped kernel can be resumed without dropping pending work.
	stopped bool

	// cancelled holds the seqs of events cancelled via AfterCancel but
	// not yet discarded by the run loop; nCancelled mirrors its size.
	// Kept out of the event struct so cancellability costs the hot path
	// one integer compare instead of a wider event copy on every push
	// and pop. nil until first used.
	cancelled  map[uint64]struct{}
	nCancelled int

	// yield is the single token-return channel: whichever goroutine
	// holds the execution token (a process, or the run loop itself)
	// hands it back here when it cannot pass it directly to the next
	// runnable process (see yieldTo). One channel instead of waiting on
	// the dispatched process's own channel is what makes direct
	// process-to-process handoff possible: the run loop does not care
	// *who* returns the token, only that exactly one holder exists.
	yield chan struct{}

	// running/bounded/limit mirror the active run loop's state so the
	// same-cycle and delay fast paths (Proc.Delay, yieldTo) can decide
	// inline whether an event may be dispatched without handing the
	// token back to the run loop.
	running bool
	bounded bool
	limit   Cycles
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Cycles { return k.now }

// Events returns the number of events dispatched since creation — the
// kernel-level work metric the observability layer reports.
func (k *Kernel) Events() uint64 { return k.dispatched }

// Stop makes the current Run/RunFor/RunUntil return after the currently
// executing event completes. It may be called from process context or
// from a callback. Pending events stay queued: the next Run/RunFor/
// RunUntil call clears the stop flag and picks up exactly where the
// stopped run left off (see Reset).
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether the kernel was halted by Stop and has not run
// since. It lets RunFor polling loops distinguish "stopped" from "ran to
// the time bound".
func (k *Kernel) Stopped() bool { return k.stopped }

// Reset clears a previous Stop so the kernel will run again. Run, RunFor
// and RunUntil call it implicitly on entry; it exists for callers that
// want to clear the flag without running (for example before inspecting
// Pending).
func (k *Kernel) Reset() { k.stopped = false }

// Pending reports the number of queued events not yet dispatched.
func (k *Kernel) Pending() int { return len(k.queue) + len(k.bucket) - k.head }

// Proc is a simulated process. Methods on Proc must only be called from
// within the process's own body function.
type Proc struct {
	k     *Kernel
	name  string
	state procState
	body  func(*Proc)

	// run is the single handoff channel for this process: the kernel
	// sends on it to hand the process the execution token, the process
	// sends on it to hand the token back when it yields or finishes.
	// Exactly one side is ever sending, because exactly one of
	// {kernel, process} executes at any instant.
	run chan struct{}

	daemon bool

	// blockReason is a human-readable description of what the process is
	// waiting for; it appears in deadlock reports.
	blockReason string

	// killErr, when non-nil, aborts the process: the next time it would
	// resume simulated execution it panics with this error instead. The
	// process's own recover (if any) may translate the panic into a
	// terminal status; runBody otherwise swallows it, so a kill is never
	// reported as a kernel panic. Set via Kill.
	killErr error
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Cycles { return p.k.now }

// Spawn creates a process and schedules it to start at the current
// simulated time. It is safe to call before Run and from within process
// bodies or callbacks.
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	return k.SpawnAt(k.now, name, body)
}

// SpawnAt creates a process that starts at time at (which must not be in
// the past).
func (k *Kernel) SpawnAt(at Cycles, name string, body func(*Proc)) *Proc {
	if at < k.now {
		panic(fmt.Sprintf("sim: SpawnAt(%d) in the past (now %d)", at, k.now))
	}
	p := &Proc{k: k, name: name, state: procNew, run: make(chan struct{}), body: body}
	k.procs = append(k.procs, p)
	k.live++
	k.schedule(at, p, nil)
	return p
}

// SpawnDaemon creates a service process (for example a device forwarder
// thread) that is expected to block forever once the real work drains:
// it does not count toward deadlock detection, and Run returns normally
// while daemons are still blocked.
func (k *Kernel) SpawnDaemon(name string, body func(*Proc)) *Proc {
	p := k.SpawnAt(k.now, name, body)
	p.daemon = true
	k.live--
	return p
}

// At schedules fn to run as a callback at time at. Callbacks run to
// completion on the kernel's own goroutine and must not block.
func (k *Kernel) At(at Cycles, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: At(%d) in the past (now %d)", at, k.now))
	}
	k.schedule(at, nil, fn)
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Cycles, fn func()) { k.At(k.now+d, fn) }

// AfterCancel schedules fn like After but returns a cancel function. A
// cancelled event is discarded without dispatching and — unlike
// swapping fn for a no-op — without ever advancing the clock to its
// deadline: arming and cancelling a timeout leaves the simulated
// timeline untouched, which is what keeps armed-but-idle recovery
// machinery cycle-identical to a run without it. cancel is idempotent
// and harmless after the event has fired.
func (k *Kernel) AfterCancel(d Cycles, fn func()) (cancel func()) {
	// fired makes cancel-after-dispatch a true no-op. Without it the
	// cancel would insert a mark for an event that already ran — a mark
	// nothing ever consumes, leaving nCancelled permanently non-zero and
	// defeating the zero-cancellations fast path in the dispatch loop.
	fired := false
	k.schedule(k.now+d, nil, func() { fired = true; fn() })
	seq := k.seq // schedule assigned this seq to the event just queued
	return func() {
		if fired {
			return
		}
		if k.cancelled == nil {
			k.cancelled = make(map[uint64]struct{})
		}
		if _, ok := k.cancelled[seq]; !ok {
			k.cancelled[seq] = struct{}{}
			k.nCancelled++
		}
	}
}

// discard reports whether the event with seq was cancelled, consuming
// its mark. Callers gate on k.nCancelled != 0 so the fault-free run
// loop pays only that compare and never makes this call.
func (k *Kernel) discard(seq uint64) bool {
	if _, ok := k.cancelled[seq]; !ok {
		return false
	}
	delete(k.cancelled, seq)
	k.nCancelled--
	return true
}

func (k *Kernel) schedule(at Cycles, p *Proc, fn func()) {
	k.seq++
	if at == k.now {
		// Same-cycle fast path: seq is monotonic, so appending keeps the
		// bucket in (time, seq) order without a heap operation. The heap
		// cannot hold an event at the current time (advancing to a cycle
		// drains all its heap events into the bucket), so dispatch order
		// across the two structures stays correct.
		if k.head == len(k.bucket) {
			// Everything already dispatched — rewind so a long cascade of
			// same-cycle events reuses the same slots instead of growing
			// the bucket for the whole cycle.
			k.bucket = k.bucket[:0]
			k.head = 0
		}
		k.bucket = append(k.bucket, event{at: at, seq: k.seq, p: p, fn: fn})
		return
	}
	k.queue.push(event{at: at, seq: k.seq, p: p, fn: fn})
}

// Run executes events until the queue empties, Stop is called, or no
// runnable work remains. It returns an error if live processes remain
// blocked when the queue drains (a deadlock) or if a process panicked.
func (k *Kernel) Run() error {
	if err := k.run(0, false); err != nil || k.stopped {
		return err
	}
	if k.live > 0 {
		return k.deadlockError()
	}
	return nil
}

// RunFor executes events up to and including time k.Now()+d, then returns.
// Unlike Run, remaining blocked processes are not treated as a deadlock.
func (k *Kernel) RunFor(d Cycles) error { return k.RunUntil(k.now + d) }

// RunUntil executes events with timestamps <= t. If the queue drains (or
// only holds later events) before t, the clock advances to t.
func (k *Kernel) RunUntil(t Cycles) error {
	if err := k.run(t, true); err != nil {
		return err
	}
	if k.now < t && !k.stopped {
		k.now = t
	}
	return nil
}

// run is the single dispatch loop behind Run, RunFor and RunUntil.
// With bounded set, only events with timestamps <= limit are dispatched.
// It returns when the queue drains, the bound is passed, Stop is called,
// or a process panics.
func (k *Kernel) run(limit Cycles, bounded bool) error {
	k.stopped = false // a previous Stop is stale once a new run starts
	if bounded && limit < k.now {
		return nil // the bucket may hold events at now > limit; keep them queued
	}
	k.running, k.bounded, k.limit = true, bounded, limit
	defer func() { k.running = false }()
	for {
		var e event
		if k.head < len(k.bucket) {
			// Fast path: next event is due at the current cycle.
			e = k.bucket[k.head]
			k.bucket[k.head] = event{} // release fn/p for the GC
			k.head++
			if k.nCancelled != 0 && k.discard(e.seq) {
				continue // cancelled while parked in the bucket
			}
		} else {
			if k.head > 0 {
				k.bucket = k.bucket[:0]
				k.head = 0
			}
			if len(k.queue) == 0 {
				return nil
			}
			if bounded && k.queue[0].at > limit {
				return nil
			}
			e = k.queue.pop()
			if k.nCancelled != 0 && k.discard(e.seq) {
				// Cancelled before the clock reached it: discard without
				// advancing time. Events drained into the bucket below
				// are screened when the bucket dispatches them.
				continue
			}
			if e.at < k.now {
				panic("sim: event queue went backwards")
			}
			k.now = e.at
			// Drain every event due at the new cycle into the bucket so
			// that (a) they dispatch FIFO without further sift costs and
			// (b) schedule() may assume the heap never holds events at
			// the current time. Heap pops at equal timestamps come out
			// in seq order, so the bucket stays sorted.
			for len(k.queue) > 0 && k.queue[0].at == e.at {
				k.bucket = append(k.bucket, k.queue.pop())
			}
		}
		k.dispatched++
		if e.fn != nil {
			e.fn()
		} else if err := k.dispatch(e.p); err != nil {
			return err
		}
		if k.stopped {
			return nil
		}
	}
}

// dispatch hands the execution token to process p and waits for it to
// yield or finish.
func (k *Kernel) dispatch(p *Proc) error {
	switch p.state {
	case procDone:
		return nil // stale wakeup for a finished process
	case procNew:
		p.state = procRunning
		go k.runBody(p)
	case procBlocked, procRunnable:
		p.state = procRunning
		p.run <- struct{}{}
	default:
		panic("sim: resuming a process in state " + p.state.String())
	}
	<-k.yield
	if len(k.panics) > 0 {
		return k.panics[0]
	}
	return nil
}

func (k *Kernel) runBody(p *Proc) {
	defer func() {
		if r := recover(); r != nil {
			// A kill sentinel that unwound the whole body (no handler
			// recovered it) is an orderly abort, not a crash.
			if err, ok := r.(error); !ok || p.killErr == nil || err != p.killErr {
				k.panics = append(k.panics, fmt.Errorf("sim: process %q panicked: %v", p.name, r))
			}
		}
		p.state = procDone
		if !p.daemon {
			k.live--
		}
		// A finishing process always returns the token to the run loop —
		// never a direct handoff — so panics surface immediately.
		k.yield <- struct{}{}
	}()
	p.checkKill() // killed before its first dispatch: abort without running
	p.body(p)
}

// yieldTo releases the execution token held by the current process.
// When the next due event is a same-cycle resume of another process, the
// token is handed to that process directly, skipping the round trip
// through the run loop (two channel operations and a goroutine wakeup).
// The dispatch order is exactly what the run loop would have produced:
// the bucket is popped in (time, seq) order either way. Everything else
// — callbacks (which must run on the kernel goroutine), new processes,
// stale wakeups, pending cancellations, Stop — bails out to the run
// loop.
func (k *Kernel) yieldTo() {
	if !k.stopped && k.nCancelled == 0 && k.head < len(k.bucket) {
		e := k.bucket[k.head]
		if e.p != nil && e.p.state == procRunnable {
			k.bucket[k.head] = event{} // release fn/p for the GC
			k.head++
			k.dispatched++
			e.p.state = procRunning
			e.p.run <- struct{}{}
			return
		}
	}
	k.yield <- struct{}{}
}

// deadlockError builds a report naming every still-blocked process.
func (k *Kernel) deadlockError() error {
	var names []string
	for _, p := range k.procs {
		if p.daemon {
			continue
		}
		if p.state == procBlocked || p.state == procNew || p.state == procRunnable {
			names = append(names, fmt.Sprintf("%s (%s: %s)", p.name, p.state, p.blockReason))
		}
	}
	sort.Strings(names)
	return fmt.Errorf("sim: deadlock — %d process(es) blocked with empty event queue: %v", len(names), names)
}

// Delay advances the process by d cycles of simulated time. A Delay of
// zero yields to other work scheduled at the current instant.
func (p *Proc) Delay(d Cycles) {
	p.checkKill()
	k := p.k
	at := k.now + d
	// Inline continuation fast path: when the process's own wakeup would
	// be the very next event dispatched — no other same-cycle work is
	// pending and nothing in the heap is due before at — the schedule,
	// the two token handoffs and the goroutine round trip are all pure
	// overhead. Bump the same counters the event would have consumed
	// (seq for AfterCancel bookkeeping, dispatched for Events()) and
	// keep running. The heap never holds events at the current time, so
	// an empty bucket means nothing else can run before the wakeup.
	if k.running && !k.stopped && k.head == len(k.bucket) && (!k.bounded || at <= k.limit) {
		if d == 0 {
			k.seq++
			k.dispatched++
			return
		}
		if len(k.queue) == 0 || at < k.queue[0].at {
			k.seq++
			k.dispatched++
			k.now = at
			return
		}
	}
	p.state = procRunnable
	p.blockReason = "delay"
	k.schedule(at, p, nil)
	k.yieldTo() // hand the token on
	<-p.run     // wait for it again
	p.checkKill()
}

// park blocks the process without scheduling a wakeup; something else must
// eventually call unpark. reason appears in deadlock reports.
func (p *Proc) park(reason string) {
	p.checkKill()
	p.state = procBlocked
	p.blockReason = reason
	p.k.yieldTo()
	<-p.run
	p.checkKill()
}

// Park blocks the process without scheduling a wakeup; something else
// must eventually call Unpark. reason appears in deadlock reports. The
// exported form exists for engines outside the package (the PDES PCIe
// ports) that block a requester until a response message lands.
func (p *Proc) Park(reason string) { p.park(reason) }

// Unpark schedules a parked process to resume at the current simulated
// time. It must be called from kernel context on the process's own
// kernel (another process's body or a callback).
func (p *Proc) Unpark() { p.unpark() }

// Kill aborts the process with err: at its next resume point (park
// wakeup, Delay expiry, or first dispatch for a process that has not
// started) it panics with err instead of continuing. A blocked process
// is woken immediately, so a rank parked forever on a lost peer unwinds
// at the kill cycle. The panic unwinds the process body through its
// deferred handlers — a body that recovers the exact err value turns
// the kill into a normal return; otherwise runBody swallows it, so a
// kill never aborts the kernel run. Killing a finished process is a
// no-op; a second Kill keeps the first error. Must be called from
// kernel context (another process's body or a callback) on the
// process's own kernel.
func (p *Proc) Kill(err error) {
	if err == nil {
		panic("sim: Kill with nil error")
	}
	if p.state == procDone || p.killErr != nil {
		return
	}
	p.killErr = err
	if p.state == procBlocked {
		p.unpark()
	}
}

// checkKill delivers a pending kill at a resume point.
func (p *Proc) checkKill() {
	if p.killErr != nil {
		panic(p.killErr)
	}
}

// unpark schedules p to resume at the current simulated time. It must be
// called from kernel context (another process's body or a callback).
func (p *Proc) unpark() {
	if p.state != procBlocked {
		panic("sim: unpark of a process in state " + p.state.String())
	}
	p.state = procRunnable
	p.k.schedule(p.k.now, p, nil)
}

// NextEventAt reports the timestamp of the earliest pending event, or
// false if the queue is empty. A cancelled-but-undiscarded event may
// make the reported time earlier than the first event that will really
// dispatch; callers (the PDES window calculation) only need a lower
// bound, which this is.
func (k *Kernel) NextEventAt() (Cycles, bool) {
	if k.head < len(k.bucket) {
		return k.now, true
	}
	if len(k.queue) == 0 {
		return 0, false
	}
	return k.queue[0].at, true
}

// DeadlockError returns the blocked-process diagnostic Run would
// produce, or nil if no live processes remain. Engines that coordinate
// several kernels through bounded RunUntil windows (sim.PDES) call it
// once global progress stops, since RunUntil itself never reports
// deadlock.
func (k *Kernel) DeadlockError() error {
	if k.live == 0 {
		return nil
	}
	return k.deadlockError()
}
