// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a set of processes — goroutines that model simulated
// agents such as processor cores, host daemon threads or DMA engines.
// Exactly one process executes at any instant; a process runs until it
// yields by advancing the simulated clock (Delay), blocking on a Cond, or
// finishing. Events scheduled for the same cycle are executed in the order
// they were scheduled, so a simulation run is fully deterministic and
// repeatable regardless of Go scheduler behaviour.
//
// Time is measured in Cycles. The interpretation of a cycle is up to the
// user; the vSCC model uses core clock cycles of the 533 MHz P54C cores.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Cycles is a point in, or a span of, simulated time.
type Cycles uint64

// event is a single entry in the kernel's event queue. Exactly one of p or
// fn is non-nil: p resumes a blocked process, fn runs a callback inline.
type event struct {
	at  Cycles
	seq uint64
	p   *Proc
	fn  func()
}

// eventHeap orders events by (time, sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procNew procState = iota
	procRunnable
	procRunning
	procBlocked
	procDone
)

func (s procState) String() string {
	switch s {
	case procNew:
		return "new"
	case procRunnable:
		return "runnable"
	case procRunning:
		return "running"
	case procBlocked:
		return "blocked"
	case procDone:
		return "done"
	}
	return "invalid"
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; create one with NewKernel.
type Kernel struct {
	now    Cycles
	seq    uint64
	queue  eventHeap
	procs  []*Proc
	yield  chan struct{} // signalled by the running process when it yields
	live   int           // processes not yet done
	panics []error

	// stopped is set by Stop; Run drains no further events once set.
	stopped bool
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Cycles { return k.now }

// Stop makes Run return after the currently executing event completes.
// It may be called from process context or from a callback.
func (k *Kernel) Stop() { k.stopped = true }

// Proc is a simulated process. Methods on Proc must only be called from
// within the process's own body function.
type Proc struct {
	k      *Kernel
	name   string
	state  procState
	resume chan struct{}
	body   func(*Proc)
	daemon bool

	// blockReason is a human-readable description of what the process is
	// waiting for; it appears in deadlock reports.
	blockReason string
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Cycles { return p.k.now }

// Spawn creates a process and schedules it to start at the current
// simulated time. It is safe to call before Run and from within process
// bodies or callbacks.
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	return k.SpawnAt(k.now, name, body)
}

// SpawnAt creates a process that starts at time at (which must not be in
// the past).
func (k *Kernel) SpawnAt(at Cycles, name string, body func(*Proc)) *Proc {
	if at < k.now {
		panic(fmt.Sprintf("sim: SpawnAt(%d) in the past (now %d)", at, k.now))
	}
	p := &Proc{k: k, name: name, state: procNew, resume: make(chan struct{}), body: body}
	k.procs = append(k.procs, p)
	k.live++
	k.schedule(at, p, nil)
	return p
}

// SpawnDaemon creates a service process (for example a device forwarder
// thread) that is expected to block forever once the real work drains:
// it does not count toward deadlock detection, and Run returns normally
// while daemons are still blocked.
func (k *Kernel) SpawnDaemon(name string, body func(*Proc)) *Proc {
	p := k.SpawnAt(k.now, name, body)
	p.daemon = true
	k.live--
	return p
}

// At schedules fn to run as a callback at time at. Callbacks run to
// completion on the kernel's own goroutine and must not block.
func (k *Kernel) At(at Cycles, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: At(%d) in the past (now %d)", at, k.now))
	}
	k.schedule(at, nil, fn)
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Cycles, fn func()) { k.At(k.now+d, fn) }

func (k *Kernel) schedule(at Cycles, p *Proc, fn func()) {
	k.seq++
	heap.Push(&k.queue, event{at: at, seq: k.seq, p: p, fn: fn})
}

// Run executes events until the queue empties, Stop is called, or no
// runnable work remains. It returns an error if live processes remain
// blocked when the queue drains (a deadlock) or if a process panicked.
func (k *Kernel) Run() error {
	for len(k.queue) > 0 && !k.stopped {
		e := heap.Pop(&k.queue).(event)
		if e.at < k.now {
			panic("sim: event queue went backwards")
		}
		k.now = e.at
		if e.fn != nil {
			e.fn()
			continue
		}
		p := e.p
		switch p.state {
		case procDone:
			continue // stale wakeup for a finished process
		case procNew:
			p.state = procRunning
			go k.runBody(p)
		case procBlocked, procRunnable:
			p.state = procRunning
			p.resume <- struct{}{}
		default:
			panic("sim: resuming a process in state " + p.state.String())
		}
		<-k.yield
		if len(k.panics) > 0 {
			return k.panics[0]
		}
	}
	if k.stopped {
		return nil
	}
	if k.live > 0 {
		return k.deadlockError()
	}
	return nil
}

// RunFor executes events up to and including time k.Now()+d, then returns.
// Unlike Run, remaining blocked processes are not treated as a deadlock.
func (k *Kernel) RunFor(d Cycles) error { return k.RunUntil(k.now + d) }

// RunUntil executes events with timestamps <= t.
func (k *Kernel) RunUntil(t Cycles) error {
	for len(k.queue) > 0 && !k.stopped && k.queue[0].at <= t {
		e := heap.Pop(&k.queue).(event)
		k.now = e.at
		if e.fn != nil {
			e.fn()
			continue
		}
		p := e.p
		switch p.state {
		case procDone:
			continue
		case procNew:
			p.state = procRunning
			go k.runBody(p)
		case procBlocked, procRunnable:
			p.state = procRunning
			p.resume <- struct{}{}
		default:
			panic("sim: resuming a process in state " + p.state.String())
		}
		<-k.yield
		if len(k.panics) > 0 {
			return k.panics[0]
		}
	}
	if k.now < t && !k.stopped {
		k.now = t
	}
	return nil
}

func (k *Kernel) runBody(p *Proc) {
	defer func() {
		if r := recover(); r != nil {
			k.panics = append(k.panics, fmt.Errorf("sim: process %q panicked: %v", p.name, r))
		}
		p.state = procDone
		if !p.daemon {
			k.live--
		}
		k.yield <- struct{}{}
	}()
	p.body(p)
}

// deadlockError builds a report naming every still-blocked process.
func (k *Kernel) deadlockError() error {
	var names []string
	for _, p := range k.procs {
		if p.daemon {
			continue
		}
		if p.state == procBlocked || p.state == procNew || p.state == procRunnable {
			names = append(names, fmt.Sprintf("%s (%s: %s)", p.name, p.state, p.blockReason))
		}
	}
	sort.Strings(names)
	return fmt.Errorf("sim: deadlock — %d process(es) blocked with empty event queue: %v", len(names), names)
}

// Delay advances the process by d cycles of simulated time. A Delay of
// zero yields to other work scheduled at the current instant.
func (p *Proc) Delay(d Cycles) {
	k := p.k
	p.state = procRunnable
	p.blockReason = "delay"
	k.schedule(k.now+d, p, nil)
	k.yield <- struct{}{}
	<-p.resume
}

// park blocks the process without scheduling a wakeup; something else must
// eventually call unpark. reason appears in deadlock reports.
func (p *Proc) park(reason string) {
	p.state = procBlocked
	p.blockReason = reason
	p.k.yield <- struct{}{}
	<-p.resume
}

// unpark schedules p to resume at the current simulated time. It must be
// called from kernel context (another process's body or a callback).
func (p *Proc) unpark() {
	if p.state != procBlocked {
		panic("sim: unpark of a process in state " + p.state.String())
	}
	p.state = procRunnable
	p.k.schedule(p.k.now, p, nil)
}
