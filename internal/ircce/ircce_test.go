package ircce

import (
	"bytes"
	"testing"
	"testing/quick"

	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
)

func newSession(t testing.TB, n int, opts ...rcce.Option) *rcce.Session {
	t.Helper()
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, err := rcce.LinearPlaces([]*scc.Chip{chip}, n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rcce.NewSession(k, []*scc.Chip{chip}, places, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*13 + seed
	}
	return b
}

func TestPipelinedRoundTrip(t *testing.T) {
	for _, size := range []int{1, 100, 4096, 4097, 8192, 40000} {
		size := size
		s := newSession(t, 2, rcce.WithProtocol(&PipelinedProtocol{}))
		msg := pattern(size, byte(size))
		got := make([]byte, size)
		err := s.Run(func(r *rcce.Rank) {
			if r.ID() == 0 {
				r.Send(1, msg)
			} else {
				r.Recv(0, got)
			}
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("size %d: payload corrupted", size)
		}
	}
}

func TestPipelinedRepeatedMessages(t *testing.T) {
	// Counters run across messages; 300+ packets force the mod-256 wrap.
	s := newSession(t, 2, rcce.WithProtocol(&PipelinedProtocol{Threshold: 1024}))
	const rounds = 40
	const size = 10 * 1024 // 10 packets per message -> 400 packets total
	err := s.Run(func(r *rcce.Rank) {
		for i := 0; i < rounds; i++ {
			if r.ID() == 0 {
				r.Send(1, pattern(size, byte(i)))
			} else {
				got := make([]byte, size)
				r.Recv(0, got)
				if !bytes.Equal(got, pattern(size, byte(i))) {
					t.Errorf("round %d corrupted", i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedInterleavesPutAndGet(t *testing.T) {
	// The defining property of Fig. 2b: put of packet i+1 overlaps get of
	// packet i.
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, _ := rcce.LinearPlaces([]*scc.Chip{chip}, 2)
	tl := sim.NewTimeline(k)
	s, err := rcce.NewSession(k, []*scc.Chip{chip}, places,
		rcce.WithProtocol(&PipelinedProtocol{Threshold: 1024}),
		rcce.WithTimeline(tl))
	if err != nil {
		t.Fatal(err)
	}
	msg := pattern(32*1024, 1)
	err = s.Run(func(r *rcce.Rank) {
		if r.ID() == 0 {
			r.Send(1, msg)
		} else {
			r.Recv(0, make([]byte, len(msg)))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tl.Overlap("put", "get") {
		t.Error("pipelined protocol did not interleave put and get")
	}
}

func TestPipelinedFasterThanBlockingForLargeMessages(t *testing.T) {
	measure := func(p rcce.Protocol) sim.Cycles {
		var opts []rcce.Option
		if p != nil {
			opts = append(opts, rcce.WithProtocol(p))
		}
		s := newSession(t, 2, opts...)
		msg := pattern(128*1024, 7)
		var done sim.Cycles
		err := s.Run(func(r *rcce.Rank) {
			if r.ID() == 0 {
				r.Send(1, msg)
			} else {
				r.Recv(0, make([]byte, len(msg)))
				done = r.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	blocking := measure(nil)
	pipelined := measure(&PipelinedProtocol{})
	if pipelined >= blocking {
		t.Errorf("pipelined (%d cycles) not faster than blocking (%d) for 128KB", pipelined, blocking)
	}
}

func TestPacketBytesClipping(t *testing.T) {
	pp := &PipelinedProtocol{}
	pk := pp.packetBytes()
	if pk <= 0 || pk%32 != 0 {
		t.Errorf("default packet %d not line aligned", pk)
	}
	if pk > rcce.PayloadBytes/2 {
		t.Errorf("packet %d exceeds half the payload area (%d)", pk, rcce.PayloadBytes/2)
	}
	big := &PipelinedProtocol{Threshold: 1 << 20}
	if big.packetBytes() > rcce.PayloadBytes/2 {
		t.Error("oversized threshold not clipped")
	}
	tiny := &PipelinedProtocol{Threshold: 1}
	if tiny.packetBytes() != 32 {
		t.Errorf("tiny threshold = %d, want 32", tiny.packetBytes())
	}
}

func TestIsendIrecvBasic(t *testing.T) {
	s := newSession(t, 2)
	msg := pattern(5000, 3)
	got := make([]byte, len(msg))
	err := s.Run(func(r *rcce.Rank) {
		eng := New(r)
		if r.ID() == 0 {
			q, err := eng.Isend(1, msg)
			if err != nil {
				t.Error(err)
				return
			}
			eng.Wait(q)
		} else {
			q, err := eng.Irecv(0, got)
			if err != nil {
				t.Error(err)
				return
			}
			eng.Wait(q)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("isend/irecv corrupted payload")
	}
}

func TestIsendReturnsBeforeCompletion(t *testing.T) {
	// Non-blocking semantics: Isend of a large message returns while the
	// receiver has not even posted its receive.
	s := newSession(t, 2)
	var isendReturned, recvPosted sim.Cycles
	msg := pattern(60*1024, 1)
	got := make([]byte, len(msg))
	err := s.Run(func(r *rcce.Rank) {
		eng := New(r)
		if r.ID() == 0 {
			q, _ := eng.Isend(1, msg)
			isendReturned = r.Now()
			eng.Wait(q)
		} else {
			r.Ctx().Delay(2_000_000)
			recvPosted = r.Now()
			q, _ := eng.Irecv(0, got)
			eng.Wait(q)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if isendReturned >= recvPosted {
		t.Errorf("isend returned at %d, after recv posted at %d — not non-blocking", isendReturned, recvPosted)
	}
	if !bytes.Equal(got, msg) {
		t.Error("payload corrupted")
	}
}

func TestBidirectionalExchangeNoDeadlock(t *testing.T) {
	// The motivating use case: both ranks isend+irecv simultaneously —
	// blocking sends would deadlock for multi-chunk messages.
	s := newSession(t, 2)
	const size = 30 * 1024
	got := [2][]byte{make([]byte, size), make([]byte, size)}
	err := s.Run(func(r *rcce.Rank) {
		eng := New(r)
		me := r.ID()
		peer := 1 - me
		sq, _ := eng.Isend(peer, pattern(size, byte(me)))
		rq, _ := eng.Irecv(peer, got[me])
		eng.WaitAll(sq, rq)
	})
	if err != nil {
		t.Fatal(err)
	}
	for me := 0; me < 2; me++ {
		if !bytes.Equal(got[me], pattern(size, byte(1-me))) {
			t.Errorf("rank %d exchange corrupted", me)
		}
	}
}

func TestMultipleRequestsFIFOPerPeer(t *testing.T) {
	s := newSession(t, 2)
	sizes := []int{100, 9000, 32, 20000}
	got := make([][]byte, len(sizes))
	err := s.Run(func(r *rcce.Rank) {
		eng := New(r)
		if r.ID() == 0 {
			var reqs []*Request
			for i, sz := range sizes {
				q, _ := eng.Isend(1, pattern(sz, byte(i)))
				reqs = append(reqs, q)
			}
			eng.WaitAll(reqs...)
		} else {
			var reqs []*Request
			for i, sz := range sizes {
				got[i] = make([]byte, sz)
				q, _ := eng.Irecv(0, got[i])
				reqs = append(reqs, q)
			}
			eng.WaitAll(reqs...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, sz := range sizes {
		if !bytes.Equal(got[i], pattern(sz, byte(i))) {
			t.Errorf("message %d corrupted", i)
		}
	}
}

func TestTestPolling(t *testing.T) {
	s := newSession(t, 2)
	msg := pattern(1000, 5)
	got := make([]byte, len(msg))
	err := s.Run(func(r *rcce.Rank) {
		eng := New(r)
		if r.ID() == 0 {
			r.Ctx().Delay(100_000)
			q, _ := eng.Isend(1, msg)
			eng.Wait(q)
		} else {
			q, _ := eng.Irecv(0, got)
			polls := 0
			for !eng.Test(q) {
				polls++
				r.Ctx().Delay(10_000) // do "useful work" between tests
			}
			if polls == 0 {
				t.Error("Test completed before the sender even started")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("payload corrupted")
	}
}

func TestZeroSizeRequests(t *testing.T) {
	s := newSession(t, 2)
	err := s.Run(func(r *rcce.Rank) {
		eng := New(r)
		if r.ID() == 0 {
			q, err := eng.Isend(1, nil)
			if err != nil || !q.Done() {
				t.Errorf("zero-size isend: err=%v done=%v", err, q.Done())
			}
		} else {
			q, err := eng.Irecv(0, nil)
			if err != nil || !q.Done() {
				t.Errorf("zero-size irecv: err=%v done=%v", err, q.Done())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// No stray flags: a follow-up normal message must still work.
}

func TestSelfRequestRejected(t *testing.T) {
	s := newSession(t, 2)
	err := s.Run(func(r *rcce.Rank) {
		if r.ID() != 0 {
			return
		}
		eng := New(r)
		if _, err := eng.Isend(0, []byte{1}); err == nil {
			t.Error("isend to self should error")
		}
		if _, err := eng.Irecv(0, make([]byte, 1)); err == nil {
			t.Error("irecv from self should error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPendingCount(t *testing.T) {
	s := newSession(t, 3)
	err := s.Run(func(r *rcce.Rank) {
		eng := New(r)
		switch r.ID() {
		case 0:
			q1, _ := eng.Isend(1, pattern(20000, 1))
			q2, _ := eng.Isend(2, pattern(20000, 2))
			if eng.Pending() == 0 {
				t.Error("pending should be non-zero with unmatched sends")
			}
			eng.WaitAll(q1, q2)
			if eng.Pending() != 0 {
				t.Errorf("pending = %d after waitall", eng.Pending())
			}
		case 1:
			r.Ctx().Delay(50_000)
			r.Recv(0, make([]byte, 20000))
		case 2:
			r.Ctx().Delay(90_000)
			r.Recv(0, make([]byte, 20000))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEngineInteropWithBlockingPeer(t *testing.T) {
	// The engine speaks the same wire protocol as blocking Send/Recv, so
	// one side may use requests while the other blocks.
	s := newSession(t, 2)
	msg := pattern(12345, 9)
	got := make([]byte, len(msg))
	err := s.Run(func(r *rcce.Rank) {
		if r.ID() == 0 {
			eng := New(r)
			q, _ := eng.Isend(1, msg)
			eng.Wait(q)
		} else {
			r.Recv(0, got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("interop payload corrupted")
	}
}

// Property: random bidirectional request batches complete and round-trip
// intact.
func TestPropertyRequestBatches(t *testing.T) {
	f := func(sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 {
			return true
		}
		if len(sizesRaw) > 6 {
			sizesRaw = sizesRaw[:6]
		}
		sizes := make([]int, len(sizesRaw))
		for i, s := range sizesRaw {
			sizes[i] = int(s)%15000 + 1
		}
		s := newSession(t, 2)
		ok := true
		err := s.Run(func(r *rcce.Rank) {
			eng := New(r)
			me := r.ID()
			peer := 1 - me
			var reqs []*Request
			bufs := make([][]byte, len(sizes))
			for i, sz := range sizes {
				sq, _ := eng.Isend(peer, pattern(sz, byte(i+me)))
				bufs[i] = make([]byte, sz)
				rq, _ := eng.Irecv(peer, bufs[i])
				reqs = append(reqs, sq, rq)
			}
			eng.WaitAll(reqs...)
			for i, sz := range sizes {
				if !bytes.Equal(bufs[i], pattern(sz, byte(i+peer))) {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
