// Package ircce is a Go port of iRCCE, the RWTH Aachen non-blocking
// extension to RCCE (Clauss et al.). It contributes two things on top of
// package rcce:
//
//   - PipelinedProtocol: a blocking wire protocol that double-buffers the
//     sender's MPB so put and get operations interleave (paper Fig. 2b),
//     raising point-to-point throughput for large messages at the cost of
//     a finer synchronization granularity.
//   - Engine: non-blocking Isend/Irecv requests with cooperative progress
//     (iRCCE pushes request state machines during test/wait calls; no
//     background thread exists on the bare-metal SCC).
package ircce

import (
	"fmt"

	"vscc/internal/mem"
	"vscc/internal/rcce"
)

// DefaultThreshold is iRCCE's static pipelining packet size (paper §2.2:
// "software pipelining with a static threshold of 4 kB").
const DefaultThreshold = 4096

// PipelinedProtocol implements rcce.Protocol with the iRCCE pipelined
// scheme. The sender's MPB payload area is split into two packet slots;
// while the receiver drains slot A the sender refills slot B. Flag bytes
// carry modulo-256 packet counters instead of binary handshakes, with a
// credit window of two packets, so no flag is ever cleared and no update
// can be lost.
type PipelinedProtocol struct {
	// Threshold is the packet size in bytes; it is clipped to half the
	// MPB payload area and aligned down to cache lines. Zero means
	// DefaultThreshold.
	Threshold int

	seq map[pipeKey]*pipeSeq
}

type pipeKey struct{ me, peer int }

// pipeSeq carries the per-direction packet counters of one (me, peer)
// pair; they run forever across messages so no reset races exist.
type pipeSeq struct {
	out uint64 // packets sent to peer
	in  uint64 // packets received from peer
}

// Name implements rcce.Protocol.
func (pp *PipelinedProtocol) Name() string { return "ircce-pipelined" }

// packetBytes returns the effective packet size.
func (pp *PipelinedProtocol) packetBytes() int {
	t := pp.Threshold
	if t == 0 {
		t = DefaultThreshold
	}
	half := rcce.PayloadBytes / 2 &^ (mem.LineSize - 1)
	if t > half {
		t = half
	}
	if t < mem.LineSize {
		t = mem.LineSize
	}
	return t &^ (mem.LineSize - 1)
}

func (pp *PipelinedProtocol) state(me, peer int) *pipeSeq {
	if pp.seq == nil {
		pp.seq = make(map[pipeKey]*pipeSeq)
	}
	k := pipeKey{me, peer}
	s, ok := pp.seq[k]
	if !ok {
		s = &pipeSeq{}
		pp.seq[k] = s
	}
	return s
}

// Send implements rcce.Protocol (pipelined local put).
func (pp *PipelinedProtocol) Send(r *rcce.Rank, dest int, data []byte) {
	tl := r.Session().Timeline()
	pk := pp.packetBytes()
	st := pp.state(r.ID(), dest)
	myDev, myTile, myBase := r.MPBOf(r.ID())
	ctx := r.Ctx()
	readyOff := rcce.FlagByteAt(rcce.FlagReady, dest)
	for len(data) > 0 {
		n := len(data)
		if n > pk {
			n = pk
		}
		st.out++
		seq := st.out
		// Credit window of two slots: before filling the slot for packet
		// seq, packet seq-2 must be acknowledged. The ready byte can only
		// read seq-2 or seq-1 at this point.
		if seq > 2 {
			lo, hi := byte(seq-2), byte(seq-1)
			t0 := r.Now()
			ctx.WaitFlagFor(myTile, myBase+readyOff, func(b byte) bool { return b == lo || b == hi }, 0)
			tl.Record("sender", "waitcredit", t0, r.Now())
		}
		slotOff := int((seq - 1) % 2 * uint64(pk))
		t0 := r.Now()
		ctx.CopyPrivate(n)
		ctx.WriteMPB(myDev, myTile, myBase+slotOff, data[:n])
		ctx.FlushWCB()
		tl.Record("sender", "put", t0, r.Now())
		sink := r.Sink()
		sink.Add("ircce.packets", 1)
		sink.Observe("ircce.packet_bytes", float64(n))
		// Publish the new packet count at the receiver.
		pp.writeCounter(r, dest, rcce.FlagSent, byte(seq))
		data = data[n:]
	}
	// Blocking semantics: wait until the receiver drained everything.
	final := byte(st.out)
	t0 := r.Now()
	ctx.WaitFlagFor(myTile, myBase+readyOff, func(b byte) bool { return b == final }, 0)
	tl.Record("sender", "waitack", t0, r.Now())
}

// Recv implements rcce.Protocol (pipelined remote get).
func (pp *PipelinedProtocol) Recv(r *rcce.Rank, src int, buf []byte) {
	tl := r.Session().Timeline()
	pk := pp.packetBytes()
	st := pp.state(r.ID(), src)
	_, myTile, myBase := r.MPBOf(r.ID())
	srcDev, srcTile, srcBase := r.MPBOf(src)
	ctx := r.Ctx()
	sentOff := rcce.FlagByteAt(rcce.FlagSent, src)
	for len(buf) > 0 {
		n := len(buf)
		if n > pk {
			n = pk
		}
		st.in++
		seq := st.in
		// The sent byte reads seq (packet ready) or seq+1 (sender one
		// packet ahead inside its credit window).
		lo, hi := byte(seq), byte(seq+1)
		t0 := r.Now()
		ctx.WaitFlagFor(myTile, myBase+sentOff, func(b byte) bool { return b == lo || b == hi }, 0)
		tl.Record("receiver", "waitdata", t0, r.Now())
		slotOff := int((seq - 1) % 2 * uint64(pk))
		t0 = r.Now()
		ctx.InvalidateMPB()
		ctx.ReadMPB(srcDev, srcTile, srcBase+slotOff, buf[:n])
		ctx.CopyPrivate(n)
		tl.Record("receiver", "get", t0, r.Now())
		// Acknowledge the drained packet at the sender.
		pp.writeCounter(r, src, rcce.FlagReady, byte(seq))
		buf = buf[n:]
	}
}

// writeCounter publishes a packet counter byte into peer's flag array
// (kind 0 = sent, 1 = ready).
func (pp *PipelinedProtocol) writeCounter(r *rcce.Rank, peer, kind int, v byte) {
	dev, tile, base := r.MPBOf(peer)
	off := rcce.FlagByteAt(kind, r.ID())
	ctx := r.Ctx()
	ctx.WriteMPB(dev, tile, base+off, []byte{v})
	ctx.FlushWCB()
	r.Session().ReportFlagTraffic(r.ID())
}

// String describes the protocol configuration.
func (pp *PipelinedProtocol) String() string {
	return fmt.Sprintf("ircce-pipelined(packet=%dB)", pp.packetBytes())
}
