package ircce

import (
	"fmt"

	"vscc/internal/rcce"
)

// Engine provides iRCCE's non-blocking Isend/Irecv on top of the
// clear-based RCCE handshake. Progress is cooperative: request state
// machines advance only inside Test, Wait, WaitAll or Push — exactly like
// iRCCE on the bare-metal SCC, which has no background thread to drive
// communication.
//
// Requirements, mirroring the C library's: the session must run the
// blocking DefaultProtocol (counter-based protocols use the same flag
// bytes with incompatible semantics), blocking Send/Recv must not be
// mixed with outstanding requests to the same peer, and messages between
// a rank pair match in FIFO order (RCCE has no tags).
type Engine struct {
	r     *rcce.Rank
	sendQ map[int][]*Request
	recvQ map[int][]*Request
}

// New creates a request engine for rank r.
func New(r *rcce.Rank) *Engine {
	return &Engine{r: r, sendQ: map[int][]*Request{}, recvQ: map[int][]*Request{}}
}

// Request is one outstanding non-blocking operation.
type Request struct {
	eng  *Engine
	send bool
	peer int

	rest []byte // unsent payload (send) or unfilled buffer (recv)
	sent int    // total payload bytes for traffic reporting

	waitingAck bool // send: a chunk is in the MPB awaiting the ready flag
	done       bool
}

// Done reports completion without progressing the request.
func (q *Request) Done() bool { return q.done }

// Peer returns the remote rank.
func (q *Request) Peer() int { return q.peer }

// Isend starts a non-blocking send to dest and attempts immediate
// progress.
func (e *Engine) Isend(dest int, data []byte) (*Request, error) {
	if dest == e.r.ID() {
		return nil, fmt.Errorf("ircce: isend to self on rank %d", dest)
	}
	q := &Request{eng: e, send: true, peer: dest, rest: data, sent: len(data)}
	if len(data) == 0 { // zero-size messages complete without flag traffic
		q.done = true
		return q, nil
	}
	e.sendQ[dest] = append(e.sendQ[dest], q)
	e.Push()
	return q, nil
}

// Irecv starts a non-blocking receive from src and attempts immediate
// progress.
func (e *Engine) Irecv(src int, buf []byte) (*Request, error) {
	if src == e.r.ID() {
		return nil, fmt.Errorf("ircce: irecv from self on rank %d", src)
	}
	q := &Request{eng: e, send: false, peer: src, rest: buf}
	if len(buf) == 0 {
		q.done = true
		return q, nil
	}
	e.recvQ[src] = append(e.recvQ[src], q)
	e.Push()
	return q, nil
}

// Push advances every queue head as far as possible without blocking and
// reports whether anything progressed (iRCCE_push). Queues are visited
// in ascending peer order to keep the simulation deterministic.
func (e *Engine) Push() bool {
	progressed := false
	for _, peer := range sortedPeers(e.sendQ) {
		if e.pushQueue(e.sendQ, peer) {
			progressed = true
		}
	}
	for _, peer := range sortedPeers(e.recvQ) {
		if e.pushQueue(e.recvQ, peer) {
			progressed = true
		}
	}
	return progressed
}

func (e *Engine) pushQueue(m map[int][]*Request, peer int) bool {
	q := m[peer]
	progressed := false
	for len(q) > 0 && q[0].push() {
		progressed = true
		if q[0].done {
			q = q[1:]
		}
	}
	if len(q) > 0 && q[0].done { // stale completed head
		q = q[1:]
		progressed = true
	}
	m[peer] = q
	return progressed
}

func sortedPeers(m map[int][]*Request) []int {
	peers := make([]int, 0, len(m))
	for p, q := range m {
		if len(q) > 0 {
			peers = append(peers, p)
		}
	}
	for i := 1; i < len(peers); i++ { // insertion sort; tiny n
		for j := i; j > 0 && peers[j-1] > peers[j]; j-- {
			peers[j-1], peers[j] = peers[j], peers[j-1]
		}
	}
	return peers
}

// Test pushes progress once and reports whether the request completed
// (iRCCE_test).
func (e *Engine) Test(q *Request) bool {
	e.Push()
	return q.done
}

// Wait blocks until the request completes (iRCCE_wait), sleeping on
// local MPB changes between progress attempts.
func (e *Engine) Wait(q *Request) {
	e.WaitAll(q)
}

// WaitAll blocks until every given request completes.
func (e *Engine) WaitAll(reqs ...*Request) {
	for {
		allDone := true
		for _, q := range reqs {
			if !q.done {
				allDone = false
			}
		}
		if allDone {
			return
		}
		if e.Push() {
			continue
		}
		// Nothing progressed: every stalled head is waiting on a local
		// flag. Re-check those flags without yielding, then sleep until
		// any store lands in our tile — the only way a flag can change.
		if e.anyActionable() {
			continue
		}
		e.checkLostPeers()
		e.r.WaitAnyLocalChangeFor(0)
	}
}

// peerLossChecker is implemented by wire protocols that track device
// membership (vscc): a non-nil error means the peer's device is gone
// and transparent retry is off. WaitAll consults it before sleeping so
// a stalled engine fails deterministically instead of parking forever.
type peerLossChecker interface {
	LostPeer(r *rcce.Rank, peer int) error
}

// checkLostPeers panics with the protocol's device-loss error if any
// stalled queue head's peer sits on a lost device.
func (e *Engine) checkLostPeers() {
	ck, ok := e.r.Session().Protocol().(peerLossChecker)
	if !ok {
		return
	}
	for _, peer := range sortedPeers(e.sendQ) {
		if err := ck.LostPeer(e.r, peer); err != nil {
			panic(err)
		}
	}
	for _, peer := range sortedPeers(e.recvQ) {
		if err := ck.LostPeer(e.r, peer); err != nil {
			panic(err)
		}
	}
}

// anyActionable peeks (without yielding) whether any queue head could
// progress; it closes the race between the last poll and going to sleep.
func (e *Engine) anyActionable() bool {
	for _, peer := range sortedPeers(e.sendQ) {
		h := e.sendQ[peer][0]
		if !h.waitingAck || e.r.PeekReady(peer) {
			return true
		}
	}
	for _, peer := range sortedPeers(e.recvQ) {
		if e.r.PeekSent(peer) {
			return true
		}
	}
	return false
}

// Pending reports the number of incomplete requests.
func (e *Engine) Pending() int {
	n := 0
	for _, q := range e.sendQ {
		n += len(q)
	}
	for _, q := range e.recvQ {
		n += len(q)
	}
	return n
}

// push advances one request as far as possible; it returns true if any
// step was taken.
func (q *Request) push() bool {
	if q.done {
		return false
	}
	r := q.eng.r
	ctx := r.Ctx()
	progressed := false
	if q.send {
		myDev, myTile, myBase := r.MPBOf(r.ID())
		for {
			if q.waitingAck {
				if !r.PeekReady(q.peer) {
					return progressed
				}
				ctx.Delay(ctx.Params().FlagPollCycles)
				r.ClearReady(q.peer)
				q.waitingAck = false
				progressed = true
				if len(q.rest) == 0 {
					q.done = true
					r.Session().ReportTraffic(r.ID(), q.peer, q.sent)
					return true
				}
			}
			n := len(q.rest)
			if n > rcce.ChunkBytes {
				n = rcce.ChunkBytes
			}
			ctx.CopyPrivate(n)
			ctx.WriteMPB(myDev, myTile, myBase, q.rest[:n])
			ctx.FlushWCB()
			r.SignalSent(q.peer)
			q.rest = q.rest[n:]
			q.waitingAck = true
			progressed = true
		}
	}
	srcDev, srcTile, srcBase := r.MPBOf(q.peer)
	for {
		if len(q.rest) == 0 {
			q.done = true
			return true
		}
		if !r.PeekSent(q.peer) {
			return progressed
		}
		ctx.Delay(ctx.Params().FlagPollCycles)
		r.ClearSent(q.peer)
		n := len(q.rest)
		if n > rcce.ChunkBytes {
			n = rcce.ChunkBytes
		}
		ctx.InvalidateMPB()
		ctx.ReadMPB(srcDev, srcTile, srcBase, q.rest[:n])
		ctx.CopyPrivate(n)
		r.SignalReady(q.peer)
		q.rest = q.rest[n:]
		progressed = true
	}
}
