package taskrt

import "fmt"

// BuildStencil populates rt with an iterated 5-point Jacobi stencil over
// a (strips·rows)×wdt float64 grid decomposed into horizontal strips,
// with halo exchange expressed purely as region dataflow. The grid is
// double buffered: each strip s and parity p has a body region plus
// duplicated top/bot boundary-row regions, and the sweep task for strip
// s at iteration t reads its own parity-p body and the adjacent strips'
// parity-p edge rows, then writes the parity-q set — so WAR hazards
// between neighbours never arise and the dependence tracker sees the
// classic halo pattern (each sweep waits on at most three producers).
//
// The edge regions are wdt·8 bytes (small — direct or cached-MPB class
// depending on scheme) while bodies are rows·wdt·8 bytes, so one
// workload exercises several move classes at once. Strip s is owned by
// rank s % workers. Cells outside the grid read as zero.
func BuildStencil(rt *Runtime, wdt, rows, strips, iters, workers int) error {
	if wdt <= 0 || rows < 2 || strips <= 0 || iters < 0 || workers <= 0 {
		return fmt.Errorf("taskrt: stencil wdt=%d rows=%d strips=%d iters=%d workers=%d",
			wdt, rows, strips, iters, workers)
	}
	type set struct{ body, top, bot *Region }
	grids := [2][]set{}
	for p := 0; p < 2; p++ {
		grids[p] = make([]set, strips)
		for s := 0; s < strips; s++ {
			var g set
			var err error
			if g.body, err = rt.Region(fmt.Sprintf("st.body.%d.%d", p, s), rows*wdt*8, s%workers); err != nil {
				return err
			}
			if g.top, err = rt.Region(fmt.Sprintf("st.top.%d.%d", p, s), wdt*8, s%workers); err != nil {
				return err
			}
			if g.bot, err = rt.Region(fmt.Sprintf("st.bot.%d.%d", p, s), wdt*8, s%workers); err != nil {
				return err
			}
			grids[p][s] = g
		}
	}
	// Seed parity 0 with a deterministic pattern; parity 1 starts zero
	// and is fully produced by the first sweep.
	for s := 0; s < strips; s++ {
		s, g := s, grids[0][s]
		if _, err := rt.AddTask(fmt.Sprintf("st.init.%d", s), float64(rows*wdt),
			[]Access{Out(g.body), Out(g.top), Out(g.bot)}, func(tc *TaskCtx) {
				body, top, bot := tc.Data(g.body), tc.Data(g.top), tc.Data(g.bot)
				for r := 0; r < rows; r++ {
					for c := 0; c < wdt; c++ {
						v := float64((splitmix64(uint64(s*rows+r)<<20|uint64(c))%1000)+1) / 1000
						putF(body, r*wdt+c, v)
					}
				}
				copy(top, body[:wdt*8])
				copy(bot, body[(rows-1)*wdt*8:])
			}); err != nil {
			return err
		}
	}
	for t := 0; t < iters; t++ {
		p, q := t%2, 1-t%2
		for s := 0; s < strips; s++ {
			s, in, out := s, grids[p][s], grids[q][s]
			accs := []Access{Out(out.body), Out(out.top), Out(out.bot), In(in.body)}
			var above, below *Region
			if s > 0 {
				above = grids[p][s-1].bot
				accs = append(accs, In(above))
			}
			if s < strips-1 {
				below = grids[p][s+1].top
				accs = append(accs, In(below))
			}
			if _, err := rt.AddTask(fmt.Sprintf("st.sweep.%d.%d", t, s), float64(5*rows*wdt),
				accs, func(tc *TaskCtx) {
					src, dst := tc.Data(in.body), tc.Data(out.body)
					at := func(r, c int) float64 {
						if c < 0 || c >= wdt {
							return 0
						}
						switch {
						case r < 0:
							if above == nil {
								return 0
							}
							return getF(tc.Data(above), c)
						case r >= rows:
							if below == nil {
								return 0
							}
							return getF(tc.Data(below), c)
						}
						return getF(src, r*wdt+c)
					}
					for r := 0; r < rows; r++ {
						for c := 0; c < wdt; c++ {
							v := (at(r, c) + at(r-1, c) + at(r+1, c) + at(r, c-1) + at(r, c+1)) / 5
							putF(dst, r*wdt+c, v)
						}
					}
					copy(tc.Data(out.top), dst[:wdt*8])
					copy(tc.Data(out.bot), dst[(rows-1)*wdt*8:])
				}); err != nil {
				return err
			}
		}
	}
	return nil
}
