package taskrt

import "testing"

// FuzzParseSpec drives the task-spec grammar with arbitrary text,
// mirroring the internal/fault ParseSpec fuzz setup: the parser must
// never panic, every accepted spec must render to a canonical form that
// re-parses to the identical spec (round trip), and every accepted spec
// must build and serially execute without error — the parser's
// validation is the only gate between untrusted text and the runtime.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("# comment only\n")
	f.Add("region a 64\nregion b 128 owner=1\ntask t0 out=a flops=10\ntask t1 in=a inout=b\n")
	f.Add("region r 65536\ntask big inout=r\ntask after in=r\n")
	f.Add("region x 1 owner=255\ntask t in=x out=x\n") // dup use: reject
	f.Add("region x 0\n")                              // zero size: reject
	f.Add("region x 65537\n")                          // over cap: reject
	f.Add("task t in=missing\n")                       // unknown region
	f.Add("region weird-name.0_v2 32\ntask t_0 inout=weird-name.0_v2 flops=0.5\n")
	f.Add("bogus directive\nregion a 8\n")
	f.Add("region a 8 owner=-1\n")
	f.Add("task\n")
	f.Fuzz(func(t *testing.T, src string) {
		sp, err := ParseSpec(src)
		if err != nil {
			return
		}
		// Round trip: canonical form re-parses to the same canonical form.
		canon := sp.String()
		sp2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		if sp2.String() != canon {
			t.Fatalf("canonical form not a fixed point:\n%q\n%q", canon, sp2.String())
		}
		// Every accepted spec is runnable: build both a runtime and the
		// serial reference; the hashes must agree between two builds.
		ra := New(Config{})
		if err := sp.Build(ra, 4); err != nil {
			t.Fatalf("accepted spec fails Build: %v\n%s", err, canon)
		}
		if err := ra.RunSerial(4); err != nil {
			t.Fatalf("accepted spec fails RunSerial: %v\n%s", err, canon)
		}
		rb := New(Config{})
		if err := sp2.Build(rb, 4); err != nil {
			t.Fatalf("re-parsed spec fails Build: %v", err)
		}
		if err := rb.RunSerial(4); err != nil {
			t.Fatalf("re-parsed spec fails RunSerial: %v", err)
		}
		if ra.StateHash() != rb.StateHash() {
			t.Fatalf("round-tripped spec executes differently")
		}
	})
}
