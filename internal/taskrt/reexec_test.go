package taskrt

import (
	"fmt"
	"testing"

	"vscc/internal/fault"
	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

// The task re-execution battery: with Config.Reexec armed, tasks homed
// on a crashed device are re-issued on survivors from the last committed
// region versions, and the run converges to the fault-free StateHash
// WITHOUT waiting for the device to rejoin. The outage below is 20M
// cycles long precisely so "converged before rejoin" is unambiguous:
// the stencil finishes in well under 1M cycles when re-execution works.

// reexecSpec crashes device 1 at 80k and keeps it down for 20M cycles.
const reexecSpec = "seed=5,devcrash=80000:1:20000000,ckpt=30000,devretry=1"

// reexecDownEnd is the earliest cycle the crashed device can be up
// again: crash + drain + down window (journal replay only adds to it).
const reexecDownEnd = sim.Cycles(80_000) + fault.DefaultDrainCycles + sim.Cycles(20_000_000)

// reexecRun executes the stencil with a sink attached and re-execution
// set per the flag. Membership is only wired into the runtime when the
// system built one (a typed-nil interface would defeat the nil gate).
func reexecRun(t *testing.T, spec string, reexec bool) (*Runtime, *vscc.System, *trace.Sink, sim.Cycles) {
	t.Helper()
	fcfg, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	if fcfg != nil && reexec {
		// Re-execution needs fail-fast waits: DeviceRetry off turns a
		// wait on a lost device into an rcce.ErrDeviceLost panic the
		// runtime absorbs at the task boundary, instead of parking the
		// survivor in AwaitUp until the rejoin.
		fcfg.Recovery = fault.Recovery{WaitBudget: 100_000, MaxWaitRetries: 8}
	}
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: vscc.SchemeVDMA, Faults: fcfg})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sink := trace.NewSink(k)
	sys.Instrument(sink)
	session, err := sys.NewSessionAt([]rcce.Place{
		{Dev: 0, Core: 0}, {Dev: 1, Core: 0}, {Dev: 0, Core: 1}, {Dev: 1, Core: 1},
	}, rcce.WithSink(sink))
	if err != nil {
		t.Fatalf("NewSessionAt: %v", err)
	}
	cfg := Config{Scheme: vscc.SchemeVDMA, Reexec: reexec}
	if sys.Membership != nil {
		cfg.Membership = sys.Membership
	}
	rt := New(cfg)
	if err := Build(rt, "stencil", 4, 6, 4); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := rt.Run(session); err != nil {
		t.Fatalf("Run under %q: %v", spec, err)
	}
	return rt, sys, sink, k.Now()
}

// reexecDigest renders everything observable about one re-execution
// run, for byte-identity comparison across reruns.
func reexecDigest(rt *Runtime, sys *vscc.System, sink *trace.Sink, end sim.Cycles) string {
	s := rt.Stats()
	return faultDigest(rt, sys, end) + fmt.Sprintf(
		"done=%d reexecs=%d latedrops=%d rehomes=%d abandons=%d\nctr reexec=%d reexec.d1=%d rehome=%d late=%d\n",
		rt.CompletedAt(), s.Reexecs, s.LateDrops, s.Rehomes, s.Abandons,
		sink.CounterValue("taskrt.reexec"), sink.CounterValue("taskrt.reexec.d1"),
		sink.CounterValue("taskrt.rehome"), sink.CounterValue("taskrt.late_drop"))
}

// TestTaskrtReexecConvergesBeforeRejoin is the acceptance test for task
// re-execution: the stencil loses half its ranks to a 20M-cycle outage,
// yet the surviving ranks finish every task — byte-identical to both
// the fault-free parallel run and the serial reference — while the
// device is still down. The whole record reruns byte-identically.
func TestTaskrtReexecConvergesBeforeRejoin(t *testing.T) {
	cleanRt, _, _, _ := reexecRun(t, "", true)
	want := cleanRt.StateHash()

	rt, sys, sink, end := reexecRun(t, reexecSpec, true)
	if got := rt.StateHash(); got != want {
		t.Errorf("re-executed run diverged from the fault-free hash")
	}
	done := rt.CompletedAt()
	if done == 0 {
		t.Fatal("CompletedAt = 0; completion cycle never recorded")
	}
	if done >= reexecDownEnd {
		t.Errorf("last task committed at %d, after the earliest rejoin %d; re-execution stalled until rejoin",
			done, reexecDownEnd)
	}
	s := rt.Stats()
	if s.Reexecs == 0 {
		t.Error("Reexecs = 0; no task was re-issued off the lost device")
	}
	if got := sink.CounterValue("taskrt.reexec"); got != int64(s.Reexecs) {
		t.Errorf("taskrt.reexec counter = %d, stats say %d", got, s.Reexecs)
	}
	if got := sink.CounterValue("taskrt.reexec.d1"); got != int64(s.Reexecs) {
		t.Errorf("taskrt.reexec.d1 = %d, want %d (every lost task was homed on device 1)", got, s.Reexecs)
	}
	if got := sys.Injector.Stat("inject.devcrash"); got != 1 {
		t.Errorf("inject.devcrash = %d, want 1", got)
	}

	// Serial reference: same decomposition, no runtime at all.
	ref := New(Config{})
	if err := Build(ref, "stencil", 4, 6, 4); err != nil {
		t.Fatalf("Build(ref): %v", err)
	}
	if err := ref.RunSerial(4); err != nil {
		t.Fatalf("RunSerial: %v", err)
	}
	if rt.StateHash() != ref.StateHash() {
		t.Error("re-executed stencil diverged from the serial reference")
	}

	first := reexecDigest(rt, sys, sink, end)
	rt2, sys2, sink2, end2 := reexecRun(t, reexecSpec, true)
	if second := reexecDigest(rt2, sys2, sink2, end2); second != first {
		t.Errorf("re-execution not deterministic across reruns:\nfirst:\n%s\nrerun:\n%s", first, second)
	}
}

// TestTaskrtReexecStaleDuplicateDropped pins the first bug the chaos
// campaign found (seed 1, point 17, shrunk to this single fault): a
// crash at 40k catches a task mid-flight whose executor — on the lost
// device but never truly frozen, since fail-fast waits only panic at
// chip operations — finishes the task after reclaim already re-issued
// it. The duplicate queue entry must be dropped at dispatch, not
// panic the worker.
func TestTaskrtReexecStaleDuplicateDropped(t *testing.T) {
	const spec = "seed=11,devcrash=40000:1:250000,ckpt=30000,devretry=1"
	cleanRt, _, _, _ := reexecRun(t, "", true)
	rt, _, sink, _ := reexecRun(t, spec, true)
	if rt.StateHash() != cleanRt.StateHash() {
		t.Error("stale-duplicate run diverged from the fault-free hash")
	}
	s := rt.Stats()
	if s.StalePops == 0 {
		t.Error("StalePops = 0; the duplicate dispatch this spec provokes was not recorded")
	}
	if got := sink.CounterValue("taskrt.stale_pop"); got != int64(s.StalePops) {
		t.Errorf("taskrt.stale_pop counter = %d, stats say %d", got, s.StalePops)
	}
}

// TestTaskrtReexecDisabledStallsUntilRejoin pins the contrast: the same
// outage without Reexec leaves tasks frozen with their executors, so
// the last commit cannot predate the rejoin — and the default path must
// record zero re-execution activity.
func TestTaskrtReexecDisabledStallsUntilRejoin(t *testing.T) {
	rt, _, sink, _ := reexecRun(t, reexecSpec, false)
	done := rt.CompletedAt()
	if done == 0 {
		t.Fatal("CompletedAt = 0; completion cycle never recorded")
	}
	if done < reexecDownEnd {
		t.Errorf("last task committed at %d, before the rejoin at %d; stall path re-executed something",
			done, reexecDownEnd)
	}
	s := rt.Stats()
	if s.Reexecs != 0 || s.LateDrops != 0 || s.Rehomes != 0 {
		t.Errorf("reexec disabled but stats = {reexecs=%d latedrops=%d rehomes=%d}, want all zero",
			s.Reexecs, s.LateDrops, s.Rehomes)
	}
	if got := sink.CounterValue("taskrt.reexec"); got != 0 {
		t.Errorf("taskrt.reexec = %d, want 0 with reexec disabled", got)
	}
}
