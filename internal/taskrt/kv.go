package taskrt

import (
	"encoding/binary"
	"fmt"
)

// kvRespBytes is the fixed response-region footprint: small enough that
// every scheme moves it on its direct path.
const kvRespBytes = 32

// BuildKV populates rt with a key-value request/response service: size
// shard regions spread round-robin across ranks, plus one deterministic
// stream of GET/PUT requests derived from seed. Each request is a task
// homed at its shard's owner (the response region is owned there too);
// a GET reads the shard and writes a digest of the addressed window
// into its response, a PUT read-modify-writes the shard and returns the
// overwritten window. Requests against the same shard serialize through
// the dependence tracker (PUTs order against every GET issued since the
// last PUT — the WAR edge), while requests to distinct shards proceed
// in parallel: the irregular, data-driven traffic pattern regular SPMD
// sweeps never produce.
func BuildKV(rt *Runtime, shards, shardBytes, requests int, seed uint64, workers int) error {
	if shards <= 0 || shardBytes < 64 || requests < 0 || workers <= 0 {
		return fmt.Errorf("taskrt: kv shards=%d shardBytes=%d requests=%d workers=%d",
			shards, shardBytes, requests, workers)
	}
	shard := make([]*Region, shards)
	for i := 0; i < shards; i++ {
		rg, err := rt.Region(fmt.Sprintf("kv.shard.%d", i), shardBytes, i%workers)
		if err != nil {
			return err
		}
		shard[i] = rg
		i := i
		if _, err := rt.AddTask(fmt.Sprintf("kv.load.%d", i), float64(shardBytes),
			[]Access{Out(rg)}, func(tc *TaskCtx) {
				buf := tc.Data(rg)
				for o := 0; o+8 <= len(buf); o += 8 {
					binary.LittleEndian.PutUint64(buf[o:], splitmix64(seed^uint64(i)<<32^uint64(o)))
				}
			}); err != nil {
			return err
		}
	}
	windows := shardBytes / 8
	for j := 0; j < requests; j++ {
		h := splitmix64(seed + 0x517cc1b727220a95*uint64(j+1))
		sh := shard[int(h%uint64(shards))]
		off := int((h>>20)%uint64(windows)) * 8
		val := splitmix64(h)
		resp, err := rt.Region(fmt.Sprintf("kv.resp.%d", j), kvRespBytes, sh.Owner())
		if err != nil {
			return err
		}
		if h>>63 == 0 { // GET
			if _, err := rt.AddTask(fmt.Sprintf("kv.get.%d", j), 64,
				[]Access{In(sh), Out(resp)}, func(tc *TaskCtx) {
					kvRespond(tc.Data(resp), 'G', tc.Data(sh), off)
				}); err != nil {
				return err
			}
			continue
		}
		if _, err := rt.AddTask(fmt.Sprintf("kv.put.%d", j), 64,
			[]Access{InOut(sh), Out(resp)}, func(tc *TaskCtx) {
				buf := tc.Data(sh)
				kvRespond(tc.Data(resp), 'P', buf, off)
				binary.LittleEndian.PutUint64(buf[off:], val)
			}); err != nil {
			return err
		}
	}
	return nil
}

// kvRespond fills a response region: opcode, window offset, and a
// folded digest of the addressed 8-byte window plus its two neighbours.
func kvRespond(resp []byte, op byte, buf []byte, off int) {
	for i := range resp {
		resp[i] = 0
	}
	resp[0] = op
	binary.LittleEndian.PutUint32(resp[4:], uint32(off))
	d := splitmix64(binary.LittleEndian.Uint64(buf[off:]))
	if off >= 8 {
		d ^= splitmix64(binary.LittleEndian.Uint64(buf[off-8:]))
	}
	if off+16 <= len(buf) {
		d ^= splitmix64(binary.LittleEndian.Uint64(buf[off+8:]))
	}
	binary.LittleEndian.PutUint64(resp[8:], d)
}
