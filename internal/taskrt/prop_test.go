package taskrt

import (
	"fmt"
	"testing"

	"vscc/internal/vscc"
)

// Property suite: random (seeded, deterministic) task DAGs are executed
// on a real simulated system, and every run is checked against an
// independent model of the dependence rules — the checker recomputes
// the expected dependence edges from the access declarations alone,
// without looking at the runtime's own edge lists.

// propSeeds is the seed table; every seed is one independently
// generated DAG, scheme and shape.
var propSeeds = []uint64{1, 2, 3, 5, 8, 13, 21, 42}

// genSpec generates a random region set and task list from a seed. The
// generator only uses splitmix64, so a seed names one DAG forever.
func genSpec(seed uint64) *Spec {
	n := func(salt, mod uint64) int { return int(splitmix64(seed^salt*0x9e3779b97f4a7c15) % mod) }
	sp := &Spec{}
	regions := 4 + n(1, 9)
	for i := 0; i < regions; i++ {
		h := splitmix64(seed + 100 + uint64(i))
		owner := -1
		if h&1 == 0 {
			owner = int(h>>1) % 4
		}
		sp.Regions = append(sp.Regions, SpecRegion{
			Name:  fmt.Sprintf("r%02d", i),
			Bytes: 8 << (h >> 8 % 10), // 8 B .. 4 KB
			Owner: owner,
		})
	}
	tasks := 10 + n(2, 31)
	for j := 0; j < tasks; j++ {
		st := SpecTask{Name: fmt.Sprintf("t%03d", j), Flops: float64(n(uint64(j)+500, 2000))}
		// A random non-empty subset of regions, each with a random mode.
		for i := 0; i < regions; i++ {
			h := splitmix64(seed ^ uint64(j+1)<<20 ^ uint64(i+1))
			if h%4 != 0 { // ~1/4 of regions per task
				continue
			}
			switch (h >> 2) % 3 {
			case 0:
				st.In = append(st.In, sp.Regions[i].Name)
			case 1:
				st.Out = append(st.Out, sp.Regions[i].Name)
			default:
				st.InOut = append(st.InOut, sp.Regions[i].Name)
			}
		}
		if len(st.In)+len(st.Out)+len(st.InOut) == 0 {
			st.In = append(st.In, sp.Regions[j%regions].Name)
		}
		sp.Tasks = append(sp.Tasks, st)
	}
	return sp
}

// modelEdges recomputes the expected dependence edges (pred, succ) from
// the spec's declarations, independently of the runtime: a reader
// depends on the latest writer; a writer depends on the latest writer
// and every reader since (RAW, WAW, WAR).
func modelEdges(sp *Spec) map[[2]int]bool {
	edges := make(map[[2]int]bool)
	type tail struct {
		lastWriter int
		readers    []int
	}
	tails := make(map[string]*tail)
	for _, r := range sp.Regions {
		tails[r.Name] = &tail{lastWriter: -1}
	}
	add := func(pred, succ int) {
		if pred >= 0 && pred != succ {
			edges[[2]int{pred, succ}] = true
		}
	}
	for j, t := range sp.Tasks {
		reads := append(append([]string{}, t.In...), t.InOut...)
		writes := append(append([]string{}, t.Out...), t.InOut...)
		for _, rn := range reads {
			add(tails[rn].lastWriter, j)
		}
		for _, rn := range writes {
			add(tails[rn].lastWriter, j)
			for _, rd := range tails[rn].readers {
				add(rd, j)
			}
			tails[rn].lastWriter = j
			tails[rn].readers = nil
		}
		for _, rn := range reads {
			tails[rn].readers = append(tails[rn].readers, j)
		}
	}
	return edges
}

// TestPropertyRandomDAGs runs every seed's DAG on a simulated system
// and asserts the three properties from the issue: order respects the
// declared region dependences, every task runs exactly once, and no
// dispatch (own-queue pop or steal) ran a task before readiness.
func TestPropertyRandomDAGs(t *testing.T) {
	var totalSteals int
	for _, seed := range propSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sp := genSpec(seed)
			scheme := allSchemes[splitmix64(seed+7)%uint64(len(allSchemes))]
			const ranks = 4

			ref := New(Config{})
			if err := sp.Build(ref, ranks); err != nil {
				t.Fatalf("Build(ref): %v", err)
			}
			if err := ref.RunSerial(ranks); err != nil {
				t.Fatalf("RunSerial: %v", err)
			}

			rt := New(Config{Scheme: scheme})
			if err := sp.Build(rt, ranks); err != nil {
				t.Fatalf("Build: %v", err)
			}
			// The spec's task count is the runtime's task count: the
			// generator adds no hidden tasks.
			if rt.NumTasks() != len(sp.Tasks) {
				t.Fatalf("runtime has %d tasks, spec %d", rt.NumTasks(), len(sp.Tasks))
			}
			if err := rt.Run(newSession(t, 2, ranks, scheme)); err != nil {
				t.Fatalf("Run (scheme %s): %v", scheme.Key(), err)
			}
			totalSteals += rt.Stats().Steals

			// Exactly once: every task id appears once in the
			// completion log and carries a worker and seq pair.
			seen := make([]int, rt.NumTasks())
			for _, id := range rt.ExecOrder() {
				seen[id]++
			}
			for id, c := range seen {
				if c != 1 {
					t.Errorf("task %d executed %d times", id, c)
				}
				tk := rt.Task(id)
				start, done := tk.Seqs()
				if tk.ExecutedBy() < 0 || tk.ExecutedBy() >= ranks || start <= 0 || done <= start {
					t.Errorf("task %d: worker=%d seqs=(%d,%d)", id, tk.ExecutedBy(), start, done)
				}
			}

			// Dependence respect + steal readiness: for every modelled
			// edge, the predecessor completed before the successor was
			// dispatched — regardless of which worker ran it or whether
			// it was stolen.
			for e := range modelEdges(sp) {
				pred, succ := rt.Task(e[0]), rt.Task(e[1])
				_, pd := pred.Seqs()
				ss, _ := succ.Seqs()
				if pd >= ss {
					t.Errorf("edge %d->%d violated: pred done seq %d, succ start seq %d (succ worker %d)",
						e[0], e[1], pd, ss, succ.ExecutedBy())
				}
			}

			// End state matches the serial reference byte for byte.
			if rt.StateHash() != ref.StateHash() {
				t.Errorf("seed %d on %s: hash diverges from serial reference", seed, scheme.Key())
			}
		})
	}
	// The suite as a whole must actually exercise stealing, or the
	// readiness property is vacuous.
	if totalSteals == 0 {
		t.Error("no steals across any property seed; generator too regular")
	}
}

// TestPropertySerialEquivalence cross-checks the generator itself: the
// same seed built twice yields identical specs and identical serial
// hashes (the generator is pure).
func TestPropertySerialEquivalence(t *testing.T) {
	for _, seed := range propSeeds {
		a, b := genSpec(seed), genSpec(seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
		ra, rb := New(Config{}), New(Config{})
		if err := a.Build(ra, 3); err != nil {
			t.Fatalf("Build: %v", err)
		}
		if err := b.Build(rb, 3); err != nil {
			t.Fatalf("Build: %v", err)
		}
		if err := ra.RunSerial(3); err != nil {
			t.Fatalf("RunSerial: %v", err)
		}
		if err := rb.RunSerial(3); err != nil {
			t.Fatalf("RunSerial: %v", err)
		}
		if ra.StateHash() != rb.StateHash() {
			t.Fatalf("seed %d: serial hash not reproducible", seed)
		}
	}
}

// TestPropertyMoveAccounting: across the seed table, remote moves and
// move bytes reconcile with the per-class counters.
func TestPropertyMoveAccounting(t *testing.T) {
	for _, seed := range propSeeds[:3] {
		sp := genSpec(seed)
		rt := New(Config{Scheme: vscc.SchemeRemotePut})
		if err := sp.Build(rt, 4); err != nil {
			t.Fatalf("Build: %v", err)
		}
		if err := rt.Run(newSession(t, 2, 4, vscc.SchemeRemotePut)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		st := rt.Stats()
		var classed int64
		for _, c := range st.Moves {
			classed += c
		}
		if classed == 0 || st.MovedBytes == 0 {
			t.Errorf("seed %d: no remote movement (%+v)", seed, st)
		}
		if st.Tasks != rt.NumTasks() {
			t.Errorf("seed %d: %d of %d tasks", seed, st.Tasks, rt.NumTasks())
		}
	}
}
