// Package taskrt is a deterministic task-dataflow runtime for the vSCC,
// in the direction of BDDT-SCC (PAPERS.md): tasks declare in/out/inout
// accesses on versioned data regions, a dependence tracker releases
// successors as the region versions they need are produced, and one
// worker loop per RCCE rank executes ready tasks, stealing from sibling
// queues when its own runs dry.
//
// The runtime is layered on the existing stack rather than beside it:
// task-argument movement goes through the rcce gory one-sided interface
// (Put/Get staging through the owner rank's MPB half), so every byte a
// task moves crosses the simulated mesh, PCIe fabric and host
// communication task of the configured vscc scheme — including its
// fault injection and recovery machinery. Region payloads themselves
// live in the runtime's private-DRAM model (plain Go memory): the MPB
// staging traffic carries the cost and the wire behaviour, private
// memory carries the contents, mirroring how the research system keeps
// application data off-chip and uses the MPB as a staging buffer.
//
// Determinism: the runtime introduces no clock, randomness or
// concurrency of its own. All scheduler state (queues, versions,
// pending counts) is mutated only by rank processes, which the
// simulation kernel interleaves deterministically; steal decisions read
// that state at the stealing worker's current cycle and scan victims in
// a fixed order. Reruns and parallel sweep replicas are therefore
// byte-identical (see the identity suite).
package taskrt

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"

	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/vscc"
)

// MaxRegionBytes bounds a single region so spec-driven graphs (and the
// fuzzer behind them) cannot ask for unbounded allocations.
const MaxRegionBytes = 1 << 20

// Staging layout within each rank's MPB payload area: two line-aligned
// halves for double-buffered bulk moves, and one reserved doorbell line
// at the top that peers write to wake an idle worker.
const (
	doorbellOff = rcce.PayloadBytes - 32
	stageHalf   = (doorbellOff / 2) &^ 31
	stageA      = 0
	stageB      = stageHalf
)

// AccessMode declares how a task touches a region.
type AccessMode int

// The access modes, with BDDT semantics: In is a read of the current
// version, Out produces the next version wholesale, InOut reads the
// current version and produces the next.
const (
	ModeIn AccessMode = iota
	ModeOut
	ModeInOut
)

// String names the mode as in the task-spec grammar.
func (m AccessMode) String() string {
	switch m {
	case ModeIn:
		return "in"
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	}
	return "invalid"
}

// Access pairs a region with a mode.
type Access struct {
	Region *Region
	Mode   AccessMode
}

// In declares a read access.
func In(r *Region) Access { return Access{Region: r, Mode: ModeIn} }

// Out declares a write access.
func Out(r *Region) Access { return Access{Region: r, Mode: ModeOut} }

// InOut declares a read-modify-write access.
func InOut(r *Region) Access { return Access{Region: r, Mode: ModeInOut} }

// Region is one versioned data block. Its payload lives in the
// runtime's private-memory model; its owner rank's MPB half is the
// staging area every remote move of the region passes through.
type Region struct {
	id      int
	name    string
	bytes   int
	owner   int // requested owner rank; -1 = round-robin at seal
	data    []byte
	version int

	// Dependence-tracker tail state during graph construction.
	lastWriter   int // task id of the latest writer, -1 initially
	readersSince []int
	// writeSeq numbers the region's writers in construction order; each
	// writing access carries its stamp (writeSeq at declaration), the
	// version it is entitled to commit. See Runtime.publish.
	writeSeq int
	// committed trails version during a commit: version is claimed
	// before the staging move yields, committed only once the bytes are
	// in place. The gap is how a takeover detects a claimant that
	// stalled (froze with its device) mid-commit.
	committed int
}

// Name returns the region's unique name.
func (rg *Region) Name() string { return rg.name }

// Size returns the region's footprint in bytes.
func (rg *Region) Size() int { return rg.bytes }

// Owner returns the owning worker rank (valid after Run/RunSerial).
func (rg *Region) Owner() int { return rg.owner }

// Version returns the number of completed writes.
func (rg *Region) Version() int { return rg.version }

// Snapshot returns a copy of the region's current contents.
func (rg *Region) Snapshot() []byte { return append([]byte(nil), rg.data...) }

// task states.
const (
	taskWaiting = iota
	taskReady
	taskRunning
	taskDone
)

// Task is one node of the dataflow graph.
type Task struct {
	id       int
	name     string
	flops    float64
	accesses []Access
	body     func(*TaskCtx)

	preds   []int // distinct predecessor ids (construction order)
	succs   []int // distinct successor ids (ascending by construction)
	pending int
	state   int
	home    int
	// stamps[i] is the version accesses[i] commits (0 for pure reads):
	// the exactly-once guard when device-loss re-execution races a
	// thawed original (see publish).
	stamps []int

	// Execution record, for the property suite and reports.
	executedBy int
	startSeq   int
	doneSeq    int
}

// ID returns the task's creation index.
func (t *Task) ID() int { return t.id }

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// ExecutedBy returns the worker that ran the task (valid once done).
func (t *Task) ExecutedBy() int { return t.executedBy }

// Seqs returns the global start and completion sequence numbers of the
// task's execution (valid once done; start < done always).
func (t *Task) Seqs() (start, done int) { return t.startSeq, t.doneSeq }

// Stats aggregates what the runtime did during one Run.
type Stats struct {
	Tasks      int      // tasks executed
	Steals     int      // tasks popped from a sibling's queue
	Doorbells  int      // idle-worker wakeup writes
	LocalMoves int      // region arguments already resident at the worker
	Moves      [3]int64 // remote moves by vscc.MoveClass
	MovedBytes int64    // remote argument bytes staged through MPBs
	Reexecs    int      // tasks re-issued off lost devices (Config.Reexec)
	LateDrops  int      // stamped commits dropped by exactly-once (thawed originals)
	Rehomes    int      // staging chunks re-routed around a lost owner rank
	Abandons   int      // in-flight staging ops abandoned on loss, body retried
	StalePops  int      // duplicate queue entries dropped at dispatch (reclaim raced a live original)
}

// MembershipView is the device-membership view task re-execution
// consults (implemented by *vscc.Membership): Lost reports a device that
// is down or mid-rejoin, i.e. currently unreachable.
type MembershipView interface {
	Lost(dev int) bool
}

// Config parameterizes a runtime.
type Config struct {
	// Scheme is the vSCC communication scheme the session runs; it
	// selects the move-class thresholds (vscc.ClassifyMove).
	Scheme vscc.Scheme
	// PollCycles is the idle worker's initial wait budget between queue
	// scans (default 500); budgets double up to MaxPollCycles (default
	// 8000) and reset when work is found.
	PollCycles    sim.Cycles
	MaxPollCycles sim.Cycles
	// Reexec enables task re-execution on device loss: tasks stranded
	// running on a lost device's workers are rolled back and re-issued
	// on survivors from the last committed region versions, staging
	// toward lost owners re-homes to the next live rank, and the
	// version-stamped commit keeps every task exactly-once when the
	// thawed originals eventually resume. Off (the default), a device
	// loss stalls the affected tasks until the rejoin replay completes —
	// the pre-existing behaviour, byte-identical code paths.
	Reexec bool
	// Membership is the device view Reexec consults; a nil view
	// disables re-execution even when Reexec is set (fault-free runs).
	Membership MembershipView
}

// Runtime is one task graph plus its execution state. A Runtime is
// single-use: build the graph, then call Run (or RunSerial) once.
type Runtime struct {
	cfg     Config
	regions []*Region
	byName  map[string]*Region
	tasks   []*Task
	sealed  bool
	ran     bool

	workers   int
	queues    [][]int
	completed int
	failed    bool
	seq       int
	execOrder []int
	stats     Stats
	// doneCycle is the kernel cycle the last task committed (valid after
	// Run) — under re-execution it may precede the lost device's rejoin.
	doneCycle sim.Cycles
}

// New creates an empty runtime.
func New(cfg Config) *Runtime {
	if cfg.PollCycles <= 0 {
		cfg.PollCycles = 500
	}
	if cfg.MaxPollCycles < cfg.PollCycles {
		cfg.MaxPollCycles = 8000
		if cfg.MaxPollCycles < cfg.PollCycles {
			cfg.MaxPollCycles = cfg.PollCycles
		}
	}
	return &Runtime{cfg: cfg, byName: make(map[string]*Region)}
}

// Region declares a data region. owner is the staging rank (-1 =
// round-robin at seal time). The initial contents are zero at version 0.
func (rt *Runtime) Region(name string, bytes, owner int) (*Region, error) {
	if rt.sealed {
		return nil, fmt.Errorf("taskrt: region %q declared after Run", name)
	}
	if name == "" {
		return nil, fmt.Errorf("taskrt: region with empty name")
	}
	if _, dup := rt.byName[name]; dup {
		return nil, fmt.Errorf("taskrt: duplicate region %q", name)
	}
	if bytes <= 0 || bytes > MaxRegionBytes {
		return nil, fmt.Errorf("taskrt: region %q size %d outside (0, %d]", name, bytes, MaxRegionBytes)
	}
	if owner < -1 {
		return nil, fmt.Errorf("taskrt: region %q owner %d", name, owner)
	}
	rg := &Region{
		id: len(rt.regions), name: name, bytes: bytes, owner: owner,
		data: make([]byte, bytes), lastWriter: -1,
	}
	rt.regions = append(rt.regions, rg)
	rt.byName[name] = rg
	return rg, nil
}

// RegionByName looks a region up.
func (rt *Runtime) RegionByName(name string) (*Region, bool) {
	rg, ok := rt.byName[name]
	return rg, ok
}

// NumRegions returns the region count.
func (rt *Runtime) NumRegions() int { return len(rt.regions) }

// AddTask appends a task. Dependences on earlier tasks are derived from
// the declared accesses at this point: a read depends on the region's
// latest writer; a write depends on the latest writer and on every read
// issued since (WAW and WAR), then becomes the latest writer. flops is
// modelled compute charged before the body runs; body may be nil.
func (rt *Runtime) AddTask(name string, flops float64, accs []Access, body func(*TaskCtx)) (*Task, error) {
	if rt.sealed {
		return nil, fmt.Errorf("taskrt: task %q added after Run", name)
	}
	if name == "" {
		return nil, fmt.Errorf("taskrt: task with empty name")
	}
	if flops < 0 {
		return nil, fmt.Errorf("taskrt: task %q has negative flops", name)
	}
	for i, a := range accs {
		if a.Region == nil {
			return nil, fmt.Errorf("taskrt: task %q access %d has no region", name, i)
		}
		if rt.regions[a.Region.id] != a.Region {
			return nil, fmt.Errorf("taskrt: task %q accesses region %q of another runtime", name, a.Region.name)
		}
		for _, b := range accs[:i] {
			if b.Region == a.Region {
				return nil, fmt.Errorf("taskrt: task %q accesses region %q twice", name, a.Region.name)
			}
		}
	}
	t := &Task{id: len(rt.tasks), name: name, flops: flops, accesses: accs, body: body, executedBy: -1}
	t.stamps = make([]int, len(accs))
	for i, a := range accs {
		rg := a.Region
		if a.Mode == ModeIn || a.Mode == ModeInOut {
			rt.addDep(t, rg.lastWriter)
		}
		if a.Mode == ModeOut || a.Mode == ModeInOut {
			rt.addDep(t, rg.lastWriter)
			for _, rd := range rg.readersSince {
				rt.addDep(t, rd)
			}
			rg.lastWriter = t.id
			rg.readersSince = rg.readersSince[:0]
			rg.writeSeq++
			t.stamps[i] = rg.writeSeq
		}
		if a.Mode == ModeIn || a.Mode == ModeInOut {
			rg.readersSince = append(rg.readersSince, t.id)
		}
	}
	t.pending = len(t.preds)
	for _, p := range t.preds {
		pt := rt.tasks[p]
		pt.succs = append(pt.succs, t.id)
	}
	rt.tasks = append(rt.tasks, t)
	return t, nil
}

// addDep records a distinct dependence of t on task id pred (-1 = none).
func (rt *Runtime) addDep(t *Task, pred int) {
	if pred < 0 {
		return
	}
	for _, p := range t.preds {
		if p == pred {
			return
		}
	}
	t.preds = append(t.preds, pred)
}

// NumTasks returns the task count.
func (rt *Runtime) NumTasks() int { return len(rt.tasks) }

// Stats returns the execution statistics (valid after Run).
func (rt *Runtime) Stats() Stats { return rt.stats }

// CompletedAt returns the kernel cycle at which the last task finished
// (valid after Run). With re-execution this is the convergence point:
// it may precede the crashed device's rejoin.
func (rt *Runtime) CompletedAt() sim.Cycles { return rt.doneCycle }

// ExecOrder returns the task ids in completion order.
func (rt *Runtime) ExecOrder() []int { return append([]int(nil), rt.execOrder...) }

// Task returns the task with the given id.
func (rt *Runtime) Task(id int) *Task { return rt.tasks[id] }

// StateHash digests every region's name, version and contents, in
// region order — the fingerprint the identity and fault suites compare.
func (rt *Runtime) StateHash() string {
	h := sha256.New()
	var num [8]byte
	for _, rg := range rt.regions {
		h.Write([]byte(rg.name))
		binary.LittleEndian.PutUint64(num[:], uint64(rg.version))
		h.Write(num[:])
		h.Write(rg.data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// seal freezes the graph for execution on the given worker count:
// round-robin owners resolve, explicit owners and homes are validated,
// and the initially-ready tasks enter their home queues in id order.
func (rt *Runtime) seal(workers int) error {
	if rt.ran {
		return fmt.Errorf("taskrt: runtime already ran (single-use)")
	}
	if workers <= 0 {
		return fmt.Errorf("taskrt: %d workers", workers)
	}
	rt.ran = true
	rt.sealed = true
	rt.workers = workers
	for _, rg := range rt.regions {
		if rg.owner == -1 {
			rg.owner = rg.id % workers
		}
		if rg.owner >= workers {
			return fmt.Errorf("taskrt: region %q owner %d outside %d workers", rg.name, rg.owner, workers)
		}
	}
	rt.queues = make([][]int, workers)
	for _, t := range rt.tasks {
		t.home = rt.homeOf(t)
		if t.pending == 0 {
			t.state = taskReady
			rt.queues[t.home] = append(rt.queues[t.home], t.id)
		}
	}
	return nil
}

// homeOf places a task: on the owner of its first written region (the
// output lands locally), else the owner of its first input, else spread
// by id.
func (rt *Runtime) homeOf(t *Task) int {
	for _, a := range t.accesses {
		if a.Mode == ModeOut || a.Mode == ModeInOut {
			return a.Region.owner
		}
	}
	for _, a := range t.accesses {
		return a.Region.owner
	}
	return t.id % rt.workers
}

// Run executes the graph on a session: every rank becomes one worker.
// The session must run a vSCC or RCCE protocol whose ranks may use the
// full MPB payload area (taskrt owns it for staging).
func (rt *Runtime) Run(session *rcce.Session) error {
	if err := rt.seal(session.NumRanks()); err != nil {
		return err
	}
	if err := session.Run(rt.worker); err != nil {
		return err
	}
	if rt.completed != len(rt.tasks) {
		return fmt.Errorf("taskrt: %d of %d tasks completed", rt.completed, len(rt.tasks))
	}
	return nil
}

// RunSerial executes the graph in task order in plain Go, with no
// simulation: the reference every parallel run must match byte for
// byte. Dependences are satisfied by construction (a task's
// predecessors all have smaller ids).
func (rt *Runtime) RunSerial(workers int) error {
	if err := rt.seal(workers); err != nil {
		return err
	}
	for _, t := range rt.tasks {
		if t.pending != 0 {
			return fmt.Errorf("taskrt: task %d %q not ready in id order", t.id, t.name)
		}
		t.state = taskRunning
		rt.runBody(nil, t)
		rt.finish(nil, t, 0)
	}
	return nil
}

// worker is the per-rank scheduler loop.
func (rt *Runtime) worker(r *rcce.Rank) {
	defer func() {
		if rec := recover(); rec != nil {
			// A failing task (e.g. a lost peer device surfacing from a
			// staging transfer) must also stop the idle workers, or the
			// kernel would run their poll events forever.
			rt.failed = true
			panic(rec)
		}
	}()
	w := r.ID()
	backoff := rt.cfg.PollCycles
	for rt.completed < len(rt.tasks) && !rt.failed {
		id, stolen := rt.next(w)
		if id < 0 {
			// Idle: before napping, re-issue tasks stranded on lost
			// devices (no-op unless Config.Reexec armed them).
			if rt.reclaimLost(r, w) {
				continue
			}
			// Sleep until a store lands in our tile (a doorbell, or
			// staging traffic) or the budget expires, then rescan.
			r.WaitAnyLocalChangeFor(backoff)
			if backoff *= 2; backoff > rt.cfg.MaxPollCycles {
				backoff = rt.cfg.MaxPollCycles
			}
			continue
		}
		backoff = rt.cfg.PollCycles
		if stolen {
			rt.stats.Steals++
			r.Sink().Add("taskrt.steals", 1)
		}
		rt.execute(r, w, rt.tasks[id])
	}
}

// next pops the oldest task of w's own queue, or — when it is empty —
// steals the oldest task of the first non-empty sibling queue, scanning
// (w+1, w+2, ...) mod workers. Queue contents are only ever mutated by
// rank processes at deterministic cycles, so the choice of victim is a
// pure function of kernel-clock-visible state.
func (rt *Runtime) next(w int) (id int, stolen bool) {
	if q := rt.queues[w]; len(q) > 0 {
		rt.queues[w] = q[1:]
		return q[0], false
	}
	for i := 1; i < rt.workers; i++ {
		v := (w + i) % rt.workers
		if q := rt.queues[v]; len(q) > 0 {
			rt.queues[v] = q[1:]
			return q[0], true
		}
	}
	return -1, false
}

// execute moves a task's inputs in, runs the body, publishes its
// outputs and releases its successors. Under re-execution a thawed
// original may reach the end of its body after a re-issued copy already
// finished the task; its commits dropped region by region (publish) and
// the completion bookkeeping is skipped here.
func (rt *Runtime) execute(r *rcce.Rank, w int, t *Task) {
	if t.pending != 0 || t.state != taskReady {
		if rt.cfg.Reexec && rt.cfg.Membership != nil && t.pending == 0 &&
			(t.state == taskRunning || t.state == taskDone) {
			// A stale duplicate: reclaim re-issued this task off a lost
			// executor, but fail-fast waits keep a lost device's ranks
			// running between chip operations, so the original can outrun
			// its own reclaim and finish first (or still be in flight).
			// The version stamps make duplicate execution harmless, and a
			// duplicate that is not needed at all is dropped right here.
			rt.stats.StalePops++
			if sink := r.Sink(); sink.Enabled() {
				sink.Add("taskrt.stale_pop", 1)
			}
			return
		}
		panic(fmt.Sprintf("taskrt: task %d %q dispatched while not ready (pending=%d state=%d)",
			t.id, t.name, t.pending, t.state))
	}
	t.state = taskRunning
	t.executedBy = w
	rt.seq++
	t.startSeq = rt.seq
	start := r.Now()
	for rt.tryBody(r, t) {
		// A staging op toward a lost device was abandoned mid-task:
		// re-run the body in place. Regions the first attempt already
		// committed drop as late writes; a claimed-but-uncommitted
		// region is taken over (publish), so the retry is exactly-once.
		rt.stats.Abandons++
		if sink := r.Sink(); sink.Enabled() {
			sink.Add("taskrt.abandon", 1)
		}
	}
	if t.state == taskDone {
		// Lost the exactly-once race: a re-issued copy committed while
		// this (stalled, now thawed) execution was still in flight.
		return
	}
	rt.finish(r, t, w)
	if sink := r.Sink(); sink.Enabled() {
		sink.Span(sink.Track("taskrt", fmt.Sprintf("w%03d", w)), t.name, start, r.Now())
	}
	r.Sink().Add("taskrt.tasks", 1)
}

// tryBody runs the task body once, absorbing a device-loss panic when
// re-execution is armed: under fail-fast waits (devretry=0) an in-flight
// staging op toward a device that crashes unwinds here with
// rcce.ErrDeviceLost, and the caller retries the body — by then the loss
// is membership-visible, so the retry's staging re-homes onto survivors.
// Reports whether a retry is needed. With Reexec off every panic
// propagates, keeping the pre-existing failure semantics bytewise.
func (rt *Runtime) tryBody(r *rcce.Rank, t *Task) (retry bool) {
	if !rt.cfg.Reexec || rt.cfg.Membership == nil || r == nil {
		rt.runBody(r, t)
		return false
	}
	defer func() {
		if rec := recover(); rec != nil {
			if err, ok := rec.(error); ok && errors.Is(err, rcce.ErrDeviceLost) {
				retry = true
				return
			}
			panic(rec)
		}
	}()
	rt.runBody(r, t)
	return false
}

// runBody fetches inputs, charges the modelled flops, runs the body and
// publishes outputs. r may be nil (serial reference): movement and
// compute charging are skipped, contents move identically.
func (rt *Runtime) runBody(r *rcce.Rank, t *Task) {
	tc := &TaskCtx{rt: rt, r: r, t: t, bufs: make([][]byte, len(t.accesses))}
	for i, a := range t.accesses {
		if a.Mode == ModeIn || a.Mode == ModeInOut {
			tc.bufs[i] = rt.fetch(r, a.Region)
		} else {
			tc.bufs[i] = make([]byte, a.Region.bytes)
		}
	}
	if t.flops > 0 {
		tc.ComputeFlops(t.flops)
	}
	if t.body != nil {
		t.body(tc)
	}
	for i, a := range t.accesses {
		if a.Mode == ModeOut || a.Mode == ModeInOut {
			rt.publish(r, a.Region, tc.bufs[i], t.stamps[i])
		}
	}
}

// finish marks a task done and releases its successors, pushing
// newly-ready tasks onto their home queues in ascending id order and
// waking each remote home worker with a doorbell write.
func (rt *Runtime) finish(r *rcce.Rank, t *Task, w int) {
	t.state = taskDone
	rt.seq++
	t.doneSeq = rt.seq
	rt.completed++
	rt.stats.Tasks++
	rt.execOrder = append(rt.execOrder, t.id)
	// Release every successor before the first doorbell: the release
	// loop must stay yield-free, or a device crash freezing this rank
	// inside a doorbell Put would leave a done task with unreleased
	// successors — invisible to reclaim, stalling re-execution until
	// the rejoin.
	var ring []int
	for _, sid := range t.succs {
		s := rt.tasks[sid]
		if s.pending--; s.pending == 0 {
			s.state = taskReady
			rt.queues[s.home] = append(rt.queues[s.home], sid)
			if r != nil && s.home != w && !rt.lostRank(r, s.home) {
				ring = append(ring, s.home)
			}
		}
	}
	for _, home := range ring {
		rt.ringDoorbell(r, home)
	}
	if rt.completed == len(rt.tasks) && r != nil {
		rt.doneCycle = r.Now()
	}
}

// ringDoorbell writes one line into the home worker's MPB to wake its
// WaitAnyLocalChangeFor nap early. (A home already known lost gets no
// doorbell at all — see finish.) Under re-execution the home's device
// can still die mid-write: the abandoned doorbell is simply dropped —
// survivors find the queued task on their next scan.
func (rt *Runtime) ringDoorbell(r *rcce.Rank, home int) {
	if rt.cfg.Reexec && rt.cfg.Membership != nil {
		defer func() {
			if rec := recover(); rec != nil {
				if err, ok := rec.(error); ok && errors.Is(err, rcce.ErrDeviceLost) {
					return
				}
				panic(rec)
			}
		}()
	}
	r.Put(home, doorbellOff, []byte{1})
	rt.stats.Doorbells++
}

// lostRank reports whether a rank's device is currently unreachable
// under the re-execution policy (always false with Reexec off, so the
// default configuration keeps its pre-existing code paths bytewise).
func (rt *Runtime) lostRank(r *rcce.Rank, rank int) bool {
	if !rt.cfg.Reexec || rt.cfg.Membership == nil || r == nil {
		return false
	}
	return rt.cfg.Membership.Lost(r.Session().PlaceOf(rank).Dev)
}

// liveSubstitute picks the staging stand-in for a lost owner rank: the
// first live rank scanning (owner+1, owner+2, ...) mod workers — a pure
// function of membership state at the caller's cycle, so reruns pick
// identically. With every peer lost the caller itself stages locally.
func (rt *Runtime) liveSubstitute(r *rcce.Rank, owner int) int {
	for i := 1; i < rt.workers; i++ {
		sub := (owner + i) % rt.workers
		if !rt.lostRank(r, sub) {
			return sub
		}
	}
	return r.ID()
}

// reclaimLost re-issues tasks stranded mid-execution on a lost device:
// each is rolled back to ready and pushed onto the scanning worker's
// own queue, to be re-run from the last committed region versions. The
// original either froze with its device — it eventually thaws and
// unwinds through the stamped commits, which drop its late writes — or
// was never truly frozen (fail-fast waits keep lost-device ranks
// running between chip operations) and finishes first, in which case
// the duplicate queue entry is dropped at dispatch (execute). Scanning
// in task-id order at the caller's cycle keeps reclaim deterministic; a
// re-issued task whose new executor is lost too is simply reclaimed
// again.
func (rt *Runtime) reclaimLost(r *rcce.Rank, w int) bool {
	if !rt.cfg.Reexec || rt.cfg.Membership == nil {
		return false
	}
	found := false
	for _, t := range rt.tasks {
		if t.state != taskRunning || !rt.lostRank(r, t.executedBy) {
			continue
		}
		dev := r.Session().PlaceOf(t.executedBy).Dev
		t.state = taskReady
		rt.queues[w] = append(rt.queues[w], t.id)
		rt.stats.Reexecs++
		if sink := r.Sink(); sink.Enabled() {
			sink.Add("taskrt.reexec", 1)
			sink.Add("taskrt.reexec.d"+strconv.Itoa(dev), 1)
		}
		found = true
	}
	return found
}

// fetch returns a private copy of a region's contents, charging the
// movement from the owner's staging area when the region is remote.
func (rt *Runtime) fetch(r *rcce.Rank, rg *Region) []byte {
	buf := append([]byte(nil), rg.data...)
	rt.move(r, rg, true)
	return buf
}

// publish stores a task's output buffer as the region's next version,
// charging the movement into the owner's staging area when remote. The
// stamp is the version this write is entitled to produce: a commit
// finding the region already at (or past) its stamp was beaten by a
// re-issued copy of the same task and drops — the exactly-once rule
// that lets a thawed original resume harmlessly after a device loss.
// Both executions compute the same bytes from the same committed
// inputs, so even a partially-overlapping pair of commits converges.
func (rt *Runtime) publish(r *rcce.Rank, rg *Region, buf []byte, stamp int) {
	if rg.version >= stamp {
		if rg.committed >= stamp {
			rt.lateDrop(r)
			return
		}
		// A twin execution claimed this version but stalled (froze with
		// its device) before the bytes landed: take the commit over.
		// Both executions computed the same bytes from the same
		// committed inputs, so the takeover is byte-transparent.
	} else {
		if rg.version != stamp-1 {
			panic(fmt.Sprintf("taskrt: region %q at version %d committed with stamp %d (dependence violation)",
				rg.name, rg.version, stamp))
		}
		// Claim before the staging move yields: a twin reaching this
		// point mid-move must not double-claim. No reader can observe
		// the claimed-but-unwritten window — every reader of this
		// version is a successor, released only after the task finishes.
		rg.version = stamp
	}
	rt.move(r, rg, false)
	if rg.committed >= stamp {
		// The twin finished its copy while our move was in flight.
		rt.lateDrop(r)
		return
	}
	if rg.committed != stamp-1 {
		panic(fmt.Sprintf("taskrt: region %q committed %d with stamp %d (dependence violation)",
			rg.name, rg.committed, stamp))
	}
	copy(rg.data, buf)
	rg.committed = stamp
}

// lateDrop counts a commit dropped by the exactly-once rule.
func (rt *Runtime) lateDrop(r *rcce.Rank) {
	rt.stats.LateDrops++
	if r == nil {
		return
	}
	if sink := r.Sink(); sink.Enabled() {
		sink.Add("taskrt.late_drop", 1)
	}
}

// move charges one region-granular transfer between the executing
// worker and the region's owner rank. The strategy follows the paper's
// thresholds (vscc.ClassifyMove): direct small transfers, a single
// cached-MPB staging pass, or vDMA-style chunks pipelined across both
// MPB halves. Local arguments cost one private-memory copy.
func (rt *Runtime) move(r *rcce.Rank, rg *Region, read bool) {
	if r == nil {
		return
	}
	if rg.owner == r.ID() {
		r.Ctx().CopyPrivate(rg.bytes)
		rt.stats.LocalMoves++
		return
	}
	class := vscc.ClassifyMove(rt.cfg.Scheme, rg.bytes)
	rt.stats.Moves[class]++
	rt.stats.MovedBytes += int64(rg.bytes)
	if sink := r.Sink(); sink.Enabled() {
		sink.Add("taskrt.move."+class.String(), 1)
		sink.Add("taskrt.move_bytes", int64(rg.bytes))
	}
	switch class {
	case vscc.MoveDirect:
		rt.stage(r, rg, read, rg.bytes, stageA)
	case vscc.MoveCachedMPB:
		// One staging pass through the first MPB half.
		for off := 0; off < rg.bytes; off += stageHalf {
			n := min(stageHalf, rg.bytes-off)
			rt.stage(r, rg, read, n, stageA)
		}
	default: // vscc.MoveVDMA
		// Double-buffered: consecutive chunks alternate MPB halves, the
		// virtual DMA controller's pipelining pattern (Fig. 4a/5).
		slot := stageA
		for off := 0; off < rg.bytes; off += stageHalf {
			n := min(stageHalf, rg.bytes-off)
			rt.stage(r, rg, read, n, slot)
			if slot == stageA {
				slot = stageB
			} else {
				slot = stageA
			}
		}
	}
}

// stage moves n bytes of region rg between this worker and the owner's
// MPB staging slot: a Get when reading, a Put of the region's current
// contents when writing. The staged window is transport, not storage —
// contents authoritative in private memory.
//
// Under the re-execution policy a chunk toward a lost owner re-homes to
// the next live rank's staging slot. The check runs per chunk: a chunk
// already on the wire when a device fault fires lands during the drain
// window, and every later chunk routes around the outage instead of
// parking until the rejoin.
func (rt *Runtime) stage(r *rcce.Rank, rg *Region, read bool, n, slot int) {
	owner := rg.owner
	if rt.lostRank(r, owner) {
		owner = rt.liveSubstitute(r, owner)
		rt.stats.Rehomes++
		if sink := r.Sink(); sink.Enabled() {
			sink.Add("taskrt.rehome", 1)
		}
		if owner == r.ID() {
			// Every peer is lost: the staging pass degenerates to a
			// private-memory copy at the executing worker.
			r.Ctx().CopyPrivate(n)
			return
		}
	}
	if read {
		scratch := make([]byte, n)
		r.Get(owner, slot, scratch)
		return
	}
	r.Put(owner, slot, rg.data[:n])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TaskCtx is the execution context handed to a task body.
type TaskCtx struct {
	rt   *Runtime
	r    *rcce.Rank
	t    *Task
	bufs [][]byte
}

// Data returns the task-local buffer of a declared region: the fetched
// contents for In/InOut, a zeroed output buffer for Out. Writes to
// In-mode buffers are discarded.
func (tc *TaskCtx) Data(rg *Region) []byte {
	for i, a := range tc.t.accesses {
		if a.Region == rg {
			return tc.bufs[i]
		}
	}
	panic(fmt.Sprintf("taskrt: task %q did not declare region %q", tc.t.name, rg.name))
}

// Worker returns the executing worker rank (-1 in the serial reference).
func (tc *TaskCtx) Worker() int {
	if tc.r == nil {
		return -1
	}
	return tc.r.ID()
}

// ComputeFlops charges floating-point work to the executing core.
func (tc *TaskCtx) ComputeFlops(n float64) {
	if tc.r != nil {
		tc.r.ComputeFlops(n)
	}
}

// Delay charges generic instruction work to the executing core.
func (tc *TaskCtx) Delay(d sim.Cycles) {
	if tc.r != nil {
		tc.r.Ctx().Delay(d)
	}
}
