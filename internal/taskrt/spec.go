package taskrt

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Task-spec grammar: a line-oriented description of a region set and a
// task DAG, the taskbench -graph input format and the fuzz surface of
// this package (mirroring the internal/fault ParseSpec setup). One
// declaration per line, '#' starts a comment:
//
//	region <name> <bytes> [owner=<rank>]
//	task <name> [in=r1,r2] [out=r3] [inout=r4] [flops=<n>]
//
// Names are [A-Za-z0-9._-]+. Regions must be declared before use and a
// task may touch a region through exactly one mode. Region sizes are
// capped at SpecMaxRegionBytes so hostile inputs cannot demand
// unbounded allocations. Built tasks get synthetic deterministic
// bodies: every produced region is a pure digest of the task's name and
// its input contents.

// SpecMaxRegionBytes caps one spec-declared region (tighter than the
// runtime's own MaxRegionBytes: spec inputs are untrusted).
const SpecMaxRegionBytes = 1 << 16

// SpecRegion is one parsed region declaration.
type SpecRegion struct {
	Name  string
	Bytes int
	Owner int // -1 = round-robin
}

// SpecTask is one parsed task declaration.
type SpecTask struct {
	Name  string
	In    []string
	Out   []string
	InOut []string
	Flops float64
}

// Spec is a parsed task-spec document.
type Spec struct {
	Regions []SpecRegion
	Tasks   []SpecTask
}

// ParseSpec parses the grammar above. Errors carry the 1-based line.
func ParseSpec(src string) (*Spec, error) {
	sp := &Spec{}
	regions := make(map[string]bool)
	for ln, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		var err error
		switch fields[0] {
		case "region":
			err = sp.parseRegion(fields[1:], regions)
		case "task":
			err = sp.parseTask(fields[1:], regions)
		default:
			err = fmt.Errorf("unknown directive %q", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("taskrt spec line %d: %w", ln+1, err)
		}
	}
	return sp, nil
}

func (sp *Spec) parseRegion(fields []string, regions map[string]bool) error {
	if len(fields) < 2 || len(fields) > 3 {
		return fmt.Errorf("want: region <name> <bytes> [owner=<rank>]")
	}
	name := fields[0]
	if !specName(name) {
		return fmt.Errorf("bad region name %q", name)
	}
	if regions[name] {
		return fmt.Errorf("duplicate region %q", name)
	}
	bytes, err := strconv.Atoi(fields[1])
	if err != nil || bytes <= 0 || bytes > SpecMaxRegionBytes {
		return fmt.Errorf("region %q size %q outside (0, %d]", name, fields[1], SpecMaxRegionBytes)
	}
	owner := -1
	if len(fields) == 3 {
		v, ok := strings.CutPrefix(fields[2], "owner=")
		if !ok {
			return fmt.Errorf("region %q: unknown option %q", name, fields[2])
		}
		owner, err = strconv.Atoi(v)
		if err != nil || owner < 0 || owner >= 256 {
			return fmt.Errorf("region %q owner %q outside [0, 256)", name, v)
		}
	}
	regions[name] = true
	sp.Regions = append(sp.Regions, SpecRegion{Name: name, Bytes: bytes, Owner: owner})
	return nil
}

func (sp *Spec) parseTask(fields []string, regions map[string]bool) error {
	if len(fields) == 0 {
		return fmt.Errorf("want: task <name> [in=...] [out=...] [inout=...] [flops=<n>]")
	}
	t := SpecTask{Name: fields[0]}
	if !specName(t.Name) {
		return fmt.Errorf("bad task name %q", t.Name)
	}
	seen := make(map[string]bool)
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("task %q: malformed option %q", t.Name, f)
		}
		switch key {
		case "in", "out", "inout":
			var names []string
			for _, rn := range strings.Split(val, ",") {
				if !regions[rn] {
					return fmt.Errorf("task %q: unknown region %q", t.Name, rn)
				}
				if seen[rn] {
					return fmt.Errorf("task %q: region %q used twice", t.Name, rn)
				}
				seen[rn] = true
				names = append(names, rn)
			}
			switch key {
			case "in":
				t.In = append(t.In, names...)
			case "out":
				t.Out = append(t.Out, names...)
			default:
				t.InOut = append(t.InOut, names...)
			}
		case "flops":
			fl, err := strconv.ParseFloat(val, 64)
			if err != nil || fl < 0 || fl > 1e12 {
				return fmt.Errorf("task %q: flops %q outside [0, 1e12]", t.Name, val)
			}
			t.Flops = fl
		default:
			return fmt.Errorf("task %q: unknown option %q", t.Name, f)
		}
	}
	sp.Tasks = append(sp.Tasks, t)
	return nil
}

// specName reports whether s is a grammar-safe identifier.
func specName(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// String renders the spec in canonical form: parsing the result yields
// an identical spec (the fuzz target's round-trip property).
func (sp *Spec) String() string {
	var b strings.Builder
	for _, r := range sp.Regions {
		fmt.Fprintf(&b, "region %s %d", r.Name, r.Bytes)
		if r.Owner >= 0 {
			fmt.Fprintf(&b, " owner=%d", r.Owner)
		}
		b.WriteByte('\n')
	}
	for _, t := range sp.Tasks {
		fmt.Fprintf(&b, "task %s", t.Name)
		for _, kv := range []struct {
			key   string
			names []string
		}{{"in", t.In}, {"out", t.Out}, {"inout", t.InOut}} {
			if len(kv.names) > 0 {
				fmt.Fprintf(&b, " %s=%s", kv.key, strings.Join(kv.names, ","))
			}
		}
		if t.Flops > 0 {
			fmt.Fprintf(&b, " flops=%s", strconv.FormatFloat(t.Flops, 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Build materializes the spec into a runtime: regions as declared
// (owners past the worker count wrap around), tasks with synthetic
// bodies that fill every produced region with a digest of the task name
// and the input contents — deterministic, input-dependent, and
// order-sensitive, so the identity and property suites can hash the
// result.
func (sp *Spec) Build(rt *Runtime, workers int) error {
	for _, sr := range sp.Regions {
		owner := sr.Owner
		if owner >= workers {
			owner %= workers
		}
		if _, err := rt.Region(sr.Name, sr.Bytes, owner); err != nil {
			return err
		}
	}
	for _, st := range sp.Tasks {
		var accs []Access
		var produced []*Region
		for _, kv := range []struct {
			mode  AccessMode
			names []string
		}{{ModeIn, st.In}, {ModeOut, st.Out}, {ModeInOut, st.InOut}} {
			for _, rn := range kv.names {
				rg, ok := rt.RegionByName(rn)
				if !ok {
					return fmt.Errorf("taskrt spec: task %q region %q not in runtime", st.Name, rn)
				}
				accs = append(accs, Access{Region: rg, Mode: kv.mode})
				if kv.mode != ModeIn {
					produced = append(produced, rg)
				}
			}
		}
		name := st.Name
		if _, err := rt.AddTask(name, st.Flops, accs, func(tc *TaskCtx) {
			specBody(tc, name, accs, produced)
		}); err != nil {
			return err
		}
	}
	return nil
}

// specBody is the synthetic task body: digest the task name and every
// read buffer, then fill each produced buffer from the digest.
func specBody(tc *TaskCtx, name string, accs []Access, produced []*Region) {
	d := strDigest(name)
	for _, a := range accs {
		if a.Mode == ModeOut {
			continue
		}
		buf := tc.Data(a.Region)
		d ^= strDigest(a.Region.Name())
		for o := 0; o < len(buf); o += 8 {
			var w [8]byte
			copy(w[:], buf[o:])
			d = splitmix64(d ^ binary.LittleEndian.Uint64(w[:]))
		}
	}
	for _, rg := range produced {
		buf := tc.Data(rg)
		s := splitmix64(d ^ strDigest(rg.Name()))
		for o := 0; o < len(buf); o++ {
			buf[o] = byte(splitmix64(s + uint64(o)))
		}
	}
}

// strDigest folds a string into a splitmix state.
func strDigest(s string) uint64 {
	d := uint64(len(s))
	for i := 0; i < len(s); i++ {
		d = splitmix64(d ^ uint64(s[i])<<((i%8)*8))
	}
	return d
}

// SortedRegionNames returns the spec's region names sorted — a helper
// for reports that must not range over parser maps (detorder).
func (sp *Spec) SortedRegionNames() []string {
	names := make([]string, len(sp.Regions))
	for i, r := range sp.Regions {
		names[i] = r.Name
	}
	sort.Strings(names)
	return names
}
