package taskrt

import (
	"fmt"
	"strings"
	"testing"

	"vscc/internal/fault"
	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/vscc"
)

// The taskrt fault matrix: the stencil workload run under each fault
// class, twice — the irregular, steal-driven traffic must complete with
// regions byte-identical to the fault-free reference, and the whole
// observable record (end cycle, completion order, injector events) must
// be rerun-identical, exactly as the SPMD fault matrix demands.

// faultRun executes the stencil under one parsed fault spec and
// returns the runtime, the system and the end cycle.
func faultRun(t *testing.T, spec string, scheme vscc.Scheme) (*Runtime, *vscc.System, sim.Cycles) {
	t.Helper()
	fcfg, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: scheme, Faults: fcfg})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	session, err := sys.NewSessionAt([]rcce.Place{
		{Dev: 0, Core: 0}, {Dev: 1, Core: 0}, {Dev: 0, Core: 1}, {Dev: 1, Core: 1},
	})
	if err != nil {
		t.Fatalf("NewSessionAt: %v", err)
	}
	rt := New(Config{Scheme: scheme})
	if err := Build(rt, "stencil", 4, 6, 4); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := rt.Run(session); err != nil {
		t.Fatalf("Run under %q: %v", spec, err)
	}
	return rt, sys, k.Now()
}

// faultDigest renders everything observable about one faulted run.
func faultDigest(rt *Runtime, sys *vscc.System, end sim.Cycles) string {
	var b strings.Builder
	fmt.Fprintf(&b, "end=%d hash=%s steals=%d doorbells=%d moved=%d\norder=%v\n",
		end, rt.StateHash(), rt.Stats().Steals, rt.Stats().Doorbells,
		rt.Stats().MovedBytes, rt.ExecOrder())
	if sys.Injector != nil {
		b.WriteString(sys.Injector.Summary())
	}
	return b.String()
}

// TestTaskrtFaultMatrix runs the {drop,dup,delay,stall,devcrash} matrix
// against the stencil: every class completes with the fault-free hash,
// injects at least one event of its kind, and reruns byte-identically.
func TestTaskrtFaultMatrix(t *testing.T) {
	const scheme = vscc.SchemeVDMA
	cleanRt, _, _ := faultRun(t, "", scheme)
	want := cleanRt.StateHash()
	for _, tc := range []struct {
		name string
		spec string
		stat string
	}{
		{"drop", "seed=9,drop=120", "inject.drop"},
		{"dup", "seed=9,dup=250", "inject.dup"},
		{"delay", "seed=9,delay=150:2500", "inject.delay"},
		{"stall", "seed=9,stall=60000:20000", "inject.stall"},
		{"devcrash", "seed=9,devcrash=80000:1:120000,ckpt=30000,devretry=1", "inject.devcrash"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rt, sys, end := faultRun(t, tc.spec, scheme)
			if got := rt.StateHash(); got != want {
				t.Errorf("hash diverged from fault-free run under %q", tc.spec)
			}
			if got := sys.Injector.Stat(tc.stat); got == 0 {
				t.Errorf("%s = 0 under %q; schedule never fired", tc.stat, tc.spec)
			}
			first := faultDigest(rt, sys, end)
			rt2, sys2, end2 := faultRun(t, tc.spec, scheme)
			if second := faultDigest(rt2, sys2, end2); second != first {
				t.Errorf("rerun diverged under %q:\nfirst:\n%s\nrerun:\n%s", tc.spec, first, second)
			}
		})
	}
}

// TestTaskrtDevCrashRecovery pins the devcrash path in detail: the
// crash must actually interrupt the run (later end cycle than the
// fault-free run), the device must rejoin, and all three workloads must
// still match their serial references.
func TestTaskrtDevCrashRecovery(t *testing.T) {
	const spec = "seed=5,devcrash=100000:1:150000,ckpt=40000,devretry=1"
	_, _, cleanEnd := faultRun(t, "", vscc.SchemeCachedGet)
	rt, sys, end := faultRun(t, spec, vscc.SchemeCachedGet)
	if end <= cleanEnd {
		t.Errorf("devcrash run ended at %d, fault-free at %d; outage had no effect", end, cleanEnd)
	}
	if got := sys.Injector.Stat("recover.rejoin"); got != 1 {
		t.Errorf("recover.rejoin = %d, want 1", got)
	}
	if st := sys.Membership.State(1); st != vscc.DevUp {
		t.Errorf("device 1 finished in state %v, want up", st)
	}
	ref := New(Config{})
	if err := Build(ref, "stencil", 4, 6, 4); err != nil {
		t.Fatalf("Build(ref): %v", err)
	}
	if err := ref.RunSerial(4); err != nil {
		t.Fatalf("RunSerial: %v", err)
	}
	if rt.StateHash() != ref.StateHash() {
		t.Error("stencil under devcrash diverged from the serial reference")
	}
}
