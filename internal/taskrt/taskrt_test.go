package taskrt

import (
	"strings"
	"testing"

	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/vscc"
)

// newSession builds a fresh system and session for one taskrt run.
func newSession(t testing.TB, devices, ranks int, scheme vscc.Scheme) *rcce.Session {
	t.Helper()
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: devices, Scheme: scheme})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	// Round-robin placement across devices, so worker traffic (steals,
	// doorbells, staging) crosses the fabric rather than staying on
	// device 0 as a linear 4-rank placement would.
	places := make([]rcce.Place, ranks)
	for i := range places {
		places[i] = rcce.Place{Dev: i % devices, Core: i / devices}
	}
	session, err := sys.NewSessionAt(places)
	if err != nil {
		t.Fatalf("NewSessionAt: %v", err)
	}
	return session
}

// runWorkload builds a workload and runs it on a fresh session,
// returning the runtime for inspection.
func runWorkload(t *testing.T, workload string, size, iters, devices, ranks int, scheme vscc.Scheme) *Runtime {
	t.Helper()
	rt := New(Config{Scheme: scheme})
	if err := Build(rt, workload, size, iters, ranks); err != nil {
		t.Fatalf("Build(%s): %v", workload, err)
	}
	if err := rt.Run(newSession(t, devices, ranks, scheme)); err != nil {
		t.Fatalf("Run(%s): %v", workload, err)
	}
	return rt
}

// serialHash runs the workload's pure-Go reference and returns its hash.
func serialHash(t *testing.T, workload string, size, iters, ranks int) string {
	t.Helper()
	rt := New(Config{})
	if err := Build(rt, workload, size, iters, ranks); err != nil {
		t.Fatalf("Build(%s): %v", workload, err)
	}
	if err := rt.RunSerial(ranks); err != nil {
		t.Fatalf("RunSerial(%s): %v", workload, err)
	}
	return rt.StateHash()
}

// allSchemes is every communication scheme of the paper (plus the
// routing baseline prototype).
var allSchemes = []vscc.Scheme{
	vscc.SchemeRouting, vscc.SchemeHostRouted, vscc.SchemeHWAccel,
	vscc.SchemeCachedGet, vscc.SchemeRemotePut, vscc.SchemeVDMA,
}

// TestWorkloadsMatchSerialAcrossSchemes is the core correctness bar:
// every workload, on every communication scheme, ends with regions
// byte-identical to the pure-Go serial reference.
func TestWorkloadsMatchSerialAcrossSchemes(t *testing.T) {
	const ranks = 4
	for _, wl := range Workloads() {
		size, iters := 3, 4
		if wl == "kv" {
			size, iters = 5, 24
		}
		want := serialHash(t, wl, size, iters, ranks)
		for _, scheme := range allSchemes {
			rt := runWorkload(t, wl, size, iters, 2, ranks, scheme)
			if got := rt.StateHash(); got != want {
				t.Errorf("%s on %s: hash %s, serial reference %s", wl, scheme.Key(), got, want)
			}
			if rt.Stats().Tasks != rt.NumTasks() {
				t.Errorf("%s on %s: executed %d of %d tasks", wl, scheme.Key(), rt.Stats().Tasks, rt.NumTasks())
			}
		}
	}
}

// TestCholeskyFactorizes checks the numerics: L·Lᵀ reconstructs the
// input matrix within float tolerance.
func TestCholeskyFactorizes(t *testing.T) {
	const tiles, b, ranks = 2, 4, 2
	rt := New(Config{Scheme: vscc.SchemeVDMA})
	if err := BuildCholesky(rt, tiles, b, ranks); err != nil {
		t.Fatalf("BuildCholesky: %v", err)
	}
	if err := rt.Run(newSession(t, 2, ranks, vscc.SchemeVDMA)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	n := tiles * b
	l := make([][]float64, n)
	for r := range l {
		l[r] = make([]float64, n)
	}
	for i := 0; i < tiles; i++ {
		for j := 0; j <= i; j++ {
			rg, ok := rt.RegionByName("A." + itoa(i) + "." + itoa(j))
			if !ok {
				t.Fatalf("tile %d,%d missing", i, j)
			}
			buf := rg.Snapshot()
			for r := 0; r < b; r++ {
				for c := 0; c < b; c++ {
					l[i*b+r][j*b+c] = getF(buf, r*b+c)
				}
			}
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c <= r; c++ {
			var v float64
			for p := 0; p < n; p++ {
				v += l[r][p] * l[c][p]
			}
			want := choleskyInput(r, c, n)
			if d := v - want; d > 1e-9 || d < -1e-9 {
				t.Fatalf("LLᵀ[%d][%d] = %g, want %g", r, c, v, want)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestMoveClassesExercised checks one run touches all three move
// strategies: the stencil mixes 128 B edges with multi-KB bodies.
func TestMoveClassesExercised(t *testing.T) {
	rt := New(Config{Scheme: vscc.SchemeVDMA})
	// 8-wide edges (64 B ≤ vdma's 64 B direct cutoff), 1 KB strip
	// bodies (cached-MPB), and a 16 KB extra region forced over the MPB
	// split for the vDMA class.
	if err := BuildStencil(rt, 8, 16, 4, 2, 4); err != nil {
		t.Fatalf("BuildStencil: %v", err)
	}
	big, err := rt.Region("bulk", 16*1024, 1)
	if err != nil {
		t.Fatalf("Region: %v", err)
	}
	if _, err := rt.AddTask("bulkwrite", 0, []Access{Out(big)}, nil); err != nil {
		t.Fatalf("AddTask: %v", err)
	}
	if _, err := rt.AddTask("bulkread", 0, []Access{In(big)}, nil); err != nil {
		t.Fatalf("AddTask: %v", err)
	}
	if err := rt.Run(newSession(t, 2, 4, vscc.SchemeVDMA)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := rt.Stats()
	for class := vscc.MoveDirect; class <= vscc.MoveVDMA; class++ {
		if st.Moves[class] == 0 {
			t.Errorf("move class %s never used: %+v", class, st)
		}
	}
	if st.MovedBytes == 0 || st.LocalMoves == 0 {
		t.Errorf("movement accounting empty: %+v", st)
	}
}

// TestRerunIdentical reruns the same workload and compares every
// observable: hash, completion order, per-task workers, stats, cycles.
func TestRerunIdentical(t *testing.T) {
	run := func() (*Runtime, sim.Cycles) {
		rt := New(Config{Scheme: vscc.SchemeCachedGet})
		if err := Build(rt, "kv", 4, 32, 4); err != nil {
			t.Fatalf("Build: %v", err)
		}
		session := newSession(t, 2, 4, vscc.SchemeCachedGet)
		if err := rt.Run(session); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rt, session.Chip(0).Kernel.Now()
	}
	a, acyc := run()
	b, bcyc := run()
	if a.StateHash() != b.StateHash() {
		t.Errorf("hash differs across reruns")
	}
	if acyc != bcyc {
		t.Errorf("end cycle differs: %d vs %d", acyc, bcyc)
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
	ao, bo := a.ExecOrder(), b.ExecOrder()
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatalf("exec order differs at %d: task %d vs %d", i, ao[i], bo[i])
		}
	}
	for id := 0; id < a.NumTasks(); id++ {
		if a.Task(id).ExecutedBy() != b.Task(id).ExecutedBy() {
			t.Fatalf("task %d worker differs: %d vs %d", id, a.Task(id).ExecutedBy(), b.Task(id).ExecutedBy())
		}
	}
}

// TestGraphValidation exercises the construction error paths.
func TestGraphValidation(t *testing.T) {
	rt := New(Config{})
	rg, err := rt.Region("r", 64, -1)
	if err != nil {
		t.Fatalf("Region: %v", err)
	}
	for _, tc := range []struct {
		name string
		call func() error
		want string
	}{
		{"empty region name", func() error { _, err := rt.Region("", 1, -1); return err }, "empty name"},
		{"dup region", func() error { _, err := rt.Region("r", 1, -1); return err }, "duplicate"},
		{"zero size", func() error { _, err := rt.Region("z", 0, -1); return err }, "outside"},
		{"huge size", func() error { _, err := rt.Region("h", MaxRegionBytes+1, -1); return err }, "outside"},
		{"bad owner", func() error { _, err := rt.Region("o", 1, -2); return err }, "owner"},
		{"empty task name", func() error { _, err := rt.AddTask("", 0, nil, nil); return err }, "empty name"},
		{"negative flops", func() error { _, err := rt.AddTask("t", -1, nil, nil); return err }, "negative flops"},
		{"nil region", func() error { _, err := rt.AddTask("t", 0, []Access{{}}, nil); return err }, "no region"},
		{"dup access", func() error {
			_, err := rt.AddTask("t", 0, []Access{In(rg), Out(rg)}, nil)
			return err
		}, "twice"},
		{"foreign region", func() error {
			other := New(Config{})
			org, _ := other.Region("x", 8, -1)
			_, err := rt.AddTask("t", 0, []Access{In(org)}, nil)
			return err
		}, "another runtime"},
	} {
		err := tc.call()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := rt.RunSerial(2); err != nil {
		t.Fatalf("RunSerial: %v", err)
	}
	if _, err := rt.Region("late", 1, -1); err == nil {
		t.Error("region after Run accepted")
	}
	if _, err := rt.AddTask("late", 0, nil, nil); err == nil {
		t.Error("task after Run accepted")
	}
	if err := rt.RunSerial(2); err == nil {
		t.Error("second run accepted (runtime is single-use)")
	}
	if err := New(Config{}).RunSerial(0); err == nil {
		t.Error("zero workers accepted")
	}
	bad := New(Config{})
	if _, err := bad.Region("r", 8, 7); err != nil {
		t.Fatalf("Region: %v", err)
	}
	if err := bad.RunSerial(2); err == nil {
		t.Error("owner outside worker count accepted")
	}
}

// TestModeAndClassStrings pins the enum names used in metrics.
func TestModeAndClassStrings(t *testing.T) {
	for want, got := range map[string]string{
		"in": ModeIn.String(), "out": ModeOut.String(), "inout": ModeInOut.String(),
		"invalid": AccessMode(9).String(),
	} {
		if got != want {
			t.Errorf("mode string %q, want %q", got, want)
		}
	}
	for _, tc := range []struct {
		scheme vscc.Scheme
		bytes  int
		want   vscc.MoveClass
	}{
		{vscc.SchemeVDMA, 64, vscc.MoveDirect},
		{vscc.SchemeVDMA, 65, vscc.MoveCachedMPB},
		{vscc.SchemeRouting, 32, vscc.MoveDirect},
		{vscc.SchemeRouting, 33, vscc.MoveCachedMPB},
		{vscc.SchemeRemotePut, 128, vscc.MoveDirect},
		{vscc.SchemeCachedGet, vscc.MPBSplitBytes, vscc.MoveCachedMPB},
		{vscc.SchemeCachedGet, vscc.MPBSplitBytes + 1, vscc.MoveVDMA},
	} {
		if got := vscc.ClassifyMove(tc.scheme, tc.bytes); got != tc.want {
			t.Errorf("ClassifyMove(%s, %d) = %s, want %s", tc.scheme.Key(), tc.bytes, got, tc.want)
		}
	}
	if vscc.MoveClass(9).String() != "invalid" {
		t.Error("invalid class string")
	}
}

// TestBuildErrors covers workload parameter validation.
func TestBuildErrors(t *testing.T) {
	if err := Build(New(Config{}), "nope", 1, 1, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := BuildCholesky(New(Config{}), 0, 4, 1); err == nil {
		t.Error("cholesky tiles=0 accepted")
	}
	if err := BuildStencil(New(Config{}), 4, 1, 1, 1, 1); err == nil {
		t.Error("stencil rows=1 accepted")
	}
	if err := BuildKV(New(Config{}), 1, 32, 1, 1, 1); err == nil {
		t.Error("kv shardBytes=32 accepted")
	}
}
