package taskrt

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Build populates rt with one of the named workloads using harness-level
// knobs: size scales the data decomposition, iters the request/sweep
// count, workers the rank count the graph will run on (region owners are
// assigned against it).
//
//	cholesky: size×size tile grid of 16×16 float64 tiles
//	stencil:  size horizontal strips of a 16-wide Jacobi grid, iters sweeps
//	kv:       size shards of 2 KB, iters deterministic requests
func Build(rt *Runtime, workload string, size, iters, workers int) error {
	switch workload {
	case "cholesky":
		return BuildCholesky(rt, size, 16, workers)
	case "stencil":
		return BuildStencil(rt, 16, 8, size, iters, workers)
	case "kv":
		return BuildKV(rt, size, 2048, iters, 1, workers)
	}
	return fmt.Errorf("taskrt: unknown workload %q (cholesky|stencil|kv)", workload)
}

// Workloads lists the Build names.
func Workloads() []string { return []string{"cholesky", "stencil", "kv"} }

// getF and putF view a region buffer as a little-endian float64 array.
func getF(b []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
}

func putF(b []byte, i int, v float64) {
	binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
}

// splitmix64 is the same keyed generator the fault injector uses:
// deterministic, allocation-free, and usable in model packages where
// math/rand is off limits (kernelclock lint).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
