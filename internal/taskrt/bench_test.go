package taskrt

import (
	"testing"

	"vscc/internal/vscc"
)

// BenchmarkTaskrtWorkloads measures one full run of each workload —
// graph construction, the simulated execution with stealing and
// argument movement, and the state hash — on the vDMA scheme over two
// devices and four ranks, the taskrt-identity configuration. Recorded
// in BENCH_kernel.json under "taskrt" and compared by the CI
// bench-regression job.
func BenchmarkTaskrtWorkloads(b *testing.B) {
	for _, wl := range Workloads() {
		b.Run(wl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := New(Config{Scheme: vscc.SchemeVDMA})
				if err := Build(rt, wl, 4, 8, 4); err != nil {
					b.Fatal(err)
				}
				if err := rt.Run(newSession(b, 2, 4, vscc.SchemeVDMA)); err != nil {
					b.Fatal(err)
				}
				if rt.StateHash() == "" {
					b.Fatal("empty hash")
				}
			}
		})
	}
}
