package taskrt

import "fmt"

// BuildCholesky populates rt with a right-looking blocked Cholesky
// factorization of a tiles×tiles grid of b×b float64 tiles — the
// classic task-dataflow showcase (BDDT-SCC's motivating kernel): potrf
// on the diagonal, trsm down the panel, syrk/gemm across the trailing
// matrix, all dependences derived from the tile accesses alone. The
// input is a deterministic symmetric diagonally-dominant matrix, so the
// factorization exists and every body is a pure function of its tiles.
//
// Only the lower triangle is stored. Tile (i,j) is owned block-cyclically
// by rank (i + j) % workers, so panels fan across ranks and the trailing
// updates generate cross-rank argument movement at every step.
func BuildCholesky(rt *Runtime, tiles, b, workers int) error {
	if tiles <= 0 || b <= 0 || workers <= 0 {
		return fmt.Errorf("taskrt: cholesky tiles=%d b=%d workers=%d", tiles, b, workers)
	}
	n := tiles * b
	a := make([][]*Region, tiles)
	for i := 0; i < tiles; i++ {
		a[i] = make([]*Region, i+1)
		for j := 0; j <= i; j++ {
			rg, err := rt.Region(fmt.Sprintf("A.%d.%d", i, j), b*b*8, (i+j)%workers)
			if err != nil {
				return err
			}
			a[i][j] = rg
			i, j := i, j
			if _, err := rt.AddTask(fmt.Sprintf("init.%d.%d", i, j), float64(b*b),
				[]Access{Out(rg)}, func(tc *TaskCtx) {
					buf := tc.Data(rg)
					for r := 0; r < b; r++ {
						for c := 0; c < b; c++ {
							putF(buf, r*b+c, choleskyInput(i*b+r, j*b+c, n))
						}
					}
				}); err != nil {
				return err
			}
		}
	}
	for k := 0; k < tiles; k++ {
		akk := a[k][k]
		if _, err := rt.AddTask(fmt.Sprintf("potrf.%d", k), float64(b*b*b)/3,
			[]Access{InOut(akk)}, func(tc *TaskCtx) {
				potrf(tc.Data(akk), b)
			}); err != nil {
			return err
		}
		for i := k + 1; i < tiles; i++ {
			aik := a[i][k]
			if _, err := rt.AddTask(fmt.Sprintf("trsm.%d.%d", i, k), float64(b*b*b),
				[]Access{In(akk), InOut(aik)}, func(tc *TaskCtx) {
					trsm(tc.Data(akk), tc.Data(aik), b)
				}); err != nil {
				return err
			}
		}
		for i := k + 1; i < tiles; i++ {
			aik := a[i][k]
			for j := k + 1; j <= i; j++ {
				ajk, aij := a[j][k], a[i][j]
				name, flops := fmt.Sprintf("gemm.%d.%d.%d", i, j, k), float64(2*b*b*b)
				accs := []Access{In(aik), In(ajk), InOut(aij)}
				if j == i {
					name, flops = fmt.Sprintf("syrk.%d.%d", i, k), float64(b*b*b)
					accs = []Access{In(aik), InOut(aij)}
				}
				if _, err := rt.AddTask(name, flops, accs, func(tc *TaskCtx) {
					gemmNT(tc.Data(aik), tc.Data(ajk), tc.Data(aij), b)
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// choleskyInput is the element (r,c) of the deterministic input matrix:
// symmetric, and diagonally dominant so the factorization never hits a
// non-positive pivot.
func choleskyInput(r, c, n int) float64 {
	d := r - c
	if d < 0 {
		d = -d
	}
	v := 1.0 / float64(1+d)
	if r == c {
		v += 2 * float64(n)
	}
	return v
}

// potrf factors a b×b tile in place: A = L·Lᵀ, lower triangle.
func potrf(ab []byte, b int) {
	for c := 0; c < b; c++ {
		d := getF(ab, c*b+c)
		for p := 0; p < c; p++ {
			l := getF(ab, c*b+p)
			d -= l * l
		}
		d = sqrtPos(d)
		putF(ab, c*b+c, d)
		for r := c + 1; r < b; r++ {
			v := getF(ab, r*b+c)
			for p := 0; p < c; p++ {
				v -= getF(ab, r*b+p) * getF(ab, c*b+p)
			}
			putF(ab, r*b+c, v/d)
		}
		for r := 0; r < c; r++ {
			putF(ab, r*b+c, 0)
		}
	}
}

// trsm solves X·Lᵀ = A in place over tile ab (the panel update below a
// factored diagonal tile lb).
func trsm(lb, ab []byte, b int) {
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			v := getF(ab, r*b+c)
			for p := 0; p < c; p++ {
				v -= getF(ab, r*b+p) * getF(lb, c*b+p)
			}
			putF(ab, r*b+c, v/getF(lb, c*b+c))
		}
	}
}

// gemmNT computes C -= A·Bᵀ over b×b tiles (with A==B it is the syrk
// trailing update).
func gemmNT(a, b2, c []byte, b int) {
	for r := 0; r < b; r++ {
		for s := 0; s < b; s++ {
			v := getF(c, r*b+s)
			for p := 0; p < b; p++ {
				v -= getF(a, r*b+p) * getF(b2, s*b+p)
			}
			putF(c, r*b+s, v)
		}
	}
}

// sqrtPos is a deterministic Newton square root for positive pivots
// (avoids pulling math.Sqrt's IEEE notes into the determinism argument;
// converged Newton on float64 is bit-stable).
func sqrtPos(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	if g > 1 {
		g = (g + 1) / 2
	}
	for i := 0; i < 64; i++ {
		n := (g + x/g) / 2
		if n == g {
			break
		}
		g = n
	}
	return g
}
