package harness

import (
	"testing"

	"vscc/internal/npb"
	"vscc/internal/vscc"
)

func classFor(t *testing.T) npb.Class { t.Helper(); return npb.ClassA }

func schemeFor(i int) vscc.Scheme {
	if i == 0 {
		return vscc.SchemeVDMA
	}
	return vscc.SchemeRouting
}

// TestOnChipDistanceMatters checks the physical fidelity behind the
// paper's §3 mapping discussion ("a neighboring communication rank does
// not guarantee a small communication distance"): ping-pong between
// far-apart tiles is slower than between adjacent cores.
func TestOnChipDistanceMatters(t *testing.T) {
	near, err := OnChipPingPong(nil, 0, 1, []int{8192}, 3) // same tile
	if err != nil {
		t.Fatal(err)
	}
	far, err := OnChipPingPong(nil, 0, 47, []int{8192}, 3) // opposite corners
	if err != nil {
		t.Fatal(err)
	}
	if far[0].MBps >= near[0].MBps {
		t.Errorf("cross-mesh pair (%.1f MB/s) should be slower than same-tile (%.1f MB/s)",
			far[0].MBps, near[0].MBps)
	}
	// But both stay within the on-chip class: far better than half.
	if far[0].MBps < near[0].MBps/2 {
		t.Errorf("distance penalty too harsh: %.1f vs %.1f MB/s", far[0].MBps, near[0].MBps)
	}
}

// TestFig7SmallScaleShape asserts the two defining properties of the
// Fig. 7 curves at test-friendly scale: the optimal scheme scales across
// the device boundary, the routing scheme collapses there.
func TestFig7SmallScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second BT runs")
	}
	run := func(scheme int, ranks int) float64 {
		pt, err := BTRun(BTSweepConfig{
			Class:      classFor(t),
			Iterations: 1,
			Scheme:     schemeFor(scheme),
			Devices:    2,
		}, ranks)
		if err != nil {
			t.Fatal(err)
		}
		return pt.GFlops
	}
	withinDevice := run(0, 36)
	acrossOpt := run(0, 64)
	acrossWorst := run(1, 64)
	if acrossOpt <= withinDevice {
		t.Errorf("optimal scheme did not scale past the device boundary: %.2f -> %.2f", withinDevice, acrossOpt)
	}
	if acrossWorst >= acrossOpt/1.5 {
		t.Errorf("routing (%.2f) should trail the optimal scheme (%.2f) clearly", acrossWorst, acrossOpt)
	}
}
