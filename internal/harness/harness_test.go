package harness

import (
	"testing"

	"vscc/internal/npb"
	"vscc/internal/vscc"
)

func TestSizes6Range(t *testing.T) {
	sizes := Sizes6()
	if sizes[0] != 32 || sizes[len(sizes)-1] != 256*1024 {
		t.Errorf("sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != 2*sizes[i-1] {
			t.Error("sizes not powers of two")
		}
	}
}

func TestPingPongThroughputPositiveAndMonotoneClass(t *testing.T) {
	pts, err := OnChipPingPong(nil, 0, 1, []int{256, 4096}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].MBps <= 0 || pts[1].MBps <= pts[0].MBps {
		t.Errorf("throughput not increasing with size: %+v", pts)
	}
}

func TestToSeriesAndPeak(t *testing.T) {
	pts := []PingPongPoint{{Size: 32, MBps: 5}, {Size: 64, MBps: 9}}
	s := ToSeries("x", pts)
	if len(s.Points) != 2 || s.Name != "x" {
		t.Errorf("series = %+v", s)
	}
	if PeakMBps(pts) != 9 {
		t.Errorf("peak = %v", PeakMBps(pts))
	}
	if PeakMBps(nil) != 0 {
		t.Error("empty peak != 0")
	}
}

func TestClaimsMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("claims sweep is a full Fig. 6 measurement")
	}
	c, err := MeasureClaims(2)
	if err != nil {
		t.Fatal(err)
	}
	// E7: on-chip peak ~150 MB/s.
	if c.OnChipIRCCEPeak < 120 || c.OnChipIRCCEPeak > 180 {
		t.Errorf("on-chip iRCCE peak = %.1f, want ~150", c.OnChipIRCCEPeak)
	}
	// E5: recover ~24 % of on-chip performance.
	if c.RecoveredFraction < 0.18 || c.RecoveredFraction > 0.33 {
		t.Errorf("recovered fraction = %.3f, want ~0.24", c.RecoveredFraction)
	}
	// E6: worst optimized scheme ~71.72 % of the hardware limit.
	if c.CachedOfLimit < 0.60 || c.CachedOfLimit > 0.80 {
		t.Errorf("cached/limit = %.3f, want ~0.717", c.CachedOfLimit)
	}
	// E8: latency factor ~120x.
	if c.LatencyFactor < 80 || c.LatencyFactor > 160 {
		t.Errorf("latency factor = %.0f, want ~120", c.LatencyFactor)
	}
	// E9: the 8 kB MPB drop exists for the cached scheme, not for vDMA.
	if !c.CachedHasDrop {
		t.Error("LP/RG should drop at the MPB boundary")
	}
	if c.VDMAHasDrop {
		t.Error("pipelined LP/LG should not drop at the MPB boundary")
	}
	// Fig. 6b ordering.
	if !(c.RoutingPeak < c.LowerPeak && c.LowerPeak < c.CachedPeak &&
		c.CachedPeak < c.RemotePutPeak && c.RemotePutPeak < c.VDMAPeak &&
		c.VDMAPeak < c.UpperPeak) {
		t.Errorf("Fig 6b ordering violated: %+v", c)
	}
	if c.Report() == "" {
		t.Error("empty report")
	}
}

func TestBTRunSmall(t *testing.T) {
	pt, err := BTRun(BTSweepConfig{Class: npb.ClassW, Iterations: 1, Scheme: vscc.SchemeVDMA, Devices: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if pt.GFlops <= 0 || pt.Ranks != 16 {
		t.Errorf("bt point = %+v", pt)
	}
}

func TestCaptureTrafficScaling(t *testing.T) {
	m, err := CaptureTraffic(TrafficConfig{
		Class: npb.ClassW, Ranks: 4, Iterations: 1, ScaleTo: 10, Scheme: vscc.SchemeVDMA,
	})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := CaptureTraffic(TrafficConfig{
		Class: npb.ClassW, Ranks: 4, Iterations: 1, ScaleTo: 1, Scheme: vscc.SchemeVDMA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != 10*m1.Total() {
		t.Errorf("scaled total %d != 10x %d", m.Total(), m1.Total())
	}
}
