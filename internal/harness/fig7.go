package harness

import (
	"fmt"

	"vscc/internal/npb"
	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/vscc"
)

// BTPoint is one Fig. 7 measurement.
type BTPoint struct {
	Ranks  int
	GFlops float64
	Cycles sim.Cycles
}

// BTSweepConfig controls a Fig. 7 sweep.
type BTSweepConfig struct {
	Class npb.Class
	// Iterations per run (steady state); the class default (200) is
	// impractical inside the simulator, so runs use a few iterations —
	// per-iteration time is steady, so GFLOP/s is unaffected.
	Iterations int
	// Scheme is the inter-device configuration (the paper contrasts the
	// optimal vDMA scheme with the worst-case transparent routing).
	Scheme vscc.Scheme
	// Devices sizes the vSCC (5 for the 240-core flagship).
	Devices int
}

// BTSweep runs NPB BT for each square rank count and returns the
// scalability curve. Rank counts above one device's 48 cores exercise
// the inter-device path. Each count is an independent simulation on its
// own vSCC, so the sweep fans out across the worker pool (see
// SetParallelism) with results in input order.
func BTSweep(cfg BTSweepConfig, counts []int) ([]BTPoint, error) {
	return mapPoints(counts, func(ranks int) (BTPoint, error) {
		return BTRun(cfg, ranks)
	})
}

// LUSweep is BTSweep for the NPB LU extension workload.
func LUSweep(cfg BTSweepConfig, counts []int) ([]BTPoint, error) {
	return mapPoints(counts, func(ranks int) (BTPoint, error) {
		return LURun(cfg, ranks)
	})
}

// BTRun executes one BT configuration on a fresh vSCC.
func BTRun(cfg BTSweepConfig, ranks int) (BTPoint, error) {
	if cfg.Devices == 0 {
		cfg.Devices = (ranks + 47) / 48
		if cfg.Devices < 1 {
			cfg.Devices = 1
		}
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 2
	}
	if w := PDESWorkers(); w > 0 {
		return btRunPDES(cfg, ranks, w)
	}
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, sysConfig(vscc.Config{Devices: cfg.Devices, Scheme: cfg.Scheme}))
	if err != nil {
		return BTPoint{}, err
	}
	sink := observe(fmt.Sprintf("fig7/bt/%s/ranks=%03d", cfg.Scheme.Key(), ranks), k)
	sys.Instrument(sink)
	session, err := sys.NewSession(ranks, rcce.WithSink(sink))
	if err != nil {
		return BTPoint{}, err
	}
	d, err := npb.NewDecomp(cfg.Class.N, ranks)
	if err != nil {
		return BTPoint{}, err
	}
	res, err := npb.RunOn(session, d, npb.Config{
		Class:      cfg.Class,
		Iterations: cfg.Iterations,
		Timing:     true,
	})
	if err != nil {
		return BTPoint{}, fmt.Errorf("bt ranks=%d: %w", ranks, err)
	}
	return BTPoint{Ranks: ranks, GFlops: res.GFlops, Cycles: res.Cycles}, nil
}

// LURun executes the NPB LU extension workload (latency-bound wavefront
// sweeps — the communication contrast to BT) on a fresh vSCC.
func LURun(cfg BTSweepConfig, ranks int) (BTPoint, error) {
	if cfg.Devices == 0 {
		cfg.Devices = (ranks + 47) / 48
		if cfg.Devices < 1 {
			cfg.Devices = 1
		}
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 2
	}
	if w := PDESWorkers(); w > 0 {
		return luRunPDES(cfg, ranks, w)
	}
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, sysConfig(vscc.Config{Devices: cfg.Devices, Scheme: cfg.Scheme}))
	if err != nil {
		return BTPoint{}, err
	}
	sink := observe(fmt.Sprintf("fig7/lu/%s/ranks=%03d", cfg.Scheme.Key(), ranks), k)
	sys.Instrument(sink)
	session, err := sys.NewSession(ranks, rcce.WithSink(sink))
	if err != nil {
		return BTPoint{}, err
	}
	d, err := npb.NewLUDecomp(cfg.Class.N, ranks)
	if err != nil {
		return BTPoint{}, err
	}
	res, err := npb.RunLU(session, d, npb.Config{
		Class:      cfg.Class,
		Iterations: cfg.Iterations,
		Timing:     true,
	})
	if err != nil {
		return BTPoint{}, fmt.Errorf("lu ranks=%d: %w", ranks, err)
	}
	return BTPoint{Ranks: ranks, GFlops: res.GFlops, Cycles: res.Cycles}, nil
}
