package harness

import (
	"fmt"
	"sync/atomic"

	"vscc/internal/npb"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

// pdesWorkers mirrors the -pdes flag of the commands: 0 runs the
// classic single-kernel engine, N>0 runs the domain-decomposed engine
// (one kernel per device plus the host kernel) with N worker
// goroutines. N=1 is the serial identity reference: by the PDES
// determinism contract its output is byte-identical to any N.
var pdesWorkers atomic.Int64

// SetPDES selects the simulation engine for every measurement this
// package subsequently runs: 0 = classic single kernel, N>0 = PDES
// with N workers. Process-wide, like SetParallelism; it returns the
// previous setting.
func SetPDES(workers int) int { return int(pdesWorkers.Swap(int64(workers))) }

// PDESWorkers reports the currently selected PDES worker count (0 =
// classic engine).
func PDESWorkers() int { return int(pdesWorkers.Load()) }

// pdesSinks builds one observability sink per kernel of a decomposed
// system, labelled <label>/k<N> (device kernels) and <label>/khost, and
// attaches them. Per-kernel sinks are required under PDES because a
// sink is single-kernel state.
func pdesSinks(label string, sys *vscc.PDESSystem) []*trace.Sink {
	n := sys.PDES.N()
	sinks := make([]*trace.Sink, n)
	for i := 0; i < n-1; i++ {
		sinks[i] = observe(fmt.Sprintf("%s/k%d", label, i), sys.PDES.Kernel(i))
	}
	sinks[n-1] = observe(label+"/khost", sys.PDES.Kernel(n-1))
	sys.Instrument(sinks)
	return sinks
}

// pdesPoint runs one NPB workload (BT or LU, selected by run) on a
// fresh decomposed vSCC.
func pdesPoint(app string, cfg BTSweepConfig, ranks, workers int,
	run func(*vscc.PDESSystem) (npb.Result, error)) (BTPoint, error) {
	sys, err := vscc.NewPDESSystem(sysConfig(vscc.Config{Devices: cfg.Devices, Scheme: cfg.Scheme}), workers)
	if err != nil {
		return BTPoint{}, fmt.Errorf("%s pdes ranks=%d: %w", app, ranks, err)
	}
	// The label deliberately omits the worker count: PDES output is
	// worker-count-invariant, and the CI identity gate byte-compares
	// trace files across worker counts.
	pdesSinks(fmt.Sprintf("fig7/%s/%s/pdes/ranks=%03d", app, cfg.Scheme.Key(), ranks), sys)
	res, err := run(sys)
	if err != nil {
		return BTPoint{}, fmt.Errorf("%s pdes ranks=%d: %w", app, ranks, err)
	}
	return BTPoint{Ranks: ranks, GFlops: res.GFlops, Cycles: res.Cycles}, nil
}

// btRunPDES is BTRun on the decomposed engine.
func btRunPDES(cfg BTSweepConfig, ranks, workers int) (BTPoint, error) {
	return pdesPoint("bt", cfg, ranks, workers, func(sys *vscc.PDESSystem) (npb.Result, error) {
		session, err := sys.NewSession(ranks)
		if err != nil {
			return npb.Result{}, err
		}
		d, err := npb.NewDecomp(cfg.Class.N, ranks)
		if err != nil {
			return npb.Result{}, err
		}
		return npb.RunOn(session, d, npb.Config{Class: cfg.Class, Iterations: cfg.Iterations, Timing: true})
	})
}

// luRunPDES is LURun on the decomposed engine.
func luRunPDES(cfg BTSweepConfig, ranks, workers int) (BTPoint, error) {
	return pdesPoint("lu", cfg, ranks, workers, func(sys *vscc.PDESSystem) (npb.Result, error) {
		session, err := sys.NewSession(ranks)
		if err != nil {
			return npb.Result{}, err
		}
		d, err := npb.NewLUDecomp(cfg.Class.N, ranks)
		if err != nil {
			return npb.Result{}, err
		}
		return npb.RunLU(session, d, npb.Config{Class: cfg.Class, Iterations: cfg.Iterations, Timing: true})
	})
}

// PDESWallClock measures one BT run's host wall-clock time on the
// decomposed engine — the satellite metric behind the kernels-vs-wall-
// clock scaling table (EXPERIMENTS.md E13). It returns the simulated
// result plus the real elapsed nanoseconds as measured by the caller's
// clock function (injected so the harness itself stays clock-free).
func PDESWallClock(cfg BTSweepConfig, ranks, workers int, clock func() int64) (BTPoint, int64, error) {
	start := clock()
	pt, err := btRunPDES(cfg, ranks, workers)
	return pt, clock() - start, err
}
