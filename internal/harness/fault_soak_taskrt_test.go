package harness

import (
	"strings"
	"testing"

	"vscc/internal/vscc"
)

// The taskrt fault soak: a long seeded drop/dup/delay schedule over the
// task runtime's three workloads on every inter-device scheme. Unlike
// the ping-pong soak, the traffic here is irregular — dependence-driven
// argument movement, steals and doorbells — so the retransmit and
// dedup machinery is exercised on exactly the access pattern the SPMD
// soak cannot produce. `-short` runs a 1x schedule (wired into `make
// fault` and the CI fault job); the full schedule scales the workloads
// up (`make soak`).

// taskrtSoakSpec keeps the same low-rate/many-events philosophy as
// soakSpec; no stall windows so every scheme's end cycle reflects only
// the traffic-level faults.
const taskrtSoakSpec = "seed=77,drop=40,dup=25,delay=25:2000"

// taskrtSoakGrid is the workload × scheme grid.
func taskrtSoakGrid() []TaskrtConfig {
	var grid []TaskrtConfig
	for _, wl := range []string{"cholesky", "stencil", "kv"} {
		for _, s := range []vscc.Scheme{vscc.SchemeHostRouted, vscc.SchemeCachedGet, vscc.SchemeRemotePut, vscc.SchemeVDMA} {
			grid = append(grid, TaskrtConfig{Workload: wl, Scheme: s})
		}
	}
	return grid
}

// taskrtSoakSweep runs the grid at the given scale factor and returns
// one digest per point.
func taskrtSoakSweep(scale int) ([]string, error) {
	return mapPoints(taskrtSoakGrid(), func(cfg TaskrtConfig) (string, error) {
		cfg.Size = 3 + scale
		cfg.Iters = 4 * (1 + scale)
		cfg.Replicas = 1
		pts, err := TaskrtSweep(cfg)
		if err != nil {
			return "", err
		}
		return pts[0].String() + "\n", nil
	})
}

// TestFaultSoakTaskrt soaks the task runtime under the seeded schedule:
// serial and 4-way parallel sweeps must produce byte-identical digests,
// every point must both inject faults and steal at least once, and each
// workload's hash must match its fault-free value (computed by a clean
// sweep of the same grid).
func TestFaultSoakTaskrt(t *testing.T) {
	scale := 3
	if testing.Short() {
		scale = 0
	}
	// Fault-free reference hashes first.
	if err := SetFaultSpec(""); err != nil {
		t.Fatal(err)
	}
	var clean []string
	withParallelism(t, 4, func() {
		var err error
		clean, err = taskrtSoakSweep(scale)
		if err != nil {
			t.Fatalf("clean sweep: %v", err)
		}
	})

	if err := SetFaultSpec(taskrtSoakSpec); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetFaultSpec(""); err != nil {
			t.Fatal(err)
		}
	}()
	var serial, parallel []string
	withParallelism(t, 1, func() {
		var err error
		serial, err = taskrtSoakSweep(scale)
		if err != nil {
			t.Fatalf("serial soak: %v", err)
		}
	})
	withParallelism(t, 4, func() {
		var err error
		parallel, err = taskrtSoakSweep(scale)
		if err != nil {
			t.Fatalf("parallel soak: %v", err)
		}
	})
	if strings.Join(serial, "") != strings.Join(parallel, "") {
		t.Errorf("parallel taskrt soak diverged from serial:\nserial:\n%s\nparallel:\n%s",
			strings.Join(serial, ""), strings.Join(parallel, ""))
	}
	var sawInject, sawSteal bool
	for i, digest := range serial {
		if strings.Contains(digest, "inject.") {
			sawInject = true
		}
		if !strings.Contains(digest, "steals=0") {
			sawSteal = true
		}
		// The faulted run must deliver the same region bytes as the
		// clean run: compare the hash= field against the clean digest.
		cleanHash := hashField(clean[i])
		if got := hashField(digest); got != cleanHash {
			t.Errorf("point %d: faulted hash %s, clean hash %s\n%s", i, got, cleanHash, digest)
		}
	}
	if !sawInject {
		t.Error("no soak point saw an injected fault")
	}
	if !sawSteal {
		t.Error("no soak point stole a task; the soak never exercised stealing")
	}
}

// hashField extracts the hash=... token of a taskrt point line.
func hashField(line string) string {
	if i := strings.Index(line, "hash="); i >= 0 {
		return strings.Fields(line[i:])[0]
	}
	return ""
}
