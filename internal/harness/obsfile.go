package harness

import (
	"fmt"
	"io"
	"os"

	"vscc/internal/trace"
)

// Obs owns the observability outputs of one command invocation: the
// collector installed as the harness observer, the Chrome trace path,
// and whether to print the metrics reports.
type Obs struct {
	col       *trace.Collector
	tracePath string
	metrics   bool
}

// EnableObservability installs a trace collector as the harness
// observer when either output was requested and returns the handle to
// Finish with. When neither was, it returns nil and tracing stays fully
// disabled — every measurement runs with a nil sink.
func EnableObservability(tracePath string, metrics bool) *Obs {
	if tracePath == "" && !metrics {
		return nil
	}
	o := &Obs{col: &trace.Collector{}, tracePath: tracePath, metrics: metrics}
	SetObserver(o.col.New)
	return o
}

// Finish emits the requested outputs: metrics reports to w and/or the
// Chrome trace-event JSON file. Safe on a nil receiver (no-op), so
// commands call it unconditionally.
func (o *Obs) Finish(w io.Writer) error {
	if o == nil {
		return nil
	}
	caps := o.col.Captures()
	if o.metrics {
		if _, err := fmt.Fprint(w, trace.Report(caps)); err != nil {
			return err
		}
	}
	if o.tracePath != "" {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, caps); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
