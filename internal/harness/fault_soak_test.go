package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/vscc"
)

// The fault soak: a long seeded schedule of drops, duplicates, delays
// and lost flag writes over every inter-device scheme on the ablation
// topology, run once serially and once fanned out over 4 workers. The
// digest — per-point end cycle plus the injector's event totals — must
// be byte-identical across the two sweeps, the same contract the
// determinism gates hold for the fault-free sweeps. Ten thousand
// transfers in the full run; `-short` is the 1x schedule wired into
// `make check` and the CI fault job.

// soakSpec is the seeded schedule every soak point runs under. The
// rates are low enough that every class still completes through
// recovery (drop -> retransmit, dup -> discard, flagloss -> rewrite)
// and high enough that each fires many times over the soak.
const soakSpec = "seed=42,drop=60,dup=30,delay=30:2500,flagloss=40"

// soakPoint is one cell of the soak grid: a scheme and a message size
// on the two-device ablation topology.
type soakPoint struct {
	scheme vscc.Scheme
	size   int
}

func soakGrid() []soakPoint {
	var grid []soakPoint
	for _, s := range []vscc.Scheme{vscc.SchemeHostRouted, vscc.SchemeCachedGet, vscc.SchemeRemotePut, vscc.SchemeVDMA} {
		for _, size := range []int{256, 1024, 4096} {
			grid = append(grid, soakPoint{s, size})
		}
	}
	return grid
}

// runSoakPoint plays reps cross-device ping-pong rounds (two transfers
// each) under the process-wide fault schedule and renders the point's
// digest: end cycle and injector totals.
func runSoakPoint(pt soakPoint, reps int) (string, error) {
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, sysConfig(vscc.Config{Devices: 2, Scheme: pt.scheme}))
	if err != nil {
		return "", err
	}
	session, err := sys.NewSessionAt([]rcce.Place{{Dev: 0, Core: 0}, {Dev: 1, Core: 0}})
	if err != nil {
		return "", err
	}
	var bad error
	err = session.Run(func(r *rcce.Rank) {
		buf := make([]byte, pt.size)
		for rep := 0; rep < reps; rep++ {
			want := make([]byte, pt.size)
			for i := range want {
				want[i] = byte(i*5+rep) ^ 0xA7
			}
			if r.ID() == 0 {
				if err := r.Send(1, want); err != nil {
					panic(err)
				}
				if err := r.Recv(1, buf); err != nil {
					panic(err)
				}
			} else {
				if err := r.Recv(0, buf); err != nil {
					panic(err)
				}
				if err := r.Send(0, want); err != nil {
					panic(err)
				}
			}
			if !bytes.Equal(buf, want) {
				bad = fmt.Errorf("%s/%d rep %d: payload corrupted", pt.scheme.Key(), pt.size, rep)
			}
		}
	})
	if err != nil {
		return "", err
	}
	if bad != nil {
		return "", bad
	}
	return fmt.Sprintf("%s/%d end=%d\n%s", pt.scheme.Key(), pt.size, k.Now(), sys.Injector.Summary()), nil
}

// soakSweep runs the whole grid on the current worker pool, returning
// the digests in grid order.
func soakSweep(transfers int) ([]string, error) {
	grid := soakGrid()
	reps := transfers / (len(grid) * 2)
	if reps < 1 {
		reps = 1
	}
	return mapPoints(grid, func(pt soakPoint) (string, error) {
		return runSoakPoint(pt, reps)
	})
}

// TestFaultSoakSerialParallelIdentity is the fault-layer determinism
// gate: the soak digest must be byte-identical between a serial sweep
// and a 4-way parallel one, and every point must have seen at least one
// injected fault (a soak that never faults proves nothing).
func TestFaultSoakSerialParallelIdentity(t *testing.T) {
	transfers := 10_000
	if testing.Short() {
		transfers = 1_000
	}
	if err := SetFaultSpec(soakSpec); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetFaultSpec(""); err != nil {
			t.Fatal(err)
		}
	}()

	var serial, parallel []string
	withParallelism(t, 1, func() {
		var err error
		serial, err = soakSweep(transfers)
		if err != nil {
			t.Fatalf("serial soak: %v", err)
		}
	})
	withParallelism(t, 4, func() {
		var err error
		parallel, err = soakSweep(transfers)
		if err != nil {
			t.Fatalf("parallel soak: %v", err)
		}
	})
	if strings.Join(serial, "") != strings.Join(parallel, "") {
		t.Errorf("parallel soak digest diverged from serial:\nserial:\n%s\nparallel:\n%s",
			strings.Join(serial, ""), strings.Join(parallel, ""))
	}
	for _, digest := range serial {
		if !strings.Contains(digest, "inject.") {
			t.Errorf("soak point saw no injected faults:\n%s", digest)
		}
	}
}
