package harness

import (
	"sync/atomic"

	"vscc/internal/sim"
	"vscc/internal/trace"
)

// Observer creates the observability sink for one labelled simulation
// point — typically (*trace.Collector).New, which registers the sink so
// a sweep's captures can be exported together. Returning nil disables
// tracing for that point.
//
// Labels are hierarchical and zero-padded (fig6b/vdma/size=0001024,
// fig7/bt/vdma/ranks=016) so that the collector's name-sorted captures
// line up with the sweep's natural order regardless of how a parallel
// sweep's workers finish.
type Observer func(label string, k *sim.Kernel) *trace.Sink

// observer holds the installed hook; atomic because sweep workers read
// it concurrently with SetObserver callers.
var observer atomic.Value // of Observer

// SetObserver installs (or, with nil, removes) the process-wide sink
// factory consulted by every harness measurement. It returns the
// previous observer so tests can restore it.
func SetObserver(fn Observer) Observer {
	prev, _ := observer.Swap(fn).(Observer)
	return prev
}

// observe asks the installed observer (if any) for a sink. A nil return
// — no observer, or the observer declined — disables tracing: every
// sink method is a nil-receiver no-op.
func observe(label string, k *sim.Kernel) *trace.Sink {
	fn, _ := observer.Load().(Observer)
	if fn == nil {
		return nil
	}
	return fn(label, k)
}
