package harness

import (
	"sync/atomic"

	"vscc/internal/fault"
)

// faultConfig mirrors the -fault flag of the commands: when set, every
// system a sweep builds runs under the parsed fault schedule.
var faultConfig atomic.Pointer[fault.Config]

// SetFaultSpec arms deterministic fault injection (vscc.Config.Faults)
// for every system subsequently built by this package's sweeps. The
// spec uses the fault.ParseSpec grammar (e.g. "seed=7,drop=20,stall=
// 1e6:2e5"); an empty spec disarms. Each sweep point builds its own
// injector from the same config value, so serial and -parallel runs
// draw identical fault schedules and stay byte-identical. Process-wide
// and safe to call concurrently; systems already built keep their mode.
func SetFaultSpec(spec string) error {
	cfg, err := fault.ParseSpec(spec)
	if err != nil {
		return err
	}
	faultConfig.Store(cfg)
	return nil
}

// FaultSpecArmed reports whether a fault schedule is currently armed.
func FaultSpecArmed() bool { return faultConfig.Load() != nil }
