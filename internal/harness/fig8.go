package harness

import (
	"fmt"

	"vscc/internal/npb"
	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

// TrafficConfig controls a Fig. 8 capture.
type TrafficConfig struct {
	Class npb.Class
	Ranks int // the paper's figure uses a 64-rank session
	// Iterations actually simulated; volumes are scaled to ScaleTo
	// iterations for reporting (the pattern repeats identically every
	// timestep).
	Iterations int
	ScaleTo    int
	Scheme     vscc.Scheme
}

// CaptureTraffic runs BT in timing mode with a traffic observer attached
// and returns the (scaled) matrix.
func CaptureTraffic(cfg TrafficConfig) (*trace.Matrix, error) {
	if cfg.Iterations == 0 {
		cfg.Iterations = 1
	}
	if cfg.ScaleTo == 0 {
		cfg.ScaleTo = cfg.Class.Iterations
	}
	k := sim.NewKernel()
	devices := (cfg.Ranks + 47) / 48
	sys, err := vscc.NewSystem(k, sysConfig(vscc.Config{Devices: devices, Scheme: cfg.Scheme}))
	if err != nil {
		return nil, err
	}
	scale := cfg.ScaleTo / cfg.Iterations
	m := trace.NewMatrix(cfg.Ranks, 48)
	sink := observe(fmt.Sprintf("fig8/bt/%s/ranks=%03d", cfg.Scheme.Key(), cfg.Ranks), k)
	sys.Instrument(sink)
	session, err := sys.NewSession(cfg.Ranks, rcce.WithSink(sink), rcce.WithTrafficObserver(func(src, dest, bytes int) {
		m.Record(src, dest, bytes*scale)
	}))
	if err != nil {
		return nil, err
	}
	d, err := npb.NewDecomp(cfg.Class.N, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	if _, err := npb.RunOn(session, d, npb.Config{
		Class:      cfg.Class,
		Iterations: cfg.Iterations,
		Timing:     true,
	}); err != nil {
		return nil, err
	}
	return m, nil
}
