package harness

import (
	"testing"

	"vscc/internal/ircce"
	"vscc/internal/rcce"
	"vscc/internal/vscc"
)

// TestCalibrationProbe prints the current throughput landscape; run with
// -v to inspect calibration against the paper's targets. It asserts only
// loose sanity bounds so routine test runs stay green while the numbers
// remain visible during tuning.
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	sizes := Sizes6()
	reps := 3

	rcceOn, err := OnChipPingPong(nil, 0, 1, sizes, reps)
	if err != nil {
		t.Fatal(err)
	}
	ircceOn, err := OnChipPingPong(func() rcce.Protocol { return &ircce.PipelinedProtocol{} }, 0, 1, sizes, reps)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("on-chip RCCE peak:  %.1f MB/s", PeakMBps(rcceOn))
	t.Logf("on-chip iRCCE peak: %.1f MB/s", PeakMBps(ircceOn))

	for _, scheme := range []vscc.Scheme{
		vscc.SchemeRouting, vscc.SchemeHostRouted, vscc.SchemeCachedGet,
		vscc.SchemeRemotePut, vscc.SchemeVDMA, vscc.SchemeHWAccel,
	} {
		pts, err := InterDevicePingPong(scheme, sizes, reps)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("inter-device %-32v peak: %6.2f MB/s", scheme, PeakMBps(pts))
		for _, p := range pts {
			t.Logf("    %7d B: %7.2f MB/s", p.Size, p.MBps)
		}
	}
}
