package harness

import (
	"bytes"
	"testing"

	"vscc/internal/trace"
	"vscc/internal/vscc"
)

// runTracedSweep measures a small traced inter-device sweep at the
// given parallelism and returns the Chrome export and metrics report.
func runTracedSweep(t *testing.T, par int) (chrome, report string) {
	t.Helper()
	var col trace.Collector
	prev := SetObserver(col.New)
	defer SetObserver(prev)
	SetParallelism(par)
	defer SetParallelism(0)
	if _, err := InterDevicePingPong(vscc.SchemeVDMA, []int{1024, 4096}, 1); err != nil {
		t.Fatal(err)
	}
	caps := col.Captures()
	if len(caps) != 2 {
		t.Fatalf("captures = %d, want 2", len(caps))
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, caps); err != nil {
		t.Fatal(err)
	}
	return buf.String(), trace.Report(caps)
}

// The observability layer must not break the repository's core
// invariant: a traced sweep exports byte-identical traces and reports
// whether the points run serially or fanned out across the worker pool.
func TestTracedSweepSerialMatchesParallel(t *testing.T) {
	serialChrome, serialReport := runTracedSweep(t, 1)
	parChrome, parReport := runTracedSweep(t, 4)
	if serialChrome != parChrome {
		t.Error("serial and parallel Chrome exports differ")
	}
	if serialReport != parReport {
		t.Errorf("serial and parallel metrics reports differ:\n--- serial\n%s\n--- parallel\n%s",
			serialReport, parReport)
	}
	if serialChrome == "" || serialReport == "" {
		t.Error("traced sweep produced empty outputs")
	}
}

// With no observer installed every measurement runs untraced (nil
// sinks), and observers uninstall cleanly.
func TestObserverUninstalls(t *testing.T) {
	var col trace.Collector
	prev := SetObserver(col.New)
	SetObserver(prev)
	if _, err := OnChipPingPong(nil, 0, 1, []int{64}, 1); err != nil {
		t.Fatal(err)
	}
	if got := len(col.Captures()); got != 0 {
		t.Errorf("uninstalled observer still captured %d sinks", got)
	}
}
