package harness

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"vscc/internal/npb"
	"vscc/internal/vscc"
)

// withParallelism runs body under a fixed fan-out, restoring the
// previous setting afterwards.
func withParallelism(t *testing.T, n int, body func()) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(n)
	defer SetParallelism(prev)
	body()
}

func TestForEachPointCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		withParallelism(t, workers, func() {
			const n = 23
			var hits [n]atomic.Int64
			if err := ForEachPoint(n, func(i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Errorf("workers=%d: point %d ran %d times, want 1", workers, i, got)
				}
			}
		})
	}
}

func TestForEachPointReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	withParallelism(t, 4, func() {
		err := ForEachPoint(10, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 7:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Errorf("err = %v, want the lowest-index error %v", err, errLow)
		}
	})
}

func TestSetParallelismClampsAndDefaults(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(-5)
	if Parallelism() < 1 {
		t.Errorf("negative parallelism left fan-out %d", Parallelism())
	}
	SetParallelism(7)
	if Parallelism() != 7 {
		t.Errorf("Parallelism() = %d, want 7", Parallelism())
	}
}

// TestParallelPingPongSweepMatchesSerial is the determinism contract of
// the parallel harness: a sweep fanned out over 4 workers must produce
// byte-identical points to the same sweep run serially, because every
// point is an isolated simulation and results are collected in input
// order.
func TestParallelPingPongSweepMatchesSerial(t *testing.T) {
	sizes := []int{64, 1024, 8192}
	var serial, parallel []PingPongPoint
	withParallelism(t, 1, func() {
		var err error
		serial, err = OnChipPingPong(nil, 0, 1, sizes, 2)
		if err != nil {
			t.Fatal(err)
		}
	})
	withParallelism(t, 4, func() {
		var err error
		parallel, err = OnChipPingPong(nil, 0, 1, sizes, 2)
		if err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel sweep diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	// Byte-identical when rendered, which is what the CLIs emit.
	if fmt.Sprintf("%+v", serial) != fmt.Sprintf("%+v", parallel) {
		t.Error("rendered series differ")
	}
}

func TestParallelBTSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point BT sweep")
	}
	cfg := BTSweepConfig{Class: npb.ClassW, Iterations: 1, Scheme: vscc.SchemeVDMA, Devices: 1}
	counts := []int{4, 9, 16}
	var serial, parallel []BTPoint
	withParallelism(t, 1, func() {
		var err error
		serial, err = BTSweep(cfg, counts)
		if err != nil {
			t.Fatal(err)
		}
	})
	withParallelism(t, 4, func() {
		var err error
		parallel, err = BTSweep(cfg, counts)
		if err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel BT sweep diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestParallelAblationSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation grid sweep")
	}
	bursts := []int{256, 1024}
	var serial, parallel map[int]float64
	withParallelism(t, 1, func() {
		var err error
		serial, err = AblateDMABurst(4096, 1, bursts)
		if err != nil {
			t.Fatal(err)
		}
	})
	withParallelism(t, 4, func() {
		var err error
		parallel, err = AblateDMABurst(4096, 1, bursts)
		if err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel ablation diverged: serial %v, parallel %v", serial, parallel)
	}
}
