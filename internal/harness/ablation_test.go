package harness

import (
	"testing"

	"vscc/internal/vscc"
)

func TestAblateSIFStreamingHelps(t *testing.T) {
	on, off, err := AblateSIFStreaming(32768, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The stream turns latency-bound line reads into a bandwidth-bound
	// flow; disabling it must collapse throughput massively.
	if on < 4*off {
		t.Errorf("streaming %.2f MB/s vs no-streaming %.2f MB/s — expected >=4x", on, off)
	}
}

func TestAblateVDMASlotPipelining(t *testing.T) {
	res, err := AblateVDMASlot(65536, 2, []int{512, 3424})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny slots pay per-chunk flag/MMIO overheads.
	if res[3424] <= res[512] {
		t.Errorf("slot 3424 (%.2f) should beat slot 512 (%.2f)", res[3424], res[512])
	}
}

func TestAblateDMABurstAmortization(t *testing.T) {
	res, err := AblateDMABurst(65536, 2, []int{128, 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Small bursts pay per-burst headers on both PCIe directions.
	if res[1024] <= res[128] {
		t.Errorf("burst 1024 (%.2f) should beat burst 128 (%.2f)", res[1024], res[128])
	}
}

func TestAblateDirectThresholdLatency(t *testing.T) {
	direct, engaged, err := AblateDirectThreshold(vscc.SchemeVDMA, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The paper sets the threshold precisely because programming the
	// vDMA controller costs more than a direct 64 B transfer.
	if direct >= engaged {
		t.Errorf("direct 64B latency %d should beat vDMA-engaged %d", direct, engaged)
	}
}

func TestAblateWCBFlushGranularity(t *testing.T) {
	// The flush threshold trades per-descriptor overhead against earlier
	// overlap; since sender-side posting, not the flush path, bounds the
	// remote-put scheme, the impact must stay mild — the scheme must not
	// collapse at either extreme.
	res, err := AblateWCBFlush(65536, 2, []int{64, 1024, 4096})
	if err != nil {
		t.Fatal(err)
	}
	min, max := res[64], res[64]
	for _, v := range res {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min <= 0 || max/min > 1.5 {
		t.Errorf("flush granularity impact out of band: %v", res)
	}
}
