// Package harness builds the measurements behind the paper's evaluation
// section: ping-pong throughput curves (Fig. 6a/6b), the NPB BT
// scalability sweep (Fig. 7), the traffic matrix (Fig. 8), and the
// headline claims of §1/§4/§5. It is shared by the cmd/ tools, the
// testing.B benchmarks and EXPERIMENTS.md.
package harness

import (
	"fmt"

	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/stats"
	"vscc/internal/vscc"
)

// Sizes6 is the message-size sweep of Fig. 6 (32 B to 256 KB, powers of
// two).
func Sizes6() []int {
	var sizes []int
	for s := 32; s <= 256*1024; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// PingPongPoint is one ping-pong measurement.
type PingPongPoint struct {
	Size   int
	Cycles sim.Cycles // total for Reps round trips
	Reps   int
	MBps   float64 // one-way throughput, 1 MB = 1e6 B (paper axes)
}

// pingPong runs Reps round trips of size bytes between rank a and rank b
// of a fresh session produced by mk and returns the throughput.
func pingPong(mk func() (*rcce.Session, error), a, b, size, reps int) (PingPongPoint, error) {
	session, err := mk()
	if err != nil {
		return PingPongPoint{}, err
	}
	params := session.Chip(a).Params
	var start, end sim.Cycles
	runErr := session.Run(func(r *rcce.Rank) {
		msg := make([]byte, size)
		for i := range msg {
			msg[i] = byte(i * 31)
		}
		buf := make([]byte, size)
		switch r.ID() {
		case a:
			// One warmup round trip, unmeasured, to fill caches and
			// buffers as a real benchmark does.
			r.Send(b, msg)
			r.Recv(b, buf)
			start = r.Now()
			for i := 0; i < reps; i++ {
				r.Send(b, msg)
				r.Recv(b, buf)
			}
			end = r.Now()
		case b:
			r.Recv(a, buf)
			r.Send(a, msg)
			for i := 0; i < reps; i++ {
				r.Recv(a, buf)
				r.Send(a, msg)
			}
		}
	})
	if runErr != nil {
		return PingPongPoint{}, runErr
	}
	total := end - start
	// A round trip moves the message twice, so one-way throughput is
	// 2*reps*size bytes over the total time.
	mbps := params.MBPerSecond(uint64(size)*uint64(2*reps), total)
	return PingPongPoint{Size: size, Cycles: total, Reps: reps, MBps: mbps}, nil
}

// PingPongSweep measures one ping-pong point per message size between
// ranks a and b, building a fresh session per point with mk. Each point
// is an independent simulation, so the sweep fans out across the
// package's worker pool (see SetParallelism); results come back in size
// order regardless of the fan-out, identical to a serial sweep.
func PingPongSweep(mk func(size int) func() (*rcce.Session, error), a, b int, sizes []int, reps int) ([]PingPongPoint, error) {
	return mapPoints(sizes, func(size int) (PingPongPoint, error) {
		pt, err := pingPong(mk(size), a, b, size, reps)
		if err != nil {
			return PingPongPoint{}, fmt.Errorf("size %d: %w", size, err)
		}
		return pt, nil
	})
}

// OnChipPingPong measures on-chip ping-pong between two cores of a
// single SCC under the wire protocol produced by newProto (nil = RCCE
// default). A fresh protocol instance is created per measurement because
// stateful protocols (iRCCE pipelined) are bound to one session. cores
// picks the pair; the paper's best case uses adjacent cores.
func OnChipPingPong(newProto func() rcce.Protocol, coreA, coreB int, sizes []int, reps int) ([]PingPongPoint, error) {
	pts, err := PingPongSweep(func(size int) func() (*rcce.Session, error) {
		return func() (*rcce.Session, error) {
			k := sim.NewKernel()
			chip := ApplyCheck(scc.NewChip(k, 0, scc.DefaultParams()))
			places := []rcce.Place{{Dev: 0, Core: coreA}, {Dev: 0, Core: coreB}}
			var opts []rcce.Option
			protoName := "rcce"
			if newProto != nil {
				proto := newProto()
				protoName = proto.Name()
				opts = append(opts, rcce.WithProtocol(proto))
			}
			sink := observe(fmt.Sprintf("fig6a/%s/size=%07d", protoName, size), k)
			opts = append(opts, rcce.WithSink(sink))
			return rcce.NewSession(k, []*scc.Chip{chip}, places, opts...)
		}
	}, 0, 1, sizes, reps)
	if err != nil {
		return nil, fmt.Errorf("on-chip: %w", err)
	}
	return pts, nil
}

// InterDevicePingPong measures cross-device ping-pong (rank 0 on device
// 0 against rank 48 on device 1) under a vSCC scheme.
func InterDevicePingPong(scheme vscc.Scheme, sizes []int, reps int) ([]PingPongPoint, error) {
	pts, err := PingPongSweep(func(size int) func() (*rcce.Session, error) {
		return func() (*rcce.Session, error) {
			k := sim.NewKernel()
			sys, err := vscc.NewSystem(k, sysConfig(vscc.Config{Devices: 2, Scheme: scheme}))
			if err != nil {
				return nil, err
			}
			sink := observe(fmt.Sprintf("fig6b/%s/size=%07d", scheme.Key(), size), k)
			sys.Instrument(sink)
			return sys.NewSession(96, rcce.WithSink(sink))
		}
	}, 0, 48, sizes, reps)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", scheme, err)
	}
	return pts, nil
}

// ToSeries converts measurements to a plot series.
func ToSeries(name string, pts []PingPongPoint) stats.Series {
	s := stats.Series{Name: name}
	for _, p := range pts {
		s.Add(float64(p.Size), p.MBps)
	}
	return s
}

// PeakMBps returns the maximum throughput of a sweep.
func PeakMBps(pts []PingPongPoint) float64 {
	max := 0.0
	for _, p := range pts {
		if p.MBps > max {
			max = p.MBps
		}
	}
	return max
}
