package harness

import (
	"fmt"
	"strings"

	"vscc/internal/ircce"
	"vscc/internal/pcie"
	"vscc/internal/rcce"
	"vscc/internal/vscc"
)

// Claims gathers the measurements behind the paper's headline numbers
// (experiments E5-E9 of DESIGN.md).
type Claims struct {
	// OnChipRCCEPeak / OnChipIRCCEPeak: Fig. 6a peaks; the paper puts the
	// on-chip maximum at ~150 MB/s.
	OnChipRCCEPeak  float64
	OnChipIRCCEPeak float64
	// Peaks of the inter-device schemes (Fig. 6b).
	RoutingPeak, LowerPeak, CachedPeak, RemotePutPeak, VDMAPeak, UpperPeak float64
	// RecoveredFraction is best-inter-device / on-chip (the "recover 24 %
	// of on-chip communication performance" claim).
	RecoveredFraction float64
	// CachedOfLimit is cached-peak / upper-bound-peak (the "71.72 % of
	// the limit for the worst case scheme" claim).
	CachedOfLimit float64
	// LatencyFactor is the inter-device round trip over the on-chip
	// latency class (the "raises latencies by a factor of 120" claim).
	LatencyFactor float64
	// MPBDropSchemes lists inter-device schemes whose throughput dips
	// when the message stops fitting into the MPB (~8 kB), and whether
	// the vDMA scheme removed it (§4.1).
	CachedHasDrop bool
	VDMAHasDrop   bool
}

// MeasureClaims runs the ping-pong sweeps behind the claims. reps
// controls averaging (3 is plenty; the simulation is deterministic).
func MeasureClaims(reps int) (*Claims, error) {
	sizes := Sizes6()
	c := &Claims{}
	rcceOn, err := OnChipPingPong(nil, 0, 1, sizes, reps)
	if err != nil {
		return nil, err
	}
	ircceOn, err := OnChipPingPong(func() rcce.Protocol { return &ircce.PipelinedProtocol{} }, 0, 1, sizes, reps)
	if err != nil {
		return nil, err
	}
	c.OnChipRCCEPeak = PeakMBps(rcceOn)
	c.OnChipIRCCEPeak = PeakMBps(ircceOn)

	peaks := map[vscc.Scheme]*float64{
		vscc.SchemeRouting:    &c.RoutingPeak,
		vscc.SchemeHostRouted: &c.LowerPeak,
		vscc.SchemeCachedGet:  &c.CachedPeak,
		vscc.SchemeRemotePut:  &c.RemotePutPeak,
		vscc.SchemeVDMA:       &c.VDMAPeak,
		vscc.SchemeHWAccel:    &c.UpperPeak,
	}
	var cachedPts, vdmaPts []PingPongPoint
	for scheme, dst := range peaks {
		pts, err := InterDevicePingPong(scheme, sizes, reps)
		if err != nil {
			return nil, err
		}
		*dst = PeakMBps(pts)
		if scheme == vscc.SchemeCachedGet {
			cachedPts = pts
		}
		if scheme == vscc.SchemeVDMA {
			vdmaPts = pts
		}
	}
	best := c.VDMAPeak
	if c.RemotePutPeak > best {
		best = c.RemotePutPeak
	}
	c.RecoveredFraction = best / c.OnChipRCCEPeak
	c.CachedOfLimit = c.CachedPeak / c.UpperPeak
	c.CachedHasDrop = hasMPBDrop(cachedPts)
	c.VDMAHasDrop = hasMPBDrop(vdmaPts)

	fabric, err := pcie.New(2, pcie.DefaultParams(), pcie.AckHost)
	if err != nil {
		return nil, err
	}
	c.LatencyFactor = float64(fabric.RoundTrip()) / 100 // ~100-cycle on-chip class (§3)
	return c, nil
}

// hasMPBDrop reports whether throughput dips when crossing the MPB
// capacity: the first size that no longer fits in one chunk performs
// worse than the last size that did.
func hasMPBDrop(pts []PingPongPoint) bool {
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Size <= rcce.ChunkBytes && pts[i].Size > rcce.ChunkBytes {
			return pts[i].MBps < pts[i-1].MBps
		}
	}
	return false
}

// Report renders the paper-vs-measured table.
func (c *Claims) Report() string {
	var b strings.Builder
	row := func(claim, paper, measured string) {
		fmt.Fprintf(&b, "%-58s %-14s %s\n", claim, paper, measured)
	}
	row("claim", "paper", "measured")
	row(strings.Repeat("-", 50), "-----", "--------")
	row("max on-chip throughput (§4.1)", "~150 MB/s", fmt.Sprintf("%.1f MB/s (iRCCE), %.1f MB/s (RCCE)", c.OnChipIRCCEPeak, c.OnChipRCCEPeak))
	row("recovered on-chip performance inter-device (§1/§5)", "24 %", fmt.Sprintf("%.1f %% (best scheme vs on-chip RCCE)", 100*c.RecoveredFraction))
	row("worst optimized scheme vs hardware limit (§4.1)", "71.72 %", fmt.Sprintf("%.2f %% (LP/RG cached vs FPGA upper bound)", 100*c.CachedOfLimit))
	row("latency increase of the virtual extension (§5)", "~120x", fmt.Sprintf("%.0fx", c.LatencyFactor))
	row("throughput drop at 8 kB for non-pipelined schemes (§4.1)", "yes", fmt.Sprintf("%v (LP/RG)", c.CachedHasDrop))
	row("8 kB slope removed for pipelined LP/LG (§4.1)", "yes", fmt.Sprintf("%v (no drop: %v)", !c.VDMAHasDrop, !c.VDMAHasDrop))
	row("LP/LG close to hardware-accelerated variant (§4.1)", "close", fmt.Sprintf("%.1f %% of upper bound", 100*c.VDMAPeak/c.UpperPeak))
	return b.String()
}
