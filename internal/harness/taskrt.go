package harness

import (
	"fmt"

	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/taskrt"
	"vscc/internal/vscc"
)

// TaskrtConfig selects one task-runtime measurement: a workload from
// taskrt.Workloads() on one communication scheme, run as Replicas
// independent simulations (each replica builds its own kernel, system
// and task graph — the fan-out unit of the -parallel sweeps, and the
// identity gate's byte-compare unit).
type TaskrtConfig struct {
	Workload string
	Scheme   vscc.Scheme
	Devices  int
	Ranks    int
	Size     int // workload decomposition knob (see taskrt.Build)
	Iters    int // sweeps (stencil) or requests (kv)
	Replicas int
}

// TaskrtPoint is one replica's result: scheduler and movement totals,
// the end cycle, the region-state digest, and the injector summary
// when a fault schedule is armed. Every field is deterministic, so a
// point (and the whole sweep) byte-compares across reruns and worker
// counts.
type TaskrtPoint struct {
	Workload   string
	Scheme     string
	Replica    int
	TaskCount  int
	Steals     int
	Doorbells  int
	MovedBytes int64
	Moves      [3]int64 // by vscc.MoveClass
	Cycles     sim.Cycles
	Hash       string
	Faults     string
}

// String renders the point as one stable report line.
func (p TaskrtPoint) String() string {
	s := fmt.Sprintf("taskrt/%s/%s/rep=%02d tasks=%d steals=%d doorbells=%d moved=%d direct=%d cached=%d vdma=%d end=%d hash=%s",
		p.Workload, p.Scheme, p.Replica, p.TaskCount, p.Steals, p.Doorbells,
		p.MovedBytes, p.Moves[vscc.MoveDirect], p.Moves[vscc.MoveCachedMPB], p.Moves[vscc.MoveVDMA],
		p.Cycles, p.Hash)
	if p.Faults != "" {
		s += "\n" + p.Faults
	}
	return s
}

// TaskrtSweep runs cfg.Replicas independent replicas of the workload on
// the worker pool (SetParallelism) and returns the points in replica
// order. Observability, the consistency checker and fault injection
// follow the process-wide harness settings like every other sweep.
func TaskrtSweep(cfg TaskrtConfig) ([]TaskrtPoint, error) {
	if cfg.Devices <= 0 {
		cfg.Devices = 2
	}
	if cfg.Ranks <= 0 {
		cfg.Ranks = 4
	}
	if cfg.Size <= 0 {
		cfg.Size = 4
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 8
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	reps := make([]int, cfg.Replicas)
	for i := range reps {
		reps[i] = i
	}
	return mapPoints(reps, func(rep int) (TaskrtPoint, error) {
		return taskrtPoint(cfg, rep)
	})
}

// taskrtPoint builds and runs one replica.
func taskrtPoint(cfg TaskrtConfig, rep int) (TaskrtPoint, error) {
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, sysConfig(vscc.Config{Devices: cfg.Devices, Scheme: cfg.Scheme}))
	if err != nil {
		return TaskrtPoint{}, fmt.Errorf("taskrt %s/%s: %w", cfg.Workload, cfg.Scheme.Key(), err)
	}
	label := fmt.Sprintf("taskrt/%s/%s/rep=%02d", cfg.Workload, cfg.Scheme.Key(), rep)
	sys.Instrument(observe(label, k))
	// Ranks round-robin across devices so argument movement and steals
	// exercise the scheme's fabric path, not just on-chip MPB traffic.
	places := make([]rcce.Place, cfg.Ranks)
	for i := range places {
		places[i] = rcce.Place{Dev: i % cfg.Devices, Core: i / cfg.Devices}
	}
	session, err := sys.NewSessionAt(places)
	if err != nil {
		return TaskrtPoint{}, fmt.Errorf("taskrt %s/%s: %w", cfg.Workload, cfg.Scheme.Key(), err)
	}
	rt := taskrt.New(taskrt.Config{Scheme: cfg.Scheme})
	if err := taskrt.Build(rt, cfg.Workload, cfg.Size, cfg.Iters, cfg.Ranks); err != nil {
		return TaskrtPoint{}, err
	}
	if err := rt.Run(session); err != nil {
		return TaskrtPoint{}, fmt.Errorf("taskrt %s/%s rep %d: %w", cfg.Workload, cfg.Scheme.Key(), rep, err)
	}
	st := rt.Stats()
	pt := TaskrtPoint{
		Workload:   cfg.Workload,
		Scheme:     cfg.Scheme.Key(),
		Replica:    rep,
		TaskCount:  st.Tasks,
		Steals:     st.Steals,
		Doorbells:  st.Doorbells,
		MovedBytes: st.MovedBytes,
		Moves:      st.Moves,
		Cycles:     k.Now(),
		Hash:       rt.StateHash(),
	}
	if sys.Injector != nil {
		pt.Faults = sys.Injector.Summary()
	}
	return pt, nil
}
