package harness

import (
	"strings"
	"testing"
)

// The device-crash soak: the packet-fault schedule of fault_soak_test.go
// plus a whole-device crash of device 1 mid-run, with transparent retry
// (devretry=1) so every point must complete through checkpoint restore,
// journal replay and epoch-stamped retransmission. Byte-identity to a
// fault-free run is enforced per transfer inside runSoakPoint: the
// expected payload is computed independently of the wire, so a single
// replayed byte out of place fails the point. On top of that the digest
// must be byte-identical between a serial sweep, a rerun, and a 4-way
// parallel sweep — crash recovery may not cost reproducibility.

// devSoakSpec crashes device 1 at cycle 200k (drain 50k, rejoin 200k
// later), under the same packet-fault rates as the plain soak.
const devSoakSpec = soakSpec + ",devcrash=200000:1,devretry=1"

// TestFaultSoakDeviceCrash is the crash-recovery determinism gate. Full
// runs play 10k transfers per sweep; `-short` is the 1x schedule wired
// into `make check` and CI, with the nightly soak job running the full
// one.
func TestFaultSoakDeviceCrash(t *testing.T) {
	transfers := 10_000
	if testing.Short() {
		transfers = 1_000
	}
	if err := SetFaultSpec(devSoakSpec); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetFaultSpec(""); err != nil {
			t.Fatal(err)
		}
	}()

	var serial, rerun, parallel []string
	withParallelism(t, 1, func() {
		var err error
		if serial, err = soakSweep(transfers); err != nil {
			t.Fatalf("serial soak: %v", err)
		}
		if rerun, err = soakSweep(transfers); err != nil {
			t.Fatalf("serial rerun: %v", err)
		}
	})
	withParallelism(t, 4, func() {
		var err error
		if parallel, err = soakSweep(transfers); err != nil {
			t.Fatalf("parallel soak: %v", err)
		}
	})
	if strings.Join(serial, "") != strings.Join(rerun, "") {
		t.Errorf("rerun digest diverged from first run:\nfirst:\n%s\nrerun:\n%s",
			strings.Join(serial, ""), strings.Join(rerun, ""))
	}
	if strings.Join(serial, "") != strings.Join(parallel, "") {
		t.Errorf("parallel soak digest diverged from serial:\nserial:\n%s\nparallel:\n%s",
			strings.Join(serial, ""), strings.Join(parallel, ""))
	}
	for _, digest := range serial {
		if !strings.Contains(digest, "inject.devcrash=1") {
			t.Errorf("soak point never crashed the device:\n%s", digest)
		}
		if !strings.Contains(digest, "recover.rejoin=1") {
			t.Errorf("soak point never rejoined the device:\n%s", digest)
		}
	}
}
