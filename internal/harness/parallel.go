package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Every sweep in this package — the Fig. 6 size sweeps, the Fig. 7 rank
// sweep, the ablation grids — is a set of *independent* simulations:
// each point builds its own sim.Kernel, chips and session, and shares
// nothing with its neighbours. The pool below fans those points out
// across OS threads while keeping the results (and any error) in
// deterministic input order, so a parallel sweep is byte-identical to a
// serial one.

// parallelism holds the sweep fan-out; 0 means "use GOMAXPROCS".
var parallelism atomic.Int64

// SetParallelism sets the number of sweep points run concurrently by
// every subsequent sweep. n <= 0 restores the default (GOMAXPROCS);
// n == 1 forces serial execution. It is safe to call concurrently with
// running sweeps; points already dispatched keep their pool.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism reports the current sweep fan-out.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// ForEachPoint runs fn(i) for every i in [0, n) on a bounded worker
// pool of Parallelism() goroutines. All points run even if one fails
// (they are independent simulations); the returned error is the
// lowest-index one, so the outcome does not depend on goroutine timing.
func ForEachPoint(n int, fn func(i int) error) error {
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mapPoints runs fn over every input on the worker pool and returns the
// outputs in input order.
func mapPoints[T, R any](inputs []T, fn func(T) (R, error)) ([]R, error) {
	out := make([]R, len(inputs))
	err := ForEachPoint(len(inputs), func(i int) error {
		r, ferr := fn(inputs[i])
		if ferr != nil {
			return ferr
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
