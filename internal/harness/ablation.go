package harness

import (
	"fmt"

	"vscc/internal/host"
	"vscc/internal/npb"
	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

// This file holds the ablation studies for the design choices DESIGN.md
// calls out: the SIF prefetch streaming behind the software cache, the
// write-combining flush granularity, the vDMA burst size and
// double-buffer slot size, and the small-message direct-transfer
// threshold.

// interDevicePingPongWith measures cross-device ping-pong under an
// arbitrary system configuration.
func interDevicePingPongWith(cfg vscc.Config, sizes []int, reps int) ([]PingPongPoint, error) {
	return PingPongSweep(func(size int) func() (*rcce.Session, error) {
		return func() (*rcce.Session, error) {
			k := sim.NewKernel()
			c := cfg
			c.Devices = 2
			sys, err := vscc.NewSystem(k, sysConfig(c))
			if err != nil {
				return nil, err
			}
			sink := observe(ablateLabel(c, size), k)
			sys.Instrument(sink)
			return sys.NewSession(96, rcce.WithSink(sink))
		}
	}, 0, 48, sizes, reps)
}

// ablateLabel names one ablation point for the trace collector. Grid
// points share a scheme and size but differ in their tuning knobs, so
// the label spells out every non-default knob to keep capture names
// unique (the collector sorts its captures by name; duplicates would
// make the merged export depend on worker completion order).
func ablateLabel(c vscc.Config, size int) string {
	l := "ablate/" + c.Scheme.Key()
	if c.DirectThreshold != 0 {
		l += fmt.Sprintf("/thr=%06d", c.DirectThreshold)
	}
	if c.VDMASlotBytes != 0 {
		l += fmt.Sprintf("/slot=%06d", c.VDMASlotBytes)
	}
	if hp := c.HostParams; hp != nil {
		l += fmt.Sprintf("/sif=%04d/wcb=%06d/burst=%06d", hp.SIFBufferLines, hp.WCBFlushBytes, hp.DMABurstBytes)
	}
	return l + fmt.Sprintf("/size=%07d", size)
}

// AblationSweep measures one throughput number per parameter value, each
// on an independently configured system, fanning the grid out across the
// worker pool. The result map is keyed by parameter value; because every
// point is an isolated simulation the map contents are identical to a
// serial sweep's.
func AblationSweep(values []int, run func(v int) (float64, error)) (map[int]float64, error) {
	mbps, err := mapPoints(values, run)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64, len(values))
	for i, v := range values {
		out[v] = mbps[i]
	}
	return out, nil
}

// AblateSIFStreaming measures the cached local-put/remote-get scheme
// with and without the SIF prefetch stream — isolating how much of the
// scheme's throughput comes from turning latency-bound line reads into
// a bandwidth-bound stream.
func AblateSIFStreaming(size, reps int) (withStream, withoutStream float64, err error) {
	on, err := interDevicePingPongWith(vscc.Config{Scheme: vscc.SchemeCachedGet}, []int{size}, reps)
	if err != nil {
		return 0, 0, err
	}
	params := host.DefaultParams()
	params.SIFBufferLines = 0 // disable streaming
	off, err := interDevicePingPongWith(vscc.Config{Scheme: vscc.SchemeCachedGet, HostParams: &params}, []int{size}, reps)
	if err != nil {
		return 0, 0, err
	}
	return on[0].MBps, off[0].MBps, nil
}

// AblateWCBFlush measures the remote-put scheme across write-combining
// flush thresholds.
func AblateWCBFlush(size, reps int, flushBytes []int) (map[int]float64, error) {
	return AblationSweep(flushBytes, func(fb int) (float64, error) {
		params := host.DefaultParams()
		params.WCBFlushBytes = fb
		pts, err := interDevicePingPongWith(vscc.Config{Scheme: vscc.SchemeRemotePut, HostParams: &params}, []int{size}, reps)
		if err != nil {
			return 0, err
		}
		return pts[0].MBps, nil
	})
}

// AblateDMABurst measures the vDMA scheme across host DMA burst sizes.
func AblateDMABurst(size, reps int, bursts []int) (map[int]float64, error) {
	return AblationSweep(bursts, func(burst int) (float64, error) {
		params := host.DefaultParams()
		params.DMABurstBytes = burst
		pts, err := interDevicePingPongWith(vscc.Config{Scheme: vscc.SchemeVDMA, HostParams: &params}, []int{size}, reps)
		if err != nil {
			return 0, err
		}
		return pts[0].MBps, nil
	})
}

// AblateVDMASlot measures the vDMA scheme with double-buffered halves
// (default) against a range of slot sizes — small slots pay per-chunk
// overheads, the full half maximizes pipelining; this is the design
// choice that removes the 8 kB slope (§4.1).
func AblateVDMASlot(size, reps int, slots []int) (map[int]float64, error) {
	return AblationSweep(slots, func(slot int) (float64, error) {
		pts, err := interDevicePingPongWith(vscc.Config{Scheme: vscc.SchemeVDMA, VDMASlotBytes: slot}, []int{size}, reps)
		if err != nil {
			return 0, err
		}
		return pts[0].MBps, nil
	})
}

// AblateDirectThreshold measures small-message one-way latency (in
// cycles) with and without the direct-transfer path (§3.3's 32-128 B
// threshold).
func AblateDirectThreshold(scheme vscc.Scheme, size, reps int) (direct, engaged sim.Cycles, err error) {
	// Threshold above the size: direct path.
	on, err := interDevicePingPongWith(vscc.Config{Scheme: scheme, DirectThreshold: size}, []int{size}, reps)
	if err != nil {
		return 0, 0, err
	}
	// Threshold below the size: the host machinery engages.
	off, err := interDevicePingPongWith(vscc.Config{Scheme: scheme, DirectThreshold: -1}, []int{size}, reps)
	if err != nil {
		return 0, 0, err
	}
	perMsg := func(p PingPongPoint) sim.Cycles { return p.Cycles / sim.Cycles(2*p.Reps) }
	return perMsg(on[0]), perMsg(off[0]), nil
}

// AblateBTScheme compares BT on a cross-device session under every
// scheme — the application-level consequence of the scheme choice.
func AblateBTScheme(ranks, iters int, schemes []vscc.Scheme) (map[vscc.Scheme]float64, error) {
	gflops, err := mapPoints(schemes, func(s vscc.Scheme) (float64, error) {
		pt, err := BTRun(BTSweepConfig{Class: npb.ClassC, Iterations: iters, Scheme: s, Devices: 5}, ranks)
		if err != nil {
			return 0, err
		}
		return pt.GFlops, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[vscc.Scheme]float64, len(schemes))
	for i, s := range schemes {
		out[s] = gflops[i]
	}
	return out, nil
}

// TrafficBalance summarizes a matrix's device-boundary pressure — used
// to quantify why topology-unaware linear rank mapping (§3) makes the
// scheme choice matter.
func TrafficBalance(m *trace.Matrix) (interShare float64) {
	if m.Total() == 0 {
		return 0
	}
	return float64(m.InterDeviceBytes()) / float64(m.Total())
}
