package harness

import (
	"sync/atomic"

	"vscc/internal/scc"
	"vscc/internal/vscc"
)

// consistencyCheck mirrors the -check flag of the commands: when set,
// every system a sweep builds runs with the MPB consistency checker on.
var consistencyCheck atomic.Bool

// SetConsistencyCheck toggles the runtime MPB consistency checker
// (vscc.Config.Check) for every system subsequently built by this
// package's sweeps, returning the previous setting. Like SetParallelism
// it is process-wide and safe to call concurrently; systems already
// built keep their mode.
func SetConsistencyCheck(on bool) bool { return consistencyCheck.Swap(on) }

// sysConfig stamps the process-wide harness settings onto a system
// config. Every vscc.NewSystem call in this package goes through it.
func sysConfig(cfg vscc.Config) vscc.Config {
	cfg.Check = consistencyCheck.Load()
	cfg.Faults = faultConfig.Load()
	return cfg
}

// ApplyCheck enables the consistency checker on a standalone chip (one
// built outside vscc.NewSystem) when the process-wide flag is set.
func ApplyCheck(chip *scc.Chip) *scc.Chip {
	if consistencyCheck.Load() {
		chip.EnableConsistencyCheck(scc.NewChecker())
	}
	return chip
}
