package fault_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"vscc/internal/fault"
	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/vscc"
)

// The fault matrix: every fault class crossed with every inter-device
// transfer path. Each cell drives a seeded ping-pong workload across a
// two-device system, asserts the payloads still arrive intact (the
// recovery machinery, not luck, carries them), that the intended fault
// actually fired, that the expected recovery path left its trace, and
// that a rerun reproduces the identical event log cycle for cycle.

// matrixPath selects a transfer path through the stack.
type matrixPath struct {
	name   string
	scheme vscc.Scheme
	size   int // message size; below the scheme threshold = bypass path
}

var matrixPaths = []matrixPath{
	{"remote-put", vscc.SchemeRemotePut, 4096},
	{"remote-get", vscc.SchemeCachedGet, 4096},
	{"local-put-local-get", vscc.SchemeVDMA, 4096},
	{"small-message-bypass", vscc.SchemeVDMA, 16},
}

// matrixFault selects a fault class. inject names the stat that proves
// the fault fired; recover (when non-empty) names the recovery trace the
// completion must have gone through.
type matrixFault struct {
	name    string
	cfg     fault.Config
	inject  string
	recover string
}

var matrixFaults = []matrixFault{
	{"drop", fault.Config{Seed: 11, DropPer10k: 400}, "inject.drop", "recover.retx"},
	{"dup", fault.Config{Seed: 12, DupPer10k: 400}, "inject.dup", "recover.dup-discard"},
	{"delay", fault.Config{Seed: 13, DelayPer10k: 400, DelayCycles: 3000}, "inject.delay", ""},
	{"stall", fault.Config{Seed: 14, StallAt: []fault.StallWindow{{At: 40_000, For: 60_000}}}, "inject.stall", "recover.stall-resume"},
	{"crash", fault.Config{Seed: 15, CrashAt: []sim.Cycles{60_000}, Recovery: fault.Recovery{WatchdogCycles: 30_000}}, "inject.crash", "recover.watchdog-restart"},
	{"flag-loss", fault.Config{Seed: 16, FlagLossPer10k: 1500}, "inject.flagloss", "recover.flag-rewrite"},
}

// pattern builds a recognizable payload.
func pattern(size int, seed byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(i)*3 + seed
	}
	return b
}

// runMatrixCell plays reps ping-pong rounds between a cross-device rank
// pair under the cell's scheme and fault schedule and returns the
// injector's event log plus the final simulated cycle. Any payload
// mismatch or run error fails t.
func runMatrixCell(t *testing.T, p matrixPath, cfg *fault.Config, reps int) ([]fault.Event, sim.Cycles) {
	t.Helper()
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: p.scheme, Faults: cfg})
	if err != nil {
		t.Fatal(err)
	}
	places := []rcce.Place{{Dev: 0, Core: 0}, {Dev: 1, Core: 0}}
	session, err := sys.NewSessionAt(places)
	if err != nil {
		t.Fatal(err)
	}
	var bad error
	err = session.Run(func(r *rcce.Rank) {
		buf := make([]byte, p.size)
		for rep := 0; rep < reps; rep++ {
			seed := byte(rep + 1)
			if r.ID() == 0 {
				if err := r.Send(1, pattern(p.size, seed)); err != nil {
					panic(err)
				}
				if err := r.Recv(1, buf); err != nil {
					panic(err)
				}
			} else {
				if err := r.Recv(0, buf); err != nil {
					panic(err)
				}
				if err := r.Send(0, pattern(p.size, seed)); err != nil {
					panic(err)
				}
			}
			if !bytes.Equal(buf, pattern(p.size, seed)) {
				bad = fmt.Errorf("rank %d rep %d: payload corrupted", r.ID(), rep)
			}
		}
	})
	if err != nil {
		t.Fatalf("run did not complete: %v", err)
	}
	if bad != nil {
		t.Fatal(bad)
	}
	return sys.Injector.Events(), k.Now()
}

func TestFaultMatrix(t *testing.T) {
	const reps = 12
	for _, fc := range matrixFaults {
		for _, pth := range matrixPaths {
			fc, pth := fc, pth
			t.Run(fc.name+"/"+pth.name, func(t *testing.T) {
				cfg := fc.cfg
				events, end := runMatrixCell(t, pth, &cfg, reps)
				stats := map[string]int{}
				for _, e := range events {
					stats[e.Kind]++
				}
				if stats[fc.inject] == 0 {
					t.Fatalf("fault class never fired; events: %v", stats)
				}
				if fc.recover != "" && stats[fc.recover] == 0 {
					t.Errorf("transfer completed without the %s recovery; events: %v", fc.recover, stats)
				}
				// Determinism: the rerun must reproduce the identical event
				// log — same faults, same recoveries, same cycles.
				cfg2 := fc.cfg
				events2, end2 := runMatrixCell(t, pth, &cfg2, reps)
				if end != end2 {
					t.Errorf("rerun finished at cycle %d, first run at %d", end2, end)
				}
				if !reflect.DeepEqual(events, events2) {
					t.Errorf("rerun produced a different event log:\nfirst %v\nrerun %v", events, events2)
				}
			})
		}
	}
}

// TestFaultMatrixZeroConfigIsSilent proves the armed-but-idle machinery
// changes nothing: a zero-rate schedule must finish at the exact cycle
// of a fault-free run and record no events.
func TestFaultMatrixZeroConfigIsSilent(t *testing.T) {
	for _, pth := range matrixPaths {
		pth := pth
		t.Run(pth.name, func(t *testing.T) {
			zero := &fault.Config{Seed: 99}
			events, end := runMatrixCell(t, pth, zero, 4)
			if len(events) != 0 {
				t.Errorf("zero-rate schedule recorded events: %v", events)
			}
			_, bare := runMatrixCell(t, pth, nil, 4)
			if end != bare {
				t.Errorf("armed run finished at cycle %d, fault-free at %d", end, bare)
			}
		})
	}
}
