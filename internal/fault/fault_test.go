package fault

import (
	"reflect"
	"testing"

	"vscc/internal/sim"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if v := inj.PacketFault("pcie.h2d", 0); v.Faulty() {
		t.Errorf("nil injector issued a packet fault: %+v", v)
	}
	if inj.LoseFlagWrite(0) || inj.CorruptCacheLine(0) || inj.CorruptMMIO(0) {
		t.Error("nil injector injected a fault")
	}
	if inj.Degraded(0) {
		t.Error("nil injector reports degradation")
	}
	inj.RecordRecovery("retx", "pcie.h2d", 0) // must not panic
	inj.RecordInjection("stall", "host", -1)
	if got := inj.Recovery(); got != DefaultRecovery() {
		t.Errorf("nil injector Recovery() = %+v, want defaults", got)
	}
	if inj.Events() != nil || inj.Stat("inject.drop") != 0 || inj.Summary() != "" {
		t.Error("nil injector has history")
	}
	if inj.Pick("x", 0, 8) != 0 {
		t.Error("nil injector Pick != 0")
	}
}

// Equal seeds must reproduce the identical verdict sequence; a different
// seed must diverge. This is the property every recovery test leans on.
func TestStreamsAreDeterministicPerSeed(t *testing.T) {
	draw := func(seed uint64) []PacketVerdict {
		inj := NewInjector(sim.NewKernel(), Config{Seed: seed, DropPer10k: 2000, DupPer10k: 1000, DelayPer10k: 1000, CorruptPer10k: 500})
		var out []PacketVerdict
		for i := 0; i < 200; i++ {
			out = append(out, inj.PacketFault("pcie.h2d", 1))
		}
		return out
	}
	a, b := draw(42), draw(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different verdict sequences")
	}
	if reflect.DeepEqual(a, draw(43)) {
		t.Fatal("different seeds produced identical verdict sequences")
	}
	faulty := 0
	for _, v := range a {
		if v.Faulty() {
			faulty++
		}
		if v.Drop && (v.Dup || v.Corrupt) || v.Dup && v.Corrupt {
			t.Fatalf("verdict mixes exclusive faults: %+v", v)
		}
	}
	if faulty == 0 || faulty == len(a) {
		t.Errorf("%d/%d verdicts faulty; rates are not being applied", faulty, len(a))
	}
}

// Streams are keyed by (site, dev): traffic on one site must not perturb
// decisions on another.
func TestSiteStreamsAreIndependent(t *testing.T) {
	seq := func(interleave bool) []bool {
		inj := NewInjector(sim.NewKernel(), Config{Seed: 7, FlagLossPer10k: 3000})
		var out []bool
		for i := 0; i < 100; i++ {
			if interleave {
				inj.PacketFault("pcie.d2h", 0) // extra traffic elsewhere
			}
			out = append(out, inj.LoseFlagWrite(2))
		}
		return out
	}
	if !reflect.DeepEqual(seq(false), seq(true)) {
		t.Fatal("flag-loss stream perturbed by packet traffic on another site")
	}
}

func TestRatesAreExtremes(t *testing.T) {
	inj := NewInjector(sim.NewKernel(), Config{DropPer10k: 10_000})
	for i := 0; i < 50; i++ {
		if !inj.PacketFault("pcie.h2d", 0).Drop {
			t.Fatal("rate 10000/10k did not always drop")
		}
	}
	if inj.Stat("inject.drop") != 50 {
		t.Errorf("drop stat = %d, want 50", inj.Stat("inject.drop"))
	}
	none := NewInjector(sim.NewKernel(), Config{})
	for i := 0; i < 50; i++ {
		if none.PacketFault("pcie.h2d", 0).Faulty() {
			t.Fatal("zero rates injected a fault")
		}
	}
	if len(none.Events()) != 0 {
		t.Error("zero-rate injector logged events")
	}
}

func TestDegradedThreshold(t *testing.T) {
	inj := NewInjector(sim.NewKernel(), Config{Recovery: Recovery{DegradeAfter: 3}})
	for i := 0; i < 2; i++ {
		inj.RecordRecovery("retx", "pcie.h2d", 1)
	}
	if inj.Degraded(1) {
		t.Error("degraded below threshold")
	}
	inj.RecordRecovery("wait-timeout", "vscc", 1)
	if !inj.Degraded(1) {
		t.Error("not degraded at threshold")
	}
	if inj.Degraded(0) {
		t.Error("device 0 degraded without recoveries")
	}
	// Host-level recoveries (dev -1) never count toward degradation.
	off := NewInjector(sim.NewKernel(), Config{Recovery: Recovery{DegradeAfter: 1}})
	off.RecordRecovery("watchdog", "host", -1)
	if off.Degraded(-1) || off.Degraded(0) {
		t.Error("dev=-1 recovery drove degradation")
	}
}

// TestPromoteHysteresis tables the re-promotion latch: PromoteAfter
// consecutive clean transfers reset a degraded device to its fast path,
// any recovery resets the streak, and -1 keeps the legacy permanent
// latch. The hysteresis is the fix for the one-way degradation of the
// original design, where a single early fault burst banished a device
// from its fast path for the rest of a long run.
func TestPromoteHysteresis(t *testing.T) {
	cases := []struct {
		name         string
		promoteAfter int
		script       func(inj *Injector) // drive recoveries/cleans
		degraded     bool                // expected Degraded(1) afterwards
		promotions   int64               // expected recover.promote count
	}{
		{
			name:         "clean streak re-promotes",
			promoteAfter: 4,
			script: func(inj *Injector) {
				for i := 0; i < 3; i++ {
					inj.RecordRecovery("retx", "pcie.h2d", 1)
				}
				for i := 0; i < 4; i++ {
					inj.CleanTransfer(1)
				}
			},
			degraded:   false,
			promotions: 1,
		},
		{
			name:         "streak below threshold stays degraded",
			promoteAfter: 4,
			script: func(inj *Injector) {
				for i := 0; i < 3; i++ {
					inj.RecordRecovery("retx", "pcie.h2d", 1)
				}
				for i := 0; i < 3; i++ {
					inj.CleanTransfer(1)
				}
			},
			degraded:   true,
			promotions: 0,
		},
		{
			name:         "recovery resets the streak",
			promoteAfter: 4,
			script: func(inj *Injector) {
				for i := 0; i < 3; i++ {
					inj.RecordRecovery("retx", "pcie.h2d", 1)
				}
				for i := 0; i < 3; i++ {
					inj.CleanTransfer(1)
				}
				inj.RecordRecovery("retx", "pcie.h2d", 1) // streak back to 0
				for i := 0; i < 3; i++ {
					inj.CleanTransfer(1)
				}
			},
			degraded:   true,
			promotions: 0,
		},
		{
			name:         "permanent latch with PromoteAfter=-1",
			promoteAfter: -1,
			script: func(inj *Injector) {
				for i := 0; i < 3; i++ {
					inj.RecordRecovery("retx", "pcie.h2d", 1)
				}
				for i := 0; i < 1000; i++ {
					inj.CleanTransfer(1)
				}
			},
			degraded:   true,
			promotions: 0,
		},
		{
			name:         "sub-threshold recoveries are forgiven silently",
			promoteAfter: 4,
			script: func(inj *Injector) {
				// 2 recoveries (below DegradeAfter=3), then a clean
				// streak: the count resets without a promotion event, so
				// ancient faults cannot pool with fresh ones.
				inj.RecordRecovery("retx", "pcie.h2d", 1)
				inj.RecordRecovery("retx", "pcie.h2d", 1)
				for i := 0; i < 4; i++ {
					inj.CleanTransfer(1)
				}
				inj.RecordRecovery("retx", "pcie.h2d", 1)
				inj.RecordRecovery("retx", "pcie.h2d", 1)
			},
			degraded:   false, // 2+2 recoveries, but the streak wiped the first 2
			promotions: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := NewInjector(sim.NewKernel(), Config{
				Recovery: Recovery{DegradeAfter: 3, PromoteAfter: tc.promoteAfter},
			})
			tc.script(inj)
			if got := inj.Degraded(1); got != tc.degraded {
				t.Errorf("Degraded(1) = %v, want %v", got, tc.degraded)
			}
			if got := inj.Stat("recover.promote"); got != tc.promotions {
				t.Errorf("recover.promote = %d, want %d", got, tc.promotions)
			}
			// The untouched device is never disturbed.
			if inj.Degraded(0) || inj.RecoveryCount(0) != 0 {
				t.Error("device 0 state disturbed")
			}
		})
	}
	// Nil-receiver safety of the new surface.
	var nilInj *Injector
	nilInj.CleanTransfer(1)
	if nilInj.RecoveryCount(1) != 0 {
		t.Error("nil injector reported a recovery count")
	}
}

// TestParseSpecDeviceFaults covers the device-fault grammar added for
// the membership machinery.
func TestParseSpecDeviceFaults(t *testing.T) {
	cfg, err := ParseSpec("devcrash=200000:1,devcrash=900000:0:400000,devlinkdown=5000:2,ckpt=250000,rejoin=150000,promote=16,devretry=1")
	if err != nil {
		t.Fatal(err)
	}
	want := &Config{
		DevCrashAt: []DeviceFault{
			{At: 200000, Dev: 1},
			{At: 900000, Dev: 0, Down: 400000},
		},
		DevLinkDownAt: []DeviceFault{{At: 5000, Dev: 2}},
		CkptInterval:  250000,
		RejoinCycles:  150000,
		Recovery:      Recovery{PromoteAfter: 16, DeviceRetry: true},
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("ParseSpec:\n got %+v\nwant %+v", cfg, want)
	}
	if !cfg.DeviceFaultsArmed() {
		t.Error("device schedule not reported as armed")
	}
	if (&Config{Seed: 1}).DeviceFaultsArmed() || (*Config)(nil).DeviceFaultsArmed() {
		t.Error("armed without any device fault")
	}
	for _, bad := range []string{"devcrash=5", "devcrash=a:1", "devcrash=1:b", "devcrash=1:2:c", "devcrash=1:2:3:4", "devlinkdown=x", "ckpt=x", "rejoin=x", "promote=x", "devretry=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestRecoveryDefaults(t *testing.T) {
	r := (Recovery{}).withDefaults()
	if r != DefaultRecovery() {
		t.Errorf("zero Recovery resolved to %+v, want defaults", r)
	}
	r = (Recovery{VerifyRetries: -1, WaitBudget: 5, DegradeAfter: 2}).withDefaults()
	if r.VerifyRetries != -1 {
		t.Error("VerifyRetries=-1 (disabled) was overwritten")
	}
	if r.WaitBudget != 5 || r.DegradeAfter != 2 {
		t.Error("explicit fields overwritten by defaults")
	}
	if r.MaxRetx != DefaultRecovery().MaxRetx {
		t.Error("zero MaxRetx not defaulted")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42, drop=200,dup=50,delay=100:5000,corrupt=20,flagloss=9,cachecorrupt=8,mmio=7,stall=50000:20000,stall=90000:1000,crash=400000,retx=111,maxretx=3,budget=222,waitretries=4,watchdog=333,verify=-1,degrade=10")
	if err != nil {
		t.Fatal(err)
	}
	want := &Config{
		Seed: 42, DropPer10k: 200, DupPer10k: 50, DelayPer10k: 100, DelayCycles: 5000,
		CorruptPer10k: 20, FlagLossPer10k: 9, CacheCorruptPer10k: 8, MMIOCorruptPer10k: 7,
		StallAt: []StallWindow{{At: 50000, For: 20000}, {At: 90000, For: 1000}},
		CrashAt: []sim.Cycles{400000},
		Recovery: Recovery{
			RetxTimeout: 111, MaxRetx: 3, WaitBudget: 222, MaxWaitRetries: 4,
			WatchdogCycles: 333, VerifyRetries: -1, DegradeAfter: 10,
		},
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("ParseSpec:\n got %+v\nwant %+v", cfg, want)
	}
	if cfg, err := ParseSpec("  "); err != nil || cfg != nil {
		t.Errorf("empty spec = (%v, %v), want (nil, nil)", cfg, err)
	}
	for _, bad := range []string{"drop", "bogus=1", "drop=x", "stall=5", "stall=a:b", "seed=-1", "delay=1:x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

// TestParseSpecErrorPositions pins the exact diagnostics: a bad spec
// names its offending token and the token's byte offset in the trimmed
// spec, so machine-assembled specs (chaos reproducers, CI matrices)
// pinpoint their own defects.
func TestParseSpecErrorPositions(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"drop", `fault: spec token "drop" at byte 0 is not key=value`},
		{"seed=1,bogus=1", `fault: spec token "bogus=1" at byte 7: unknown setting`},
		{"seed=1,drop=x", `fault: spec token "drop=x" at byte 7: bad number "x"`},
		{"seed=z", `fault: spec token "seed=z" at byte 0: bad seed "z"`},
		{"seed=1,stall=5", `fault: spec token "stall=5" at byte 7: want AT:FOR, got "5"`},
		{"seed=1,devcrash=5", `fault: spec token "devcrash=5" at byte 7: want AT:DEV[:DOWN], got "5"`},
		{"seed=1,devlinkdown=1:2:3:4", `fault: spec token "devlinkdown=1:2:3:4" at byte 7: want AT:DEV[:DOWN], got "1:2:3:4"`},
		{"seed=1,drop=10,delay=1:x", `fault: spec token "delay=1:x" at byte 15: bad number "x"`},
		// Inter-token spaces are trimmed from the token but kept in the
		// offsets, which index the spec as the caller wrote it.
		{"seed=1, drop=x", `fault: spec token "drop=x" at byte 8: bad number "x"`},
		{"seed=1,,drop=10", `fault: spec token "" at byte 7 is not key=value`},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want %q", c.spec, c.want)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("ParseSpec(%q)\n got %q\nwant %q", c.spec, err.Error(), c.want)
		}
	}
}

func TestEventLogCapsAndSummary(t *testing.T) {
	inj := NewInjector(sim.NewKernel(), Config{FlagLossPer10k: 10_000})
	for i := 0; i < maxEvents+10; i++ {
		inj.LoseFlagWrite(0)
	}
	if len(inj.Events()) != maxEvents {
		t.Errorf("event log holds %d entries, want cap %d", len(inj.Events()), maxEvents)
	}
	if inj.Stat("inject.flagloss") != int64(maxEvents+10) {
		t.Errorf("stat = %d, want %d", inj.Stat("inject.flagloss"), maxEvents+10)
	}
	sum := inj.Summary()
	for _, want := range []string{"inject.flagloss=4106\n", "events-dropped=10\n"} {
		if !contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	ev := inj.Events()[0]
	if ev.Kind != "inject.flagloss" || ev.Site != "scc.flag" || ev.Dev != 0 {
		t.Errorf("event = %v", ev)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
