// Package fault is the deterministic fault injector for the vSCC stack.
// It decides — from a seed and the simulated clock alone, never the wall
// clock — when a PCIe SIF packet is dropped, duplicated, delayed or
// corrupted, when the host communication task stalls or crash-restarts,
// when a software-cache line is silently corrupted, and when a remote
// MPB flag write is lost. Every decision comes from a hand-rolled
// splitmix64 stream keyed by (site, device), so the n-th event at a site
// always gets the same verdict: a failing schedule replays cycle-exact.
//
// The injector only decides; the model layers (internal/pcie,
// internal/host, internal/scc, internal/vscc) both apply the faults and
// carry the recovery machinery — sequence-numbered replay, watchdog
// restart, checksummed cache lines, write-verified flags, and the
// timeout/retry ladder of DESIGN.md §8. A nil *Injector is fully inert:
// every decision method on a nil receiver answers "no fault", so the
// fault-free fast paths stay byte-identical.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vscc/internal/sim"
	"vscc/internal/trace"
)

// Config selects what to inject. All rates are per 10,000 opportunities;
// zero disables that fault class. The zero Config injects nothing but
// still arms the recovery machinery (timeouts, checksums, replay), which
// is how the identity tests prove the machinery itself is silent.
type Config struct {
	// Seed keys every decision stream. Two runs with equal Seed and
	// equal workloads inject identical faults at identical cycles.
	Seed uint64

	// PCIe SIF packet faults, applied per posted packet and direction.
	DropPer10k    int        // packet vanishes after occupying the link
	DupPer10k     int        // packet delivered twice
	DelayPer10k   int        // packet held DelayCycles past its arrival
	CorruptPer10k int        // frame damaged in flight; CRC rejects it
	DelayCycles   sim.Cycles // extra latency of a delayed packet (default 2000)

	// FlagLossPer10k drops host-side flag stores (≤4 B) into device MPBs.
	FlagLossPer10k int
	// CacheCorruptPer10k flips a byte in a software-cache line as it
	// lands, without updating its checksum.
	CacheCorruptPer10k int
	// MMIOCorruptPer10k damages a fused 32 B vDMA register write on the
	// wire, exercising the command validator.
	MMIOCorruptPer10k int

	// StallAt freezes the host communication task for a window; CrashAt
	// crashes it (volatile state — caches, SIF buffers, registers,
	// streams — is lost) until the watchdog restarts it.
	StallAt []StallWindow
	CrashAt []sim.Cycles

	// DevCrashAt takes a whole SCC device down: its MPB contents are
	// lost at the crash and rebuilt on rejoin from the last checkpoint
	// plus the write journal. DevLinkDownAt severs only the device's
	// PCIe link (MPB state survives); posted frames are journaled and
	// replayed after the link returns. Both drive the epoch-based
	// membership machinery of internal/vscc.
	DevCrashAt    []DeviceFault
	DevLinkDownAt []DeviceFault

	// CkptInterval is the period of the crash-consistent device
	// checkpoints (0 = DefaultCkptInterval). Checkpoints are only taken
	// while a device-fault schedule is armed.
	CkptInterval sim.Cycles
	// RejoinCycles is how long a failed device stays down before it
	// rejoins (0 = DefaultRejoinCycles); DeviceFault.Down overrides it
	// per fault.
	RejoinCycles sim.Cycles

	// Recovery tunes the detection/retry machinery; zero fields take
	// DefaultRecovery values.
	Recovery Recovery
}

// DeviceFault schedules one whole-device outage: device Dev fails at
// cycle At and rejoins after Down cycles (0 = the Config's
// RejoinCycles).
type DeviceFault struct {
	At   sim.Cycles
	Dev  int
	Down sim.Cycles
}

// DeviceFaultsArmed reports whether the schedule contains any
// whole-device outage — the arming condition for checkpoints and the
// membership manager.
func (c *Config) DeviceFaultsArmed() bool {
	return c != nil && (len(c.DevCrashAt) > 0 || len(c.DevLinkDownAt) > 0)
}

// Default device-lifecycle timing: checkpoints every 500k cycles, a
// failed device returns after 200k (≈ 2 watchdog periods), and the
// membership manager lets in-flight committed traffic drain for 50k
// cycles before declaring the device down.
const (
	DefaultCkptInterval = sim.Cycles(500_000)
	DefaultRejoinCycles = sim.Cycles(200_000)
	DefaultDrainCycles  = sim.Cycles(50_000)
)

// ErrDeviceLost is the sentinel raised when a blocking operation is
// stranded on a crashed device and transparent retry is not enabled
// (devretry=0). It lives here — below every model layer — so the host
// fabric's forwarded-read path and the rcce protocol ladders raise the
// exact same instance; rcce re-exports it as rcce.ErrDeviceLost, which
// is the name callers match with errors.Is.
var ErrDeviceLost = errors.New("rcce: peer device lost")

// StallWindow freezes the host task at cycle At for For cycles.
type StallWindow struct {
	At  sim.Cycles
	For sim.Cycles
}

// Recovery holds the cycle budgets and retry bounds of the recovery
// ladder. Zero fields mean "use the default"; see DefaultRecovery.
type Recovery struct {
	// RetxTimeout is the base SIF retransmission timeout; attempt n waits
	// RetxTimeout<<n (exponential backoff). MaxRetx bounds the attempts.
	RetxTimeout sim.Cycles
	MaxRetx     int

	// WaitBudget is the base cycle budget of an engaged protocol wait;
	// each timeout doubles it and re-drives idempotent work, up to
	// MaxWaitRetries before the wait fails with a clear error.
	WaitBudget     sim.Cycles
	MaxWaitRetries int

	// WatchdogCycles is how long the host task stays down after a crash
	// before the watchdog restarts it.
	WatchdogCycles sim.Cycles

	// VerifyRetries bounds the read-back/rewrite attempts of a host-side
	// flag store. -1 disables write-verify entirely (for testing the
	// lost-completion error path).
	VerifyRetries int

	// DegradeAfter is the per-device recovery count past which the
	// protocol abandons its fast path and falls back to transparent
	// routing. 0 never degrades.
	DegradeAfter int

	// PromoteAfter is the hysteresis of the degradation latch: after
	// this many consecutive clean transfers a degraded device is
	// re-promoted to the fast path (its recovery count resets). -1
	// keeps the latch permanent; 0 takes the default.
	PromoteAfter int

	// DeviceRetry opts protocol waits into transparent device-loss
	// retry: an engaged wait whose peer device is down blocks until the
	// device rejoins instead of consuming retry-ladder attempts. Off,
	// the wait fails deterministically with rcce.ErrDeviceLost.
	DeviceRetry bool
}

// DefaultRecovery returns the recovery parameters used when a Config (or
// a system without faults) leaves them zero. The budgets are generous:
// a healthy run never hits them, so arming the machinery is free.
func DefaultRecovery() Recovery {
	return Recovery{
		RetxTimeout:    40_000, // ~4 PCIe round trips
		MaxRetx:        10,
		WaitBudget:     20_000_000,
		MaxWaitRetries: 5,
		WatchdogCycles: 100_000,
		VerifyRetries:  8,
		DegradeAfter:   0,
		PromoteAfter:   32,
	}
}

// withDefaults fills zero fields from DefaultRecovery. VerifyRetries -1
// is kept (disabled), as are DegradeAfter 0 (never) and PromoteAfter -1
// (permanent latch).
func (r Recovery) withDefaults() Recovery {
	d := DefaultRecovery()
	if r.RetxTimeout == 0 {
		r.RetxTimeout = d.RetxTimeout
	}
	if r.MaxRetx == 0 {
		r.MaxRetx = d.MaxRetx
	}
	if r.WaitBudget == 0 {
		r.WaitBudget = d.WaitBudget
	}
	if r.MaxWaitRetries == 0 {
		r.MaxWaitRetries = d.MaxWaitRetries
	}
	if r.WatchdogCycles == 0 {
		r.WatchdogCycles = d.WatchdogCycles
	}
	if r.VerifyRetries == 0 {
		r.VerifyRetries = d.VerifyRetries
	}
	if r.PromoteAfter == 0 {
		r.PromoteAfter = d.PromoteAfter
	}
	return r
}

// PacketVerdict is the injector's decision for one SIF packet. At most
// one of Drop/Dup/Corrupt is set; Delay composes with none of them.
type PacketVerdict struct {
	Drop    bool
	Dup     bool
	Corrupt bool
	Delay   sim.Cycles
}

// Faulty reports whether any fault was selected.
func (v PacketVerdict) Faulty() bool { return v.Drop || v.Dup || v.Corrupt || v.Delay > 0 }

// Event is one injection or recovery, stamped with the simulated cycle
// it happened at. The event log is the reproducibility witness: two runs
// of the same seeded schedule must produce identical logs.
type Event struct {
	Cycle sim.Cycles
	Kind  string // e.g. "inject.drop", "recover.retx"
	Site  string // e.g. "pcie.h2d", "host.cache"
	Dev   int    // device index, -1 when not device-specific
}

func (e Event) String() string {
	return fmt.Sprintf("%d %s %s dev=%d", e.Cycle, e.Kind, e.Site, e.Dev)
}

// maxEvents caps the in-memory log; past it only counters advance.
const maxEvents = 4096

// Injector draws fault decisions and records the injection/recovery
// history. All methods are safe on a nil receiver (no faults, nothing
// recorded).
type Injector struct {
	k    *sim.Kernel
	cfg  Config
	rec  Recovery
	sink *trace.Sink

	streams   map[streamKey]*splitmix
	recovered map[int]int // per-device recovery count, feeds Degraded
	clean     map[int]int // consecutive clean transfers, feeds re-promotion
	stats     map[string]int64

	events  []Event
	dropped int
}

type streamKey struct {
	site string
	dev  int
}

// NewInjector builds an injector for kernel k. cfg.Recovery is
// normalized through DefaultRecovery.
func NewInjector(k *sim.Kernel, cfg Config) *Injector {
	if cfg.DelayCycles == 0 {
		cfg.DelayCycles = 2000
	}
	return &Injector{
		k:         k,
		cfg:       cfg,
		rec:       cfg.Recovery.withDefaults(),
		streams:   make(map[streamKey]*splitmix),
		recovered: make(map[int]int),
		clean:     make(map[int]int),
		stats:     make(map[string]int64),
	}
}

// Instrument mirrors every event into sink counters
// ("fault.inject.drop", "fault.recover.retx", ...).
func (inj *Injector) Instrument(sink *trace.Sink) {
	if inj != nil {
		inj.sink = sink
	}
}

// Config returns the injector's configuration; zero on nil.
func (inj *Injector) Config() Config {
	if inj == nil {
		return Config{}
	}
	return inj.cfg
}

// Recovery returns the resolved recovery parameters; DefaultRecovery on
// nil, so callers need not special-case a fault-free system.
func (inj *Injector) Recovery() Recovery {
	if inj == nil {
		return DefaultRecovery()
	}
	return inj.rec
}

// stream returns the decision stream for (site, dev), creating it from
// the seed on first use. The per-site keying makes each site's decision
// sequence independent of every other site's traffic.
func (inj *Injector) stream(site string, dev int) *splitmix {
	key := streamKey{site, dev}
	s, ok := inj.streams[key]
	if !ok {
		s = &splitmix{state: inj.cfg.Seed ^ hashSite(site) ^ (uint64(dev+1) * 0x9E3779B97F4A7C15)}
		inj.streams[key] = s
	}
	return s
}

// roll draws one decision at rate-per-10k from the site's stream.
func (inj *Injector) roll(site string, dev, per10k int) bool {
	if per10k <= 0 {
		return false
	}
	return inj.stream(site, dev).next()%10_000 < uint64(per10k)
}

// Pick returns a deterministic index in [0, n) for the site's next
// corruption target (which byte to flip). n must be positive.
func (inj *Injector) Pick(site string, dev, n int) int {
	if inj == nil || n <= 0 {
		return 0
	}
	return int(inj.stream(site+".pick", dev).next() % uint64(n))
}

// PacketFault decides the fate of one SIF packet at a site
// ("pcie.d2h"/"pcie.h2d"). Drop, dup and corrupt are mutually exclusive
// — one die roll picks among them — while delay rolls separately.
func (inj *Injector) PacketFault(site string, dev int) PacketVerdict {
	if inj == nil {
		return PacketVerdict{}
	}
	var v PacketVerdict
	switch {
	case inj.roll(site+".drop", dev, inj.cfg.DropPer10k):
		v.Drop = true
		inj.note("inject.drop", site, dev)
	case inj.roll(site+".dup", dev, inj.cfg.DupPer10k):
		v.Dup = true
		inj.note("inject.dup", site, dev)
	case inj.roll(site+".corrupt", dev, inj.cfg.CorruptPer10k):
		v.Corrupt = true
		inj.note("inject.corrupt", site, dev)
	}
	if !v.Drop && !v.Corrupt && inj.roll(site+".delay", dev, inj.cfg.DelayPer10k) {
		v.Delay = inj.cfg.DelayCycles
		inj.note("inject.delay", site, dev)
	}
	return v
}

// LoseFlagWrite decides whether a host-side flag store into device dev's
// MPB vanishes.
func (inj *Injector) LoseFlagWrite(dev int) bool {
	if inj == nil || !inj.roll("scc.flag", dev, inj.cfg.FlagLossPer10k) {
		return false
	}
	inj.note("inject.flagloss", "scc.flag", dev)
	return true
}

// CorruptCacheLine decides whether a software-cache line landing for
// device dev is silently damaged.
func (inj *Injector) CorruptCacheLine(dev int) bool {
	if inj == nil || !inj.roll("host.cache", dev, inj.cfg.CacheCorruptPer10k) {
		return false
	}
	inj.note("inject.cachecorrupt", "host.cache", dev)
	return true
}

// CorruptMMIO decides whether a fused vDMA register write from device
// dev is damaged on the wire.
func (inj *Injector) CorruptMMIO(dev int) bool {
	if inj == nil || !inj.roll("host.mmio", dev, inj.cfg.MMIOCorruptPer10k) {
		return false
	}
	inj.note("inject.mmiocorrupt", "host.mmio", dev)
	return true
}

// RecordInjection logs an injection applied outside the decision methods
// (host stall/crash windows, which come from the schedule, not a roll).
func (inj *Injector) RecordInjection(kind, site string, dev int) {
	if inj != nil {
		inj.note("inject."+kind, site, dev)
	}
}

// RecordRecovery logs one recovery action. dev ≥ 0 also advances that
// device's recovery count, which drives Degraded.
func (inj *Injector) RecordRecovery(kind, site string, dev int) {
	if inj == nil {
		return
	}
	inj.note("recover."+kind, site, dev)
	if dev >= 0 {
		inj.recovered[dev]++
		inj.clean[dev] = 0
	}
}

// Degraded reports whether device dev's recovery count has crossed the
// degradation threshold — the protocol should abandon its fast path.
func (inj *Injector) Degraded(dev int) bool {
	if inj == nil || inj.rec.DegradeAfter <= 0 {
		return false
	}
	return inj.recovered[dev] >= inj.rec.DegradeAfter
}

// RecoveryCount returns device dev's recovery count (0 on nil) — the
// before/after probe the protocol uses to classify a transfer as clean.
func (inj *Injector) RecoveryCount(dev int) int {
	if inj == nil {
		return 0
	}
	return inj.recovered[dev]
}

// CleanTransfer records one transfer that touched device dev without
// needing any recovery. After Recovery.PromoteAfter consecutive clean
// transfers a degraded device is re-promoted: its recovery count and
// streak reset, and the promotion is logged ("recover.promote"). The
// hysteresis closes the permanent-degradation latch: a burst of faults
// pushes a device off its fast path, but a healthy stretch brings the
// fast path back.
func (inj *Injector) CleanTransfer(dev int) {
	if inj == nil || dev < 0 {
		return
	}
	inj.clean[dev]++
	if inj.rec.PromoteAfter <= 0 || inj.clean[dev] < inj.rec.PromoteAfter {
		return
	}
	inj.clean[dev] = 0
	if inj.Degraded(dev) {
		inj.recovered[dev] = 0
		inj.note("recover.promote", "vscc.proto", dev)
	} else {
		// A long clean streak also forgives sub-threshold recoveries,
		// so ancient faults cannot combine with fresh ones to degrade.
		inj.recovered[dev] = 0
	}
}

// note appends to the event log and mirrors into stats and the sink —
// both the aggregate counter and, for device-specific events, a
// per-device variant ("fault.recover.retx.d1") that feeds the
// `vscctrace -recovery` table.
func (inj *Injector) note(kind, site string, dev int) {
	inj.stats[kind]++
	if inj.sink.Enabled() {
		inj.sink.Add("fault."+kind, 1)
		if dev >= 0 {
			inj.sink.Add("fault."+kind+".d"+strconv.Itoa(dev), 1)
		}
	}
	if len(inj.events) >= maxEvents {
		inj.dropped++
		return
	}
	inj.events = append(inj.events, Event{Cycle: inj.k.Now(), Kind: kind, Site: site, Dev: dev})
}

// Events returns a copy of the event log (nil on a nil injector).
func (inj *Injector) Events() []Event {
	if inj == nil {
		return nil
	}
	return append([]Event(nil), inj.events...)
}

// Stat returns the total count of one event kind, e.g. "inject.drop".
func (inj *Injector) Stat(kind string) int64 {
	if inj == nil {
		return 0
	}
	return inj.stats[kind]
}

// Summary renders the event totals in a stable order — the digest the
// soak test compares across serial and parallel sweeps.
func (inj *Injector) Summary() string {
	if inj == nil {
		return ""
	}
	kinds := make([]string, 0, len(inj.stats))
	for k := range inj.stats {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&b, "%s=%d\n", k, inj.stats[k])
	}
	if inj.dropped > 0 {
		fmt.Fprintf(&b, "events-dropped=%d\n", inj.dropped)
	}
	return b.String()
}

// splitmix is splitmix64 (Steele et al., "Fast splittable pseudorandom
// number generators"): one add and three xor-shifts per draw, chosen
// over math/rand so model packages stay free of global PRNG state.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hashSite is FNV-1a over the site name.
func hashSite(site string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 0x100000001B3
	}
	return h
}

// ParseSpec parses the -fault flag grammar: comma-separated key=value
// settings.
//
//	seed=N            decision-stream seed
//	drop=N            SIF drop rate per 10k packets
//	dup=N             SIF duplicate rate
//	delay=N[:CYCLES]  SIF delay rate, optional extra cycles (default 2000)
//	corrupt=N         SIF frame-corruption rate
//	flagloss=N        host flag-store loss rate
//	cachecorrupt=N    software-cache line corruption rate
//	mmio=N            vDMA register-write corruption rate
//	stall=AT:FOR      freeze the host task at cycle AT for FOR cycles (repeatable)
//	crash=AT          crash the host task at cycle AT (repeatable)
//	devcrash=AT:DEV[:DOWN]    crash device DEV at cycle AT, rejoin after DOWN (repeatable)
//	devlinkdown=AT:DEV[:DOWN] sever device DEV's PCIe link at cycle AT (repeatable)
//	ckpt=N            device checkpoint interval [cycles]
//	rejoin=N          default device down time before rejoin [cycles]
//	retx=N            base retransmission timeout [cycles]
//	maxretx=N         retransmission attempts bound
//	budget=N          base engaged-wait budget [cycles]
//	waitretries=N     engaged-wait retry bound
//	watchdog=N        crash-restart delay [cycles]
//	verify=N          flag write-verify retries (-1 disables)
//	degrade=N         per-device recoveries before falling back to routing
//	promote=N         consecutive clean transfers before re-promotion (-1 latches)
//	devretry=0|1      transparent retry across device loss (default 0: ErrDeviceLost)
//
// Example: "seed=42,drop=200,delay=100:5000,crash=400000,degrade=10".
// An empty spec returns (nil, nil): faults disabled.
func ParseSpec(spec string) (*Config, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	cfg := &Config{}
	// Parse errors name the offending token and its byte offset in the
	// (trimmed) spec, so a long machine-assembled spec — a chaos
	// campaign reproducer, a CI matrix entry — pinpoints its bad token
	// without manual counting.
	off := 0
	for _, tok := range strings.Split(spec, ",") {
		trimmed := strings.TrimSpace(tok)
		at := off + strings.Index(tok, trimmed)
		key, val, ok := strings.Cut(trimmed, "=")
		if !ok {
			return nil, fmt.Errorf("fault: spec token %q at byte %d is not key=value", trimmed, at)
		}
		if err := applySetting(cfg, key, val); err != nil {
			return nil, fmt.Errorf("fault: spec token %q at byte %d: %w", trimmed, at, err)
		}
		off += len(tok) + 1
	}
	return cfg, nil
}

func applySetting(cfg *Config, key, val string) error {
	// Errors stay token-relative: ParseSpec wraps them with the
	// offending token and its byte offset.
	atoi := func(s string) (int, error) {
		n, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("bad number %q", s)
		}
		return n, nil
	}
	switch key {
	case "seed":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", val)
		}
		cfg.Seed = n
	case "drop":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.DropPer10k = n
	case "dup":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.DupPer10k = n
	case "delay":
		rate, cycles, hasCycles := strings.Cut(val, ":")
		n, err := atoi(rate)
		if err != nil {
			return err
		}
		cfg.DelayPer10k = n
		if hasCycles {
			c, err := atoi(cycles)
			if err != nil {
				return err
			}
			cfg.DelayCycles = sim.Cycles(c)
		}
	case "corrupt":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.CorruptPer10k = n
	case "flagloss":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.FlagLossPer10k = n
	case "cachecorrupt":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.CacheCorruptPer10k = n
	case "mmio":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.MMIOCorruptPer10k = n
	case "stall":
		at, dur, ok := strings.Cut(val, ":")
		if !ok {
			return fmt.Errorf("want AT:FOR, got %q", val)
		}
		a, err := atoi(at)
		if err != nil {
			return err
		}
		d, err := atoi(dur)
		if err != nil {
			return err
		}
		cfg.StallAt = append(cfg.StallAt, StallWindow{At: sim.Cycles(a), For: sim.Cycles(d)})
	case "crash":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.CrashAt = append(cfg.CrashAt, sim.Cycles(n))
	case "devcrash", "devlinkdown":
		parts := strings.Split(val, ":")
		if len(parts) != 2 && len(parts) != 3 {
			return fmt.Errorf("want AT:DEV[:DOWN], got %q", val)
		}
		at, err := atoi(parts[0])
		if err != nil {
			return err
		}
		dev, err := atoi(parts[1])
		if err != nil {
			return err
		}
		df := DeviceFault{At: sim.Cycles(at), Dev: dev}
		if len(parts) == 3 {
			down, err := atoi(parts[2])
			if err != nil {
				return err
			}
			df.Down = sim.Cycles(down)
		}
		if key == "devcrash" {
			cfg.DevCrashAt = append(cfg.DevCrashAt, df)
		} else {
			cfg.DevLinkDownAt = append(cfg.DevLinkDownAt, df)
		}
	case "ckpt":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.CkptInterval = sim.Cycles(n)
	case "rejoin":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.RejoinCycles = sim.Cycles(n)
	case "retx":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.Recovery.RetxTimeout = sim.Cycles(n)
	case "maxretx":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.Recovery.MaxRetx = n
	case "budget":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.Recovery.WaitBudget = sim.Cycles(n)
	case "waitretries":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.Recovery.MaxWaitRetries = n
	case "watchdog":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.Recovery.WatchdogCycles = sim.Cycles(n)
	case "verify":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.Recovery.VerifyRetries = n
	case "degrade":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.Recovery.DegradeAfter = n
	case "promote":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.Recovery.PromoteAfter = n
	case "devretry":
		n, err := atoi(val)
		if err != nil {
			return err
		}
		cfg.Recovery.DeviceRetry = n != 0
	default:
		return errors.New("unknown setting")
	}
	return nil
}
