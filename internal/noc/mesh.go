// Package noc models a two-dimensional mesh network-on-chip with
// dimension-ordered (XY) routing, as used by the Intel SCC's 6x4 tile
// mesh. The model is latency-oriented: a transfer's duration is computed
// from hop count, per-hop router and link delay, and flit serialization.
// Shared serial resources (the system interface port, PCIe lanes) are
// modelled by Link, a latency-rate server that serializes concurrent
// transfers deterministically.
package noc

import (
	"fmt"

	"vscc/internal/sim"
)

// Coord addresses a tile in the mesh.
type Coord struct {
	X, Y int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Params holds the mesh timing model in core clock cycles. The SCC mesh
// runs at 800 MHz against 533 MHz cores; the defaults below are already
// converted to core cycles.
type Params struct {
	// RouterCycles is the pipeline delay of one router traversal.
	RouterCycles sim.Cycles
	// LinkCycles is the wire delay of one inter-tile link.
	LinkCycles sim.Cycles
	// BytesPerFlit is the payload carried per flit.
	BytesPerFlit int
	// FlitCycles is the serialization delay per additional flit after the
	// head flit has arrived.
	FlitCycles sim.Cycles
	// InjectCycles is the fixed cost of entering/leaving the mesh through
	// the tile's mesh interface unit.
	InjectCycles sim.Cycles
}

// DefaultParams returns the SCC-calibrated mesh timing (533 MHz core,
// 800 MHz mesh: one mesh cycle = 2/3 core cycle, rounded up to integral
// core cycles per stage).
func DefaultParams() Params {
	return Params{
		RouterCycles: 3, // 4 mesh cycles per router, in core cycles
		LinkCycles:   1,
		BytesPerFlit: 16,
		FlitCycles:   2,
		InjectCycles: 4,
	}
}

// Mesh is a W x H tile grid.
type Mesh struct {
	W, H   int
	Params Params
}

// New returns a mesh of the given dimensions with timing p.
func New(w, h int, p Params) *Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("noc: invalid mesh dimensions %dx%d", w, h))
	}
	return &Mesh{W: w, H: h, Params: p}
}

// Contains reports whether c is a valid tile coordinate.
func (m *Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.W && c.Y >= 0 && c.Y < m.H
}

// Hops returns the XY-routing hop count between two tiles.
func (m *Mesh) Hops(a, b Coord) int {
	m.check(a)
	m.check(b)
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Route returns the tile sequence of the XY (X first, then Y) path from a
// to b, inclusive of both endpoints.
func (m *Mesh) Route(a, b Coord) []Coord {
	m.check(a)
	m.check(b)
	path := []Coord{a}
	cur := a
	for cur.X != b.X {
		if cur.X < b.X {
			cur.X++
		} else {
			cur.X--
		}
		path = append(path, cur)
	}
	for cur.Y != b.Y {
		if cur.Y < b.Y {
			cur.Y++
		} else {
			cur.Y--
		}
		path = append(path, cur)
	}
	return path
}

// flits returns the number of flits needed for a payload.
func (m *Mesh) flits(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + m.Params.BytesPerFlit - 1) / m.Params.BytesPerFlit
}

// TransferLatency returns the cycles for a payload of the given size to
// travel from tile a to tile b: head-flit latency across all hops plus
// serialization of the remaining flits.
func (m *Mesh) TransferLatency(a, b Coord, bytes int) sim.Cycles {
	hops := m.Hops(a, b)
	p := m.Params
	head := 2*p.InjectCycles + sim.Cycles(hops+1)*p.RouterCycles + sim.Cycles(hops)*p.LinkCycles
	tail := sim.Cycles(m.flits(bytes)-1) * p.FlitCycles
	return head + tail
}

// RoundTripLatency returns the cycles for a request of reqBytes to tile b
// and a response of respBytes back to a — the cost shape of a remote MPB
// read.
func (m *Mesh) RoundTripLatency(a, b Coord, reqBytes, respBytes int) sim.Cycles {
	return m.TransferLatency(a, b, reqBytes) + m.TransferLatency(b, a, respBytes)
}

func (m *Mesh) check(c Coord) {
	if !m.Contains(c) {
		panic(fmt.Sprintf("noc: tile %v outside %dx%d mesh", c, m.W, m.H))
	}
}
