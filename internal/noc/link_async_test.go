package noc

import (
	"testing"

	"vscc/internal/sim"
)

func TestTransferAsyncOverlapsLatency(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink("l", 1000, 1.0)
	var callerDone sim.Cycles
	delivered := []sim.Cycles{}
	k.Spawn("dma", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			l.TransferAsync(p, 100, func() {
				delivered = append(delivered, k.Now())
			})
		}
		callerDone = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The caller pays only serialization: 3 x 100 cycles.
	if callerDone != 300 {
		t.Errorf("caller done at %d, want 300", callerDone)
	}
	// Deliveries land at occupancy-end + latency, pipelined.
	want := []sim.Cycles{1100, 1200, 1300}
	if len(delivered) != 3 {
		t.Fatalf("deliveries = %v", delivered)
	}
	for i := range want {
		if delivered[i] != want[i] {
			t.Errorf("delivery %d at %d, want %d", i, delivered[i], want[i])
		}
	}
}

func TestTransferAsyncOrderingPreserved(t *testing.T) {
	// Deliveries on one link never reorder, even with mixed sizes.
	k := sim.NewKernel()
	l := NewLink("l", 500, 1.0)
	var order []int
	k.Spawn("a", func(p *sim.Proc) {
		l.TransferAsync(p, 1000, func() { order = append(order, 1) })
		l.TransferAsync(p, 10, func() { order = append(order, 2) })
		l.TransferAsync(p, 500, func() { order = append(order, 3) })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("delivery order = %v", order)
		}
	}
}

func TestTransferAsyncSharesChannelWithSync(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink("l", 10, 1.0)
	var syncDone sim.Cycles
	k.Spawn("mixed", func(p *sim.Proc) {
		l.TransferAsync(p, 100, nil) // occupies [0,100)
		l.Transfer(p, 50)            // queues behind: occupies [100,150), +10 latency
		syncDone = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if syncDone != 160 {
		t.Errorf("sync transfer done at %d, want 160", syncDone)
	}
}

func TestLinkBackpressureThrottlesProducer(t *testing.T) {
	// A fast producer is limited to the link rate via nextFree waiting.
	k := sim.NewKernel()
	l := NewLink("l", 5000, 0.1) // 10 cycles per byte
	var done sim.Cycles
	k.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			l.TransferAsync(p, 32, nil)
		}
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 3200 {
		t.Errorf("producer throttled to %d cycles, want 3200 (10x 32B at 10 c/B)", done)
	}
}
