package noc

import (
	"testing"
	"testing/quick"

	"vscc/internal/sim"
)

func sccMesh() *Mesh { return New(6, 4, DefaultParams()) }

func TestHopsSelf(t *testing.T) {
	m := sccMesh()
	if h := m.Hops(Coord{2, 2}, Coord{2, 2}); h != 0 {
		t.Errorf("self hops = %d, want 0", h)
	}
}

func TestHopsManhattan(t *testing.T) {
	m := sccMesh()
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{5, 3}, 8},
		{Coord{0, 0}, Coord{1, 0}, 1},
		{Coord{3, 0}, Coord{3, 3}, 3},
		{Coord{5, 1}, Coord{0, 1}, 5},
	}
	for _, c := range cases {
		if h := m.Hops(c.a, c.b); h != c.want {
			t.Errorf("Hops(%v,%v) = %d, want %d", c.a, c.b, h, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	m := sccMesh()
	f := func(ax, ay, bx, by uint8) bool {
		a := Coord{int(ax) % m.W, int(ay) % m.H}
		b := Coord{int(bx) % m.W, int(by) % m.H}
		return m.Hops(a, b) == m.Hops(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouteXYOrder(t *testing.T) {
	m := sccMesh()
	path := m.Route(Coord{1, 1}, Coord{4, 3})
	want := []Coord{{1, 1}, {2, 1}, {3, 1}, {4, 1}, {4, 2}, {4, 3}}
	if len(path) != len(want) {
		t.Fatalf("path len = %d, want %d (%v)", len(path), len(want), path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("path[%d] = %v, want %v", i, path[i], want[i])
		}
	}
}

func TestRouteLengthMatchesHops(t *testing.T) {
	m := sccMesh()
	f := func(ax, ay, bx, by uint8) bool {
		a := Coord{int(ax) % m.W, int(ay) % m.H}
		b := Coord{int(bx) % m.W, int(by) % m.H}
		return len(m.Route(a, b)) == m.Hops(a, b)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferLatencyMonotonicInDistance(t *testing.T) {
	m := sccMesh()
	near := m.TransferLatency(Coord{0, 0}, Coord{1, 0}, 32)
	far := m.TransferLatency(Coord{0, 0}, Coord{5, 3}, 32)
	if far <= near {
		t.Errorf("far (%d) should exceed near (%d)", far, near)
	}
}

func TestTransferLatencyMonotonicInSize(t *testing.T) {
	m := sccMesh()
	a, b := Coord{0, 0}, Coord{3, 2}
	prev := sim.Cycles(0)
	for _, size := range []int{8, 32, 256, 4096} {
		l := m.TransferLatency(a, b, size)
		if l < prev {
			t.Errorf("latency for %dB (%d) < latency for smaller payload (%d)", size, l, prev)
		}
		prev = l
	}
}

func TestTransferLatencyOnChipClass(t *testing.T) {
	// The paper (§3) places on-chip communication latency at ~100 core
	// cycles; a cross-mesh 32 B transfer must stay in that class.
	m := sccMesh()
	l := m.TransferLatency(Coord{0, 0}, Coord{5, 3}, 32)
	if l < 20 || l > 200 {
		t.Errorf("cross-chip 32B latency = %d cycles, want within on-chip class [20,200]", l)
	}
}

func TestRoundTripLatency(t *testing.T) {
	m := sccMesh()
	a, b := Coord{0, 0}, Coord{2, 1}
	rt := m.RoundTripLatency(a, b, 8, 32)
	if want := m.TransferLatency(a, b, 8) + m.TransferLatency(b, a, 32); rt != want {
		t.Errorf("round trip = %d, want %d", rt, want)
	}
}

func TestMeshBoundsPanic(t *testing.T) {
	m := sccMesh()
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds coordinate did not panic")
		}
	}()
	m.Hops(Coord{0, 0}, Coord{6, 0})
}

func TestContains(t *testing.T) {
	m := sccMesh()
	if !m.Contains(Coord{5, 3}) {
		t.Error("corner should be contained")
	}
	if m.Contains(Coord{-1, 0}) || m.Contains(Coord{0, 4}) {
		t.Error("out-of-range coordinate reported as contained")
	}
}

func TestNewInvalidDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0,4) did not panic")
		}
	}()
	New(0, 4, DefaultParams())
}

func TestLinkSerializesTransfers(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink("sif", 10, 1.0) // 1 byte/cycle
	var done [2]sim.Cycles
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("xfer", func(p *sim.Proc) {
			l.Transfer(p, 100)
			done[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// First: 100 occupancy + 10 latency = 110. Second starts when channel
	// frees at 100, so 200 + 10 = 210.
	if done[0] != 110 {
		t.Errorf("first transfer done at %d, want 110", done[0])
	}
	if done[1] != 210 {
		t.Errorf("second transfer done at %d, want 210", done[1])
	}
}

func TestLinkOccupancyFractionalBandwidth(t *testing.T) {
	l := NewLink("slow", 0, 0.25) // 4 cycles per byte
	if occ := l.OccupancyFor(100); occ != 400 {
		t.Errorf("occupancy = %d, want 400", occ)
	}
	if occ := l.OccupancyFor(0); occ != 0 {
		t.Errorf("zero-byte occupancy = %d, want 0", occ)
	}
}

func TestLinkStats(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink("l", 5, 2.0)
	k.Spawn("a", func(p *sim.Proc) { l.Transfer(p, 64) })
	k.Spawn("b", func(p *sim.Proc) { l.Transfer(p, 64) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	s := l.Stats()
	if s.Transfers != 2 || s.BytesTotal != 128 {
		t.Errorf("stats = %+v, want 2 transfers / 128 bytes", s)
	}
	if s.WaitedCycles == 0 {
		t.Error("second transfer should have queued")
	}
}

func TestLinkEarliestCompletion(t *testing.T) {
	l := NewLink("l", 7, 1.0)
	if got := l.EarliestCompletion(100, 50); got != 157 {
		t.Errorf("EarliestCompletion = %d, want 157", got)
	}
}

// Property: transfer latency is additive-monotone: latency(a,c) <=
// latency via any intermediate forwarding (triangle inequality for XY
// metric distances on the mesh holds for hop counts).
func TestPropertyHopsTriangle(t *testing.T) {
	m := sccMesh()
	f := func(ax, ay, bx, by, cx, cy uint8) bool {
		a := Coord{int(ax) % m.W, int(ay) % m.H}
		b := Coord{int(bx) % m.W, int(by) % m.H}
		c := Coord{int(cx) % m.W, int(cy) % m.H}
		return m.Hops(a, c) <= m.Hops(a, b)+m.Hops(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
