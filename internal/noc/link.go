package noc

import (
	"fmt"
	"strconv"

	"vscc/internal/sim"
	"vscc/internal/trace"
)

// Link is a shared serial resource with a fixed per-transfer latency and a
// finite bandwidth — a latency-rate server. Concurrent transfers are
// serialized in arrival order, which deterministically models contention
// on a single physical channel such as the SCC system-interface port at
// tile (3,0) or a PCIe lane group.
type Link struct {
	name string
	// Latency is the fixed head latency of any transfer.
	Latency sim.Cycles
	// CyclesPerByte expresses bandwidth as cycles of channel occupancy per
	// payload byte (scaled by 1024 for sub-cycle precision).
	cyclesPerByteX1024 uint64
	// nextFree is the simulated time at which the channel becomes idle.
	nextFree sim.Cycles

	// Stats.
	bytesTotal    uint64
	transfers     uint64
	busyCycles    sim.Cycles
	waitedCycles  sim.Cycles
	maxQueueDelay sim.Cycles

	// Observability (nil sink = disabled, zero overhead).
	sink         *trace.Sink
	track        trace.Track
	bytesCounter string
	queueHist    string
}

// NewLink creates a link. bytesPerCycle expresses bandwidth in payload
// bytes per core cycle (may be fractional, e.g. 0.25).
func NewLink(name string, latency sim.Cycles, bytesPerCycle float64) *Link {
	if bytesPerCycle <= 0 {
		panic(fmt.Sprintf("noc: link %q with non-positive bandwidth", name))
	}
	return &Link{
		name:               name,
		Latency:            latency,
		cyclesPerByteX1024: uint64(1024/bytesPerCycle + 0.5),
	}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Instrument attaches an observability sink: every subsequent transfer
// records a channel-occupancy span on the link's track, a cumulative byte
// counter, and (when the channel was busy) a queueing-delay histogram
// sample. A nil sink detaches.
func (l *Link) Instrument(s *trace.Sink) {
	l.sink = s
	l.track = s.Track("noc", l.name)
	if s.Enabled() {
		l.bytesCounter = "noc." + l.name + ".bytes"
		l.queueHist = "noc." + l.name + ".queue_cycles"
	}
}

// record captures one reserved transfer on the attached sink. It guards
// itself so the disabled path allocates nothing (vsccvet: tracealloc).
func (l *Link) record(bytes int, start, occ, queued sim.Cycles) {
	if !l.sink.Enabled() {
		return
	}
	l.sink.Span(l.track, "xfer "+strconv.Itoa(bytes)+"B", start, start+occ)
	l.sink.Add(l.bytesCounter, int64(bytes))
	if queued > 0 {
		l.sink.Observe(l.queueHist, float64(queued))
	}
}

// OccupancyFor returns the channel occupancy time for a payload.
func (l *Link) OccupancyFor(bytes int) sim.Cycles {
	if bytes < 0 {
		bytes = 0
	}
	return sim.Cycles((uint64(bytes)*l.cyclesPerByteX1024 + 1023) / 1024)
}

// Transfer moves bytes across the link from process context, blocking the
// caller for queueing delay + latency + serialization. It returns the
// cycles actually spent.
func (l *Link) Transfer(p *sim.Proc, bytes int) sim.Cycles {
	now := p.Now()
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	occ := l.OccupancyFor(bytes)
	l.nextFree = start + occ
	done := l.nextFree + l.Latency
	queued := start - now
	l.transfers++
	l.bytesTotal += uint64(bytes)
	l.busyCycles += occ
	l.waitedCycles += queued
	if queued > l.maxQueueDelay {
		l.maxQueueDelay = queued
	}
	l.record(bytes, start, occ, queued)
	//lint:ignore simapi done = start + occupancy + latency with start >= now
	p.Delay(done - now)
	return done - now
}

// TransferAsync reserves channel occupancy like Transfer but overlaps the
// propagation latency: the caller is delayed only until its bytes are on
// the wire, and onDelivered fires (as a kernel callback) when they arrive
// at the far end. Back-to-back TransferAsync calls therefore pipeline —
// the behaviour of posted writes and streaming DMA engines. Deliveries on
// one link never reorder.
func (l *Link) TransferAsync(p *sim.Proc, bytes int, onDelivered func()) {
	now := p.Now()
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	occ := l.OccupancyFor(bytes)
	l.nextFree = start + occ
	deliveredAt := l.nextFree + l.Latency
	queued := start - now
	l.transfers++
	l.bytesTotal += uint64(bytes)
	l.busyCycles += occ
	l.waitedCycles += queued
	if queued > l.maxQueueDelay {
		l.maxQueueDelay = queued
	}
	l.record(bytes, start, occ, queued)
	if onDelivered != nil {
		p.Kernel().At(deliveredAt, onDelivered)
	}
	//lint:ignore simapi nextFree = start + occupancy with start >= now
	p.Delay(l.nextFree - now)
}

// EarliestCompletion returns when a transfer submitted now would complete,
// without reserving the channel — used by lookahead heuristics.
func (l *Link) EarliestCompletion(now sim.Cycles, bytes int) sim.Cycles {
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	return start + l.OccupancyFor(bytes) + l.Latency
}

// LinkStats is a snapshot of link usage counters.
type LinkStats struct {
	Transfers     uint64
	BytesTotal    uint64
	BusyCycles    sim.Cycles
	WaitedCycles  sim.Cycles
	MaxQueueDelay sim.Cycles
}

// Stats returns usage counters accumulated since creation.
func (l *Link) Stats() LinkStats {
	return LinkStats{
		Transfers:     l.transfers,
		BytesTotal:    l.bytesTotal,
		BusyCycles:    l.busyCycles,
		WaitedCycles:  l.waitedCycles,
		MaxQueueDelay: l.maxQueueDelay,
	}
}
