package host

import (
	"fmt"

	"vscc/internal/fault"
	"vscc/internal/mem"
	"vscc/internal/pcie"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/trace"
)

// Params tunes the communication task beyond the fabric timing.
type Params struct {
	// SIFHitCycles is a read served by the device-side SIF response
	// buffer (on-chip class latency).
	SIFHitCycles sim.Cycles
	// SIFBufferLines is the SIF response-buffer capacity.
	SIFBufferLines int
	// StreamHeaderBytes is the per-line packet header of streamed read
	// responses; bulk DMA bursts amortize headers, streamed lines pay it
	// per line — the bandwidth gap between the vDMA and cached-read paths.
	StreamHeaderBytes int
	// DMABurstBytes is the burst size of host DMA transfers (prefetch,
	// vDMA, WCB flush).
	DMABurstBytes int
	// WCBFlushBytes is the dirty-byte threshold that triggers a
	// write-combining flush.
	WCBFlushBytes int
	// ReqBytes/RespBytes/AckBytes are the off-chip packet sizes for
	// read requests, line responses and write acknowledges.
	ReqBytes, RespBytes, AckBytes int
	// WriteHeaderBytes is the per-packet header of a posted line write.
	WriteHeaderBytes int
	// ReadOverheadNum/Den model the PCIe read-direction penalty: host
	// DMA reads from SCC memory through the SIF achieve only ~1/3 of the
	// write bandwidth (non-posted transactions, split completions; the
	// sccKit host<->device copy measurements show the same asymmetry).
	ReadOverheadNum, ReadOverheadDen int
}

// readBytes inflates a device-read burst by the read-direction penalty.
func (p Params) readBytes(n int) int {
	return n*p.ReadOverheadNum/p.ReadOverheadDen + p.StreamHeaderBytes
}

// DefaultParams returns the calibrated task configuration.
func DefaultParams() Params {
	return Params{
		SIFHitCycles:      150,
		SIFBufferLines:    512,
		StreamHeaderBytes: 8,
		DMABurstBytes:     1024,
		WCBFlushBytes:     1024,
		ReqBytes:          16,
		RespBytes:         48,
		AckBytes:          8,
		WriteHeaderBytes:  14,
		ReadOverheadNum:   13,
		ReadOverheadDen:   5,
	}
}

// Stats counts communication-task activity.
type Stats struct {
	SIFHits        uint64
	CachedReads    uint64
	ForwardedReads uint64
	PostedWrites   uint64
	SyncWrites     uint64
	StreamedLines  uint64
	Prefetches     uint64
	Invalidates    uint64
	VDMACopies     uint64
	WCBFlushes     uint64
	FlagFences     uint64
	// RejectedCommands counts register commands that failed validation
	// (corrupted or garbage programming); HostRestarts counts watchdog
	// recoveries of the communication task.
	RejectedCommands uint64
	HostRestarts     uint64
}

// Task is the vSCC communication task: the host-resident engine that
// owns the software cache, write-combining buffers, vDMA controller and
// register files, and implements the devices' off-chip port.
type Task struct {
	Kernel *sim.Kernel
	Params Params
	Fabric *pcie.Fabric
	Chips  []*scc.Chip

	regions   *regionTable
	regs      map[int]*registerFile
	caches    map[*Region]*cacheEntry
	cacheList []*cacheEntry // deterministic iteration order
	wcbs      map[*Region]*hostWCB
	wcbList   []*hostWCB
	sifBufs   []*sifBuffer
	streams   map[streamKey]*stream
	streamLst []*stream

	// deliverQ is the per-device outbound delivery queue, drained in FIFO
	// order by one forwarder daemon per device — the paper's
	// "multithreaded daemon" with one thread per device (§3.2). FIFO
	// through a single queue and link preserves data-before-flag order
	// from any one source.
	deliverQ []*sim.Queue[deliverItem]
	// wcbPending counts in-flight write-combining flush bursts per
	// target device; flag deliveries fence on it.
	wcbPending []int
	wcbCond    []*sim.Cond

	// vdmaChans orders vDMA transactions per requesting core: data
	// bursts of consecutive transactions may pipeline, but notify and
	// completion flags are issued strictly in programming order, as on a
	// real per-channel DMA engine.
	vdmaChans map[[2]int]*vdmaChannel

	// coreGen holds each core's retirement generation (RetireCore):
	// deferred writes capture their source core's generation when issued
	// and drop on landing if the core was retired in between.
	coreGen map[[2]int]uint32

	// qos is the multi-tenant state (qos.go); nil — the default — keeps
	// every shared path byte-identical to the single-tenant task.
	qos *qosState

	stats Stats

	// Fault injection (nil = fault-free; every fault path short-circuits).
	faults *fault.Injector
	rec    fault.Recovery
	// gate models the communication task's liveness: stall windows close
	// it temporarily; a crash closes it until the watchdog restart. Open
	// the whole run when no faults are armed.
	gate *sim.Gate
	// pendingCmds queues register commands triggered while the gate is
	// closed: the register write itself lands in host RAM regardless, but
	// nobody acts on the doorbell. A stall drains the queue on resume; a
	// crash loses it (the device-side retry ladder re-programs).
	pendingCmds []BankCommand
	// devGates model per-device reachability for the task's synchronous
	// paths: the membership manager closes a gate while a device is down,
	// so blocking reads and transparent forwards toward it park until the
	// rejoin instead of touching wiped memory. Open the whole run when no
	// device faults are armed (zero cost — an open gate never parks).
	devGates []*sim.Gate

	// Observability (nil sink = disabled, zero overhead). fwdTracks
	// carries the per-device forwarder-daemon occupancy tracks; wcbGauges
	// the per-device in-flight flush-burst gauge names; vdmaInflight the
	// current vDMA queue occupancy.
	sink         *trace.Sink
	fwdTracks    []trace.Track
	wcbGauges    []string
	vdmaInflight int64
}

// Statically assert the port contract.
var _ scc.OffChipPort = (*Task)(nil)

// New builds the communication task for the given devices and wires
// itself in as every chip's off-chip port.
func New(k *sim.Kernel, fabric *pcie.Fabric, chips []*scc.Chip, params Params) (*Task, error) {
	if fabric.NumDevices() < len(chips) {
		return nil, fmt.Errorf("host: fabric has %d links for %d devices", fabric.NumDevices(), len(chips))
	}
	t := &Task{
		Kernel:    k,
		Params:    params,
		Fabric:    fabric,
		Chips:     chips,
		regions:   newRegionTable(),
		regs:      make(map[int]*registerFile),
		caches:    make(map[*Region]*cacheEntry),
		wcbs:      make(map[*Region]*hostWCB),
		streams:   make(map[streamKey]*stream),
		vdmaChans: make(map[[2]int]*vdmaChannel),
		coreGen:   make(map[[2]int]uint32),
		rec:       fault.DefaultRecovery(),
		gate:      sim.NewGate(k, "commtask.alive"),
	}
	t.gate.Open()
	for d := range chips {
		bufLines := params.SIFBufferLines
		if bufLines <= 0 {
			bufLines = 1 // placeholder; streaming is disabled
		}
		t.sifBufs = append(t.sifBufs, newSIFBuffer(k, d, bufLines))
		g := sim.NewGate(k, fmt.Sprintf("dev%d.reachable", d))
		g.Open()
		t.devGates = append(t.devGates, g)
		t.wcbPending = append(t.wcbPending, 0)
		t.wcbCond = append(t.wcbCond, sim.NewCond(k, fmt.Sprintf("wcbpending.d%d", d)))
		t.deliverQ = append(t.deliverQ, sim.NewQueue[deliverItem](k, fmt.Sprintf("deliverq.d%d", d)))
		chips[d].OffChip = t
		d := d
		k.SpawnDaemon(fmt.Sprintf("commtask.d%d", d), func(p *sim.Proc) { t.runForwarder(p, d) })
	}
	return t, nil
}

// Register adds a region to the task's classification table (the
// boot-time registration of §3.1). Regions must be 32-byte aligned.
func (t *Task) Register(rg *Region) error {
	if rg.Off%mem.LineSize != 0 || rg.Len%mem.LineSize != 0 {
		return fmt.Errorf("host: region [%d,%d) not line aligned", rg.Off, rg.Off+rg.Len)
	}
	if rg.Dev < 0 || rg.Dev >= len(t.Chips) {
		return fmt.Errorf("host: region on unknown device %d", rg.Dev)
	}
	if err := t.regions.add(rg); err != nil {
		return err
	}
	switch rg.Mode {
	case ModeCached:
		e := newCacheEntry(t.Kernel, rg)
		e.track = t.faults != nil
		// Under multi-tenancy, a cached region owned by a bound core
		// counts against that tenant's cache partition.
		if q := t.tenantByCore(rg.Dev, rg.Owner); q != nil && q.cacheQuota > 0 {
			e.acct = q
		}
		t.caches[rg] = e
		t.cacheList = append(t.cacheList, e)
	case ModeWriteCombining:
		w := newHostWCB(t.Kernel, rg)
		t.wcbs[rg] = w
		t.wcbList = append(t.wcbList, w)
	}
	return nil
}

// Stats returns a snapshot of the activity counters.
func (t *Task) Stats() Stats { return t.stats }

// SetFaults arms fault injection on the communication task: software
// cache lines gain integrity checksums, small host->LMB writes become
// write-verified, and the injector's stall windows and crash points are
// scheduled against the task's liveness gate.
func (t *Task) SetFaults(inj *fault.Injector) {
	if inj == nil {
		return
	}
	t.faults = inj
	t.rec = inj.Recovery()
	for _, e := range t.cacheList {
		e.track = true
	}
	cfg := inj.Config()
	for _, w := range cfg.StallAt {
		w := w
		t.Kernel.At(w.At, func() {
			if !t.gate.IsOpen() {
				return // already down (overlapping window or crash)
			}
			inj.RecordInjection("stall", "host", -1)
			t.gate.Close()
			t.Kernel.After(w.For, func() { t.reopen("stall-resume") })
		})
	}
	for _, at := range cfg.CrashAt {
		t.Kernel.At(at, func() {
			if !t.gate.IsOpen() {
				return
			}
			inj.RecordInjection("crash", "host", -1)
			t.gate.Close()
			t.Kernel.After(t.rec.WatchdogCycles, t.restart)
		})
	}
}

// reopen resumes the task after a stall: deferred doorbells execute
// first (inline invalidates land before any blocked reader resumes),
// then the gate opens.
func (t *Task) reopen(kind string) {
	cmds := t.pendingCmds
	t.pendingCmds = nil
	for _, cmd := range cmds {
		t.execute(cmd)
	}
	t.faults.RecordRecovery(kind, "host", -1)
	t.gate.Open()
}

// restart is the watchdog recovery path: the communication task comes
// back up with its volatile state gone — software caches, SIF response
// buffers, streams, register files and deferred doorbells are reset.
// The delivery queues survive (they are journaled in host RAM and
// replayed), and in-flight DMA descriptors complete on the engine.
func (t *Task) restart() {
	for _, cmd := range t.pendingCmds {
		t.faults.RecordInjection("mmio-lost", "host.mmio", cmd.SrcDev)
	}
	t.pendingCmds = nil
	for _, e := range t.cacheList {
		e.invalidate(e.rg.Off, e.rg.Len)
		e.hotEnd = 0
	}
	for _, sb := range t.sifBufs {
		sb.reset()
	}
	for _, st := range t.streamLst {
		st.active = false
	}
	t.regs = make(map[int]*registerFile)
	t.stats.HostRestarts++
	t.faults.RecordRecovery("watchdog-restart", "host", -1)
	t.gate.Open()
}

// DeviceDown marks a device unreachable: the membership manager calls
// it when the device leaves the drain window. Synchronous host paths
// toward the device park on its gate; posted traffic is already held in
// the PCIe journals by the framing layer.
func (t *Task) DeviceDown(d int) { t.devGates[d].Close() }

// DeviceUp reopens a device's gate after its rejoin.
func (t *Task) DeviceUp(d int) { t.devGates[d].Open() }

// RetireCore invalidates every in-flight write sourced from a core:
// posted deliveries, write-combining flushes and vDMA copies (including
// their notify/completion flags) capture the source core's generation
// when issued and drop silently on landing once it moved. The scheduler
// retires cores when it tears a dead session down for requeue —
// otherwise writes the dead ranks (or the rejoin replay of their
// journaled frames) left in flight would land on the successor
// session's reused MPB bytes and desynchronize its flag protocols.
func (t *Task) RetireCore(dev, core int) { t.coreGen[[2]int{dev, core}]++ }

// coreEpoch reads a core's current retirement generation.
func (t *Task) coreEpoch(dev, core int) uint32 { return t.coreGen[[2]int{dev, core}] }

// coreLive reports whether a write issued at generation g may land.
func (t *Task) coreLive(dev, core int, g uint32) bool { return t.coreGen[[2]int{dev, core}] == g }

// devWait parks p while device d is unreachable.
func (t *Task) devWait(p *sim.Proc, d int) { t.devGates[d].Wait(p) }

// forwardWait guards a synchronous forward running on the requesting
// core's proc against an unreachable target device. With transparent
// retry (devretry=1) it parks until the rejoin, like devWait. Under
// fail-fast recovery the strand is a device loss the requester must
// handle NOW — the rank-side protocol ladders never see it, because the
// forward blocks below them — so it panics the requesting proc with
// fault.ErrDeviceLost. A requester's own device is never failed fast
// (its cores freeze at the chip barrier instead).
func (t *Task) forwardWait(p *sim.Proc, srcDev, srcCore, dev int) {
	if t.faults != nil && !t.rec.DeviceRetry && dev != srcDev && !t.devGates[dev].IsOpen() {
		panic(fmt.Errorf("host: forward from device %d core %d: device %d lost at cycle %d: %w",
			srcDev, srcCore, dev, t.Kernel.Now(), fault.ErrDeviceLost))
	}
	t.devGates[dev].Wait(p)
}

// cacheClean verifies the checksum of a cached line before it is served.
// A mismatch means the line was corrupted in host memory: drop it (the
// reader falls back to a path that refetches correct data) and count the
// recovery.
func (t *Task) cacheClean(e *cacheEntry, off int) bool {
	if e.lineClean(off) {
		return true
	}
	e.invalidate(off, mem.LineSize)
	t.faults.RecordRecovery("cache-checksum", "host.cache", e.rg.Dev)
	return false
}

// hostWrite lands bytes in a device LMB. With faults armed, flag-sized
// writes are read back and re-issued until they stick — the recovery for
// lost remote MPB flag writes, which the §3.1 flag protocol otherwise
// has no way to detect.
func (t *Task) hostWrite(dev, tile, off int, data []byte) {
	chip := t.Chips[dev]
	chip.HostWriteLMB(tile, off, data)
	if t.faults == nil || t.rec.VerifyRetries < 0 || len(data) > 4 {
		return
	}
	check := make([]byte, len(data))
	for a := 0; ; a++ {
		chip.HostReadLMB(tile, off, check)
		if string(check) == string(data) {
			if a > 0 {
				t.faults.RecordRecovery("flag-rewrite", "scc.flag", dev)
			}
			return
		}
		if a >= t.rec.VerifyRetries {
			attempts := a
			t.Kernel.Spawn("host.flag-verify-fail", func(p *sim.Proc) {
				panic(fmt.Sprintf("host: flag write dev %d tile %d off %d failed after %d verify attempts", dev, tile, off, attempts))
			})
			return
		}
		chip.HostWriteLMB(tile, off, data)
	}
}

// Instrument attaches an observability sink: the communication task then
// records software-cache hits and misses, SIF packets, PCIe round trips,
// WCB flush sizes, vDMA queue occupancy, and per-device forwarder-thread
// occupancy spans. Passing a nil sink disables recording.
func (t *Task) Instrument(s *trace.Sink) {
	t.fwdTracks = t.fwdTracks[:0]
	t.wcbGauges = t.wcbGauges[:0]
	if !s.Enabled() {
		t.sink = nil
		return
	}
	t.sink = s
	for d := range t.Chips {
		t.fwdTracks = append(t.fwdTracks, s.Track("commtask", fmt.Sprintf("d%d", d)))
		t.wcbGauges = append(t.wcbGauges, fmt.Sprintf("host.wcb_pending.d%d", d))
	}
}

// meshToSIF charges the on-chip trip from a core to the system
// interface tile.
func (t *Task) meshToSIF(p *sim.Proc, srcDev, srcCore, bytes int) {
	chip := t.Chips[srcDev]
	t.sink.Add("pcie.sif_packets", 1)
	p.Delay(chip.Mesh.TransferLatency(scc.CoreCoord(srcCore), scc.SIFCoord, bytes))
}

// --- reads ------------------------------------------------------------

// ReadLine implements scc.OffChipPort.
func (t *Task) ReadLine(p *sim.Proc, srcDev, srcCore, dev, tile, off int, buf []byte) {
	t.meshToSIF(p, srcDev, srcCore, t.Params.ReqBytes)
	key := lineKey(dev, tile, off)
	sb := t.sifBufs[srcDev]
	if data, ok := sb.take(key); ok {
		p.Delay(t.Params.SIFHitCycles)
		copy(buf, data)
		t.stats.SIFHits++
		t.sink.Add("host.sif_hit", 1)
		return
	}
	rg := t.regions.find(dev, tile, off)
	// A stream racing toward this line: wait for it at the SIF instead of
	// issuing a redundant slow-path read.
	if rg != nil {
		for {
			st := t.streams[streamKey{readerDev: srcDev, rg: rg}]
			if st == nil || !st.active || off < st.nextOff {
				break
			}
			e := t.caches[rg]
			if e == nil || off >= rg.Off+e.hotEnd {
				break
			}
			sb.cond.Wait(p)
			if data, ok := sb.take(key); ok {
				p.Delay(t.Params.SIFHitCycles)
				copy(buf, data)
				t.stats.SIFHits++
				t.sink.Add("host.sif_hit", 1)
				return
			}
		}
	}
	// Slow path: cross to the host. The tenant pays for the request and
	// its response before touching the shared link.
	t.chargeBW(p, srcDev, srcCore, t.Params.ReqBytes+t.Params.RespBytes)
	t.devWait(p, srcDev)
	link := t.Fabric.Link(srcDev)
	link.D2H.Transfer(p, t.Params.ReqBytes)
	p.Delay(t.Fabric.Params.HostOpCycles)
	t.gate.Wait(p)
	if rg != nil && rg.Mode == ModeCached {
		e := t.caches[rg]
		for !e.lineValid(off) && e.pending > 0 {
			e.cond.Wait(p)
		}
		if e.lineValid(off) && t.cacheClean(e, off) {
			rel := off - rg.Off
			copy(buf, e.data[rel:rel+mem.LineSize])
			t.startStream(srcDev, rg, off+mem.LineSize)
			link.H2D.Transfer(p, t.Params.RespBytes)
			t.stats.CachedReads++
			t.sink.Add("host.cache_hit", 1)
			t.sink.Add("pcie.round_trips", 1)
			return
		}
		t.sink.Add("host.cache_miss", 1)
	}
	// Transparent forward to the owning device; an unreachable owner
	// parks the read until its rejoin restores the exact same bytes —
	// or, under fail-fast recovery, strands the requester with a
	// deterministic device-loss error.
	t.forwardWait(p, srcDev, srcCore, dev)
	tl := t.Fabric.Link(dev)
	tl.H2D.Transfer(p, t.Params.ReqBytes)
	var line [mem.LineSize]byte
	t.Chips[dev].HostReadLMB(tile, off, line[:])
	tl.D2H.Transfer(p, t.Params.RespBytes)
	p.Delay(t.Fabric.Params.HostOpCycles)
	link.H2D.Transfer(p, t.Params.RespBytes)
	copy(buf, line[:])
	t.stats.ForwardedReads++
	t.sink.Add("host.forwarded_read", 1)
	t.sink.Add("pcie.round_trips", 2)
}

// startStream begins (or leaves running) a prefetch stream into a
// reader's SIF buffer. A SIFBufferLines of zero disables streaming
// entirely (every read takes the host round trip) — the ablation knob
// for the prefetch-to-device design choice.
func (t *Task) startStream(readerDev int, rg *Region, fromOff int) {
	if t.Params.SIFBufferLines <= 0 {
		return
	}
	key := streamKey{readerDev: readerDev, rg: rg}
	if st := t.streams[key]; st != nil && st.active {
		return
	}
	e := t.caches[rg]
	if e == nil || fromOff >= rg.Off+e.hotEnd {
		return
	}
	st := &stream{readerDev: readerDev, rg: rg, nextOff: fromOff, active: true}
	t.streams[key] = st
	t.streamLst = append(t.streamLst, st)
	t.Kernel.Spawn(fmt.Sprintf("stream.d%d->d%d", rg.Dev, readerDev), func(sp *sim.Proc) {
		t.runStream(sp, st)
	})
}

func (t *Task) runStream(sp *sim.Proc, st *stream) {
	e := t.caches[st.rg]
	sb := t.sifBufs[st.readerDev]
	for st.active && st.nextOff < st.rg.Off+e.hotEnd {
		t.gate.Wait(sp)
		if !st.active {
			break
		}
		if !e.lineValid(st.nextOff) {
			if e.pending > 0 {
				e.cond.Wait(sp)
				continue
			}
			break
		}
		if !t.cacheClean(e, st.nextOff) {
			continue // line dropped; the loop re-evaluates validity
		}
		off := st.nextOff
		st.nextOff += mem.LineSize
		rel := off - st.rg.Off
		data := make([]byte, mem.LineSize)
		copy(data, e.data[rel:])
		key := lineKey(st.rg.Dev, st.rg.Tile, off)
		// Capture the region's invalidation generation at post time: a
		// line that is still in flight (e.g. delayed by an injected SIF
		// fault) when the owner's next invalidate lands must not reappear
		// in the buffer, or the reader would be served the previous
		// message's bytes.
		gen := sb.genOf(st.rg.Dev, st.rg.Tile)
		t.chargeBWRegion(sp, st.rg, mem.LineSize+t.Params.StreamHeaderBytes)
		t.Fabric.PostH2D(sp, st.readerDev, mem.LineSize+t.Params.StreamHeaderBytes, func() {
			if !sb.insertIfFresh(gen, st.rg.Dev, st.rg.Tile, key, data) {
				t.sink.Add("host.stale_line_discard", 1)
			}
		})
		t.stats.StreamedLines++
		t.sink.Add("host.streamed_lines", 1)
	}
	st.active = false
	sb.cond.Broadcast()
}

// --- writes -----------------------------------------------------------

// WriteLine implements scc.OffChipPort.
func (t *Task) WriteLine(p *sim.Proc, srcDev, srcCore, dev, tile, off int, data []byte, mask uint32) {
	t.meshToSIF(p, srcDev, srcCore, mem.LineSize)
	t.chargeBW(p, srcDev, srcCore, mem.LineSize+t.Params.WriteHeaderBytes)
	rg := t.regions.find(dev, tile, off)
	link := t.Fabric.Link(srcDev)
	g := t.coreEpoch(srcDev, srcCore)
	// Write-combining host window: the new non-transparent fast path —
	// the write targets host memory, not another device, so the SIF
	// posts it safely; the core is throttled only by link backpressure
	// (§2.3/§3.3).
	if rg != nil && rg.Mode == ModeWriteCombining && rg.Kind == KindData {
		d := snapshot(data)
		w := t.wcbs[rg]
		t.Fabric.PostD2H(p, srcDev, mem.LineSize+t.Params.WriteHeaderBytes, func() {
			if !t.coreLive(srcDev, srcCore, g) {
				return
			}
			w.absorb(off, d, mask)
			t.maybeFlushWCB(w, false)
		})
		t.stats.PostedWrites++
		t.sink.Add("host.wcb_write", 1)
		return
	}
	isFlag := rg != nil && rg.Kind == KindFlag
	// Flag writes — and writes into registered posted-mode buffers — are
	// "directly acknowledged immediately" under the new protocol (§3.1):
	// the communication task owns delivery and the data-before-flag
	// fence (the per-device FIFO), so the core posts and continues.
	posted := isFlag || (rg != nil && rg.Mode == ModePosted)
	if posted && t.Fabric.Ack != pcie.AckRemote {
		d := snapshot(data)
		t.Fabric.PostD2H(p, srcDev, mem.LineSize+t.Params.WriteHeaderBytes, func() {
			t.enqueueDeliver(srcDev, srcCore, g, dev, tile, off, d, mask, true)
		})
		t.stats.PostedWrites++
		t.sink.Add("host.posted_write", 1)
		return
	}
	switch t.Fabric.Ack {
	case pcie.AckFPGA:
		// Hardware-accelerated upper bound: the FPGA acks immediately;
		// delivery proceeds asynchronously through the host. The core
		// sees only SIF backpressure.
		d := snapshot(data)
		t.Fabric.PostD2H(p, srcDev, mem.LineSize+t.Params.WriteHeaderBytes, func() {
			t.enqueueDeliver(srcDev, srcCore, g, dev, tile, off, d, mask, isFlag)
		})
		t.stats.PostedWrites++
		t.sink.Add("host.posted_write", 1)
	case pcie.AckHost:
		// The communication task acknowledges data writes on receipt;
		// delivery to the target device continues asynchronously.
		t.devWait(p, srcDev)
		link.D2H.Transfer(p, mem.LineSize)
		p.Delay(t.Fabric.Params.HostOpCycles)
		t.gate.Wait(p)
		t.enqueueDeliver(srcDev, srcCore, g, dev, tile, off, snapshot(data), mask, isFlag)
		link.H2D.Transfer(p, t.Params.AckBytes)
		t.stats.SyncWrites++
		t.sink.Add("host.sync_write", 1)
		t.sink.Add("pcie.round_trips", 1)
	case pcie.AckRemote:
		// Transparent routing: the acknowledge comes back from the
		// remote device — the previous prototype's two-round-trip path.
		t.devWait(p, srcDev)
		link.D2H.Transfer(p, mem.LineSize)
		p.Delay(t.Fabric.Params.HostOpCycles)
		t.gate.Wait(p)
		if isFlag {
			t.fence(p, dev)
		}
		t.forwardWait(p, srcDev, srcCore, dev)
		tl := t.Fabric.Link(dev)
		tl.H2D.Transfer(p, mem.LineSize)
		t.deliver(dev, tile, off, data, mask)
		tl.D2H.Transfer(p, t.Params.AckBytes)
		p.Delay(t.Fabric.Params.HostOpCycles)
		link.H2D.Transfer(p, t.Params.AckBytes)
		t.stats.SyncWrites++
		t.sink.Add("host.sync_write", 1)
		t.sink.Add("pcie.round_trips", 2)
	}
}

// deliverItem is one queued outbound write toward a device. It carries
// its source core and that core's retirement generation at issue time;
// the forwarder drops the landing when the generation moved.
type deliverItem struct {
	tile, off int
	data      []byte
	mask      uint32
	isFlag    bool
	srcDev    int
	srcCore   int
	gen       uint32
}

// enqueueDeliver hands a write to the device's forwarder daemon. Under
// multi-tenancy it lands in the destination tenant's DRR class instead
// of the shared FIFO.
func (t *Task) enqueueDeliver(srcDev, srcCore int, g uint32, dev, tile, off int, data []byte, mask uint32, isFlag bool) {
	it := deliverItem{tile: tile, off: off, data: data, mask: mask, isFlag: isFlag,
		srcDev: srcDev, srcCore: srcCore, gen: g}
	if t.qos != nil {
		t.qos.drr[dev].enqueue(t.tenantAt(dev, tile, off), it)
		return
	}
	t.deliverQ[dev].Push(it)
}

// runForwarder is the per-device daemon thread: it drains the delivery
// queue in FIFO order onto the device's host-to-device link. Flag items
// first force write-combining buffers targeting the device to flush and
// wait for those bursts to land, so a flag can never overtake combined
// data (§3.1).
func (t *Task) runForwarder(p *sim.Proc, dev int) {
	q := t.deliverQ[dev]
	for {
		var item deliverItem
		if t.qos != nil {
			// Multi-tenant: deficit-round-robin across tenant classes
			// (EnableQoS runs before the kernel, so the discipline is
			// fixed by the time the daemon first dispatches).
			item = t.qos.drr[dev].pop(p)
		} else {
			item = q.Pop(p)
		}
		t.gate.Wait(p)
		t0 := p.Now()
		if item.isFlag {
			t.fence(p, dev)
		}
		it := item
		t.Fabric.PostH2D(p, dev, mem.LineSize, func() {
			// A write whose source core was retired mid-flight (its
			// session torn down for requeue) must not land on the
			// successor session's reused MPB bytes.
			if !t.coreLive(it.srcDev, it.srcCore, it.gen) {
				t.sink.Add("host.stale_write_drop", 1)
				return
			}
			t.deliver(dev, it.tile, it.off, it.data, it.mask)
		})
		// Per-thread occupancy: how long this daemon thread was busy with
		// the item (including any flag fence), the §3.2 tuning signal.
		if t.sink != nil {
			name := "deliver"
			if item.isFlag {
				name = "deliver-flag"
			}
			t.sink.Span(t.fwdTracks[dev], name, t0, p.Now())
		}
	}
}

// deliver lands a masked line write in a device's LMB and keeps host
// copies consistent.
func (t *Task) deliver(dev, tile, off int, data []byte, mask uint32) {
	i := 0
	for i < mem.LineSize && i < len(data) {
		if mask&(1<<uint(i)) == 0 {
			i++
			continue
		}
		j := i
		for j < mem.LineSize && j < len(data) && mask&(1<<uint(j)) != 0 {
			j++
		}
		t.hostWrite(dev, tile, off+i, data[i:j])
		i = j
	}
	t.invalidateHostCopies(dev, tile, off, mem.LineSize)
}

// invalidateHostCopies drops cache and SIF copies overlapping a write.
func (t *Task) invalidateHostCopies(dev, tile, off, n int) {
	for _, e := range t.cacheList {
		rg := e.rg
		if rg.Dev == dev && rg.Tile == tile && off < rg.Off+rg.Len && rg.Off < off+n {
			lo := off
			if lo < rg.Off {
				lo = rg.Off
			}
			hi := off + n
			if hi > rg.Off+rg.Len {
				hi = rg.Off + rg.Len
			}
			e.invalidate(lo, hi-lo)
			t.killStreams(rg)
		}
	}
	for _, sb := range t.sifBufs {
		sb.invalidateRange(dev, tile, off, n)
	}
}

// fence blocks until all write-combining bursts toward dev have landed.
func (t *Task) fence(p *sim.Proc, dev int) {
	t.flushWCBsTo(dev)
	for t.wcbPending[dev] > 0 {
		t.wcbCond[dev].Wait(p)
	}
	t.stats.FlagFences++
	t.sink.Add("host.flag_fence", 1)
}

// --- write combining ----------------------------------------------------

// flushWCBsTo force-flushes every write-combining buffer targeting dev.
func (t *Task) flushWCBsTo(dev int) {
	for _, w := range t.wcbList {
		if w.rg.Dev == dev {
			t.maybeFlushWCB(w, true)
		}
	}
}

// maybeFlushWCB flushes a host write-combining buffer when it crossed
// the burst threshold (or unconditionally when forced).
func (t *Task) maybeFlushWCB(w *hostWCB, force bool) {
	if w.dirtyBytes == 0 {
		return
	}
	if !force && w.dirtyBytes < t.Params.WCBFlushBytes {
		return
	}
	spans := w.takeDirtySpans()
	if len(spans) == 0 {
		return
	}
	dev := w.rg.Dev
	t.stats.WCBFlushes++
	// Count the bursts against the flag fence *now*, so a flag delivery
	// processed in the same instant cannot slip past the data.
	bursts := 0
	flushBytes := 0
	for _, span := range spans {
		bursts += (len(span.data) + t.Params.DMABurstBytes - 1) / t.Params.DMABurstBytes
		flushBytes += len(span.data)
	}
	t.wcbPending[dev] += bursts
	if t.sink != nil {
		t.sink.Add("host.wcb_flush", 1)
		t.sink.Add("host.dma_bursts", int64(bursts))
		t.sink.Observe("host.wcb_flush_bytes", float64(flushBytes))
		t.sink.Gauge(t.wcbGauges[dev], int64(t.wcbPending[dev]))
	}
	// The landing guard keys on the region owner's retirement
	// generation: a flush racing the owner session's requeue teardown
	// must not write the reused payload bytes. The burst accounting
	// (wcbPending, fence broadcast) still runs for dropped bursts.
	g := t.coreEpoch(w.rg.Dev, w.rg.Owner)
	t.Kernel.Spawn(fmt.Sprintf("wcbflush.d%d", dev), func(fp *sim.Proc) {
		t.gate.Wait(fp)
		// Each flush programs one DMA descriptor on the host.
		fp.Delay(t.Fabric.Params.DMASetupCycles)
		for _, span := range spans {
			for o := 0; o < len(span.data); o += t.Params.DMABurstBytes {
				n := len(span.data) - o
				if n > t.Params.DMABurstBytes {
					n = t.Params.DMABurstBytes
				}
				off := span.off + o
				data := span.data[o : o+n]
				t.chargeBWRegion(fp, w.rg, n+t.Params.StreamHeaderBytes)
				t.Fabric.PostH2D(fp, dev, n+t.Params.StreamHeaderBytes, func() {
					if t.coreLive(w.rg.Dev, w.rg.Owner, g) {
						t.deliverBulk(dev, w.rg.Tile, off, data)
					} else {
						t.sink.Add("host.stale_write_drop", 1)
					}
					t.wcbPending[dev]--
					if t.sink != nil {
						t.sink.Gauge(t.wcbGauges[dev], int64(t.wcbPending[dev]))
					}
					t.wcbCond[dev].Broadcast()
				})
			}
		}
	})
}

// --- MMIO and the vDMA controller ---------------------------------------

// MMIOWriteLine implements scc.OffChipPort: a fused register write lands
// in the host register file and may trigger a command.
func (t *Task) MMIOWriteLine(p *sim.Proc, srcDev, srcCore, hostDev, off int, data []byte, mask uint32) {
	t.meshToSIF(p, srcDev, srcCore, mem.LineSize)
	t.chargeBW(p, srcDev, srcCore, mem.LineSize)
	p.Delay(t.Fabric.Params.SIFAckCycles)
	d := snapshot(data)
	g := t.coreEpoch(srcDev, srcCore)
	t.Fabric.PostD2H(p, srcDev, mem.LineSize, func() {
		t.Kernel.After(t.Fabric.Params.HostOpCycles, func() {
			if t.faults.CorruptMMIO(srcDev) {
				d[t.faults.Pick("host.mmio", srcDev, len(d))] ^= 0x20
			}
			rf := t.registerFile(hostDev)
			core := off / BankBytes
			cmd, trigger := rf.write(core, d, mask)
			if !trigger {
				return
			}
			cmd.SrcDev = srcDev
			cmd.SrcCore = srcCore
			cmd.srcGen = g
			if t.gate.IsOpen() {
				t.execute(cmd)
				return
			}
			t.faults.RecordInjection("mmio-deferred", "host.mmio", srcDev)
			t.pendingCmds = append(t.pendingCmds, cmd)
		})
	})
}

// MMIORead implements scc.OffChipPort: a blocking register read.
func (t *Task) MMIORead(p *sim.Proc, srcDev, srcCore, hostDev, off int, buf []byte) {
	t.meshToSIF(p, srcDev, srcCore, t.Params.ReqBytes)
	t.chargeBW(p, srcDev, srcCore, t.Params.ReqBytes+t.Params.RespBytes)
	t.devWait(p, srcDev)
	link := t.Fabric.Link(srcDev)
	link.D2H.Transfer(p, t.Params.ReqBytes)
	p.Delay(t.Fabric.Params.HostOpCycles)
	t.gate.Wait(p)
	bank := t.registerFile(hostDev).read(off / BankBytes)
	link.H2D.Transfer(p, t.Params.RespBytes)
	rel := off % BankBytes
	copy(buf, bank[rel:])
}

func (t *Task) registerFile(dev int) *registerFile {
	rf, ok := t.regs[dev]
	if !ok {
		rf = newRegisterFile()
		t.regs[dev] = rf
	}
	return rf
}

// execute dispatches a triggered register command after validation; a
// command whose fields fail the sanity check (corrupted programming) is
// rejected rather than executed, and the device-side protocol recovers
// by re-programming.
func (t *Task) execute(cmd BankCommand) {
	if err := cmd.validate(len(t.Chips)); err != nil {
		t.stats.RejectedCommands++
		t.faults.RecordRecovery("mmio-reject", "host.mmio", cmd.SrcDev)
		return
	}
	switch cmd.Cmd {
	case CmdCopy:
		// A copy whose requester was retired (its session torn down while
		// the MMIO frame was in flight or journaled) is dead on arrival.
		if !t.coreLive(cmd.SrcDev, cmd.SrcCore, cmd.srcGen) {
			t.sink.Add("host.stale_write_drop", 1)
			return
		}
		t.stats.VDMACopies++
		ch := t.vdmaChannel(cmd.SrcDev, cmd.SrcCore)
		ticket := ch.nextTicket
		ch.nextTicket++
		t.vdmaInflight++
		t.sink.Add("host.vdma_copy", 1)
		t.sink.Gauge("host.vdma_inflight", t.vdmaInflight)
		t.Kernel.Spawn("vdma.copy", func(p *sim.Proc) { t.runVDMA(p, cmd, ch, ticket) })
	case CmdUpdate:
		srcTile := scc.CoreTile(cmd.SrcCore)
		rg := t.regions.find(cmd.SrcDev, srcTile, cmd.SrcOff)
		if rg == nil || rg.Mode != ModeCached || rg.Owner != cmd.SrcCore {
			return // unregistered or foreign region: ignore, like real MMIO
		}
		e := t.caches[rg]
		if end := cmd.SrcOff + cmd.Count - rg.Off; end > e.hotEnd {
			e.hotEnd = end
		}
		t.stats.Prefetches++
		t.sink.Add("host.prefetch", 1)
		t.Kernel.Spawn("prefetch", func(p *sim.Proc) { t.runPrefetch(p, rg, cmd.SrcOff, cmd.Count) })
	case CmdInvalidate:
		srcTile := scc.CoreTile(cmd.SrcCore)
		rg := t.regions.find(cmd.SrcDev, srcTile, cmd.SrcOff)
		if rg == nil || rg.Owner != cmd.SrcCore {
			return
		}
		t.stats.Invalidates++
		if e := t.caches[rg]; e != nil {
			e.invalidate(cmd.SrcOff, cmd.Count)
		}
		t.killStreams(rg)
		for _, sb := range t.sifBufs {
			sb.invalidateRange(rg.Dev, rg.Tile, cmd.SrcOff, cmd.Count)
		}
	}
}

// killStreams deactivates streams sourcing from a region.
func (t *Task) killStreams(rg *Region) {
	for _, st := range t.streamLst {
		if st.rg == rg && st.active {
			st.active = false
			t.sifBufs[st.readerDev].cond.Broadcast()
		}
	}
	// Drop finished streams from the list occasionally to bound growth.
	if len(t.streamLst) > 64 {
		live := t.streamLst[:0]
		for _, st := range t.streamLst {
			if st.active {
				live = append(live, st)
			}
		}
		t.streamLst = live
	}
}

// runPrefetch copies [off, off+count) of a cached region into the host
// copy in DMA bursts.
func (t *Task) runPrefetch(p *sim.Proc, rg *Region, off, count int) {
	e := t.caches[rg]
	t.gate.Wait(p)
	p.Delay(t.Fabric.Params.DMASetupCycles)
	end := off + count
	if end > rg.Off+rg.Len {
		end = rg.Off + rg.Len
	}
	for o := off; o < end; o += t.Params.DMABurstBytes {
		n := end - o
		if n > t.Params.DMABurstBytes {
			n = t.Params.DMABurstBytes
		}
		oo, nn := o, n
		e.pending++
		t.sink.Add("host.dma_bursts", 1)
		t.chargeBWRegion(p, rg, t.Params.readBytes(nn))
		t.Fabric.PostD2H(p, rg.Dev, t.Params.readBytes(nn), func() {
			rel := oo - rg.Off
			t.Chips[rg.Dev].HostReadLMB(rg.Tile, oo, e.data[rel:rel+nn])
			e.markValid(oo, nn)
			// Injected host-memory corruption: flip one byte after the
			// checksum was taken, so cacheClean catches it on first use.
			if t.faults.CorruptCacheLine(rg.Dev) {
				e.data[rel+t.faults.Pick("host.cache", rg.Dev, nn)] ^= 0x80
			}
			e.pending--
			e.cond.Broadcast()
		})
	}
}

// vdmaChannel is the per-core DMA ordering state.
type vdmaChannel struct {
	nextTicket uint64
	served     uint64
	cond       *sim.Cond
}

func (t *Task) vdmaChannel(dev, core int) *vdmaChannel {
	key := [2]int{dev, core}
	ch, ok := t.vdmaChans[key]
	if !ok {
		ch = &vdmaChannel{cond: sim.NewCond(t.Kernel, fmt.Sprintf("vdmachan.d%d.c%d", dev, core))}
		t.vdmaChans[key] = ch
	}
	return ch
}

// runVDMA performs one virtual-DMA copy: requester MPB -> host -> target
// MPB, pipelined in bursts over both PCIe directions, with optional
// destination notify and requester completion flag (Fig. 5). Data bursts
// of back-to-back transactions may overlap; the notify/completion flags
// are issued in strict programming order via the channel ticket.
func (t *Task) runVDMA(p *sim.Proc, cmd BankCommand, ch *vdmaChannel, ticket uint64) {
	t.gate.Wait(p)
	p.Delay(t.Fabric.Params.DMASetupCycles)
	srcTile := scc.CoreTile(cmd.SrcCore)
	srcChip := t.Chips[cmd.SrcDev]
	for o := 0; o < cmd.Count; o += t.Params.DMABurstBytes {
		n := cmd.Count - o
		if n > t.Params.DMABurstBytes {
			n = t.Params.DMABurstBytes
		}
		so := cmd.SrcOff + o
		do := cmd.DstOff + o
		last := o+n >= cmd.Count
		nn := n
		t.sink.Add("host.dma_bursts", 1)
		// Both PCIe directions of the copy bill the requesting tenant;
		// the shaping delay throttles this channel's burst pipeline.
		t.chargeBW(p, cmd.SrcDev, cmd.SrcCore, t.Params.readBytes(nn)+nn+t.Params.StreamHeaderBytes)
		t.Fabric.PostD2H(p, cmd.SrcDev, t.Params.readBytes(nn), func() {
			data := make([]byte, nn)
			srcChip.HostReadLMB(srcTile, so, data)
			t.Kernel.Spawn("vdma.push", func(pp *sim.Proc) {
				t.Fabric.PostH2D(pp, cmd.DstDev, nn+t.Params.StreamHeaderBytes, func() {
					if t.coreLive(cmd.SrcDev, cmd.SrcCore, cmd.srcGen) {
						t.deliverBulk(cmd.DstDev, cmd.DstTile, do, data)
					} else {
						t.sink.Add("host.stale_write_drop", 1)
					}
					if last {
						t.Kernel.Spawn("vdma.finish", func(fp *sim.Proc) {
							t.finishVDMA(fp, cmd, ch, ticket)
						})
					}
				})
			})
		})
	}
}

// finishVDMA issues the notify and completion flags of a transaction
// once all earlier transactions of the same channel have issued theirs.
func (t *Task) finishVDMA(p *sim.Proc, cmd BankCommand, ch *vdmaChannel, ticket uint64) {
	for ch.served != ticket {
		ch.cond.Wait(p)
	}
	t.gate.Wait(p)
	// The ticket still advances for a retired requester (later commands
	// of the channel may belong to a successor session), but its flag
	// values must never reach the reused MPB bytes.
	if cmd.Flags&FlagNotifyDest != 0 {
		t.Fabric.PostH2D(p, cmd.DstDev, t.Params.AckBytes, func() {
			if !t.coreLive(cmd.SrcDev, cmd.SrcCore, cmd.srcGen) {
				t.sink.Add("host.stale_write_drop", 1)
				return
			}
			t.hostWrite(cmd.DstDev, cmd.DstTile, cmd.NotifyOff, []byte{cmd.NotifyVal})
		})
	}
	if cmd.Flags&FlagCompletion != 0 {
		t.Fabric.PostH2D(p, cmd.SrcDev, t.Params.AckBytes, func() {
			if !t.coreLive(cmd.SrcDev, cmd.SrcCore, cmd.srcGen) {
				t.sink.Add("host.stale_write_drop", 1)
				return
			}
			t.hostWrite(cmd.SrcDev, scc.CoreTile(cmd.SrcCore), cmd.ComplOff, []byte{cmd.ComplVal})
		})
	}
	ch.served = ticket + 1
	t.vdmaInflight--
	t.sink.Gauge("host.vdma_inflight", t.vdmaInflight)
	ch.cond.Broadcast()
}

// deliverBulk lands a contiguous multi-line write (DMA burst) in a
// device's LMB and keeps host copies consistent.
func (t *Task) deliverBulk(dev, tile, off int, data []byte) {
	t.hostWrite(dev, tile, off, data)
	t.invalidateHostCopies(dev, tile, off, len(data))
}

func snapshot(data []byte) []byte {
	d := make([]byte, len(data))
	copy(d, data)
	return d
}
