package host

import (
	"encoding/binary"
	"fmt"

	"vscc/internal/mem"
	"vscc/internal/scc"
)

// The vDMA controller is programmed through memory-mapped registers
// (paper §3.3, Fig. 5): three logical registers — address, count,
// control — allocated contiguously with 32 B alignment so the SCC's
// write-combine buffer fuses programming into a single off-chip write.
// Each core owns one 32-byte register bank at MMIO offset core*32.
//
// Bank layout (little endian):
//
//	[ 0: 8)  address: packed destination dev<<40 | tile<<24 | off
//	[ 8:12)  count:   transfer length in bytes
//	[12:16)  source:  absolute LMB offset within the requester's tile
//	[16:17)  control: command (see Cmd*)
//	[17:18)  flags:   bit 0 notify destination, bit 1 completion flag
//	[18:22)  notify:  absolute LMB offset at the destination tile
//	[22:26)  compl:   absolute LMB offset at the requester's tile
//	[26:27)  notify value byte
//	[27:28)  completion value byte
const (
	// BankBytes is the size of one core's register bank.
	BankBytes = mem.LineSize

	// CmdCopy starts a vDMA copy from the requester's MPB to the packed
	// destination (the local-put/local-get data mover).
	CmdCopy = 1
	// CmdUpdate prefetches [source, source+count) of the requester's MPB
	// into the host software cache (warms the local-put/remote-get path).
	CmdUpdate = 2
	// CmdInvalidate drops host-cached copies of the range — the explicit
	// consistency control of the relaxed memory model (§3.1).
	CmdInvalidate = 3

	// FlagNotifyDest and FlagCompletion select the vDMA side effects.
	FlagNotifyDest = 1 << 0
	FlagCompletion = 1 << 1
)

// BankCommand is a decoded register-bank write.
type BankCommand struct {
	// Requester identity (filled by the task from the transport, not
	// from register contents). srcGen is the requesting core's
	// retirement generation when the MMIO write was posted; the copy's
	// landings drop if the core was retired in between.
	SrcDev, SrcCore int
	srcGen          uint32

	DstDev, DstTile, DstOff int
	Count                   int
	SrcOff                  int
	Cmd                     byte
	Flags                   byte
	NotifyOff               int
	ComplOff                int
	NotifyVal               byte
	ComplVal                byte
}

// PackDst encodes a destination triple for the address register.
func PackDst(dev, tile, off int) uint64 {
	return uint64(dev)<<40 | uint64(tile)<<24 | uint64(off)
}

// EncodeBank builds the 32-byte register-bank image for a command; cores
// write it with a single fused MMIO store.
func EncodeBank(c BankCommand) [BankBytes]byte {
	var b [BankBytes]byte
	binary.LittleEndian.PutUint64(b[0:], PackDst(c.DstDev, c.DstTile, c.DstOff))
	binary.LittleEndian.PutUint32(b[8:], uint32(c.Count))
	binary.LittleEndian.PutUint32(b[12:], uint32(c.SrcOff))
	b[16] = c.Cmd
	b[17] = c.Flags
	binary.LittleEndian.PutUint32(b[18:], uint32(c.NotifyOff))
	binary.LittleEndian.PutUint32(b[22:], uint32(c.ComplOff))
	b[26] = c.NotifyVal
	b[27] = c.ComplVal
	return b
}

// decodeBank parses a register-bank image.
func decodeBank(b []byte) BankCommand {
	dst := binary.LittleEndian.Uint64(b[0:])
	return BankCommand{
		DstDev:    int(dst >> 40),
		DstTile:   int(dst >> 24 & 0xFFFF),
		DstOff:    int(dst & 0xFFFFFF),
		Count:     int(binary.LittleEndian.Uint32(b[8:])),
		SrcOff:    int(binary.LittleEndian.Uint32(b[12:])),
		Cmd:       b[16],
		Flags:     b[17],
		NotifyOff: int(binary.LittleEndian.Uint32(b[18:])),
		ComplOff:  int(binary.LittleEndian.Uint32(b[22:])),
		NotifyVal: b[26],
		ComplVal:  b[27],
	}
}

// validate rejects a command whose decoded fields cannot describe a
// legal operation — the backstop that keeps a corrupted register image
// (MMIO corruption, partial programming) from crashing the host task or
// scribbling on the wrong device.
func (c BankCommand) validate(numDevs int) error {
	switch c.Cmd {
	case CmdCopy, CmdUpdate, CmdInvalidate:
	default:
		return fmt.Errorf("host: unknown command %d", c.Cmd)
	}
	if c.Count <= 0 || c.Count > mem.LMBSize {
		return fmt.Errorf("host: command count %d out of range", c.Count)
	}
	if c.SrcOff < 0 || c.SrcOff+c.Count > mem.LMBSize {
		return fmt.Errorf("host: source range [%d,%d) outside LMB", c.SrcOff, c.SrcOff+c.Count)
	}
	if c.Cmd != CmdCopy {
		return nil
	}
	if c.DstDev < 0 || c.DstDev >= numDevs {
		return fmt.Errorf("host: destination device %d out of range", c.DstDev)
	}
	if c.DstTile < 0 || c.DstTile >= scc.NumTiles {
		return fmt.Errorf("host: destination tile %d out of range", c.DstTile)
	}
	if c.DstOff < 0 || c.DstOff+c.Count > mem.LMBSize {
		return fmt.Errorf("host: destination range [%d,%d) outside LMB", c.DstOff, c.DstOff+c.Count)
	}
	if c.Flags&FlagNotifyDest != 0 && (c.NotifyOff < 0 || c.NotifyOff >= mem.LMBSize) {
		return fmt.Errorf("host: notify offset %d outside LMB", c.NotifyOff)
	}
	if c.Flags&FlagCompletion != 0 && (c.ComplOff < 0 || c.ComplOff >= mem.LMBSize) {
		return fmt.Errorf("host: completion offset %d outside LMB", c.ComplOff)
	}
	return nil
}

// Validate is the exported form of validate: alternative host engines
// (the PDES per-kernel host, internal/vscc) decode the same register
// images and need the same backstop against corrupted commands.
func (c BankCommand) Validate(numDevs int) error { return c.validate(numDevs) }

// Banks is an exported register file for host engines living outside
// this package. The classic single-kernel Task keeps its private
// registerFile; the PDES host kernel holds one Banks per device so the
// MMIO decode path is shared, not duplicated.
type Banks struct {
	rf *registerFile
}

// NewBanks returns an empty register window.
func NewBanks() *Banks { return &Banks{rf: newRegisterFile()} }

// Write merges a masked line write into core's bank and returns the
// decoded command plus whether the control byte was armed (the write
// that triggers execution).
func (b *Banks) Write(core int, data []byte, mask uint32) (BankCommand, bool) {
	return b.rf.write(core, data, mask)
}

// Read returns core's current bank image.
func (b *Banks) Read(core int) [BankBytes]byte { return b.rf.read(core) }

// registerFile holds the per-device, per-core banks of one host register
// window.
type registerFile struct {
	banks map[int][BankBytes]byte // core id -> bank image
}

func newRegisterFile() *registerFile {
	return &registerFile{banks: make(map[int][BankBytes]byte)}
}

// write merges a masked line write into a core's bank and reports
// whether the control byte was touched with a non-zero command.
func (rf *registerFile) write(core int, data []byte, mask uint32) (BankCommand, bool) {
	bank := rf.banks[core]
	for i := 0; i < BankBytes && i < len(data); i++ {
		if mask&(1<<uint(i)) != 0 {
			bank[i] = data[i]
		}
	}
	rf.banks[core] = bank
	trigger := mask&(1<<16) != 0 && bank[16] != 0
	return decodeBank(bank[:]), trigger
}

// read returns a core's bank image.
func (rf *registerFile) read(core int) [BankBytes]byte { return rf.banks[core] }
