// Package host implements the vSCC communication task: the multithreaded
// daemon inside the SCC host driver that the paper extends from a
// transparent packet router into an active communication engine with a
// software cache, a write-combining buffer, and a virtual DMA controller,
// all controlled by memory-mapped registers (paper §3.2/§3.3).
//
// The task classifies incoming off-chip requests by consulting a region
// table that each rank populates at startup ("each rank has to register
// start address and length of the communication buffer to the
// communication task", §3.1). Synchronization-flag regions always bypass
// the task's buffers; data regions are handled according to their mode.
package host

import (
	"fmt"

	"vscc/internal/mem"
)

// Kind classifies a registered on-chip memory region.
type Kind int

const (
	// KindData marks message-payload memory (cacheable / combinable).
	KindData Kind = iota
	// KindFlag marks synchronization flags: accesses bypass all
	// transparent buffers of the communication task (§3.1).
	KindFlag
)

// String names the kind.
func (k Kind) String() string {
	if k == KindFlag {
		return "flag"
	}
	return "data"
}

// Mode selects how the communication task treats a data region.
type Mode int

const (
	// ModeTransparent forwards every request — the previous prototype's
	// behaviour (simple routing).
	ModeTransparent Mode = iota
	// ModeCached serves remote reads from a host-side software copy that
	// the owner keeps consistent with explicit update/invalidate commands
	// (the local-put/remote-get accelerator, Fig. 4b).
	ModeCached
	// ModeWriteCombining absorbs remote writes into a host buffer and
	// flushes them to the device in bursts (the remote-put accelerator,
	// Fig. 4c).
	ModeWriteCombining
	// ModePosted marks a registered communication buffer whose writes the
	// SIF may post under the new (non-transparent) protocol: the
	// communication task owns delivery and ordering, so the core is not
	// stalled for an acknowledgement. The vSCC direct small-message path
	// uses this.
	ModePosted
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeCached:
		return "cached"
	case ModeWriteCombining:
		return "write-combining"
	case ModePosted:
		return "posted"
	}
	return "transparent"
}

// Region is one registered span of a device's on-chip memory.
type Region struct {
	Dev, Tile, Off, Len int
	Kind                Kind
	Mode                Mode
	// Owner is the core id (on Dev) that registered the region and is
	// allowed to issue update/invalidate commands for it.
	Owner int
}

// Contains reports whether (tile, off) on the region's device falls
// inside the region.
func (rg *Region) Contains(tile, off int) bool {
	return tile == rg.Tile && off >= rg.Off && off < rg.Off+rg.Len
}

// regionTable indexes regions by (dev, tile) for per-line lookups.
type regionTable struct {
	byTile map[[2]int][]*Region
}

func newRegionTable() *regionTable {
	return &regionTable{byTile: make(map[[2]int][]*Region)}
}

// add registers a region, rejecting overlaps on the same tile.
func (t *regionTable) add(rg *Region) error {
	if rg.Len <= 0 || rg.Off < 0 || rg.Off+rg.Len > mem.LMBSize {
		return fmt.Errorf("host: region [%d,%d) outside tile LMB", rg.Off, rg.Off+rg.Len)
	}
	key := [2]int{rg.Dev, rg.Tile}
	for _, other := range t.byTile[key] {
		if rg.Off < other.Off+other.Len && other.Off < rg.Off+rg.Len {
			return fmt.Errorf("host: region [%d,%d) overlaps [%d,%d) on dev %d tile %d",
				rg.Off, rg.Off+rg.Len, other.Off, other.Off+other.Len, rg.Dev, rg.Tile)
		}
	}
	t.byTile[key] = append(t.byTile[key], rg)
	return nil
}

// remove drops a region from the table (tenant teardown).
func (t *regionTable) remove(rg *Region) {
	key := [2]int{rg.Dev, rg.Tile}
	regs := t.byTile[key]
	for i, other := range regs {
		if other == rg {
			t.byTile[key] = append(regs[:i], regs[i+1:]...)
			return
		}
	}
}

// find returns the region containing (dev, tile, off), or nil.
func (t *regionTable) find(dev, tile, off int) *Region {
	for _, rg := range t.byTile[[2]int{dev, tile}] {
		if rg.Contains(tile, off) {
			return rg
		}
	}
	return nil
}
