package host

import (
	"testing"

	"vscc/internal/pcie"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/trace"
)

// A tenant over its token-bucket rate is delayed and the wait recorded;
// an unshaped tenant sharing the fabric is not.
func TestTenantBandwidthCap(t *testing.T) {
	r := newRig(t, 2, pcie.AckHost)
	sink := trace.NewSink(r.k)
	r.task.Instrument(sink)
	r.task.EnableQoS(0)
	// The cap must sit well below the natural line rate (one ~60-byte
	// charge per ~20k-cycle PCIe write) for the bucket to run dry.
	r.task.SetTenant(TenantConfig{ID: 1, BWBytesPerCycle: 0.001, BurstBytes: 64})
	r.task.SetTenant(TenantConfig{ID: 2})
	r.task.BindCore(0, 0, 1)
	r.task.BindCore(0, 2, 2)

	var shaped, unshaped sim.Cycles
	r.chips[0].Launch(0, "shaped", func(ctx *scc.Ctx) {
		t0 := ctx.Now()
		for i := 0; i < 4; i++ {
			ctx.WriteMPB(1, 0, 64+i*128, pattern(128, byte(i)))
		}
		shaped = ctx.Now() - t0
	})
	r.chips[0].Launch(2, "unshaped", func(ctx *scc.Ctx) {
		t0 := ctx.Now()
		for i := 0; i < 4; i++ {
			ctx.WriteMPB(1, 1, 64+i*128, pattern(128, byte(i)))
		}
		unshaped = ctx.Now() - t0
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := sink.CounterValue("qos.bytes.t001"); got == 0 {
		t.Error("shaped tenant's PCIe bytes were not charged")
	}
	if got := sink.CounterValue("qos.bw_wait.t001"); got == 0 {
		t.Error("shaped tenant over its cap recorded no bandwidth wait")
	}
	if got := sink.CounterValue("qos.bw_wait.t002"); got != 0 {
		t.Errorf("unshaped tenant waited %d cycles on a bucket it does not have", got)
	}
	if shaped <= unshaped {
		t.Errorf("shaped writer (%d cycles) was not slower than unshaped (%d)", shaped, unshaped)
	}
}

// DRR alternates service between equally backlogged tenants, quantum
// bytes per visit, and keeps FIFO order within each tenant.
func TestDRRQueueFairness(t *testing.T) {
	k := sim.NewKernel()
	q := newDRRQueue(k, 0, 100)
	for i := 0; i < 3; i++ {
		q.enqueue(1, deliverItem{data: pattern(100, byte(i))})
	}
	for i := 0; i < 3; i++ {
		q.enqueue(2, deliverItem{data: pattern(100, byte(10+i))})
	}
	var seeds []byte
	for i := 0; i < 6; i++ {
		it := q.pop(nil)
		seeds = append(seeds, it.data[0])
	}
	// pattern(n, seed)[0] == seed, so the service order reads directly.
	want := []byte{0, 10, 1, 11, 2, 12}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("service order %v, want %v (alternating, FIFO within tenant)", seeds, want)
		}
	}
	if q.total != 0 {
		t.Fatalf("queue not drained: %d left", q.total)
	}
}

// Flag-only deliveries cost one byte of deficit, so a tenant spamming
// flags cannot be starved out of a round by a bulk tenant — and vice
// versa a bulk tenant still gets its quantum.
func TestDRRQueueFlagCost(t *testing.T) {
	k := sim.NewKernel()
	q := newDRRQueue(k, 0, 100)
	q.enqueue(1, deliverItem{data: pattern(100, 1)})
	q.enqueue(2, deliverItem{isFlag: true})
	q.enqueue(1, deliverItem{data: pattern(100, 2)})
	first := q.pop(nil)
	second := q.pop(nil)
	if len(first.data) == 0 || first.data[0] != 1 {
		t.Fatal("first pop should serve tenant 1's bulk item")
	}
	if !second.isFlag {
		t.Fatal("tenant 2's flag delivery should be served in the next visit, not starved")
	}
}

// A tenant over its cache quota evicts only its own oldest lines;
// another tenant's partition is untouched.
func TestCachePartitionIsolation(t *testing.T) {
	r := newRig(t, 1, pcie.AckHost)
	sink := trace.NewSink(r.k)
	r.task.Instrument(sink)
	r.task.EnableQoS(0)
	r.task.SetTenant(TenantConfig{ID: 1, CacheLines: 2})
	r.task.SetTenant(TenantConfig{ID: 2, CacheLines: 2})
	q1 := r.task.qos.tenants[1]
	q2 := r.task.qos.tenants[2]

	e1 := &cacheEntry{valid: make([]bool, 4), cond: sim.NewCond(r.k, "e1")}
	e2 := &cacheEntry{valid: make([]bool, 4), cond: sim.NewCond(r.k, "e2")}
	for line := 0; line < 2; line++ {
		e2.valid[line] = true
		q2.noteValid(e2, line)
	}
	for line := 0; line < 4; line++ {
		e1.valid[line] = true
		q1.noteValid(e1, line)
	}

	if q1.resident != 2 {
		t.Errorf("tenant 1 resident = %d, want quota 2", q1.resident)
	}
	if e1.valid[0] || e1.valid[1] {
		t.Error("tenant 1's oldest lines were not evicted first")
	}
	if !e1.valid[2] || !e1.valid[3] {
		t.Error("tenant 1's newest lines must stay resident")
	}
	if got := sink.CounterValue("host.cache_evict.t001"); got != 2 {
		t.Errorf("tenant 1 evictions = %d, want 2", got)
	}
	if q2.resident != 2 || !e2.valid[0] || !e2.valid[1] {
		t.Error("tenant 2's partition was disturbed by tenant 1's pressure")
	}
	if got := sink.CounterValue("host.cache_evict.t002"); got != 0 {
		t.Errorf("tenant 2 evictions = %d, want 0", got)
	}
}

// A re-validated line must not be evicted through its stale FIFO entry.
func TestCacheEvictSkipsRevalidatedLine(t *testing.T) {
	r := newRig(t, 1, pcie.AckHost)
	r.task.Instrument(trace.NewSink(r.k))
	r.task.EnableQoS(0)
	r.task.SetTenant(TenantConfig{ID: 1, CacheLines: 8})
	q := r.task.qos.tenants[1]

	e := &cacheEntry{valid: make([]bool, 2), cond: sim.NewCond(r.k, "e")}
	e.valid[0] = true
	q.noteValid(e, 0)
	// Invalidate (owner write) and re-validate: the old FIFO ref is stale.
	e.valid[0] = false
	q.noteInvalid()
	e.valid[0] = true
	q.noteValid(e, 0)

	if !q.evictOldest() {
		t.Fatal("eviction found nothing despite a resident line")
	}
	if e.valid[0] {
		t.Error("the current incarnation should be evicted via its fresh ref")
	}
	if q.resident != 0 {
		t.Errorf("resident = %d, want 0", q.resident)
	}
}
