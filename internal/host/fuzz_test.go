package host

import (
	"testing"
)

// FuzzRegisterFusion drives the register-file merge path — the landing
// zone of fused MMIO writes, and of injected MMIO corruption — with
// arbitrary data and masks: it must never panic, every triggered command
// must either validate or be rejected with an error (never both nil),
// and unmasked bank bytes must survive the merge untouched.
func FuzzRegisterFusion(f *testing.F) {
	good := EncodeBank(BankCommand{
		DstDev: 1, DstTile: 3, DstOff: 64, Count: 128, SrcOff: 32,
		Cmd: CmdCopy, Flags: FlagNotifyDest | FlagCompletion,
		NotifyOff: 8, ComplOff: 16, NotifyVal: 1, ComplVal: 2,
	})
	f.Add(good[:], uint32(0xFFFFFFFF), uint32(0xFFFFFFFF))
	f.Add([]byte{}, uint32(0), uint32(0))
	f.Add([]byte{0xFF}, uint32(1), uint32(1<<16))
	f.Add(make([]byte, BankBytes+16), uint32(0xAAAAAAAA), uint32(0x55555555))
	f.Fuzz(func(t *testing.T, data []byte, mask1, mask2 uint32) {
		rf := newRegisterFile()
		before := rf.read(0)
		cmd, trigger := rf.write(0, data, mask1)
		after := rf.read(0)
		for i := 0; i < BankBytes; i++ {
			if mask1&(1<<uint(i)) == 0 || i >= len(data) {
				if after[i] != before[i] {
					t.Fatalf("unmasked byte %d changed: %#x -> %#x", i, before[i], after[i])
				}
			} else if after[i] != data[i] {
				t.Fatalf("masked byte %d = %#x, want %#x", i, after[i], data[i])
			}
		}
		if trigger && (mask1&(1<<16) == 0 || after[16] == 0) {
			t.Fatal("trigger without a masked non-zero control byte")
		}
		// Validation must classify any decoded command without panicking,
		// for any device count.
		for _, n := range []int{0, 1, 4} {
			_ = cmd.validate(n)
		}
		// A second partial write (the torn-programming case) must behave
		// the same way.
		cmd2, _ := rf.write(0, data, mask2)
		_ = cmd2.validate(4)
	})
}

// FuzzBankRoundTrip checks that every command image the encoder can emit
// decodes back to the same command — no two fields alias in the packed
// address register.
func FuzzBankRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint32(0), uint32(0), uint32(0), uint8(1), uint8(0), uint32(0), uint32(0), uint8(0), uint8(0))
	f.Add(uint8(3), uint16(23), uint32(16000), uint32(8192), uint32(512), uint8(CmdCopy), uint8(3), uint32(8), uint32(16), uint8(7), uint8(9))
	f.Fuzz(func(t *testing.T, dev uint8, tile uint16, dstOff, count, srcOff uint32, cmd, flags uint8, notifyOff, complOff uint32, nv, cv uint8) {
		c := BankCommand{
			DstDev:    int(dev),
			DstTile:   int(tile),
			DstOff:    int(dstOff & 0xFFFFFF), // packed width of the address register
			Count:     int(count),
			SrcOff:    int(srcOff),
			Cmd:       cmd,
			Flags:     flags,
			NotifyOff: int(notifyOff),
			ComplOff:  int(complOff),
			NotifyVal: nv,
			ComplVal:  cv,
		}
		b := EncodeBank(c)
		got := decodeBank(b[:])
		// SrcDev/SrcCore travel out of band (filled from the transport).
		got.SrcDev, got.SrcCore = c.SrcDev, c.SrcCore
		if got != c {
			t.Fatalf("round trip %+v -> %+v", c, got)
		}
	})
}
