package host

import (
	"fmt"
	"hash/crc32"

	"vscc/internal/mem"
	"vscc/internal/sim"
)

// lineKey identifies one 32-byte MPB line globally (same encoding idea as
// the device caches, but private to the host task).
func lineKey(dev, tile, off int) uint64 {
	return uint64(dev)<<40 | uint64(tile)<<20 | uint64(off/mem.LineSize)
}

// cacheEntry is the host-side software copy of one cached region. Lines
// become valid as prefetch bursts arrive; the owner's explicit
// invalidate command drops them — the relaxed-consistency contract of
// §3.1 ("the sender that writes to a local MPB explicitly invalidates
// the outdated part of the host copy").
type cacheEntry struct {
	rg    *Region
	data  []byte
	valid []bool // per line
	// hotEnd is the exclusive end (relative to rg.Off) of the range the
	// owner announced with update commands; streams run up to it.
	hotEnd int
	// pending counts in-flight prefetch bursts.
	pending int
	cond    *sim.Cond

	// track enables per-line checksums (sums), kept only when fault
	// injection is armed: a line whose stored bytes no longer match its
	// checksum was corrupted in host memory and must not be served.
	track bool
	sums  []uint32

	// acct attributes this entry's resident lines to a tenant's cache
	// partition (qos.go); nil — the default — disables partitioning.
	// stamps records each line's validation sequence so a lazily
	// processed eviction ref never drops a newer incarnation.
	acct   *tenantQoS
	stamps []uint64
}

func newCacheEntry(k *sim.Kernel, rg *Region) *cacheEntry {
	return &cacheEntry{
		rg:    rg,
		data:  make([]byte, rg.Len),
		valid: make([]bool, (rg.Len+mem.LineSize-1)/mem.LineSize),
		cond:  sim.NewCond(k, fmt.Sprintf("hostcache.d%d.t%d", rg.Dev, rg.Tile)),
	}
}

// lineValid reports whether the line at absolute tile offset off is
// valid.
func (e *cacheEntry) lineValid(off int) bool {
	return e.valid[(off-e.rg.Off)/mem.LineSize]
}

// markValid validates the lines covering [off, off+n) (absolute),
// recomputing their checksums when tracking is on.
func (e *cacheEntry) markValid(off, n int) {
	for o := off; o < off+n; o += mem.LineSize {
		i := (o - e.rg.Off) / mem.LineSize
		if !e.valid[i] {
			e.valid[i] = true
			if e.acct != nil {
				e.acct.noteValid(e, i)
			}
		}
		if e.track {
			if e.sums == nil {
				e.sums = make([]uint32, len(e.valid))
			}
			rel := i * mem.LineSize
			e.sums[i] = crc32.ChecksumIEEE(e.data[rel : rel+mem.LineSize])
		}
	}
}

// lineClean reports whether the line at absolute offset off still
// matches its checksum. Always true when tracking is off.
func (e *cacheEntry) lineClean(off int) bool {
	if !e.track || e.sums == nil {
		return true
	}
	i := (off - e.rg.Off) / mem.LineSize
	rel := i * mem.LineSize
	return e.sums[i] == crc32.ChecksumIEEE(e.data[rel:rel+mem.LineSize])
}

// invalidate drops lines overlapping [off, off+n) (absolute) and clips
// the hot range.
func (e *cacheEntry) invalidate(off, n int) {
	first := (off - e.rg.Off) / mem.LineSize
	last := (off + n - 1 - e.rg.Off) / mem.LineSize
	for i := first; i <= last && i < len(e.valid); i++ {
		if i >= 0 {
			if e.valid[i] && e.acct != nil {
				e.acct.noteInvalid()
			}
			e.valid[i] = false
		}
	}
	if rel := off - e.rg.Off; rel < e.hotEnd {
		e.hotEnd = rel
	}
	e.cond.Broadcast()
}

// sifBuffer models the device-side response buffer in the SIF FPGA that
// the host streams prefetched lines into. A read that hits here is
// served at on-chip cost — the mechanism that turns the latency-bound
// remote-get path into a bandwidth-bound one. FIFO eviction keeps it
// bounded; an evicted line simply falls back to the slow path.
type sifBuffer struct {
	lines    map[uint64][]byte
	order    []uint64
	capLines int
	cond     *sim.Cond

	// gens counts invalidations per (dev, tile); genAll counts full
	// resets. A streamed line captures genOf when it is posted; if an
	// invalidate (or crash reset) lands while the line is still in
	// flight, the arrival is discarded — otherwise a delayed line from
	// before the owner's invalidate would reappear in the buffer and
	// serve stale data.
	gens   map[uint32]uint64
	genAll uint64

	hits, inserts, evictions, staleDiscards uint64
}

func newSIFBuffer(k *sim.Kernel, dev, capLines int) *sifBuffer {
	return &sifBuffer{
		lines:    make(map[uint64][]byte),
		capLines: capLines,
		cond:     sim.NewCond(k, fmt.Sprintf("sifbuf.d%d", dev)),
		gens:     make(map[uint32]uint64),
	}
}

// genOf returns the current insert generation for lines of (dev, tile).
func (b *sifBuffer) genOf(dev, tile int) uint64 {
	return b.genAll + b.gens[uint32(dev)<<16|uint32(tile)]
}

// insert adds a line copy, evicting the oldest when full, and wakes
// waiting readers.
func (b *sifBuffer) insert(key uint64, data []byte) {
	if _, ok := b.lines[key]; !ok {
		if len(b.order) >= b.capLines {
			oldest := b.order[0]
			b.order = b.order[1:]
			delete(b.lines, oldest)
			b.evictions++
		}
		b.order = append(b.order, key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b.lines[key] = cp
	b.inserts++
	b.cond.Broadcast()
}

// take removes and returns a line.
func (b *sifBuffer) take(key uint64) ([]byte, bool) {
	data, ok := b.lines[key]
	if !ok {
		return nil, false
	}
	delete(b.lines, key)
	for i, k := range b.order {
		if k == key {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	b.hits++
	return data, true
}

// insertIfFresh adds a line only if no invalidation of its region
// happened since gen was captured; a stale in-flight line is dropped on
// the floor (its reader falls back to the slow path).
func (b *sifBuffer) insertIfFresh(gen uint64, dev, tile int, key uint64, data []byte) bool {
	if gen != b.genOf(dev, tile) {
		b.staleDiscards++
		b.cond.Broadcast() // readers parked on this line must re-check
		return false
	}
	b.insert(key, data)
	return true
}

// reset drops every buffered line — the crash-restart path: the SIF
// response buffer is volatile host-task state.
func (b *sifBuffer) reset() {
	clear(b.lines)
	b.order = b.order[:0]
	b.genAll++
	b.cond.Broadcast()
}

// invalidateRange drops buffered lines of (dev, tile, [off, off+n)).
func (b *sifBuffer) invalidateRange(dev, tile, off, n int) {
	b.gens[uint32(dev)<<16|uint32(tile)]++
	for o := off &^ (mem.LineSize - 1); o < off+n; o += mem.LineSize {
		key := lineKey(dev, tile, o)
		if _, ok := b.lines[key]; ok {
			delete(b.lines, key)
			for i, k := range b.order {
				if k == key {
					b.order = append(b.order[:i], b.order[i+1:]...)
					break
				}
			}
		}
	}
	b.cond.Broadcast()
}

// stream is one active host->device line streamer feeding a reader's SIF
// buffer from the software cache.
type stream struct {
	readerDev int
	rg        *Region
	// nextOff is the next absolute tile offset to push; the stream runs
	// while nextOff < rg.Off + entry.hotEnd and lines are valid.
	nextOff int
	active  bool
}

type streamKey struct {
	readerDev int
	rg        *Region
}

// hostWCB is the communication task's write-combining buffer for one
// region: remote writes are absorbed here and flushed to the device in
// bursts (Fig. 4c).
type hostWCB struct {
	rg         *Region
	buf        []byte
	dirty      []bool // per byte
	dirtyBytes int
	// pendingFlush counts in-flight flush bursts (for write fences).
	pendingFlush int
	cond         *sim.Cond

	absorbed, flushed uint64
}

func newHostWCB(k *sim.Kernel, rg *Region) *hostWCB {
	return &hostWCB{
		rg:    rg,
		buf:   make([]byte, rg.Len),
		dirty: make([]bool, rg.Len),
		cond:  sim.NewCond(k, fmt.Sprintf("hostwcb.d%d.t%d", rg.Dev, rg.Tile)),
	}
}

// absorb merges a masked line write at absolute tile offset off.
func (w *hostWCB) absorb(off int, data []byte, mask uint32) {
	base := off - w.rg.Off
	for i := 0; i < len(data) && i < mem.LineSize; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if !w.dirty[base+i] {
			w.dirty[base+i] = true
			w.dirtyBytes++
		}
		w.buf[base+i] = data[i]
		w.absorbed++
	}
}

// takeDirtySpans snapshots and clears all dirty spans, returning
// (absolute offset, data copy) pairs.
func (w *hostWCB) takeDirtySpans() []dirtySpan {
	var spans []dirtySpan
	i := 0
	for i < len(w.dirty) {
		if !w.dirty[i] {
			i++
			continue
		}
		j := i
		for j < len(w.dirty) && w.dirty[j] {
			w.dirty[j] = false
			j++
		}
		data := make([]byte, j-i)
		copy(data, w.buf[i:j])
		spans = append(spans, dirtySpan{off: w.rg.Off + i, data: data})
		w.flushed += uint64(j - i)
		i = j
	}
	w.dirtyBytes = 0
	return spans
}

type dirtySpan struct {
	off  int
	data []byte
}
