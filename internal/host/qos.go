// Multi-tenant QoS for the communication task. The fabric-sharing
// scheduler (internal/sched) arms this layer so that independent jobs
// coexisting on one vSCC cannot starve each other through the shared
// host machinery:
//
//   - a per-tenant token bucket (pcie.TokenBucket) caps the PCIe
//     bandwidth a tenant injects, charged at every point where a
//     tenant-attributable process crosses to the host (reads, writes,
//     MMIO, vDMA bursts, prefetch/flush/stream DMA);
//   - deficit-round-robin fair queueing replaces the plain FIFO in the
//     per-device forwarder daemons, so one tenant's delivery backlog
//     cannot monopolize a device's host-to-device link;
//   - per-tenant software-cache partitions bound how many host cache
//     lines a tenant keeps resident, with intra-tenant FIFO eviction —
//     one tenant can never evict another tenant's lines.
//
// Everything here advances on the kernel clock only. When no tenants
// are configured (EnableQoS never called) every hook short-circuits on
// a nil pointer and the task behaves byte-identically to before.
package host

import (
	"fmt"

	"vscc/internal/mem"
	"vscc/internal/pcie"
	"vscc/internal/sim"
	"vscc/internal/trace"
)

// TenantConfig describes one tenant's QoS envelope.
type TenantConfig struct {
	// ID is the tenant identifier (labels metrics as trace.TenantTag).
	ID int
	// BWBytesPerCycle caps the tenant's injected PCIe bandwidth; 0
	// leaves the tenant unshaped.
	BWBytesPerCycle float64
	// BurstBytes is the token-bucket burst allowance (defaults to 4 KB
	// when a rate is set).
	BurstBytes int
	// CacheLines bounds the tenant's resident host-software-cache
	// lines; 0 leaves the tenant unpartitioned.
	CacheLines int
}

// tenantQoS is the live per-tenant state.
type tenantQoS struct {
	id     int
	t      *Task
	bucket *pcie.TokenBucket

	// Cache partition: resident counts lines currently valid in entries
	// attributed to this tenant; fifo orders them by validation for
	// intra-tenant eviction.
	cacheQuota int
	resident   int
	fifo       []cacheRef
	fifoHead   int
	seq        uint64

	// Precomputed trace names (tracealloc: no dynamic names at record
	// sites).
	bytesName, waitName, evictName string
}

// cacheRef pins one validated line; stamp detects re-validation so a
// stale ref is skipped rather than evicting a newer incarnation.
type cacheRef struct {
	e     *cacheEntry
	line  int
	stamp uint64
}

// qosState is the task-wide multi-tenant state.
type qosState struct {
	quantum int
	tenants map[int]*tenantQoS
	byCore  map[[2]int]*tenantQoS // (dev, core) -> tenant
	drr     []*drrQueue           // per destination device
}

// EnableQoS arms the multi-tenant layer: per-device deficit-round-robin
// delivery queues (quantum bytes of service per tenant per round; <= 0
// selects a line-sized default) and the tenant table consulted by the
// bandwidth and cache hooks. It must be called before the kernel runs —
// the forwarder daemons pick their queue discipline on first dispatch.
func (t *Task) EnableQoS(quantum int) {
	if t.qos != nil {
		return
	}
	if quantum <= 0 {
		quantum = 4 * mem.LineSize
	}
	q := &qosState{
		quantum: quantum,
		tenants: make(map[int]*tenantQoS),
		byCore:  make(map[[2]int]*tenantQoS),
	}
	for d := range t.Chips {
		q.drr = append(q.drr, newDRRQueue(t.Kernel, d, quantum))
	}
	t.qos = q
}

// SetTenant creates or reconfigures a tenant's QoS record.
func (t *Task) SetTenant(cfg TenantConfig) {
	q := t.qos.tenants[cfg.ID]
	if q == nil {
		tag := trace.TenantTag(cfg.ID)
		q = &tenantQoS{
			id:        cfg.ID,
			t:         t,
			bytesName: "qos.bytes." + tag,
			waitName:  "qos.bw_wait." + tag,
			evictName: "host.cache_evict." + tag,
		}
		t.qos.tenants[cfg.ID] = q
	}
	if cfg.BWBytesPerCycle > 0 {
		burst := cfg.BurstBytes
		if burst <= 0 {
			burst = 4096
		}
		q.bucket = pcie.NewTokenBucket(cfg.BWBytesPerCycle, burst)
	} else {
		q.bucket = nil
	}
	q.cacheQuota = cfg.CacheLines
}

// BindCore attributes a core's off-chip traffic (and the regions it
// registers) to a tenant. The scheduler binds before registering the
// tenant's session regions and unbinds at teardown, so reused cores
// re-attribute cleanly.
func (t *Task) BindCore(dev, core, tenant int) {
	t.qos.byCore[[2]int{dev, core}] = t.qos.tenants[tenant]
}

// UnbindCore releases a core's tenant attribution.
func (t *Task) UnbindCore(dev, core int) {
	delete(t.qos.byCore, [2]int{dev, core})
}

// tenantByCore resolves a core's tenant record; nil when QoS is off or
// the core is unbound (system traffic).
func (t *Task) tenantByCore(dev, core int) *tenantQoS {
	if t.qos == nil {
		return nil
	}
	return t.qos.byCore[[2]int{dev, core}]
}

// chargeBW spends bytes from the source core's tenant bucket, delaying
// the calling process while the tenant is over its bandwidth cap.
func (t *Task) chargeBW(p *sim.Proc, dev, core, bytes int) {
	t.chargeTenant(p, t.tenantByCore(dev, core), bytes)
}

// chargeBWRegion is chargeBW attributed through a region's owner.
func (t *Task) chargeBWRegion(p *sim.Proc, rg *Region, bytes int) {
	t.chargeTenant(p, t.tenantByCore(rg.Dev, rg.Owner), bytes)
}

func (t *Task) chargeTenant(p *sim.Proc, q *tenantQoS, bytes int) {
	if q == nil {
		return
	}
	if wait := q.bucket.Take(p, bytes); wait > 0 {
		t.sink.Add(q.waitName, int64(wait))
	}
	t.sink.Add(q.bytesName, int64(bytes))
}

// tenantAt resolves the tenant owning the region a delivery lands in.
// Unregistered targets (or unbound owners) fall to class -1, which the
// DRR queue serves like any other class.
func (t *Task) tenantAt(dev, tile, off int) int {
	rg := t.regions.find(dev, tile, off)
	if rg == nil {
		return -1
	}
	if q := t.tenantByCore(rg.Dev, rg.Owner); q != nil {
		return q.id
	}
	return -1
}

// --- cache partitioning -------------------------------------------------

// noteValid records one invalid->valid line transition of an entry
// attributed to this tenant and evicts the tenant's own oldest lines
// while it is over quota.
func (q *tenantQoS) noteValid(e *cacheEntry, line int) {
	q.seq++
	if e.stamps == nil {
		e.stamps = make([]uint64, len(e.valid))
	}
	e.stamps[line] = q.seq
	if q.fifoHead == len(q.fifo) {
		q.fifo = q.fifo[:0]
		q.fifoHead = 0
	}
	q.fifo = append(q.fifo, cacheRef{e: e, line: line, stamp: q.seq})
	q.resident++
	for q.resident > q.cacheQuota && q.cacheQuota > 0 {
		if !q.evictOldest() {
			break
		}
	}
}

// noteInvalid records one valid->invalid transition (owner invalidate,
// crash reset, or region teardown).
func (q *tenantQoS) noteInvalid() { q.resident-- }

// evictOldest drops the tenant's oldest still-valid line. Stale refs
// (already invalidated, or re-validated with a newer stamp) are skipped
// lazily. The evicted line becomes a plain miss: the next reader takes
// the transparently forwarded slow path, so correctness is unaffected.
func (q *tenantQoS) evictOldest() bool {
	for q.fifoHead < len(q.fifo) {
		ref := q.fifo[q.fifoHead]
		q.fifo[q.fifoHead] = cacheRef{}
		q.fifoHead++
		if !ref.e.valid[ref.line] || ref.e.stamps[ref.line] != ref.stamp {
			continue
		}
		// Direct drop, not cacheEntry.invalidate: an eviction is a
		// capacity decision, so it must not clip the owner's announced
		// hot range.
		ref.e.valid[ref.line] = false
		q.resident--
		q.t.sink.Add(q.evictName, 1)
		ref.e.cond.Broadcast()
		return true
	}
	return false
}

// --- deficit round robin ------------------------------------------------

// drrQueue is one device's multi-class delivery queue: per-tenant FIFOs
// served by deficit round robin. Within a tenant, delivery order is
// exactly the old single-FIFO order, preserving the data-before-flag
// guarantee per source; across tenants, each active class earns quantum
// bytes of host-to-device service per round.
type drrQueue struct {
	cond    *sim.Cond
	quantum int
	classes map[int]*drrClass
	active  []*drrClass // round-robin service order
	total   int
}

type drrClass struct {
	tenant  int
	items   []deliverItem
	head    int
	deficit int
	queued  bool // on the active list
}

func newDRRQueue(k *sim.Kernel, dev, quantum int) *drrQueue {
	return &drrQueue{
		cond:    sim.NewCond(k, fmt.Sprintf("drrq.d%d", dev)),
		quantum: quantum,
		classes: make(map[int]*drrClass),
	}
}

func (q *drrQueue) class(tenant int) *drrClass {
	c, ok := q.classes[tenant]
	if !ok {
		c = &drrClass{tenant: tenant}
		q.classes[tenant] = c
	}
	return c
}

func (c *drrClass) size() int { return len(c.items) - c.head }

// drrCost is a delivery's service cost in bytes on the H2D link.
func drrCost(it deliverItem) int {
	if n := len(it.data); n > 0 {
		return n
	}
	return 1
}

// enqueue adds one delivery to a tenant's class and wakes the forwarder.
func (q *drrQueue) enqueue(tenant int, it deliverItem) {
	c := q.class(tenant)
	if c.head == len(c.items) {
		c.items = c.items[:0]
		c.head = 0
	}
	c.items = append(c.items, it)
	if !c.queued {
		c.queued = true
		c.deficit = q.quantum
		q.active = append(q.active, c)
	}
	q.total++
	q.cond.Signal()
}

// pop returns the next delivery under DRR, blocking while empty.
func (q *drrQueue) pop(p *sim.Proc) deliverItem {
	for q.total == 0 {
		q.cond.Wait(p)
	}
	for {
		c := q.active[0]
		if c.size() == 0 {
			// Fully served earlier in this visit; retire from the round.
			c.queued = false
			c.deficit = 0
			q.active = q.active[1:]
			continue
		}
		cost := drrCost(c.items[c.head])
		if c.deficit >= cost {
			it := c.items[c.head]
			c.items[c.head] = deliverItem{}
			c.head++
			c.deficit -= cost
			q.total--
			if c.size() == 0 {
				c.queued = false
				c.deficit = 0
				q.active = q.active[1:]
			}
			return it
		}
		// Quantum exhausted: move to the back of the round and recharge.
		q.active = append(q.active[1:], c)
		c.deficit += q.quantum
	}
}

// QueueDepth reports the number of deliveries queued toward dev across
// all tenants (testing hook).
func (t *Task) QueueDepth(dev int) int {
	if t.qos != nil {
		return t.qos.drr[dev].total
	}
	return t.deliverQ[dev].Len()
}

// --- region teardown ----------------------------------------------------

// UnregisterAt removes the region containing (dev, tile, off) from the
// classification table along with all derived host state: the software
// cache copy (its valid lines release the owner tenant's partition),
// the write-combining buffer (un-flushed bytes are dropped with the
// tenant), active streams, and buffered SIF lines. It reports whether a
// region was found. The multi-tenant scheduler calls this at tenant
// teardown so a later tenant can re-register the same MPB window with a
// different mode.
func (t *Task) UnregisterAt(dev, tile, off int) bool {
	rg := t.regions.find(dev, tile, off)
	if rg == nil {
		return false
	}
	t.unregister(rg)
	return true
}

func (t *Task) unregister(rg *Region) {
	t.regions.remove(rg)
	if e := t.caches[rg]; e != nil {
		e.invalidate(rg.Off, rg.Len)
		delete(t.caches, rg)
		for i, le := range t.cacheList {
			if le == e {
				t.cacheList = append(t.cacheList[:i], t.cacheList[i+1:]...)
				break
			}
		}
	}
	if w := t.wcbs[rg]; w != nil {
		delete(t.wcbs, rg)
		for i, lw := range t.wcbList {
			if lw == w {
				t.wcbList = append(t.wcbList[:i], t.wcbList[i+1:]...)
				break
			}
		}
	}
	t.killStreams(rg)
	for d := range t.Chips {
		delete(t.streams, streamKey{readerDev: d, rg: rg})
	}
	for _, sb := range t.sifBufs {
		sb.invalidateRange(rg.Dev, rg.Tile, rg.Off, rg.Len)
	}
}
