package host

import (
	"bytes"
	"testing"

	"vscc/internal/mem"
	"vscc/internal/pcie"
	"vscc/internal/scc"
	"vscc/internal/sim"
)

// rig builds n chips behind one communication task.
type rig struct {
	k     *sim.Kernel
	chips []*scc.Chip
	task  *Task
}

func newRig(t testing.TB, n int, ack pcie.AckMode) *rig {
	t.Helper()
	k := sim.NewKernel()
	var chips []*scc.Chip
	for d := 0; d < n; d++ {
		chips = append(chips, scc.NewChip(k, d, scc.DefaultParams()))
	}
	fabric, err := pcie.New(n, pcie.DefaultParams(), ack)
	if err != nil {
		t.Fatal(err)
	}
	task, err := New(k, fabric, chips, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, chips: chips, task: task}
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*31 + seed
	}
	return b
}

func TestTransparentRemoteReadLine(t *testing.T) {
	r := newRig(t, 2, pcie.AckHost)
	// Put data into device 1's tile 0 directly; read from a core on
	// device 0.
	r.chips[1].HostWriteLMB(0, 64, pattern(32, 1))
	got := make([]byte, 32)
	var cost sim.Cycles
	r.chips[0].Launch(0, "reader", func(ctx *scc.Ctx) {
		t0 := ctx.Now()
		ctx.ReadMPB(1, 0, 64, got)
		cost = ctx.Now() - t0
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(32, 1)) {
		t.Error("transparent read returned wrong data")
	}
	// Four PCIe legs: well above 2e4 cycles but bounded.
	if cost < 15_000 || cost > 60_000 {
		t.Errorf("transparent read cost %d cycles, want 4-leg class [15k,60k]", cost)
	}
	if r.task.Stats().ForwardedReads == 0 {
		t.Error("expected a forwarded read")
	}
}

func TestTransparentRemoteWriteAckModes(t *testing.T) {
	// AckRemote (two round trips) must cost more than AckHost (one),
	// which must cost far more than AckFPGA (local ack).
	costs := map[pcie.AckMode]sim.Cycles{}
	for _, mode := range []pcie.AckMode{pcie.AckFPGA, pcie.AckHost, pcie.AckRemote} {
		r := newRig(t, 2, mode)
		var cost sim.Cycles
		r.chips[0].Launch(0, "writer", func(ctx *scc.Ctx) {
			t0 := ctx.Now()
			ctx.WriteMPB(1, 5, 0, pattern(32, 2))
			ctx.FlushWCB()
			cost = ctx.Now() - t0
		})
		if err := r.k.Run(); err != nil {
			t.Fatal(err)
		}
		costs[mode] = cost
		// The write must eventually land regardless of ack mode.
		got := make([]byte, 32)
		r.chips[1].HostReadLMB(5, 0, got)
		if !bytes.Equal(got, pattern(32, 2)) {
			t.Errorf("%v: write did not land", mode)
		}
	}
	if !(costs[pcie.AckFPGA] < costs[pcie.AckHost] && costs[pcie.AckHost] < costs[pcie.AckRemote]) {
		t.Errorf("ack cost ordering wrong: fpga=%d host=%d remote=%d",
			costs[pcie.AckFPGA], costs[pcie.AckHost], costs[pcie.AckRemote])
	}
}

func TestRegionRegistrationValidation(t *testing.T) {
	r := newRig(t, 1, pcie.AckHost)
	if err := r.task.Register(&Region{Dev: 0, Tile: 0, Off: 3, Len: 32}); err == nil {
		t.Error("unaligned region accepted")
	}
	if err := r.task.Register(&Region{Dev: 5, Tile: 0, Off: 0, Len: 32}); err == nil {
		t.Error("region on unknown device accepted")
	}
	if err := r.task.Register(&Region{Dev: 0, Tile: 0, Off: 0, Len: 64}); err != nil {
		t.Errorf("valid region rejected: %v", err)
	}
	if err := r.task.Register(&Region{Dev: 0, Tile: 0, Off: 32, Len: 64}); err == nil {
		t.Error("overlapping region accepted")
	}
	if err := r.task.Register(&Region{Dev: 0, Tile: 0, Off: 64, Len: mem.LMBSize}); err == nil {
		t.Error("region beyond LMB accepted")
	}
}

func TestCachedReadAfterUpdateCommand(t *testing.T) {
	r := newRig(t, 2, pcie.AckHost)
	const tile, base = 0, 0
	msg := pattern(2048, 3)
	rg := &Region{Dev: 0, Tile: tile, Off: base, Len: 4096, Kind: KindData, Mode: ModeCached, Owner: 0}
	if err := r.task.Register(rg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	var readCost sim.Cycles
	r.chips[0].Launch(0, "sender", func(ctx *scc.Ctx) {
		ctx.WriteMPB(0, tile, base, msg)
		ctx.FlushWCB()
		bank := EncodeBank(BankCommand{Cmd: CmdUpdate, SrcOff: base, Count: len(msg)})
		ctx.MMIOWrite(0, 0*BankBytes, bank[:])
		ctx.FlushWCB()
	})
	r.chips[1].Launch(0, "reader", func(ctx *scc.Ctx) {
		ctx.Delay(100_000) // let the prefetch land
		t0 := ctx.Now()
		ctx.InvalidateMPB()
		ctx.ReadMPB(0, tile, base, got)
		readCost = ctx.Now() - t0
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("cached read returned wrong data")
	}
	st := r.task.Stats()
	if st.Prefetches == 0 {
		t.Error("update command did not prefetch")
	}
	if st.CachedReads == 0 {
		t.Error("no cached reads served")
	}
	if st.SIFHits == 0 {
		t.Error("streaming produced no SIF hits — reads were all slow-path")
	}
	// 64 lines: mostly streamed, so far below 64 full round trips.
	fullRT := sim.Cycles(64 * 15_000)
	if readCost > fullRT/4 {
		t.Errorf("cached+streamed read cost %d, want well below %d", readCost, fullRT/4)
	}
}

func TestCacheInvalidateCommandDropsStaleData(t *testing.T) {
	r := newRig(t, 2, pcie.AckHost)
	rg := &Region{Dev: 0, Tile: 0, Off: 0, Len: 1024, Kind: KindData, Mode: ModeCached, Owner: 0}
	if err := r.task.Register(rg); err != nil {
		t.Fatal(err)
	}
	got1 := make([]byte, 64)
	got2 := make([]byte, 64)
	r.chips[0].Launch(0, "owner", func(ctx *scc.Ctx) {
		ctx.WriteMPB(0, 0, 0, pattern(64, 1))
		ctx.FlushWCB()
		bank := EncodeBank(BankCommand{Cmd: CmdUpdate, SrcOff: 0, Count: 64})
		ctx.MMIOWrite(0, 0, bank[:])
		ctx.FlushWCB()
		ctx.Delay(200_000)
		// Rewrite and explicitly invalidate the host copy (the paper's
		// relaxed-consistency contract), then update again.
		ctx.WriteMPB(0, 0, 0, pattern(64, 9))
		ctx.FlushWCB()
		inv := EncodeBank(BankCommand{Cmd: CmdInvalidate, SrcOff: 0, Count: 64})
		ctx.MMIOWrite(0, 0, inv[:])
		ctx.FlushWCB()
		upd := EncodeBank(BankCommand{Cmd: CmdUpdate, SrcOff: 0, Count: 64})
		ctx.MMIOWrite(0, 0, upd[:])
		ctx.FlushWCB()
	})
	r.chips[1].Launch(0, "reader", func(ctx *scc.Ctx) {
		ctx.Delay(150_000)
		ctx.InvalidateMPB()
		ctx.ReadMPB(0, 0, 0, got1)
		ctx.Delay(400_000)
		ctx.InvalidateMPB()
		ctx.ReadMPB(0, 0, 0, got2)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, pattern(64, 1)) {
		t.Error("first read wrong")
	}
	if !bytes.Equal(got2, pattern(64, 9)) {
		t.Error("read after invalidate+update returned stale data")
	}
	if r.task.Stats().Invalidates == 0 {
		t.Error("invalidate command not executed")
	}
}

func TestWriteCombiningAbsorbsAndFlushes(t *testing.T) {
	r := newRig(t, 2, pcie.AckHost)
	// Register device 1's tile 0 as a write-combining window.
	rg := &Region{Dev: 1, Tile: 0, Off: 0, Len: 4096, Kind: KindData, Mode: ModeWriteCombining, Owner: 0}
	if err := r.task.Register(rg); err != nil {
		t.Fatal(err)
	}
	msg := pattern(4096, 5)
	var writeCost sim.Cycles
	r.chips[0].Launch(0, "remote-putter", func(ctx *scc.Ctx) {
		t0 := ctx.Now()
		ctx.WriteMPB(1, 0, 0, msg)
		ctx.FlushWCB()
		writeCost = ctx.Now() - t0
		ctx.Delay(300_000) // allow the flush to drain
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	r.chips[1].HostReadLMB(0, 0, got)
	if !bytes.Equal(got, msg) {
		t.Fatal("write-combined data did not land on the target device")
	}
	st := r.task.Stats()
	if st.PostedWrites == 0 || st.WCBFlushes == 0 {
		t.Errorf("stats = %+v, want posted writes and flushes", st)
	}
	// 128 lines posted fast: far below 128 host round trips.
	if writeCost > 128*12_000/4 {
		t.Errorf("WC write cost %d cycles — not posted", writeCost)
	}
}

func TestFlagWriteFencedBehindWCBData(t *testing.T) {
	// A flag write from the same sender must never be observable at the
	// target before previously combined data.
	r := newRig(t, 2, pcie.AckHost)
	data := &Region{Dev: 1, Tile: 0, Off: 0, Len: 1024, Kind: KindData, Mode: ModeWriteCombining, Owner: 0}
	flags := &Region{Dev: 1, Tile: 0, Off: 8192, Len: 32, Kind: KindFlag, Mode: ModeTransparent, Owner: 1}
	if err := r.task.Register(data); err != nil {
		t.Fatal(err)
	}
	if err := r.task.Register(flags); err != nil {
		t.Fatal(err)
	}
	msg := pattern(512, 7)
	var dataOK bool
	r.chips[0].Launch(0, "sender", func(ctx *scc.Ctx) {
		ctx.WriteMPB(1, 0, 0, msg) // absorbed by host WCB (512 < flush threshold)
		ctx.FlushWCB()
		ctx.WriteMPB(1, 0, 8192, []byte{1}) // flag
		ctx.FlushWCB()
	})
	r.chips[1].Launch(0, "receiver", func(ctx *scc.Ctx) {
		ctx.WaitFlag(0, 8192, func(b byte) bool { return b == 1 })
		got := make([]byte, len(msg))
		ctx.InvalidateMPB()
		ctx.ReadMPB(1, 0, 0, got)
		dataOK = bytes.Equal(got, msg)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !dataOK {
		t.Error("flag overtook write-combined data")
	}
	if r.task.Stats().FlagFences == 0 {
		t.Error("no flag fence recorded")
	}
}

func TestVDMACopyWithNotifyAndCompletion(t *testing.T) {
	r := newRig(t, 2, pcie.AckHost)
	msg := pattern(2048, 8)
	const (
		srcTile, srcOff = 0, 0
		dstTile, dstOff = 3, 128
		notifyOff       = 8000
		complOff        = 8064
	)
	var complSeen, dataOK, notifySeen bool
	r.chips[0].Launch(0, "requester", func(ctx *scc.Ctx) {
		ctx.WriteMPB(0, srcTile, srcOff, msg)
		ctx.FlushWCB()
		bank := EncodeBank(BankCommand{
			DstDev: 1, DstTile: dstTile, DstOff: dstOff,
			Count: len(msg), SrcOff: srcOff,
			Cmd:       CmdCopy,
			Flags:     FlagNotifyDest | FlagCompletion,
			NotifyOff: notifyOff, NotifyVal: 0xAB,
			ComplOff: complOff, ComplVal: 0xCD,
		})
		ctx.MMIOWrite(0, 0, bank[:])
		ctx.FlushWCB()
		// Spin on the completion flag in our own MPB, as the paper's
		// §3.3 describes.
		ctx.WaitFlag(srcTile, complOff, func(b byte) bool { return b == 0xCD })
		complSeen = true
	})
	r.chips[1].Launch(6, "receiver", func(ctx *scc.Ctx) { // core 6 = tile 3
		ctx.WaitFlag(dstTile, notifyOff, func(b byte) bool { return b == 0xAB })
		notifySeen = true
		got := make([]byte, len(msg))
		ctx.InvalidateMPB()
		ctx.ReadMPB(1, dstTile, dstOff, got)
		dataOK = bytes.Equal(got, msg)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !complSeen || !notifySeen {
		t.Fatalf("compl=%v notify=%v, want both", complSeen, notifySeen)
	}
	if !dataOK {
		t.Error("vDMA copied wrong data (notify overtook payload?)")
	}
	if r.task.Stats().VDMACopies != 1 {
		t.Errorf("vdma copies = %d, want 1", r.task.Stats().VDMACopies)
	}
}

func TestVDMARegisterFusionSingleTransaction(t *testing.T) {
	// Programming the controller must cost one posted MMIO write, not
	// three synchronous ones: total well under a host round trip.
	r := newRig(t, 2, pcie.AckHost)
	var cost sim.Cycles
	r.chips[0].Launch(0, "prog", func(ctx *scc.Ctx) {
		bank := EncodeBank(BankCommand{Cmd: CmdInvalidate, SrcOff: 0, Count: 32})
		t0 := ctx.Now()
		ctx.MMIOWrite(0, 0, bank[:])
		ctx.FlushWCB()
		cost = ctx.Now() - t0
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	rt := sim.Cycles(2*5200 + 160)
	if cost >= rt {
		t.Errorf("vDMA programming cost %d cycles — not posted (round trip is %d)", cost, rt)
	}
}

func TestMMIOReadReturnsRegisterState(t *testing.T) {
	r := newRig(t, 1, pcie.AckHost)
	want := EncodeBank(BankCommand{DstDev: 0, DstTile: 7, DstOff: 96, Count: 123, SrcOff: 45})
	got := make([]byte, BankBytes)
	r.chips[0].Launch(2, "prog", func(ctx *scc.Ctx) {
		ctx.MMIOWrite(0, 2*BankBytes, want[:])
		ctx.FlushWCB()
		ctx.Delay(50_000)
		ctx.MMIORead(0, 2*BankBytes, got)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[:]) {
		t.Errorf("register readback mismatch:\ngot  %v\nwant %v", got, want[:])
	}
}

func TestBankCommandEncodeDecodeRoundTrip(t *testing.T) {
	in := BankCommand{
		DstDev: 4, DstTile: 23, DstOff: 16352,
		Count: 7392, SrcOff: 8192,
		Cmd: CmdCopy, Flags: FlagNotifyDest | FlagCompletion,
		NotifyOff: 16000, ComplOff: 7680,
		NotifyVal: 0x5A, ComplVal: 0xA5,
	}
	bank := EncodeBank(in)
	out := decodeBank(bank[:])
	if out.DstDev != in.DstDev || out.DstTile != in.DstTile || out.DstOff != in.DstOff ||
		out.Count != in.Count || out.SrcOff != in.SrcOff || out.Cmd != in.Cmd ||
		out.Flags != in.Flags || out.NotifyOff != in.NotifyOff || out.ComplOff != in.ComplOff ||
		out.NotifyVal != in.NotifyVal || out.ComplVal != in.ComplVal {
		t.Errorf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestSIFBufferEviction(t *testing.T) {
	k := sim.NewKernel()
	sb := newSIFBuffer(k, 0, 2)
	sb.insert(1, pattern(32, 1))
	sb.insert(2, pattern(32, 2))
	sb.insert(3, pattern(32, 3)) // evicts 1
	if _, ok := sb.take(1); ok {
		t.Error("evicted line still present")
	}
	if d, ok := sb.take(3); !ok || d[0] != pattern(32, 3)[0] {
		t.Error("line 3 missing or wrong")
	}
	if sb.evictions != 1 {
		t.Errorf("evictions = %d, want 1", sb.evictions)
	}
}

func TestHostWCBDirtySpans(t *testing.T) {
	k := sim.NewKernel()
	rg := &Region{Dev: 0, Tile: 0, Off: 64, Len: 256}
	w := newHostWCB(k, rg)
	w.absorb(64, pattern(32, 1), 0xFFFFFFFF)
	w.absorb(128, pattern(32, 2), 0x0000000F) // only 4 bytes
	spans := w.takeDirtySpans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].off != 64 || len(spans[0].data) != 32 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].off != 128 || len(spans[1].data) != 4 {
		t.Errorf("span 1 off=%d len=%d, want 128/4", spans[1].off, len(spans[1].data))
	}
	if w.dirtyBytes != 0 {
		t.Error("dirty bytes not cleared")
	}
	if spans := w.takeDirtySpans(); spans != nil {
		t.Error("second take should be empty")
	}
}

func TestDeterministicInterDeviceRun(t *testing.T) {
	run := func() sim.Cycles {
		r := newRig(t, 3, pcie.AckHost)
		for d := 0; d < 3; d++ {
			d := d
			r.chips[d].Launch(0, "w", func(ctx *scc.Ctx) {
				for i := 0; i < 3; i++ {
					ctx.WriteMPB((d+1)%3, 2, 0, pattern(64, byte(d)))
					ctx.FlushWCB()
					buf := make([]byte, 64)
					ctx.InvalidateMPB()
					ctx.ReadMPB((d+2)%3, 2, 0, buf)
				}
			})
		}
		if err := r.k.Run(); err != nil {
			t.Fatal(err)
		}
		return r.k.Now()
	}
	first := run()
	for i := 0; i < 4; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic: run %d ended at %d, first %d", i, got, first)
		}
	}
}
