package host

import (
	"bytes"
	"testing"
	"testing/quick"

	"vscc/internal/mem"
	"vscc/internal/pcie"
	"vscc/internal/scc"
	"vscc/internal/sim"
)

// TestPropertyCacheCoherenceProtocol model-checks the software cache:
// for any interleaving of owner writes (each followed by the mandated
// invalidate+update commands) and remote reads, the reader always
// observes the owner's latest published data — never a torn or stale
// value — when the paper's explicit-consistency discipline is followed.
func TestPropertyCacheCoherenceProtocol(t *testing.T) {
	f := func(ops []struct {
		Off  uint8 // line index 0..7
		Val  byte
		Wait uint8
	}) bool {
		if len(ops) > 12 {
			ops = ops[:12]
		}
		k := sim.NewKernel()
		chips := []*scc.Chip{scc.NewChip(k, 0, scc.DefaultParams()), scc.NewChip(k, 1, scc.DefaultParams())}
		fabric, err := pcie.New(2, pcie.DefaultParams(), pcie.AckHost)
		if err != nil {
			t.Fatal(err)
		}
		task, err := New(k, fabric, chips, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		const regionLen = 8 * mem.LineSize
		rg := &Region{Dev: 0, Tile: 0, Off: 0, Len: regionLen, Kind: KindData, Mode: ModeCached, Owner: 0}
		if err := task.Register(rg); err != nil {
			t.Fatal(err)
		}
		flags := &Region{Dev: 0, Tile: 0, Off: 8192 - 32, Len: 32, Kind: KindFlag, Mode: ModeTransparent, Owner: 0}
		if err := task.Register(flags); err != nil {
			t.Fatal(err)
		}

		// Shadow model of the owner's published state.
		published := make([]byte, regionLen)
		ok := true

		chips[0].Launch(0, "owner", func(ctx *scc.Ctx) {
			seq := byte(0)
			for _, op := range ops {
				off := int(op.Off%8) * mem.LineSize
				line := bytes.Repeat([]byte{op.Val}, mem.LineSize)
				// Publish discipline: invalidate the host copy, write,
				// update, raise the version flag.
				bankInv := EncodeBank(BankCommand{Cmd: CmdInvalidate, SrcOff: 0, Count: regionLen})
				ctx.MMIOWrite(0, 0, bankInv[:])
				ctx.FlushWCB()
				ctx.WriteMPB(0, 0, off, line)
				ctx.FlushWCB()
				copy(published[off:], line)
				bankUpd := EncodeBank(BankCommand{Cmd: CmdUpdate, SrcOff: 0, Count: regionLen})
				ctx.MMIOWrite(0, 0, bankUpd[:])
				ctx.FlushWCB()
				seq++
				ctx.WriteMPB(0, 0, 8192-32, []byte{seq})
				ctx.FlushWCB()
				ctx.Delay(sim.Cycles(op.Wait) * 1000)
				// Wait for the reader's ack before mutating again, as
				// the relaxed-consistency contract requires.
				ctx.WaitFlag(0, 8192-31, func(b byte) bool { return b == seq })
			}
		})
		chips[1].Launch(0, "reader", func(ctx *scc.Ctx) {
			seq := byte(0)
			for range ops {
				seq++
				want := seq
				// Wait for the version flag via the (bypassing) flag path.
				var v [1]byte
				for {
					ctx.InvalidateMPB()
					ctx.ReadMPB(0, 0, 8192-32, v[:])
					if v[0] == want {
						break
					}
					ctx.Delay(2000)
				}
				got := make([]byte, regionLen)
				ctx.InvalidateMPB()
				ctx.ReadMPB(0, 0, 0, got)
				if !bytes.Equal(got, published) {
					ok = false
				}
				// Ack so the owner may mutate again.
				ctx.WriteMPB(0, 0, 8192-31, []byte{seq})
				ctx.FlushWCB()
			}
		})
		if err := k.Run(); err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
