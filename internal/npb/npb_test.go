package npb

import (
	"math"
	"testing"
	"testing/quick"

	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

func TestClassLookup(t *testing.T) {
	c, err := ClassByName("C")
	if err != nil || c.N != 162 || c.Iterations != 200 {
		t.Fatalf("class C = %+v, %v", c, err)
	}
	if _, err := ClassByName("Z"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestDecompValidation(t *testing.T) {
	if _, err := NewDecomp(12, 5); err == nil {
		t.Error("non-square rank count accepted")
	}
	if _, err := NewDecomp(3, 16); err == nil {
		t.Error("q > N accepted")
	}
	d, err := NewDecomp(162, 225)
	if err != nil {
		t.Fatal(err)
	}
	if d.Q != 15 {
		t.Errorf("q = %d, want 15", d.Q)
	}
}

func TestDecompSizesSumToN(t *testing.T) {
	for _, c := range []struct{ n, ranks int }{{12, 4}, {12, 9}, {162, 64}, {162, 225}, {24, 16}} {
		d, err := NewDecomp(c.n, c.ranks)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for i := 0; i < d.Q; i++ {
			sum += d.Size(i)
			if i > 0 && d.Start(i) != d.Start(i-1)+d.Size(i-1) {
				t.Errorf("n=%d ranks=%d: starts not contiguous", c.n, c.ranks)
			}
		}
		if sum != c.n {
			t.Errorf("n=%d ranks=%d: sizes sum to %d", c.n, c.ranks, sum)
		}
	}
}

func TestMultiPartitionProperties(t *testing.T) {
	d, err := NewDecomp(162, 64)
	if err != nil {
		t.Fatal(err)
	}
	q := d.Q
	// Every cell owned exactly once; every rank owns one cell per slab in
	// every dimension.
	owned := map[[3]int]int{}
	for rank := 0; rank < d.Ranks(); rank++ {
		seenX, seenY, seenZ := map[int]bool{}, map[int]bool{}, map[int]bool{}
		for c := 0; c < q; c++ {
			cx, cy, cz := d.CellCoord(rank, c)
			key := [3]int{cx, cy, cz}
			if prev, dup := owned[key]; dup {
				t.Fatalf("cell %v owned by both %d and %d", key, prev, rank)
			}
			owned[key] = rank
			if d.OwnerOf(cx, cy, cz) != rank {
				t.Fatalf("OwnerOf(%v) != %d", key, rank)
			}
			seenX[cx] = true
			seenY[cy] = true
			seenZ[cz] = true
		}
		if len(seenX) != q || len(seenY) != q || len(seenZ) != q {
			t.Fatalf("rank %d does not cover every slab", rank)
		}
	}
	if len(owned) != q*q*q {
		t.Fatalf("owned %d cells, want %d", len(owned), q*q*q)
	}
}

func TestNeighborMatchesAdjacentCellOwner(t *testing.T) {
	d, _ := NewDecomp(64, 16)
	q := d.Q
	for rank := 0; rank < d.Ranks(); rank++ {
		for c := 0; c < q; c++ {
			cx, cy, cz := d.CellCoord(rank, c)
			if cx < q-1 {
				if want, got := d.OwnerOf(cx+1, cy, cz), d.Neighbor(rank, DimX, +1); want != got {
					t.Fatalf("x+ neighbor of rank %d: %d != %d", rank, got, want)
				}
			}
			if cy > 0 {
				if want, got := d.OwnerOf(cx, cy-1, cz), d.Neighbor(rank, DimY, -1); want != got {
					t.Fatalf("y- neighbor of rank %d: %d != %d", rank, got, want)
				}
			}
			if cz < q-1 {
				if want, got := d.OwnerOf(cx, cy, cz+1), d.Neighbor(rank, DimZ, +1); want != got {
					t.Fatalf("z+ neighbor of rank %d: %d != %d", rank, got, want)
				}
			}
		}
	}
}

func TestCellAtSlabConsistent(t *testing.T) {
	d, _ := NewDecomp(24, 9)
	for rank := 0; rank < d.Ranks(); rank++ {
		for slab := 0; slab < d.Q; slab++ {
			c := d.CellWithX(rank, slab)
			cx, _, _ := d.CellCoord(rank, c)
			if cx != slab {
				t.Fatalf("CellWithX(%d,%d) = cell %d at cx=%d", rank, slab, c, cx)
			}
			c = d.CellWithY(rank, slab)
			_, cy, _ := d.CellCoord(rank, c)
			if cy != slab {
				t.Fatalf("CellWithY wrong")
			}
		}
	}
}

func TestSquareCounts(t *testing.T) {
	got := SquareCounts(240)
	want := []int{4, 9, 16, 25, 36, 49, 64, 81, 100, 121, 144, 169, 196, 225}
	if len(got) != len(want) {
		t.Fatalf("counts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestInvBlockProperty(t *testing.T) {
	f := func(seed int64) bool {
		// Build a dominant block from the seed.
		var b Block
		x := seed
		next := func() float64 {
			x = x*6364136223846793005 + 1442695040888963407
			return float64(x%1000) / 5000 // [-0.2, 0.2)
		}
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				b[i][j] = next()
			}
			b[i][i] += 2 // dominance
		}
		inv := invBlock(b)
		prod := mulBlock(b, inv)
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod[i][j]-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// runBT runs the solver on a single chip with the given rank count.
func runBT(t *testing.T, class Class, ranks, iters int, timing bool) Result {
	t.Helper()
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, err := rcce.LinearPlaces([]*scc.Chip{chip}, ranks)
	if err != nil {
		t.Fatal(err)
	}
	session, err := rcce.NewSession(k, []*scc.Chip{chip}, places)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecomp(class.N, ranks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOn(session, d, Config{Class: class, Iterations: iters, Timing: timing})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSerialVsParallelChecksums(t *testing.T) {
	// The heart of the verification: 1, 4 and 9 ranks must compute the
	// same solution up to floating-point reduction order.
	const iters = 3
	ref := runBT(t, ClassS, 1, iters, false)
	if ref.Checksum == (Vec5{}) {
		t.Fatal("zero checksum — solver did nothing")
	}
	for _, ranks := range []int{4, 9} {
		got := runBT(t, ClassS, ranks, iters, false)
		for m := 0; m < 5; m++ {
			rel := math.Abs(got.Checksum[m]-ref.Checksum[m]) / math.Abs(ref.Checksum[m])
			if rel > 1e-9 {
				t.Errorf("%d ranks: checksum[%d] = %.15g vs serial %.15g (rel %.2e)",
					ranks, m, got.Checksum[m], ref.Checksum[m], rel)
			}
		}
	}
}

func TestChecksumEvolves(t *testing.T) {
	// The solution must actually change over iterations (the solver is
	// not a no-op).
	one := runBT(t, ClassS, 4, 1, false)
	three := runBT(t, ClassS, 4, 3, false)
	same := true
	for m := 0; m < 5; m++ {
		if one.Checksum[m] != three.Checksum[m] {
			same = false
		}
	}
	if same {
		t.Error("checksum identical after 1 and 3 iterations")
	}
}

func TestCrossDeviceBTMatchesSingleChip(t *testing.T) {
	// Data integrity through the vSCC host paths: a 4-rank class S run
	// spread over two devices must produce the single-chip checksum.
	ref := runBT(t, ClassS, 4, 2, false)
	for _, scheme := range []vscc.Scheme{vscc.SchemeVDMA, vscc.SchemeCachedGet, vscc.SchemeRemotePut} {
		k := sim.NewKernel()
		sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		// Two ranks per device.
		places := []rcce.Place{{Dev: 0, Core: 0}, {Dev: 0, Core: 1}, {Dev: 1, Core: 0}, {Dev: 1, Core: 1}}
		session, err := sys.NewSessionAt(places)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := NewDecomp(ClassS.N, 4)
		res, err := RunOn(session, d, Config{Class: ClassS, Iterations: 2})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		for m := 0; m < 5; m++ {
			rel := math.Abs(res.Checksum[m]-ref.Checksum[m]) / math.Abs(ref.Checksum[m])
			if rel > 1e-9 {
				t.Errorf("%v: checksum[%d] differs by %.2e", scheme, m, rel)
			}
		}
	}
}

func TestTimingModeMatchesRealTraffic(t *testing.T) {
	// Timing mode must exchange exactly the messages of the real solver.
	capture := func(timing bool) *trace.Matrix {
		k := sim.NewKernel()
		chip := scc.NewChip(k, 0, scc.DefaultParams())
		places, _ := rcce.LinearPlaces([]*scc.Chip{chip}, 9)
		m := trace.NewMatrix(9, 0)
		session, err := rcce.NewSession(k, []*scc.Chip{chip}, places, rcce.WithTrafficObserver(m.Record))
		if err != nil {
			t.Fatal(err)
		}
		d, _ := NewDecomp(ClassS.N, 9)
		if _, err := RunOn(session, d, Config{Class: ClassS, Iterations: 2, Timing: timing}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	real := capture(false)
	timing := capture(true)
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if real.Bytes(i, j) != timing.Bytes(i, j) {
				t.Errorf("traffic[%d][%d]: real %d vs timing %d", i, j, real.Bytes(i, j), timing.Bytes(i, j))
			}
		}
	}
	if real.Total() == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestTimingModeFaster(t *testing.T) {
	// Timing mode must be much cheaper in wall-clock but report the same
	// simulated-communication structure; here we just check it runs and
	// produces a positive rate.
	res := runBT(t, ClassS, 4, 2, true)
	if res.GFlops <= 0 {
		t.Errorf("timing-mode GFlops = %v", res.GFlops)
	}
}

func TestGFlopsScalesWithRanks(t *testing.T) {
	// More ranks must run faster (class W is big enough for 9 ranks to
	// beat 4 clearly on a single chip).
	r4 := runBT(t, ClassW, 4, 2, true)
	r9 := runBT(t, ClassW, 9, 2, true)
	r16 := runBT(t, ClassW, 16, 2, true)
	if !(r16.GFlops > r9.GFlops && r9.GFlops > r4.GFlops) {
		t.Errorf("no scaling: 4->%.3f 9->%.3f 16->%.3f GFLOP/s", r4.GFlops, r9.GFlops, r16.GFlops)
	}
}

func TestTrafficPatternNeighborly(t *testing.T) {
	// Fig. 8's qualitative claim: the BT pattern is neighbour-based with
	// ring wraps; most traffic sits close to the diagonal.
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, _ := rcce.LinearPlaces([]*scc.Chip{chip}, 16)
	m := trace.NewMatrix(16, 0)
	session, err := rcce.NewSession(k, []*scc.Chip{chip}, places, rcce.WithTrafficObserver(m.Record))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewDecomp(24, 16)
	if _, err := RunOn(session, d, Config{Class: ClassW, Iterations: 1, Timing: true}); err != nil {
		t.Fatal(err)
	}
	// q=4: neighbours at rank distance 1 (x), 4 (y) and 5 (z) with wraps.
	if frac := m.NeighborFraction(5); frac < 0.95 {
		t.Errorf("neighbour fraction = %.2f, want >= 0.95", frac)
	}
	src, dest, bytes := m.MaxPair()
	if bytes == 0 {
		t.Fatal("empty matrix")
	}
	t.Logf("max pair %d->%d: %.2f MB", src, dest, float64(bytes)/1e6)
}

func TestMessageVolumePrediction(t *testing.T) {
	// The analytic per-iteration x-neighbour volume must match the
	// simulated traffic: run 1 iteration, compare rank 0 -> x-neighbour.
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, _ := rcce.LinearPlaces([]*scc.Chip{chip}, 9)
	m := trace.NewMatrix(9, 0)
	session, err := rcce.NewSession(k, []*scc.Chip{chip}, places, rcce.WithTrafficObserver(m.Record))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewDecomp(12, 9)
	if _, err := RunOn(session, d, Config{Class: ClassS, Iterations: 1, Timing: true}); err != nil {
		t.Fatal(err)
	}
	xNbr := d.Neighbor(0, DimX, +1)
	got := m.Bytes(0, xNbr)
	want := uint64(d.MessageVolume(0))
	// The measured volume also includes the y/z traffic if the x
	// neighbour coincides; for q=3 the x/y/z neighbours are distinct.
	if got < want {
		t.Errorf("rank0->%d volume %d below prediction %d", xNbr, got, want)
	}
	if got > want*2 {
		t.Errorf("rank0->%d volume %d far above prediction %d", xNbr, got, want)
	}
}

func TestClassCSixtyFourRankVolumeMatchesPaper(t *testing.T) {
	// Paper §4.2: "the maximum communication traffic between two ranks is
	// about 186 MB" for class C, 64 ranks, 200 iterations. Check the
	// analytic prediction (copy_faces + forward boundary + the backward
	// flow from the neighbour's perspective).
	d, err := NewDecomp(162, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Max over ranks of the one-directional volume, plus the backward
	// boundary that flows on the same matrix cell (sent by the neighbour
	// during back substitution of the reverse ring... counted for the
	// heaviest pair as forward volume only).
	maxVol := 0
	for rank := 0; rank < 64; rank++ {
		if v := d.MessageVolume(rank); v > maxVol {
			maxVol = v
		}
	}
	totalMB := float64(maxVol) * 200 / 1e6
	if totalMB < 120 || totalMB > 260 {
		t.Errorf("max pair volume = %.0f MB for 200 iterations, want the paper's ~186 MB class", totalMB)
	}
	t.Logf("predicted max pair volume: %.1f MB (paper: ~186 MB)", totalMB)
}
