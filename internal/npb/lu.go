package npb

import (
	"fmt"
	"math"

	"vscc/internal/rcce"
)

// NPB LU (simplified in the same spirit as the BT solver): the SSOR
// pseudo-application. The grid is decomposed in two dimensions (each
// rank owns a full-depth column block); every iteration evaluates a
// right-hand side from ghost faces, then performs a lower-triangular
// sweep — a 2D wavefront from the (0,0) corner where each k-plane needs
// the west and north boundary values of the same plane — and a mirrored
// upper-triangular sweep from the opposite corner.
//
// Communication-wise LU is BT's counterpart: per plane and sweep a rank
// exchanges only a thin boundary pencil (a few hundred bytes at the
// paper's class sizes), but does so N planes x 2 sweeps per iteration —
// many small latency-bound messages instead of BT's few bandwidth-bound
// ones. That contrast is exactly what makes the vSCC scheme choice (and
// the small-message direct threshold, §3.3) visible at application
// level.
const (
	// FlopsLUPerPointIter matches NPB LU's arithmetic intensity (class A:
	// ~119 Gop over 64^3 x 250 iterations).
	FlopsLUPerPointIter = 1820.0
	luAlpha             = 0.18
	luBeta              = 1.9
	luGamma             = 0.02
	luDt                = 0.12
	// LU phase shares.
	luShareRHS   = 0.30
	luShareSweep = 0.33 // per sweep (lower, upper)
	luShareAdd   = 0.04
)

// LUDecomp is the 2D column decomposition.
type LUDecomp struct {
	N, Px, Py int

	xs, xo []int // sizes and offsets along x
	ys, yo []int
}

// NewLUDecomp factors ranks into the most square Px x Py grid with
// Px >= Py and splits the N^3 grid into full-depth column blocks.
func NewLUDecomp(n, ranks int) (*LUDecomp, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("npb: %d processes", ranks)
	}
	py := int(math.Sqrt(float64(ranks)))
	for ; py >= 1; py-- {
		if ranks%py == 0 {
			break
		}
	}
	px := ranks / py
	if px > n || py > n {
		return nil, fmt.Errorf("npb: %dx%d process grid exceeds the %d-point grid", px, py, n)
	}
	d := &LUDecomp{N: n, Px: px, Py: py}
	split := func(parts int) (sizes, offs []int) {
		base, rem, off := n/parts, n%parts, 0
		for i := 0; i < parts; i++ {
			sz := base
			if i < rem {
				sz++
			}
			sizes = append(sizes, sz)
			offs = append(offs, off)
			off += sz
		}
		return
	}
	d.xs, d.xo = split(px)
	d.ys, d.yo = split(py)
	return d, nil
}

// Ranks returns the process count.
func (d *LUDecomp) Ranks() int { return d.Px * d.Py }

// Coord returns a rank's process-grid position (rank = pi + pj*Px).
func (d *LUDecomp) Coord(rank int) (pi, pj int) { return rank % d.Px, rank / d.Px }

// RankAt is the inverse of Coord (no wraparound: LU's grid is open).
func (d *LUDecomp) RankAt(pi, pj int) int {
	if pi < 0 || pi >= d.Px || pj < 0 || pj >= d.Py {
		return -1
	}
	return pi + pj*d.Px
}

// luState is the per-rank solver state.
type luState struct {
	r   *rcce.Rank
	d   *LUDecomp
	cfg Config

	pi, pj int
	nx, ny int
	x0, y0 int

	u   []Vec5 // (nx+2) x (ny+2) x N with ghost skirt in x/y
	rhs []Vec5 // nx x ny x N
}

func (s *luState) iu(i, j, k int) int { return (k*(s.ny+2)+(j+1))*(s.nx+2) + (i + 1) }
func (s *luState) ir(i, j, k int) int { return (k*s.ny+j)*s.nx + i }
func (s *luState) points() int        { return s.nx * s.ny * s.d.N }

// LUProgram returns the SPMD body for the LU solver; res is filled by
// rank 0. cfg.Class supplies N; cfg.Timing works as for BT.
func LUProgram(d *LUDecomp, cfg Config, res *Result) func(*rcce.Rank) {
	return func(r *rcce.Rank) {
		s := &luState{r: r, d: d, cfg: cfg}
		s.setup()
		iters := cfg.iterations()
		r.Barrier()
		t0 := r.Now()
		for it := 0; it < iters; it++ {
			s.exchangeFaces()
			s.computeRHS()
			s.sweep(false) // lower: from the (0,0) corner
			s.sweep(true)  // upper: from the (Px-1,Py-1) corner
			s.add()
		}
		r.Barrier()
		elapsed := r.Now() - t0
		sum := s.checksum()
		if err := r.Allreduce(rcce.OpSum, sum[:]); err != nil {
			panic(err)
		}
		if r.ID() == 0 {
			n := float64(d.N)
			res.Ranks = d.Ranks()
			res.Iterations = iters
			res.Cycles = elapsed
			res.GFlops = r.Ctx().Params().GFlops(n*n*n*FlopsLUPerPointIter*float64(iters), elapsed)
			copy(res.Checksum[:], sum[:])
		}
	}
}

func (s *luState) setup() {
	s.pi, s.pj = s.d.Coord(s.r.ID())
	s.nx, s.ny = s.d.xs[s.pi], s.d.ys[s.pj]
	s.x0, s.y0 = s.d.xo[s.pi], s.d.yo[s.pj]
	if s.cfg.Timing {
		return
	}
	s.u = make([]Vec5, (s.nx+2)*(s.ny+2)*s.d.N)
	s.rhs = make([]Vec5, s.points())
	for k := 0; k < s.d.N; k++ {
		for j := -1; j <= s.ny; j++ {
			for i := -1; i <= s.nx; i++ {
				gx, gy := s.x0+i, s.y0+j
				var v Vec5
				for m := 0; m < 5; m++ {
					if gx < 0 || gy < 0 || gx >= s.d.N || gy >= s.d.N {
						v[m] = boundaryU(m)
					} else {
						v[m] = initialU(gx, gy, k, m)
					}
				}
				s.u[s.iu(i, j, k)] = v
			}
		}
	}
}

func (s *luState) chargeFlops(share float64) {
	s.r.ComputeFlops(float64(s.points()) * FlopsLUPerPointIter * share / FlopEfficiency)
}

// exchangeFaces swaps the full-depth x/y ghost skirts of u with the four
// neighbours (one message per direction per iteration). The process grid
// is open (no wraparound), so a simple even/odd ordering is
// deadlock-free.
func (s *luState) exchangeFaces() {
	type dirSpec struct {
		peer   int
		parity int
		count  int // points per face
		pack   func(buf []byte)
		unpack func(buf []byte)
	}
	mkCol := func(i int) func([]byte) {
		return func(buf []byte) {
			off := 0
			for k := 0; k < s.d.N; k++ {
				for j := 0; j < s.ny; j++ {
					off = putVec5(buf, off, s.u[s.iu(i, j, k)])
				}
			}
		}
	}
	unCol := func(i int) func([]byte) {
		return func(buf []byte) {
			off := 0
			for k := 0; k < s.d.N; k++ {
				for j := 0; j < s.ny; j++ {
					var v Vec5
					off = getVec5(buf, off, &v)
					s.u[s.iu(i, j, k)] = v
				}
			}
		}
	}
	mkRow := func(j int) func([]byte) {
		return func(buf []byte) {
			off := 0
			for k := 0; k < s.d.N; k++ {
				for i := 0; i < s.nx; i++ {
					off = putVec5(buf, off, s.u[s.iu(i, j, k)])
				}
			}
		}
	}
	unRow := func(j int) func([]byte) {
		return func(buf []byte) {
			off := 0
			for k := 0; k < s.d.N; k++ {
				for i := 0; i < s.nx; i++ {
					var v Vec5
					off = getVec5(buf, off, &v)
					s.u[s.iu(i, j, k)] = v
				}
			}
		}
	}
	dirs := []dirSpec{
		{peer: s.d.RankAt(s.pi+1, s.pj), parity: s.pi % 2, count: s.ny * s.d.N, pack: mkCol(s.nx - 1), unpack: unCol(s.nx)},
		{peer: s.d.RankAt(s.pi-1, s.pj), parity: s.pi % 2, count: s.ny * s.d.N, pack: mkCol(0), unpack: unCol(-1)},
		{peer: s.d.RankAt(s.pi, s.pj+1), parity: s.pj % 2, count: s.nx * s.d.N, pack: mkRow(s.ny - 1), unpack: unRow(s.ny)},
		{peer: s.d.RankAt(s.pi, s.pj-1), parity: s.pj % 2, count: s.nx * s.d.N, pack: mkRow(0), unpack: unRow(-1)},
	}
	for _, dir := range dirs {
		if dir.peer < 0 {
			continue
		}
		send := func() {
			buf := make([]byte, dir.count*5*8)
			if !s.cfg.Timing {
				dir.pack(buf)
			}
			if err := s.r.Send(dir.peer, buf); err != nil {
				panic(err)
			}
		}
		recv := func() {
			buf := make([]byte, dir.count*5*8)
			if err := s.r.Recv(dir.peer, buf); err != nil {
				panic(err)
			}
			if !s.cfg.Timing {
				dir.unpack(buf)
			}
		}
		if dir.parity == 0 {
			send()
			recv()
		} else {
			recv()
			send()
		}
	}
}

// computeRHS evaluates the coupled stencil (k-neighbours are local).
func (s *luState) computeRHS() {
	defer s.chargeFlops(luShareRHS)
	if s.cfg.Timing {
		return
	}
	for k := 0; k < s.d.N; k++ {
		for j := 0; j < s.ny; j++ {
			for i := 0; i < s.nx; i++ {
				c := s.u[s.iu(i, j, k)]
				xm := s.u[s.iu(i-1, j, k)]
				xp := s.u[s.iu(i+1, j, k)]
				ym := s.u[s.iu(i, j-1, k)]
				yp := s.u[s.iu(i, j+1, k)]
				var zm, zp Vec5
				if k > 0 {
					zm = s.u[s.iu(i, j, k-1)]
				} else {
					for m := 0; m < 5; m++ {
						zm[m] = boundaryU(m)
					}
				}
				if k < s.d.N-1 {
					zp = s.u[s.iu(i, j, k+1)]
				} else {
					for m := 0; m < 5; m++ {
						zp[m] = boundaryU(m)
					}
				}
				var out Vec5
				for m := 0; m < 5; m++ {
					lap := xm[m] + xp[m] + ym[m] + yp[m] + zm[m] + zp[m] - 6*c[m]
					out[m] = luDt * (lap + luGamma*(c[(m+1)%5]-c[m]))
				}
				s.rhs[s.ir(i, j, k)] = out
			}
		}
	}
}

// sweep performs the SSOR triangular solve: a 2D wavefront over the
// process grid, one k-plane at a time. upper mirrors everything.
func (s *luState) sweep(upper bool) {
	defer s.chargeFlops(luShareSweep)
	// Neighbours in the sweep's flow direction.
	dirI, dirJ := 1, 1
	if upper {
		dirI, dirJ = -1, -1
	}
	recvW := s.d.RankAt(s.pi-dirI, s.pj)
	recvN := s.d.RankAt(s.pi, s.pj-dirJ)
	sendE := s.d.RankAt(s.pi+dirI, s.pj)
	sendS := s.d.RankAt(s.pi, s.pj+dirJ)

	colBytes := s.ny * 5 * 8
	rowBytes := s.nx * 5 * 8
	westCol := make([]Vec5, s.ny)
	northRow := make([]Vec5, s.nx)
	for plane := 0; plane < s.d.N; plane++ {
		k := plane
		if upper {
			k = s.d.N - 1 - plane
		}
		// Boundary pencils of this plane from the upstream neighbours.
		if recvW >= 0 {
			buf := make([]byte, colBytes)
			if err := s.r.Recv(recvW, buf); err != nil {
				panic(err)
			}
			if !s.cfg.Timing {
				off := 0
				for j := 0; j < s.ny; j++ {
					off = getVec5(buf, off, &westCol[j])
				}
			}
		} else if !s.cfg.Timing {
			for j := range westCol {
				westCol[j] = Vec5{}
			}
		}
		if recvN >= 0 {
			buf := make([]byte, rowBytes)
			if err := s.r.Recv(recvN, buf); err != nil {
				panic(err)
			}
			if !s.cfg.Timing {
				off := 0
				for i := 0; i < s.nx; i++ {
					off = getVec5(buf, off, &northRow[i])
				}
			}
		} else if !s.cfg.Timing {
			for i := range northRow {
				northRow[i] = Vec5{}
			}
		}
		if !s.cfg.Timing {
			s.solvePlane(k, upper, westCol, northRow)
		}
		// Downstream boundary pencils.
		if sendE >= 0 {
			buf := make([]byte, colBytes)
			if !s.cfg.Timing {
				off := 0
				ei := s.nx - 1
				if upper {
					ei = 0
				}
				for j := 0; j < s.ny; j++ {
					off = putVec5(buf, off, s.rhs[s.ir(ei, j, k)])
				}
			}
			if err := s.r.Send(sendE, buf); err != nil {
				panic(err)
			}
		}
		if sendS >= 0 {
			buf := make([]byte, rowBytes)
			if !s.cfg.Timing {
				off := 0
				ej := s.ny - 1
				if upper {
					ej = 0
				}
				for i := 0; i < s.nx; i++ {
					off = putVec5(buf, off, s.rhs[s.ir(i, ej, k)])
				}
			}
			if err := s.r.Send(sendS, buf); err != nil {
				panic(err)
			}
		}
	}
}

// solvePlane runs the in-plane recursion: every point depends on its
// upstream i/j neighbours (within the plane) and the upstream k plane
// (local). The per-point arithmetic is order-independent given its
// dependencies, so the distributed solution equals the serial one.
func (s *luState) solvePlane(k int, upper bool, westCol, northRow []Vec5) {
	n := s.d.N
	iStart, iEnd, iStep := 0, s.nx, 1
	jStart, jEnd, jStep := 0, s.ny, 1
	kPrev := k - 1
	if upper {
		iStart, iEnd, iStep = s.nx-1, -1, -1
		jStart, jEnd, jStep = s.ny-1, -1, -1
		kPrev = k + 1
	}
	for j := jStart; j != jEnd; j += jStep {
		for i := iStart; i != iEnd; i += iStep {
			var vi, vj, vk Vec5
			if i-iStep >= 0 && i-iStep < s.nx {
				vi = s.rhs[s.ir(i-iStep, j, k)]
			} else {
				vi = westCol[j]
			}
			if j-jStep >= 0 && j-jStep < s.ny {
				vj = s.rhs[s.ir(i, j-jStep, k)]
			} else {
				vj = northRow[i]
			}
			if kPrev >= 0 && kPrev < n {
				vk = s.rhs[s.ir(i, j, kPrev)]
			}
			d := s.rhs[s.ir(i, j, k)]
			var out Vec5
			for m := 0; m < 5; m++ {
				out[m] = (d[m] + luAlpha*(vi[m]+vj[m]+vk[m]) + luGamma*d[(m+1)%5]) / luBeta
			}
			s.rhs[s.ir(i, j, k)] = out
		}
	}
}

// add applies the update.
func (s *luState) add() {
	defer s.chargeFlops(luShareAdd)
	if s.cfg.Timing {
		return
	}
	for k := 0; k < s.d.N; k++ {
		for j := 0; j < s.ny; j++ {
			for i := 0; i < s.nx; i++ {
				rv := s.rhs[s.ir(i, j, k)]
				v := &s.u[s.iu(i, j, k)]
				for m := 0; m < 5; m++ {
					v[m] += rv[m]
				}
			}
		}
	}
}

func (s *luState) checksum() Vec5 {
	var sum Vec5
	if s.cfg.Timing {
		return sum
	}
	for k := 0; k < s.d.N; k++ {
		for j := 0; j < s.ny; j++ {
			for i := 0; i < s.nx; i++ {
				v := s.u[s.iu(i, j, k)]
				for m := 0; m < 5; m++ {
					sum[m] += v[m]
				}
			}
		}
	}
	return sum
}

// RunLU executes the LU solver on an existing session.
func RunLU(session *rcce.Session, d *LUDecomp, cfg Config) (Result, error) {
	if session.NumRanks() != d.Ranks() {
		return Result{}, fmt.Errorf("npb: session has %d ranks, LU decomposition needs %d", session.NumRanks(), d.Ranks())
	}
	var res Result
	if err := session.Run(LUProgram(d, cfg, &res)); err != nil {
		return Result{}, err
	}
	return res, nil
}
