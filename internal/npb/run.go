package npb

import (
	"fmt"

	"vscc/internal/rcce"
)

// RunOn executes BT on an existing session, which must have exactly
// d.Ranks() ranks, and returns rank 0's result.
func RunOn(session *rcce.Session, d *Decomp, cfg Config) (Result, error) {
	if session.NumRanks() != d.Ranks() {
		return Result{}, fmt.Errorf("npb: session has %d ranks, decomposition needs %d", session.NumRanks(), d.Ranks())
	}
	var res Result
	if err := session.Run(Program(d, cfg, &res)); err != nil {
		return Result{}, err
	}
	return res, nil
}

// MessageVolume predicts the per-iteration communication volume in bytes
// between a rank and its +x neighbour — the heaviest pair of the traffic
// matrix (copy_faces plus both sweep boundary flows). The harness uses
// it to cross-check the measured matrix against the paper's ~186 MB
// figure for 64 ranks, class C, 200 iterations.
func (d *Decomp) MessageVolume(rank int) int {
	total := 0
	for c := 0; c < d.Q; c++ {
		cx, cy, cz := d.CellCoord(rank, c)
		if cx >= d.Q-1 {
			continue // no east neighbour for this cell
		}
		face := d.Size(cy) * d.Size(cz)
		total += face * 5 * 8                // copy_faces east face
		total += face * forwardBoundaryBytes // forward elimination boundary
		// The backward boundary flows the other way (from the +x
		// neighbour to us) and lands on their row of the matrix.
	}
	return total
}
