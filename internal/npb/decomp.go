package npb

import (
	"fmt"
	"math"
)

// Dim identifies a sweep/exchange direction.
type Dim int

// The three grid dimensions.
const (
	DimX Dim = iota
	DimY
	DimZ
)

// Decomp is NPB BT's multi-partition decomposition: P = q^2 processes on
// a logical q x q grid; process (pi, pj) owns q cells, cell c sitting at
// cell coordinates ((pi+c) mod q, (pj+c) mod q, c). The diagonal shift
// guarantees that every x/y/z slab contains exactly one cell of every
// process, which keeps all processes busy during the pipelined ADI
// sweeps.
type Decomp struct {
	Q int // cells per dimension; P = Q*Q
	N int // global grid dimension

	sizes  []int // cell interior sizes along one axis
	starts []int // global offsets
}

// NewDecomp builds the decomposition for an N^3 grid on ranks processes.
// ranks must be a square number (the paper: "the application can only
// handle a number of processes, which is a square number") and q may not
// exceed N.
func NewDecomp(n, ranks int) (*Decomp, error) {
	q := int(math.Round(math.Sqrt(float64(ranks))))
	if q*q != ranks || ranks <= 0 {
		return nil, fmt.Errorf("npb: %d processes is not a square number", ranks)
	}
	if q > n {
		return nil, fmt.Errorf("npb: %d cells per dimension exceed the %d-point grid", q, n)
	}
	d := &Decomp{Q: q, N: n}
	base := n / q
	rem := n % q
	off := 0
	for i := 0; i < q; i++ {
		size := base
		if i < rem {
			size++
		}
		d.sizes = append(d.sizes, size)
		d.starts = append(d.starts, off)
		off += size
	}
	return d, nil
}

// Ranks returns the process count.
func (d *Decomp) Ranks() int { return d.Q * d.Q }

// RankCoord returns the (pi, pj) position of a rank on the logical
// process grid (rank = pi + pj*q, as in the NPB sources).
func (d *Decomp) RankCoord(rank int) (pi, pj int) {
	return rank % d.Q, rank / d.Q
}

// RankAt is the inverse of RankCoord, with wraparound.
func (d *Decomp) RankAt(pi, pj int) int {
	return mod(pi, d.Q) + mod(pj, d.Q)*d.Q
}

// CellCoord returns the cell coordinates (cx, cy, cz) of a rank's c-th
// cell.
func (d *Decomp) CellCoord(rank, c int) (cx, cy, cz int) {
	pi, pj := d.RankCoord(rank)
	return mod(pi+c, d.Q), mod(pj+c, d.Q), c
}

// OwnerOf returns the rank owning the cell at (cx, cy, cz).
func (d *Decomp) OwnerOf(cx, cy, cz int) int {
	return d.RankAt(cx-cz, cy-cz)
}

// CellWithX returns which of a rank's cells sits at x-slab cx (every
// slab holds exactly one).
func (d *Decomp) CellWithX(rank, cx int) int {
	pi, _ := d.RankCoord(rank)
	return mod(cx-pi, d.Q)
}

// CellWithY returns which of a rank's cells sits at y-slab cy.
func (d *Decomp) CellWithY(rank, cy int) int {
	_, pj := d.RankCoord(rank)
	return mod(cy-pj, d.Q)
}

// CellWithZ returns which of a rank's cells sits at z-slab cz (trivially
// cz).
func (d *Decomp) CellWithZ(rank, cz int) int { return cz }

// Neighbor returns the rank owning the cells adjacent to rank's cells in
// the given direction (dir = +1 or -1). The multi-partition property
// makes this a single rank per direction; the mapping wraps around the
// process grid, producing the ring pattern of the paper's Fig. 8.
func (d *Decomp) Neighbor(rank int, dim Dim, dir int) int {
	pi, pj := d.RankCoord(rank)
	switch dim {
	case DimX:
		return d.RankAt(pi+dir, pj)
	case DimY:
		return d.RankAt(pi, pj+dir)
	case DimZ:
		// Cell c+1 with the same (cx, cy) belongs to (pi-1, pj-1).
		return d.RankAt(pi-dir, pj-dir)
	}
	panic("npb: bad dimension")
}

// Size and Start return the interior size / global offset of slab i
// along any axis.
func (d *Decomp) Size(i int) int  { return d.sizes[i] }
func (d *Decomp) Start(i int) int { return d.starts[i] }

func mod(a, q int) int {
	m := a % q
	if m < 0 {
		m += q
	}
	return m
}

// SquareCounts returns the square process counts up to max — Fig. 7's x
// axis (4, 9, ..., 225).
func SquareCounts(max int) []int {
	var out []int
	for q := 2; q*q <= max; q++ {
		out = append(out, q*q)
	}
	return out
}
