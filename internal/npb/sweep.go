package npb

// The ADI sweeps. Every x/y/z slab contains exactly one cell of every
// rank (the multi-partition property), so a sweep is a sequence of q
// stages: at stage s each rank eliminates the lines of its slab-s cell,
// receiving the boundary (C', d') planes of the slab-(s-1) cell from its
// ring predecessor and sending its own last plane to the ring successor;
// back-substitution then flows the solution the other way.
//
// RCCE sends are synchronous, and at any stage every rank of a ring
// sends — a naive recv/compute/send order would deadlock on the wrapped
// ring. Ranks at odd ring positions therefore post the next stage's
// receive before their send ("early receive"). Every ring contains both
// parities, so at least one rank is receiving while its predecessor
// sends, and the chain of blocked sends always unwinds.

// forwardBoundaryBytes is C' (5x5) + d' (5) per line.
const forwardBoundaryBytes = (25 + 5) * 8

// backwardBoundaryBytes is the solution vector per line.
const backwardBoundaryBytes = 5 * 8

// sweep performs one pipelined block-tridiagonal solve along dim.
func (s *solver) sweep(dim Dim) {
	q := s.d.Q
	me := s.r.ID()
	prev := s.d.Neighbor(me, dim, -1)
	next := s.d.Neighbor(me, dim, +1)
	evenRing := s.ringParity(dim)%2 == 0
	cellCp := make([][]Block, q)

	if q == 1 {
		ce := s.cells[0]
		cp := s.forwardCell(ce, dim, nil)
		s.backwardCell(ce, dim, cp, nil)
		return
	}

	// Forward elimination, west to east.
	var pending []byte
	for stage := 0; stage < q; stage++ {
		c := s.cellAtSlab(dim, stage)
		ce := s.cells[c]
		in := pending
		pending = nil
		if stage > 0 && in == nil {
			in = s.recvBoundary(prev, ce.facePoints(dim)*forwardBoundaryBytes)
		}
		cp := s.forwardCell(ce, dim, in)
		cellCp[c] = cp
		if stage < q-1 {
			out := s.packForwardBoundary(ce, dim, cp)
			if !evenRing {
				// Early receive: unblock the predecessor's send before
				// issuing our own synchronous send.
				nextCell := s.cells[s.cellAtSlab(dim, stage+1)]
				pending = s.recvBoundary(prev, nextCell.facePoints(dim)*forwardBoundaryBytes)
			}
			if err := s.r.Send(next, out); err != nil {
				panic(err)
			}
		}
	}

	// Back substitution, east to west; the ring direction reverses.
	pending = nil
	for stage := q - 1; stage >= 0; stage-- {
		c := s.cellAtSlab(dim, stage)
		ce := s.cells[c]
		in := pending
		pending = nil
		if stage < q-1 && in == nil {
			in = s.recvBoundary(next, ce.facePoints(dim)*backwardBoundaryBytes)
		}
		s.backwardCell(ce, dim, cellCp[c], in)
		if stage > 0 {
			out := s.packBackwardBoundary(ce, dim)
			if !evenRing {
				prevCell := s.cells[s.cellAtSlab(dim, stage-1)]
				pending = s.recvBoundary(next, prevCell.facePoints(dim)*backwardBoundaryBytes)
			}
			if err := s.r.Send(prev, out); err != nil {
				panic(err)
			}
		}
	}
}

// ringParity keys the deadlock-avoidance parity: the rank's position on
// the sweep ring.
func (s *solver) ringParity(dim Dim) int {
	pi, pj := s.d.RankCoord(s.r.ID())
	if dim == DimY {
		return pj
	}
	return pi // x and z rings both alternate pi
}

// cellAtSlab returns the index of this rank's cell in slab `slab` of dim.
func (s *solver) cellAtSlab(dim Dim, slab int) int {
	switch dim {
	case DimX:
		return s.d.CellWithX(s.r.ID(), slab)
	case DimY:
		return s.d.CellWithY(s.r.ID(), slab)
	default:
		return s.d.CellWithZ(s.r.ID(), slab)
	}
}

// recvBoundary receives one boundary message.
func (s *solver) recvBoundary(from, bytes int) []byte {
	buf := make([]byte, bytes)
	if err := s.r.Recv(from, buf); err != nil {
		panic(err)
	}
	return buf
}

// forwardCell eliminates all lines of a cell along dim. in carries the
// predecessor cell's last-plane (C', d') pairs, nil at the sweep start.
// It returns the cell's C' planes for back substitution and leaves d' in
// rhs. In timing mode it only charges the modelled flops.
func (s *solver) forwardCell(ce *cell, dim Dim, in []byte) []Block {
	s.chargeFlops(ce.points(), shareSolve*0.6)
	if s.cfg.Timing {
		return nil
	}
	n := ce.dimSize(dim)
	lines := ce.facePoints(dim)
	cp := make([]Block, n*lines)
	globalLast := ce.coordIn(dim) == s.d.Q-1
	off := 0
	for line := 0; line < lines; line++ {
		var prevCp Block
		var prevDp Vec5
		if in != nil {
			off = getBlock(in, off, &prevCp)
			off = getVec5(in, off, &prevDp)
		}
		for t := 0; t < n; t++ {
			i, j, k := ce.linePoint(dim, line, t)
			u := ce.u[ce.iu(i, j, k)]
			b := s.coefB(u)
			// B' = B - A*C'_{t-1}
			bp := subBlock(b, mulBlock(s.offA, prevCp))
			inv := invBlock(bp)
			cBlk := s.offA
			if globalLast && t == n-1 {
				cBlk = Block{} // no super-diagonal at the global edge
			}
			cpT := mulBlock(inv, cBlk)
			d := ce.rhs[ce.ir(i, j, k)]
			dp := mulVec(inv, subVec(d, mulVec(s.offA, prevDp)))
			cp[line*n+t] = cpT
			ce.rhs[ce.ir(i, j, k)] = dp
			prevCp, prevDp = cpT, dp
		}
	}
	return cp
}

// packForwardBoundary serializes each line's last-plane (C', d').
func (s *solver) packForwardBoundary(ce *cell, dim Dim, cp []Block) []byte {
	lines := ce.facePoints(dim)
	buf := make([]byte, lines*forwardBoundaryBytes)
	if s.cfg.Timing {
		return buf
	}
	n := ce.dimSize(dim)
	off := 0
	for line := 0; line < lines; line++ {
		i, j, k := ce.linePoint(dim, line, n-1)
		off = putBlock(buf, off, cp[line*n+n-1])
		off = putVec5(buf, off, ce.rhs[ce.ir(i, j, k)])
	}
	return buf
}

// backwardCell substitutes x_t = d'_t - C'_t * x_{t+1} through the cell.
// in carries the successor cell's first-plane solutions, nil at the
// global east edge.
func (s *solver) backwardCell(ce *cell, dim Dim, cp []Block, in []byte) {
	s.chargeFlops(ce.points(), shareSolve*0.4)
	if s.cfg.Timing {
		return
	}
	n := ce.dimSize(dim)
	lines := ce.facePoints(dim)
	off := 0
	for line := 0; line < lines; line++ {
		var xNext Vec5
		if in != nil {
			off = getVec5(in, off, &xNext)
		}
		for t := n - 1; t >= 0; t-- {
			i, j, k := ce.linePoint(dim, line, t)
			dp := ce.rhs[ce.ir(i, j, k)]
			x := subVec(dp, mulVec(cp[line*n+t], xNext))
			ce.rhs[ce.ir(i, j, k)] = x
			xNext = x
		}
	}
}

// packBackwardBoundary serializes each line's first-plane solution.
func (s *solver) packBackwardBoundary(ce *cell, dim Dim) []byte {
	lines := ce.facePoints(dim)
	buf := make([]byte, lines*backwardBoundaryBytes)
	if s.cfg.Timing {
		return buf
	}
	off := 0
	for line := 0; line < lines; line++ {
		i, j, k := ce.linePoint(dim, line, 0)
		off = putVec5(buf, off, ce.rhs[ce.ir(i, j, k)])
	}
	return buf
}

// linePoint maps (line, t) to cell coordinates, t running along dim.
// The line ordering matches forEachFacePoint's plane ordering.
func (ce *cell) linePoint(dim Dim, line, t int) (i, j, k int) {
	switch dim {
	case DimX:
		return t, line % ce.ny, line / ce.ny
	case DimY:
		return line % ce.nx, t, line / ce.nx
	default:
		return line % ce.nx, line / ce.nx, t
	}
}

// coefB builds the diagonal block at a point from the local state: a
// strongly dominant diagonal with a state-dependent perturbation and a
// fixed component coupling, so the 5x5 eliminations are genuine.
func (s *solver) coefB(u Vec5) Block {
	b := identity(1 + 2*alphaCoef)
	for m := 0; m < 5; m++ {
		b[m][m] += diagEps * u[m]
		b[m][(m+2)%5] += coupleCoef
	}
	return b
}
