package npb

import (
	"math"
	"testing"

	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

func runLU(t *testing.T, class Class, ranks, iters int, timing bool) Result {
	t.Helper()
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, err := rcce.LinearPlaces([]*scc.Chip{chip}, ranks)
	if err != nil {
		t.Fatal(err)
	}
	session, err := rcce.NewSession(k, []*scc.Chip{chip}, places)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewLUDecomp(class.N, ranks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLU(session, d, Config{Class: class, Iterations: iters, Timing: timing})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLUDecompFactorization(t *testing.T) {
	cases := []struct{ ranks, px, py int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {6, 3, 2}, {8, 4, 2}, {9, 3, 3}, {12, 4, 3}, {16, 4, 4},
	}
	for _, c := range cases {
		d, err := NewLUDecomp(24, c.ranks)
		if err != nil {
			t.Fatal(err)
		}
		if d.Px != c.px || d.Py != c.py {
			t.Errorf("ranks=%d: grid %dx%d, want %dx%d", c.ranks, d.Px, d.Py, c.px, c.py)
		}
	}
	if _, err := NewLUDecomp(2, 9); err == nil {
		t.Error("grid larger than the domain accepted")
	}
}

func TestLUDecompSizes(t *testing.T) {
	d, err := NewLUDecomp(13, 6) // uneven splits
	if err != nil {
		t.Fatal(err)
	}
	sumX := 0
	for _, s := range d.xs {
		sumX += s
	}
	sumY := 0
	for _, s := range d.ys {
		sumY += s
	}
	if sumX != 13 || sumY != 13 {
		t.Errorf("splits sum to %d/%d, want 13", sumX, sumY)
	}
}

func TestLUCoordRoundTrip(t *testing.T) {
	d, _ := NewLUDecomp(24, 12)
	for rank := 0; rank < 12; rank++ {
		pi, pj := d.Coord(rank)
		if d.RankAt(pi, pj) != rank {
			t.Fatalf("coord round trip broken for rank %d", rank)
		}
	}
	if d.RankAt(-1, 0) != -1 || d.RankAt(d.Px, 0) != -1 {
		t.Error("out-of-grid neighbour not -1")
	}
}

func TestLUSerialVsParallel(t *testing.T) {
	const iters = 3
	ref := runLU(t, ClassS, 1, iters, false)
	if ref.Checksum == (Vec5{}) {
		t.Fatal("zero checksum")
	}
	for _, ranks := range []int{2, 4, 6, 9} {
		got := runLU(t, ClassS, ranks, iters, false)
		for m := 0; m < 5; m++ {
			rel := math.Abs(got.Checksum[m]-ref.Checksum[m]) / math.Abs(ref.Checksum[m])
			if rel > 1e-9 {
				t.Errorf("%d ranks: checksum[%d] off by %.2e", ranks, m, rel)
			}
		}
	}
}

func TestLUEvolves(t *testing.T) {
	one := runLU(t, ClassS, 4, 1, false)
	two := runLU(t, ClassS, 4, 2, false)
	if one.Checksum == two.Checksum {
		t.Error("LU checksum did not evolve")
	}
}

func TestLUCrossDevice(t *testing.T) {
	ref := runLU(t, ClassS, 4, 2, false)
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: vscc.SchemeVDMA})
	if err != nil {
		t.Fatal(err)
	}
	places := []rcce.Place{{Dev: 0, Core: 0}, {Dev: 0, Core: 1}, {Dev: 1, Core: 0}, {Dev: 1, Core: 1}}
	session, err := sys.NewSessionAt(places)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewLUDecomp(ClassS.N, 4)
	res, err := RunLU(session, d, Config{Class: ClassS, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 5; m++ {
		rel := math.Abs(res.Checksum[m]-ref.Checksum[m]) / math.Abs(ref.Checksum[m])
		if rel > 1e-9 {
			t.Errorf("cross-device checksum[%d] off by %.2e", m, rel)
		}
	}
}

func TestLUTimingMatchesRealTraffic(t *testing.T) {
	capture := func(timing bool) *trace.Matrix {
		k := sim.NewKernel()
		chip := scc.NewChip(k, 0, scc.DefaultParams())
		places, _ := rcce.LinearPlaces([]*scc.Chip{chip}, 6)
		m := trace.NewMatrix(6, 0)
		session, err := rcce.NewSession(k, []*scc.Chip{chip}, places, rcce.WithTrafficObserver(m.Record))
		if err != nil {
			t.Fatal(err)
		}
		d, _ := NewLUDecomp(ClassS.N, 6)
		if _, err := RunLU(session, d, Config{Class: ClassS, Iterations: 1, Timing: timing}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	real := capture(false)
	timing := capture(true)
	if real.Total() == 0 {
		t.Fatal("no traffic")
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if real.Bytes(i, j) != timing.Bytes(i, j) {
				t.Errorf("traffic[%d][%d] differs: %d vs %d", i, j, real.Bytes(i, j), timing.Bytes(i, j))
			}
		}
	}
}

func TestLUManySmallMessages(t *testing.T) {
	// The defining contrast to BT: LU's sweep messages are small and
	// numerous (2 per plane per direction), so the message count per
	// rank per iteration scales with N.
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, _ := rcce.LinearPlaces([]*scc.Chip{chip}, 4)
	count := 0
	var maxBytes int
	session, err := rcce.NewSession(k, []*scc.Chip{chip}, places, rcce.WithTrafficObserver(func(src, dest, bytes int) {
		count++
		if bytes > maxBytes {
			maxBytes = bytes
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewLUDecomp(ClassS.N, 4)
	if _, err := RunLU(session, d, Config{Class: ClassS, Iterations: 1, Timing: true}); err != nil {
		t.Fatal(err)
	}
	// 4 face exchanges + 2 sweeps x N planes x (1 east + 1 south per
	// interior rank) => hundreds of messages even at class S.
	if count < 4*ClassS.N {
		t.Errorf("only %d messages — LU should send per-plane pencils", count)
	}
	// Sweep pencils are tiny (6 points x 40 B = 240 B at class S / q=2).
	if maxBytes > ClassS.N*ClassS.N*5*8 {
		t.Errorf("max message %d B — larger than a full face", maxBytes)
	}
}

func TestLUSchemeSensitivity(t *testing.T) {
	// LU's latency-bound pattern punishes the transparent path far more
	// than the vDMA scheme across a device boundary.
	run := func(scheme vscc.Scheme) sim.Cycles {
		k := sim.NewKernel()
		sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		places := []rcce.Place{{Dev: 0, Core: 0}, {Dev: 0, Core: 1}, {Dev: 1, Core: 0}, {Dev: 1, Core: 1}}
		session, err := sys.NewSessionAt(places)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := NewLUDecomp(ClassS.N, 4)
		res, err := RunLU(session, d, Config{Class: ClassS, Iterations: 1, Timing: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	fast := run(vscc.SchemeVDMA)
	slow := run(vscc.SchemeRouting)
	if slow < 2*fast {
		t.Errorf("routing (%d cycles) should be >2x slower than vDMA (%d) for LU", slow, fast)
	}
}
