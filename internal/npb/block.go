package npb

// Block is a 5x5 matrix block of the tridiagonal systems (one flow
// variable per component in real BT).
type Block [5][5]float64

// Vec5 is a 5-component state vector.
type Vec5 [5]float64

// identity returns the 5x5 identity scaled by s.
func identity(s float64) Block {
	var b Block
	for i := 0; i < 5; i++ {
		b[i][i] = s
	}
	return b
}

// mulBlock returns a*b.
func mulBlock(a, b Block) Block {
	var c Block
	for i := 0; i < 5; i++ {
		for k := 0; k < 5; k++ {
			aik := a[i][k]
			if aik == 0 {
				continue
			}
			for j := 0; j < 5; j++ {
				c[i][j] += aik * b[k][j]
			}
		}
	}
	return c
}

// subBlock returns a-b.
func subBlock(a, b Block) Block {
	var c Block
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			c[i][j] = a[i][j] - b[i][j]
		}
	}
	return c
}

// mulVec returns a*v.
func mulVec(a Block, v Vec5) Vec5 {
	var out Vec5
	for i := 0; i < 5; i++ {
		s := 0.0
		for j := 0; j < 5; j++ {
			s += a[i][j] * v[j]
		}
		out[i] = s
	}
	return out
}

// subVec returns a-b.
func subVec(a, b Vec5) Vec5 {
	var c Vec5
	for i := 0; i < 5; i++ {
		c[i] = a[i] - b[i]
	}
	return c
}

// invBlock returns the inverse of a via Gauss-Jordan elimination with
// partial pivoting. BT's blocks are strongly diagonally dominant, so the
// elimination never degenerates for well-formed systems; a zero pivot
// panics, as the Fortran original would blow up.
func invBlock(a Block) Block {
	var aug [5][10]float64
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			aug[i][j] = a[i][j]
		}
		aug[i][5+i] = 1
	}
	for col := 0; col < 5; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := abs(aug[col][col])
		for r := col + 1; r < 5; r++ {
			if v := abs(aug[r][col]); v > maxAbs {
				maxAbs = v
				pivot = r
			}
		}
		if maxAbs == 0 {
			panic("npb: singular block in tridiagonal elimination")
		}
		if pivot != col {
			aug[pivot], aug[col] = aug[col], aug[pivot]
		}
		inv := 1 / aug[col][col]
		for j := 0; j < 10; j++ {
			aug[col][j] *= inv
		}
		for r := 0; r < 5; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < 10; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	var out Block
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			out[i][j] = aug[i][5+j]
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
