// Package npb implements the NAS Parallel Benchmark BT (block
// tridiagonal) pseudo-application in the multi-partition decomposition of
// Bailey et al., ported to RCCE the way Mattson et al. ported it to the
// SCC (paper §4.2). It is the workload behind the paper's Fig. 7
// (scalability) and Fig. 8 (traffic matrix).
//
// The solver keeps NPB BT's parallel structure exactly — q^2 processes,
// each owning q diagonally shifted cells; per iteration a six-direction
// ghost-face exchange (copy_faces) followed by pipelined block-tridiagonal
// sweeps in x, y and z with forward-elimination and back-substitution
// boundary messages between cell stages — while simplifying the physics:
// instead of the compressible Navier-Stokes right-hand side it solves a
// coupled 5-component diffusion system with genuine 5x5 block Thomas
// eliminations. Communication volumes, message counts and the
// sequential-recursion structure match BT; the verification tests check
// that the distributed solution equals the single-rank solution to
// floating-point roundoff.
package npb

import "fmt"

// Class is an NPB problem class.
type Class struct {
	Name string
	// N is the cubic grid dimension.
	N int
	// Iterations is the official timestep count.
	Iterations int
}

// The NPB BT problem classes (grid size, iterations).
var (
	ClassS = Class{Name: "S", N: 12, Iterations: 60}
	ClassW = Class{Name: "W", N: 24, Iterations: 200}
	ClassA = Class{Name: "A", N: 64, Iterations: 200}
	ClassB = Class{Name: "B", N: 102, Iterations: 200}
	// ClassC is the paper's configuration: 162^3, suitable for the
	// 240-core vSCC (§4.2).
	ClassC = Class{Name: "C", N: 162, Iterations: 200}
)

// ClassByName looks up a class.
func ClassByName(name string) (Class, error) {
	for _, c := range []Class{ClassS, ClassW, ClassA, ClassB, ClassC} {
		if c.Name == name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("npb: unknown class %q", name)
}

// FlopsPerPointIter is BT's arithmetic intensity: the official class A
// operation count (168.3 Gop for 64^3 x 200 iterations) works out to
// ~3210 floating-point operations per grid point per iteration.
const FlopsPerPointIter = 3210.0

// FlopEfficiency is the fraction of the P54C's peak FP rate that BT's
// memory-bound loops sustain; it converts modelled flops into core
// cycles. 0.25 of the 533 MFLOP/s peak matches the per-core rates
// Mattson et al. report for the SCC port.
const FlopEfficiency = 0.25

// TotalFlops returns the modelled operation count of a full run.
func (c Class) TotalFlops() float64 {
	n := float64(c.N)
	return n * n * n * FlopsPerPointIter * float64(c.Iterations)
}

// VerifyClasses are the classes small enough to run with real arithmetic
// inside the simulator.
func VerifyClasses() []Class { return []Class{ClassS, ClassW} }
