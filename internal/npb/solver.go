package npb

import (
	"encoding/binary"
	"math"

	"vscc/internal/rcce"
	"vscc/internal/sim"
)

// Solver coefficients: the coupled 5-component diffusion system. alpha
// couples neighbouring planes, couple mixes the five components inside a
// block, dtc scales the right-hand side. The blocks stay strongly
// diagonally dominant, like BT's.
const (
	alphaCoef  = 0.2
	coupleCoef = 0.02
	dtCoef     = 0.1
	diagEps    = 0.01
)

// Phase shares of FlopsPerPointIter, mirroring BT's profile: the RHS
// evaluation is the heaviest single phase, the three sweeps split the
// rest, and add is cheap.
const (
	shareRHS   = 0.37
	shareSolve = 0.20 // per sweep (x, y, z)
	shareAdd   = 0.03
)

// Config selects the problem and execution mode.
type Config struct {
	Class Class
	// Iterations overrides the class iteration count when non-zero (the
	// harness uses a handful of steady-state iterations and scales).
	Iterations int
	// Timing skips the real arithmetic and charges modelled flops only,
	// while sending messages of the exact real sizes — the mode used for
	// class C runs, where executing 162^3 x 200 real block eliminations
	// inside the simulator is not feasible (see DESIGN.md).
	Timing bool
}

func (c Config) iterations() int {
	if c.Iterations > 0 {
		return c.Iterations
	}
	return c.Class.Iterations
}

// Result summarizes one run.
type Result struct {
	Ranks      int
	Iterations int
	Cycles     sim.Cycles
	// GFlops is the modelled application rate: FlopsPerPointIter per
	// grid point per iteration over the measured time.
	GFlops float64
	// Checksum is the component-wise sum of the final solution
	// (verification mode only).
	Checksum Vec5
}

// cell is one of a rank's q sub-cubes.
type cell struct {
	c          int // cell index (= cz)
	cx, cy, cz int
	nx, ny, nz int
	x0, y0, z0 int

	u   []Vec5 // (nx+2)(ny+2)(nz+2), ghost depth 1
	rhs []Vec5 // nx*ny*nz
}

func (ce *cell) iu(i, j, k int) int {
	return ((k+1)*(ce.ny+2)+(j+1))*(ce.nx+2) + (i + 1)
}

func (ce *cell) ir(i, j, k int) int {
	return (k*ce.ny+j)*ce.nx + i
}

func (ce *cell) points() int { return ce.nx * ce.ny * ce.nz }

// solver is the per-rank state.
type solver struct {
	r     *rcce.Rank
	d     *Decomp
	cfg   Config
	cells []*cell

	offA Block // sub/super-diagonal block (constant)
}

// initialU is the deterministic initial condition, a function of global
// coordinates so that every decomposition computes identical data.
func initialU(gx, gy, gz, m int) float64 {
	base := float64(gx + 2*gy + 3*gz + 5*m)
	return 1 + 0.002*base + 0.0001*base*base/(base+10)
}

// boundaryU is the Dirichlet boundary value outside the global grid.
func boundaryU(m int) float64 { return 0.5 + 0.05*float64(m) }

// Program returns the SPMD rank body solving cfg on decomposition d.
// res is filled in by rank 0.
func Program(d *Decomp, cfg Config, res *Result) func(*rcce.Rank) {
	return func(r *rcce.Rank) {
		s := &solver{r: r, d: d, cfg: cfg}
		s.setup()
		iters := cfg.iterations()
		r.Barrier()
		t0 := r.Now()
		for it := 0; it < iters; it++ {
			s.iterate()
		}
		r.Barrier()
		elapsed := r.Now() - t0
		sum := s.checksum()
		if err := r.Allreduce(rcce.OpSum, sum[:]); err != nil {
			panic(err)
		}
		if r.ID() == 0 {
			n := float64(d.N)
			flops := n * n * n * FlopsPerPointIter * float64(iters)
			res.Ranks = d.Ranks()
			res.Iterations = iters
			res.Cycles = elapsed
			res.GFlops = r.Ctx().Params().GFlops(flops, elapsed)
			copy(res.Checksum[:], sum[:])
		}
	}
}

// setup builds the rank's cells and initial data.
func (s *solver) setup() {
	d := s.d
	s.offA = identity(-alphaCoef)
	for m := 0; m < 5; m++ {
		s.offA[m][(m+1)%5] -= coupleCoef
	}
	for c := 0; c < d.Q; c++ {
		cx, cy, cz := d.CellCoord(s.r.ID(), c)
		ce := &cell{
			c: c, cx: cx, cy: cy, cz: cz,
			nx: d.Size(cx), ny: d.Size(cy), nz: d.Size(cz),
			x0: d.Start(cx), y0: d.Start(cy), z0: d.Start(cz),
		}
		if !s.cfg.Timing {
			ce.u = make([]Vec5, (ce.nx+2)*(ce.ny+2)*(ce.nz+2))
			ce.rhs = make([]Vec5, ce.points())
			for k := -1; k <= ce.nz; k++ {
				for j := -1; j <= ce.ny; j++ {
					for i := -1; i <= ce.nx; i++ {
						gx, gy, gz := ce.x0+i, ce.y0+j, ce.z0+k
						var v Vec5
						for m := 0; m < 5; m++ {
							if gx < 0 || gy < 0 || gz < 0 || gx >= s.d.N || gy >= s.d.N || gz >= s.d.N {
								v[m] = boundaryU(m)
							} else {
								v[m] = initialU(gx, gy, gz, m)
							}
						}
						ce.u[ce.iu(i, j, k)] = v
					}
				}
			}
		}
		s.cells = append(s.cells, ce)
	}
}

// chargeFlops converts modelled flops (at FlopEfficiency of peak) into
// core cycles.
func (s *solver) chargeFlops(points int, share float64) {
	s.r.ComputeFlops(float64(points) * FlopsPerPointIter * share / FlopEfficiency)
}

// iterate performs one BT timestep: copy_faces, rhs, three pipelined
// sweeps, add.
func (s *solver) iterate() {
	s.copyFaces()
	s.computeRHS()
	s.sweep(DimX)
	s.sweep(DimY)
	s.sweep(DimZ)
	s.add()
}

// checksum sums the interior solution per component.
func (s *solver) checksum() Vec5 {
	var sum Vec5
	if s.cfg.Timing {
		return sum
	}
	for _, ce := range s.cells {
		for k := 0; k < ce.nz; k++ {
			for j := 0; j < ce.ny; j++ {
				for i := 0; i < ce.nx; i++ {
					v := ce.u[ce.iu(i, j, k)]
					for m := 0; m < 5; m++ {
						sum[m] += v[m]
					}
				}
			}
		}
	}
	return sum
}

// --- copy_faces ---------------------------------------------------------

// facePoints returns the number of points on a cell's face orthogonal to
// dim.
func (ce *cell) facePoints(dim Dim) int {
	switch dim {
	case DimX:
		return ce.ny * ce.nz
	case DimY:
		return ce.nx * ce.nz
	default:
		return ce.nx * ce.ny
	}
}

// cellCoordIn returns the cell's slab index along dim.
func (ce *cell) coordIn(dim Dim) int {
	switch dim {
	case DimX:
		return ce.cx
	case DimY:
		return ce.cy
	default:
		return ce.cz
	}
}

// copyFaces performs the six-direction ghost exchange: for every
// direction, the faces of all qualifying cells aggregate into a single
// message to the one neighbouring rank (as in NPB's copy_faces).
func (s *solver) copyFaces() {
	for _, dim := range []Dim{DimX, DimY, DimZ} {
		parity := s.ringParity(dim) % 2
		for _, dir := range []int{+1, -1} {
			peerSend := s.d.Neighbor(s.r.ID(), dim, dir)  // receives our dir-side faces
			peerRecv := s.d.Neighbor(s.r.ID(), dim, -dir) // sends us their dir-side faces
			sendBytes := s.faceBufBytes(dim, dir)
			// Ghosts we fill sit on our -dir side; their volume mirrors
			// the peer's dir-side faces, which by the multi-partition
			// symmetry equals our own -dir face volume.
			recvBytes := s.faceBufBytes(dim, -dir)
			if peerSend == s.r.ID() { // q == 1: nothing to exchange
				continue
			}
			send := func() {
				buf := make([]byte, sendBytes)
				if !s.cfg.Timing {
					s.packFaces(dim, dir, buf)
				}
				if err := s.r.Send(peerSend, buf); err != nil {
					panic(err)
				}
			}
			recv := func() {
				buf := make([]byte, recvBytes)
				if err := s.r.Recv(peerRecv, buf); err != nil {
					panic(err)
				}
				if !s.cfg.Timing {
					s.unpackFaces(dim, -dir, buf)
				}
			}
			// Deadlock-free ordering: even ring positions send first.
			// Every exchange ring contains both parities, so at least one
			// rank per ring is receiving while its predecessor sends.
			if parity == 0 {
				send()
				recv()
			} else {
				recv()
				send()
			}
		}
	}
	// Ghost-update arithmetic is folded into the RHS share.
}

// faceBufBytes sizes the aggregate face message in direction (dim, dir).
func (s *solver) faceBufBytes(dim Dim, dir int) int {
	points := 0
	for _, ce := range s.cells {
		if s.hasNeighborCell(ce, dim, dir) {
			points += ce.facePoints(dim)
		}
	}
	return points * 5 * 8
}

// hasNeighborCell reports whether the cell has an in-grid neighbour in
// direction (dim, dir) — faces at the physical boundary are not sent.
func (s *solver) hasNeighborCell(ce *cell, dim Dim, dir int) bool {
	c := ce.coordIn(dim)
	if dir > 0 {
		return c < s.d.Q-1
	}
	return c > 0
}

// packFaces serializes the dir-side interior plane of each qualifying
// cell, in cell order.
func (s *solver) packFaces(dim Dim, dir int, buf []byte) {
	off := 0
	for _, ce := range s.cells {
		if !s.hasNeighborCell(ce, dim, dir) {
			continue
		}
		ce.forEachFacePoint(dim, dir, false, func(i, j, k int) {
			off = putVec5(buf, off, ce.u[ce.iu(i, j, k)])
		})
	}
}

// unpackFaces fills the dir-side ghost plane of each qualifying cell.
func (s *solver) unpackFaces(dim Dim, dir int, buf []byte) {
	off := 0
	for _, ce := range s.cells {
		if !s.hasNeighborCell(ce, dim, dir) {
			continue
		}
		ce.forEachFacePoint(dim, dir, true, func(i, j, k int) {
			var v Vec5
			off = getVec5(buf, off, &v)
			ce.u[ce.iu(i, j, k)] = v
		})
	}
}

// forEachFacePoint visits the face plane (ghost=false: the outermost
// interior plane; ghost=true: the ghost plane) on the dir side of the
// cell, in (k, j) / (k, i) / (j, i) order — identical for pack and
// unpack.
func (ce *cell) forEachFacePoint(dim Dim, dir int, ghost bool, fn func(i, j, k int)) {
	fixed := 0
	switch {
	case dir > 0 && !ghost:
		fixed = ce.dimSize(dim) - 1
	case dir > 0 && ghost:
		fixed = ce.dimSize(dim)
	case dir < 0 && !ghost:
		fixed = 0
	default:
		fixed = -1
	}
	switch dim {
	case DimX:
		for k := 0; k < ce.nz; k++ {
			for j := 0; j < ce.ny; j++ {
				fn(fixed, j, k)
			}
		}
	case DimY:
		for k := 0; k < ce.nz; k++ {
			for i := 0; i < ce.nx; i++ {
				fn(i, fixed, k)
			}
		}
	default:
		for j := 0; j < ce.ny; j++ {
			for i := 0; i < ce.nx; i++ {
				fn(i, j, fixed)
			}
		}
	}
}

func (ce *cell) dimSize(dim Dim) int {
	switch dim {
	case DimX:
		return ce.nx
	case DimY:
		return ce.ny
	default:
		return ce.nz
	}
}

// --- right-hand side ------------------------------------------------------

// computeRHS evaluates the coupled diffusion RHS on every interior point
// using the freshly exchanged ghosts.
func (s *solver) computeRHS() {
	for _, ce := range s.cells {
		if !s.cfg.Timing {
			for k := 0; k < ce.nz; k++ {
				for j := 0; j < ce.ny; j++ {
					for i := 0; i < ce.nx; i++ {
						c := ce.u[ce.iu(i, j, k)]
						xm := ce.u[ce.iu(i-1, j, k)]
						xp := ce.u[ce.iu(i+1, j, k)]
						ym := ce.u[ce.iu(i, j-1, k)]
						yp := ce.u[ce.iu(i, j+1, k)]
						zm := ce.u[ce.iu(i, j, k-1)]
						zp := ce.u[ce.iu(i, j, k+1)]
						var out Vec5
						for m := 0; m < 5; m++ {
							lap := xm[m] + xp[m] + ym[m] + yp[m] + zm[m] + zp[m] - 6*c[m]
							out[m] = dtCoef * (lap + coupleCoef*(c[(m+1)%5]-c[m]))
						}
						ce.rhs[ce.ir(i, j, k)] = out
					}
				}
			}
		}
		s.chargeFlops(ce.points(), shareRHS)
	}
}

// add applies the solved update.
func (s *solver) add() {
	for _, ce := range s.cells {
		if !s.cfg.Timing {
			for k := 0; k < ce.nz; k++ {
				for j := 0; j < ce.ny; j++ {
					for i := 0; i < ce.nx; i++ {
						r := ce.rhs[ce.ir(i, j, k)]
						v := &ce.u[ce.iu(i, j, k)]
						for m := 0; m < 5; m++ {
							v[m] += r[m]
						}
					}
				}
			}
		}
		s.chargeFlops(ce.points(), shareAdd)
	}
}

// --- codec helpers --------------------------------------------------------

func putVec5(buf []byte, off int, v Vec5) int {
	for m := 0; m < 5; m++ {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v[m]))
		off += 8
	}
	return off
}

func getVec5(buf []byte, off int, v *Vec5) int {
	for m := 0; m < 5; m++ {
		v[m] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return off
}

func putBlock(buf []byte, off int, b Block) int {
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(b[i][j]))
			off += 8
		}
	}
	return off
}

func getBlock(buf []byte, off int, b *Block) int {
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			b[i][j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return off
}
