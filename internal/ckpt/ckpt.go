// Package ckpt holds the crash-consistent checkpoint state of one SCC
// device: a full snapshot of the device's on-chip memory banks plus a
// write-ahead tail of every store applied since the snapshot. Restoring
// a checkpoint replays snapshot-then-tail, which reconstructs the
// memory image byte-exactly at the crash point — the property the
// membership manager's rejoin path depends on (DESIGN.md §8).
//
// The package is pure data: it never touches the simulation kernel, so
// taking or restoring a checkpoint costs zero simulated time on its own
// (the membership manager charges the modelled quiesce/restore delays).
package ckpt

// Record is one journaled store into a device bank.
type Record struct {
	Bank int // tile/bank index within the device
	Off  int // byte offset within the bank
	Data []byte
}

// Log is the checkpoint state of one device: the last snapshot of its
// banks and the write journal accumulated since.
type Log struct {
	snap [][]byte
	tail []Record

	snaps      int // checkpoints taken
	snapBytes  int // total snapshot payload
	tailWrites int // journal records since the last checkpoint
	tailBytes  int
}

// NewLog returns an empty log whose first Checkpoint call defines the
// bank geometry.
func NewLog() *Log { return &Log{} }

// Note journals one store. The data is copied: callers may reuse their
// buffers.
func (l *Log) Note(bank, off int, data []byte) {
	if l == nil || len(data) == 0 {
		return
	}
	l.tail = append(l.tail, Record{Bank: bank, Off: off, Data: append([]byte(nil), data...)})
	l.tailWrites++
	l.tailBytes += len(data)
}

// Checkpoint snapshots the bank images (copied) and truncates the
// journal — the quiesce-point capture.
func (l *Log) Checkpoint(banks [][]byte) {
	if l == nil {
		return
	}
	if len(l.snap) != len(banks) {
		l.snap = make([][]byte, len(banks))
	}
	total := 0
	for i, b := range banks {
		if len(l.snap[i]) != len(b) {
			l.snap[i] = make([]byte, len(b))
		}
		copy(l.snap[i], b)
		total += len(b)
	}
	l.tail = l.tail[:0]
	l.tailWrites = 0
	l.tailBytes = 0
	l.snaps++
	l.snapBytes += total
}

// Restore rebuilds the crash-point memory image: the snapshot with the
// journal tail replayed over it, in write order. It returns the bank
// images (owned by the caller) and the replayed write/byte totals, or
// nil if no checkpoint was ever taken.
func (l *Log) Restore() (banks [][]byte, writes, bytes int) {
	if l == nil || l.snap == nil {
		return nil, 0, 0
	}
	banks = make([][]byte, len(l.snap))
	for i, b := range l.snap {
		banks[i] = append([]byte(nil), b...)
	}
	for _, r := range l.tail {
		if r.Bank < 0 || r.Bank >= len(banks) {
			continue
		}
		bank := banks[r.Bank]
		if r.Off < 0 || r.Off+len(r.Data) > len(bank) {
			continue
		}
		copy(bank[r.Off:], r.Data)
		writes++
		bytes += len(r.Data)
	}
	return banks, writes, bytes
}

// Armed reports whether a snapshot exists to restore from.
func (l *Log) Armed() bool { return l != nil && l.snap != nil }

// Checkpoints returns how many snapshots were taken and their total
// payload bytes.
func (l *Log) Checkpoints() (n, bytes int) {
	if l == nil {
		return 0, 0
	}
	return l.snaps, l.snapBytes
}

// TailLen returns the journal's current record and byte counts.
func (l *Log) TailLen() (writes, bytes int) {
	if l == nil {
		return 0, 0
	}
	return l.tailWrites, l.tailBytes
}
