package ckpt

import (
	"bytes"
	"testing"
)

func TestRestoreReplaysSnapshotPlusTail(t *testing.T) {
	l := NewLog()
	banks := [][]byte{make([]byte, 64), make([]byte, 64)}
	for i := range banks[0] {
		banks[0][i] = byte(i)
	}
	l.Checkpoint(banks)

	// Mutations after the checkpoint, journaled as they happen.
	copy(banks[0][8:], []byte{0xAA, 0xBB})
	l.Note(0, 8, []byte{0xAA, 0xBB})
	copy(banks[1][0:], []byte{1, 2, 3, 4})
	l.Note(1, 0, []byte{1, 2, 3, 4})
	copy(banks[0][8:], []byte{0xCC}) // overwrite: order matters
	l.Note(0, 8, []byte{0xCC})

	got, writes, n := l.Restore()
	if writes != 3 || n != 7 {
		t.Errorf("replayed %d writes / %d bytes, want 3 / 7", writes, n)
	}
	for i := range banks {
		if !bytes.Equal(got[i], banks[i]) {
			t.Errorf("bank %d: restore diverges from live image\n got %x\nwant %x", i, got[i], banks[i])
		}
	}
	// The restored image is a copy, not an alias.
	got[0][0] ^= 0xFF
	if banks[0][0] == got[0][0] {
		t.Error("restored bank aliases the live bank")
	}
}

func TestCheckpointTruncatesTail(t *testing.T) {
	l := NewLog()
	l.Checkpoint([][]byte{make([]byte, 16)})
	l.Note(0, 0, []byte{9})
	if w, b := l.TailLen(); w != 1 || b != 1 {
		t.Fatalf("tail = %d/%d, want 1/1", w, b)
	}
	l.Checkpoint([][]byte{{9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}})
	if w, b := l.TailLen(); w != 0 || b != 0 {
		t.Errorf("tail survived a checkpoint: %d/%d", w, b)
	}
	if n, total := l.Checkpoints(); n != 2 || total != 32 {
		t.Errorf("checkpoints = %d/%d bytes, want 2/32", n, total)
	}
	img, _, _ := l.Restore()
	if img[0][0] != 9 {
		t.Error("second checkpoint image not the restore base")
	}
}

func TestRestoreWithoutCheckpoint(t *testing.T) {
	l := NewLog()
	if l.Armed() {
		t.Error("empty log claims to be armed")
	}
	if img, _, _ := l.Restore(); img != nil {
		t.Error("restore from an empty log produced an image")
	}
	// Notes before the first checkpoint are discarded by it, not
	// replayed into it.
	l.Note(0, 0, []byte{1})
	l.Checkpoint([][]byte{make([]byte, 4)})
	img, writes, _ := l.Restore()
	if writes != 0 || img[0][0] != 0 {
		t.Errorf("pre-checkpoint note replayed (writes=%d, byte=%d)", writes, img[0][0])
	}
}

func TestOutOfRangeRecordsSkipped(t *testing.T) {
	l := NewLog()
	l.Checkpoint([][]byte{make([]byte, 8)})
	l.tail = append(l.tail,
		Record{Bank: 5, Off: 0, Data: []byte{1}},
		Record{Bank: 0, Off: 7, Data: []byte{1, 2}},
		Record{Bank: 0, Off: -1, Data: []byte{1}},
	)
	img, writes, n := l.Restore()
	if writes != 0 || n != 0 {
		t.Errorf("invalid records replayed: %d writes / %d bytes", writes, n)
	}
	if !bytes.Equal(img[0], make([]byte, 8)) {
		t.Error("invalid record mutated the image")
	}
}

func TestNilLogIsInert(t *testing.T) {
	var l *Log
	l.Note(0, 0, []byte{1})
	l.Checkpoint(nil)
	if l.Armed() {
		t.Error("nil log armed")
	}
	if img, _, _ := l.Restore(); img != nil {
		t.Error("nil log restored an image")
	}
	if w, b := l.TailLen(); w != 0 || b != 0 {
		t.Error("nil log has a tail")
	}
	if n, b := l.Checkpoints(); n != 0 || b != 0 {
		t.Error("nil log has checkpoints")
	}
}
