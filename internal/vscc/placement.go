package vscc

// Topology-aware placement — the paper's §4.2 observation: "applications
// should prefer connections with high throughput for communication",
// but the default linear rank extension has no topology awareness. For
// BT's multi-partition q x q process grid, RowAlignedPlaces assigns
// whole process-grid rows to devices (padding devices with unused cores
// rather than straddling a row), so every x-direction neighbour pair —
// the heaviest traffic band of Fig. 8 — stays on one device.

import (
	"fmt"

	"vscc/internal/rcce"
)

// RowAlignedPlaces maps a q x q process grid (ranks = q*q, rank = pi +
// pj*q) onto the system so that no grid row straddles a device
// boundary. It falls back to an error when the devices cannot hold the
// rows even with padding.
func (s *System) RowAlignedPlaces(q int) ([]rcce.Place, error) {
	ranks := q * q
	rowsPerDevice := 48 / q // whole rows that fit one device
	if rowsPerDevice == 0 {
		return nil, fmt.Errorf("vscc: a %d-rank row does not fit one device", q)
	}
	devicesNeeded := (q + rowsPerDevice - 1) / rowsPerDevice
	if devicesNeeded > len(s.Chips) {
		return nil, fmt.Errorf("vscc: row-aligned placement of %d ranks needs %d devices, have %d",
			ranks, devicesNeeded, len(s.Chips))
	}
	places := make([]rcce.Place, ranks)
	for pj := 0; pj < q; pj++ {
		dev := pj / rowsPerDevice
		rowInDev := pj % rowsPerDevice
		alive := s.Chips[dev].AliveCores()
		if len(alive) < rowsPerDevice*q {
			return nil, fmt.Errorf("vscc: device %d has %d cores alive, row-aligned placement needs %d",
				dev, len(alive), rowsPerDevice*q)
		}
		for pi := 0; pi < q; pi++ {
			places[pi+pj*q] = rcce.Place{Dev: dev, Core: alive[rowInDev*q+pi]}
		}
	}
	return places, nil
}

// CrossDevicePairs counts how many of the given neighbour relations
// (rank pairs) cross a device boundary under a placement — the metric a
// placement strategy minimizes.
func CrossDevicePairs(places []rcce.Place, pairs [][2]int) int {
	n := 0
	for _, p := range pairs {
		if places[p[0]].Dev != places[p[1]].Dev {
			n++
		}
	}
	return n
}

// GridNeighborPairs enumerates the neighbour relations of a q x q
// multi-partition grid: the x (±1 with row wrap), y (±q) and z (±(q+1))
// rings of Fig. 8.
func GridNeighborPairs(q int) [][2]int {
	var pairs [][2]int
	ranks := q * q
	for r := 0; r < ranks; r++ {
		pi, pj := r%q, r/q
		add := func(qi, qj int) {
			peer := ((qi+q)%q + ((qj+q)%q)*q)
			pairs = append(pairs, [2]int{r, peer})
		}
		add(pi+1, pj)   // +x ring
		add(pi, pj+1)   // +y ring
		add(pi-1, pj-1) // +z ring
	}
	return pairs
}
