package vscc

// Conservative PDES decomposition of a vSCC (DESIGN.md §9): one
// sim.Kernel per SCC device plus one kernel for the host/PCIe side,
// coupled by sim.PDES barrier windows with lookahead equal to the PCIe
// link latency. Each device's mesh, MPB state, L1/WCB models and rcce
// ranks stay kernel-local; the only cross-kernel traffic is the PCIe
// fabric boundary, re-implemented here as explicit request/response
// messages over per-direction link models (pdesLink).
//
// The classic single-kernel engine (System) couples devices through
// shared structures with zero-latency effects — host.Task delivery
// invalidates the host caches and every device's SIF buffers at the
// same instant, and scc.Checker is a cross-device oracle — so the PDES
// engine cannot be cycle-identical to it. The determinism bar is
// instead self-identity: a PDES run with W workers is byte-identical
// (traces, ledgers, checkpoints) to the same PDES run with 1 worker,
// for any W. That is the property the identity gates enforce.
//
// Fault support is deliberately narrow: device-crash faults
// (DevCrashAt) with checkpoints and held-delivery replay, entirely
// device-kernel-local. Packet-level faults, host stalls/crashes and
// link-down faults need the framed single-kernel fabric and are
// rejected up front.

import (
	"errors"
	"fmt"
	"strconv"

	"vscc/internal/ckpt"
	"vscc/internal/fault"
	"vscc/internal/host"
	"vscc/internal/mem"
	"vscc/internal/pcie"
	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/trace"
)

// Request/acknowledgement sizes on the wire (one line for a read
// request, a header-sized ack).
const (
	pdesReqBytes = mem.LineSize
	pdesAckBytes = 4
)

// pdesLink models one direction of a device's PCIe link: a serial
// resource with fixed latency and finite bandwidth, owned by exactly
// one kernel (device-to-host by the device, host-to-device by the
// host), so reservations never cross kernels and stay deterministic.
type pdesLink struct {
	free sim.Cycles // cycle the link becomes idle
	bpc  float64    // bytes per cycle
	lat  sim.Cycles // propagation latency
}

// reserve books n bytes at or after now; done is when the last byte
// leaves (the sender may proceed), arrive when it lands on the far
// side. Successive reservations arrive in reservation order — the FIFO
// property every data-before-flag argument below rests on.
func (l *pdesLink) reserve(now sim.Cycles, n int) (done, arrive sim.Cycles) {
	start := now
	if l.free > start {
		start = l.free
	}
	occ := sim.Cycles(float64(n) / l.bpc)
	if occ < 1 {
		occ = 1
	}
	done = start + occ
	l.free = done
	return done, done + l.lat
}

// PDESSystem is the domain-decomposed counterpart of System: the same
// Config, chips and schemes, driven by sim.PDES instead of one kernel.
type PDESSystem struct {
	PDES   *sim.PDES
	Config Config
	Chips  []*scc.Chip

	workers int
	params  pcie.Params
	eng     *pdesHost
	ports   []*pdesPort
	// sinks holds one observability sink per kernel (devices 0..N-1,
	// host at N); nil entries disable recording for that kernel.
	sinks []*trace.Sink
}

// pdesUnsupportedFaults rejects fault classes that require the framed
// single-kernel fabric.
func pdesUnsupportedFaults(f *fault.Config) error {
	if f == nil {
		return nil
	}
	if f.DropPer10k != 0 || f.DupPer10k != 0 || f.DelayPer10k != 0 || f.CorruptPer10k != 0 ||
		f.FlagLossPer10k != 0 || f.CacheCorruptPer10k != 0 || f.MMIOCorruptPer10k != 0 {
		return errors.New("vscc: pdes supports only device-crash faults; packet/flag/cache/mmio faults need the framed single-kernel fabric")
	}
	if len(f.StallAt) != 0 || len(f.CrashAt) != 0 {
		return errors.New("vscc: pdes supports only device-crash faults; host stall/crash faults need the single-kernel host task")
	}
	if len(f.DevLinkDownAt) != 0 {
		return errors.New("vscc: pdes supports only device-crash faults; link-down faults need the framed fabric's journals")
	}
	return nil
}

// NewPDESSystem assembles a domain-decomposed vSCC driven by `workers`
// goroutines (1 = the serial identity reference).
func NewPDESSystem(cfg Config, workers int) (*PDESSystem, error) {
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("vscc: %d devices", cfg.Devices)
	}
	if cfg.Scheme == SchemeHWAccel && cfg.Devices > 2 {
		return nil, fmt.Errorf("vscc: the hardware-accelerated scheme is unstable beyond 2 devices (§2.3); got %d", cfg.Devices)
	}
	if cfg.Check {
		return nil, errors.New("vscc: the consistency checker is a cross-device oracle and cannot run under pdes")
	}
	if err := pdesUnsupportedFaults(cfg.Faults); err != nil {
		return nil, err
	}
	chipParams := scc.DefaultParams()
	if cfg.ChipParams != nil {
		chipParams = *cfg.ChipParams
	}
	fabricParams := pcie.DefaultParams()
	if cfg.FabricParams != nil {
		fabricParams = *cfg.FabricParams
	}
	if fabricParams.LinkLatency < 1 {
		return nil, errors.New("vscc: pdes needs a positive PCIe link latency (the lookahead)")
	}
	hostParams := host.DefaultParams()
	if cfg.HostParams != nil {
		hostParams = *cfg.HostParams
	}
	_ = hostParams // reserved: the pdes host uses the pcie op costs only

	s := &PDESSystem{
		Config:  cfg,
		workers: workers,
		params:  fabricParams,
		// Kernel i simulates device i; kernel Devices the host/PCIe side.
		PDES:  sim.NewPDES(cfg.Devices+1, fabricParams.LinkLatency),
		sinks: make([]*trace.Sink, cfg.Devices+1),
	}
	s.eng = &pdesHost{
		sys:   s,
		k:     s.PDES.Kernel(cfg.Devices),
		idx:   cfg.Devices,
		h2d:   make([]pdesLink, cfg.Devices),
		banks: make([]*host.Banks, cfg.Devices),
		cache: make(map[pdesCacheKey]*pdesHostCopy),
	}
	for d := 0; d < cfg.Devices; d++ {
		s.eng.h2d[d] = pdesLink{bpc: fabricParams.LinkBytesPerCycle, lat: fabricParams.LinkLatency}
		s.eng.banks[d] = host.NewBanks()
		chip := scc.NewChip(s.PDES.Kernel(d), d, chipParams)
		for _, core := range cfg.FailedCores[d] {
			chip.SetAlive(core, false)
		}
		pt := &pdesPort{
			sys:    s,
			dev:    d,
			chip:   chip,
			d2h:    pdesLink{bpc: fabricParams.LinkBytesPerCycle, lat: fabricParams.LinkLatency},
			stream: make(map[pdesStreamKey]*pdesStream),
		}
		chip.OffChip = pt
		s.Chips = append(s.Chips, chip)
		s.ports = append(s.ports, pt)
	}
	if cfg.Faults != nil && len(cfg.Faults.DevCrashAt) > 0 {
		s.armDeviceFaults(*cfg.Faults)
	}
	return s, nil
}

// Instrument attaches one sink per kernel: sinks[d] for device d,
// sinks[Devices] for the host kernel. Nil entries (or a nil slice)
// disable. Per-kernel sinks are mandatory under PDES because
// trace.Sink is not concurrency-safe.
func (s *PDESSystem) Instrument(sinks []*trace.Sink) {
	for i := range s.sinks {
		if sinks != nil && i < len(sinks) {
			s.sinks[i] = sinks[i]
		}
	}
}

// hostIdx returns the host kernel's index.
func (s *PDESSystem) hostIdx() int { return s.Config.Devices }

// Workers returns the configured worker count.
func (s *PDESSystem) Workers() int { return s.workers }

// TotalCores returns the number of available cores across all devices.
func (s *PDESSystem) TotalCores() int {
	n := 0
	for _, c := range s.Chips {
		n += len(c.AliveCores())
	}
	return n
}

// Run drives the decomposed simulation to completion.
func (s *PDESSystem) Run() error { return s.PDES.Run(s.workers) }

// NewSession mirrors System.NewSession for the decomposed engine.
func (s *PDESSystem) NewSession(n int, opts ...rcce.Option) (*rcce.Session, error) {
	places, err := rcce.LinearPlaces(s.Chips, n)
	if err != nil {
		return nil, err
	}
	return s.NewSessionAt(places, opts...)
}

// NewSessionAt is NewSession with explicit placements. The protocol
// runs with the fault machinery disarmed (waits are purely
// event-driven; device crashes recover by held-delivery replay, so
// every awaited flag eventually lands), per-device sinks route every
// rank's observability to its own kernel, and the session runner is
// the PDES barrier-window engine.
func (s *PDESSystem) NewSessionAt(places []rcce.Place, opts ...rcce.Option) (*rcce.Session, error) {
	base := s.Config.OnChipProtocol
	if base == nil {
		base = rcce.DefaultProtocol{}
	}
	threshold := s.Config.DirectThreshold
	if threshold == 0 {
		threshold = s.Config.Scheme.DirectThreshold()
	}
	slot := s.Config.VDMASlotBytes
	if slot > rcce.PayloadBytes/2 {
		return nil, fmt.Errorf("vscc: vDMA slot %d exceeds half the payload area (%d)", slot, rcce.PayloadBytes/2)
	}
	proto := &interDeviceProtocol{
		base:      base,
		scheme:    s.Config.Scheme,
		threshold: threshold,
		slot:      slot,
		seqs:      make([]pairSeq, len(places)*len(places)),
		nRanks:    len(places),
		published: make([]int, len(places)),
	}
	opts = append([]rcce.Option{
		rcce.WithProtocol(proto),
		rcce.WithDeviceSinks(s.sinks[:s.Config.Devices]),
		rcce.WithSink(s.sinks[s.hostIdx()]),
		rcce.WithRunner(s.Run),
	}, opts...)
	session, err := rcce.NewSession(s.PDES.Kernel(s.hostIdx()), s.Chips, places, opts...)
	if err != nil {
		return nil, err
	}
	// Boot-time LUT mappings of remote on-chip memory (§2.1); the host
	// region table has no PDES counterpart — routing decisions live in
	// the port's write policy.
	for _, pl := range places {
		lut := s.Chips[pl.Dev].Cores[pl.Core].LUT
		for d := range s.Chips {
			if d == pl.Dev {
				continue
			}
			if err := lut.MapRemoteDevice(d); err != nil {
				return nil, err
			}
		}
	}
	return session, nil
}

// --- device-side port ----------------------------------------------------

// pdesStreamKey identifies the published MPB range of one core's MPB
// half in a receiver's stream buffer. The half index (off divided by
// the per-core LMB size) matters: two cores share a tile, and keying
// by tile alone would let one core's publication clobber the
// bookkeeping of its tile-mate's, leaving a peer's stale stream alive
// across an invalidation.
type pdesStreamKey struct{ dev, tile, half int }

// pdesStream is a receiver-side copy of a published sender MPB range,
// installed by a bulk host-cache response (the SIF prefetch streaming
// of Fig. 4b).
type pdesStream struct {
	off  int
	data []byte
}

// pdesHeld is one delivery held while its device is down, replayed in
// arrival order at rejoin.
type pdesHeld struct {
	fn    func()
	bytes int
}

// pdesPort implements scc.OffChipPort for one device kernel. All its
// state is owned by that kernel; the only cross-kernel effects are
// PDES.Post calls toward the host kernel.
type pdesPort struct {
	sys  *PDESSystem
	dev  int
	chip *scc.Chip
	d2h  pdesLink

	// stream holds host-pushed copies of published sender ranges;
	// invalidations arrive on the same FIFO host-to-device link as any
	// subsequent flag write, so a stale hit is impossible while the
	// protocol's grant/ready handshake holds.
	stream map[pdesStreamKey]*pdesStream

	// Device-crash recovery (armed only with a DevCrashAt schedule).
	state               DevState
	epoch               uint8
	gate                *sim.Gate
	log                 *ckpt.Log
	img                 [][]byte
	imgWrites, imgBytes int
	held                []pdesHeld
}

func (pt *pdesPort) k() *sim.Kernel { return pt.sys.PDES.Kernel(pt.dev) }

// post sends fn to the host kernel, arriving at cycle at.
func (pt *pdesPort) post(at sim.Cycles, fn func()) {
	pt.sys.PDES.Post(pt.dev, at, pt.sys.hostIdx(), fn)
}

func (pt *pdesPort) sink() *trace.Sink { return pt.sys.sinks[pt.dev] }

// count mirrors Membership.count: an aggregate counter plus its
// per-device twin, on this device's own sink.
func (pt *pdesPort) count(name string, v int64) {
	sink := pt.sink()
	if !sink.Enabled() {
		return
	}
	sink.Add(name, v)
	sink.Add(name+".d"+strconv.Itoa(pt.dev), v)
}

// ackPolicy is the write-acknowledgement class of one off-chip store.
type ackPolicy int

const (
	ackPosted ackPolicy = iota // fire and forget (WCB absorbed)
	ackFPGA                    // FPGA fast-ack: local SIF stall only
	ackHost                    // blocks for the host's receipt
	ackRemote                  // blocks for the remote apply (4 hops)
)

// writePolicy mirrors the classic engine's per-scheme ack mode and
// region modes: routing acks remotely, hw-accel at the FPGA, and the
// posted-payload schemes (remote put's write-combining window, vDMA's
// posted region) split payload from flag area by offset.
func (pt *pdesPort) writePolicy(off int) ackPolicy {
	switch pt.sys.Config.Scheme {
	case SchemeRouting:
		return ackRemote
	case SchemeHWAccel:
		return ackFPGA
	case SchemeRemotePut, SchemeVDMA:
		if off%mem.CoreLMBSize < rcce.PayloadBytes {
			return ackPosted
		}
		return ackHost
	default:
		return ackHost
	}
}

// WriteLine implements scc.OffChipPort.
func (pt *pdesPort) WriteLine(p *sim.Proc, srcDev, srcCore, dev, tile, off int, data []byte, mask uint32) {
	// Copy the masked line out of the caller's WCB slot: that buffer is
	// reused the moment this method returns, but the bytes cross a
	// kernel boundary and land a window later.
	var buf [mem.LineSize]byte
	copy(buf[:], data)
	now := p.Now()
	done, arrive := pt.d2h.reserve(now, mem.LineSize)
	//lint:ignore simapi proof: reserve returns done = max(now, free) + occupancy >= now
	p.Delay(done - now) // the store occupies the SIF queue
	eng := pt.sys.eng
	switch pt.writePolicy(off) {
	case ackPosted:
		pt.post(arrive, func() { eng.write(srcDev, dev, tile, off, buf, mask, ackPosted, nil) })
	case ackFPGA:
		pt.post(arrive, func() { eng.write(srcDev, dev, tile, off, buf, mask, ackFPGA, nil) })
		p.Delay(pt.sys.params.SIFAckCycles)
	case ackHost, ackRemote:
		pol := pt.writePolicy(off)
		wake := func() { p.Unpark() }
		pt.post(arrive, func() { eng.write(srcDev, dev, tile, off, buf, mask, pol, wake) })
		p.Park("pcie write ack")
	}
}

// ReadLine implements scc.OffChipPort.
func (pt *pdesPort) ReadLine(p *sim.Proc, srcDev, srcCore, dev, tile, off int, buf []byte) {
	// Stream-buffer hit: the host cache already pushed this published
	// range here; the read is a local SIF access.
	if s := pt.stream[pdesStreamKey{dev, tile, off / mem.CoreLMBSize}]; s != nil && off >= s.off && off+len(buf) <= s.off+len(s.data) {
		p.Delay(pt.sys.params.SIFAckCycles)
		copy(buf, s.data[off-s.off:])
		return
	}
	now := p.Now()
	_, arrive := pt.d2h.reserve(now, pdesReqBytes)
	eng := pt.sys.eng
	var resp []byte
	wake := func(data []byte) { resp = data; p.Unpark() }
	pt.post(arrive, func() { eng.read(srcDev, dev, tile, off, len(buf), wake) })
	p.Park("pcie read")
	copy(buf, resp)
}

// MMIOWriteLine implements scc.OffChipPort: fused register writes are
// posted (the WCB already absorbed them on-core).
func (pt *pdesPort) MMIOWriteLine(p *sim.Proc, srcDev, srcCore, hostDev, off int, data []byte, mask uint32) {
	var buf [mem.LineSize]byte
	copy(buf[:], data)
	now := p.Now()
	done, arrive := pt.d2h.reserve(now, mem.LineSize)
	//lint:ignore simapi proof: reserve returns done = max(now, free) + occupancy >= now
	p.Delay(done - now)
	eng := pt.sys.eng
	pt.post(arrive, func() { eng.mmioWrite(hostDev, off, buf, mask) })
}

// MMIORead implements scc.OffChipPort: a blocking register read.
func (pt *pdesPort) MMIORead(p *sim.Proc, srcDev, srcCore, hostDev, off int, buf []byte) {
	now := p.Now()
	_, arrive := pt.d2h.reserve(now, pdesReqBytes)
	eng := pt.sys.eng
	var resp []byte
	wake := func(data []byte) { resp = data; p.Unpark() }
	pt.post(arrive, func() { eng.mmioRead(srcDev, hostDev, off, len(buf), wake) })
	p.Park("pcie mmio read")
	copy(buf, resp)
}

// deliver applies (or holds, while the device is down) one
// LMB-mutating delivery from the host.
func (pt *pdesPort) deliver(bytes int, fn func()) {
	if pt.state == DevDown || pt.state == DevRejoining {
		pt.held = append(pt.held, pdesHeld{fn: fn, bytes: bytes})
		return
	}
	fn()
}

// applyMasked lands the valid runs of a masked line write through the
// chip's host write path (journaled, flag waiters woken).
func (pt *pdesPort) applyMasked(tile, off int, data [mem.LineSize]byte, mask uint32) {
	for i := 0; i < mem.LineSize; {
		if mask&(1<<uint(i)) == 0 {
			i++
			continue
		}
		j := i
		for j < mem.LineSize && mask&(1<<uint(j)) != 0 {
			j++
		}
		pt.chip.HostWriteLMB(tile, off+i, data[i:j])
		i = j
	}
}

// dropStream discards the receiver-side copy of a published range
// (pushed by the host on CmdInvalidate). Never held: a crashed
// device's streams were already lost in the wipe.
func (pt *pdesPort) dropStream(dev, tile, half int) {
	delete(pt.stream, pdesStreamKey{dev, tile, half})
}

// installStream lands a bulk cache response.
func (pt *pdesPort) installStream(dev, tile, off int, data []byte) {
	pt.stream[pdesStreamKey{dev, tile, off / mem.CoreLMBSize}] = &pdesStream{off: off, data: data}
}

// --- device-crash lifecycle ---------------------------------------------

// armDeviceFaults wires the checkpoint journal, lifecycle gate and
// crash/rejoin schedule of every device onto its own kernel, mirroring
// newMembership (same counters, same drain/down/rejoin phases) without
// any cross-kernel state.
func (s *PDESSystem) armDeviceFaults(cfg fault.Config) {
	drain := fault.DefaultDrainCycles
	rejoin := cfg.RejoinCycles
	if rejoin <= 0 {
		rejoin = fault.DefaultRejoinCycles
	}
	interval := cfg.CkptInterval
	if interval <= 0 {
		interval = fault.DefaultCkptInterval
	}
	// The periodic checkpoint chains stop at a statically computed
	// horizon (end of the last scheduled outage) instead of a shared
	// pending counter: a cross-kernel counter would race.
	var horizon sim.Cycles
	for _, df := range cfg.DevCrashAt {
		down := df.Down
		if down <= 0 {
			down = rejoin
		}
		if end := df.At + drain + down; end > horizon {
			horizon = end
		}
	}
	for _, pt := range s.ports {
		pt := pt
		k := pt.k()
		pt.gate = sim.NewGate(k, fmt.Sprintf("dev%d.alive", pt.dev))
		pt.gate.Open()
		pt.log = ckpt.NewLog()
		pt.chip.SetLifecycleGate(pt.gate)
		pt.chip.SetWriteObserver(func(tile, off int, data []byte) {
			pt.log.Note(tile, off, data)
		})
		// Checkpoint zero: the boot image (see newMembership).
		pt.log.Checkpoint(pt.chip.SnapshotLMB())
		var tick func()
		tick = func() {
			pt.checkpoint()
			if k.Now()+interval <= horizon+interval {
				k.After(interval, tick)
			}
		}
		if horizon > 0 {
			k.After(interval, tick)
		}
	}
	for _, df := range cfg.DevCrashAt {
		df := df
		if df.Dev < 0 || df.Dev >= len(s.ports) {
			continue
		}
		pt := s.ports[df.Dev]
		down := df.Down
		if down <= 0 {
			down = rejoin
		}
		pt.k().At(df.At, func() { pt.fail(drain, down) })
	}
}

// checkpoint takes one periodic snapshot of an up device.
func (pt *pdesPort) checkpoint() {
	if pt.state != DevUp || pt.log == nil {
		return
	}
	banks := pt.chip.SnapshotLMB()
	pt.log.Checkpoint(banks)
	total := 0
	for _, b := range banks {
		total += len(b)
	}
	pt.count("ckpt.take", 1)
	pt.count("ckpt.bytes", int64(total))
}

// fail starts the drain phase of one scheduled crash (mirrors
// Membership.fail with wipe semantics).
func (pt *pdesPort) fail(drain, down sim.Cycles) {
	if pt.state != DevUp {
		return // void fault: overlapping schedule
	}
	// The injector's ledger names, emitted directly: the pdes fault
	// path has no Injector instance, but the vscctrace recovery table
	// keys on these counters.
	pt.count("fault.inject.devcrash", 1)
	pt.state = DevDraining
	pt.gate.Close()
	pt.k().After(drain, func() { pt.goDown(down) })
}

// goDown completes the crash: epoch advance, crash-point image capture,
// wipe, and every subsequent host delivery held.
func (pt *pdesPort) goDown(downFor sim.Cycles) {
	pt.state = DevDown
	pt.epoch++
	pt.count("epoch.advance", 1)
	pt.img, pt.imgWrites, pt.imgBytes = pt.log.Restore()
	pt.chip.WipeLMB()
	// Device-side copies of published ranges die with the device.
	for key := range pt.stream {
		delete(pt.stream, key)
	}
	pt.k().After(downFor, func() { pt.rejoin() })
}

// rejoin restores the crash-point image, replays held deliveries in
// arrival order, and reopens the lifecycle gate.
func (pt *pdesPort) rejoin() {
	pt.state = DevRejoining
	pt.chip.LoadLMB(pt.img)
	pt.count("replay.writes", int64(pt.imgWrites))
	pt.count("replay.bytes", int64(pt.imgBytes))
	pt.img = nil
	// Rebase the journal on the restored image (second-crash safety).
	pt.log.Checkpoint(pt.chip.SnapshotLMB())
	held := pt.held
	pt.held = nil
	pt.state = DevUp
	frames, bytes := 0, 0
	for _, h := range held {
		h.fn()
		frames++
		bytes += h.bytes
	}
	pt.count("replay.frames", int64(frames))
	pt.count("replay.frame_bytes", int64(bytes))
	pt.gate.Open()
	pt.count("fault.recover.rejoin", 1)
}

// --- host/PCIe kernel ----------------------------------------------------

// pdesCacheKey identifies one core's published MPB half in the host
// software cache (same half-granularity rationale as pdesStreamKey).
type pdesCacheKey struct{ dev, tile, half int }

// pdesHostCopy is the host cache's copy of one published range.
type pdesHostCopy struct {
	off, n  int
	data    []byte
	valid   bool
	readers []bool // devices holding a pushed stream of this copy
}

// pdesHost is the host/PCIe kernel's engine: the serialization point
// every classic host.Task service ran through, re-expressed as message
// handlers. All state is owned by the host kernel.
type pdesHost struct {
	sys   *PDESSystem
	k     *sim.Kernel
	idx   int
	busy  sim.Cycles
	h2d   []pdesLink
	banks []*host.Banks
	cache map[pdesCacheKey]*pdesHostCopy
}

func (e *pdesHost) sink() *trace.Sink { return e.sys.sinks[e.idx] }

// post sends fn to device dev's kernel, arriving at cycle at.
func (e *pdesHost) post(at sim.Cycles, dev int, fn func()) {
	e.sys.PDES.Post(e.idx, at, dev, fn)
}

// op serializes one host operation: it starts when the host is free
// and costs HostOpCycles; the return value is its completion time,
// from which any outbound link reservation starts.
func (e *pdesHost) op() sim.Cycles {
	start := e.k.Now()
	if e.busy > start {
		start = e.busy
	}
	e.busy = start + e.sys.params.HostOpCycles
	e.sink().Add("pdes.host.ops", 1)
	return e.busy
}

// write handles one device store: apply it at the destination device
// and acknowledge per policy.
func (e *pdesHost) write(srcDev, dev, tile, off int, data [mem.LineSize]byte, mask uint32, pol ackPolicy, wake func()) {
	done := e.op()
	dst := e.sys.ports[dev]
	if pol == ackHost && wake != nil {
		// Host receipt: acknowledged as soon as the host has the line,
		// concurrently with the forward delivery.
		_, arrive := e.h2d[srcDev].reserve(done, pdesAckBytes)
		e.post(arrive, srcDev, wake)
		wake = nil
	}
	_, arrive := e.h2d[dev].reserve(done, mem.LineSize)
	remoteWake := wake // non-nil only for ackRemote
	e.post(arrive, dev, func() {
		dst.deliver(int(mem.LineSize), func() {
			dst.applyMasked(tile, off, data, mask)
			if remoteWake != nil {
				// Remote acknowledgement: back across both links.
				ackDone, ackArrive := dst.d2h.reserve(dst.k().Now(), pdesAckBytes)
				_ = ackDone
				dst.post(ackArrive, func() {
					done := e.op()
					_, a := e.h2d[srcDev].reserve(done, pdesAckBytes)
					e.post(a, srcDev, remoteWake)
				})
			}
		})
	})
}

// read serves a device's foreign MPB line read.
func (e *pdesHost) read(srcDev, dev, tile, off, n int, wake func([]byte)) {
	done := e.op()
	key := pdesCacheKey{dev, tile, off / mem.CoreLMBSize}
	if c := e.cache[key]; c != nil && c.valid && off >= c.off && off+n <= c.off+c.n {
		// Cache hit: push the whole published range to the reader (the
		// prefetch stream), then serve the line out of it.
		e.sink().Add("pdes.cache.hits", 1)
		c.readers[srcDev] = true
		data := c.data
		cOff := c.off
		_, arrive := e.h2d[srcDev].reserve(done, len(data))
		rd := e.sys.ports[srcDev]
		e.post(arrive, srcDev, func() {
			rd.installStream(dev, tile, cOff, data)
			resp := make([]byte, n)
			copy(resp, data[off-cOff:])
			wake(resp)
		})
		return
	}
	// Transparent forward to the owning device (4 hops).
	e.sink().Add("pdes.cache.forwards", 1)
	owner := e.sys.ports[dev]
	_, arrive := e.h2d[dev].reserve(done, pdesReqBytes)
	e.post(arrive, dev, func() {
		owner.deliver(n, func() {
			data := make([]byte, n)
			owner.chip.HostReadLMB(tile, off, data)
			_, respArrive := owner.d2h.reserve(owner.k().Now(), n)
			owner.post(respArrive, func() {
				done := e.op()
				_, a := e.h2d[srcDev].reserve(done, n)
				e.post(a, srcDev, func() { wake(data) })
			})
		})
	})
}

// mmioWrite lands a fused register write and executes any armed
// command.
func (e *pdesHost) mmioWrite(hostDev, off int, data [mem.LineSize]byte, mask uint32) {
	done := e.op()
	core := off / host.BankBytes
	cmd, trigger := e.banks[hostDev].Write(core, data[:], mask)
	if !trigger {
		return
	}
	cmd.SrcDev, cmd.SrcCore = hostDev, core
	if err := cmd.Validate(len(e.sys.Chips)); err != nil {
		// A corrupt command cannot occur without the fault injector;
		// dropping it deterministically matches the classic validator's
		// reject-and-continue behaviour.
		return
	}
	switch cmd.Cmd {
	case host.CmdUpdate:
		e.update(cmd, done)
	case host.CmdInvalidate:
		e.invalidate(cmd, done)
	case host.CmdCopy:
		e.vdmaCopy(cmd, done)
	}
}

// mmioRead serves a blocking register read.
func (e *pdesHost) mmioRead(srcDev, hostDev, off, n int, wake func([]byte)) {
	done := e.op()
	bank := e.banks[hostDev].Read(off / host.BankBytes)
	resp := make([]byte, n)
	copy(resp, bank[off%host.BankBytes:])
	_, arrive := e.h2d[srcDev].reserve(done, n)
	e.post(arrive, srcDev, func() { wake(resp) })
}

// update executes CmdUpdate: fetch the published range of the
// requester's MPB into the host cache (warming the local-put/
// remote-get path).
func (e *pdesHost) update(cmd host.BankCommand, done sim.Cycles) {
	dev := cmd.SrcDev
	tile := scc.CoreTile(cmd.SrcCore)
	src := e.sys.ports[dev]
	_, arrive := e.h2d[dev].reserve(done, pdesReqBytes)
	e.post(arrive, dev, func() {
		src.deliver(cmd.Count, func() {
			data := make([]byte, cmd.Count)
			src.chip.HostReadLMB(tile, cmd.SrcOff, data)
			_, respArrive := src.d2h.reserve(src.k().Now(), cmd.Count)
			src.post(respArrive, func() {
				e.op()
				key := pdesCacheKey{dev, tile, cmd.SrcOff / mem.CoreLMBSize}
				c := e.cache[key]
				if c == nil {
					c = &pdesHostCopy{readers: make([]bool, len(e.sys.Chips))}
					e.cache[key] = c
				}
				c.off, c.n, c.data, c.valid = cmd.SrcOff, cmd.Count, data, true
				for i := range c.readers {
					c.readers[i] = false
				}
			})
		})
	})
}

// invalidate executes CmdInvalidate: drop the host copy and push
// stream invalidations to every device holding one. The invalidations
// ride the same FIFO host-to-device links as all subsequent flag
// writes, so no reader can observe a stale stream after a flag that
// permits the next read.
func (e *pdesHost) invalidate(cmd host.BankCommand, done sim.Cycles) {
	dev := cmd.SrcDev
	tile := scc.CoreTile(cmd.SrcCore)
	half := cmd.SrcOff / mem.CoreLMBSize
	c := e.cache[pdesCacheKey{dev, tile, half}]
	if c == nil || !c.valid {
		return
	}
	if cmd.SrcOff >= c.off+c.n || cmd.SrcOff+cmd.Count <= c.off {
		return // disjoint range: the copy stays valid
	}
	c.valid = false
	for rd := 0; rd < len(c.readers); rd++ { // ascending: deterministic
		if !c.readers[rd] {
			continue
		}
		c.readers[rd] = false
		pt := e.sys.ports[rd]
		_, arrive := e.h2d[rd].reserve(done, pdesAckBytes)
		e.post(arrive, rd, func() { pt.dropStream(dev, tile, half) })
	}
}

// vdmaCopy executes CmdCopy: the virtual DMA controller reads the
// source slot out of the requester's MPB, writes it (plus the notify
// flag, in the same delivery so data-before-flag holds trivially) to
// the destination, and raises the completion flag at the requester.
func (e *pdesHost) vdmaCopy(cmd host.BankCommand, done sim.Cycles) {
	e.sink().Add("pdes.vdma.copies", 1)
	srcDev := cmd.SrcDev
	srcTile := scc.CoreTile(cmd.SrcCore)
	src := e.sys.ports[srcDev]
	setup := done + e.sys.params.DMASetupCycles
	_, arrive := e.h2d[srcDev].reserve(setup, pdesReqBytes)
	e.post(arrive, srcDev, func() {
		src.deliver(cmd.Count, func() {
			data := make([]byte, cmd.Count)
			src.chip.HostReadLMB(srcTile, cmd.SrcOff, data)
			_, respArrive := src.d2h.reserve(src.k().Now(), cmd.Count)
			src.post(respArrive, func() {
				done := e.op()
				if cmd.Flags&host.FlagCompletion != 0 {
					_, ca := e.h2d[srcDev].reserve(done, pdesAckBytes)
					e.post(ca, srcDev, func() {
						src.deliver(1, func() {
							src.chip.HostWriteLMB(srcTile, cmd.ComplOff, []byte{cmd.ComplVal})
						})
					})
				}
				dst := e.sys.ports[cmd.DstDev]
				_, da := e.h2d[cmd.DstDev].reserve(done, cmd.Count)
				e.post(da, cmd.DstDev, func() {
					dst.deliver(cmd.Count, func() {
						dst.chip.HostWriteLMB(cmd.DstTile, cmd.DstOff, data)
						if cmd.Flags&host.FlagNotifyDest != 0 {
							dst.chip.HostWriteLMB(cmd.DstTile, cmd.NotifyOff, []byte{cmd.NotifyVal})
						}
					})
				})
			})
		})
	})
}
