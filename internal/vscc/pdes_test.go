package vscc

// Serial-vs-PDES byte-identity gates (ISSUE PR-6, acceptance bar). The
// PDES engine's determinism claim is that the worker count is
// unobservable: a run with W workers produces byte-identical traces,
// recovery ledgers, checkpoint state and final clocks to the same run
// with 1 worker (the serial reference). The table below pins that
// across all five inter-device schemes, with and without a scheduled
// device crash.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"vscc/internal/fault"
	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/trace"
)

// pdesFingerprint is everything a PDES run can externalize: the Chrome
// trace export and metrics reports of every kernel's sink (counters
// include the fault/recovery ledger), each kernel's final clock and
// event count, every device's LMB image, and the checkpoint-journal
// statistics.
type pdesFingerprint struct {
	chrome  string
	reports string
	clocks  string
	lmbHash string
	ckpt    string
}

func (f pdesFingerprint) diff(t *testing.T, g pdesFingerprint) {
	t.Helper()
	if f.chrome != g.chrome {
		t.Errorf("chrome trace differs (%d vs %d bytes)", len(f.chrome), len(g.chrome))
	}
	if f.reports != g.reports {
		t.Errorf("metrics reports differ:\n--- serial ---\n%s\n--- parallel ---\n%s", f.reports, g.reports)
	}
	if f.clocks != g.clocks {
		t.Errorf("final clocks differ: %q vs %q", f.clocks, g.clocks)
	}
	if f.lmbHash != g.lmbHash {
		t.Errorf("LMB images differ: %s vs %s", f.lmbHash, g.lmbHash)
	}
	if f.ckpt != g.ckpt {
		t.Errorf("checkpoint stats differ: %q vs %q", f.ckpt, g.ckpt)
	}
}

// devCrashSpec is the fault schedule of the faulted table rows: device
// 1 crashes mid-workload and rejoins before the workload ends.
func devCrashSpec() *fault.Config {
	return &fault.Config{
		Seed:         1,
		DevCrashAt:   []fault.DeviceFault{{At: 400_000, Dev: 1, Down: 500_000}},
		CkptInterval: 200_000,
	}
}

// runPDESWorkload drives a mixed cross-device workload (two
// cross-device pairs plus one on-chip pair, mixed message sizes
// straddling the direct-path threshold and the chunking boundary) on
// the decomposed engine and returns its fingerprint.
func runPDESWorkload(t *testing.T, scheme Scheme, faults *fault.Config, workers int) pdesFingerprint {
	t.Helper()
	sys, err := NewPDESSystem(Config{Devices: 2, Scheme: scheme, Faults: faults}, workers)
	if err != nil {
		t.Fatal(err)
	}
	var col trace.Collector
	sinks := make([]*trace.Sink, 3)
	for i := 0; i < 2; i++ {
		sinks[i] = col.New(fmt.Sprintf("k%d", i), sys.PDES.Kernel(i))
	}
	sinks[2] = col.New("khost", sys.PDES.Kernel(2))
	sys.Instrument(sinks)

	places := []rcce.Place{
		{Dev: 0, Core: 0}, {Dev: 0, Core: 1}, // ranks 0, 1
		{Dev: 1, Core: 0}, {Dev: 1, Core: 1}, // ranks 2, 3
	}
	session, err := sys.NewSessionAt(places)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{1, 32, 100, 4096, 9000}
	rounds := 3
	if faults != nil {
		rounds = 8 // long enough to straddle the outage window
	}
	err = session.Run(func(r *rcce.Rank) {
		peer := map[int]int{0: 2, 2: 0, 1: 3, 3: 1}[r.ID()]
		for rep := 0; rep < rounds; rep++ {
			for _, n := range sizes {
				msg := pattern(n, byte(rep)+byte(r.ID()))
				got := make([]byte, n)
				if r.ID() < 2 { // device 0 sends first
					if err := r.Send(peer, msg); err != nil {
						panic(err)
					}
					if err := r.Recv(peer, got); err != nil {
						panic(err)
					}
				} else {
					if err := r.Recv(peer, got); err != nil {
						panic(err)
					}
					if err := r.Send(peer, msg); err != nil {
						panic(err)
					}
				}
				want := pattern(n, byte(rep)+byte(peer))
				if !bytes.Equal(got, want) {
					panic(fmt.Sprintf("rank %d rep %d size %d corrupted", r.ID(), rep, n))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	caps := col.Captures()
	var chrome bytes.Buffer
	if err := trace.WriteChrome(&chrome, caps); err != nil {
		t.Fatal(err)
	}
	var clocks bytes.Buffer
	for i := 0; i < sys.PDES.N(); i++ {
		k := sys.PDES.Kernel(i)
		fmt.Fprintf(&clocks, "k%d: now=%d events=%d\n", i, k.Now(), k.Events())
	}
	fmt.Fprintf(&clocks, "windows=%d\n", sys.PDES.Windows())
	h := sha256.New()
	for _, chip := range sys.Chips {
		for _, bank := range chip.SnapshotLMB() {
			h.Write(bank)
		}
	}
	var ck bytes.Buffer
	for d, pt := range sys.ports {
		if pt.log == nil {
			continue
		}
		n, bytes := pt.log.Checkpoints()
		w, wb := pt.log.TailLen()
		fmt.Fprintf(&ck, "d%d: ckpts=%d bytes=%d tail=%d/%d epoch=%d state=%v\n", d, n, bytes, w, wb, pt.epoch, pt.state)
	}
	return pdesFingerprint{
		chrome:  chrome.String(),
		reports: trace.Report(caps),
		clocks:  clocks.String(),
		lmbHash: hex.EncodeToString(h.Sum(nil)),
		ckpt:    ck.String(),
	}
}

// TestPDESSerialParallelIdentity is the identity table: every scheme,
// with and without a device crash, must be worker-count-invariant.
func TestPDESSerialParallelIdentity(t *testing.T) {
	for _, scheme := range allSchemes {
		scheme := scheme
		for _, faulted := range []bool{false, true} {
			faulted := faulted
			name := scheme.String()
			if faulted {
				name += "/devcrash"
			}
			t.Run(name, func(t *testing.T) {
				spec := func() *fault.Config {
					if faulted {
						return devCrashSpec()
					}
					return nil
				}
				serial := runPDESWorkload(t, scheme, spec(), 1)
				for _, workers := range []int{2, 4} {
					parallel := runPDESWorkload(t, scheme, spec(), workers)
					serial.diff(t, parallel)
				}
				if faulted {
					// The ledger must show the full crash lifecycle.
					for _, want := range []string{
						"fault.inject.devcrash", "epoch.advance",
						"replay.writes", "fault.recover.rejoin",
					} {
						if !bytes.Contains([]byte(serial.reports), []byte(want)) {
							t.Errorf("recovery ledger missing %q", want)
						}
					}
				}
			})
		}
	}
}

// TestPDESRerunIdentity pins run-to-run determinism of the parallel
// engine itself (same workers, two runs, same bytes).
func TestPDESRerunIdentity(t *testing.T) {
	a := runPDESWorkload(t, SchemeVDMA, devCrashSpec(), 4)
	b := runPDESWorkload(t, SchemeVDMA, devCrashSpec(), 4)
	a.diff(t, b)
}

// TestPDESResultMatchesClassic cross-checks payload integrity against
// the classic single-kernel engine: timing differs by design (the PDES
// fabric is not the framed fabric), data must not.
func TestPDESResultMatchesClassic(t *testing.T) {
	const size = 7000
	msg := pattern(size, byte(size%256))
	for _, scheme := range allSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			got, _ := crossPair(t, scheme, size, 2) // classic reference
			if !bytes.Equal(got, msg) {
				t.Fatal("classic engine corrupted data")
			}
			sys, err := NewPDESSystem(Config{Devices: 2, Scheme: scheme}, 2)
			if err != nil {
				t.Fatal(err)
			}
			session, err := sys.NewSessionAt([]rcce.Place{{Dev: 0, Core: 0}, {Dev: 1, Core: 0}})
			if err != nil {
				t.Fatal(err)
			}
			pgot := make([]byte, size)
			err = session.Run(func(r *rcce.Rank) {
				for i := 0; i < 2; i++ {
					if r.ID() == 0 {
						if err := r.Send(1, msg); err != nil {
							panic(err)
						}
					} else if err := r.Recv(0, pgot); err != nil {
						panic(err)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pgot, got) {
				t.Fatal("pdes engine delivered different bytes than the classic engine")
			}
		})
	}
}

// TestPDESRejectsUnsupportedConfigs pins the constructor's validation
// surface: cross-device oracles and packet-level faults cannot exist
// under domain decomposition.
func TestPDESRejectsUnsupportedConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"checker", Config{Devices: 2, Check: true}},
		{"packet-faults", Config{Devices: 2, Faults: &fault.Config{DropPer10k: 5}}},
		{"flag-faults", Config{Devices: 2, Faults: &fault.Config{FlagLossPer10k: 5}}},
		{"host-crash", Config{Devices: 2, Faults: &fault.Config{CrashAt: []sim.Cycles{100}}}},
		{"link-down", Config{Devices: 2, Faults: &fault.Config{DevLinkDownAt: []fault.DeviceFault{{At: 1, Dev: 0}}}}},
		{"hwaccel-3dev", Config{Devices: 3, Scheme: SchemeHWAccel}},
		{"no-devices", Config{Devices: 0}},
	}
	for _, tc := range cases {
		if _, err := NewPDESSystem(tc.cfg, 1); err == nil {
			t.Errorf("%s: config accepted, want error", tc.name)
		}
	}
	// The supported subset must pass.
	if _, err := NewPDESSystem(Config{Devices: 2, Faults: devCrashSpec()}, 1); err != nil {
		t.Errorf("device-crash config rejected: %v", err)
	}
}
