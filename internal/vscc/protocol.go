package vscc

import (
	"fmt"

	"vscc/internal/fault"
	"vscc/internal/host"
	"vscc/internal/mem"
	"vscc/internal/rcce"
	"vscc/internal/sim"
)

// pairSeq carries the persistent chunk counters of one pair (the vDMA
// scheme uses value-encoded flags, never cleared, so no reset races
// exist across messages).
type pairSeq struct {
	out uint64 // chunks the sender issued
	in  uint64 // chunks the receiver drained
	// cmd is the last vDMA command this pair's sender programmed; the
	// recovery ladder re-issues it when a wait on its effects times out
	// (re-copying the newest chunk is idempotent: same data, same flag
	// values, and flag counters never move backward under re-issue).
	cmd     host.BankCommand
	haveCmd bool
}

// seqVal encodes a chunk sequence number as a non-zero flag byte.
func seqVal(s uint64) byte { return byte((s-1)%255) + 1 }

// interDeviceProtocol is the session wire protocol of a vSCC: same-device
// pairs use the base (on-chip) protocol, cross-device pairs the
// configured host-accelerated scheme.
type interDeviceProtocol struct {
	base      rcce.Protocol
	scheme    Scheme
	threshold int
	// seqs holds the per-ordered-pair counters, pre-allocated as a flat
	// nRanks×nRanks array rather than a lazily-grown map: under PDES a
	// pair's sender and receiver run on different kernels, and while
	// they touch disjoint fields of the same pairSeq (sender: out/cmd,
	// receiver: in — race-free by the Go memory model), a map mutated on
	// first use would race structurally.
	seqs   []pairSeq
	nRanks int
	// slot overrides the vDMA double-buffer slot size (ablation knob;
	// 0 = vdmaHalf). At most half the payload area.
	slot int
	// published tracks, per sender rank, how many bytes of its MPB the
	// host cache currently mirrors; the sender invalidates that range
	// before every reuse (§3.1's explicit consistency control). A slice
	// (single-writer per rank) for the same PDES reason as seqs.
	published []int

	// faults/rec arm the recovery ladder on every engaged wait: nil
	// faults means waits run unbudgeted on the exact same code path.
	faults *fault.Injector
	rec    fault.Recovery
	// mem is the device membership manager; nil unless the fault
	// schedule contains device crash/link-down faults.
	mem *Membership
}

// waitLadder runs one engaged wait under the recovery ladder: each
// attempt gets a doubling cycle budget; between attempts the rearm
// action (if any) re-issues the operation whose effect the wait is for.
// Exhausting the ladder panics the rank with a deterministic error
// (surfaced by Kernel.Run), never a silent deadlock.
//
// peer is the rank on the far side of the wait. When a membership
// manager is armed and the peer's device went down (or restarted into a
// new epoch) mid-wait, the failure is a device loss, not a lost flag
// write: with transparent retry (devretry=1) the ladder parks until the
// device rejoins — the journal replay then completes the handshake
// byte-identically — and without it the rank fails deterministically
// with rcce.ErrDeviceLost.
func (ip *interDeviceProtocol) waitLadder(r *rcce.Rank, site string, peer int, wait func(sim.Cycles) bool, rearm func()) {
	if ip.faults == nil {
		wait(0)
		return
	}
	dev := r.Session().PlaceOf(r.ID()).Dev
	peerDev := r.Session().PlaceOf(peer).Dev
	var epoch0 uint8
	if ip.mem != nil {
		epoch0 = ip.mem.Epoch(peerDev)
	}
	budget := ip.rec.WaitBudget
	for a := 0; ; a++ {
		if wait(budget) {
			if a > 0 {
				ip.faults.RecordRecovery("wait-ok", site, -1)
			}
			return
		}
		if ip.mem != nil && (ip.mem.Lost(peerDev) || ip.mem.Epoch(peerDev) != epoch0) {
			if !ip.rec.DeviceRetry {
				panic(fmt.Errorf("vscc: %s: rank %d: device %d lost at cycle %d: %w",
					site, r.ID(), peerDev, r.Now(), rcce.ErrDeviceLost))
			}
			ip.faults.RecordRecovery("device-wait", site, peerDev)
			ip.mem.AwaitUp(r.Ctx().Proc, peerDev)
			epoch0 = ip.mem.Epoch(peerDev)
			if rearm != nil {
				rearm()
			}
			a-- // a device outage consumes no ladder attempt
			continue
		}
		if a >= ip.rec.MaxWaitRetries {
			panic(fmt.Sprintf("vscc: %s: rank %d lost completion after %d retries at cycle %d", site, r.ID(), a, r.Now()))
		}
		ip.faults.RecordRecovery("wait-retry", site, dev)
		if rearm != nil {
			rearm()
		}
		budget *= 2
	}
}

// LostPeer reports a deterministic device-loss error for a stalled
// non-blocking engine (the ircce.Engine consults it before sleeping).
// With transparent retry the engine just keeps sleeping: the rejoin
// replay lands the missing flags and wakes it.
func (ip *interDeviceProtocol) LostPeer(r *rcce.Rank, peer int) error {
	if ip.mem == nil || ip.rec.DeviceRetry {
		return nil
	}
	peerDev := r.Session().PlaceOf(peer).Dev
	if peerDev != r.Session().PlaceOf(r.ID()).Dev && ip.mem.Lost(peerDev) {
		return fmt.Errorf("vscc: rank %d: device %d lost at cycle %d: %w",
			r.ID(), peerDev, r.Now(), rcce.ErrDeviceLost)
	}
	return nil
}

// awaitReady and awaitSent are the clear-based handshake waits under the
// ladder. Their flag writes recover at the host (write-verify) and on
// the fabric (replay), so they carry no rearm action of their own.
func (ip *interDeviceProtocol) awaitReady(r *rcce.Rank, dest int, rearm func()) {
	ip.waitLadder(r, "vscc.ready", dest, func(b sim.Cycles) bool { return r.AwaitReadyFor(dest, b) }, rearm)
}

func (ip *interDeviceProtocol) awaitSent(r *rcce.Rank, src int, rearm func()) {
	ip.waitLadder(r, "vscc.sent", src, func(b sim.Cycles) bool { return r.AwaitSentFor(src, b) }, rearm)
}

// waitFlag is a value-encoded flag wait under the ladder; peer is the
// rank on the far side of the transfer.
func (ip *interDeviceProtocol) waitFlag(r *rcce.Rank, site string, peer, tile, off int, pred func(byte) bool, rearm func()) {
	ip.waitLadder(r, site, peer, func(b sim.Cycles) bool {
		_, ok := r.Ctx().WaitFlagFor(tile, off, pred, b)
		return ok
	}, rearm)
}

// rearmVDMA returns the re-programming action for a pair's newest vDMA
// command (nil before the first command).
func (ip *interDeviceProtocol) rearmVDMA(r *rcce.Rank, st *pairSeq) func() {
	return func() {
		if !st.haveCmd {
			return
		}
		ip.faults.RecordRecovery("vdma-rearm", "vscc.vdma", r.Session().PlaceOf(r.ID()).Dev)
		ip.mmio(r, st.cmd)
	}
}

// degraded reports whether the fast path toward peer should fall back to
// direct remote puts: either endpoint's device has crossed the
// injector's recovery threshold. Evaluated per message; the fallbacks
// are flag-compatible with the unmodified receiver paths, so only the
// sender changes behaviour.
func (ip *interDeviceProtocol) degraded(r *rcce.Rank, peer int) bool {
	if ip.faults == nil {
		return false
	}
	return ip.faults.Degraded(r.Session().PlaceOf(r.ID()).Dev) ||
		ip.faults.Degraded(r.Session().PlaceOf(peer).Dev)
}

// Name implements rcce.Protocol.
func (ip *interDeviceProtocol) Name() string {
	return fmt.Sprintf("vscc(%s, on-chip %s)", ip.scheme, ip.base.Name())
}

func (ip *interDeviceProtocol) pair(src, dst int) *pairSeq {
	return &ip.seqs[src*ip.nRanks+dst]
}

// Send implements rcce.Protocol.
func (ip *interDeviceProtocol) Send(r *rcce.Rank, dest int, data []byte) {
	if r.Session().SameDevice(r.ID(), dest) {
		ip.base.Send(r, dest, data)
		return
	}
	if len(data) == 0 {
		return
	}
	// Per-scheme message-size histogram of the inter-device traffic, plus
	// the direct-vs-engaged split of the §3.3 threshold. Recorded via the
	// rank's own (per-device under PDES) sink.
	if sink := r.Sink(); sink.Enabled() {
		sink.Observe("vscc."+ip.scheme.Key()+".msg_size", float64(len(data)))
		if ip.threshold > 0 && len(data) <= ip.threshold {
			sink.Add("vscc.direct_sends", 1)
		} else {
			sink.Add("vscc.engaged_sends", 1)
		}
	}
	// Promotion hysteresis: a transfer that completes without any
	// recovery on either endpoint device counts toward re-promoting a
	// degraded device (fault.Injector.CleanTransfer).
	var myDev, peerDev int
	var recBase int
	if ip.faults != nil {
		myDev = r.Session().PlaceOf(r.ID()).Dev
		peerDev = r.Session().PlaceOf(dest).Dev
		recBase = ip.faults.RecoveryCount(myDev) + ip.faults.RecoveryCount(peerDev)
	}
	if ip.threshold > 0 && len(data) <= ip.threshold {
		ip.directSend(r, dest, data)
	} else {
		switch ip.scheme {
		case SchemeRouting:
			// The default RCCE protocol over the (slow) transparent path.
			rcce.DefaultProtocol{}.Send(r, dest, data)
		case SchemeHostRouted, SchemeHWAccel, SchemeRemotePut:
			// Remote put; under SchemeHostRouted every line write stalls for
			// a host round trip (the lower black curve of Fig. 6b), under
			// SchemeHWAccel the FPGA acks it (upper curve), and under
			// SchemeRemotePut the host write-combining buffer absorbs it.
			ip.remotePutSend(r, dest, data)
		case SchemeCachedGet:
			ip.cachedSend(r, dest, data)
		case SchemeVDMA:
			ip.vdmaSend(r, dest, data)
		}
	}
	if ip.faults != nil && ip.faults.RecoveryCount(myDev)+ip.faults.RecoveryCount(peerDev) == recBase {
		ip.faults.CleanTransfer(myDev)
		ip.faults.CleanTransfer(peerDev)
	}
}

// Recv implements rcce.Protocol.
func (ip *interDeviceProtocol) Recv(r *rcce.Rank, src int, buf []byte) {
	if r.Session().SameDevice(r.ID(), src) {
		ip.base.Recv(r, src, buf)
		return
	}
	if len(buf) == 0 {
		return
	}
	if ip.threshold > 0 && len(buf) <= ip.threshold {
		ip.directRecv(r, src, buf)
		return
	}
	switch ip.scheme {
	case SchemeRouting:
		rcce.DefaultProtocol{}.Recv(r, src, buf)
	case SchemeHostRouted, SchemeHWAccel, SchemeRemotePut:
		ip.remotePutRecv(r, src, buf)
	case SchemeCachedGet:
		ip.cachedRecv(r, src, buf)
	case SchemeVDMA:
		ip.vdmaRecv(r, src, buf)
	}
}

// --- direct small-message path ------------------------------------------

// directSend transfers a small message without engaging the host
// machinery: once the receiver grants its buffer, the payload is written
// straight into the receiver's MPB, followed by the flag (§3.3: "to
// recover low latency for small messages we have defined a threshold for
// a core to directly transfer data"). Under the vDMA scheme the
// handshake reuses the scheme's value-encoded counters (a one-chunk
// message), so mixing direct and DMA transfers on one pair stays
// consistent; the other schemes use the clear-based flags throughout.
func (ip *interDeviceProtocol) directSend(r *rcce.Rank, dest int, data []byte) {
	switch ip.scheme {
	case SchemeVDMA:
		ip.vdmaDirectSend(r, dest, data)
		return
	case SchemeCachedGet:
		// Local-put direct: skip the update/invalidate commands — for a
		// line or two, the receiver's transparent read beats warming the
		// host cache.
		ip.cachedDirectSend(r, dest, data)
		return
	}
	ctx := r.Ctx()
	dev, tile, base := r.MPBOf(dest)
	ip.awaitReady(r, dest, nil) // buffer grant
	ctx.CopyPrivate(len(data))
	ctx.WriteMPB(dev, tile, base, data)
	ctx.FlushWCB()
	r.SignalSent(dest)
	ip.awaitReady(r, dest, nil)
}

func (ip *interDeviceProtocol) directRecv(r *rcce.Rank, src int, buf []byte) {
	switch ip.scheme {
	case SchemeVDMA:
		ip.vdmaDirectRecv(r, src, buf)
		return
	case SchemeCachedGet:
		ip.cachedDirectRecv(r, src, buf)
		return
	}
	ctx := r.Ctx()
	dev, tile, base := r.MPBOf(r.ID())
	r.SignalReady(src) // grant
	ip.awaitSent(r, src, nil)
	ctx.InvalidateMPB()
	ctx.ReadMPB(dev, tile, base, buf)
	ctx.CopyPrivate(len(buf))
	r.SignalReady(src)
}

// cachedDirectSend/-Recv: the cached scheme's sub-threshold variant —
// the usual local-put handshake without engaging the host cache. The
// sender must still invalidate any previously published host copy, or
// the receiver's reads could be served stale data from the cache.
func (ip *interDeviceProtocol) cachedDirectSend(r *rcce.Rank, dest int, data []byte) {
	ctx := r.Ctx()
	myDev, myTile, myBase := r.MPBOf(r.ID())
	if prev := ip.published[r.ID()]; prev > 0 {
		ip.mmio(r, host.BankCommand{Cmd: host.CmdInvalidate, SrcOff: myBase, Count: prev})
		ip.published[r.ID()] = 0
	}
	ctx.CopyPrivate(len(data))
	ctx.WriteMPB(myDev, myTile, myBase, data)
	ctx.FlushWCB()
	r.SignalSent(dest)
	ip.awaitReady(r, dest, nil)
}

func (ip *interDeviceProtocol) cachedDirectRecv(r *rcce.Rank, src int, buf []byte) {
	ctx := r.Ctx()
	srcDev, srcTile, srcBase := r.MPBOf(src)
	ip.awaitSent(r, src, nil)
	ctx.InvalidateMPB()
	ctx.ReadMPB(srcDev, srcTile, srcBase, buf)
	ctx.CopyPrivate(len(buf))
	r.SignalReady(src)
}

// vdmaDirectSend is the sub-threshold path of the vDMA scheme: the same
// counter flow as a one-chunk DMA transfer, but the core writes the
// payload itself instead of programming the controller.
func (ip *interDeviceProtocol) vdmaDirectSend(r *rcce.Rank, dest int, data []byte) {
	ctx := r.Ctx()
	st := ip.pair(r.ID(), dest)
	_, myTile, myBase := r.MPBOf(r.ID())
	dstDev, dstTile, dstBase := r.MPBOf(dest)
	st.out++
	seq := st.out
	grantOff := myBase + rcce.FlagByteAt(rcce.FlagGrant, dest)
	glo, ghi := seqVal(seq), seqVal(seq+1)
	ip.waitFlag(r, "vscc.vdma.grant", dest, myTile, grantOff, func(b byte) bool { return b == glo || b == ghi }, nil)
	slot := int((seq - 1) % 2 * uint64(ip.slotBytes()))
	ctx.CopyPrivate(len(data))
	ctx.WriteMPB(dstDev, dstTile, dstBase+slot, data)
	ctx.FlushWCB()
	// Raise the sent counter directly (flag write, fenced behind data).
	ctx.WriteMPB(dstDev, dstTile, dstBase+rcce.FlagByteAt(rcce.FlagSent, r.ID()), []byte{seqVal(seq)})
	ctx.FlushWCB()
	readyOff := myBase + rcce.FlagByteAt(rcce.FlagReady, dest)
	final := seqVal(seq)
	ip.waitFlag(r, "vscc.vdma.ready", dest, myTile, readyOff, func(b byte) bool { return b == final }, nil)
}

func (ip *interDeviceProtocol) vdmaDirectRecv(r *rcce.Rank, src int, buf []byte) {
	ctx := r.Ctx()
	st := ip.pair(src, r.ID())
	myDev, myTile, myBase := r.MPBOf(r.ID())
	srcDev, srcTile, srcBase := r.MPBOf(src)
	st.in++
	seq := st.in
	ctx.WriteMPB(srcDev, srcTile, srcBase+rcce.FlagByteAt(rcce.FlagGrant, r.ID()), []byte{seqVal(seq)})
	ctx.FlushWCB()
	sentOff := myBase + rcce.FlagByteAt(rcce.FlagSent, src)
	lo, hi := seqVal(seq), seqVal(seq+1)
	ip.waitFlag(r, "vscc.vdma.sent", src, myTile, sentOff, func(b byte) bool { return b == lo || b == hi }, nil)
	slot := int((seq - 1) % 2 * uint64(ip.slotBytes()))
	ctx.InvalidateMPB()
	ctx.ReadMPB(myDev, myTile, myBase+slot, buf)
	ctx.CopyPrivate(len(buf))
	ctx.WriteMPB(srcDev, srcTile, srcBase+rcce.FlagByteAt(rcce.FlagReady, r.ID()), []byte{seqVal(seq)})
	ctx.FlushWCB()
}

// --- remote put (Fig. 4c; also the hardware-accelerated upper bound) ---

// remotePutSend streams chunks directly into the receiver's MPB. Under
// SchemeRemotePut the host write-combining buffer absorbs the posted
// lines and flushes bursts; under SchemeHWAccel the FPGA acks them.
// The receiver's communication buffer is shared by every potential
// sender, so each chunk is granted by the receiver (ready flag raised at
// the start of the matching receive) before the sender may write it.
func (ip *interDeviceProtocol) remotePutSend(r *rcce.Rank, dest int, data []byte) {
	tl := r.Session().Timeline()
	ctx := r.Ctx()
	dev, tile, base := r.MPBOf(dest)
	for len(data) > 0 {
		n := len(data)
		if n > rcce.ChunkBytes {
			n = rcce.ChunkBytes
		}
		t0 := r.Now()
		ip.awaitReady(r, dest, nil) // buffer grant
		tl.Record("sender", "waitgrant", t0, r.Now())
		t0 = r.Now()
		ctx.CopyPrivate(n)
		ctx.WriteMPB(dev, tile, base, data[:n])
		ctx.FlushWCB()
		tl.Record("sender", "remoteput", t0, r.Now())
		r.SignalSent(dest)
		data = data[n:]
	}
	t0 := r.Now()
	ip.awaitReady(r, dest, nil) // final drain acknowledgement
	tl.Record("sender", "waitack", t0, r.Now())
}

func (ip *interDeviceProtocol) remotePutRecv(r *rcce.Rank, src int, buf []byte) {
	tl := r.Session().Timeline()
	ctx := r.Ctx()
	dev, tile, base := r.MPBOf(r.ID())
	for len(buf) > 0 {
		n := len(buf)
		if n > rcce.ChunkBytes {
			n = rcce.ChunkBytes
		}
		r.SignalReady(src) // grant the buffer to this sender
		t0 := r.Now()
		ip.awaitSent(r, src, nil)
		tl.Record("receiver", "waitdata", t0, r.Now())
		t0 = r.Now()
		ctx.InvalidateMPB()
		ctx.ReadMPB(dev, tile, base, buf[:n])
		ctx.CopyPrivate(n)
		tl.Record("receiver", "localget", t0, r.Now())
		buf = buf[n:]
	}
	r.SignalReady(src) // all chunks drained
}

// --- local put / remote get with the software cache (Fig. 4b) ----------

// cachedSend performs the paper's optimized default scheme: local put,
// then an update command telling the communication task where the
// message lies, so it can prefetch the MPB into its cache and answer the
// receiver's remote reads; before reusing the buffer, the sender
// explicitly invalidates the outdated host copy (§3.1).
func (ip *interDeviceProtocol) cachedSend(r *rcce.Rank, dest int, data []byte) {
	tl := r.Session().Timeline()
	ctx := r.Ctx()
	myDev, myTile, myBase := r.MPBOf(r.ID())
	// Graceful degradation: past the fault threshold, stop publishing to
	// the host cache — the receiver's remote gets then ride the
	// transparent path automatically (a cold cache forwards the read), so
	// only the sender changes behaviour. One final invalidate retires any
	// copy published before the fallback.
	cached := !ip.degraded(r, dest)
	if !cached {
		ip.faults.RecordRecovery("degraded-send", "vscc.cached-get", -1)
		if prev := ip.published[r.ID()]; prev > 0 {
			ip.mmio(r, host.BankCommand{Cmd: host.CmdInvalidate, SrcOff: myBase, Count: prev})
			ip.published[r.ID()] = 0
		}
	}
	first := true
	for len(data) > 0 {
		n := len(data)
		if n > rcce.ChunkBytes {
			n = rcce.ChunkBytes
		}
		if !first {
			ip.awaitReady(r, dest, nil)
		}
		first = false
		// Invalidate whatever the host cache still mirrors of this MPB —
		// from the previous chunk or a previous message — before
		// overwriting it.
		if prev := ip.published[r.ID()]; cached && prev > 0 {
			ip.mmio(r, host.BankCommand{Cmd: host.CmdInvalidate, SrcOff: myBase, Count: prev})
		}
		t0 := r.Now()
		ctx.CopyPrivate(n)
		ctx.WriteMPB(myDev, myTile, myBase, data[:n])
		ctx.FlushWCB()
		tl.Record("sender", "put", t0, r.Now())
		if cached {
			ip.mmio(r, host.BankCommand{Cmd: host.CmdUpdate, SrcOff: myBase, Count: n})
			ip.published[r.ID()] = n
		}
		r.SignalSent(dest)
		data = data[n:]
	}
	t0 := r.Now()
	ip.awaitReady(r, dest, nil)
	tl.Record("sender", "waitack", t0, r.Now())
}

func (ip *interDeviceProtocol) cachedRecv(r *rcce.Rank, src int, buf []byte) {
	tl := r.Session().Timeline()
	ctx := r.Ctx()
	srcDev, srcTile, srcBase := r.MPBOf(src)
	for len(buf) > 0 {
		n := len(buf)
		if n > rcce.ChunkBytes {
			n = rcce.ChunkBytes
		}
		t0 := r.Now()
		ip.awaitSent(r, src, nil)
		tl.Record("receiver", "waitdata", t0, r.Now())
		t0 = r.Now()
		ctx.InvalidateMPB()
		ctx.ReadMPB(srcDev, srcTile, srcBase, buf[:n]) // served by cache + SIF stream
		ctx.CopyPrivate(n)
		tl.Record("receiver", "remoteget", t0, r.Now())
		r.SignalReady(src)
		buf = buf[n:]
	}
}

// mmio posts one fused register-bank write to the host.
func (ip *interDeviceProtocol) mmio(r *rcce.Rank, cmd host.BankCommand) {
	ctx := r.Ctx()
	pl := r.Session().PlaceOf(r.ID())
	bank := host.EncodeBank(cmd)
	ctx.MMIOWrite(pl.Dev, pl.Core*host.BankBytes, bank[:])
	ctx.FlushWCB()
}

// --- local put / local get through the vDMA controller (Fig. 4a/5) -----

// vdmaHalf is the double-buffer slot size: both MPBs split into two
// halves so the sender's put, the host copy, and the receiver's get
// pipeline — the optimization that removes the 8 kB throughput drop
// (§4.1).
var vdmaHalf = (rcce.PayloadBytes / 2) &^ (mem.LineSize - 1)

// chunksFor returns the chunk count of a message under a slot size.
func chunksFor(n, slot int) uint64 {
	return uint64((n + slot - 1) / slot)
}

// slotBytes returns the configured vDMA slot size.
func (ip *interDeviceProtocol) slotBytes() int {
	if ip.slot > 0 {
		return ip.slot
	}
	return vdmaHalf
}

// vdmaSend is the new local-access scheme: sender and receiver only
// touch their own on-chip memory while the communication task acts as a
// virtual DMA controller between the two MPBs. Flow control is
// value-encoded and per pair:
//
//   - grant[sender] at the sender carries the highest chunk the receiver
//     has granted; grants never span messages, so the shared receive
//     slots are handed to one sender at a time;
//   - ready[receiver] at the sender carries the drained count (the
//     blocking-send completion condition);
//   - dmac[dest] at the sender carries the vDMA read-completion count,
//     guarding the sender's own slot reuse.
func (ip *interDeviceProtocol) vdmaSend(r *rcce.Rank, dest int, data []byte) {
	tl := r.Session().Timeline()
	ctx := r.Ctx()
	st := ip.pair(r.ID(), dest)
	myDev, myTile, myBase := r.MPBOf(r.ID())
	dstDev, dstTile, dstBase := r.MPBOf(dest)
	grantOff := myBase + rcce.FlagByteAt(rcce.FlagGrant, dest)
	readyOff := myBase + rcce.FlagByteAt(rcce.FlagReady, dest)
	dmacOff := myBase + rcce.FlagByteAt(rcce.FlagDMAC, dest)
	slotSize := ip.slotBytes()
	firstSeq := st.out + 1
	lastSeq := st.out + chunksFor(len(data), slotSize)
	// Graceful degradation: past the fault threshold, the sender writes
	// each chunk straight into the receiver's slot and raises the sent
	// counter itself instead of programming the vDMA controller — the
	// exact flag flow the unmodified receiver expects, minus the host
	// machinery. The re-arm ladder is meaningless then (no command).
	direct := ip.degraded(r, dest)
	rearm := ip.rearmVDMA(r, st)
	if direct {
		ip.faults.RecordRecovery("degraded-send", "vscc.vdma", -1)
		// A re-issued command from an earlier message would overwrite the
		// directly-written counters with stale values; never re-arm here.
		rearm = nil
	}
	for len(data) > 0 {
		n := len(data)
		if n > slotSize {
			n = slotSize
		}
		st.out++
		seq := st.out
		// Receiver grant for this chunk: the grant byte reads seq (the
		// receiver is one chunk behind) or seq+1 (it caught up).
		glo, ghi := seqVal(seq), seqVal(seq+1)
		t0 := r.Now()
		ip.waitFlag(r, "vscc.vdma.grant", dest, myTile, grantOff, func(b byte) bool { return b == glo || b == ghi }, rearm)
		tl.Record("sender", "waitgrant", t0, r.Now())
		slot := int((seq - 1) % 2 * uint64(slotSize))
		if direct {
			t0 = r.Now()
			ctx.CopyPrivate(n)
			ctx.WriteMPB(dstDev, dstTile, dstBase+slot, data[:n])
			ctx.FlushWCB()
			ctx.WriteMPB(dstDev, dstTile, dstBase+rcce.FlagByteAt(rcce.FlagSent, r.ID()), []byte{seqVal(seq)})
			ctx.FlushWCB()
			tl.Record("sender", "remoteput", t0, r.Now())
			data = data[n:]
			continue
		}
		if seq-firstSeq >= 2 {
			// Slot reuse: the vDMA must have finished reading chunk
			// seq-2 out of this MPB slot.
			clo, chi := seqVal(seq-2), seqVal(seq-1)
			t0 = r.Now()
			ip.waitFlag(r, "vscc.vdma.dmac", dest, myTile, dmacOff, func(b byte) bool { return b == clo || b == chi }, rearm)
			tl.Record("sender", "waitdma", t0, r.Now())
		}
		t0 = r.Now()
		ctx.CopyPrivate(n)
		ctx.WriteMPB(myDev, myTile, myBase+slot, data[:n])
		ctx.FlushWCB()
		tl.Record("sender", "put", t0, r.Now())
		// Program the vDMA controller: one fused 32 B register write
		// (address / count / control, Fig. 5).
		cmd := host.BankCommand{
			Cmd:    host.CmdCopy,
			DstDev: dstDev, DstTile: dstTile, DstOff: dstBase + slot,
			SrcOff: myBase + slot, Count: n,
			Flags:     host.FlagNotifyDest | host.FlagCompletion,
			NotifyOff: dstBase + rcce.FlagByteAt(rcce.FlagSent, r.ID()), NotifyVal: seqVal(seq),
			ComplOff: dmacOff, ComplVal: seqVal(seq),
		}
		ip.mmio(r, cmd)
		st.cmd = cmd
		st.haveCmd = true
		tl.Mark("sender", "dma-armed")
		data = data[n:]
	}
	// Blocking semantics: the receiver drained everything.
	final := seqVal(lastSeq)
	t0 := r.Now()
	ip.waitFlag(r, "vscc.vdma.ready", dest, myTile, readyOff, func(b byte) bool { return b == final }, rearm)
	tl.Record("sender", "waitack", t0, r.Now())
}

func (ip *interDeviceProtocol) vdmaRecv(r *rcce.Rank, src int, buf []byte) {
	tl := r.Session().Timeline()
	ctx := r.Ctx()
	st := ip.pair(src, r.ID())
	myDev, myTile, myBase := r.MPBOf(r.ID())
	srcDev, srcTile, srcBase := r.MPBOf(src)
	sentOff := myBase + rcce.FlagByteAt(rcce.FlagSent, src)
	slotSize := ip.slotBytes()
	lastSeq := st.in + chunksFor(len(buf), slotSize)
	for len(buf) > 0 {
		n := len(buf)
		if n > slotSize {
			n = slotSize
		}
		st.in++
		seq := st.in
		// Grant up to one chunk ahead, but never into the next message:
		// the receive slots are shared by all senders.
		grantTo := seq + 1
		if grantTo > lastSeq {
			grantTo = lastSeq
		}
		ctx.WriteMPB(srcDev, srcTile, srcBase+rcce.FlagByteAt(rcce.FlagGrant, r.ID()), []byte{seqVal(grantTo)})
		ctx.FlushWCB()
		lo, hi := seqVal(seq), seqVal(seq+1)
		t0 := r.Now()
		ip.waitFlag(r, "vscc.vdma.sent", src, myTile, sentOff, func(b byte) bool { return b == lo || b == hi }, nil)
		tl.Record("receiver", "waitdata", t0, r.Now())
		slot := int((seq - 1) % 2 * uint64(slotSize))
		t0 = r.Now()
		ctx.InvalidateMPB()
		ctx.ReadMPB(myDev, myTile, myBase+slot, buf[:n]) // local get
		ctx.CopyPrivate(n)
		tl.Record("receiver", "localget", t0, r.Now())
		// Publish the drained count at the sender (posted flag write).
		ctx.WriteMPB(srcDev, srcTile, srcBase+rcce.FlagByteAt(rcce.FlagReady, r.ID()), []byte{seqVal(seq)})
		ctx.FlushWCB()
		buf = buf[n:]
	}
}
