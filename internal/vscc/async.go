package vscc

// Asynchronous inter-device communication — the paper's future work
// ("For future work, we plan to extend our communication concept to
// accelerate asynchronous communication", §5). AsyncEngine provides
// non-blocking isend/irecv over the vDMA scheme: the sender puts a chunk,
// programs the controller and returns to useful work while the host
// moves the data; progress is cooperative (pushed during Test/Wait), as
// on the bare-metal SCC.
//
// The engine shares the per-pair counter flags with the blocking vDMA
// protocol, so blocking and asynchronous transfers may alternate on a
// pair — but must not overlap, exactly like iRCCE and blocking RCCE.

import (
	"fmt"
	"strings"

	"vscc/internal/host"
	"vscc/internal/rcce"
	"vscc/internal/sim"
)

// AsyncEngine drives non-blocking cross-device requests for one rank.
// The session must run the vDMA scheme.
type AsyncEngine struct {
	r     *rcce.Rank
	ip    *interDeviceProtocol
	sendQ map[int][]*AsyncRequest
	recvQ map[int][]*AsyncRequest
}

// NewAsyncEngine creates the engine for rank r. It fails unless the
// session's wire protocol is a vSCC vDMA configuration.
func NewAsyncEngine(r *rcce.Rank) (*AsyncEngine, error) {
	ip, ok := r.Session().Protocol().(*interDeviceProtocol)
	if !ok || ip.scheme != SchemeVDMA {
		return nil, fmt.Errorf("vscc: async engine requires the vDMA scheme, session runs %q", r.Session().Protocol().Name())
	}
	return &AsyncEngine{
		r:     r,
		ip:    ip,
		sendQ: map[int][]*AsyncRequest{},
		recvQ: map[int][]*AsyncRequest{},
	}, nil
}

// async request states.
const (
	asWaitGrant = iota // sender: wait for the receiver's buffer credit
	asWaitSlot         // sender: wait for the vDMA to release our slot
	asWaitDrain        // sender: all chunks armed; wait for final drain
	arWaitData         // receiver: wait for the chunk's notify counter
	asDone
)

// AsyncRequest is one outstanding non-blocking vDMA transfer.
type AsyncRequest struct {
	eng  *AsyncEngine
	send bool
	peer int

	rest     []byte
	total    int
	firstSeq uint64
	lastSeq  uint64
	seq      uint64 // chunk currently being worked on
	state    int

	// Newest vDMA command programmed for this request; re-issued when a
	// stalled engine suspects the programming write was lost in flight.
	cmd     host.BankCommand
	haveCmd bool
}

// Done reports completion without progressing the request.
func (q *AsyncRequest) Done() bool { return q.state == asDone }

// Isend starts a non-blocking send to a rank on another device.
func (e *AsyncEngine) Isend(dest int, data []byte) (*AsyncRequest, error) {
	if e.r.Session().SameDevice(e.r.ID(), dest) {
		return nil, fmt.Errorf("vscc: async isend to same-device rank %d; use the iRCCE engine on-chip", dest)
	}
	st := e.ip.pair(e.r.ID(), dest)
	q := &AsyncRequest{eng: e, send: true, peer: dest, rest: data, total: len(data)}
	if len(data) == 0 {
		q.state = asDone
		return q, nil
	}
	q.firstSeq = st.out + 1
	q.lastSeq = st.out + chunksFor(len(data), e.ip.slotBytes())
	q.seq = q.firstSeq
	st.out = q.lastSeq
	q.state = asWaitGrant
	e.sendQ[dest] = append(e.sendQ[dest], q)
	e.Push()
	return q, nil
}

// Irecv starts a non-blocking receive from a rank on another device.
func (e *AsyncEngine) Irecv(src int, buf []byte) (*AsyncRequest, error) {
	if e.r.Session().SameDevice(e.r.ID(), src) {
		return nil, fmt.Errorf("vscc: async irecv from same-device rank %d; use the iRCCE engine on-chip", src)
	}
	st := e.ip.pair(src, e.r.ID())
	q := &AsyncRequest{eng: e, send: false, peer: src, rest: buf, total: len(buf)}
	if len(buf) == 0 {
		q.state = asDone
		return q, nil
	}
	q.firstSeq = st.in + 1
	q.lastSeq = st.in + chunksFor(len(buf), e.ip.slotBytes())
	q.seq = q.firstSeq
	st.in = q.lastSeq
	q.state = arWaitData
	// Issue the first grant immediately: the sender cannot move before it.
	e.publishGrant(q)
	e.recvQ[src] = append(e.recvQ[src], q)
	e.Push()
	return q, nil
}

// publishGrant posts the receiver's buffer credit for the chunk q.seq
// (covering one chunk of lookahead, bounded by the message).
func (e *AsyncEngine) publishGrant(q *AsyncRequest) {
	grantTo := q.seq + 1
	if grantTo > q.lastSeq {
		grantTo = q.lastSeq
	}
	srcDev, srcTile, srcBase := e.r.MPBOf(q.peer)
	ctx := e.r.Ctx()
	ctx.WriteMPB(srcDev, srcTile, srcBase+rcce.FlagByteAt(rcce.FlagGrant, e.r.ID()), []byte{seqVal(grantTo)})
	ctx.FlushWCB()
}

// Push advances every queue head as far as possible without blocking
// and reports whether anything progressed.
func (e *AsyncEngine) Push() bool {
	progressed := false
	for _, peer := range asyncSortedPeers(e.sendQ) {
		if e.pushQueue(e.sendQ, peer) {
			progressed = true
		}
	}
	for _, peer := range asyncSortedPeers(e.recvQ) {
		if e.pushQueue(e.recvQ, peer) {
			progressed = true
		}
	}
	return progressed
}

func (e *AsyncEngine) pushQueue(m map[int][]*AsyncRequest, peer int) bool {
	q := m[peer]
	progressed := false
	for len(q) > 0 && q[0].push() {
		progressed = true
		if q[0].state == asDone {
			q = q[1:]
		}
	}
	if len(q) > 0 && q[0].state == asDone {
		q = q[1:]
		progressed = true
	}
	m[peer] = q
	return progressed
}

// Test pushes progress once and reports completion.
func (e *AsyncEngine) Test(q *AsyncRequest) bool {
	e.Push()
	return q.state == asDone
}

// Wait blocks until the request completes, sleeping on local MPB
// changes between progress rounds.
func (e *AsyncEngine) Wait(q *AsyncRequest) { e.WaitAll(q) }

// WaitAll blocks until every request completes. Fault-free, each sleep
// waits indefinitely for a local MPB change (budget 0), as before.
// Under fault injection every sleep carries a cycle budget; when it
// expires without progress, the engine re-arms the vDMA commands of its
// blocked senders and republishes outstanding grants (both idempotent —
// the same bytes and flag values land again, and counters never move
// backward), then retries with a doubled budget. Past the retry bound
// the engine fails deterministically with a snapshot of the stalled
// queue heads.
func (e *AsyncEngine) WaitAll(reqs ...*AsyncRequest) {
	ip := e.ip
	budget := sim.Cycles(0)
	if ip.faults != nil {
		budget = ip.rec.WaitBudget
	}
	stalls := 0
	for {
		allDone := true
		for _, q := range reqs {
			if q.state != asDone {
				allDone = false
			}
		}
		if allDone {
			return
		}
		if e.Push() {
			stalls = 0
			if ip.faults != nil {
				budget = ip.rec.WaitBudget
			}
			continue
		}
		if e.anyActionable() {
			continue
		}
		if e.r.WaitAnyLocalChangeFor(budget) {
			continue
		}
		stalls++
		// A stall against a crashed peer device is a device loss, not a
		// lost flag: park until the rejoin (devretry=1) or fail with the
		// deterministic sentinel.
		if lost := e.lostPeerDev(); lost >= 0 {
			if !ip.rec.DeviceRetry {
				panic(fmt.Errorf("vscc: async engine rank %d: device %d lost at cycle %d: %w",
					e.r.ID(), lost, e.r.Now(), rcce.ErrDeviceLost))
			}
			ip.faults.RecordRecovery("device-wait", "vscc.async", lost)
			ip.mem.AwaitUp(e.r.Ctx().Proc, lost)
			stalls = 0
			budget = ip.rec.WaitBudget
			e.rearmStalled()
			continue
		}
		if stalls > ip.rec.MaxWaitRetries {
			panic(fmt.Sprintf("vscc: async engine rank %d lost completion after %d retries at cycle %d: %s",
				e.r.ID(), stalls-1, e.r.Now(), e.describeStalled()))
		}
		dev, _, _ := e.r.MPBOf(e.r.ID())
		ip.faults.RecordRecovery("async-retry", "vscc.async", dev)
		e.rearmStalled()
		budget *= 2
	}
}

// lostPeerDev returns the lowest currently-lost device among the
// stalled queue heads' peers, or -1.
func (e *AsyncEngine) lostPeerDev() int {
	if e.ip.mem == nil {
		return -1
	}
	s := e.r.Session()
	lost := -1
	for _, peer := range asyncSortedPeers(e.sendQ) {
		if d := s.PlaceOf(peer).Dev; e.ip.mem.Lost(d) && (lost < 0 || d < lost) {
			lost = d
		}
	}
	for _, peer := range asyncSortedPeers(e.recvQ) {
		if d := s.PlaceOf(peer).Dev; e.ip.mem.Lost(d) && (lost < 0 || d < lost) {
			lost = d
		}
	}
	return lost
}

// rearmStalled re-issues the newest vDMA command of every blocked send
// head and republishes every blocked receiver's outstanding grant, so a
// lost programming write or a lost credit flag cannot wedge the engine.
// Degraded pairs are skipped: their counters are written directly and a
// stale re-issued command could overwrite newer values.
func (e *AsyncEngine) rearmStalled() {
	dev, _, _ := e.r.MPBOf(e.r.ID())
	for _, peer := range asyncSortedPeers(e.sendQ) {
		q := e.sendQ[peer][0]
		if !q.haveCmd || e.ip.degraded(e.r, peer) {
			continue
		}
		e.ip.faults.RecordRecovery("vdma-rearm", "vscc.async", dev)
		e.ip.mmio(e.r, q.cmd)
	}
	for _, peer := range asyncSortedPeers(e.recvQ) {
		e.publishGrant(e.recvQ[peer][0])
	}
}

// describeStalled renders the blocked queue heads deterministically for
// the lost-completion failure.
func (e *AsyncEngine) describeStalled() string {
	var parts []string
	for _, peer := range asyncSortedPeers(e.sendQ) {
		q := e.sendQ[peer][0]
		parts = append(parts, fmt.Sprintf("send->%d %s seq %d of %d..%d", peer, asyncStateName(q.state), q.seq, q.firstSeq, q.lastSeq))
	}
	for _, peer := range asyncSortedPeers(e.recvQ) {
		q := e.recvQ[peer][0]
		parts = append(parts, fmt.Sprintf("recv<-%d %s seq %d of %d..%d", peer, asyncStateName(q.state), q.seq, q.firstSeq, q.lastSeq))
	}
	if len(parts) == 0 {
		return "no queued requests"
	}
	return strings.Join(parts, "; ")
}

func asyncStateName(s int) string {
	switch s {
	case asWaitGrant:
		return "wait-grant"
	case asWaitSlot:
		return "wait-slot"
	case asWaitDrain:
		return "wait-drain"
	case arWaitData:
		return "wait-data"
	case asDone:
		return "done"
	}
	return "invalid"
}

// Pending reports incomplete requests.
func (e *AsyncEngine) Pending() int {
	n := 0
	for _, q := range e.sendQ {
		n += len(q)
	}
	for _, q := range e.recvQ {
		n += len(q)
	}
	return n
}

// anyActionable peeks all stalled heads without yielding, closing the
// race between the last poll and sleeping.
func (e *AsyncEngine) anyActionable() bool {
	for _, peer := range asyncSortedPeers(e.sendQ) {
		if e.sendQ[peer][0].flagReady() {
			return true
		}
	}
	for _, peer := range asyncSortedPeers(e.recvQ) {
		if e.recvQ[peer][0].flagReady() {
			return true
		}
	}
	return false
}

// flagReady peeks whether the request's current wait condition holds.
func (q *AsyncRequest) flagReady() bool {
	r := q.eng.r
	switch q.state {
	case asWaitGrant:
		b := r.PeekFlagByte(rcce.FlagGrant, q.peer)
		return b == seqVal(q.seq) || b == seqVal(q.seq+1)
	case asWaitSlot:
		b := r.PeekFlagByte(rcce.FlagDMAC, q.peer)
		return b == seqVal(q.seq-2) || b == seqVal(q.seq-1)
	case asWaitDrain:
		return r.PeekFlagByte(rcce.FlagReady, q.peer) == seqVal(q.lastSeq)
	case arWaitData:
		b := r.PeekFlagByte(rcce.FlagSent, q.peer)
		return b == seqVal(q.seq) || b == seqVal(q.seq+1)
	}
	return false
}

// push advances the request while its conditions hold; returns whether
// any step was taken.
func (q *AsyncRequest) push() bool {
	progressed := false
	for q.state != asDone && q.flagReady() {
		q.step()
		progressed = true
	}
	return progressed
}

// step performs one state transition (the flag condition holds).
func (q *AsyncRequest) step() {
	e := q.eng
	r := e.r
	ctx := r.Ctx()
	ip := e.ip
	slotSize := ip.slotBytes()
	switch {
	case q.send && q.state == asWaitGrant:
		if q.seq-q.firstSeq >= 2 {
			q.state = asWaitSlot
			return
		}
		q.armChunk()
	case q.send && q.state == asWaitSlot:
		q.armChunk()
	case q.send && q.state == asWaitDrain:
		ctx.Delay(ctx.Params().FlagPollCycles)
		r.Session().ReportTraffic(r.ID(), q.peer, q.total)
		q.state = asDone
	case !q.send:
		// Drain the chunk from our local slot.
		ctx.Delay(ctx.Params().FlagPollCycles)
		n := len(q.rest)
		if n > slotSize {
			n = slotSize
		}
		myDev, myTile, myBase := r.MPBOf(r.ID())
		slot := int((q.seq - 1) % 2 * uint64(slotSize))
		ctx.InvalidateMPB()
		ctx.ReadMPB(myDev, myTile, myBase+slot, q.rest[:n])
		ctx.CopyPrivate(n)
		srcDev, srcTile, srcBase := r.MPBOf(q.peer)
		ctx.WriteMPB(srcDev, srcTile, srcBase+rcce.FlagByteAt(rcce.FlagReady, r.ID()), []byte{seqVal(q.seq)})
		ctx.FlushWCB()
		q.rest = q.rest[n:]
		if len(q.rest) == 0 {
			q.state = asDone
			return
		}
		q.seq++
		q.publishNextGrant()
	}
}

// armChunk puts the current chunk into the local slot and programs the
// vDMA controller, then advances to the next chunk or the drain wait.
func (q *AsyncRequest) armChunk() {
	e := q.eng
	r := e.r
	ctx := r.Ctx()
	ip := e.ip
	slotSize := ip.slotBytes()
	ctx.Delay(ctx.Params().FlagPollCycles)
	n := len(q.rest)
	if n > slotSize {
		n = slotSize
	}
	myDev, myTile, myBase := r.MPBOf(r.ID())
	dstDev, dstTile, dstBase := r.MPBOf(q.peer)
	slot := int((q.seq - 1) % 2 * uint64(slotSize))
	ctx.CopyPrivate(n)
	ctx.WriteMPB(myDev, myTile, myBase+slot, q.rest[:n])
	ctx.FlushWCB()
	cmd := host.BankCommand{
		Cmd:    host.CmdCopy,
		DstDev: dstDev, DstTile: dstTile, DstOff: dstBase + slot,
		SrcOff: myBase + slot, Count: n,
		Flags:     host.FlagNotifyDest | host.FlagCompletion,
		NotifyOff: dstBase + rcce.FlagByteAt(rcce.FlagSent, r.ID()), NotifyVal: seqVal(q.seq),
		ComplOff: myBase + rcce.FlagByteAt(rcce.FlagDMAC, q.peer), ComplVal: seqVal(q.seq),
	}
	ip.mmio(r, cmd)
	q.cmd, q.haveCmd = cmd, true
	q.rest = q.rest[n:]
	if len(q.rest) == 0 {
		q.state = asWaitDrain
		return
	}
	q.seq++
	q.state = asWaitGrant
}

// publishNextGrant posts the credit for the receiver's next chunk.
func (q *AsyncRequest) publishNextGrant() {
	q.eng.publishGrant(q)
}

func asyncSortedPeers(m map[int][]*AsyncRequest) []int {
	peers := make([]int, 0, len(m))
	for p, q := range m {
		if len(q) > 0 {
			peers = append(peers, p)
		}
	}
	for i := 1; i < len(peers); i++ {
		for j := i; j > 0 && peers[j-1] > peers[j]; j-- {
			peers[j-1], peers[j] = peers[j], peers[j-1]
		}
	}
	return peers
}
