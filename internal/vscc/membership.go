package vscc

// Device-level crash recovery (DESIGN.md §8): epoch-based membership,
// crash-consistent checkpoints and drain/replay failover for whole SCC
// devices. The research system's five boards fail independently — a
// board-level power glitch or a PCIe link drop takes 48 cores away at
// once, and the previous prototype had no answer short of restarting
// the whole 240-core run. Membership models the failure as a per-device
// state machine
//
//	Up -> Draining -> Down -> Rejoining -> Up
//
// with three guarantees:
//
//   - Epochs: every SIF frame is stamped with the target device's
//     membership epoch (pcie.Header.Epoch). The epoch advances when the
//     device goes down, so pre-crash traffic surfacing after the rejoin
//     is rejected at the framing layer and recovered by re-stamped
//     retransmission — cross-epoch confusion is structurally impossible.
//   - Checkpoints: a kernel-clock-driven daemon snapshots each device's
//     on-chip memory at quiesce points; every store since the snapshot
//     is journaled (scc write observer -> ckpt.Log), so the crash-point
//     image is reconstructible byte-exactly at any instant.
//   - Drain/replay: on a crash the device first drains — committed
//     in-flight transfers land and are journaled — then goes down: its
//     memory is wiped, the host marks it unreachable, and every frame
//     still in the PCIe journals is held. On rejoin the memory image is
//     restored, the fabric replays the held frames in sequence order in
//     the new epoch, and blocked peers resume. The run completes
//     byte-identically to a fault-free execution.
//
// A link-down fault is the lighter variant: the wire dies but the board
// keeps power, so there is no wipe/restore — cores keep computing
// on-chip and only off-chip traffic is held and replayed.

import (
	"fmt"
	"strconv"

	"vscc/internal/ckpt"
	"vscc/internal/fault"
	"vscc/internal/host"
	"vscc/internal/pcie"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/trace"
)

// DevState is one device's membership state.
type DevState int

// The membership states, in lifecycle order.
const (
	// DevUp: fully operational.
	DevUp DevState = iota
	// DevDraining: a fault fired; committed in-flight traffic still
	// lands (the wire stays usable) but crashed cores are already
	// frozen. Lasts fault.DefaultDrainCycles.
	DevDraining
	// DevDown: the device is gone — memory wiped (crash) or the link
	// dead (link-down); all frames toward and from it are held in the
	// senders' journals.
	DevDown
	// DevRejoining: the checkpoint image is being restored; passed
	// through atomically on the way back to DevUp.
	DevRejoining
)

// String names the state for test failures and traces.
func (s DevState) String() string {
	switch s {
	case DevUp:
		return "up"
	case DevDraining:
		return "draining"
	case DevDown:
		return "down"
	case DevRejoining:
		return "rejoining"
	}
	return "invalid"
}

// devRecord is the membership state of one device.
type devRecord struct {
	state DevState
	epoch uint8
	// gate is the chip lifecycle gate: closed while the device is
	// crashed, so its cores freeze at their next memory operation and
	// thaw on rejoin (the core image rides along with the checkpoint).
	gate *sim.Gate
	// up wakes peers blocked in AwaitUp on every return to DevUp.
	up *sim.Cond
	// log is the device's crash-consistent checkpoint state.
	log *ckpt.Log
	// img is the restore image captured at the crash point, with the
	// journal-replay totals for the replay.* counters.
	img                 [][]byte
	imgWrites, imgBytes int
	// replaying is set from the moment the device leaves DevUp until its
	// rejoin's journal replay has finished, so AfterReplay hooks
	// registered anywhere in that window fire only once the restored
	// memory is quiescent.
	replaying bool
	// afterReplay holds the one-shot hooks to run (in registration
	// order) once the next rejoin's journal replay completes.
	afterReplay []func()
}

// Membership is the device-level membership manager of a vSCC. It is
// only constructed when the fault schedule contains device faults
// (fault.Config.DeviceFaultsArmed); every other configuration runs with
// a nil manager on byte-identical code paths.
type Membership struct {
	k      *sim.Kernel
	chips  []*scc.Chip
	fabric *pcie.Fabric
	task   *host.Task
	inj    *fault.Injector

	devs   []*devRecord
	drain  sim.Cycles
	rejoin sim.Cycles
	sink   *trace.Sink

	// pending counts scheduled device faults that have not finished
	// their lifecycle. The periodic checkpoint timers stop once it hits
	// zero, so the event queue drains and Kernel.Run can terminate.
	pending int
}

// Statically assert the framing-layer contract.
var _ pcie.DeviceView = (*Membership)(nil)

// newMembership wires the manager into the chips (lifecycle gates and
// checkpoint journals), the fabric (epoch stamping and journal holds)
// and the host task (reachability gates), takes the boot checkpoint of
// every device, and schedules the configured device faults.
func newMembership(k *sim.Kernel, chips []*scc.Chip, fabric *pcie.Fabric, task *host.Task, inj *fault.Injector) *Membership {
	cfg := inj.Config()
	m := &Membership{
		k: k, chips: chips, fabric: fabric, task: task, inj: inj,
		drain:  fault.DefaultDrainCycles,
		rejoin: cfg.RejoinCycles,
	}
	if m.rejoin <= 0 {
		m.rejoin = fault.DefaultRejoinCycles
	}
	interval := cfg.CkptInterval
	if interval <= 0 {
		interval = fault.DefaultCkptInterval
	}
	for d, chip := range chips {
		rec := &devRecord{
			gate: sim.NewGate(k, fmt.Sprintf("dev%d.alive", d)),
			up:   sim.NewCond(k, fmt.Sprintf("dev%d.rejoin", d)),
			log:  ckpt.NewLog(),
		}
		rec.gate.Open()
		m.devs = append(m.devs, rec)
		chip.SetLifecycleGate(rec.gate)
		chip.SetWriteObserver(func(tile, off int, data []byte) {
			rec.log.Note(tile, off, data)
		})
		// Checkpoint zero: the boot image. It guarantees a restore base
		// exists even for a crash before the first interval tick — the
		// journal then replays the whole history, which is correct if
		// slow; the periodic checkpoints exist to truncate it.
		rec.log.Checkpoint(chip.SnapshotLMB())
		d, chip := d, chip
		// Periodic checkpoints run as a self-rescheduling timer chain,
		// not a Delay-looping daemon: the chain stops once every
		// scheduled fault has completed, so the kernel's event queue can
		// drain and Run terminates.
		var tick func()
		tick = func() {
			if m.pending == 0 {
				return
			}
			m.checkpoint(d, chip)
			k.After(interval, tick)
		}
		k.After(interval, tick)
	}
	fabric.SetMembership(m)
	m.pending = len(cfg.DevCrashAt) + len(cfg.DevLinkDownAt)
	for _, df := range cfg.DevCrashAt {
		df := df
		k.At(df.At, func() { m.fail(df, true) })
	}
	for _, df := range cfg.DevLinkDownAt {
		df := df
		k.At(df.At, func() { m.fail(df, false) })
	}
	return m
}

// Instrument attaches the observability sink (nil-safe, like the
// injector's).
func (m *Membership) Instrument(s *trace.Sink) {
	if m == nil {
		return
	}
	m.sink = s
}

// count records a membership counter and its per-device mirror. The
// dynamic per-device name is only built once the sink is known enabled.
func (m *Membership) count(name string, dev int, v int64) {
	if !m.sink.Enabled() {
		return
	}
	m.sink.Add(name, v)
	m.sink.Add(name+".d"+strconv.Itoa(dev), v)
}

// Usable implements pcie.DeviceView: frames may use the wire while the
// device is up or draining.
func (m *Membership) Usable(dev int) bool {
	s := m.devs[dev].state
	return s == DevUp || s == DevDraining
}

// Epoch implements pcie.DeviceView.
func (m *Membership) Epoch(dev int) uint8 { return m.devs[dev].epoch }

// Lost reports whether the device is currently unreachable — the
// condition the protocol recovery ladders distinguish from an ordinary
// lost flag write.
func (m *Membership) Lost(dev int) bool {
	s := m.devs[dev].state
	return s == DevDown || s == DevRejoining
}

// State returns the device's membership state (test hook).
func (m *Membership) State(dev int) DevState { return m.devs[dev].state }

// Quiesced reports whether the device is up with no rejoin replay in
// flight — the condition under which its memory belongs entirely to the
// current epoch and a supervisor may reclaim its cores.
func (m *Membership) Quiesced(dev int) bool {
	rec := m.devs[dev]
	return rec.state == DevUp && !rec.replaying
}

// AwaitUp parks p until the device is back up. Used by the transparent
// retry path (fault spec devretry=1).
func (m *Membership) AwaitUp(p *sim.Proc, dev int) {
	rec := m.devs[dev]
	for rec.state != DevUp {
		rec.up.Wait(p)
	}
}

// AfterReplay registers a one-shot hook that runs once the device is
// back up AND its rejoin journal replay has finished — the first point
// at which the device's memory is quiescent, so a supervisor may tear
// down and reuse the device's cores without replayed pre-crash frames
// landing on top (the scheduler's devretry requeue path). A hook
// registered while the device is up with no replay in flight runs as a
// kernel event at the current cycle. Hooks run in registration order,
// in kernel context.
func (m *Membership) AfterReplay(dev int, fn func()) {
	rec := m.devs[dev]
	if rec.state == DevUp && !rec.replaying {
		m.k.At(m.k.Now(), fn)
		return
	}
	rec.afterReplay = append(rec.afterReplay, fn)
}

// checkpoint takes one periodic snapshot of an up device. A draining or
// down device is skipped: its image is frozen at the crash point.
func (m *Membership) checkpoint(d int, chip *scc.Chip) {
	rec := m.devs[d]
	if rec.state != DevUp {
		return
	}
	banks := chip.SnapshotLMB()
	rec.log.Checkpoint(banks)
	total := 0
	for _, b := range banks {
		total += len(b)
	}
	m.count("ckpt.take", d, 1)
	m.count("ckpt.bytes", d, int64(total))
}

// fail starts the drain phase of one scheduled device fault. A fault
// scheduled while the device is not up (overlapping windows) is void.
func (m *Membership) fail(df fault.DeviceFault, wipe bool) {
	d := df.Dev
	if d < 0 || d >= len(m.devs) {
		m.pending-- // out-of-range device: the fault retires unused
		return
	}
	rec := m.devs[d]
	if rec.state != DevUp {
		m.pending-- // void fault (overlapping schedule) still retires
		return
	}
	kind := "devlinkdown"
	if wipe {
		kind = "devcrash"
	}
	m.inj.RecordInjection(kind, "vscc.device", d)
	rec.state = DevDraining
	rec.replaying = true // until the rejoin replay completes
	if wipe {
		// Cores freeze at their next memory operation; a link-down
		// leaves them computing on intact local memory.
		rec.gate.Close()
	}
	down := df.Down
	if down <= 0 {
		down = m.rejoin
	}
	m.k.After(m.drain, func() { m.down(d, down, wipe) })
}

// down completes the crash: the epoch advances, the crash-point image
// is captured from the checkpoint log (before the wipe destroys the
// live one), on-chip memory is lost, and the host marks the device
// unreachable. From here every frame toward or from the device is held
// in the senders' journals.
func (m *Membership) down(d int, downFor sim.Cycles, wipe bool) {
	rec := m.devs[d]
	rec.state = DevDown
	rec.epoch++
	m.count("epoch.advance", d, 1)
	if wipe {
		rec.img, rec.imgWrites, rec.imgBytes = rec.log.Restore()
		m.chips[d].WipeLMB()
	}
	m.task.DeviceDown(d)
	m.k.After(downFor, func() { m.rejoinDev(d, wipe) })
}

// rejoinDev brings the device back: restore the checkpoint image, open
// the gates, wake blocked peers, and replay the held PCIe journals in
// the new epoch.
func (m *Membership) rejoinDev(d int, wipe bool) {
	rec := m.devs[d]
	rec.state = DevRejoining
	if wipe {
		m.chips[d].LoadLMB(rec.img)
		m.count("replay.writes", d, int64(rec.imgWrites))
		m.count("replay.bytes", d, int64(rec.imgBytes))
		rec.img = nil
		// Rebase the journal on the restored image so a second crash
		// replays from here, not from the pre-crash snapshot.
		rec.log.Checkpoint(m.chips[d].SnapshotLMB())
	}
	rec.state = DevUp
	if wipe {
		rec.gate.Open()
	}
	m.task.DeviceUp(d)
	m.inj.RecordRecovery("rejoin", "vscc.device", d)
	m.pending--
	rec.up.Broadcast()
	m.k.Spawn(fmt.Sprintf("replay.d%d", d), func(p *sim.Proc) {
		frames, bytes := m.fabric.ReplayDevice(p, d)
		m.count("replay.frames", d, int64(frames))
		m.count("replay.frame_bytes", d, int64(bytes))
		rec.replaying = false
		hooks := rec.afterReplay
		rec.afterReplay = nil
		for _, fn := range hooks {
			fn()
		}
	})
}
