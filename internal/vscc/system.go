// Package vscc implements the paper's contribution: a system of
// cluster-on-a-chip processors. It couples multiple simulated SCC devices
// through the PCIe fabric and the host communication task into one
// virtual 240-core processor, extends the RCCE rank space linearly across
// devices, and provides the host-accelerated inter-device communication
// schemes of §3.3:
//
//   - SchemeRouting:    transparent packet routing (previous prototype)
//   - SchemeHostRouted: host-acknowledged default protocol (lower bound)
//   - SchemeHWAccel:    remote put with FPGA fast write-acks (upper
//     bound; at most two devices)
//   - SchemeCachedGet:  local put / remote get with the host software
//     cache and prefetch streaming (Fig. 4b)
//   - SchemeRemotePut:  remote put into the host write-combining buffer
//     (Fig. 4c)
//   - SchemeVDMA:       local put / local get through the virtual DMA
//     controller (Fig. 4a/5), pipelined across MPB halves
package vscc

import (
	"fmt"

	"vscc/internal/fault"
	"vscc/internal/host"
	"vscc/internal/mem"
	"vscc/internal/noc"
	"vscc/internal/pcie"
	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/trace"
)

// Scheme selects the inter-device communication scheme.
type Scheme int

// The available schemes; see the package comment.
const (
	SchemeRouting Scheme = iota
	SchemeHostRouted
	SchemeHWAccel
	SchemeCachedGet
	SchemeRemotePut
	SchemeVDMA
)

// String names the scheme as in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case SchemeRouting:
		return "transparent-routing"
	case SchemeHostRouted:
		return "host-routed (lower bound)"
	case SchemeHWAccel:
		return "hw-accelerated (upper bound)"
	case SchemeCachedGet:
		return "local put/remote get + cache"
	case SchemeRemotePut:
		return "remote put + write combining"
	case SchemeVDMA:
		return "local put/local get + vDMA"
	}
	return "invalid"
}

// Key returns a short stable identifier for file names, metric names and
// sweep labels (the String form carries spaces and slashes).
func (s Scheme) Key() string {
	switch s {
	case SchemeRouting:
		return "routing"
	case SchemeHostRouted:
		return "host-routed"
	case SchemeHWAccel:
		return "hw-accel"
	case SchemeCachedGet:
		return "cached-get"
	case SchemeRemotePut:
		return "remote-put"
	case SchemeVDMA:
		return "vdma"
	}
	return "invalid"
}

// SchemeByKey parses a Key back into a scheme.
func SchemeByKey(key string) (Scheme, bool) {
	for _, s := range []Scheme{
		SchemeRouting, SchemeHostRouted, SchemeHWAccel,
		SchemeCachedGet, SchemeRemotePut, SchemeVDMA,
	} {
		if s.Key() == key {
			return s, true
		}
	}
	return 0, false
}

// ackMode returns the write-acknowledge mode a scheme requires.
func (s Scheme) ackMode() pcie.AckMode {
	switch s {
	case SchemeRouting:
		return pcie.AckRemote
	case SchemeHWAccel:
		return pcie.AckFPGA
	default:
		return pcie.AckHost
	}
}

// regionMode returns how the communication task treats payload regions.
func (s Scheme) regionMode() host.Mode {
	switch s {
	case SchemeCachedGet:
		return host.ModeCached
	case SchemeRemotePut:
		return host.ModeWriteCombining
	case SchemeVDMA:
		// The vDMA engine owns the bulk path; the direct small-message
		// path posts its payload writes through the communication task.
		return host.ModePosted
	default:
		return host.ModeTransparent
	}
}

// DirectThreshold returns the scheme's default small-message cutoff: at
// or below it, a core transfers the payload directly instead of engaging
// the host machinery ("about 32 B to 128 B dependent on the
// communication scheme", §3.3).
func (s Scheme) DirectThreshold() int {
	switch s {
	case SchemeCachedGet:
		return 32
	case SchemeRemotePut:
		return 128
	case SchemeVDMA:
		return 64
	default:
		return 0
	}
}

// Compatible reports whether sessions of both schemes can share one
// fabric: the PCIe acknowledgement mode is a fabric-wide property, so
// only schemes with the same mode may coexist (NewTenantSession
// enforces this at admission).
func (s Scheme) Compatible(other Scheme) bool { return s.ackMode() == other.ackMode() }

// Config describes a vSCC system.
type Config struct {
	// Devices is the number of coupled SCC boards (the paper's flagship
	// system has five: 240 cores).
	Devices int
	// Scheme is the inter-device communication scheme.
	Scheme Scheme
	// DirectThreshold overrides the scheme default when non-zero.
	DirectThreshold int
	// VDMASlotBytes overrides the vDMA double-buffer slot size (ablation
	// knob; 0 = half the MPB payload area). Must not exceed half the
	// payload area.
	VDMASlotBytes int
	// OnChipProtocol handles same-device rank pairs; nil means the RCCE
	// default (blocking local put / remote get).
	OnChipProtocol rcce.Protocol
	// FailedCores lists silently failed cores per device index, as the
	// research system frequently exhibits at startup (§4).
	FailedCores map[int][]int

	// Check enables the runtime MPB consistency checker (scc.Checker): a
	// shared staleness oracle across all devices that panics the reading
	// rank when a protocol serves a stale cached line or reads past
	// unflushed write-combined stores.
	Check bool

	// Faults arms deterministic fault injection across the PCIe, host and
	// protocol layers (see internal/fault). Nil runs fault-free along the
	// exact same code paths.
	Faults *fault.Config

	// ChipParams, FabricParams and HostParams default when zero-valued.
	ChipParams   *scc.Params
	FabricParams *pcie.Params
	HostParams   *host.Params
}

// System is a running vSCC: the chips, the fabric, and the communication
// task, ready to host RCCE sessions.
type System struct {
	Kernel *sim.Kernel
	Config Config
	Chips  []*scc.Chip
	Fabric *pcie.Fabric
	Task   *host.Task
	// Injector is the armed fault injector; nil when Config.Faults is nil.
	Injector *fault.Injector
	// Membership is the device-level membership manager; nil unless the
	// fault schedule contains device crash or link-down faults.
	Membership *Membership
}

// NewSystem assembles a vSCC.
func NewSystem(k *sim.Kernel, cfg Config) (*System, error) {
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("vscc: %d devices", cfg.Devices)
	}
	if cfg.Scheme == SchemeHWAccel && cfg.Devices > 2 {
		return nil, fmt.Errorf("vscc: the hardware-accelerated scheme is unstable beyond 2 devices (§2.3); got %d", cfg.Devices)
	}
	chipParams := scc.DefaultParams()
	if cfg.ChipParams != nil {
		chipParams = *cfg.ChipParams
	}
	fabricParams := pcie.DefaultParams()
	if cfg.FabricParams != nil {
		fabricParams = *cfg.FabricParams
	}
	hostParams := host.DefaultParams()
	if cfg.HostParams != nil {
		hostParams = *cfg.HostParams
	}
	var chips []*scc.Chip
	var checker *scc.Checker
	if cfg.Check {
		checker = scc.NewChecker()
	}
	for d := 0; d < cfg.Devices; d++ {
		chip := scc.NewChip(k, d, chipParams)
		for _, core := range cfg.FailedCores[d] {
			chip.SetAlive(core, false)
		}
		if checker != nil {
			chip.EnableConsistencyCheck(checker)
		}
		chips = append(chips, chip)
	}
	fabric, err := pcie.New(cfg.Devices, fabricParams, cfg.Scheme.ackMode())
	if err != nil {
		return nil, err
	}
	task, err := host.New(k, fabric, chips, hostParams)
	if err != nil {
		return nil, err
	}
	sys := &System{Kernel: k, Config: cfg, Chips: chips, Fabric: fabric, Task: task}
	if cfg.Faults != nil {
		inj := fault.NewInjector(k, *cfg.Faults)
		fabric.SetFaults(k, inj)
		task.SetFaults(inj)
		for d, chip := range chips {
			d := d
			// Remote MPB flag writes (flag-sized host stores) can vanish;
			// the host's write-verify path recovers them.
			chip.SetHostWriteDropper(func(tile, off, n int) bool {
				return n <= 4 && inj.LoseFlagWrite(d)
			})
		}
		sys.Injector = inj
		if cfg.Faults.DeviceFaultsArmed() {
			// Device-level crash recovery: epochs, checkpoints and
			// drain/replay failover (membership.go). Requires the framed
			// fabric, so it only exists alongside the injector.
			sys.Membership = newMembership(k, chips, fabric, task, inj)
		}
	}
	return sys, nil
}

// Instrument attaches an observability sink to the whole system: every
// PCIe link and the communication task record into it. Sessions pick the
// sink up separately through rcce.WithSink. A nil sink disables.
func (s *System) Instrument(sink *trace.Sink) {
	s.Fabric.Instrument(sink)
	s.Task.Instrument(sink)
	s.Injector.Instrument(sink)
	s.Membership.Instrument(sink)
}

// TotalCores returns the number of available cores across all devices.
func (s *System) TotalCores() int {
	n := 0
	for _, c := range s.Chips {
		n += len(c.AliveCores())
	}
	return n
}

// Coord returns a rank placement's (x, y, z) coordinate in the vSCC
// topology (Fig. 3): tile mesh position plus the device number as z.
func Coord(pl rcce.Place) (x, y, z int) {
	c := scc.CoreCoord(pl.Core)
	return c.X, c.Y, pl.Dev
}

// NewSession creates an RCCE session of n ranks mapped linearly across
// the devices (§3: device 0 first, device 1 starting at rank 48, ...),
// registers every rank's payload and flag regions with the communication
// task, and installs the scheme's wire protocol.
func (s *System) NewSession(n int, opts ...rcce.Option) (*rcce.Session, error) {
	places, err := rcce.LinearPlaces(s.Chips, n)
	if err != nil {
		return nil, err
	}
	return s.NewSessionAt(places, opts...)
}

// NewSessionAt is NewSession with explicit placements.
func (s *System) NewSessionAt(places []rcce.Place, opts ...rcce.Option) (*rcce.Session, error) {
	return s.newSessionAt(places, s.Config.Scheme, opts...)
}

// NewTenantSession builds a session running a per-tenant scheme on the
// shared fabric. The fabric's write-acknowledge mode is a global
// hardware property, so only schemes of the system's ack family are
// admissible: a host-ack fabric (the multi-tenant default) can host
// host-routed, cached-get, remote-put and vDMA tenants side by side,
// but not transparent routing or the FPGA fast-ack scheme.
func (s *System) NewTenantSession(places []rcce.Place, scheme Scheme, opts ...rcce.Option) (*rcce.Session, error) {
	if scheme.ackMode() != s.Fabric.Ack {
		return nil, fmt.Errorf("vscc: scheme %s needs ack mode %s, fabric runs %s",
			scheme.Key(), scheme.ackMode(), s.Fabric.Ack)
	}
	return s.newSessionAt(places, scheme, opts...)
}

func (s *System) newSessionAt(places []rcce.Place, scheme Scheme, opts ...rcce.Option) (*rcce.Session, error) {
	base := s.Config.OnChipProtocol
	if base == nil {
		base = rcce.DefaultProtocol{}
	}
	threshold := s.Config.DirectThreshold
	if threshold == 0 {
		threshold = scheme.DirectThreshold()
	}
	slot := s.Config.VDMASlotBytes
	if slot > rcce.PayloadBytes/2 {
		return nil, fmt.Errorf("vscc: vDMA slot %d exceeds half the payload area (%d)", slot, rcce.PayloadBytes/2)
	}
	proto := &interDeviceProtocol{
		base:      base,
		scheme:    scheme,
		threshold: threshold,
		slot:      slot,
		seqs:      make([]pairSeq, len(places)*len(places)),
		nRanks:    len(places),
		published: make([]int, len(places)),
		faults:    s.Injector,
		rec:       s.Injector.Recovery(),
		mem:       s.Membership,
	}
	opts = append([]rcce.Option{rcce.WithProtocol(proto)}, opts...)
	session, err := rcce.NewSession(s.Kernel, s.Chips, places, opts...)
	if err != nil {
		return nil, err
	}
	if err := s.registerRegions(places, scheme.regionMode()); err != nil {
		return nil, err
	}
	return session, nil
}

// ReleaseRegions tears down the host-task registration of a session's
// placements — the payload and flag regions of every rank — so a later
// tenant can reuse the cores with a different scheme. LUT mappings are
// left installed (they are idempotent and identical for every tenant).
func (s *System) ReleaseRegions(places []rcce.Place) {
	for _, pl := range places {
		tile := scc.CoreTile(pl.Core)
		base := scc.CoreLMBOffset(pl.Core)
		s.Task.UnregisterAt(pl.Dev, tile, base)
		s.Task.UnregisterAt(pl.Dev, tile, base+rcce.PayloadBytes)
	}
}

// registerRegions performs the boot-time registration of every rank's
// communication buffer and flag area with the communication task, and
// installs the LUT mappings of remote on-chip memory — the paper's §2.1
// hardware-abstraction-layer extension.
func (s *System) registerRegions(places []rcce.Place, mode host.Mode) error {
	for _, pl := range places {
		lut := s.Chips[pl.Dev].Cores[pl.Core].LUT
		for d := range s.Chips {
			if d == pl.Dev {
				continue
			}
			if err := lut.MapRemoteDevice(d); err != nil {
				return err
			}
		}
	}
	for _, pl := range places {
		tile := scc.CoreTile(pl.Core)
		base := scc.CoreLMBOffset(pl.Core)
		data := &host.Region{
			Dev: pl.Dev, Tile: tile, Off: base, Len: rcce.PayloadBytes,
			Kind: host.KindData, Mode: mode, Owner: pl.Core,
		}
		flags := &host.Region{
			Dev: pl.Dev, Tile: tile, Off: base + rcce.PayloadBytes,
			Len:  mem.CoreLMBSize - rcce.PayloadBytes,
			Kind: host.KindFlag, Mode: host.ModeTransparent, Owner: pl.Core,
		}
		if err := s.Task.Register(data); err != nil {
			return err
		}
		if err := s.Task.Register(flags); err != nil {
			return err
		}
	}
	return nil
}

// MeshOf returns the on-chip mesh of a device, for latency inspection
// tools.
func (s *System) MeshOf(dev int) *noc.Mesh { return s.Chips[dev].Mesh }
