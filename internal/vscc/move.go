package vscc

// Region-granular transfer classification for runtimes layered on the
// vSCC (internal/taskrt). The paper sizes its machinery around two
// boundaries: the per-scheme direct-path cutoff ("about 32 B to 128 B
// dependent on the communication scheme", §3.3) below which a core moves
// the payload itself, and the 8 KB MPB half (§2.1, the Fig. 6b
// throughput knee) above which transfers must be split and double
// buffered — the regime the vDMA engine pipelines across MPB halves.
// A task runtime moving a declared data region picks its strategy from
// the region footprint against exactly these two thresholds.

// MPBSplitBytes is the 8 KB message-passing-buffer half: the largest
// region that fits one MPB staging pass. Larger transfers split into
// pipelined chunks (Fig. 6b's knee, the vDMA double-buffer regime).
const MPBSplitBytes = 8 * 1024

// MoveClass names the transfer strategy for one region-granular move.
type MoveClass int

const (
	// MoveDirect: the footprint is at or under the scheme's direct-path
	// cutoff; the core carries the payload itself through the host
	// communication task (host-assisted small transfer).
	MoveDirect MoveClass = iota
	// MoveCachedMPB: the footprint fits one MPB staging pass; a single
	// put/get through the MPB, served by the host software cache under
	// the cached-get scheme.
	MoveCachedMPB
	// MoveVDMA: the footprint exceeds the MPB split; the move pipelines
	// chunks across both MPB halves the way the virtual DMA controller
	// double buffers (Fig. 4a/5).
	MoveVDMA
)

// String names the class for metrics and reports.
func (m MoveClass) String() string {
	switch m {
	case MoveDirect:
		return "direct"
	case MoveCachedMPB:
		return "cached-mpb"
	case MoveVDMA:
		return "vdma"
	}
	return "invalid"
}

// ClassifyMove picks the transfer strategy for a region of the given
// footprint under a scheme: the scheme's direct cutoff (defaulting to
// 32 B for schemes without a direct path, the smallest cutoff the paper
// names) bounds MoveDirect, the MPB half bounds MoveCachedMPB, and
// everything larger is MoveVDMA.
func ClassifyMove(s Scheme, bytes int) MoveClass {
	direct := s.DirectThreshold()
	if direct == 0 {
		direct = 32
	}
	switch {
	case bytes <= direct:
		return MoveDirect
	case bytes <= MPBSplitBytes:
		return MoveCachedMPB
	default:
		return MoveVDMA
	}
}
