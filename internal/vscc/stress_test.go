package vscc

import (
	"bytes"
	"testing"
	"testing/quick"

	"vscc/internal/rcce"
	"vscc/internal/sim"
)

// TestPropertyRandomTrafficAllSchemes model-checks the whole stack under
// randomized traffic: a random set of (src, dst, size) messages — mixing
// on-chip and cross-device pairs, sizes straddling the direct threshold,
// the vDMA slot size and the MPB chunk size — is delivered intact under
// every scheme, with per-pair FIFO order, and the simulation clock is
// identical across reruns.
func TestPropertyRandomTrafficAllSchemes(t *testing.T) {
	type msgSpec struct {
		Src, Dst uint8
		Size     uint16
	}
	f := func(specs []msgSpec, schemeSel uint8) bool {
		if len(specs) == 0 {
			return true
		}
		if len(specs) > 14 {
			specs = specs[:14]
		}
		scheme := allSchemes[int(schemeSel)%len(allSchemes)]
		// Use 8 ranks: 4 on each device (cross-device pairs are common).
		const n = 8
		type msg struct {
			src, dst, size int
			seed           byte
		}
		var msgs []msg
		for i, sp := range specs {
			src := int(sp.Src) % n
			dst := int(sp.Dst) % n
			if src == dst {
				dst = (dst + 1) % n
			}
			size := int(sp.Size)%9000 + 1
			msgs = append(msgs, msg{src: src, dst: dst, size: size, seed: byte(i + 1)})
		}
		run := func() (bool, sim.Cycles) {
			k := sim.NewKernel()
			sys, err := NewSystem(k, Config{Devices: 2, Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			places := make([]rcce.Place, n)
			for i := range places {
				places[i] = rcce.Place{Dev: i / (n / 2), Core: i % (n / 2)}
			}
			session, err := sys.NewSessionAt(places)
			if err != nil {
				t.Fatal(err)
			}
			ok := true
			err = session.Run(func(r *rcce.Rank) {
				me := r.ID()
				// Each rank walks the global message list in order,
				// sending or receiving its own entries — a deterministic
				// schedule with arbitrary cross-pair interleavings.
				for _, m := range msgs {
					switch me {
					case m.src:
						if err := r.Send(m.dst, pattern(m.size, m.seed)); err != nil {
							panic(err)
						}
					case m.dst:
						got := make([]byte, m.size)
						if err := r.Recv(m.src, got); err != nil {
							panic(err)
						}
						if !bytes.Equal(got, pattern(m.size, m.seed)) {
							ok = false
						}
					}
				}
			})
			if err != nil {
				t.Logf("scheme %v: %v (msgs=%v)", scheme, err, msgs)
				return false, 0
			}
			return ok, k.Now()
		}
		ok1, t1 := run()
		ok2, t2 := run()
		if !ok1 || !ok2 {
			return false
		}
		if t1 != t2 {
			t.Logf("scheme %v nondeterministic: %d vs %d", scheme, t1, t2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertySchemeAgnosticResults checks that the scheme choice
// affects timing only: the delivered bytes of a fixed exchange pattern
// are identical under every scheme.
func TestPropertySchemeAgnosticResults(t *testing.T) {
	f := func(sizeRaw uint16, seed byte) bool {
		size := int(sizeRaw)%12000 + 1
		var results [][]byte
		for _, scheme := range allSchemes {
			k := sim.NewKernel()
			sys, err := NewSystem(k, Config{Devices: 2, Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			session, err := sys.NewSession(96)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, size)
			err = session.Run(func(r *rcce.Rank) {
				switch r.ID() {
				case 0:
					r.Send(48, pattern(size, seed))
					r.Recv(48, make([]byte, size/2+1))
				case 48:
					r.Recv(0, got)
					r.Send(0, pattern(size/2+1, seed+1))
				}
			})
			if err != nil {
				t.Logf("scheme %v: %v", scheme, err)
				return false
			}
			results = append(results, got)
		}
		for i := 1; i < len(results); i++ {
			if !bytes.Equal(results[i], results[0]) {
				return false
			}
		}
		return bytes.Equal(results[0], pattern(size, seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
