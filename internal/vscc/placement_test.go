package vscc

import (
	"testing"

	"vscc/internal/npb"
	"vscc/internal/rcce"
	"vscc/internal/sim"
)

func TestRowAlignedPlacementNoRowStraddle(t *testing.T) {
	sys := newSystem(t, 5, SchemeVDMA)
	for _, q := range []int{8, 10, 12, 15} {
		places, err := sys.RowAlignedPlaces(q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if len(places) != q*q {
			t.Fatalf("q=%d: %d places", q, len(places))
		}
		for pj := 0; pj < q; pj++ {
			dev := places[pj*q].Dev
			for pi := 1; pi < q; pi++ {
				if places[pi+pj*q].Dev != dev {
					t.Fatalf("q=%d: row %d straddles devices", q, pj)
				}
			}
		}
	}
}

func TestRowAlignedReducesCrossDevicePairs(t *testing.T) {
	sys := newSystem(t, 5, SchemeVDMA)
	const q = 15 // 225 ranks: the paper's maximum configuration
	pairs := GridNeighborPairs(q)
	linear, err := rcce.LinearPlaces(sys.Chips, q*q)
	if err != nil {
		t.Fatal(err)
	}
	aligned, err := sys.RowAlignedPlaces(q)
	if err != nil {
		t.Fatal(err)
	}
	lin := CrossDevicePairs(linear, pairs)
	ali := CrossDevicePairs(aligned, pairs)
	if ali >= lin {
		t.Errorf("aligned placement crosses %d pairs, linear %d — no improvement", ali, lin)
	}
	t.Logf("cross-device neighbour pairs at q=%d: linear %d, row-aligned %d", q, lin, ali)
}

func TestRowAlignedPlacementRejectsOversize(t *testing.T) {
	sys := newSystem(t, 2, SchemeVDMA)
	if _, err := sys.RowAlignedPlaces(15); err == nil {
		t.Error("15 rows on 2 devices (5 rows max each at q=15... 3 per device) should fail")
	}
	if _, err := sys.RowAlignedPlaces(49); err == nil {
		t.Error("row longer than a device should fail")
	}
}

func TestRowAlignedBTSpeedsUpWorstScheme(t *testing.T) {
	// Placement matters most when the inter-device path is slow: BT under
	// transparent routing must run faster with row-aligned placement.
	run := func(aligned bool) sim.Cycles {
		k := sim.NewKernel()
		sys, err := NewSystem(k, Config{Devices: 5, Scheme: SchemeRouting})
		if err != nil {
			t.Fatal(err)
		}
		const q = 10 // 48/10 = 4.8: linear placement straddles rows
		var places []rcce.Place
		if aligned {
			places, err = sys.RowAlignedPlaces(q)
		} else {
			places, err = rcce.LinearPlaces(sys.Chips, q*q)
		}
		if err != nil {
			t.Fatal(err)
		}
		session, err := sys.NewSessionAt(places)
		if err != nil {
			t.Fatal(err)
		}
		d, err := npb.NewDecomp(60, q*q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := npb.RunOn(session, d, npb.Config{Class: npb.ClassA, Iterations: 1, Timing: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	linear := run(false)
	aligned := run(true)
	if aligned >= linear {
		t.Errorf("row-aligned placement (%d cycles) not faster than linear (%d) under routing", aligned, linear)
	}
	t.Logf("BT 100 ranks under routing: linear %d cycles, row-aligned %d (%.0f%% faster)",
		linear, aligned, 100*(1-float64(aligned)/float64(linear)))
}
