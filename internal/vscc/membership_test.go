package vscc

import (
	"testing"

	"vscc/internal/fault"
	"vscc/internal/rcce"
	"vscc/internal/sim"
)

// TestMembershipLifecycle drives one scheduled device crash through the
// full state machine and samples the membership state from kernel
// callbacks: Up until the fault fires, Draining for DefaultDrainCycles
// (wire still usable so committed traffic lands), Down with the epoch
// advanced and the wire refused, and Up again after the down window.
func TestMembershipLifecycle(t *testing.T) {
	const (
		crashAt = sim.Cycles(100_000)
		down    = sim.Cycles(300_000)
	)
	k := sim.NewKernel()
	sys, err := NewSystem(k, Config{
		Devices: 2,
		Scheme:  SchemeCachedGet,
		Faults: &fault.Config{
			Seed:       1,
			DevCrashAt: []fault.DeviceFault{{At: crashAt, Dev: 1, Down: down}},
			Recovery:   fault.Recovery{DeviceRetry: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Membership
	if m == nil {
		t.Fatal("device fault scheduled but no membership manager built")
	}

	type sample struct {
		at     sim.Cycles
		state  DevState
		epoch  uint8
		usable bool
	}
	var got []sample
	probe := func(at sim.Cycles) {
		k.At(at, func() {
			got = append(got, sample{at, m.State(1), m.Epoch(1), m.Usable(1)})
		})
	}
	drainMid := crashAt + fault.DefaultDrainCycles/2
	downStart := crashAt + fault.DefaultDrainCycles
	rejoinAt := downStart + down
	probe(crashAt - 1)     // still up
	probe(drainMid)        // draining, wire usable
	probe(downStart + 1)   // down, epoch advanced, wire refused
	probe(rejoinAt - 1)    // still down
	probe(rejoinAt + 1)    // back up
	probe(rejoinAt + 1000) // stays up

	// A long-enough workload keeps ranks alive across the whole outage.
	session, err := sys.NewSessionAt([]rcce.Place{{Dev: 0, Core: 0}, {Dev: 1, Core: 0}})
	if err != nil {
		t.Fatal(err)
	}
	err = session.Run(func(r *rcce.Rank) {
		buf := make([]byte, 4096)
		for rep := 0; rep < 16; rep++ {
			if r.ID() == 0 {
				if err := r.Send(1, buf); err != nil {
					panic(err)
				}
				if err := r.Recv(1, buf); err != nil {
					panic(err)
				}
			} else {
				if err := r.Recv(0, buf); err != nil {
					panic(err)
				}
				if err := r.Send(0, buf); err != nil {
					panic(err)
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("run did not survive the crash: %v", err)
	}

	want := []sample{
		{crashAt - 1, DevUp, 0, true},
		{drainMid, DevDraining, 0, true},
		{downStart + 1, DevDown, 1, false},
		{rejoinAt - 1, DevDown, 1, false},
		{rejoinAt + 1, DevUp, 1, true},
		{rejoinAt + 1000, DevUp, 1, true},
	}
	if len(got) != len(want) {
		t.Fatalf("sampled %d probes, want %d (run too short?)", len(got), len(want))
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("probe %d at cycle %d: got {state=%v epoch=%d usable=%v}, want {state=%v epoch=%d usable=%v}",
				i, w.at, got[i].state, got[i].epoch, got[i].usable, w.state, w.epoch, w.usable)
		}
	}

	// Device 0 never faulted: untouched state, epoch zero.
	if m.State(0) != DevUp || m.Epoch(0) != 0 {
		t.Errorf("device 0 disturbed: state=%v epoch=%d", m.State(0), m.Epoch(0))
	}
	// The lifecycle leaves the ledger balanced: one injection, one rejoin.
	if got := sys.Injector.Stat("inject.devcrash"); got != 1 {
		t.Errorf("inject.devcrash = %d, want 1", got)
	}
	if got := sys.Injector.Stat("recover.rejoin"); got != 1 {
		t.Errorf("recover.rejoin = %d, want 1", got)
	}
}

// TestMembershipVoidOverlap schedules a second fault inside the first
// outage window: it must be void (the device is not up), retire from the
// pending count so the run still terminates, and leave a single epoch
// advance.
func TestMembershipVoidOverlap(t *testing.T) {
	k := sim.NewKernel()
	sys, err := NewSystem(k, Config{
		Devices: 2,
		Scheme:  SchemeCachedGet,
		Faults: &fault.Config{
			Seed: 1,
			DevCrashAt: []fault.DeviceFault{
				{At: 100_000, Dev: 1, Down: 300_000},
				{At: 200_000, Dev: 1, Down: 300_000}, // inside the first outage: void
			},
			Recovery: fault.Recovery{DeviceRetry: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	session, err := sys.NewSessionAt([]rcce.Place{{Dev: 0, Core: 0}, {Dev: 1, Core: 0}})
	if err != nil {
		t.Fatal(err)
	}
	err = session.Run(func(r *rcce.Rank) {
		buf := make([]byte, 4096)
		for rep := 0; rep < 16; rep++ {
			if r.ID() == 0 {
				if err := r.Send(1, buf); err != nil {
					panic(err)
				}
			} else if err := r.Recv(0, buf); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if got := sys.Injector.Stat("inject.devcrash"); got != 1 {
		t.Errorf("inject.devcrash = %d, want 1 (the overlapping fault must be void)", got)
	}
	if ep := sys.Membership.Epoch(1); ep != 1 {
		t.Errorf("epoch = %d, want 1", ep)
	}
}

// TestMembershipBackToBackCrash drives two real outages of the same
// device separated only by the rejoin, with a third schedule entry
// landing mid-drain. The mid-drain fault must be void (no second drain
// restart, no injection); the post-rejoin fault is a genuine second
// crash — it may land while the rejoin journal replay is still in
// flight and must run a full second lifecycle with its own epoch
// advance. The workload survives both outages transparently.
func TestMembershipBackToBackCrash(t *testing.T) {
	const (
		firstAt  = sim.Cycles(100_000)
		firstDur = sim.Cycles(300_000) // down 150k..450k
		midDrain = sim.Cycles(120_000) // inside 100k..150k: void
		secondAt = sim.Cycles(460_000) // 10k after the rejoin
		secondD  = sim.Cycles(300_000) // down 510k..810k
	)
	k := sim.NewKernel()
	sys, err := NewSystem(k, Config{
		Devices: 2,
		Scheme:  SchemeCachedGet,
		Faults: &fault.Config{
			Seed: 1,
			DevCrashAt: []fault.DeviceFault{
				{At: firstAt, Dev: 1, Down: firstDur},
				{At: midDrain, Dev: 1, Down: firstDur},
				{At: secondAt, Dev: 1, Down: secondD},
			},
			Recovery: fault.Recovery{DeviceRetry: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Membership

	type sample struct {
		at    sim.Cycles
		state DevState
		epoch uint8
	}
	var got []sample
	probe := func(at sim.Cycles) {
		k.At(at, func() { got = append(got, sample{at, m.State(1), m.Epoch(1)}) })
	}
	probe(midDrain + 10_000) // still the FIRST drain; the void fault must not restart it
	probe(firstAt + fault.DefaultDrainCycles + 1)
	probe(secondAt + 1) // second crash accepted: draining again
	probe(secondAt + fault.DefaultDrainCycles + 1)
	probe(secondAt + fault.DefaultDrainCycles + secondD + 1)

	session, err := sys.NewSessionAt([]rcce.Place{{Dev: 0, Core: 0}, {Dev: 1, Core: 0}})
	if err != nil {
		t.Fatal(err)
	}
	err = session.Run(func(r *rcce.Rank) {
		buf := make([]byte, 4096)
		for rep := 0; rep < 24; rep++ {
			if r.ID() == 0 {
				if err := r.Send(1, buf); err != nil {
					panic(err)
				}
				if err := r.Recv(1, buf); err != nil {
					panic(err)
				}
			} else {
				if err := r.Recv(0, buf); err != nil {
					panic(err)
				}
				if err := r.Send(0, buf); err != nil {
					panic(err)
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("run did not survive back-to-back crashes: %v", err)
	}

	want := []sample{
		{midDrain + 10_000, DevDraining, 0},
		{firstAt + fault.DefaultDrainCycles + 1, DevDown, 1},
		{secondAt + 1, DevDraining, 1},
		{secondAt + fault.DefaultDrainCycles + 1, DevDown, 2},
		{secondAt + fault.DefaultDrainCycles + secondD + 1, DevUp, 2},
	}
	if len(got) != len(want) {
		t.Fatalf("sampled %d probes, want %d (run too short?)", len(got), len(want))
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("probe %d at cycle %d: got {state=%v epoch=%d}, want {state=%v epoch=%d}",
				i, w.at, got[i].state, got[i].epoch, w.state, w.epoch)
		}
	}
	if got := sys.Injector.Stat("inject.devcrash"); got != 2 {
		t.Errorf("inject.devcrash = %d, want 2 (mid-drain fault must be void)", got)
	}
	if got := sys.Injector.Stat("recover.rejoin"); got != 2 {
		t.Errorf("recover.rejoin = %d, want 2", got)
	}
	if ep := sys.Membership.Epoch(1); ep != 2 {
		t.Errorf("final epoch = %d, want 2", ep)
	}
}

// TestMembershipNotBuiltWithoutDeviceFaults pins the arming condition:
// a fault config without device faults must leave Membership nil, so
// every non-device-fault run keeps its byte-identical code paths.
func TestMembershipNotBuiltWithoutDeviceFaults(t *testing.T) {
	k := sim.NewKernel()
	sys, err := NewSystem(k, Config{
		Devices: 2,
		Scheme:  SchemeCachedGet,
		Faults:  &fault.Config{Seed: 1, DropPer10k: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Membership != nil {
		t.Error("membership manager built without any device fault scheduled")
	}
}
