package vscc

import (
	"bytes"
	"testing"

	"vscc/internal/rcce"
)

func TestVirtualAddressGoryAcrossDevices(t *testing.T) {
	// The §2.1 HAL extension end to end: a rank on device 0 one-sided
	// writes into a device-1 rank's MPB through the remote LUT window,
	// signals with a flag, and the owner reads it locally.
	sys := newSystem(t, 2, SchemeVDMA)
	session, err := sys.NewSession(96)
	if err != nil {
		t.Fatal(err)
	}
	msg := pattern(256, 9)
	got := make([]byte, len(msg))
	err = session.Run(func(r *rcce.Rank) {
		switch r.ID() {
		case 0:
			a, err := r.VAddrOf(48, 512)
			if err != nil {
				panic(err)
			}
			if err := r.PutV(a, msg); err != nil {
				panic(err)
			}
			r.SignalSent(48)
			r.AwaitReady(48)
		case 48:
			r.AwaitSent(0)
			a, err := r.VAddrOf(48, 512) // own MPB through the window
			if err != nil {
				panic(err)
			}
			if err := r.GetV(a, got); err != nil {
				panic(err)
			}
			r.SignalReady(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("virtual-address gory transfer corrupted data")
	}
}

func TestVAddrValidation(t *testing.T) {
	sys := newSystem(t, 2, SchemeVDMA)
	session, err := sys.NewSession(96)
	if err != nil {
		t.Fatal(err)
	}
	err = session.Run(func(r *rcce.Rank) {
		if r.ID() != 0 {
			return
		}
		if _, err := r.VAddrOf(1, -1); err == nil {
			t.Error("negative offset accepted")
		}
		if _, err := r.VAddrOf(1, rcce.PayloadBytes); err == nil {
			t.Error("offset beyond payload accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
