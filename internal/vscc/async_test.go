package vscc

import (
	"bytes"
	"testing"

	"vscc/internal/rcce"
	"vscc/internal/sim"
)

func TestAsyncRequiresVDMAScheme(t *testing.T) {
	sys := newSystem(t, 2, SchemeCachedGet)
	session, err := sys.NewSession(96)
	if err != nil {
		t.Fatal(err)
	}
	err = session.Run(func(r *rcce.Rank) {
		if r.ID() != 0 {
			return
		}
		if _, err := NewAsyncEngine(r); err == nil {
			t.Error("async engine accepted a non-vDMA session")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAsyncSendRecvIntegrity(t *testing.T) {
	for _, size := range []int{1, 100, 3424, 3425, 10000, 40000} {
		size := size
		sys := newSystem(t, 2, SchemeVDMA)
		session, err := sys.NewSession(96)
		if err != nil {
			t.Fatal(err)
		}
		msg := pattern(size, byte(size))
		got := make([]byte, size)
		err = session.Run(func(r *rcce.Rank) {
			switch r.ID() {
			case 0:
				eng, err := NewAsyncEngine(r)
				if err != nil {
					t.Error(err)
					return
				}
				q, err := eng.Isend(48, msg)
				if err != nil {
					t.Error(err)
					return
				}
				eng.Wait(q)
			case 48:
				eng, err := NewAsyncEngine(r)
				if err != nil {
					t.Error(err)
					return
				}
				q, err := eng.Irecv(0, got)
				if err != nil {
					t.Error(err)
					return
				}
				eng.Wait(q)
			}
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("size %d corrupted", size)
		}
	}
}

func TestAsyncOverlapsComputeWithTransfer(t *testing.T) {
	// The point of the future-work extension: the sender's compute and
	// the host's DMA overlap, so compute+transfer costs ~max, not ~sum.
	const size = 60000
	const computeCycles = 3_000_000
	run := func(async bool) sim.Cycles {
		sys := newSystem(t, 2, SchemeVDMA)
		session, err := sys.NewSession(96)
		if err != nil {
			t.Fatal(err)
		}
		var done sim.Cycles
		err = session.Run(func(r *rcce.Rank) {
			msg := pattern(size, 1)
			switch r.ID() {
			case 0:
				if async {
					eng, _ := NewAsyncEngine(r)
					q, err := eng.Isend(48, msg)
					if err != nil {
						panic(err)
					}
					// Useful work while the host moves the data; poke
					// progress between compute blocks as iRCCE would.
					for i := 0; i < 10; i++ {
						r.Ctx().Delay(computeCycles / 10)
						eng.Push()
					}
					eng.Wait(q)
				} else {
					r.Send(48, msg)
					r.Ctx().Delay(computeCycles)
				}
				done = r.Now()
			case 48:
				r.Recv(0, make([]byte, size))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	blocking := run(false)
	async := run(true)
	if async >= blocking {
		t.Errorf("async (%d cycles) should beat blocking send+compute (%d)", async, blocking)
	}
	// The overlap should hide a substantial part of the transfer.
	saved := float64(blocking-async) / float64(blocking)
	if saved < 0.15 {
		t.Errorf("async saved only %.1f%% — no real overlap", 100*saved)
	}
}

func TestAsyncBidirectionalExchange(t *testing.T) {
	const size = 20000
	sys := newSystem(t, 2, SchemeVDMA)
	session, err := sys.NewSession(96)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int][]byte{0: make([]byte, size), 48: make([]byte, size)}
	err = session.Run(func(r *rcce.Rank) {
		me := r.ID()
		if me != 0 && me != 48 {
			return
		}
		peer := 48 - me
		eng, err := NewAsyncEngine(r)
		if err != nil {
			panic(err)
		}
		sq, err := eng.Isend(peer, pattern(size, byte(me+1)))
		if err != nil {
			panic(err)
		}
		rq, err := eng.Irecv(peer, got[me])
		if err != nil {
			panic(err)
		}
		eng.WaitAll(sq, rq)
		if eng.Pending() != 0 {
			t.Errorf("rank %d: %d requests pending after WaitAll", me, eng.Pending())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], pattern(size, byte(49))) || !bytes.Equal(got[48], pattern(size, byte(1))) {
		t.Error("bidirectional async exchange corrupted")
	}
}

func TestAsyncInteropWithBlockingPeer(t *testing.T) {
	// One side async, the other blocking: the wire protocol is shared.
	const size = 12000
	sys := newSystem(t, 2, SchemeVDMA)
	session, err := sys.NewSession(96)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	err = session.Run(func(r *rcce.Rank) {
		switch r.ID() {
		case 0:
			eng, _ := NewAsyncEngine(r)
			q, err := eng.Isend(48, pattern(size, 7))
			if err != nil {
				panic(err)
			}
			eng.Wait(q)
		case 48:
			r.Recv(0, got) // blocking receive
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(size, 7)) {
		t.Error("async->blocking interop corrupted")
	}
}

func TestAsyncSequenceOfMessages(t *testing.T) {
	sys := newSystem(t, 2, SchemeVDMA)
	session, err := sys.NewSession(96)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 8
	err = session.Run(func(r *rcce.Rank) {
		switch r.ID() {
		case 0:
			eng, _ := NewAsyncEngine(r)
			for i := 0; i < rounds; i++ {
				q, err := eng.Isend(48, pattern(5000, byte(i)))
				if err != nil {
					panic(err)
				}
				eng.Wait(q)
			}
		case 48:
			eng, _ := NewAsyncEngine(r)
			for i := 0; i < rounds; i++ {
				got := make([]byte, 5000)
				q, err := eng.Irecv(0, got)
				if err != nil {
					panic(err)
				}
				eng.Wait(q)
				if !bytes.Equal(got, pattern(5000, byte(i))) {
					t.Errorf("round %d corrupted", i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAsyncZeroLengthAndSameDevice(t *testing.T) {
	sys := newSystem(t, 2, SchemeVDMA)
	session, err := sys.NewSession(96)
	if err != nil {
		t.Fatal(err)
	}
	err = session.Run(func(r *rcce.Rank) {
		if r.ID() != 0 {
			return
		}
		eng, _ := NewAsyncEngine(r)
		q, err := eng.Isend(48, nil)
		if err != nil || !q.Done() {
			t.Errorf("zero-length isend: %v, done=%v", err, q.Done())
		}
		if _, err := eng.Isend(1, []byte{1}); err == nil {
			t.Error("same-device async isend accepted")
		}
		if _, err := eng.Irecv(1, make([]byte, 1)); err == nil {
			t.Error("same-device async irecv accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
