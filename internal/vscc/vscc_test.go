package vscc

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
)

func newSystem(t testing.TB, devices int, scheme Scheme) *System {
	t.Helper()
	k := sim.NewKernel()
	sys, err := NewSystem(k, Config{Devices: devices, Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*17 + seed
	}
	return b
}

var allSchemes = []Scheme{SchemeRouting, SchemeHostRouted, SchemeCachedGet, SchemeRemotePut, SchemeVDMA}

// crossPair runs a send/recv between rank 0 (device 0) and rank 48
// (device 1) and returns the received bytes and the completion time.
func crossPair(t testing.TB, scheme Scheme, size int, rounds int) ([]byte, sim.Cycles) {
	t.Helper()
	sys := newSystem(t, 2, scheme)
	session, err := sys.NewSession(96)
	if err != nil {
		t.Fatal(err)
	}
	msg := pattern(size, byte(size))
	got := make([]byte, size)
	var done sim.Cycles
	err = session.Run(func(r *rcce.Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < rounds; i++ {
				if err := r.Send(48, msg); err != nil {
					t.Error(err)
				}
			}
		case 48:
			for i := 0; i < rounds; i++ {
				if err := r.Recv(0, got); err != nil {
					t.Error(err)
				}
			}
			done = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, done
}

func TestAllSchemesDataIntegrity(t *testing.T) {
	for _, scheme := range allSchemes {
		scheme := scheme
		for _, size := range []int{1, 31, 32, 33, 64, 100, 4096, 7392, 7393, 8192, 20000, 65536} {
			t.Run(fmt.Sprintf("%v/%d", scheme, size), func(t *testing.T) {
				msg := pattern(size, byte(size))
				got, _ := crossPair(t, scheme, size, 1)
				if !bytes.Equal(got, msg) {
					t.Fatalf("scheme %v corrupted a %d-byte message", scheme, size)
				}
			})
		}
	}
}

func TestHWAccelScheme(t *testing.T) {
	size := 16384
	got, _ := crossPair(t, SchemeHWAccel, size, 1)
	if !bytes.Equal(got, pattern(size, byte(size))) {
		t.Fatal("hw-accelerated scheme corrupted data")
	}
}

func TestHWAccelRejectsThreeDevices(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewSystem(k, Config{Devices: 3, Scheme: SchemeHWAccel}); err == nil {
		t.Fatal("3-device hw-accelerated system should be rejected (§2.3)")
	}
}

func TestRepeatedMessagesAllSchemes(t *testing.T) {
	// Many back-to-back messages stress flag generations, cache
	// invalidation and the vDMA counters (mod-255 wrap at >255 chunks).
	for _, scheme := range allSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			sys := newSystem(t, 2, scheme)
			session, err := sys.NewSession(96)
			if err != nil {
				t.Fatal(err)
			}
			const rounds = 30
			err = session.Run(func(r *rcce.Rank) {
				const size = 5000
				for i := 0; i < rounds; i++ {
					if r.ID() == 0 {
						r.Send(48, pattern(size, byte(i)))
					} else if r.ID() == 48 {
						got := make([]byte, size)
						r.Recv(0, got)
						if !bytes.Equal(got, pattern(size, byte(i))) {
							t.Errorf("round %d corrupted", i)
						}
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVDMACounterWrap(t *testing.T) {
	// >255 chunks across messages exercises the mod-255 flag encoding.
	sys := newSystem(t, 2, SchemeVDMA)
	session, err := sys.NewSession(96)
	if err != nil {
		t.Fatal(err)
	}
	const size = 40 * 1024 // ~12 chunks per message
	const rounds = 25      // ~300 chunks total
	err = session.Run(func(r *rcce.Rank) {
		for i := 0; i < rounds; i++ {
			if r.ID() == 0 {
				r.Send(48, pattern(size, byte(i)))
			} else if r.ID() == 48 {
				got := make([]byte, size)
				r.Recv(0, got)
				if !bytes.Equal(got, pattern(size, byte(i))) {
					t.Fatalf("round %d corrupted after counter wrap", i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPingPongBothDirections(t *testing.T) {
	for _, scheme := range []Scheme{SchemeCachedGet, SchemeRemotePut, SchemeVDMA} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			sys := newSystem(t, 2, scheme)
			session, err := sys.NewSession(96)
			if err != nil {
				t.Fatal(err)
			}
			const size = 9000
			err = session.Run(func(r *rcce.Rank) {
				buf := make([]byte, size)
				for i := 0; i < 5; i++ {
					if r.ID() == 0 {
						r.Send(48, pattern(size, byte(i)))
						r.Recv(48, buf)
						if !bytes.Equal(buf, pattern(size, byte(i+100))) {
							t.Errorf("pong %d corrupted", i)
						}
					} else if r.ID() == 48 {
						r.Recv(0, buf)
						if !bytes.Equal(buf, pattern(size, byte(i))) {
							t.Errorf("ping %d corrupted", i)
						}
						r.Send(0, pattern(size, byte(i+100)))
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSchemePerformanceOrdering(t *testing.T) {
	// The shape of Fig. 6b: transparent routing is far slower than the
	// lower bound, which is far slower than every optimized scheme; the
	// vDMA scheme lands closest to (but below) the hardware-accelerated
	// upper bound.
	const size = 64 * 1024
	times := map[Scheme]sim.Cycles{}
	for _, scheme := range []Scheme{SchemeRouting, SchemeHostRouted, SchemeCachedGet, SchemeRemotePut, SchemeVDMA, SchemeHWAccel} {
		_, done := crossPair(t, scheme, size, 1)
		times[scheme] = done
	}
	if times[SchemeRouting] <= times[SchemeHostRouted] {
		t.Errorf("routing (%d) should be slower than host-routed (%d)", times[SchemeRouting], times[SchemeHostRouted])
	}
	for _, opt := range []Scheme{SchemeCachedGet, SchemeRemotePut, SchemeVDMA} {
		if times[SchemeHostRouted] <= 4*times[opt] {
			t.Errorf("%v (%d cycles) should be >4x faster than the lower bound (%d)", opt, times[opt], times[SchemeHostRouted])
		}
	}
	if times[SchemeVDMA] <= times[SchemeHWAccel] {
		t.Errorf("vDMA (%d) should be slower than the hardware upper bound (%d)", times[SchemeVDMA], times[SchemeHWAccel])
	}
	if times[SchemeCachedGet] <= times[SchemeVDMA] {
		t.Errorf("cached get (%d) is the worst optimized scheme; vDMA (%d) should beat it", times[SchemeCachedGet], times[SchemeVDMA])
	}
}

func TestOnChipPairsUnaffectedByScheme(t *testing.T) {
	// Same-device pairs must use the base on-chip protocol: identical
	// timing across schemes.
	times := map[Scheme]sim.Cycles{}
	for _, scheme := range allSchemes {
		sys := newSystem(t, 2, scheme)
		session, err := sys.NewSession(96)
		if err != nil {
			t.Fatal(err)
		}
		var done sim.Cycles
		err = session.Run(func(r *rcce.Rank) {
			msg := pattern(10000, 1)
			if r.ID() == 0 {
				r.Send(1, msg)
			} else if r.ID() == 1 {
				got := make([]byte, len(msg))
				r.Recv(0, got)
				done = r.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		times[scheme] = done
	}
	for _, scheme := range allSchemes[1:] {
		if times[scheme] != times[allSchemes[0]] {
			t.Errorf("on-chip transfer timing differs: %v=%d vs %v=%d",
				scheme, times[scheme], allSchemes[0], times[allSchemes[0]])
		}
	}
}

func TestFiveDeviceSystem240Cores(t *testing.T) {
	sys := newSystem(t, 5, SchemeVDMA)
	if sys.TotalCores() != 240 {
		t.Fatalf("total cores = %d, want 240", sys.TotalCores())
	}
	session, err := sys.NewSession(240)
	if err != nil {
		t.Fatal(err)
	}
	if session.NumRanks() != 240 {
		t.Fatalf("ranks = %d, want 240", session.NumRanks())
	}
	// Rank->device mapping is linear: rank 48 starts device 1 (§3).
	for _, c := range []struct{ rank, dev int }{{0, 0}, {47, 0}, {48, 1}, {96, 2}, {239, 4}} {
		if pl := session.PlaceOf(c.rank); pl.Dev != c.dev {
			t.Errorf("rank %d on device %d, want %d", c.rank, pl.Dev, c.dev)
		}
	}
}

func TestCoordTriple(t *testing.T) {
	// Fig. 3: (x, y, z) with the device number as z.
	x, y, z := Coord(rcce.Place{Dev: 3, Core: 47})
	if z != 3 {
		t.Errorf("z = %d, want device 3", z)
	}
	if c := scc.CoreCoord(47); x != c.X || y != c.Y {
		t.Errorf("(x,y) = (%d,%d), want %v", x, y, c)
	}
}

func TestRingAcrossFiveDevices(t *testing.T) {
	// A 240-rank all-device ring with a small payload: every rank passes
	// a token to its right neighbour (crossing four device boundaries).
	sys := newSystem(t, 5, SchemeVDMA)
	session, err := sys.NewSession(240)
	if err != nil {
		t.Fatal(err)
	}
	const size = 256
	oks := make([]bool, 240)
	err = session.Run(func(r *rcce.Rank) {
		me := r.ID()
		n := r.N()
		next := (me + 1) % n
		prev := (me + n - 1) % n
		got := make([]byte, size)
		if me%2 == 0 {
			r.Send(next, pattern(size, byte(me)))
			r.Recv(prev, got)
		} else {
			r.Recv(prev, got)
			r.Send(next, pattern(size, byte(me)))
		}
		oks[me] = bytes.Equal(got, pattern(size, byte(prev)))
	})
	if err != nil {
		t.Fatal(err)
	}
	for me, ok := range oks {
		if !ok {
			t.Errorf("rank %d got a corrupted ring token", me)
		}
	}
}

func TestBarrierAcrossDevices(t *testing.T) {
	sys := newSystem(t, 3, SchemeVDMA)
	session, err := sys.NewSession(144)
	if err != nil {
		t.Fatal(err)
	}
	var latestArrival sim.Cycles
	after := make([]sim.Cycles, 144)
	err = session.Run(func(r *rcce.Rank) {
		r.Ctx().Delay(sim.Cycles(r.ID()) * 1000)
		if now := r.Now(); now > latestArrival {
			latestArrival = now
		}
		r.Barrier()
		after[r.ID()] = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range after {
		if a < latestArrival {
			t.Fatalf("rank %d left the cross-device barrier early (%d < %d)", i, a, latestArrival)
		}
	}
}

func TestFailedCoresSkippedInSession(t *testing.T) {
	k := sim.NewKernel()
	sys, err := NewSystem(k, Config{
		Devices: 2, Scheme: SchemeVDMA,
		FailedCores: map[int][]int{0: {0, 10}, 1: {47}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.TotalCores() != 93 {
		t.Fatalf("total cores = %d, want 93", sys.TotalCores())
	}
	session, err := sys.NewSession(93)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 93; rank++ {
		pl := session.PlaceOf(rank)
		if pl.Dev == 0 && (pl.Core == 0 || pl.Core == 10) {
			t.Errorf("rank %d mapped to failed core %d", rank, pl.Core)
		}
		if pl.Dev == 1 && pl.Core == 47 {
			t.Errorf("rank %d mapped to failed core 47 of device 1", rank)
		}
	}
}

func TestDirectThresholdSmallMessages(t *testing.T) {
	// Below the threshold the vDMA machinery must not engage.
	sys := newSystem(t, 2, SchemeVDMA)
	session, err := sys.NewSession(96)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 48)
	err = session.Run(func(r *rcce.Rank) {
		if r.ID() == 0 {
			r.Send(48, pattern(48, 9))
		} else if r.ID() == 48 {
			r.Recv(0, got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(48, 9)) {
		t.Fatal("direct small message corrupted")
	}
	if sys.Task.Stats().VDMACopies != 0 {
		t.Errorf("vDMA engaged for a %d-byte message below the threshold", 48)
	}
}

func TestVDMAEngagesAboveThreshold(t *testing.T) {
	sys := newSystem(t, 2, SchemeVDMA)
	session, err := sys.NewSession(96)
	if err != nil {
		t.Fatal(err)
	}
	err = session.Run(func(r *rcce.Rank) {
		if r.ID() == 0 {
			r.Send(48, pattern(4096, 1))
		} else if r.ID() == 48 {
			r.Recv(0, make([]byte, 4096))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Task.Stats().VDMACopies == 0 {
		t.Error("vDMA did not engage above the threshold")
	}
}

func TestDeterministicCrossDeviceRuns(t *testing.T) {
	run := func() sim.Cycles {
		_, done := crossPair(t, SchemeVDMA, 30000, 3)
		return done
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic run: %d vs %d", got, first)
		}
	}
}

// Property: arbitrary sizes and schemes always round-trip intact across
// the device boundary.
func TestPropertyCrossDeviceIntegrity(t *testing.T) {
	f := func(szRaw uint16, schemeRaw uint8) bool {
		size := int(szRaw)%20000 + 1
		scheme := allSchemes[int(schemeRaw)%len(allSchemes)]
		got, _ := crossPair(t, scheme, size, 1)
		return bytes.Equal(got, pattern(size, byte(size)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
