package sched

import (
	"fmt"
	"strings"
	"testing"

	"vscc/internal/fault"
	"vscc/internal/sim"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

// newFaultRig builds a 2-device VDMA system with a device-crash schedule
// armed and a scheduler over it. The wait budget is tightened so device
// loss is detected well before the rejoin.
func newFaultRig(t *testing.T, faults *fault.Config, opts Options) (*sim.Kernel, *vscc.System, *Scheduler, *trace.Sink) {
	t.Helper()
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: vscc.SchemeVDMA, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewSink(k)
	sys.Instrument(sink)
	return k, sys, New(sys, sink, opts), sink
}

// crashConfig schedules devcrash faults with fast loss detection: the
// tight base budget bounds how long a wait runs before it re-checks
// membership, and the deep ladder keeps legitimately slow ring waits
// (the serialized 60-rank exchange takes ~5M cycles) from exhausting.
func crashConfig(crashes ...fault.DeviceFault) *fault.Config {
	return &fault.Config{
		Seed:         11,
		DevCrashAt:   crashes,
		CkptInterval: 50_000,
		Recovery:     fault.Recovery{WaitBudget: 100_000, MaxWaitRetries: 8},
	}
}

// spanJob is a traffic ring across both devices: 60 ranks put 48 on
// device 0 and 12 on device 1, so a device-1 crash strands cross-device
// waiters with rcce.ErrDeviceLost.
func spanJob(name string, submit sim.Cycles, reps int) JobSpec {
	return JobSpec{Tenant: 1, Name: name, Submit: submit, Kind: KindTraffic,
		Ranks: 60, Scheme: vscc.SchemeVDMA, Size: 4096, Reps: reps}
}

// runToTerminal drives the kernel; a deadlock report is tolerated only
// when every job is terminal (stranded ranks of a reaped job).
func runToTerminal(t *testing.T, k *sim.Kernel, s *Scheduler) {
	t.Helper()
	err := k.Run()
	if !s.AllTerminal() {
		t.Fatalf("jobs left non-terminal (kernel: %v)", err)
	}
	if err != nil && !strings.Contains(err.Error(), "deadlock") {
		t.Fatal(err)
	}
}

// devRetryLedger renders everything the determinism comparison cares
// about: job outcomes with cycle stamps plus the full metrics report.
func devRetryLedger(sink *trace.Sink, results []Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "job %s submit=%d admit=%d done=%d status=%s retries=%d leaked=%v devs=%v\n",
			r.Spec.Name, r.Submit, r.Admit, r.Done, r.Status, r.Retries, r.Leaked, r.Devices())
	}
	b.WriteString(sink.MetricsReport())
	return b.String()
}

// TestDevRetryRequeuesAfterRejoin: a spanning job of a devretry tenant
// loses device 1 mid-run. The job must be aborted, torn down without
// leaking a single core, requeued once the device's rejoin replay
// quiesces, and finish StatusOK — byte-identically across reruns.
func TestDevRetryRequeuesAfterRejoin(t *testing.T) {
	run := func() (string, Result, Capacity, *trace.Sink) {
		cfg := crashConfig(fault.DeviceFault{At: 100_000, Dev: 1, Down: 300_000})
		k, _, s, sink := newFaultRig(t, cfg, Options{})
		addTenants(t, s, TenantSpec{ID: 1, DevRetry: 1})
		if err := s.Submit([]JobSpec{spanJob("span", 0, 3)}); err != nil {
			t.Fatal(err)
		}
		runToTerminal(t, k, s)
		res := s.Results()[0]
		return devRetryLedger(sink, s.Results()), res, s.Capacity(), sink
	}

	ledger, res, cap1, sink := run()
	if res.Status != StatusOK {
		t.Fatalf("job finished %v, want ok (err %v)", res.Status, res.Err)
	}
	if res.Retries != 1 {
		t.Errorf("retries = %d, want 1", res.Retries)
	}
	if res.Leaked {
		t.Error("recovered job marked leaked")
	}
	if len(res.LostDevs) != 1 || res.LostDevs[0] != 1 {
		t.Errorf("LostDevs = %v, want [1] (the crash the job survived)", res.LostDevs)
	}
	// The crash fires at 100k, drains 50k, stays down 300k: the requeued
	// admission cannot predate the rejoin at 450k.
	if res.Admit < 450_000 {
		t.Errorf("requeued admission at %d, before the device rejoin at 450000", res.Admit)
	}
	for d, free := range cap1.FreeCores {
		if free != 48 {
			t.Errorf("device %d has %d free cores after recovery, want 48 (leak)", d, free)
		}
	}
	for name, want := range map[string]int64{
		"sched.requeued":      1,
		"sched.requeued.t001": 1,
		"sched.requeued.d1":   1,
		"sched.leaked_cores":  0,
	} {
		if got := sink.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	ledger2, _, _, _ := run()
	if ledger != ledger2 {
		t.Fatalf("devretry recovery not deterministic across reruns:\n--- first\n%s--- second\n%s", ledger, ledger2)
	}
}

// TestDevRetryBudgetExhaustion: the second crash exceeds the tenant's
// budget of one requeue; the job must fall back to the reap-with-leak
// path with the exhaustion counted.
func TestDevRetryBudgetExhaustion(t *testing.T) {
	// The second crash lands mid-way through the requeued run (admitted
	// shortly after the first rejoin at 450k; the ring takes ~5M cycles)
	// and stays down long enough that the loss is detected while the
	// device is still out, so the exhaustion mirrors land on d1.
	cfg := crashConfig(
		fault.DeviceFault{At: 100_000, Dev: 1, Down: 300_000},
		fault.DeviceFault{At: 2_000_000, Dev: 1, Down: 2_000_000},
	)
	k, _, s, sink := newFaultRig(t, cfg, Options{FailGrace: 200_000})
	addTenants(t, s, TenantSpec{ID: 1, DevRetry: 1})
	if err := s.Submit([]JobSpec{spanJob("span", 0, 3)}); err != nil {
		t.Fatal(err)
	}
	runToTerminal(t, k, s)
	res := s.Results()[0]
	if res.Status != StatusDeviceLost {
		t.Fatalf("job finished %v, want device-lost (err %v)", res.Status, res.Err)
	}
	if res.Retries != 1 {
		t.Errorf("retries = %d, want 1 (first crash consumed the budget)", res.Retries)
	}
	if !res.Leaked {
		t.Error("exhausted job not marked leaked")
	}
	for name, want := range map[string]int64{
		"sched.requeued":             1,
		"sched.retry_exhausted":      1,
		"sched.retry_exhausted.t001": 1,
		"sched.retry_exhausted.d1":   1,
	} {
		if got := sink.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestDevRetryBackToBackCrash: a second crash of the same device landing
// during the first outage's drain window is void at the membership layer
// (no second epoch); the devretry tenant must still recover with a
// single requeue.
func TestDevRetryBackToBackCrash(t *testing.T) {
	cfg := crashConfig(
		fault.DeviceFault{At: 100_000, Dev: 1, Down: 300_000},
		fault.DeviceFault{At: 120_000, Dev: 1, Down: 300_000}, // lands mid-drain: void
	)
	k, sys, s, sink := newFaultRig(t, cfg, Options{})
	addTenants(t, s, TenantSpec{ID: 1, DevRetry: 2})
	if err := s.Submit([]JobSpec{spanJob("span", 0, 3)}); err != nil {
		t.Fatal(err)
	}
	runToTerminal(t, k, s)
	res := s.Results()[0]
	if res.Status != StatusOK {
		t.Fatalf("job finished %v, want ok (err %v)", res.Status, res.Err)
	}
	if res.Retries != 1 {
		t.Errorf("retries = %d, want 1 (second crash was void)", res.Retries)
	}
	if got := sys.Injector.Stat("inject.devcrash"); got != 1 {
		t.Errorf("inject.devcrash = %d, want 1 (void fault must not inject)", got)
	}
	if got := sink.CounterValue("epoch.advance.d1"); got != 1 {
		t.Errorf("epoch.advance.d1 = %d, want 1", got)
	}
	for d, free := range s.Capacity().FreeCores {
		if free != 48 {
			t.Errorf("device %d has %d free cores after recovery, want 48", d, free)
		}
	}
}

// TestDevRetryDisabledKeepsReapPath: without a budget the pre-existing
// reap-with-leak behaviour is unchanged.
func TestDevRetryDisabledKeepsReapPath(t *testing.T) {
	cfg := crashConfig(fault.DeviceFault{At: 100_000, Dev: 1, Down: 300_000})
	k, _, s, sink := newFaultRig(t, cfg, Options{FailGrace: 200_000})
	addTenants(t, s, TenantSpec{ID: 1})
	if err := s.Submit([]JobSpec{spanJob("span", 0, 3)}); err != nil {
		t.Fatal(err)
	}
	runToTerminal(t, k, s)
	res := s.Results()[0]
	if res.Status != StatusDeviceLost {
		t.Fatalf("job finished %v, want device-lost (err %v)", res.Status, res.Err)
	}
	if !res.Leaked {
		t.Error("reaped job not marked leaked")
	}
	if got := sink.CounterValue("sched.requeued"); got != 0 {
		t.Errorf("sched.requeued = %d, want 0 with devretry disabled", got)
	}
	if got := sink.CounterValue("sched.leaked_cores"); got == 0 {
		t.Error("sched.leaked_cores = 0, want stranded ranks counted")
	}
}
