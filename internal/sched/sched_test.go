package sched

import (
	"fmt"
	"strings"
	"testing"

	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

// newTestRig builds a 2-device VDMA system with a scheduler over it.
func newTestRig(t *testing.T, opts Options) (*sim.Kernel, *vscc.System, *Scheduler, *trace.Sink) {
	t.Helper()
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: vscc.SchemeVDMA})
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewSink(k)
	sys.Instrument(sink)
	return k, sys, New(sys, sink, opts), sink
}

func addTenants(t *testing.T, s *Scheduler, specs ...TenantSpec) {
	t.Helper()
	for _, ts := range specs {
		if err := s.AddTenant(ts); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAdmissionOrderDeterministic drives a same-cycle burst of jobs from
// three tenants twice and checks the admission order is (submit, tenant,
// spec position) both times, byte-identical in every reported cycle.
func TestAdmissionOrderDeterministic(t *testing.T) {
	run := func() []Result {
		k, _, s, _ := newTestRig(t, Options{})
		addTenants(t, s, TenantSpec{ID: 3}, TenantSpec{ID: 1}, TenantSpec{ID: 2})
		jobs := []JobSpec{
			// Deliberately out of tenant order; same submit cycle.
			{Tenant: 3, Name: "c", Submit: 100, Kind: KindPingPong, Ranks: 2, Scheme: vscc.SchemeVDMA, Size: 64, Reps: 1},
			{Tenant: 1, Name: "a", Submit: 100, Kind: KindPingPong, Ranks: 2, Scheme: vscc.SchemeVDMA, Size: 64, Reps: 1},
			{Tenant: 2, Name: "b", Submit: 100, Kind: KindPingPong, Ranks: 2, Scheme: vscc.SchemeVDMA, Size: 64, Reps: 1},
			{Tenant: 2, Name: "later", Submit: 50, Kind: KindPingPong, Ranks: 2, Scheme: vscc.SchemeVDMA, Size: 64, Reps: 1},
		}
		if err := s.Submit(jobs); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Results()
	}
	first := run()
	wantOrder := []string{"later", "a", "b", "c"}
	for i, want := range wantOrder {
		if first[i].Spec.Name != want {
			t.Fatalf("arrival order[%d] = %q, want %q", i, first[i].Spec.Name, want)
		}
		if first[i].Status != StatusOK {
			t.Fatalf("job %q finished %v (%v)", first[i].Spec.Name, first[i].Status, first[i].Err)
		}
		if first[i].Admit != first[i].Submit {
			t.Errorf("job %q admitted at %d, submitted at %d (machine was empty)",
				first[i].Spec.Name, first[i].Admit, first[i].Submit)
		}
	}
	second := run()
	for i := range first {
		a, b := first[i], second[i]
		if a.Spec.Name != b.Spec.Name || a.Admit != b.Admit || a.Done != b.Done || a.Status != b.Status {
			t.Errorf("rerun diverged at job %d: %+v vs %+v", i, a, b)
		}
	}
}

// TestCapacityRejection is the table-driven exhaustion matrix: jobs that
// can never fit must be rejected at submit with a cycle-stamped error.
func TestCapacityRejection(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		job  JobSpec
		want string
	}{
		{
			name: "more ranks than cores",
			opts: Options{},
			job:  JobSpec{Tenant: 1, Name: "big", Submit: 7, Kind: KindTraffic, Ranks: 97, Scheme: vscc.SchemeVDMA},
			want: "exceeds the machine's 96 cores",
		},
		{
			name: "lut partition too small for a spanning job",
			opts: Options{LUTSlotsPerDevice: -1}, // negative: zero inter-device slots
			job:  JobSpec{Tenant: 1, Name: "span", Submit: 7, Kind: KindTraffic, Ranks: 60, Scheme: vscc.SchemeVDMA},
			want: "LUT slots",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k, _, s, _ := newTestRig(t, tc.opts)
			addTenants(t, s, TenantSpec{ID: 1})
			if err := s.Submit([]JobSpec{tc.job}); err != nil {
				t.Fatal(err)
			}
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			res := s.Results()[0]
			if res.Status != StatusRejected {
				t.Fatalf("status = %v, want rejected (err %v)", res.Status, res.Err)
			}
			if want := fmt.Sprintf("cycle %d", tc.job.Submit); !strings.Contains(res.Err.Error(), want) {
				t.Errorf("rejection not cycle-stamped with %q: %v", want, res.Err)
			}
			if !strings.Contains(res.Err.Error(), tc.want) {
				t.Errorf("rejection reason missing %q: %v", tc.want, res.Err)
			}
		})
	}
}

// TestQueueingAndTeardown fills the whole machine, queues a second job
// behind it, and checks (a) the queued job only starts once the first
// finishes and (b) teardown returns every core, LUT slot and MPB byte.
func TestQueueingAndTeardown(t *testing.T) {
	k, _, s, _ := newTestRig(t, Options{})
	addTenants(t, s, TenantSpec{ID: 1}, TenantSpec{ID: 2})
	before := s.Capacity()
	jobs := []JobSpec{
		{Tenant: 1, Name: "hog", Submit: 0, Kind: KindTraffic, Ranks: 96, Scheme: vscc.SchemeVDMA, Size: 32, Reps: 1},
		{Tenant: 2, Name: "queued", Submit: 1, Kind: KindPingPong, Ranks: 2, Scheme: vscc.SchemeCachedGet, Size: 32, Reps: 1},
	}
	if err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	res := s.Results()
	for _, r := range res {
		if r.Status != StatusOK {
			t.Fatalf("job %q finished %v (%v)", r.Spec.Name, r.Status, r.Err)
		}
	}
	hog, queued := res[0], res[1]
	if queued.Admit < hog.Done {
		t.Errorf("queued job admitted at %d before the hog finished at %d", queued.Admit, hog.Done)
	}
	after := s.Capacity()
	if fmt.Sprint(after) != fmt.Sprint(before) {
		t.Errorf("teardown did not restore capacity:\nbefore %+v\nafter  %+v", before, after)
	}
	if after.MPBBytesInUse != 0 {
		t.Errorf("MPB still in use after teardown: %d bytes", after.MPBBytesInUse)
	}
}

// TestTenantValidation covers the registration error paths.
func TestTenantValidation(t *testing.T) {
	_, _, s, _ := newTestRig(t, Options{CacheLines: 100})
	if err := s.AddTenant(TenantSpec{ID: 1, CacheLines: 80}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTenant(TenantSpec{ID: 1}); err == nil {
		t.Error("duplicate tenant registration accepted")
	}
	if err := s.AddTenant(TenantSpec{ID: 2, CacheLines: 40}); err == nil {
		t.Error("cache partition overcommit accepted")
	}
	if err := s.AddTenant(TenantSpec{ID: 2, CacheLines: 20}); err != nil {
		t.Errorf("fitting tenant rejected: %v", err)
	}
	if got := s.Capacity().FreeCacheLines; got != 0 {
		t.Errorf("cache pool = %d lines free, want 0", got)
	}
}

// TestSubmitValidation covers the spec error paths that reject the whole
// workload before the clock starts.
func TestSubmitValidation(t *testing.T) {
	cases := []struct {
		name string
		job  JobSpec
		want string
	}{
		{"unknown tenant", JobSpec{Tenant: 9, Name: "x", Kind: KindPingPong, Ranks: 2, Scheme: vscc.SchemeVDMA}, "unknown tenant"},
		{"zero ranks", JobSpec{Tenant: 1, Name: "x", Kind: KindPingPong, Scheme: vscc.SchemeVDMA}, "ranks"},
		{"ack mismatch", JobSpec{Tenant: 1, Name: "x", Kind: KindPingPong, Ranks: 2, Scheme: vscc.SchemeRouting}, "cannot share a fabric"},
		{"unknown kind", JobSpec{Tenant: 1, Name: "x", Kind: "warp", Ranks: 2, Scheme: vscc.SchemeVDMA}, "unknown job kind"},
		{"bt needs square", JobSpec{Tenant: 1, Name: "x", Kind: KindBT, Ranks: 3, Scheme: vscc.SchemeVDMA}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, s, _ := newTestRig(t, Options{})
			addTenants(t, s, TenantSpec{ID: 1})
			err := s.Submit([]JobSpec{tc.job})
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestWorkloadParser round-trips the file format and its error paths.
func TestWorkloadParser(t *testing.T) {
	src := `
# tenants first
tenant id=1 bw=0.5 burst=2048 cache=64
tenant id=2

job tenant=1 name=pp submit=0 kind=pingpong ranks=2 scheme=vdma size=256 reps=3
job tenant=2 name=bt submit=10 kind=bt ranks=4 scheme=cached-get class=S iters=1
`
	w, err := ParseWorkload(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tenants) != 2 || len(w.Jobs) != 2 {
		t.Fatalf("parsed %d tenants, %d jobs", len(w.Tenants), len(w.Jobs))
	}
	if w.Tenants[0].BWBytesPerCycle != 0.5 || w.Tenants[0].BurstBytes != 2048 || w.Tenants[0].CacheLines != 64 {
		t.Errorf("tenant 1 mis-parsed: %+v", w.Tenants[0])
	}
	bt := w.Jobs[1]
	if bt.Kind != KindBT || bt.Scheme != vscc.SchemeCachedGet || bt.Submit != 10 || bt.Class != "S" || bt.Iters != 1 {
		t.Errorf("bt job mis-parsed: %+v", bt)
	}
	bad := []struct {
		name, src, want string
	}{
		{"undeclared tenant", "job tenant=1 name=x", "undeclared tenant"},
		{"unknown record", "banana id=1", "unknown record"},
		{"unknown scheme", "tenant id=1\njob tenant=1 name=x scheme=warp", "unknown scheme"},
		{"unknown key", "tenant id=1 color=red", `unknown key "color"`},
		{"duplicate key", "tenant id=1 id=2", "duplicate key"},
		{"no jobs", "tenant id=1", "no jobs"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseWorkload(strings.NewReader(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestSchedulerReusesCoresAcrossSchemes admits jobs with different (but
// ack-compatible) schemes back to back on the same cores: region
// teardown must leave the host table clean enough for re-registration.
func TestSchedulerReusesCoresAcrossSchemes(t *testing.T) {
	k, _, s, _ := newTestRig(t, Options{})
	addTenants(t, s, TenantSpec{ID: 1})
	var jobs []JobSpec
	schemes := []vscc.Scheme{vscc.SchemeVDMA, vscc.SchemeCachedGet, vscc.SchemeRemotePut, vscc.SchemeHostRouted}
	for i, scheme := range schemes {
		jobs = append(jobs, JobSpec{
			Tenant: 1, Name: fmt.Sprintf("j%d", i), Submit: sim.Cycles(i),
			Kind: KindTraffic, Ranks: 96, Scheme: scheme, Size: 64, Reps: 1,
		})
	}
	if err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var prevDone sim.Cycles
	for _, r := range s.Results() {
		if r.Status != StatusOK {
			t.Fatalf("job %q finished %v (%v)", r.Spec.Name, r.Status, r.Err)
		}
		if r.Admit < prevDone {
			t.Errorf("job %q overlapped its predecessor (admit %d < prev done %d)", r.Spec.Name, r.Admit, prevDone)
		}
		prevDone = r.Done
	}
}

var _ = rcce.MaxRanks // keep the import honest if assertions above change
