// Package sched implements the multi-tenant vSCC scheduler: a
// space-sharing job scheduler that admits many independent RCCE programs
// ("jobs") from several tenants onto one simulated vSCC fabric.
//
// The paper's flagship system couples five SCC devices into one 240-core
// cluster-on-a-chip; a machine of that size is naturally shared. The
// scheduler partitions the capacities that the communication stack
// models — cores (and with them each core's MPB half), LUT entries for
// inter-device address translation, and the host software cache — and
// leans on the per-tenant QoS hooks of internal/host (token-bucket PCIe
// bandwidth caps, deficit-round-robin fair queueing, cache partitions)
// so that co-located tenants cannot starve each other.
//
// Everything is kernel-clock deterministic: job arrivals are scheduled
// as simulation events ordered by (submit cycle, tenant id, spec order),
// admission is strictly FIFO with head-of-line blocking, and the core
// allocator packs device-major over sorted free lists. Two runs of the
// same workload produce byte-identical traces, metrics and results —
// the property the multitenant-identity CI gate asserts.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"vscc/internal/host"
	"vscc/internal/mem"
	"vscc/internal/rcce"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

// TenantSpec is the tenant descriptor: identity plus the QoS envelope
// applied to every job the tenant runs.
type TenantSpec struct {
	// ID is the tenant identity (0..999, rendered as tNNN in traces).
	ID int
	// BWBytesPerCycle caps the tenant's PCIe bandwidth (token bucket in
	// internal/pcie); 0 leaves the tenant unthrottled.
	BWBytesPerCycle float64
	// BurstBytes is the token-bucket burst; 0 picks the host default.
	BurstBytes int
	// CacheLines is the tenant's static partition of the host software
	// cache, charged against Options.CacheLines at registration. 0
	// disables caching accounting for the tenant (its cached regions
	// are unpartitioned).
	CacheLines int
	// DevRetry is the per-job device-loss retry budget: a job of this
	// tenant whose session fails with rcce.ErrDeviceLost is aborted,
	// fully torn down (no leaked cores) and requeued once the lost
	// devices rejoin and their journal replay quiesces — at most
	// DevRetry times per job, after which the job is reaped as usual.
	// 0 (the default) keeps the reap-with-leak behaviour.
	DevRetry int
}

// Kind names a job's program.
type Kind string

// The job kinds a workload file may request.
const (
	// KindPingPong pairs ranks (0,1), (2,3), ... for Size-byte round
	// trips, Reps rounds.
	KindPingPong Kind = "pingpong"
	// KindTraffic runs a ring exchange: every rank forwards Size bytes
	// to (id+1) mod n, Reps rounds — a replayable all-neighbour load.
	KindTraffic Kind = "traffic"
	// KindBT runs the NPB BT solver (square rank counts).
	KindBT Kind = "bt"
	// KindLU runs the NPB LU solver (Px*Py decompositions).
	KindLU Kind = "lu"
)

// JobSpec describes one job of a workload.
type JobSpec struct {
	Tenant int
	Name   string
	// Submit is the kernel cycle the job arrives at the scheduler.
	Submit sim.Cycles
	Kind   Kind
	Ranks  int
	// Scheme is the inter-device communication scheme for this job's
	// session; it must share the fabric's acknowledgement mode.
	Scheme vscc.Scheme
	// Size/Reps parameterize pingpong and traffic kinds.
	Size int
	Reps int
	// Class/Iters parameterize bt and lu kinds (NPB class name, timestep
	// override).
	Class string
	Iters int
}

// Status is a job's terminal state.
type Status int

// Job outcomes, in report order.
const (
	StatusPending Status = iota
	StatusRunning
	StatusOK
	StatusRejected
	StatusDeviceLost
	StatusFailed
)

// String names the status the way vsccd prints it.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusRunning:
		return "running"
	case StatusOK:
		return "ok"
	case StatusRejected:
		return "rejected"
	case StatusDeviceLost:
		return "device-lost"
	}
	return "failed"
}

// NoCycle marks a cycle field of a state a job never reached.
const NoCycle = ^sim.Cycles(0)

// Result is one job's outcome.
type Result struct {
	Spec   JobSpec
	Status Status
	// Submit, Admit and Done are kernel cycles; Admit and Done are
	// NoCycle for jobs that never reached the respective state.
	Submit sim.Cycles
	Admit  sim.Cycles
	Done   sim.Cycles
	// Places is the admitted placement (empty when rejected).
	Places []rcce.Place
	// Err is the rejection or completion error (nil for StatusOK).
	Err error
	// Leaked reports that the job was reaped with ranks still parked
	// (stranded peers of a lost device); its cores were not returned to
	// the free pool.
	Leaked bool
	// Retries counts how many times the job was requeued by its
	// tenant's devretry budget after a device loss.
	Retries int
	// LostDevs are the devices whose loss triggered those requeues
	// (sorted, distinct). Places reflects only the final placement, so
	// this is how a recovered job stays attributable to the fault
	// domain it survived (vsccd -assert-isolation).
	LostDevs []int
}

// Devices returns the sorted distinct devices of the placement.
func (r *Result) Devices() []int {
	seen := map[int]bool{}
	var devs []int
	for _, pl := range r.Places {
		if !seen[pl.Dev] {
			seen[pl.Dev] = true
			devs = append(devs, pl.Dev)
		}
	}
	sort.Ints(devs)
	return devs
}

// Options sizes the scheduler's capacity partitions.
type Options struct {
	// LUTSlotsPerDevice bounds the inter-device translation entries the
	// scheduler hands out per device: a job spanning S devices charges
	// S-1 slots per rank against the rank's device. 0 picks the default
	// (every core can map every remote device); negative disables
	// inter-device jobs entirely.
	LUTSlotsPerDevice int
	// CacheLines is the host software-cache pool partitioned among
	// tenants (TenantSpec.CacheLines). 0 picks the default 4096.
	CacheLines int
	// DRRQuantum is the deficit-round-robin quantum in bytes for the
	// host forwarder queues; 0 picks the host default.
	DRRQuantum int
	// FailGrace is the reaping delay: when a rank of a job fails and
	// the rest do not finish within FailGrace cycles, the job is
	// force-finished and its cores leak. 0 picks 2,000,000 cycles.
	FailGrace sim.Cycles
}

// DefaultCacheLines is the host software-cache pool when Options does
// not size it.
const DefaultCacheLines = 4096

type tenant struct {
	spec  TenantSpec
	track trace.Track
	// Precomputed counter names (tracealloc: no dynamic names at record
	// sites).
	admitName, doneName, rejectName string
	requeueName, exhaustName        string
}

type job struct {
	spec JobSpec
	idx  int // order within the submitted slice, tie-breaker
	res  Result

	places    []rcce.Place
	lutCharge []int // per device, slots to return on teardown
	sess      *rcce.Session
	remaining int
	reaped    bool

	// devretry state: retryDecided latches the first failing rank's
	// recovery decision (retry vs reap); retrying marks the job parked
	// until its lost devices rejoin; awaiting counts placement devices
	// whose post-rejoin replay has not finished; retries counts
	// requeues consumed against the tenant budget; lostDevs are the
	// placement devices that were lost at decision time (for the
	// per-device counter mirrors).
	retryDecided bool
	retrying     bool
	awaiting     int
	retries      int
	lostDevs     []int
}

// Scheduler owns the admission queue and capacity pools of one vSCC.
type Scheduler struct {
	sys  *vscc.System
	k    *sim.Kernel
	sink *trace.Sink
	opts Options

	tenants   map[int]*tenant
	tenantIDs []int // sorted, for deterministic reporting

	free      [][]int // per device, sorted free core ids
	lutFree   []int   // per device
	lutPer    int     // slots per device at construction
	cacheFree int
	mpbInUse  int

	pending []*job // admission queue, head-of-line blocking
	jobs    []*job // arrival order (Submit, Tenant, idx)
	running int
	armed   bool
}

// New builds a scheduler over sys. It enables the host QoS layer, so it
// must be called before the kernel runs.
func New(sys *vscc.System, sink *trace.Sink, opts Options) *Scheduler {
	if opts.CacheLines == 0 {
		opts.CacheLines = DefaultCacheLines
	}
	if opts.LUTSlotsPerDevice == 0 {
		opts.LUTSlotsPerDevice = scc.NumCores * (len(sys.Chips) - 1)
	}
	if opts.LUTSlotsPerDevice < 0 {
		opts.LUTSlotsPerDevice = 0
	}
	if opts.FailGrace == 0 {
		opts.FailGrace = 2_000_000
	}
	s := &Scheduler{
		sys:       sys,
		k:         sys.Kernel,
		sink:      sink,
		opts:      opts,
		tenants:   make(map[int]*tenant),
		lutPer:    opts.LUTSlotsPerDevice,
		cacheFree: opts.CacheLines,
	}
	for _, chip := range sys.Chips {
		alive := chip.AliveCores()
		sort.Ints(alive)
		s.free = append(s.free, alive)
		s.lutFree = append(s.lutFree, opts.LUTSlotsPerDevice)
	}
	sys.Task.EnableQoS(opts.DRRQuantum)
	return s
}

// AddTenant registers a tenant descriptor, charging its cache partition
// against the pool. Tenants must be registered before their jobs run.
func (s *Scheduler) AddTenant(ts TenantSpec) error {
	if ts.ID < 0 {
		return fmt.Errorf("sched: tenant id %d negative", ts.ID)
	}
	if _, ok := s.tenants[ts.ID]; ok {
		return fmt.Errorf("sched: tenant %d registered twice", ts.ID)
	}
	if ts.CacheLines < 0 || ts.BWBytesPerCycle < 0 || ts.DevRetry < 0 {
		return fmt.Errorf("sched: tenant %d has a negative QoS parameter", ts.ID)
	}
	if ts.CacheLines > s.cacheFree {
		return fmt.Errorf("sched: tenant %d wants %d cache lines, only %d of %d left",
			ts.ID, ts.CacheLines, s.cacheFree, s.opts.CacheLines)
	}
	s.cacheFree -= ts.CacheLines
	tag := trace.TenantTag(ts.ID)
	t := &tenant{
		spec:        ts,
		track:       s.sink.Track("sched", tag),
		admitName:   "sched.admit." + tag,
		doneName:    "sched.done." + tag,
		rejectName:  "sched.reject." + tag,
		requeueName: "sched.requeued." + tag,
		exhaustName: "sched.retry_exhausted." + tag,
	}
	s.tenants[ts.ID] = t
	s.tenantIDs = append(s.tenantIDs, ts.ID)
	sort.Ints(s.tenantIDs)
	s.sys.Task.SetTenant(host.TenantConfig{
		ID:              ts.ID,
		BWBytesPerCycle: ts.BWBytesPerCycle,
		BurstBytes:      ts.BurstBytes,
		CacheLines:      ts.CacheLines,
	})
	return nil
}

// Tenants returns the registered tenant ids in ascending order.
func (s *Scheduler) Tenants() []int { return s.tenantIDs }

// Submit validates the specs and schedules their arrivals on the
// kernel clock. It must be called once, before the kernel runs; the
// deterministic admission order is (Submit, Tenant, position in specs).
func (s *Scheduler) Submit(specs []JobSpec) error {
	if s.armed {
		return errors.New("sched: Submit called twice")
	}
	s.armed = true
	ordered := make([]*job, 0, len(specs))
	for i, spec := range specs {
		if _, ok := s.tenants[spec.Tenant]; !ok {
			return fmt.Errorf("sched: job %q references unknown tenant %d", spec.Name, spec.Tenant)
		}
		if spec.Ranks <= 0 {
			return fmt.Errorf("sched: job %q has %d ranks", spec.Name, spec.Ranks)
		}
		if !spec.Scheme.Compatible(s.sys.Config.Scheme) {
			return fmt.Errorf("sched: job %q scheme %v cannot share a fabric with %v",
				spec.Name, spec.Scheme, s.sys.Config.Scheme)
		}
		if _, err := buildProgram(spec); err != nil {
			return fmt.Errorf("sched: job %q: %w", spec.Name, err)
		}
		j := &job{spec: spec, idx: i}
		j.res = Result{Spec: spec, Submit: spec.Submit, Admit: NoCycle, Done: NoCycle}
		ordered = append(ordered, j)
	}
	sort.SliceStable(ordered, func(a, b int) bool {
		if ordered[a].spec.Submit != ordered[b].spec.Submit {
			return ordered[a].spec.Submit < ordered[b].spec.Submit
		}
		if ordered[a].spec.Tenant != ordered[b].spec.Tenant {
			return ordered[a].spec.Tenant < ordered[b].spec.Tenant
		}
		return ordered[a].idx < ordered[b].idx
	})
	s.jobs = ordered
	// Kernel events at one cycle dispatch in scheduling order, so
	// arming arrivals in sorted order fixes same-cycle admission.
	for _, j := range ordered {
		j := j
		s.k.At(j.spec.Submit, func() { s.arrive(j) })
	}
	return nil
}

// arrive enqueues one job, rejecting it with a cycle-stamped error when
// it can never fit the machine.
func (s *Scheduler) arrive(j *job) {
	if err := s.feasible(j.spec.Ranks); err != nil {
		now := s.k.Now()
		j.res.Status = StatusRejected
		j.res.Done = now
		j.res.Err = fmt.Errorf("sched: cycle %d: job %q (tenant %d) rejected: %w",
			now, j.spec.Name, j.spec.Tenant, err)
		s.sink.Add("sched.rejected", 1)
		s.sink.Add(s.tenants[j.spec.Tenant].rejectName, 1)
		return
	}
	s.pending = append(s.pending, j)
	s.tryAdmit()
}

// feasible reports whether a job of n ranks could ever be admitted on an
// otherwise empty machine (cores, MaxRanks, LUT slots).
func (s *Scheduler) feasible(n int) error {
	if n > rcce.MaxRanks {
		return fmt.Errorf("%d ranks exceeds MaxRanks=%d", n, rcce.MaxRanks)
	}
	total := 0
	for _, chip := range s.sys.Chips {
		total += len(chip.AliveCores())
	}
	if n > total {
		return fmt.Errorf("%d ranks exceeds the machine's %d cores", n, total)
	}
	// Worst admissible placement on the empty machine: device-major over
	// all alive cores, mirroring allocate.
	perDev := make([]int, len(s.sys.Chips))
	left := n
	for d, chip := range s.sys.Chips {
		take := len(chip.AliveCores())
		if take > left {
			take = left
		}
		perDev[d] = take
		left -= take
		if left == 0 {
			break
		}
	}
	span := 0
	for _, c := range perDev {
		if c > 0 {
			span++
		}
	}
	if span > 1 {
		for d, c := range perDev {
			if need := c * (span - 1); need > s.lutPer {
				return fmt.Errorf("needs %d LUT slots on device %d, partition holds %d", need, d, s.lutPer)
			}
		}
	}
	return nil
}

// tryAdmit starts queued jobs in FIFO order until the head no longer
// fits (head-of-line blocking keeps admission deterministic).
func (s *Scheduler) tryAdmit() {
	for len(s.pending) > 0 {
		j := s.pending[0]
		places, lut, ok := s.allocate(j.spec.Ranks)
		if !ok {
			break
		}
		s.pending = s.pending[1:]
		s.start(j, places, lut)
	}
	s.sink.Gauge("sched.pending", int64(len(s.pending)))
}

// allocate packs n ranks device-major over the sorted free lists and
// charges LUT slots for inter-device spans. It commits only on success.
func (s *Scheduler) allocate(n int) ([]rcce.Place, []int, bool) {
	total := 0
	for _, f := range s.free {
		total += len(f)
	}
	if n > total {
		return nil, nil, false
	}
	perDev := make([]int, len(s.free))
	left := n
	for d := range s.free {
		take := len(s.free[d])
		if take > left {
			take = left
		}
		perDev[d] = take
		left -= take
		if left == 0 {
			break
		}
	}
	span := 0
	for _, c := range perDev {
		if c > 0 {
			span++
		}
	}
	lut := make([]int, len(s.free))
	if span > 1 {
		for d, c := range perDev {
			if c == 0 {
				continue
			}
			lut[d] = c * (span - 1)
			if lut[d] > s.lutFree[d] {
				return nil, nil, false
			}
		}
	}
	var places []rcce.Place
	for d, c := range perDev {
		for i := 0; i < c; i++ {
			places = append(places, rcce.Place{Dev: d, Core: s.free[d][i]})
		}
		s.free[d] = s.free[d][c:]
		s.lutFree[d] -= lut[d]
	}
	return places, lut, true
}

// start admits one job: bind its cores to the tenant, create the tenant
// session and launch every rank.
func (s *Scheduler) start(j *job, places []rcce.Place, lut []int) {
	now := s.k.Now()
	j.places, j.lutCharge = places, lut
	j.res.Admit = now
	j.res.Status = StatusRunning
	j.res.Places = places
	t := s.tenants[j.spec.Tenant]
	for _, pl := range places {
		s.sys.Task.BindCore(pl.Dev, pl.Core, j.spec.Tenant)
	}
	s.mpbInUse += len(places) * rcce.PayloadBytes
	s.running++
	s.sink.Add("sched.admitted", 1)
	s.sink.Add(t.admitName, 1)
	s.sink.Gauge("sched.running", int64(s.running))
	sess, err := s.sys.NewTenantSession(places, j.spec.Scheme, rcce.WithSink(s.sink))
	if err != nil {
		s.finish(j, fmt.Errorf("sched: job %q admission failed: %w", j.spec.Name, err))
		return
	}
	j.sess = sess
	program, err := buildProgram(j.spec)
	if err != nil {
		// Unreachable: Submit validated the spec.
		s.finish(j, err)
		return
	}
	j.remaining = j.spec.Ranks
	for rank := 0; rank < j.spec.Ranks; rank++ {
		rank := rank
		sess.Launch(rank, func(r *rcce.Rank) {
			// The session records a rank's panic only after this defer
			// unwinds, so the first failing rank would read a nil
			// sess.Err(); hand rankDone the panic value itself and
			// re-panic for the session's own bookkeeping.
			defer func() {
				if rec := recover(); rec != nil {
					err, ok := rec.(error)
					if !ok {
						err = fmt.Errorf("rank %d: %v", rank, rec)
					}
					s.rankDone(j, err)
					panic(rec)
				}
				s.rankDone(j, nil)
			}()
			program(r)
		})
	}
}

// rankDone runs as each rank's last deferred action; err is the rank's
// own failure (nil for a clean return). The recovery decision cannot
// consult sess.Err() here: the deciding rank is usually the first
// failure, whose error the session records only after this call.
func (s *Scheduler) rankDone(j *job, err error) {
	j.remaining--
	if j.remaining == 0 {
		if j.retrying {
			if j.awaiting == 0 {
				// The lost devices already rejoined (the abort path);
				// requeue once this rank has fully unwound.
				s.k.At(s.k.Now(), func() { s.requeue(j) })
			}
			// awaiting > 0: the rejoin hook requeues when it fires.
			return
		}
		if !j.reaped {
			s.k.At(s.k.Now(), func() { s.finish(j, j.sess.Err()) })
		}
		return
	}
	if err != nil && !j.reaped && !j.retryDecided {
		j.retryDecided = true
		if s.devRetryEligible(j, err) {
			s.parkForRetry(j)
			return
		}
		// A rank failed; peers parked on its flags may never return.
		// Arm a reaper so the job reaches a terminal state even then.
		s.k.After(s.opts.FailGrace, func() { s.reap(j) })
	}
}

// devRetryEligible decides the recovery path for a job whose first rank
// just failed: requeue (tenant budget left, device-loss error, a
// membership layer to wait on) or reap. An exhausted budget is counted
// here, once per exhaustion.
func (s *Scheduler) devRetryEligible(j *job, err error) bool {
	t := s.tenants[j.spec.Tenant]
	if t.spec.DevRetry <= 0 || s.sys.Membership == nil || !errors.Is(err, rcce.ErrDeviceLost) {
		return false
	}
	if j.retries >= t.spec.DevRetry {
		s.sink.Add("sched.retry_exhausted", 1)
		s.sink.Add(t.exhaustName, 1)
		for _, d := range s.lostPlacementDevs(j) {
			s.devMirror("sched.retry_exhausted", d, 1)
		}
		return false
	}
	return true
}

// lostPlacementDevs returns the job's placement devices that are not
// quiesced right now — the devices whose loss the retry is charged to.
func (s *Scheduler) lostPlacementDevs(j *job) []int {
	var lost []int
	for _, d := range j.res.Devices() {
		if !s.sys.Membership.Quiesced(d) {
			lost = append(lost, d)
		}
	}
	return lost
}

// devMirror records the per-device mirror of a scheduler counter. The
// dynamic name is only built once the sink is known enabled
// (tracealloc).
func (s *Scheduler) devMirror(name string, dev int, v int64) {
	if !s.sink.Enabled() {
		return
	}
	s.sink.Add(name+".d"+strconv.Itoa(dev), v)
}

// parkForRetry parks a failing job until every placement device is back
// up with its rejoin journal replay finished. Hooks on already-quiesced
// devices fire at the current cycle, so the job waits exactly for the
// lost ones; reclaiming cores any earlier would race the replay, which
// re-lands pre-crash frames on the restored memory.
func (s *Scheduler) parkForRetry(j *job) {
	j.retrying = true
	j.lostDevs = s.lostPlacementDevs(j)
	devs := j.res.Devices()
	j.awaiting = len(devs)
	for _, d := range devs {
		s.sys.Membership.AfterReplay(d, func() { s.rejoined(j) })
	}
}

// rejoined is the per-device rejoin hook of a parked job. Once the last
// placement device quiesces, the job's surviving ranks are aborted (they
// are parked on flags of the dead session and would otherwise strand
// forever); their unwinding drives remaining to zero, which requeues.
// A device lost again while the job waited re-arms its hook.
func (s *Scheduler) rejoined(j *job) {
	j.awaiting--
	if j.awaiting > 0 {
		return
	}
	for _, d := range j.res.Devices() {
		if !s.sys.Membership.Quiesced(d) {
			j.awaiting++
			s.sys.Membership.AfterReplay(d, func() { s.rejoined(j) })
		}
	}
	if j.awaiting > 0 {
		return
	}
	if j.remaining > 0 {
		j.sess.Abort(fmt.Errorf("sched: job %q tenant %d requeued after device rejoin", j.spec.Name, j.spec.Tenant))
		return
	}
	s.k.At(s.k.Now(), func() { s.requeue(j) })
}

// requeue tears a parked job's dead session down — releasing cores,
// MPB flag areas, LUT slots, host regions and tenant bindings exactly
// like a clean finish — and re-enqueues the job for admission at the
// current cycle, charging one unit of the tenant's devretry budget.
func (s *Scheduler) requeue(j *job) {
	if !j.retrying || j.remaining != 0 {
		return
	}
	j.retrying = false
	j.retryDecided = false
	t := s.tenants[j.spec.Tenant]
	s.sys.ReleaseRegions(j.places)
	for _, pl := range j.places {
		s.sys.Task.UnbindCore(pl.Dev, pl.Core)
		// Retire before wiping: any write the dead ranks (or the rejoin
		// replay of their journaled frames) still have in flight must
		// not land on these MPB bytes once a successor session owns them.
		s.sys.Task.RetireCore(pl.Dev, pl.Core)
		s.wipeFlags(pl)
	}
	s.mpbInUse -= len(j.places) * rcce.PayloadBytes
	for _, pl := range j.places {
		s.free[pl.Dev] = insertSorted(s.free[pl.Dev], pl.Core)
	}
	for d, n := range j.lutCharge {
		s.lutFree[d] += n
	}
	j.lutCharge = nil
	s.running--
	s.sink.Gauge("sched.running", int64(s.running))
	j.retries++
	j.res.Retries = j.retries
	j.res.Status = StatusPending
	j.res.Admit = NoCycle
	j.res.Places = nil
	j.places = nil
	j.sess = nil
	s.sink.Add("sched.requeued", 1)
	s.sink.Add(t.requeueName, 1)
	for _, d := range j.lostDevs {
		s.devMirror("sched.requeued", d, 1)
		if i := sort.SearchInts(j.res.LostDevs, d); i == len(j.res.LostDevs) || j.res.LostDevs[i] != d {
			j.res.LostDevs = insertSorted(j.res.LostDevs, d)
		}
	}
	j.lostDevs = nil
	s.pending = append(s.pending, j)
	s.tryAdmit()
}

// reap force-finishes a job whose surviving ranks are stranded. Their
// cores stay occupied by parked processes, so they leak instead of
// returning to the pool.
func (s *Scheduler) reap(j *job) {
	if j.res.Status != StatusRunning || j.remaining == 0 || j.reaped {
		return
	}
	j.reaped = true
	j.res.Leaked = true
	s.sink.Add("sched.leaked_cores", int64(j.remaining))
	s.finish(j, j.sess.Err())
}

// finish records a job's terminal state and releases its capacity.
func (s *Scheduler) finish(j *job, err error) {
	if j.res.Status != StatusRunning {
		return
	}
	now := s.k.Now()
	j.res.Done = now
	j.res.Err = err
	switch {
	case err == nil:
		j.res.Status = StatusOK
	case errors.Is(err, rcce.ErrDeviceLost):
		j.res.Status = StatusDeviceLost
	default:
		j.res.Status = StatusFailed
	}
	t := s.tenants[j.spec.Tenant]
	if s.sink.Enabled() && j.res.Admit != NoCycle {
		s.sink.Span(t.track, j.spec.Name, j.res.Admit, now)
	}
	s.sink.Add("sched.done", 1)
	s.sink.Add(t.doneName, 1)
	// Teardown: host regions, tenant bindings, then the pools. A reaped
	// job keeps its regions and cores — parked ranks still own them.
	if !j.res.Leaked {
		if j.sess != nil {
			s.sys.ReleaseRegions(j.places)
		}
		for _, pl := range j.places {
			s.sys.Task.UnbindCore(pl.Dev, pl.Core)
			// Even a clean finish can leave posted flag writes in flight
			// (a sender never awaits its own final vDMA completion flag);
			// retire the core so they cannot land on a successor session.
			s.sys.Task.RetireCore(pl.Dev, pl.Core)
			s.wipeFlags(pl)
		}
		s.mpbInUse -= len(j.places) * rcce.PayloadBytes
		for _, pl := range j.places {
			s.free[pl.Dev] = insertSorted(s.free[pl.Dev], pl.Core)
		}
	}
	for d, n := range j.lutCharge {
		s.lutFree[d] += n
	}
	j.lutCharge = nil
	s.running--
	s.sink.Gauge("sched.running", int64(s.running))
	s.tryAdmit()
}

// wipeFlags zeroes a released core's MPB flag area — the scheduler's
// equivalent of the RCCE startup script clearing the MPB. Schemes leave
// asymmetric flag residue behind (vDMA raises ready/notify flags its
// own handshake never re-reads); a successor session on the same core
// would consume them as phantom signals and desynchronize.
func (s *Scheduler) wipeFlags(pl rcce.Place) {
	tile := scc.CoreTile(pl.Core)
	base := scc.CoreLMBOffset(pl.Core)
	zeros := make([]byte, mem.CoreLMBSize-rcce.PayloadBytes)
	s.sys.Chips[pl.Dev].HostWriteLMB(tile, base+rcce.PayloadBytes, zeros)
}

func insertSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

// Capacity is a snapshot of the free pools, for tests and reporting.
type Capacity struct {
	FreeCores      []int // per device
	FreeLUT        []int // per device
	FreeCacheLines int
	MPBBytesInUse  int
}

// Capacity snapshots the current pools.
func (s *Scheduler) Capacity() Capacity {
	c := Capacity{
		FreeLUT:        append([]int(nil), s.lutFree...),
		FreeCacheLines: s.cacheFree,
		MPBBytesInUse:  s.mpbInUse,
	}
	for _, f := range s.free {
		c.FreeCores = append(c.FreeCores, len(f))
	}
	return c
}

// AllTerminal reports whether every submitted job reached a terminal
// state — the condition under which a kernel deadlock report after the
// run is the expected residue of stranded ranks on a lost device.
func (s *Scheduler) AllTerminal() bool {
	for _, j := range s.jobs {
		if j.res.Status == StatusPending || j.res.Status == StatusRunning {
			return false
		}
	}
	return true
}

// Results returns every job's outcome in arrival order.
func (s *Scheduler) Results() []Result {
	res := make([]Result, len(s.jobs))
	for i, j := range s.jobs {
		res[i] = j.res
	}
	return res
}
