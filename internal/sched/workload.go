package sched

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"vscc/internal/sim"
	"vscc/internal/vscc"
)

// Workload is a parsed workload file: tenant descriptors plus job specs
// in file order.
type Workload struct {
	Tenants []TenantSpec
	Jobs    []JobSpec
}

// ParseWorkload reads the line-based workload format:
//
//	# comment
//	tenant id=1 bw=0.05 burst=4096 cache=64
//	job tenant=1 name=pp-a submit=0 kind=pingpong ranks=2 scheme=vdma size=1024 reps=4
//	job tenant=1 name=bt-a submit=1000 kind=bt ranks=4 scheme=cached-get class=S iters=2
//
// Every record is one line of space-separated key=value fields; tenants
// must be declared before their jobs.
func ParseWorkload(r io.Reader) (*Workload, error) {
	w := &Workload{}
	seen := map[int]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		kv, err := parseKV(fields[1:])
		if err != nil {
			return nil, fmt.Errorf("workload line %d: %w", lineNo, err)
		}
		switch fields[0] {
		case "tenant":
			ts, err := parseTenant(kv)
			if err != nil {
				return nil, fmt.Errorf("workload line %d: %w", lineNo, err)
			}
			if seen[ts.ID] {
				return nil, fmt.Errorf("workload line %d: tenant %d declared twice", lineNo, ts.ID)
			}
			seen[ts.ID] = true
			w.Tenants = append(w.Tenants, ts)
		case "job":
			js, err := parseJob(kv)
			if err != nil {
				return nil, fmt.Errorf("workload line %d: %w", lineNo, err)
			}
			if !seen[js.Tenant] {
				return nil, fmt.Errorf("workload line %d: job %q references undeclared tenant %d",
					lineNo, js.Name, js.Tenant)
			}
			w.Jobs = append(w.Jobs, js)
		default:
			return nil, fmt.Errorf("workload line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(w.Jobs) == 0 {
		return nil, fmt.Errorf("workload has no jobs")
	}
	return w, nil
}

type kvMap struct {
	m    map[string]string
	used map[string]bool
}

func parseKV(fields []string) (*kvMap, error) {
	kv := &kvMap{m: map[string]string{}, used: map[string]bool{}}
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("malformed field %q (want key=value)", f)
		}
		if _, dup := kv.m[k]; dup {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		kv.m[k] = v
	}
	return kv, nil
}

func (kv *kvMap) str(key, def string) string {
	if v, ok := kv.m[key]; ok {
		kv.used[key] = true
		return v
	}
	return def
}

func (kv *kvMap) integer(key string, def int) (int, error) {
	v, ok := kv.m[key]
	if !ok {
		return def, nil
	}
	kv.used[key] = true
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%s=%q is not an integer", key, v)
	}
	return n, nil
}

func (kv *kvMap) float(key string, def float64) (float64, error) {
	v, ok := kv.m[key]
	if !ok {
		return def, nil
	}
	kv.used[key] = true
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("%s=%q is not a number", key, v)
	}
	return f, nil
}

// leftover reports the keys no parser consumed, sorted so the error is
// deterministic.
func (kv *kvMap) leftover() error {
	var unknown []string
	for k := range kv.m {
		if !kv.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	return fmt.Errorf("unknown key %q", unknown[0])
}

func parseTenant(kv *kvMap) (TenantSpec, error) {
	var ts TenantSpec
	var err error
	if ts.ID, err = kv.integer("id", -1); err != nil {
		return ts, err
	}
	if ts.ID < 0 {
		return ts, fmt.Errorf("tenant record needs id=N")
	}
	if ts.BWBytesPerCycle, err = kv.float("bw", 0); err != nil {
		return ts, err
	}
	if ts.BurstBytes, err = kv.integer("burst", 0); err != nil {
		return ts, err
	}
	if ts.CacheLines, err = kv.integer("cache", 0); err != nil {
		return ts, err
	}
	if ts.DevRetry, err = kv.integer("devretry", 0); err != nil {
		return ts, err
	}
	if ts.DevRetry < 0 {
		return ts, fmt.Errorf("devretry=%d is negative", ts.DevRetry)
	}
	return ts, kv.leftover()
}

func parseJob(kv *kvMap) (JobSpec, error) {
	var js JobSpec
	var err error
	if js.Tenant, err = kv.integer("tenant", -1); err != nil {
		return js, err
	}
	if js.Tenant < 0 {
		return js, fmt.Errorf("job record needs tenant=N")
	}
	js.Name = kv.str("name", "")
	if js.Name == "" {
		return js, fmt.Errorf("job record needs name=...")
	}
	submit, err := kv.integer("submit", 0)
	if err != nil {
		return js, err
	}
	if submit < 0 {
		return js, fmt.Errorf("submit=%d is negative", submit)
	}
	js.Submit = sim.Cycles(submit)
	js.Kind = Kind(kv.str("kind", string(KindPingPong)))
	if js.Ranks, err = kv.integer("ranks", 0); err != nil {
		return js, err
	}
	key := kv.str("scheme", "vdma")
	scheme, ok := vscc.SchemeByKey(key)
	if !ok {
		return js, fmt.Errorf("unknown scheme %q", key)
	}
	js.Scheme = scheme
	if js.Size, err = kv.integer("size", 0); err != nil {
		return js, err
	}
	if js.Reps, err = kv.integer("reps", 0); err != nil {
		return js, err
	}
	js.Class = kv.str("class", "")
	if js.Iters, err = kv.integer("iters", 0); err != nil {
		return js, err
	}
	return js, kv.leftover()
}
