package sched

import (
	"fmt"

	"vscc/internal/npb"
	"vscc/internal/rcce"
)

// buildProgram turns a validated JobSpec into the per-rank program the
// session launches. It returns an error for malformed specs (unknown
// kind, rank counts the NPB decompositions cannot take).
func buildProgram(spec JobSpec) (func(*rcce.Rank), error) {
	switch spec.Kind {
	case KindPingPong:
		if spec.Ranks < 2 {
			return nil, fmt.Errorf("pingpong needs >= 2 ranks, got %d", spec.Ranks)
		}
		return pingpongProgram(spec.size(), spec.reps()), nil
	case KindTraffic:
		if spec.Ranks < 2 {
			return nil, fmt.Errorf("traffic needs >= 2 ranks, got %d", spec.Ranks)
		}
		return trafficProgram(spec.size(), spec.reps()), nil
	case KindBT:
		class, err := npb.ClassByName(spec.class())
		if err != nil {
			return nil, err
		}
		d, err := npb.NewDecomp(class.N, spec.Ranks)
		if err != nil {
			return nil, err
		}
		res := &npb.Result{}
		return npb.Program(d, npb.Config{Class: class, Iterations: spec.iters(), Timing: true}, res), nil
	case KindLU:
		class, err := npb.ClassByName(spec.class())
		if err != nil {
			return nil, err
		}
		d, err := npb.NewLUDecomp(class.N, spec.Ranks)
		if err != nil {
			return nil, err
		}
		res := &npb.Result{}
		return npb.LUProgram(d, npb.Config{Class: class, Iterations: spec.iters(), Timing: true}, res), nil
	}
	return nil, fmt.Errorf("unknown job kind %q", spec.Kind)
}

func (j JobSpec) size() int {
	if j.Size > 0 {
		return j.Size
	}
	return 1024
}

func (j JobSpec) reps() int {
	if j.Reps > 0 {
		return j.Reps
	}
	return 1
}

func (j JobSpec) class() string {
	if j.Class != "" {
		return j.Class
	}
	return "S"
}

func (j JobSpec) iters() int {
	if j.Iters > 0 {
		return j.Iters
	}
	return 2
}

// pingpongProgram bounces size bytes between rank pairs (0,1), (2,3),
// ... for reps round trips. With an odd rank count the last rank idles.
func pingpongProgram(size, reps int) func(*rcce.Rank) {
	return func(r *rcce.Rank) {
		peer := r.ID() ^ 1
		if peer >= r.N() {
			return
		}
		buf := make([]byte, size)
		for i := 0; i < reps; i++ {
			if r.ID()%2 == 0 {
				must(r.Send(peer, buf))
				must(r.Recv(peer, buf))
			} else {
				must(r.Recv(peer, buf))
				must(r.Send(peer, buf))
			}
		}
	}
}

// trafficProgram replays a ring exchange: every rank forwards size
// bytes to its successor, reps rounds. Rank 0 sends first and receives
// last, which serializes the ring and avoids a rendezvous deadlock.
func trafficProgram(size, reps int) func(*rcce.Rank) {
	return func(r *rcce.Rank) {
		n := r.N()
		next, prev := (r.ID()+1)%n, (r.ID()+n-1)%n
		buf := make([]byte, size)
		for i := 0; i < reps; i++ {
			if r.ID() == 0 {
				must(r.Send(next, buf))
				must(r.Recv(prev, buf))
			} else {
				must(r.Recv(prev, buf))
				must(r.Send(next, buf))
			}
		}
	}
}

// must panics a program out of its rank on error; Session.Launch's
// recovery records it (preserving rcce.ErrDeviceLost identity) as the
// rank's terminal status.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
