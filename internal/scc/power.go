package scc

import (
	"fmt"

	"vscc/internal/sim"
)

// SCC power management. The chip exposes 24 frequency islands (one per
// tile, clock = 1600 MHz / divider) and 6 voltage islands of 2x2 tiles.
// RCCE 2.0 ships a power API on top of this; the models here supply the
// substrate: per-tile frequency dividers scale every core-side cycle
// cost, and voltage changes take a (long) transition time and must
// satisfy the divider's minimum voltage.
const (
	// GlobalClockMHz is the SCC's global clock; tile frequency is
	// GlobalClockMHz / divider.
	GlobalClockMHz = 1600
	// DefaultDivider yields the 533 MHz configuration the paper uses.
	DefaultDivider = 3
	// MinDivider / MaxDivider bound the per-tile divider (800 MHz down
	// to 100 MHz).
	MinDivider = 2
	MaxDivider = 16
	// VoltageIslands is the number of 2x2-tile voltage domains.
	VoltageIslands = 6
	// TilesPerVoltageIsland groups tiles into domains.
	TilesPerVoltageIsland = NumTiles / VoltageIslands
	// VoltageChangeCycles is the domain transition time in 533 MHz
	// reference cycles (~1 ms on hardware).
	VoltageChangeCycles sim.Cycles = 500_000
)

// VoltageLevel is a supply level in millivolts.
type VoltageLevel int

// The discrete supply levels of the SCC voltage regulator.
const (
	Voltage0V7 VoltageLevel = 700
	Voltage0V8 VoltageLevel = 800
	Voltage0V9 VoltageLevel = 900
	Voltage1V1 VoltageLevel = 1100
)

// MinVoltageFor returns the lowest level that supports a divider.
func MinVoltageFor(divider int) VoltageLevel {
	switch {
	case divider <= 2:
		return Voltage1V1
	case divider <= 3:
		return Voltage0V9
	case divider <= 5:
		return Voltage0V8
	default:
		return Voltage0V7
	}
}

// VoltageIslandOf maps a tile to its voltage domain.
func VoltageIslandOf(tile int) int { return tile / TilesPerVoltageIsland }

// Energy model constants: per-tile power at the nominal 533 MHz / 0.9 V
// point, split into a dynamic part (~ V^2 * f) and a leakage part
// (~ V^2). The whole-chip total at nominal settings lands in the SCC's
// published 25-50 W envelope.
const (
	// TileDynamicWattsNominal is the dynamic power of one tile at
	// 533 MHz / 0.9 V.
	TileDynamicWattsNominal = 1.6
	// TileLeakageWattsNominal is the leakage power of one tile at 0.9 V.
	TileLeakageWattsNominal = 0.4
	nominalMHz              = GlobalClockMHz / DefaultDivider
	nominalMilliVolt        = 900
)

// powerState tracks the chip's frequency and voltage configuration and
// integrates per-tile energy over simulated time.
type powerState struct {
	dividers [NumTiles]int
	voltages [VoltageIslands]VoltageLevel
	// busyUntil serializes voltage transitions per island.
	busyUntil [VoltageIslands]sim.Cycles

	// energy integration: joules accumulated per tile up to lastAccrue.
	joules     [NumTiles]float64
	lastAccrue [NumTiles]sim.Cycles
}

func newPowerState() *powerState {
	ps := &powerState{}
	for t := range ps.dividers {
		ps.dividers[t] = DefaultDivider
	}
	for i := range ps.voltages {
		ps.voltages[i] = MinVoltageFor(DefaultDivider)
	}
	return ps
}

// TilePowerWatts returns a tile's current power draw under the
// V^2-scaled dynamic + leakage model.
func (c *Chip) TilePowerWatts(tile int) float64 {
	f := float64(c.TileFrequencyMHz(tile)) / nominalMHz
	v := float64(c.power.voltages[VoltageIslandOf(tile)]) / nominalMilliVolt
	return TileDynamicWattsNominal*v*v*f + TileLeakageWattsNominal*v*v
}

// accrueEnergy integrates a tile's energy up to the given time; it must
// be called before any change to the tile's frequency or island voltage.
func (c *Chip) accrueEnergy(tile int, now sim.Cycles) {
	ps := c.power
	if now <= ps.lastAccrue[tile] {
		return
	}
	seconds := float64(now-ps.lastAccrue[tile]) / c.Params.CoreHz
	ps.joules[tile] += c.TilePowerWatts(tile) * seconds
	ps.lastAccrue[tile] = now
}

// TileEnergyJoules returns a tile's accumulated energy up to now.
func (c *Chip) TileEnergyJoules(tile int, now sim.Cycles) float64 {
	c.accrueEnergy(tile, now)
	return c.power.joules[tile]
}

// EnergyJoules returns the whole device's accumulated energy up to now.
func (c *Chip) EnergyJoules(now sim.Cycles) float64 {
	total := 0.0
	for t := 0; t < NumTiles; t++ {
		total += c.TileEnergyJoules(t, now)
	}
	return total
}

// TileDivider returns a tile's current frequency divider.
func (c *Chip) TileDivider(tile int) int { return c.power.dividers[tile] }

// TileFrequencyMHz returns a tile's current clock.
func (c *Chip) TileFrequencyMHz(tile int) int {
	return GlobalClockMHz / c.power.dividers[tile]
}

// IslandVoltage returns a voltage island's current level.
func (c *Chip) IslandVoltage(island int) VoltageLevel { return c.power.voltages[island] }

// scaleCost converts a cycle cost expressed at the 533 MHz reference
// clock into the tile's current clock domain.
func (c *Chip) scaleCost(tile int, cost sim.Cycles) sim.Cycles {
	d := c.power.dividers[tile]
	if d == DefaultDivider {
		return cost
	}
	return cost * sim.Cycles(d) / DefaultDivider
}

// SetTileDivider changes a tile's frequency divider. The change is
// immediate (frequency changes are fast on the SCC) but requires the
// island voltage to support the target frequency.
func (c *Chip) SetTileDivider(tile, divider int) error {
	if divider < MinDivider || divider > MaxDivider {
		return fmt.Errorf("scc: divider %d outside [%d,%d]", divider, MinDivider, MaxDivider)
	}
	island := VoltageIslandOf(tile)
	if MinVoltageFor(divider) > c.power.voltages[island] {
		return fmt.Errorf("scc: divider %d needs %d mV, island %d is at %d mV",
			divider, MinVoltageFor(divider), island, c.power.voltages[island])
	}
	c.accrueEnergy(tile, c.Kernel.Now())
	c.power.dividers[tile] = divider
	return nil
}

// SetIslandVoltage starts a voltage transition on an island; it
// completes after VoltageChangeCycles. Lowering the voltage below what a
// tile's current divider requires is rejected.
func (c *Chip) SetIslandVoltage(p *sim.Proc, island int, level VoltageLevel) error {
	if island < 0 || island >= VoltageIslands {
		return fmt.Errorf("scc: voltage island %d out of range", island)
	}
	for t := island * TilesPerVoltageIsland; t < (island+1)*TilesPerVoltageIsland; t++ {
		if MinVoltageFor(c.power.dividers[t]) > level {
			return fmt.Errorf("scc: tile %d divider %d incompatible with %d mV", t, c.power.dividers[t], level)
		}
	}
	// Serialize transitions per island: a change issued while one is in
	// flight waits for it.
	start := p.Now()
	if c.power.busyUntil[island] > start {
		start = c.power.busyUntil[island]
	}
	done := start + VoltageChangeCycles
	c.power.busyUntil[island] = done
	//lint:ignore simapi done = start + transition cycles with start >= now
	p.Delay(done - p.Now())
	for t := island * TilesPerVoltageIsland; t < (island+1)*TilesPerVoltageIsland; t++ {
		c.accrueEnergy(t, p.Now())
	}
	c.power.voltages[island] = level
	return nil
}
