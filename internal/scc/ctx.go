package scc

import (
	"fmt"

	"vscc/internal/mem"
	"vscc/internal/sim"
)

// Ctx binds a core to the simulated process executing on it and exposes
// the core's instruction-level view of the memory system. All methods
// charge calibrated cycle costs and move real bytes. Methods must only be
// called from the process that Launch created.
type Ctx struct {
	Core *Core
	Proc *sim.Proc
}

// chip returns the owning device.
func (c *Ctx) chip() *Chip { return c.Core.chip }

// Params returns the chip's timing parameters.
func (c *Ctx) Params() Params { return c.chip().Params }

// Now returns the current simulated time.
func (c *Ctx) Now() sim.Cycles { return c.Proc.Now() }

// Device returns the device index this core belongs to.
func (c *Ctx) Device() int { return c.chip().Index }

// Delay advances simulated time — generic instruction work, expressed
// at the 533 MHz reference clock and scaled to the tile's current
// frequency island setting.
func (c *Ctx) Delay(d sim.Cycles) { c.delayCore(d) }

// delayCore charges core-clocked work, scaled by the tile's frequency
// divider (power management).
func (c *Ctx) delayCore(d sim.Cycles) {
	c.Proc.Delay(c.chip().scaleCost(CoreTile(c.Core.ID), d))
}

// ComputeFlops charges the time to execute n floating-point operations at
// the core's peak rate.
func (c *Ctx) ComputeFlops(n float64) {
	p := c.chip().Params
	c.delayCore(sim.Cycles(n / p.FlopsPerCycle))
}

// CopyPrivate charges the P54C load/store cost of moving n bytes through
// registers on the private-memory side of a copy loop.
func (c *Ctx) CopyPrivate(n int) {
	p := c.chip().Params
	lines := sim.Cycles((n + mem.LineSize - 1) / mem.LineSize)
	c.delayCore(lines * p.PrivateCopyCyclesPerLine)
}

// InvalidateMPB executes CL1INVMB: all MPBT lines leave the L1 in one
// instruction.
func (c *Ctx) InvalidateMPB() {
	c.invalidateL1()
	c.delayCore(c.chip().Params.InvalidateCycles)
}

// invalidateL1 drops all MPBT lines and resets the consistency checker's
// shadow of what this core has cached.
func (c *Ctx) invalidateL1() {
	c.Core.L1.InvalidateAll()
	if c.chip().check != nil {
		clear(c.Core.fillGen)
	}
}

// ReadMPB reads len(buf) bytes of MPB memory at (dev, tile, off) through
// the MPBT L1: cached lines are served from L1 — including stale copies,
// exactly as on hardware — and misses fetch through the mesh or, for a
// foreign device, through the off-chip port.
func (c *Ctx) ReadMPB(dev, tile, off int, buf []byte) {
	chip := c.chip()
	chip.barrier(c.Proc)
	p := chip.Params
	n := 0
	for n < len(buf) {
		lineBase := (off + n) &^ (mem.LineSize - 1)
		lineOff := off + n - lineBase
		chunk := mem.LineSize - lineOff
		if rem := len(buf) - n; chunk > rem {
			chunk = rem
		}
		key := lineKey(dev, tile, lineBase)
		if chip.check != nil {
			c.checkPendingRead(dev, tile, lineBase, key)
		}
		if cached, ok := c.Core.L1.Lookup(key); ok {
			if chip.check != nil {
				c.checkCachedRead(chip.check, dev, tile, lineBase, key)
			}
			copy(buf[n:n+chunk], cached[lineOff:])
			c.delayCore(p.L1HitCycles)
			n += chunk
			continue
		}
		var line [mem.LineSize]byte
		if dev == chip.Index {
			cost := p.LocalMPBReadCycles
			if hops := chip.Mesh.Hops(c.Core.Tile.Coord, TileCoord(tile)); hops > 0 {
				cost = p.RemoteReadBaseCycles + sim.Cycles(hops)*p.PerHopCycles
			}
			c.Proc.Delay(cost)
			chip.readLMB(tile, lineBase, line[:])
		} else {
			chip.offChip().ReadLine(c.Proc, chip.Index, c.Core.ID, dev, tile, lineBase, line[:])
		}
		c.Core.L1.Fill(key, line)
		if ck := chip.check; ck != nil {
			c.Core.fillGen[key] = ck.gen(key)
		}
		copy(buf[n:n+chunk], line[lineOff:lineOff+chunk])
		n += chunk
	}
}

// WriteMPB writes data to MPB memory at (dev, tile, off) through the
// write-combine buffer. Stores are posted: the core is charged the drain
// cost, not a mesh round trip. Call FlushWCB before signalling a peer.
func (c *Ctx) WriteMPB(dev, tile, off int, data []byte) {
	c.chip().barrier(c.Proc)
	n := 0
	for n < len(data) {
		lineBase := (off + n) &^ (mem.LineSize - 1)
		lineOff := off + n - lineBase
		chunk := mem.LineSize - lineOff
		if rem := len(data) - n; chunk > rem {
			chunk = rem
		}
		key := lineKey(dev, tile, lineBase)
		if drained := c.Core.WCB.Write(key, lineOff, data[n:n+chunk]); drained != nil {
			c.drain(drained)
		}
		c.Proc.Delay(1) // store issue
		n += chunk
	}
}

// FlushWCB drains any pending write-combine line.
func (c *Ctx) FlushWCB() {
	c.chip().barrier(c.Proc)
	if drained := c.Core.WCB.Flush(); drained != nil {
		c.drain(drained)
	}
}

// drain delivers one WCB line to its destination, charging posted-write
// cost.
func (c *Ctx) drain(pd *mem.Pending) {
	chip := c.chip()
	p := chip.Params
	if pd.Key&(1<<60) != 0 { // MMIO line
		dev := int(pd.Key >> 40 & 0xFFFFF)
		off := int(pd.Key&0xFFFFF) * mem.LineSize
		chip.offChip().MMIOWriteLine(c.Proc, chip.Index, c.Core.ID, dev, off, pd.Data[:], pd.Mask)
		return
	}
	dev := int(pd.Key >> 40)
	tile := int(pd.Key >> 20 & 0xFFFFF)
	lineBase := int(pd.Key&0xFFFFF) * mem.LineSize
	// Write-through: update our own cached copy if resident.
	c.applyMasked(func(off int, b []byte) {
		c.Core.L1.UpdateIfPresent(pd.Key, off, b)
	}, pd)
	if dev == chip.Index {
		cost := p.LocalMPBWriteCycles
		if hops := chip.Mesh.Hops(c.Core.Tile.Coord, TileCoord(tile)); hops > 0 {
			cost = p.RemoteWriteBaseCycles + sim.Cycles(hops)*p.PerHopCycles
		}
		c.Proc.Delay(cost)
		c.applyMasked(func(off int, b []byte) {
			chip.writeLMB(tile, lineBase+off, b)
		}, pd)
		if ck := chip.check; ck != nil {
			// The write-through L1 update above keeps this core's cached
			// copy current with its own store (disjoint-writer rule).
			c.Core.fillGen[pd.Key] = ck.gen(pd.Key)
		}
		return
	}
	chip.offChip().WriteLine(c.Proc, chip.Index, c.Core.ID, dev, tile, lineBase, pd.Data[:], pd.Mask)
}

// applyMasked invokes fn for each contiguous run of valid bytes in a
// drained line.
func (c *Ctx) applyMasked(fn func(off int, b []byte), pd *mem.Pending) {
	i := 0
	for i < mem.LineSize {
		if pd.Mask&(1<<uint(i)) == 0 {
			i++
			continue
		}
		j := i
		for j < mem.LineSize && pd.Mask&(1<<uint(j)) != 0 {
			j++
		}
		fn(i, pd.Data[i:j])
		i = j
	}
}

// MMIOWrite stores to a host memory-mapped register through the WCB, so
// that contiguous registers within one 32 B line fuse into a single
// off-chip transaction (the paper's vDMA programming trick).
func (c *Ctx) MMIOWrite(hostDev, off int, data []byte) {
	c.chip().barrier(c.Proc)
	n := 0
	for n < len(data) {
		lineBase := (off + n) &^ (mem.LineSize - 1)
		lineOff := off + n - lineBase
		chunk := mem.LineSize - lineOff
		if rem := len(data) - n; chunk > rem {
			chunk = rem
		}
		key := mmioKey(hostDev, lineBase)
		if drained := c.Core.WCB.Write(key, lineOff, data[n:n+chunk]); drained != nil {
			c.drain(drained)
		}
		c.Proc.Delay(1)
		n += chunk
	}
}

// MMIORead reads a host register — uncached, blocking for the full
// off-chip round trip.
func (c *Ctx) MMIORead(hostDev, off int, buf []byte) {
	c.chip().barrier(c.Proc)
	c.chip().offChip().MMIORead(c.Proc, c.chip().Index, c.Core.ID, hostDev, off, buf)
}

// TestAndSet performs the atomic test-and-set on a core's register of
// this device, returning true if acquired. Cross-device T&S is not
// supported by the architecture.
func (c *Ctx) TestAndSet(core int) bool {
	chip := c.chip()
	p := chip.Params
	cost := p.TASCycles
	if hops := chip.Mesh.Hops(c.Core.Tile.Coord, CoreCoord(core)); hops > 0 {
		cost += 2 * sim.Cycles(hops) * p.PerHopCycles
	}
	c.Proc.Delay(cost)
	return chip.Cores[core].TAS.Set()
}

// ClearTAS releases a test-and-set register of this device.
func (c *Ctx) ClearTAS(core int) {
	chip := c.chip()
	p := chip.Params
	cost := p.TASCycles
	if hops := chip.Mesh.Hops(c.Core.Tile.Coord, CoreCoord(core)); hops > 0 {
		cost += 2 * sim.Cycles(hops) * p.PerHopCycles
	}
	c.Proc.Delay(cost)
	chip.Cores[core].TAS.Clear()
}

// WaitFlag blocks until pred is satisfied by the flag byte at (tile, off)
// in this device's on-chip memory, spinning with invalidate+reload
// semantics. RCCE spins exclusively on local flags (paper §3.1 footnote),
// so cross-device flag waiting is rejected.
func (c *Ctx) WaitFlag(tile, off int, pred func(byte) bool) byte {
	b, _ := c.WaitFlagFor(tile, off, pred, 0)
	return b
}

// WaitFlagFor is WaitFlag with a cycle budget: it gives up once budget
// cycles elapse without pred being satisfied, reporting ok=false. A zero
// budget waits forever. On timeout the flag is re-read coherently one
// last time, so a satisfaction that raced the deadline still wins.
func (c *Ctx) WaitFlagFor(tile, off int, pred func(byte) bool, budget sim.Cycles) (flag byte, ok bool) {
	chip := c.chip()
	t := chip.Tiles[tile]
	var to *sim.Timeout
	if budget > 0 {
		to = t.changed.ArmTimeout(budget)
		defer to.Cancel()
	}
	var b [1]byte
	for {
		// Each poll iteration first parks on the lifecycle barrier: a
		// spinning core must not observe the wiped or half-restored
		// memory of a crashed device, it freezes with the device and
		// resumes its poll after the rejoin restores the flag bytes.
		chip.barrier(c.Proc)
		// Each poll iteration invalidates MPBT state and reloads the
		// flag, as RCCE's flag loop does.
		c.invalidateL1()
		c.delayCore(chip.Params.FlagPollCycles)
		chip.readLMB(tile, off, b[:])
		if pred(b[0]) {
			return b[0], true
		}
		if !t.changed.WaitOrTimeout(c.Proc, to) {
			chip.barrier(c.Proc)
			c.invalidateL1()
			c.delayCore(chip.Params.FlagPollCycles)
			chip.readLMB(tile, off, b[:])
			return b[0], pred(b[0])
		}
	}
}

// PeekLMB reads a byte of this device's on-chip memory without yielding
// or charging cycles. It exists for runtime-internal gating decisions
// (non-blocking request progress engines) that must be atomic with a
// subsequent WaitLMBChange; protocol data paths must use ReadMPB or
// ReadFlag, which model real costs.
func (c *Ctx) PeekLMB(tile, off int) byte {
	var b [1]byte
	c.chip().readLMB(tile, off, b[:])
	return b[0]
}

// WaitLMBChange blocks until any store lands in the given tile's LMB. No
// simulated time passes between the call and the wakeup; combine with
// PeekLMB to build race-free wait loops.
func (c *Ctx) WaitLMBChange(tile int) {
	c.chip().barrier(c.Proc)
	c.chip().Tiles[tile].changed.Wait(c.Proc)
}

// WaitLMBChangeFor is WaitLMBChange with a cycle budget, reporting false
// once budget cycles pass with no store landing. A zero budget waits
// forever.
func (c *Ctx) WaitLMBChangeFor(tile int, budget sim.Cycles) bool {
	c.chip().barrier(c.Proc)
	ch := c.chip().Tiles[tile].changed
	if budget == 0 {
		ch.Wait(c.Proc)
		return true
	}
	to := ch.ArmTimeout(budget)
	ok := ch.WaitOrTimeout(c.Proc, to)
	to.Cancel()
	return ok
}

// ReadFlag performs a single coherent flag read (invalidate + load).
func (c *Ctx) ReadFlag(tile, off int) byte {
	chip := c.chip()
	chip.barrier(c.Proc)
	c.invalidateL1()
	c.delayCore(chip.Params.FlagPollCycles)
	var b [1]byte
	chip.readLMB(tile, off, b[:])
	return b[0]
}

// offChip returns the device's off-chip port, panicking for a standalone
// chip.
func (c *Chip) offChip() OffChipPort {
	if c.OffChip == nil {
		panic(fmt.Sprintf("scc: device %d has no off-chip port", c.Index))
	}
	return c.OffChip
}
