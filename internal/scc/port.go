package scc

import "vscc/internal/sim"

// OffChipPort is the device's window to the rest of a vSCC system: MPB
// lines on other devices and host memory-mapped registers. All methods
// run in the calling core's process context and block according to the
// configured acknowledgement mode (see package pcie); they are the data
// transfer layer the paper's communication task sits behind.
type OffChipPort interface {
	// ReadLine fetches one 32-byte-aligned MPB line of a foreign device
	// into buf (len 32), blocking until the response arrives.
	ReadLine(p *sim.Proc, srcDev, srcCore, dev, tile, off int, buf []byte)

	// WriteLine delivers a possibly partial MPB line (mask bit i = byte i
	// valid) to a foreign device, blocking until the write is
	// acknowledged under the active acknowledgement mode.
	WriteLine(p *sim.Proc, srcDev, srcCore, dev, tile, off int, data []byte, mask uint32)

	// MMIOWriteLine delivers a fused register-file write to the host
	// communication task. hostDev selects the logical register bank
	// (one per device).
	MMIOWriteLine(p *sim.Proc, srcDev, srcCore, hostDev, off int, data []byte, mask uint32)

	// MMIORead reads host registers, blocking for the round trip.
	MMIORead(p *sim.Proc, srcDev, srcCore, hostDev, off int, buf []byte)
}
