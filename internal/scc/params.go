package scc

import "vscc/internal/sim"

// Params holds the chip timing model. All costs are in core clock cycles
// of the 533 MHz P54C cores (the paper's configuration: core/mesh/memory
// frequencies 533/800/800 MHz).
//
// Calibration targets (paper §4.1): maximum on-chip ping-pong throughput
// around 150 MB/s — "due to the fact that the cores of the SCC are based
// on classic P54C architecture"; the copy loops of the in-order core,
// not the mesh, bound throughput. On-chip one-way latency sits in the
// ~100-cycle class (§3).
type Params struct {
	// CoreHz is the core clock (533 MHz).
	CoreHz float64

	// L1HitCycles is an MPBT read served from L1.
	L1HitCycles sim.Cycles
	// LocalMPBReadCycles is an L1 miss served by the core's own tile LMB,
	// per 32 B line.
	LocalMPBReadCycles sim.Cycles
	// LocalMPBWriteCycles is a WCB drain into the core's own tile LMB,
	// per line.
	LocalMPBWriteCycles sim.Cycles
	// RemoteReadBaseCycles is the fixed part of an L1 miss served by
	// another tile's LMB (request/response through the mesh); the
	// distance-dependent part comes from the mesh model.
	RemoteReadBaseCycles sim.Cycles
	// RemoteWriteBaseCycles is the fixed (posted) cost of draining a WCB
	// line toward another tile.
	RemoteWriteBaseCycles sim.Cycles
	// PerHopCycles is the added cost per mesh hop for a line transfer.
	PerHopCycles sim.Cycles

	// PrivateCopyCyclesPerLine is the P54C cost of moving one 32 B line
	// between private memory and registers during a copy loop (8 4-byte
	// loads or stores on the in-order pipeline plus address arithmetic).
	PrivateCopyCyclesPerLine sim.Cycles

	// TASCycles is a test-and-set access to a core's own register;
	// remote T&S adds mesh distance.
	TASCycles sim.Cycles
	// InvalidateCycles is the CL1INVMB instruction.
	InvalidateCycles sim.Cycles
	// FlagPollCycles is one iteration of a flag spin loop (invalidate +
	// load + compare + branch).
	FlagPollCycles sim.Cycles

	// FlopsPerCycle is peak FP throughput (1.0 -> 533 MFLOP/s, the
	// paper's per-core peak).
	FlopsPerCycle float64

	// L1MPBTLines is the number of MPBT lines the L1 can hold.
	L1MPBTLines int
}

// DefaultParams returns the calibrated SCC timing.
func DefaultParams() Params {
	return Params{
		CoreHz:                   533e6,
		L1HitCycles:              2,
		LocalMPBReadCycles:       72,
		LocalMPBWriteCycles:      20,
		RemoteReadBaseCycles:     100,
		RemoteWriteBaseCycles:    22,
		PerHopCycles:             8,
		PrivateCopyCyclesPerLine: 40,
		TASCycles:                12,
		InvalidateCycles:         2,
		FlagPollCycles:           30,
		FlopsPerCycle:            1.0,
		L1MPBTLines:              256,
	}
}

// MBPerSecond converts a (bytes, cycles) measurement to MB/s under this
// parameter set (1 MB = 1e6 bytes, matching the paper's axes).
func (p Params) MBPerSecond(bytes uint64, cycles sim.Cycles) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / p.CoreHz
	return float64(bytes) / 1e6 / seconds
}

// GFlops converts a (flops, cycles) measurement to GFLOP/s.
func (p Params) GFlops(flops float64, cycles sim.Cycles) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / p.CoreHz
	return flops / 1e9 / seconds
}
