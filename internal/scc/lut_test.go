package scc

import (
	"bytes"
	"testing"

	"vscc/internal/sim"
)

func TestVAddrDecomposition(t *testing.T) {
	a := VAddr(0xC0_012345)
	if a.Page() != 0xC0 {
		t.Errorf("page = %#x", a.Page())
	}
	if a.PageOff() != 0x012345 {
		t.Errorf("page off = %#x", a.PageOff())
	}
}

func TestDefaultLUTMappings(t *testing.T) {
	l := DefaultLUT(2)
	if e := l.Entry(MPBPage); e.Kind != LUTMPB || e.Dev != 2 {
		t.Errorf("MPB page entry = %+v", e)
	}
	if e := l.Entry(MMIOPage); e.Kind != LUTHostMMIO {
		t.Errorf("MMIO page entry = %+v", e)
	}
	if e := l.Entry(0); e.Kind != LUTPrivate {
		t.Errorf("page 0 entry = %+v", e)
	}
	if e := l.Entry(0x42); e.Kind != LUTUnmapped {
		t.Errorf("unmapped page entry = %+v", e)
	}
}

func TestLUTFaultOnUnmapped(t *testing.T) {
	l := DefaultLUT(0)
	if _, _, err := l.Resolve(VAddr(0x42_000000)); err == nil {
		t.Error("unmapped access did not fault")
	}
	if err := l.Map(256, LUTEntry{}); err == nil {
		t.Error("out-of-range page accepted")
	}
}

func TestMPBAddrRoundTrip(t *testing.T) {
	l := DefaultLUT(0)
	a := MPBAddr(7, 1234)
	e, off, err := l.Resolve(a)
	if err != nil {
		t.Fatal(err)
	}
	dev, tile, tileOff, err := mpbTarget(e, off)
	if err != nil {
		t.Fatal(err)
	}
	if dev != 0 || tile != 7 || tileOff != 1234 {
		t.Errorf("resolved to (%d,%d,%d), want (0,7,1234)", dev, tile, tileOff)
	}
}

func TestRemoteMPBAddr(t *testing.T) {
	l := DefaultLUT(0)
	if err := l.MapRemoteDevice(3); err != nil {
		t.Fatal(err)
	}
	a := RemoteMPBAddr(3, 23, 16000)
	e, off, err := l.Resolve(a)
	if err != nil {
		t.Fatal(err)
	}
	dev, tile, tileOff, err := mpbTarget(e, off)
	if err != nil {
		t.Fatal(err)
	}
	if dev != 3 || tile != 23 || tileOff != 16000 {
		t.Errorf("resolved to (%d,%d,%d), want (3,23,16000)", dev, tile, tileOff)
	}
}

func TestMPBWindowBeyondChipFaults(t *testing.T) {
	l := DefaultLUT(0)
	a := VAddr(MPBPage)<<24 | VAddr(24*16384) // one tile past the end
	e, off, err := l.Resolve(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := mpbTarget(e, off); err == nil {
		t.Error("off-chip MPB window offset did not fault")
	}
}

func TestReadVWriteVThroughLUT(t *testing.T) {
	k := sim.NewKernel()
	c := NewChip(k, 0, DefaultParams())
	msg := []byte("virtual-address gory access")
	got := make([]byte, len(msg))
	c.Launch(0, "p", func(ctx *Ctx) {
		if err := ctx.WriteV(MPBAddr(5, 64), msg); err != nil {
			t.Error(err)
		}
		ctx.FlushWCB()
		ctx.InvalidateMPB()
		if err := ctx.ReadV(MPBAddr(5, 64), got); err != nil {
			t.Error(err)
		}
		// A fault is an error, not a crash.
		if err := ctx.ReadV(VAddr(0x55_000000), got); err == nil {
			t.Error("LUT fault not reported")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("ReadV = %q, want %q", got, msg)
	}
}
