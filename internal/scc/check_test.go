package scc_test

import (
	"strings"
	"testing"

	"vscc/internal/scc"
	"vscc/internal/sim"
)

// runChecked launches body on core 0 of a checker-enabled chip and
// returns the simulation error (which carries any checker panic).
func runChecked(t *testing.T, body func(chip *scc.Chip, c *scc.Ctx)) error {
	t.Helper()
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	chip.EnableConsistencyCheck(scc.NewChecker())
	chip.Launch(0, "prog", func(c *scc.Ctx) { body(chip, c) })
	return k.RunFor(10_000_000)
}

func TestCheckerFlagsStaleCachedRead(t *testing.T) {
	err := runChecked(t, func(chip *scc.Chip, c *scc.Ctx) {
		buf := make([]byte, 1)
		c.ReadMPB(0, 1, 64, buf)            // cache tile 1's line in the L1
		chip.HostWriteLMB(1, 64, []byte{7}) // a peer store lands
		c.ReadMPB(0, 1, 64, buf)            // L1 hit serves the stale copy
	})
	if err == nil {
		t.Fatal("stale cached read was not flagged")
	}
	for _, want := range []string{"scc: mpb-check", "stale MPB line", "tile 1, off 64", "missing InvalidateMPB"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestCheckerFlagsReadOverPendingWCB(t *testing.T) {
	err := runChecked(t, func(chip *scc.Chip, c *scc.Ctx) {
		buf := make([]byte, 1)
		c.WriteMPB(0, 0, 64, []byte{1}) // combined store still in the WCB
		c.ReadMPB(0, 0, 64, buf)
	})
	if err == nil {
		t.Fatal("read over a pending WCB line was not flagged")
	}
	if !strings.Contains(err.Error(), "missing FlushWCB") {
		t.Errorf("error %q does not mention the missing flush", err)
	}
}

func TestCheckerPassesDisciplinedProtocol(t *testing.T) {
	err := runChecked(t, func(chip *scc.Chip, c *scc.Ctx) {
		buf := make([]byte, 1)
		// Invalidate-before-read clears the stale copy.
		c.ReadMPB(0, 1, 64, buf)
		chip.HostWriteLMB(1, 64, []byte{7})
		c.InvalidateMPB()
		c.ReadMPB(0, 1, 64, buf)
		if buf[0] != 7 {
			t.Errorf("read %d after invalidate, want 7", buf[0])
		}
		// A core's own flushed stores refresh its write-through L1 copy:
		// reading them back is not a staleness violation.
		c.ReadMPB(0, 0, 96, buf)
		c.WriteMPB(0, 0, 96, []byte{9})
		c.FlushWCB()
		c.ReadMPB(0, 0, 96, buf)
		if buf[0] != 9 {
			t.Errorf("read %d of own flushed store, want 9", buf[0])
		}
	})
	if err != nil {
		t.Fatalf("disciplined protocol flagged: %v", err)
	}
}

func TestCheckerDisabledByDefault(t *testing.T) {
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	chip.Launch(0, "prog", func(c *scc.Ctx) {
		buf := make([]byte, 1)
		c.ReadMPB(0, 1, 64, buf)
		chip.HostWriteLMB(1, 64, []byte{7})
		c.ReadMPB(0, 1, 64, buf) // stale on purpose: hardware behaviour
		if buf[0] != 0 {
			t.Errorf("expected the stale cached 0, got %d", buf[0])
		}
	})
	if err := k.RunFor(10_000_000); err != nil {
		t.Fatalf("unchecked chip must serve stale lines silently: %v", err)
	}
}
