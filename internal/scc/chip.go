// Package scc models the Intel Single-chip Cloud Computer: 48 P54C cores
// on 24 tiles connected by a 6x4 mesh, with per-tile local memory buffers
// (MPB + synchronization flags), per-core test-and-set registers, MPBT L1
// caching with bulk invalidation, and a write-combine buffer per core.
//
// The model is functional-with-timing: simulated cores run real Go code,
// and every memory operation moves real bytes while charging the core
// calibrated cycle costs. Cross-tile costs come from the mesh model in
// package noc; accesses to other devices or to host memory-mapped
// registers are delegated to an OffChipPort (implemented by package vscc).
package scc

import (
	"fmt"

	"vscc/internal/mem"
	"vscc/internal/noc"
	"vscc/internal/sim"
)

const (
	// MeshWidth and MeshHeight are the SCC tile grid dimensions.
	MeshWidth  = 6
	MeshHeight = 4
	// NumTiles and NumCores per device.
	NumTiles = MeshWidth * MeshHeight
	NumCores = 2 * NumTiles
)

// SIFCoord is the tile holding the system interface — the single
// off-chip link, at mesh position (3,0) (paper §3).
var SIFCoord = noc.Coord{X: 3, Y: 0}

// Tile is one mesh node: two cores, a router, and 16 KB of local memory
// buffer shared by the two cores (8 KB each).
type Tile struct {
	Index int
	Coord noc.Coord
	LMB   *mem.LMB

	// changed wakes processes blocked on flag changes in this tile's LMB.
	changed *sim.Cond
}

// Core is one P54C core.
type Core struct {
	ID   int
	Tile *Tile
	L1   *mem.L1
	WCB  mem.WCB
	TAS  mem.TestAndSet
	// LUT is the core's address lookup table (see lut.go).
	LUT *LUT

	// fillGen shadows the L1 for the consistency checker: the line
	// generation this core last cached. Nil unless checking is enabled.
	fillGen map[uint64]uint64

	chip *Chip
}

// Chip is one SCC device.
type Chip struct {
	// Index is the device number — the z coordinate in the vSCC topology.
	Index  int
	Kernel *sim.Kernel
	Mesh   *noc.Mesh
	Params Params
	Tiles  []*Tile
	Cores  []*Core

	// OffChip handles accesses to other devices and to host MMIO. Nil
	// means a standalone chip; off-chip access panics.
	OffChip OffChipPort

	// alive tracks core availability; the SCC research system frequently
	// boots with silent core failures (paper §4).
	alive []bool

	// power holds the frequency/voltage island state.
	power *powerState

	// check is the runtime MPB consistency oracle (check.go); nil when
	// checking is disabled.
	check *Checker

	// hostDrop, when set, may swallow a host-side store before it lands —
	// the fault-injection hook for lost remote flag writes. It returns
	// true to drop the store. Nil means every store lands.
	hostDrop func(tile, off, n int) bool

	// lifecycle, when set, gates every core memory operation on device
	// membership: while the device is down (gate closed) its cores park
	// at their next operation and resume when the device rejoins. Nil —
	// no device-fault schedule — costs one predictable-branch nil check.
	lifecycle *sim.Gate

	// writeObs, when set, observes every store into on-chip memory —
	// the checkpoint journal feed. It must not touch simulated time.
	writeObs func(tile, off int, data []byte)
}

// NewChip builds device index with the given timing parameters.
func NewChip(k *sim.Kernel, index int, params Params) *Chip {
	c := &Chip{
		Index:  index,
		Kernel: k,
		Mesh:   noc.New(MeshWidth, MeshHeight, noc.DefaultParams()),
		Params: params,
		alive:  make([]bool, NumCores),
		power:  newPowerState(),
	}
	for t := 0; t < NumTiles; t++ {
		tile := &Tile{
			Index:   t,
			Coord:   TileCoord(t),
			LMB:     mem.NewLMB(mem.LMBSize),
			changed: sim.NewCond(k, fmt.Sprintf("dev%d.tile%d.lmb", index, t)),
		}
		c.Tiles = append(c.Tiles, tile)
	}
	for id := 0; id < NumCores; id++ {
		c.Cores = append(c.Cores, &Core{
			ID:   id,
			Tile: c.Tiles[CoreTile(id)],
			L1:   mem.NewL1(params.L1MPBTLines),
			LUT:  DefaultLUT(index),
			chip: c,
		})
		c.alive[id] = true
	}
	return c
}

// TileCoord maps a tile index to its mesh coordinate (row-major).
func TileCoord(tile int) noc.Coord {
	return noc.Coord{X: tile % MeshWidth, Y: tile / MeshWidth}
}

// CoreTile maps a core id to its tile index; two consecutive core ids
// share a tile.
func CoreTile(core int) int { return core / 2 }

// CoreCoord maps a core id to its tile's mesh coordinate.
func CoreCoord(core int) noc.Coord { return TileCoord(CoreTile(core)) }

// CoreLMBOffset returns the byte offset of a core's 8 KB share within its
// tile's 16 KB LMB: even core ids own the lower half.
func CoreLMBOffset(core int) int {
	if core%2 == 0 {
		return 0
	}
	return mem.CoreLMBSize
}

// SetAlive marks a core as available or failed.
func (c *Chip) SetAlive(core int, alive bool) { c.alive[core] = alive }

// Alive reports whether a core booted successfully.
func (c *Chip) Alive(core int) bool { return c.alive[core] }

// AliveCores returns the ids of all available cores in ascending order.
func (c *Chip) AliveCores() []int {
	var out []int
	for id, a := range c.alive {
		if a {
			out = append(out, id)
		}
	}
	return out
}

// Launch starts a program on a core as a simulated process. It panics if
// the core failed at boot.
func (c *Chip) Launch(core int, name string, body func(*Ctx)) *sim.Proc {
	if core < 0 || core >= NumCores {
		panic(fmt.Sprintf("scc: launch on invalid core %d", core))
	}
	if !c.alive[core] {
		panic(fmt.Sprintf("scc: launch on failed core %d of device %d", core, c.Index))
	}
	co := c.Cores[core]
	return c.Kernel.Spawn(name, func(p *sim.Proc) {
		body(&Ctx{Core: co, Proc: p})
	})
}

// writeLMB writes bytes into a tile's LMB and wakes flag waiters. All
// stores into on-chip memory — from cores, the host DMA engine, or the
// communication task — must land through this method so that simulated
// spin loops observe them.
func (c *Chip) writeLMB(tile, off int, data []byte) {
	t := c.Tiles[tile]
	t.LMB.Write(off, data)
	if c.writeObs != nil {
		c.writeObs(tile, off, data)
	}
	if c.check != nil {
		c.check.bumpRange(c.Index, tile, off, len(data))
	}
	t.changed.Broadcast()
}

// readLMB reads bytes from a tile's LMB.
func (c *Chip) readLMB(tile, off int, buf []byte) {
	c.Tiles[tile].LMB.Read(off, buf)
}

// HostWriteLMB is the entry point for host-side agents (communication
// task, vDMA engine) to deposit data in on-chip memory. The caller
// accounts for transport timing; the store itself is instantaneous.
func (c *Chip) HostWriteLMB(tile, off int, data []byte) {
	if c.hostDrop != nil && c.hostDrop(tile, off, len(data)) {
		return
	}
	c.writeLMB(tile, off, data)
}

// SetHostWriteDropper installs the fault-injection hook consulted before
// every host-side store (see HostWriteLMB). vscc wires it to the fault
// injector; tests may install their own.
func (c *Chip) SetHostWriteDropper(fn func(tile, off, n int) bool) { c.hostDrop = fn }

// HostReadLMB is the host-side read counterpart.
func (c *Chip) HostReadLMB(tile, off int, buf []byte) { c.readLMB(tile, off, buf) }

// SetLifecycleGate installs the membership gate every core memory
// operation blocks on while the device is down (see vscc.Membership).
func (c *Chip) SetLifecycleGate(g *sim.Gate) { c.lifecycle = g }

// SetWriteObserver installs the store observer feeding the checkpoint
// journal. Wipe/restore bypass it: reconstruction must not journal
// itself.
func (c *Chip) SetWriteObserver(fn func(tile, off int, data []byte)) { c.writeObs = fn }

// barrier parks p while the device is down. Cores freeze at their next
// memory operation when the chip crashes and thaw on rejoin — the
// process-level model of "the core image is part of the checkpoint".
func (c *Chip) barrier(p *sim.Proc) {
	if c.lifecycle != nil {
		c.lifecycle.Wait(p)
	}
}

// SnapshotLMB copies every tile's LMB image — the checkpoint capture.
func (c *Chip) SnapshotLMB() [][]byte {
	out := make([][]byte, len(c.Tiles))
	for i, t := range c.Tiles {
		img := make([]byte, t.LMB.Size())
		t.LMB.Read(0, img)
		out[i] = img
	}
	return out
}

// LoadLMB overwrites every tile's LMB with a restored image, bypassing
// the write observer (restoration is not new traffic) but waking flag
// waiters and bumping the consistency oracle like any other store.
func (c *Chip) LoadLMB(img [][]byte) {
	for i, t := range c.Tiles {
		if i >= len(img) || img[i] == nil {
			continue
		}
		t.LMB.Write(0, img[i])
		if c.check != nil {
			c.check.bumpRange(c.Index, i, 0, len(img[i]))
		}
		t.changed.Broadcast()
	}
}

// WipeLMB zeroes every tile's LMB — the crash: on-chip memory contents
// are lost the instant the device goes down.
func (c *Chip) WipeLMB() {
	for i, t := range c.Tiles {
		zero := make([]byte, t.LMB.Size())
		t.LMB.Write(0, zero)
		if c.check != nil {
			c.check.bumpRange(c.Index, i, 0, len(zero))
		}
		t.changed.Broadcast()
	}
}

// lineKey builds the global cache-line key for (device, tile, line).
func lineKey(dev, tile, off int) uint64 {
	return uint64(dev)<<40 | uint64(tile)<<20 | uint64(off/mem.LineSize)
}

// mmioKey builds a WCB key for a host MMIO line; MMIO lines live in a
// separate key space so they never alias MPB lines.
func mmioKey(dev, off int) uint64 {
	return 1<<60 | uint64(dev)<<40 | uint64(off/mem.LineSize)
}
