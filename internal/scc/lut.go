package scc

import "fmt"

// The SCC core addresses memory through a per-core lookup table (LUT) of
// 256 entries, each mapping one 16 MB page of the core's 32-bit physical
// address space to a system-wide destination. The paper's §2.1 notes
// that extending RCCE to vSCC needed only "minor modifications to the
// hardware abstraction layer ... such as a mapping of remote on-chip
// memory" — i.e., LUT entries pointing at other devices' MPBs. This file
// models that translation layer; the gory address API on Ctx resolves
// virtual addresses through it.
const (
	// LUTEntries is the number of pages per core.
	LUTEntries = 256
	// LUTPageBytes is the page granularity (16 MB).
	LUTPageBytes = 16 << 20
)

// LUTTargetKind classifies what a LUT entry points at.
type LUTTargetKind int

// LUT entry kinds.
const (
	// LUTUnmapped entries fault on access.
	LUTUnmapped LUTTargetKind = iota
	// LUTPrivate is the core's private DRAM (not modelled beyond cost).
	LUTPrivate
	// LUTMPB points into the on-chip memory of some (device, tile).
	LUTMPB
	// LUTHostMMIO points into the host communication task's register
	// window.
	LUTHostMMIO
)

// LUTEntry is one page mapping.
type LUTEntry struct {
	Kind LUTTargetKind
	// Dev/Tile/Off locate the page base for LUTMPB; Dev/Off for
	// LUTHostMMIO.
	Dev, Tile, Off int
}

// LUT is a core's address translation table.
type LUT struct {
	entries [LUTEntries]LUTEntry
}

// VAddr is a 32-bit core-local virtual address.
type VAddr uint32

// Page returns the LUT index of an address.
func (a VAddr) Page() int { return int(a >> 24) }

// PageOff returns the offset within the page.
func (a VAddr) PageOff() int { return int(a & (LUTPageBytes - 1)) }

// Map installs a page mapping.
func (l *LUT) Map(page int, e LUTEntry) error {
	if page < 0 || page >= LUTEntries {
		return fmt.Errorf("scc: LUT page %d out of range", page)
	}
	l.entries[page] = e
	return nil
}

// Entry returns a page's mapping.
func (l *LUT) Entry(page int) LUTEntry { return l.entries[page] }

// Resolve translates a virtual address to its target, faulting (error)
// on unmapped pages.
func (l *LUT) Resolve(a VAddr) (LUTEntry, int, error) {
	e := l.entries[a.Page()]
	if e.Kind == LUTUnmapped {
		return LUTEntry{}, 0, fmt.Errorf("scc: LUT fault at %#x (page %d unmapped)", uint32(a), a.Page())
	}
	return e, e.Off + a.PageOff(), nil
}

// DefaultLUT builds the boot-time table of core id on device dev: page 0
// private memory, page 0xC0 the own-device MPB window (one page covers
// all 24 tiles' LMBs consecutively), page 0xF9 the host MMIO window —
// a simplified rendition of sccKit's default map.
func DefaultLUT(dev int) *LUT {
	l := &LUT{}
	l.entries[0] = LUTEntry{Kind: LUTPrivate, Dev: dev}
	l.entries[MPBPage] = LUTEntry{Kind: LUTMPB, Dev: dev, Tile: 0, Off: 0}
	l.entries[MMIOPage] = LUTEntry{Kind: LUTHostMMIO, Dev: dev, Off: 0}
	return l
}

// Well-known pages of the default map.
const (
	// MPBPage is the own-device MPB window (0xC0 on sccKit).
	MPBPage = 0xC0
	// MMIOPage is the host register window.
	MMIOPage = 0xF9
	// RemoteMPBPageBase is where vSCC maps other devices' MPB windows:
	// device d lands at page RemoteMPBPageBase+d (the paper's HAL
	// extension).
	RemoteMPBPageBase = 0xD0
)

// MapRemoteDevice installs the vSCC extension mapping for device d's MPB
// window.
func (l *LUT) MapRemoteDevice(d int) error {
	return l.Map(RemoteMPBPageBase+d, LUTEntry{Kind: LUTMPB, Dev: d, Tile: 0, Off: 0})
}

// MPBAddr builds the virtual address of (tile, off) in the own-device
// MPB window.
func MPBAddr(tile, off int) VAddr {
	return VAddr(MPBPage)<<24 | VAddr(tile*16384+off)
}

// RemoteMPBAddr builds the virtual address of (tile, off) on device d
// through the vSCC window.
func RemoteMPBAddr(d, tile, off int) VAddr {
	return VAddr(RemoteMPBPageBase+d)<<24 | VAddr(tile*16384+off)
}

// mpbTarget converts a resolved LUT entry + offset into (dev, tile,
// tileOff), splitting the flat MPB window into per-tile LMBs.
func mpbTarget(e LUTEntry, off int) (dev, tile, tileOff int, err error) {
	tile = e.Tile + off/16384
	tileOff = off % 16384
	if tile >= NumTiles {
		return 0, 0, 0, fmt.Errorf("scc: MPB window offset %d beyond the chip", off)
	}
	return e.Dev, tile, tileOff, nil
}

// ReadV reads through the core's LUT: the virtual-address flavour of
// ReadMPB (and MMIORead for host pages).
func (c *Ctx) ReadV(a VAddr, buf []byte) error {
	e, off, err := c.Core.LUT.Resolve(a)
	if err != nil {
		return err
	}
	switch e.Kind {
	case LUTMPB:
		dev, tile, tileOff, err := mpbTarget(e, off)
		if err != nil {
			return err
		}
		c.ReadMPB(dev, tile, tileOff, buf)
		return nil
	case LUTHostMMIO:
		c.MMIORead(e.Dev, off, buf)
		return nil
	case LUTPrivate:
		c.CopyPrivate(len(buf))
		return nil
	}
	return fmt.Errorf("scc: ReadV through unmapped page")
}

// WriteV writes through the core's LUT: the virtual-address flavour of
// WriteMPB / MMIOWrite.
func (c *Ctx) WriteV(a VAddr, data []byte) error {
	e, off, err := c.Core.LUT.Resolve(a)
	if err != nil {
		return err
	}
	switch e.Kind {
	case LUTMPB:
		dev, tile, tileOff, err := mpbTarget(e, off)
		if err != nil {
			return err
		}
		c.WriteMPB(dev, tile, tileOff, data)
		return nil
	case LUTHostMMIO:
		c.MMIOWrite(e.Dev, off, data)
		return nil
	case LUTPrivate:
		c.CopyPrivate(len(data))
		return nil
	}
	return fmt.Errorf("scc: WriteV through unmapped page")
}
