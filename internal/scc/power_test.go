package scc

import (
	"testing"

	"vscc/internal/sim"
)

func TestDefaultPowerConfiguration(t *testing.T) {
	k := sim.NewKernel()
	c := NewChip(k, 0, DefaultParams())
	for tile := 0; tile < NumTiles; tile++ {
		if f := c.TileFrequencyMHz(tile); f != 533 {
			t.Fatalf("tile %d at %d MHz, want 533 (paper's configuration)", tile, f)
		}
	}
	for isl := 0; isl < VoltageIslands; isl++ {
		if v := c.IslandVoltage(isl); v != Voltage0V9 {
			t.Fatalf("island %d at %d mV, want 900", isl, v)
		}
	}
}

func TestVoltageIslandMapping(t *testing.T) {
	if TilesPerVoltageIsland != 4 {
		t.Fatalf("tiles per island = %d, want 4", TilesPerVoltageIsland)
	}
	if VoltageIslandOf(0) != 0 || VoltageIslandOf(3) != 0 || VoltageIslandOf(4) != 1 || VoltageIslandOf(23) != 5 {
		t.Error("island mapping wrong")
	}
}

func TestMinVoltageMonotone(t *testing.T) {
	prev := Voltage1V1
	for d := MinDivider; d <= MaxDivider; d++ {
		v := MinVoltageFor(d)
		if v > prev {
			t.Errorf("MinVoltageFor(%d)=%d rises above MinVoltageFor(%d)=%d", d, v, d-1, prev)
		}
		prev = v
	}
}

func TestFrequencyScalingSlowsCompute(t *testing.T) {
	k := sim.NewKernel()
	c := NewChip(k, 0, DefaultParams())
	var fast, slow sim.Cycles
	c.Launch(0, "fast", func(ctx *Ctx) {
		t0 := ctx.Now()
		ctx.ComputeFlops(100_000)
		fast = ctx.Now() - t0
	})
	if err := c.SetTileDivider(10, 6); err != nil { // tile 10 = core 20/21, 266 MHz
		t.Fatal(err)
	}
	c.Launch(20, "slow", func(ctx *Ctx) {
		t0 := ctx.Now()
		ctx.ComputeFlops(100_000)
		slow = ctx.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if slow != fast*2 {
		t.Errorf("divider 6 compute = %d cycles, want 2x the divider-3 cost (%d)", slow, fast)
	}
}

func TestDividerNeedsVoltage(t *testing.T) {
	k := sim.NewKernel()
	c := NewChip(k, 0, DefaultParams())
	// 800 MHz (divider 2) needs 1.1 V; default islands run at 0.9 V.
	if err := c.SetTileDivider(0, 2); err == nil {
		t.Fatal("divider 2 at 0.9 V should be rejected")
	}
	c.Launch(0, "p", func(ctx *Ctx) {
		if err := c.SetIslandVoltage(ctx.Proc, 0, Voltage1V1); err != nil {
			t.Error(err)
		}
		if err := c.SetTileDivider(0, 2); err != nil {
			t.Errorf("divider 2 at 1.1 V rejected: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.TileFrequencyMHz(0) != 800 {
		t.Errorf("tile 0 at %d MHz, want 800", c.TileFrequencyMHz(0))
	}
}

func TestVoltageLoweringBlockedByFastTile(t *testing.T) {
	k := sim.NewKernel()
	c := NewChip(k, 0, DefaultParams())
	c.Launch(0, "p", func(ctx *Ctx) {
		// Tile 1 (same island as tile 0) stays at divider 3 (needs 0.9 V);
		// dropping the island to 0.7 V must fail.
		if err := c.SetIslandVoltage(ctx.Proc, 0, Voltage0V7); err == nil {
			t.Error("lowering below a tile's requirement should fail")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestVoltageChangeTakesTime(t *testing.T) {
	k := sim.NewKernel()
	c := NewChip(k, 0, DefaultParams())
	var elapsed sim.Cycles
	c.Launch(0, "p", func(ctx *Ctx) {
		t0 := ctx.Now()
		if err := c.SetIslandVoltage(ctx.Proc, 0, Voltage1V1); err != nil {
			t.Error(err)
		}
		elapsed = ctx.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < VoltageChangeCycles {
		t.Errorf("voltage change took %d cycles, want >= %d", elapsed, VoltageChangeCycles)
	}
}

func TestBadDividerRejected(t *testing.T) {
	k := sim.NewKernel()
	c := NewChip(k, 0, DefaultParams())
	if err := c.SetTileDivider(0, 1); err == nil {
		t.Error("divider 1 accepted")
	}
	if err := c.SetTileDivider(0, 17); err == nil {
		t.Error("divider 17 accepted")
	}
}

func TestEnergyIntegration(t *testing.T) {
	k := sim.NewKernel()
	c := NewChip(k, 0, DefaultParams())
	// One simulated second at nominal settings: per-tile energy must be
	// dynamic + leakage watts, chip total 24x that.
	oneSecond := sim.Cycles(533_000_000)
	k.Spawn("clock", func(p *sim.Proc) { p.Delay(oneSecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	perTile := c.TileEnergyJoules(0, oneSecond)
	want := TileDynamicWattsNominal + TileLeakageWattsNominal
	if perTile < want*0.999 || perTile > want*1.001 {
		t.Errorf("per-tile energy = %.3f J, want %.3f", perTile, want)
	}
	total := c.EnergyJoules(oneSecond)
	if total < 24*want*0.999 || total > 24*want*1.001 {
		t.Errorf("chip energy = %.3f J, want %.3f", total, 24*want)
	}
}

func TestFrequencyScalingSavesEnergy(t *testing.T) {
	k := sim.NewKernel()
	c := NewChip(k, 0, DefaultParams())
	oneSecond := sim.Cycles(533_000_000)
	// Halve tile 0's clock immediately; after one second it must have
	// burned only (dyn/2 + leak).
	if err := c.SetTileDivider(0, 6); err != nil {
		t.Fatal(err)
	}
	k.Spawn("clock", func(p *sim.Proc) { p.Delay(oneSecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := c.TileEnergyJoules(0, oneSecond)
	// Integer MHz: 1600/6 = 266 against the 533 nominal.
	want := TileDynamicWattsNominal*(266.0/533.0) + TileLeakageWattsNominal
	if got < want*0.999 || got > want*1.001 {
		t.Errorf("half-clock tile energy = %.3f J, want %.3f", got, want)
	}
	// An untouched tile burns the nominal energy.
	full := c.TileEnergyJoules(5, oneSecond)
	if full <= got {
		t.Errorf("nominal tile (%.3f J) should exceed the scaled tile (%.3f J)", full, got)
	}
}

func TestVoltageScalingQuadraticPower(t *testing.T) {
	k := sim.NewKernel()
	c := NewChip(k, 0, DefaultParams())
	nominal := c.TilePowerWatts(0)
	k.Spawn("p", func(p *sim.Proc) {
		// Slow the island's tiles so 0.7 V becomes legal, then drop it.
		for tile := 0; tile < TilesPerVoltageIsland; tile++ {
			if err := c.SetTileDivider(tile, 8); err != nil {
				t.Error(err)
			}
		}
		if err := c.SetIslandVoltage(p, 0, Voltage0V7); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	scaled := c.TilePowerWatts(0)
	// (0.7/0.9)^2 * (200/533) dynamic + (0.7/0.9)^2 leakage.
	vv := (700.0 / 900) * (700.0 / 900)
	want := TileDynamicWattsNominal*vv*(200.0/533.0) + TileLeakageWattsNominal*vv
	if scaled < want*0.99 || scaled > want*1.01 {
		t.Errorf("scaled power = %.3f W, want %.3f", scaled, want)
	}
	if scaled >= nominal/2 {
		t.Errorf("DVFS saved too little: %.3f W vs nominal %.3f W", scaled, nominal)
	}
}
