package scc

import (
	"bytes"
	"testing"
	"testing/quick"

	"vscc/internal/noc"
	"vscc/internal/sim"
)

func newTestChip(k *sim.Kernel) *Chip { return NewChip(k, 0, DefaultParams()) }

func TestTopologyConstants(t *testing.T) {
	if NumTiles != 24 || NumCores != 48 {
		t.Fatalf("tiles=%d cores=%d, want 24/48", NumTiles, NumCores)
	}
	if SIFCoord != (noc.Coord{X: 3, Y: 0}) {
		t.Errorf("SIF at %v, want (3,0) (paper §3)", SIFCoord)
	}
}

func TestCoreTileMapping(t *testing.T) {
	for core := 0; core < NumCores; core++ {
		tile := CoreTile(core)
		if tile != core/2 {
			t.Fatalf("CoreTile(%d) = %d", core, tile)
		}
		coord := CoreCoord(core)
		if coord != TileCoord(tile) {
			t.Fatalf("CoreCoord(%d) = %v, want %v", core, coord, TileCoord(tile))
		}
	}
	// Two cores of a tile split the LMB.
	if CoreLMBOffset(0) != 0 || CoreLMBOffset(1) != 8192 {
		t.Error("LMB split wrong for tile 0")
	}
}

func TestTileCoordRowMajor(t *testing.T) {
	if TileCoord(0) != (noc.Coord{X: 0, Y: 0}) || TileCoord(5) != (noc.Coord{X: 5, Y: 0}) || TileCoord(6) != (noc.Coord{X: 0, Y: 1}) || TileCoord(23) != (noc.Coord{X: 5, Y: 3}) {
		t.Error("tile coordinates not row-major over 6x4")
	}
}

func TestLocalMPBWriteRead(t *testing.T) {
	k := sim.NewKernel()
	c := newTestChip(k)
	msg := []byte("on-chip message, longer than one cache line to span several")
	got := make([]byte, len(msg))
	c.Launch(0, "writer-reader", func(ctx *Ctx) {
		ctx.WriteMPB(0, 0, 64, msg)
		ctx.FlushWCB()
		ctx.InvalidateMPB()
		ctx.ReadMPB(0, 0, 64, got)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("read %q, want %q", got, msg)
	}
}

func TestCrossTileTransferWithFlagHandshake(t *testing.T) {
	k := sim.NewKernel()
	c := newTestChip(k)
	msg := []byte("cross-tile payload 0123456789abcdef0123456789abcdef")
	got := make([]byte, len(msg))
	const flagOff = 8000
	// Core 47 (tile 23) writes into its own MPB, then raises a flag in
	// core 0's (tile 0) flag area; core 0 remote-gets the data.
	c.Launch(47, "sender", func(ctx *Ctx) {
		ctx.WriteMPB(0, 23, 0, msg)
		ctx.FlushWCB()
		ctx.WriteMPB(0, 0, flagOff, []byte{1})
		ctx.FlushWCB()
	})
	c.Launch(0, "receiver", func(ctx *Ctx) {
		ctx.WaitFlag(0, flagOff, func(b byte) bool { return b == 1 })
		ctx.InvalidateMPB()
		ctx.ReadMPB(0, 23, 0, got)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("receiver read %q, want %q", got, msg)
	}
}

func TestStaleReadWithoutInvalidate(t *testing.T) {
	// The defining hazard of the non-coherent SCC: re-reading an MPB
	// location without CL1INVMB returns the stale cached line.
	k := sim.NewKernel()
	c := newTestChip(k)
	var first, second, third byte
	c.Launch(0, "reader", func(ctx *Ctx) {
		var b [1]byte
		ctx.ReadMPB(0, 5, 0, b[:]) // cache the line (value 0)
		first = b[0]
		// Wait for the writer using the flag path, which invalidates —
		// then re-read WITHOUT invalidating: data line still stale.
		ctx.Delay(10000)
		ctx.ReadMPB(0, 5, 0, b[:])
		second = b[0]
		ctx.InvalidateMPB()
		ctx.ReadMPB(0, 5, 0, b[:])
		third = b[0]
	})
	c.Launch(11, "writer", func(ctx *Ctx) { // any core can write tile 5
		ctx.Delay(5000) // after the reader's first (caching) read
		ctx.WriteMPB(0, 5, 0, []byte{0xEE})
		ctx.FlushWCB()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Errorf("first read = %#x, want 0", first)
	}
	if second != 0 {
		t.Errorf("second read = %#x, want stale 0 — L1 must serve the old line", second)
	}
	if third != 0xEE {
		t.Errorf("third read = %#x, want 0xEE after invalidate", third)
	}
}

func TestWaitFlagDoesNotBusyBurn(t *testing.T) {
	// WaitFlag must block rather than consume unbounded events while the
	// flag is unset.
	k := sim.NewKernel()
	c := newTestChip(k)
	var wakeTime sim.Cycles
	c.Launch(0, "waiter", func(ctx *Ctx) {
		ctx.WaitFlag(0, 100, func(b byte) bool { return b != 0 })
		wakeTime = ctx.Now()
	})
	c.Launch(2, "setter", func(ctx *Ctx) {
		ctx.Delay(1_000_000)
		ctx.WriteMPB(0, 0, 100, []byte{7})
		ctx.FlushWCB()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wakeTime < 1_000_000 {
		t.Errorf("waiter woke at %d, before the flag was set", wakeTime)
	}
	if wakeTime > 1_001_000 {
		t.Errorf("waiter woke at %d, too long after the set at 1e6", wakeTime)
	}
}

func TestRemoteReadCostsMoreThanLocal(t *testing.T) {
	k := sim.NewKernel()
	c := newTestChip(k)
	var localCost, remoteCost sim.Cycles
	c.Launch(0, "p", func(ctx *Ctx) {
		buf := make([]byte, 32)
		t0 := ctx.Now()
		ctx.ReadMPB(0, 0, 0, buf) // own tile
		localCost = ctx.Now() - t0
		ctx.InvalidateMPB()
		t0 = ctx.Now()
		ctx.ReadMPB(0, 23, 0, buf) // opposite corner
		remoteCost = ctx.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if remoteCost <= localCost {
		t.Errorf("remote read (%d) should cost more than local (%d)", remoteCost, localCost)
	}
}

func TestL1HitFasterThanMiss(t *testing.T) {
	k := sim.NewKernel()
	c := newTestChip(k)
	var missCost, hitCost sim.Cycles
	c.Launch(0, "p", func(ctx *Ctx) {
		buf := make([]byte, 32)
		t0 := ctx.Now()
		ctx.ReadMPB(0, 10, 0, buf)
		missCost = ctx.Now() - t0
		t0 = ctx.Now()
		ctx.ReadMPB(0, 10, 0, buf)
		hitCost = ctx.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if hitCost >= missCost {
		t.Errorf("hit (%d) should be cheaper than miss (%d)", hitCost, missCost)
	}
}

func TestTestAndSetMutualExclusion(t *testing.T) {
	k := sim.NewKernel()
	c := newTestChip(k)
	acquired := 0
	for i := 0; i < 4; i++ {
		c.Launch(i*2, "contender", func(ctx *Ctx) {
			if ctx.TestAndSet(7) {
				acquired++
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if acquired != 1 {
		t.Errorf("%d cores acquired the T&S register, want exactly 1", acquired)
	}
}

func TestTestAndSetClearReacquire(t *testing.T) {
	k := sim.NewKernel()
	c := newTestChip(k)
	var ok bool
	c.Launch(0, "p", func(ctx *Ctx) {
		if !ctx.TestAndSet(0) {
			return
		}
		ctx.ClearTAS(0)
		ok = ctx.TestAndSet(0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("re-acquire after clear failed")
	}
}

func TestCoreFailureInjection(t *testing.T) {
	k := sim.NewKernel()
	c := newTestChip(k)
	c.SetAlive(13, false)
	c.SetAlive(40, false)
	alive := c.AliveCores()
	if len(alive) != 46 {
		t.Fatalf("alive = %d cores, want 46", len(alive))
	}
	for _, id := range alive {
		if id == 13 || id == 40 {
			t.Fatalf("failed core %d listed alive", id)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("launch on failed core did not panic")
		}
	}()
	c.Launch(13, "ghost", func(ctx *Ctx) {})
}

func TestComputeFlops(t *testing.T) {
	k := sim.NewKernel()
	c := newTestChip(k)
	var elapsed sim.Cycles
	c.Launch(0, "p", func(ctx *Ctx) {
		t0 := ctx.Now()
		ctx.ComputeFlops(533e6) // one second of peak FP
		elapsed = ctx.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 533_000_000 {
		t.Errorf("533e6 flops took %d cycles, want 533e6 at 1 flop/cycle", elapsed)
	}
}

func TestOffChipWithoutPortPanics(t *testing.T) {
	k := sim.NewKernel()
	c := newTestChip(k)
	c.Launch(0, "p", func(ctx *Ctx) {
		buf := make([]byte, 32)
		ctx.ReadMPB(1, 0, 0, buf) // device 1 does not exist
	})
	if err := k.Run(); err == nil {
		t.Fatal("off-chip access without port should fail the run")
	}
}

func TestMBPerSecond(t *testing.T) {
	p := DefaultParams()
	// 150 MB/s = 150e6 bytes over one second (533e6 cycles).
	got := p.MBPerSecond(150e6, 533_000_000)
	if got < 149.9 || got > 150.1 {
		t.Errorf("MBPerSecond = %v, want 150", got)
	}
	if p.MBPerSecond(1, 0) != 0 {
		t.Error("zero cycles should yield 0")
	}
}

func TestGFlops(t *testing.T) {
	p := DefaultParams()
	got := p.GFlops(533e6, 533_000_000) // peak: 0.533 GFLOP/s
	if got < 0.5329 || got > 0.5331 {
		t.Errorf("GFlops = %v, want 0.533", got)
	}
}

// Property: WriteMPB/ReadMPB round-trips arbitrary payloads at arbitrary
// offsets (within a core's 8 KB half).
func TestPropertyMPBRoundTrip(t *testing.T) {
	f := func(off uint16, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		o := int(off) % (8192 - len(payload))
		k := sim.NewKernel()
		c := newTestChip(k)
		got := make([]byte, len(payload))
		c.Launch(0, "p", func(ctx *Ctx) {
			ctx.WriteMPB(0, 0, o, payload)
			ctx.FlushWCB()
			ctx.InvalidateMPB()
			ctx.ReadMPB(0, 0, o, got)
		})
		if err := k.Run(); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the simulation is deterministic — identical runs produce
// identical final clocks.
func TestPropertyDeterministicTiming(t *testing.T) {
	run := func() sim.Cycles {
		k := sim.NewKernel()
		c := newTestChip(k)
		for i := 0; i < 8; i++ {
			i := i
			c.Launch(i, "p", func(ctx *Ctx) {
				buf := make([]byte, 256)
				for r := 0; r < 5; r++ {
					ctx.WriteMPB(0, CoreTile(i), CoreLMBOffset(i), buf)
					ctx.FlushWCB()
					ctx.InvalidateMPB()
					ctx.ReadMPB(0, CoreTile((i+1)%8), 0, buf)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d ended at %d, first at %d — nondeterministic", i, got, first)
		}
	}
}
