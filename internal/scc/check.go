package scc

import (
	"fmt"

	"vscc/internal/mem"
)

// Checker is the runtime MPB consistency oracle behind the -check flag:
// the dynamic complement of the static goryorder vet rule. It shadows
// every 32-byte MPB line with a generation counter that writeLMB bumps on
// each store — from cores draining their WCB, the host communication
// task, or the vDMA engine. Each core records the generation it cached at
// L1 fill time; a hit on a line whose authoritative generation has since
// advanced is a read the hardware would serve stale, so the checker
// panics with the core, cycle and line address (the session layer
// attributes the panic to a rank). A read of a line the core's own WCB
// still buffers is likewise flagged as a missing FlushWCB.
//
// One Checker is shared by every chip of a system, so cross-device
// deliveries (which land through the target chip's writeLMB) advance the
// same shadow state the reader compares against.
//
// Known limitation: a core's own drained stores refresh its recorded
// generation (its write-through L1 copy tracks them), which assumes the
// gory discipline's disjoint-writer rule — concurrent writers to one
// line are not distinguished.
type Checker struct {
	gens map[uint64]uint64
}

// NewChecker creates an empty consistency oracle.
func NewChecker() *Checker { return &Checker{gens: map[uint64]uint64{}} }

// bumpRange advances the generation of every line a store touches.
func (ck *Checker) bumpRange(dev, tile, off, n int) {
	if n <= 0 {
		return
	}
	for l := off / mem.LineSize; l <= (off+n-1)/mem.LineSize; l++ {
		ck.gens[lineKey(dev, tile, l*mem.LineSize)]++
	}
}

// gen returns the current generation of a line.
func (ck *Checker) gen(key uint64) uint64 { return ck.gens[key] }

// EnableConsistencyCheck attaches a shared staleness oracle to the chip
// and allocates the per-core fill-generation shadows. Call it on every
// chip of a system with the same Checker before launching programs.
func (c *Chip) EnableConsistencyCheck(ck *Checker) {
	c.check = ck
	for _, co := range c.Cores {
		co.fillGen = map[uint64]uint64{}
	}
}

// checkPendingRead panics if the core reads an MPB line its own WCB still
// buffers: the memory image lacks the combined stores, so the core sees
// data its subsequent flush would overwrite.
func (c *Ctx) checkPendingRead(dev, tile, lineBase int, key uint64) {
	if pk, pending := c.Core.WCB.PendingKey(); pending && pk == key {
		panic(fmt.Sprintf(
			"scc: mpb-check: core %d of device %d reads MPB line (dev %d, tile %d, off %d) at cycle %d while its write-combine buffer holds stores to that line: missing FlushWCB (paper §3.1)",
			c.Core.ID, c.chip().Index, dev, tile, lineBase, c.Now()))
	}
}

// checkCachedRead panics if an L1 hit serves a line whose authoritative
// generation advanced after this core cached it — the stale read the
// gory discipline's InvalidateMPB exists to prevent.
func (c *Ctx) checkCachedRead(ck *Checker, dev, tile, lineBase int, key uint64) {
	have := c.Core.fillGen[key]
	if g := ck.gen(key); g > have {
		panic(fmt.Sprintf(
			"scc: mpb-check: core %d of device %d read a stale MPB line (dev %d, tile %d, off %d) at cycle %d: memory generation %d, cached generation %d — missing InvalidateMPB after the flag wait (paper §3.1)",
			c.Core.ID, c.chip().Index, dev, tile, lineBase, c.Now(), g, have))
	}
}
