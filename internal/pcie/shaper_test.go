package pcie

import (
	"testing"

	"vscc/internal/sim"
)

// TestTokenBucketShapesToRate drives a saturating sender through a
// bucket and checks the achieved rate converges on the configured cap.
func TestTokenBucketShapesToRate(t *testing.T) {
	k := sim.NewKernel()
	b := NewTokenBucket(0.5, 1024) // 0.5 B/cycle, 1 KB burst
	const burstBytes = 256
	const bursts = 64
	var done sim.Cycles
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < bursts; i++ {
			b.Take(p, burstBytes)
		}
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 16 KB at 0.5 B/cycle is 32768 cycles; the initial 1 KB burst
	// allowance and the debt model shave at most one burst's worth.
	total := bursts * burstBytes
	ideal := sim.Cycles(float64(total-1024) / 0.5)
	if done < ideal-2*burstBytes/1 || done > ideal+2048 {
		t.Fatalf("shaped completion at %d cycles, want about %d", done, ideal)
	}
}

// TestTokenBucketBurstThenDebt verifies the debt model: an oversized
// first transfer passes immediately, the next one pays its debt.
func TestTokenBucketBurstThenDebt(t *testing.T) {
	k := sim.NewKernel()
	b := NewTokenBucket(1.0, 100)
	var firstWait, secondWait sim.Cycles
	k.Spawn("sender", func(p *sim.Proc) {
		firstWait = b.Take(p, 500) // 400 bytes of debt
		secondWait = b.Take(p, 10)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if firstWait != 0 {
		t.Fatalf("first (burst) take waited %d cycles, want 0", firstWait)
	}
	if secondWait != 400 {
		t.Fatalf("second take waited %d cycles, want 400 (the debt)", secondWait)
	}
}

// TestTokenBucketIdle verifies tokens accrue only up to the cap and
// that a nil bucket is a free pass.
func TestTokenBucketIdle(t *testing.T) {
	k := sim.NewKernel()
	b := NewTokenBucket(2.0, 64)
	k.Spawn("sender", func(p *sim.Proc) {
		b.Take(p, 64)
		p.Delay(10_000) // far more than needed to refill
		if lvl := b.Level(p.Now()); lvl != 64 {
			t.Errorf("idle level %d, want clamped at cap 64", lvl)
		}
		var nb *TokenBucket
		if w := nb.Take(p, 1<<20); w != 0 {
			t.Errorf("nil bucket waited %d cycles", w)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
