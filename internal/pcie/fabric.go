// Package pcie models the off-chip fabric of the vSCC research system:
// for every SCC device a pair of unidirectional PCIe paths to the host
// (device-to-host and host-to-device), the system interface (SIF) port at
// mesh tile (3,0) that every off-chip request funnels through, and the
// acknowledgement behaviour of off-chip writes.
//
// Write acknowledgement is the crux of the paper's §2.3: a P54C core
// stalls an uncached off-chip store until the mesh delivers a write
// acknowledge. The on-board FPGA can generate "automatic write
// acknowledges for requests that target off-chip memory" — fast but with
// known stability issues that prevent tightly coupling three or more
// devices. Without it, the acknowledge comes from the host communication
// task (one PCIe round trip) or, for fully transparent routing, from the
// remote device (two round trips). The three modes bound Fig. 6b from
// above and below.
package pcie

import (
	"errors"
	"fmt"

	"vscc/internal/noc"
	"vscc/internal/sim"
	"vscc/internal/trace"
)

// AckMode selects who acknowledges an off-chip write.
type AckMode int

const (
	// AckHost: the host communication task acknowledges on receipt (one
	// PCIe round trip). The stable default of the new prototype.
	AckHost AckMode = iota
	// AckFPGA: the on-board FPGA acknowledges immediately (fast writes,
	// hardware-accelerated upper bound; unstable for >= 3 devices).
	AckFPGA
	// AckRemote: transparent routing — the acknowledge travels from the
	// remote device back through the host (two PCIe round trips; the
	// previous prototype of [Reble et al. 2012]).
	AckRemote
)

// String names the mode.
func (m AckMode) String() string {
	switch m {
	case AckHost:
		return "host-ack"
	case AckFPGA:
		return "fpga-fast-ack"
	case AckRemote:
		return "remote-ack"
	}
	return "invalid"
}

// Params is the fabric timing model, in core cycles of the 533 MHz cores.
// Defaults are calibrated so that the full inter-device path (device ->
// host -> device) costs ~1.2e4 cycles, the paper's factor of ~120 over
// the ~100-cycle on-chip path (§5: "raises latencies by a factor of 120").
type Params struct {
	// LinkLatency is the one-way PCIe + driver latency per direction.
	LinkLatency sim.Cycles
	// LinkBytesPerCycle is the usable PCIe bandwidth per direction.
	LinkBytesPerCycle float64
	// SIFAckCycles is the FPGA fast-ack stall (AckFPGA) and the local
	// cost of entering the SIF.
	SIFAckCycles sim.Cycles
	// HostOpCycles is the communication-task processing cost per request.
	HostOpCycles sim.Cycles
	// DMASetupCycles is the host DMA engine programming cost per burst.
	DMASetupCycles sim.Cycles
	// AllowUnstableFPGA permits AckFPGA with three or more devices; the
	// hardware configuration the paper reports as unusable. Only for
	// failure-injection experiments.
	AllowUnstableFPGA bool
}

// DefaultParams returns the calibrated fabric timing.
func DefaultParams() Params {
	return Params{
		LinkLatency:       5200,
		LinkBytesPerCycle: 0.135,
		SIFAckCycles:      120,
		HostOpCycles:      160,
		DMASetupCycles:    400,
		AllowUnstableFPGA: false,
	}
}

// DeviceLink is one device's connection to the host.
type DeviceLink struct {
	// D2H carries traffic from the device to the host; H2D the reverse.
	D2H, H2D *noc.Link
}

// Fabric is the set of PCIe connections of one vSCC host.
type Fabric struct {
	Params Params
	Ack    AckMode
	links  []*DeviceLink
	// chans wrap each link with the SIF replay layer (packet.go); they
	// pass through untouched until SetFaults arms them.
	chans []*channelPair
}

// channelPair is the replay layer over one device's link pair.
type channelPair struct {
	d2h, h2d *Channel
}

// New builds a fabric for n devices in the given acknowledgement mode.
// It enforces the paper's stability rule: the FPGA fast-ack option works
// only for at most two tightly coupled devices.
func New(n int, params Params, ack AckMode) (*Fabric, error) {
	if n <= 0 {
		return nil, errors.New("pcie: fabric with no devices")
	}
	if ack == AckFPGA && n > 2 && !params.AllowUnstableFPGA {
		return nil, fmt.Errorf("pcie: FPGA fast write-acks are unstable for %d devices (max 2); see §2.3", n)
	}
	f := &Fabric{Params: params, Ack: ack}
	for d := 0; d < n; d++ {
		dl := &DeviceLink{
			D2H: noc.NewLink(fmt.Sprintf("pcie.d%d.d2h", d), params.LinkLatency, params.LinkBytesPerCycle),
			H2D: noc.NewLink(fmt.Sprintf("pcie.d%d.h2d", d), params.LinkLatency, params.LinkBytesPerCycle),
		}
		f.links = append(f.links, dl)
		f.chans = append(f.chans, &channelPair{
			d2h: newChannel(dl.D2H, "pcie.d2h", d),
			h2d: newChannel(dl.H2D, "pcie.h2d", d),
		})
	}
	return f, nil
}

// Instrument attaches an observability sink to every PCIe link, so each
// direction of each device's connection gets its own occupancy track and
// byte counter in the trace.
func (f *Fabric) Instrument(s *trace.Sink) {
	for _, dl := range f.links {
		dl.D2H.Instrument(s)
		dl.H2D.Instrument(s)
	}
}

// NumDevices returns the number of connected devices.
func (f *Fabric) NumDevices() int { return len(f.links) }

// Link returns device d's link pair.
func (f *Fabric) Link(d int) *DeviceLink { return f.links[d] }

// RoundTrip returns the no-load device->host->device latency for a small
// request — the paper's ~1.2e4-cycle class.
func (f *Fabric) RoundTrip() sim.Cycles {
	return 2*f.Params.LinkLatency + f.Params.HostOpCycles
}
