package pcie

import (
	"testing"

	"vscc/internal/fault"
	"vscc/internal/sim"
)

// TestChannelSeqWraparound primes a channel's sequence counters just
// below ^uint64(0) and drives deliveries across the wrap under drop and
// duplicate pressure: the signed-distance duplicate check must keep
// exactly-once in-order semantics when Seq overflows — a frame just past
// a delivered counter near the top of the range is new, not a duplicate
// from 2^64 packets ago.
func TestChannelSeqWraparound(t *testing.T) {
	const n = 50
	cfg := fault.Config{
		Seed:       21,
		DropPer10k: 2000,
		DupPer10k:  2000,
		Recovery:   fault.Recovery{RetxTimeout: 8000},
	}
	k := sim.NewKernel()
	f, err := New(1, DefaultParams(), AckHost)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(k, cfg)
	f.SetFaults(k, inj)
	// Three packets before the wrap, the rest after it.
	c := f.chans[0].h2d
	start := ^uint64(0) - 3
	c.nextSeq = start
	c.delivered = start

	var order []int
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			i := i
			f.PostH2D(p, 0, 256, func() { order = append(order, i) })
			p.Delay(50)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("delivered %d packets, want %d", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("delivery %d carried packet %d (out of order across the wrap)", i, got)
		}
	}
	if got := c.Backlog(); got != 0 {
		t.Errorf("backlog %d after drain, want 0", got)
	}
	if c.delivered != start+n {
		t.Errorf("delivered counter = %d, want %d (wrapped)", c.delivered, start+n)
	}
	if inj.Stat("recover.dup-discard") == 0 {
		t.Error("no duplicate was discarded — the wrap path went unexercised")
	}
}

// stubView is a hand-driven DeviceView for channel-level tests.
type stubView struct {
	usable bool
	epoch  uint8
}

func (v *stubView) Usable(int) bool { return v.usable }
func (v *stubView) Epoch(int) uint8 { return v.epoch }

// TestChannelEpochReject delays every frame past an epoch bump: the
// stale-epoch arrivals must be rejected (recover.epoch-reject) and the
// payload recovered by a retransmission stamped with the new epoch —
// exactly once.
func TestChannelEpochReject(t *testing.T) {
	cfg := fault.Config{
		Seed:        23,
		DelayPer10k: 10_000,
		DelayCycles: 100_000,
	}
	k := sim.NewKernel()
	f, err := New(1, DefaultParams(), AckHost)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(k, cfg)
	f.SetFaults(k, inj)
	v := &stubView{usable: true}
	f.SetMembership(v)

	delivered := 0
	k.Spawn("sender", func(p *sim.Proc) {
		f.PostH2D(p, 0, 512, func() { delivered++ })
	})
	// The device's incarnation changes while the frame is in flight.
	k.At(50_000, func() { v.epoch = 1 })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d times, want exactly once", delivered)
	}
	if inj.Stat("recover.epoch-reject") == 0 {
		t.Error("no stale-epoch frame was rejected")
	}
	if got := f.chans[0].h2d.Backlog(); got != 0 {
		t.Errorf("backlog %d after recovery, want 0", got)
	}
}

// TestChannelHoldAndReplay posts into a down device: the frame must be
// journaled without burning the wire or a retransmission attempt, and a
// rejoin replay must deliver it in the new epoch.
func TestChannelHoldAndReplay(t *testing.T) {
	k := sim.NewKernel()
	f, err := New(1, DefaultParams(), AckHost)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(k, fault.Config{Seed: 1})
	f.SetFaults(k, inj)
	v := &stubView{usable: false}
	f.SetMembership(v)

	delivered := 0
	var deliveredAt sim.Cycles
	k.Spawn("sender", func(p *sim.Proc) {
		f.PostH2D(p, 0, 256, func() { delivered++; deliveredAt = k.Now() })
		p.Delay(200_000)
		if delivered != 0 {
			t.Error("frame delivered while the device was down")
		}
		v.usable = true
		v.epoch = 1
		frames, bytes := f.ReplayDevice(p, 0)
		if frames != 1 || bytes != 256 {
			t.Errorf("replayed %d frames / %d bytes, want 1 / 256", frames, bytes)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d times, want exactly once after replay", delivered)
	}
	if deliveredAt < 200_000 {
		t.Errorf("delivery at cycle %d, before the rejoin", deliveredAt)
	}
	if got := f.chans[0].h2d.Backlog(); got != 0 {
		t.Errorf("backlog %d after replay, want 0", got)
	}
}
