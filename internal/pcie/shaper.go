package pcie

import (
	"fmt"

	"vscc/internal/sim"
)

// TokenBucket is a deterministic kernel-clock bandwidth shaper: tokens
// (bytes, scaled by 1024 for sub-cycle precision like noc.Link) accrue
// at a fixed rate up to a burst capacity, and every shaped transfer
// spends its byte count. A transfer that finds the bucket in debt is
// delayed until the debt is paid — the classic token bucket with debt,
// which admits a single oversized burst immediately and throttles the
// traffic that follows it.
//
// The multi-tenant host task uses one bucket per tenant to cap the
// PCIe bandwidth a tenant may inject, independent of which device link
// the bytes cross. All state advances on the simulated clock only, so
// shaped runs stay byte-identical across reruns and sweep workers.
type TokenBucket struct {
	rateX1024 uint64 // token bytes per cycle, x1024
	capX1024  int64  // burst capacity, byte-x1024
	tokens    int64  // current level, byte-x1024; negative = debt
	last      sim.Cycles
}

// NewTokenBucket builds a shaper with the given sustained rate
// (bytes per cycle, may be fractional) and burst allowance in bytes.
// The bucket starts full.
func NewTokenBucket(bytesPerCycle float64, burstBytes int) *TokenBucket {
	if bytesPerCycle <= 0 {
		panic(fmt.Sprintf("pcie: token bucket with non-positive rate %g", bytesPerCycle))
	}
	if burstBytes < 1 {
		burstBytes = 1
	}
	return &TokenBucket{
		rateX1024: uint64(bytesPerCycle*1024 + 0.5),
		capX1024:  int64(burstBytes) * 1024,
		tokens:    int64(burstBytes) * 1024,
	}
}

// advance accrues tokens up to now, clamped at the burst capacity.
func (b *TokenBucket) advance(now sim.Cycles) {
	if now <= b.last {
		return
	}
	b.tokens += int64(uint64(now-b.last) * b.rateX1024)
	if b.tokens > b.capX1024 {
		b.tokens = b.capX1024
	}
	b.last = now
}

// Take charges bytes against the bucket from process context. If the
// bucket is already in debt the caller is first delayed until the debt
// is paid; the charge itself may then push the bucket back into debt
// (throttling the next taker). It returns the cycles the caller was
// delayed. Nil-receiver and non-positive sizes are no-ops, so an
// unshaped tenant costs nothing.
func (b *TokenBucket) Take(p *sim.Proc, bytes int) sim.Cycles {
	if b == nil || bytes <= 0 {
		return 0
	}
	b.advance(p.Now())
	var wait sim.Cycles
	if b.tokens < 0 {
		debt := uint64(-b.tokens)
		wait = sim.Cycles((debt + b.rateX1024 - 1) / b.rateX1024)
	}
	b.tokens -= int64(bytes) * 1024
	if wait > 0 {
		p.Delay(wait)
		b.advance(p.Now())
	}
	return wait
}

// Level returns the current token level in whole bytes (negative while
// in debt), accrued to the given instant — an inspection hook for tests.
func (b *TokenBucket) Level(now sim.Cycles) int {
	b.advance(now)
	return int(b.tokens / 1024)
}
