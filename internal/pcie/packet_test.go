package pcie

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"vscc/internal/fault"
	"vscc/internal/sim"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Seq: 0x1122334455667788, Length: 4096, Kind: 3}
	b := EncodeHeader(h)
	got, err := DecodeHeader(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("decode = %+v, want %+v", got, h)
	}
}

func TestHeaderRejectsDamage(t *testing.T) {
	b := EncodeHeader(Header{Seq: 7, Length: 64})
	for i := 0; i < HeaderBytes; i++ {
		dam := b
		dam[i] ^= 0x10
		if _, err := DecodeHeader(dam[:]); !errors.Is(err, ErrBadFrame) {
			t.Errorf("flip of byte %d not rejected (err=%v)", i, err)
		}
	}
	if _, err := DecodeHeader(b[:HeaderBytes-1]); !errors.Is(err, ErrBadFrame) {
		t.Error("short frame not rejected")
	}
}

// postN drives n posted packets through device 0's H2D channel of a
// faulty fabric and returns the delivery order plus the run error.
func postN(t *testing.T, cfg fault.Config, n int) (order []int, backlog int, err error) {
	t.Helper()
	k := sim.NewKernel()
	f, ferr := New(1, DefaultParams(), AckHost)
	if ferr != nil {
		t.Fatal(ferr)
	}
	inj := fault.NewInjector(k, cfg)
	f.SetFaults(k, inj)
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			i := i
			f.PostH2D(p, 0, 256, func() { order = append(order, i) })
			p.Delay(50)
		}
	})
	err = k.Run()
	return order, f.chans[0].h2d.Backlog(), err
}

// Under heavy drop/dup/delay/corrupt pressure every packet must still be
// delivered exactly once, in order, with an empty backlog at the end.
func TestChannelExactlyOnceInOrder(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  fault.Config
	}{
		{"drop", fault.Config{Seed: 1, DropPer10k: 3000, Recovery: fault.Recovery{RetxTimeout: 8000}}},
		{"dup", fault.Config{Seed: 2, DupPer10k: 5000}},
		{"delay", fault.Config{Seed: 3, DelayPer10k: 5000, DelayCycles: 30_000}},
		{"corrupt", fault.Config{Seed: 4, CorruptPer10k: 3000, Recovery: fault.Recovery{RetxTimeout: 8000}}},
		{"storm", fault.Config{Seed: 5, DropPer10k: 1500, DupPer10k: 1500, DelayPer10k: 1500, CorruptPer10k: 1500, DelayCycles: 25_000, Recovery: fault.Recovery{RetxTimeout: 8000}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 300
			order, backlog, err := postN(t, tc.cfg, n)
			if err != nil {
				t.Fatal(err)
			}
			if len(order) != n {
				t.Fatalf("delivered %d packets, want %d", len(order), n)
			}
			for i, got := range order {
				if got != i {
					t.Fatalf("delivery %d carried packet %d (out of order)", i, got)
				}
			}
			if backlog != 0 {
				t.Errorf("backlog %d after drain, want 0", backlog)
			}
		})
	}
}

// The channel under a zero-rate injector must behave like the bare link:
// same delivery cycles, in order.
func TestChannelZeroRatesMatchBareLink(t *testing.T) {
	deliveries := func(armed bool) []sim.Cycles {
		k := sim.NewKernel()
		f, err := New(1, DefaultParams(), AckHost)
		if err != nil {
			t.Fatal(err)
		}
		if armed {
			f.SetFaults(k, fault.NewInjector(k, fault.Config{}))
		}
		var at []sim.Cycles
		k.Spawn("sender", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				f.PostH2D(p, 0, 512, func() { at = append(at, k.Now()) })
				p.Delay(100)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	bare, armed := deliveries(false), deliveries(true)
	if len(bare) != len(armed) {
		t.Fatalf("bare delivered %d, armed %d", len(bare), len(armed))
	}
	for i := range bare {
		if bare[i] != armed[i] {
			t.Errorf("delivery %d: bare at %d, armed at %d", i, bare[i], armed[i])
		}
	}
}

// Retransmission gives up after MaxRetx attempts with a deterministic,
// reproducible error.
func TestChannelRetxExhaustion(t *testing.T) {
	cfg := fault.Config{Seed: 9, DropPer10k: 10_000, Recovery: fault.Recovery{RetxTimeout: 1000, MaxRetx: 3}}
	run := func() string {
		_, _, err := postN(t, cfg, 1)
		if err == nil {
			t.Fatal("all-drop channel completed")
		}
		return err.Error()
	}
	msg := run()
	for _, want := range []string{"pcie: pcie.h2d dev 0 seq 1 lost after 4 attempts", "pcie.retx-fail"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error missing %q:\n%s", want, msg)
		}
	}
	if again := run(); again != msg {
		t.Errorf("rerun produced a different error:\nfirst: %s\nrerun: %s", msg, again)
	}
}

// Recovery events must be reproducible cycle-for-cycle across reruns.
func TestChannelRecoveryCyclesReproduce(t *testing.T) {
	cfg := fault.Config{Seed: 11, DropPer10k: 2000, CorruptPer10k: 1000, Recovery: fault.Recovery{RetxTimeout: 6000}}
	trace := func() []fault.Event {
		k := sim.NewKernel()
		f, err := New(1, DefaultParams(), AckHost)
		if err != nil {
			t.Fatal(err)
		}
		inj := fault.NewInjector(k, cfg)
		f.SetFaults(k, inj)
		k.Spawn("sender", func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				f.PostD2H(p, 0, 128, nil)
				p.Delay(40)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return inj.Events()
	}
	a, b := fmt.Sprint(trace()), fmt.Sprint(trace())
	if a == "[]" {
		t.Fatal("no fault events recorded")
	}
	if a != b {
		t.Errorf("event logs differ between reruns:\n%s\n--\n%s", a, b)
	}
}
