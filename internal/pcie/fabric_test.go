package pcie

import (
	"strings"
	"testing"

	"vscc/internal/sim"
)

func TestFabricCreation(t *testing.T) {
	f, err := New(5, DefaultParams(), AckHost)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumDevices() != 5 {
		t.Errorf("devices = %d, want 5", f.NumDevices())
	}
	for d := 0; d < 5; d++ {
		l := f.Link(d)
		if l.D2H == nil || l.H2D == nil {
			t.Fatalf("device %d missing link pair", d)
		}
	}
}

func TestFPGAFastAckStabilityRule(t *testing.T) {
	// Paper §2.3: fast write acknowledges prevent a tight coupling of
	// more than two SCC devices.
	if _, err := New(2, DefaultParams(), AckFPGA); err != nil {
		t.Errorf("2-device FPGA fast-ack should be allowed: %v", err)
	}
	if _, err := New(3, DefaultParams(), AckFPGA); err == nil {
		t.Error("3-device FPGA fast-ack should be rejected")
	}
	p := DefaultParams()
	p.AllowUnstableFPGA = true
	if _, err := New(5, p, AckFPGA); err != nil {
		t.Errorf("explicit unstable override should be allowed: %v", err)
	}
	// The other ack modes have no device limit.
	if _, err := New(5, DefaultParams(), AckHost); err != nil {
		t.Error(err)
	}
	if _, err := New(5, DefaultParams(), AckRemote); err != nil {
		t.Error(err)
	}
}

func TestZeroDevicesRejected(t *testing.T) {
	if _, err := New(0, DefaultParams(), AckHost); err == nil {
		t.Error("zero-device fabric should be rejected")
	}
}

func TestRoundTripLatencyFactor(t *testing.T) {
	// Paper §5: tunneling the on-chip protocol through the host raises
	// latencies by a factor of ~120 over the ~100-cycle on-chip path.
	f, err := New(5, DefaultParams(), AckHost)
	if err != nil {
		t.Fatal(err)
	}
	rt := f.RoundTrip()
	if rt < 8_000 || rt > 20_000 {
		t.Errorf("inter-device round trip = %d cycles, want ~1.2e4 (paper §3: ~10^4)", rt)
	}
	const onChip = 100
	factor := float64(rt) / onChip
	if factor < 80 || factor > 160 {
		t.Errorf("latency factor = %.0f, want ~120", factor)
	}
}

func TestLinkBandwidthClass(t *testing.T) {
	// The link must be slow enough that on-chip (150 MB/s) clearly wins
	// and fast enough that tens of MB/s are reachable inter-device.
	f, _ := New(1, DefaultParams(), AckHost)
	k := sim.NewKernel()
	var elapsed sim.Cycles
	k.Spawn("x", func(p *sim.Proc) {
		t0 := p.Now()
		f.Link(0).D2H.Transfer(p, 1<<20) // 1 MB bulk
		elapsed = p.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	mbs := float64(1<<20) / 1e6 / (float64(elapsed) / 533e6)
	if mbs < 30 || mbs > 90 {
		t.Errorf("raw link bandwidth = %.1f MB/s, want 30-90", mbs)
	}
}

func TestAckModeString(t *testing.T) {
	for m, want := range map[AckMode]string{AckHost: "host", AckFPGA: "fpga", AckRemote: "remote"} {
		if !strings.Contains(m.String(), want) {
			t.Errorf("AckMode(%d).String() = %q, want containing %q", m, m.String(), want)
		}
	}
}
