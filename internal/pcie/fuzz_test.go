package pcie

import (
	"bytes"
	"testing"
)

// FuzzDecodeHeader drives the SIF frame validator with arbitrary wire
// bytes: it must never panic, must accept exactly the frames EncodeHeader
// produces, and any frame it does accept must re-encode to the same
// bytes (no two distinct wire images decode to one header).
func FuzzDecodeHeader(f *testing.F) {
	good := EncodeHeader(Header{Seq: 1, Length: 64})
	f.Add(good[:])
	flipped := good
	flipped[0] ^= 0xFF
	f.Add(flipped[:])
	f.Add([]byte{})
	f.Add([]byte{0x5A})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderBytes))
	f.Add(bytes.Repeat([]byte{0x00}, HeaderBytes+8))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHeader(data)
		if err != nil {
			return
		}
		re := EncodeHeader(h)
		if !bytes.Equal(re[:], data[:HeaderBytes]) {
			t.Fatalf("accepted frame %x re-encodes to %x", data[:HeaderBytes], re)
		}
	})
}

// FuzzHeaderRoundTrip checks that every header survives the wire and
// that single-byte damage anywhere in the frame is always rejected.
func FuzzHeaderRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint32(0), byte(0), 0, byte(1))
	f.Add(uint64(1<<63), uint32(1<<31), byte(255), HeaderBytes-1, byte(0x80))
	f.Add(uint64(12345), uint32(8192), byte(3), 14, byte(0x01))
	f.Fuzz(func(t *testing.T, seq uint64, length uint32, kind byte, dmgAt int, dmg byte) {
		h := Header{Seq: seq, Length: length, Kind: kind}
		b := EncodeHeader(h)
		got, err := DecodeHeader(b[:])
		if err != nil {
			t.Fatalf("clean frame rejected: %v", err)
		}
		if got != h {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
		if dmg == 0 || dmgAt < 0 {
			return
		}
		b[dmgAt%HeaderBytes] ^= dmg
		if dec, err := DecodeHeader(b[:]); err == nil {
			t.Fatalf("damaged frame accepted as %+v", dec)
		}
	})
}
